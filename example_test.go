package ceci_test

import (
	"fmt"
	"sort"

	"ceci"
)

// The Figure 1 running example of the paper: a 5-vertex labeled pattern
// with two embeddings in a 15-vertex data graph.
func ExampleMatch() {
	const (
		labelA ceci.Label = iota
		labelB
		labelC
		labelD
		labelE
	)
	// Data graph: two overlapping candidate regions, one of which
	// survives filtering.
	db := ceci.NewBuilder(0)
	add := func(l ceci.Label) ceci.VertexID { return db.AddVertex(l) }
	v1, v3, v5 := add(labelA), add(labelB), add(labelB)
	v4, v6 := add(labelC), add(labelC)
	v11, v13 := add(labelD), add(labelD)
	v12, v14 := add(labelE), add(labelE)
	for _, e := range [][2]ceci.VertexID{
		{v1, v3}, {v1, v5}, {v1, v4}, {v1, v6},
		{v3, v4}, {v5, v6},
		{v3, v11}, {v5, v13}, {v4, v11}, {v6, v13},
		{v4, v12}, {v6, v14},
	} {
		db.AddEdge(e[0], e[1])
	}
	data := db.MustBuild()

	// Query: A-B, A-C, B-C triangle with D and E pendants.
	qb := ceci.NewBuilder(0)
	u1, u2, u3 := qb.AddVertex(labelA), qb.AddVertex(labelB), qb.AddVertex(labelC)
	u4, u5 := qb.AddVertex(labelD), qb.AddVertex(labelE)
	qb.AddEdge(u1, u2)
	qb.AddEdge(u1, u3)
	qb.AddEdge(u2, u3)
	qb.AddEdge(u2, u4)
	qb.AddEdge(u3, u4)
	qb.AddEdge(u3, u5)
	query := qb.MustBuild()

	m, err := ceci.Match(data, query, nil)
	if err != nil {
		panic(err)
	}
	embs := m.Collect()
	sort.Slice(embs, func(i, j int) bool { return embs[i][u2] < embs[j][u2] })
	for _, emb := range embs {
		fmt.Println(emb)
	}
	// Output:
	// [0 1 3 5 7]
	// [0 2 4 6 8]
}

// Counting with a limit: the paper's first-k mode.
func ExampleCount() {
	b := ceci.NewBuilder(0)
	// A 5-clique: C(5,3) = 10 triangles.
	for i := 0; i < 5; i++ {
		b.AddVertex(0)
	}
	for i := ceci.VertexID(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)
		}
	}
	data := b.MustBuild()

	q := ceci.NewBuilder(3)
	q.AddEdge(0, 1)
	q.AddEdge(1, 2)
	q.AddEdge(0, 2)
	triangle := q.MustBuild()

	all, _ := ceci.Count(data, triangle, nil)
	first4, _ := ceci.Count(data, triangle, &ceci.Options{Limit: 4})
	fmt.Println(all, first4)
	// Output:
	// 10 4
}
