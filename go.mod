module ceci

go 1.24
