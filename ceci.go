// Package ceci is a Go implementation of CECI — the Compact Embedding
// Cluster Index for scalable subgraph matching (Bhattarai, Liu, Huang;
// SIGMOD 2019).
//
// Given a labeled query graph and a (much larger) labeled data graph,
// CECI enumerates every subgraph of the data graph isomorphic to the
// query. It decomposes the data graph into embedding clusters — one per
// candidate of the root query vertex — indexes tree-edge and non-tree-
// edge candidates with BFS filtering and reverse-BFS refinement, and
// enumerates embeddings in parallel purely by sorted-set intersection,
// with cardinality-driven workload balancing across workers.
//
// # Quick start
//
//	data, err := ceci.LoadGraphFile("data.lg")
//	query, err := ceci.LoadGraphFile("query.lg")
//	m, err := ceci.Match(data, query, nil)
//	n := m.Count() // all embeddings, all cores
//
// See the examples directory for labeled matching, workload-strategy
// exploration, and the simulated distributed deployment.
//
// # Correctness
//
// Everything this package exports is continuously cross-validated by
// the differential harness in internal/verify: seeded random pairs are
// matched by CECI, five independent baseline matchers, and a
// brute-force reference enumerator, which must all produce the same
// canonical embedding set; metamorphic invariants (graph isomorphism,
// label renaming, edge deletion, Options variations, index
// serialization round-trips) guard the properties no single oracle
// can. Replay any reported seed with `cecirun -verify -seed N`.
package ceci

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"ceci/internal/auto"
	icec "ceci/internal/ceci"
	"ceci/internal/enum"
	"ceci/internal/graph"
	"ceci/internal/obs"
	"ceci/internal/order"
	"ceci/internal/plan"
	"ceci/internal/prof"
	"ceci/internal/stats"
	"ceci/internal/telemetry"
	"ceci/internal/workload"
)

// Core graph types, aliased from the internal substrate so they can be
// used directly by importers of this package.
type (
	// Graph is an immutable undirected labeled graph in CSR form.
	Graph = graph.Graph
	// Builder accumulates vertices and edges and produces a Graph.
	Builder = graph.Builder
	// VertexID identifies a vertex: dense uint32 in [0, NumVertices).
	VertexID = graph.VertexID
	// Label is a vertex label drawn from a dense alphabet.
	Label = graph.Label
	// Stats carries instrumentation counters across a run.
	Stats = stats.Counters
)

// Observability types, aliased from the internal obs layer.
type (
	// Tracer records a hierarchical tree of timed spans
	// (preprocess → build → refine → enumerate → cluster).
	Tracer = obs.Tracer
	// TracerOptions configures a Tracer (child caps, JSONL event log).
	TracerOptions = obs.TracerOptions
	// TraceContext is a W3C traceparent-compatible trace position
	// (128-bit trace ID + parent span ID + sampling flag); carry it on a
	// context via obs.ContextWithTrace to stitch a Match's spans into a
	// caller-owned distributed trace.
	TraceContext = obs.TraceContext
	// Progress is one live snapshot of an enumeration.
	Progress = obs.Progress
	// ProgressFunc receives Progress snapshots at Options.ProgressInterval.
	ProgressFunc = obs.ProgressFunc
)

// NewTracer returns a span tracer to attach to Options.Tracer.
func NewTracer(opts TracerOptions) *Tracer { return obs.NewTracer(opts) }

// Resource accounting, aliased from the internal telemetry layer.
type (
	// Ledger accumulates one run's resource charges — CPU time, work
	// units, recursive calls, embeddings, peak scratch footprint, and the
	// intersection-kernel mix — at work-unit boundaries, so the
	// steady-state enumeration step stays allocation-free.
	Ledger = telemetry.Ledger
	// QueryResources is a Ledger snapshot: the immutable per-run resource
	// accounting attached to flight records and EXPLAIN ANALYZE profiles.
	QueryResources = obs.QueryResources
)

// NewLedger returns a resource ledger to attach to Options.Ledger.
func NewLedger() *Ledger { return telemetry.NewLedger() }

// Strategy selects how embedding clusters are distributed across workers
// (Sections 4.2–4.3 of the paper).
type Strategy int

const (
	// StrategyFine decomposes extreme clusters before dynamic pulling
	// (FGD) — the paper's best performer and this package's default.
	StrategyFine Strategy = iota
	// StrategyStatic assigns an equal number of clusters per worker (ST).
	StrategyStatic
	// StrategyCoarse lets idle workers pull whole clusters (CGD).
	StrategyCoarse
)

func (s Strategy) internal() workload.Strategy {
	switch s {
	case StrategyStatic:
		return workload.ST
	case StrategyCoarse:
		return workload.CGD
	default:
		return workload.FGD
	}
}

func (s Strategy) String() string { return s.internal().String() }

// OrderHeuristic selects the matching-order heuristic.
type OrderHeuristic = order.Heuristic

// Matching-order heuristics (Section 2.2).
const (
	OrderBFS           = order.BFSOrder
	OrderLeastFrequent = order.LeastFrequent
	OrderPathRanked    = order.PathRanked
	OrderEdgeRanked    = order.EdgeRanked
)

// NewBuilder returns a Builder pre-sized for n vertices (labels 0).
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// LoadGraph reads an unlabeled edge list ("u v" per line, # comments).
func LoadGraph(r io.Reader) (*Graph, error) { return graph.LoadEdgeList(r) }

// LoadLabeledGraph reads the "t/v/e" labeled-graph format.
func LoadLabeledGraph(r io.Reader) (*Graph, error) { return graph.LoadLabeled(r) }

// LoadGraphFile loads a graph from disk, dispatching on extension
// (".lg" labeled, otherwise edge list).
func LoadGraphFile(path string) (*Graph, error) { return graph.LoadFile(path) }

// WriteLabeledGraph writes g in the "t/v/e" format.
func WriteLabeledGraph(w io.Writer, g *Graph) error { return graph.WriteLabeled(w, g) }

// Options tunes matching. The zero value (or nil) gives the paper's
// defaults: all cores, FGD workload balancing with β = 0.2, BFS matching
// order, intersection-based enumeration, automorphism breaking on.
type Options struct {
	// Workers bounds parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Limit stops after this many embeddings (0 = all). The paper's
	// first-k experiments use 1024.
	Limit int64
	// Strategy selects cluster distribution (default StrategyFine).
	Strategy Strategy
	// Beta is the ExtremeCluster decomposition threshold factor
	// (default 0.2, the paper's §6.3 setting).
	Beta float64
	// Order selects the matching-order heuristic (default OrderBFS).
	// Ignored when Planner is set.
	Order OrderHeuristic
	// Planner enables cost-based matching-order selection: every static
	// heuristic's order plus a greedy min-cost order are scored by the
	// cardinality model of internal/plan — built from label frequencies,
	// NLC selectivities, and filtered candidate counts — and the
	// cheapest is used. ExplainAnalyze then reports the estimate of
	// every order considered alongside the observed per-depth
	// selectivities.
	Planner bool
	// Root, when non-nil, forces the root query vertex; nil selects it
	// by the paper's argmin |cand(u)|/deg(u) cost rule.
	Root *VertexID
	// KeepAutomorphisms lists every automorphic image of each embedding
	// instead of one canonical representative.
	KeepAutomorphisms bool
	// EdgeVerification switches the enumerator to adjacency-probe
	// verification of non-tree edges — the ablation of Section 4.1;
	// intersection (the default) is what the paper advocates.
	EdgeVerification bool
	// RefineRounds is the number of reverse-BFS refinement passes
	// (default 1, the paper's setting).
	RefineRounds int
	// Stats, when non-nil, accumulates instrumentation counters.
	Stats *Stats
	// Tracer, when non-nil, records hierarchical spans for every phase
	// (preprocess, build with refine children, enumerate with per-cluster
	// children). One tracer may be shared across queries.
	Tracer *Tracer
	// Ledger, when non-nil, accumulates the run's resource charges (CPU
	// time, work units, peak scratch bytes, kernel mix) at work-unit
	// boundaries. Read it with Ledger.Snapshot after the enumeration.
	Ledger *Ledger
	// Progress, when non-nil, is invoked every ProgressInterval during
	// enumeration — and once more when it finishes (Progress.Final) —
	// with live cluster/embedding counts, rates, per-worker busy time,
	// and a cardinality-derived ETA.
	Progress ProgressFunc
	// ProgressInterval is the reporting period (default 1s).
	ProgressInterval time.Duration

	// profile, when non-nil, threads the EXPLAIN ANALYZE collector
	// through the build and the enumeration. Set by ExplainAnalyze.
	profile *prof.Collector
	// depth, when non-nil, receives per-depth observed selectivities
	// during enumeration. Set by ExplainAnalyze under Planner so the
	// report can compare estimated against observed cost.
	depth *enum.DepthStats
}

func (o *Options) normalized() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.Beta <= 0 {
		out.Beta = workload.DefaultBeta
	}
	return out
}

// Matcher is a prepared (indexed) query against a data graph.
type Matcher struct {
	inner *enum.Matcher
	index *icec.Index
	opts  Options

	// planner/decision are set when Options.Planner chose the order.
	planner  *plan.Planner
	decision *plan.Decision
}

// Plan returns the cost-based planner's decision for this matcher —
// the chosen order, its estimate, and every candidate considered — or
// nil when Options.Planner was off.
func (m *Matcher) Plan() *plan.Decision { return m.decision }

// Match preprocesses the query, builds the CECI index, and returns a
// Matcher ready to enumerate. opts may be nil for defaults.
//
// The query must be a connected graph; an error is returned otherwise
// (disconnected patterns should be matched component by component and
// joined by the caller).
func Match(data, query *Graph, opts *Options) (*Matcher, error) {
	return MatchCtx(context.Background(), data, query, opts)
}

// MatchCtx is Match under a context: the index construction observes
// ctx's deadline/cancellation and aborts promptly (returning the
// context's error) instead of running to completion. The returned
// Matcher's ForEachCtx/CountCtx honor a context during enumeration.
func MatchCtx(ctx context.Context, data, query *Graph, opts *Options) (*Matcher, error) {
	if data == nil || query == nil {
		return nil, fmt.Errorf("ceci: nil %s graph", map[bool]string{true: "data", false: "query"}[data == nil])
	}
	o := opts.normalized()
	forcedRoot := -1
	if o.Root != nil {
		forcedRoot = int(*o.Root)
	}
	psp := obs.StartUnder(ctx, o.Tracer, "preprocess")
	var tree *order.QueryTree
	var planner *plan.Planner
	var decision *plan.Decision
	var err error
	if o.Planner {
		planner, err = plan.New(data, query, plan.Options{ForcedRoot: forcedRoot})
		if err == nil {
			decision, err = planner.Decide(nil)
		}
		if decision != nil {
			tree = decision.Tree
		}
	} else {
		tree, err = order.Preprocess(data, query, order.Options{
			ForcedRoot: forcedRoot,
			Heuristic:  o.Order,
		})
	}
	psp.End()
	if err != nil {
		return nil, err
	}
	ix, err := icec.BuildCtx(ctx, data, tree, icec.Options{
		Workers:      o.Workers,
		RefineRounds: o.RefineRounds,
		Stats:        o.Stats,
		Tracer:       o.Tracer,
		Profile:      o.profile,
	})
	if err != nil {
		return nil, err
	}
	m := enum.NewMatcher(ix, enum.Options{
		Workers:                 o.Workers,
		Limit:                   o.Limit,
		Strategy:                o.Strategy.internal(),
		Beta:                    o.Beta,
		EdgeVerification:        o.EdgeVerification,
		DisableSymmetryBreaking: o.KeepAutomorphisms,
		Stats:                   o.Stats,
		Trace:                   o.Tracer,
		Progress:                o.reporter(),
		Profile:                 o.profile,
		Ledger:                  o.Ledger,
		Depth:                   o.depth,
	})
	return &Matcher{inner: m, index: ix, opts: o, planner: planner, decision: decision}, nil
}

// reporter builds the live-progress reporter for a run, nil when no
// ProgressFunc is configured.
func (o *Options) reporter() *obs.Reporter {
	if o == nil || o.Progress == nil {
		return nil
	}
	return obs.NewReporter(o.Progress, o.ProgressInterval)
}

// Count enumerates and returns the number of embeddings (respecting
// Options.Limit).
func (m *Matcher) Count() int64 { return m.inner.Count() }

// CountCtx counts embeddings under ctx. On deadline or cancellation it
// returns the number of embeddings found so far alongside the context's
// error — callers report the partial count.
func (m *Matcher) CountCtx(ctx context.Context) (int64, error) { return m.inner.CountCtx(ctx) }

// ForEach streams embeddings to fn. The slice is indexed by query vertex
// ID and reused between calls — copy it to retain it. fn may be invoked
// concurrently from multiple workers; return false to stop early.
func (m *Matcher) ForEach(fn func(embedding []VertexID) bool) { m.inner.ForEach(fn) }

// ForEachCtx is ForEach under a context: when ctx is cancelled or times
// out, every enumeration worker stops at its next depth step and the
// context's error is returned. Embeddings delivered before the cut are
// not retracted.
func (m *Matcher) ForEachCtx(ctx context.Context, fn func(embedding []VertexID) bool) error {
	return m.inner.ForEachCtx(ctx, fn)
}

// Collect gathers embeddings into a slice. Intended for modest result
// sets; use ForEach to stream large ones.
func (m *Matcher) Collect() [][]VertexID { return m.inner.Collect() }

// First returns up to k embeddings (the paper's first-1024 mode uses
// k = 1024). Which embeddings are returned is nondeterministic under
// parallel enumeration.
func (m *Matcher) First(k int) [][]VertexID {
	if k <= 0 {
		return nil
	}
	var out [][]VertexID
	remaining := k
	m.ForEach(func(emb []VertexID) bool {
		cp := make([]VertexID, len(emb))
		copy(cp, emb)
		out = append(out, cp)
		remaining--
		return remaining > 0
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// IndexInfo reports size and shape statistics of the built CECI,
// supporting the paper's Table 2 accounting.
type IndexInfo struct {
	// Pivots is the number of embedding clusters.
	Pivots int
	// CandidateEdges counts (key, value) pairs across TE/NTE structures.
	CandidateEdges int64
	// SizeBytes is 8 × CandidateEdges (the paper's accounting).
	SizeBytes int64
	// PhysicalBytes is the measured in-memory footprint of the frozen
	// flat index (key, offset, arena, and cardinality columns) — the
	// number cache byte budgets are charged against.
	PhysicalBytes int64
	// TheoreticalBytes is the worst case 8·|Eq|·|Eg|.
	TheoreticalBytes int64
	// TotalCardinality upper-bounds the number of embeddings.
	TotalCardinality int64
}

// IndexInfo returns statistics about the matcher's CECI.
func (m *Matcher) IndexInfo() IndexInfo {
	return IndexInfo{
		Pivots:           len(m.index.Pivots()),
		CandidateEdges:   m.index.CandidateEdges(),
		SizeBytes:        m.index.SizeBytes(),
		PhysicalBytes:    m.index.PhysicalBytes(),
		TheoreticalBytes: m.index.TheoreticalBytes(),
		TotalCardinality: m.index.TotalCardinality(),
	}
}

// SpaceSavedPercent is the Table 2 "% of space saved" metric.
func (i IndexInfo) SpaceSavedPercent() float64 {
	if i.TheoreticalBytes == 0 {
		return 0
	}
	return 100 * (1 - float64(i.SizeBytes)/float64(i.TheoreticalBytes))
}

// Count is a one-shot convenience: index + enumerate + count.
func Count(data, query *Graph, opts *Options) (int64, error) {
	m, err := Match(data, query, opts)
	if err != nil {
		return 0, err
	}
	return m.Count(), nil
}

// ForEachIncremental enumerates embeddings cluster by cluster, building
// each embedding cluster's slice of the CECI on demand instead of
// indexing the whole data graph up front. Embedding clusters are
// independent — the paper's core observation — so this is the right mode
// for first-k workloads (Options.Limit, the paper's 1,024-embedding
// experiments) and for very selective patterns, where a monolithic build
// would index far more of the graph than the enumeration visits.
//
// Callback semantics match Matcher.ForEach. For exhaustive enumeration
// prefer Match: the shared index amortizes across clusters.
func ForEachIncremental(data, query *Graph, opts *Options, fn func(embedding []VertexID) bool) error {
	return ForEachIncrementalCtx(context.Background(), data, query, opts, fn)
}

// ForEachIncrementalCtx is ForEachIncremental under a context: the
// deadline/cancellation is honored between clusters, inside each
// on-demand per-cluster build, and at enumeration depth steps.
func ForEachIncrementalCtx(ctx context.Context, data, query *Graph, opts *Options, fn func(embedding []VertexID) bool) error {
	if data == nil || query == nil {
		return fmt.Errorf("ceci: nil graph")
	}
	o := opts.normalized()
	forcedRoot := -1
	if o.Root != nil {
		forcedRoot = int(*o.Root)
	}
	psp := obs.StartUnder(ctx, o.Tracer, "preprocess")
	var tree *order.QueryTree
	var err error
	if o.Planner {
		tree, _, err = plan.Choose(data, query, plan.Options{ForcedRoot: forcedRoot})
	} else {
		tree, err = order.Preprocess(data, query, order.Options{
			ForcedRoot: forcedRoot,
			Heuristic:  o.Order,
		})
	}
	psp.End()
	if err != nil {
		return err
	}
	return enum.ForEachIncrementalCtx(ctx, data, tree,
		icec.Options{RefineRounds: o.RefineRounds, Stats: o.Stats},
		enum.Options{
			Workers:                 o.Workers,
			Limit:                   o.Limit,
			EdgeVerification:        o.EdgeVerification,
			DisableSymmetryBreaking: o.KeepAutomorphisms,
			Stats:                   o.Stats,
			Trace:                   o.Tracer,
			Progress:                o.reporter(),
			Ledger:                  o.Ledger,
		}, fn)
}

// CountIncremental counts embeddings via ForEachIncremental.
func CountIncremental(data, query *Graph, opts *Options) (int64, error) {
	var n atomic.Int64
	err := ForEachIncremental(data, query, opts, func([]VertexID) bool {
		n.Add(1)
		return true
	})
	return n.Load(), err
}

// Automorphisms returns the number of automorphic images each embedding
// of query has under the equivalence classes the enumerator breaks.
func Automorphisms(query *Graph) int {
	return auto.Compute(query).OrbitSize()
}

// LoadGraphCSR reads the binary CSR format written by WriteGraphCSR.
func LoadGraphCSR(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadCSR(f)
}

// WriteGraphCSR writes g in the binary CSR format used by the
// shared-storage distributed mode.
func WriteGraphCSR(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := graph.WriteCSR(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
