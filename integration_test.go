package ceci_test

// End-to-end integration tests: file loading through matching through
// result delivery, exercising the public API the way the cmd tools and
// a downstream user would.

import (
	"testing"

	"ceci"
	"ceci/internal/baseline"
	"ceci/internal/baseline/bare"
	"ceci/internal/baseline/cfl"
	"ceci/internal/baseline/dualsim"
	"ceci/internal/baseline/psgl"
	"ceci/internal/baseline/turboiso"
	"ceci/internal/cluster"
	"ceci/internal/gen"
	"ceci/internal/graph"
)

func TestFig1FromFiles(t *testing.T) {
	data, err := ceci.LoadGraphFile("testdata/fig1_data.lg")
	if err != nil {
		t.Fatal(err)
	}
	query, err := ceci.LoadGraphFile("testdata/fig1_query.lg")
	if err != nil {
		t.Fatal(err)
	}
	n, err := ceci.Count(data, query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count = %d, want 2 (the paper's Figure 1 embeddings)", n)
	}
}

// TestAllSystemsAgreeOnOneWorkload runs every matcher in the repository
// over the same realistic workload and requires identical counts: the
// core (all strategies), all five baselines, and both distributed paths.
func TestAllSystemsAgreeOnOneWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short")
	}
	data := gen.WithRandomLabels(gen.Kronecker(10, 6, 31), 4, 32)
	query := gen.QuerySet(data, 4, 1, 17)
	if len(query) == 0 {
		t.Skip("no query region")
	}
	q := query[0]

	want, err := ceci.Count(data, q, &ceci.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("strategies", func(t *testing.T) {
		for _, s := range []ceci.Strategy{ceci.StrategyStatic, ceci.StrategyCoarse, ceci.StrategyFine} {
			got, err := ceci.Count(data, q, &ceci.Options{Strategy: s, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%v: got %d want %d", s, got, want)
			}
		}
	})

	t.Run("baselines", func(t *testing.T) {
		checks := []struct {
			name string
			f    baseline.ForEachFunc
		}{
			{"bare", bare.ForEach},
			{"psgl", psgl.ForEach},
			{"cfl", cfl.ForEach},
			{"turboiso", turboiso.ForEach},
			{"dualsim", func(d, qq *graph.Graph, o baseline.Options, fn func([]graph.VertexID) bool) error {
				return dualsim.ForEachOpt(d, qq, dualsim.Options{Options: o}, fn)
			}},
		}
		for _, c := range checks {
			got, err := baseline.CountWith(c.f, data, q, baseline.Options{Workers: 2})
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			if got != want {
				t.Fatalf("%s: got %d want %d", c.name, got, want)
			}
		}
	})

	t.Run("distributed", func(t *testing.T) {
		res, err := cluster.Run(data, q, cluster.Config{Machines: 4, WorkersPerMachine: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Embeddings != want {
			t.Fatalf("cluster.Run: got %d want %d", res.Embeddings, want)
		}
		sim, err := cluster.NewSimulation(data, q)
		if err != nil {
			t.Fatal(err)
		}
		if sim.Embeddings() != want {
			t.Fatalf("cluster.Simulation: got %d want %d", sim.Embeddings(), want)
		}
	})
}

// TestStreamingUnderLimitStopsWorkers verifies first-k mode terminates
// promptly on a workload with far more embeddings than the limit.
func TestStreamingUnderLimitStopsWorkers(t *testing.T) {
	data := gen.Kronecker(11, 10, 41)
	m, err := ceci.Match(data, gen.QG1(), &ceci.Options{Limit: 50, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Count(); got != 50 {
		t.Fatalf("count = %d, want 50", got)
	}
}
