package main

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ceci"
	"ceci/internal/gen"
	"ceci/internal/service"
	"ceci/internal/shard"
)

// TestPartitionMode: -partition cuts fig1 into three shards whose
// manifest loads back with every vertex owned exactly once.
func TestPartitionMode(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	cfg := routeConfig{
		partition: true,
		dataPath:  "../../testdata/fig1_data.lg",
		shards:    3,
		radius:    2,
		outDir:    dir,
		errw:      io.Discard,
		outw:      &out,
	}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "3 shards") {
		t.Errorf("partition summary missing shard count: %q", out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}
	data, err := ceci.LoadGraphFile("../../testdata/fig1_data.lg")
	if err != nil {
		t.Fatal(err)
	}
	owned := 0
	for id := 0; id < 3; id++ {
		p, err := shard.LoadPart(dir, id)
		if err != nil {
			t.Fatalf("shard %d: %v", id, err)
		}
		owned += p.Owned()
	}
	if owned != data.NumVertices() {
		t.Fatalf("shards own %d vertices, want %d", owned, data.NumVertices())
	}
}

// TestRouteModeSmoke: partition fig1, serve every shard in-process, run
// the router via run(), and check the merged count against the paper's
// Figure 1 embedding list.
func TestRouteModeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	dir := t.TempDir()
	if err := run(ctx, routeConfig{
		partition: true,
		dataPath:  "../../testdata/fig1_data.lg",
		shards:    3,
		radius:    2,
		outDir:    dir,
		errw:      io.Discard,
		outw:      io.Discard,
	}); err != nil {
		t.Fatal(err)
	}

	// Shard fleet: one shard-mode engine per partition.
	var replicas [][]string
	for id := 0; id < 3; id++ {
		p, err := shard.LoadPart(dir, id)
		if err != nil {
			t.Fatal(err)
		}
		eng := service.New(p.Graph, service.Options{
			MaxLimit: 1 << 20,
			Shard: &service.ShardConfig{
				ID: p.ID, Shards: p.Shards, Radius: p.Radius,
				Globals: p.Globals, OwnedLocals: p.OwnedLocals,
			},
		})
		srv := httptest.NewServer(eng.Handler())
		t.Cleanup(srv.Close)
		replicas = append(replicas, []string{srv.URL})
	}

	readyc := make(chan string, 1)
	cfg := routeConfig{
		manifestDir: dir,
		replicas:    replicas,
		listen:      "127.0.0.1:0",
		policy:      "round-robin",
		healthInt:   25 * time.Millisecond,
		healthTO:    time.Second,
		healthFails: 2,
		timeout:     30 * time.Second,
		maxTimeout:  time.Minute,
		margin:      20 * time.Millisecond,
		maxLimit:    1 << 20,
		drain:       5 * time.Second,
		traceSample: 1,
		errw:        io.Discard,
		outw:        io.Discard,
		ready:       func(a string) { readyc <- a },
	}
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg) }()

	var addr string
	select {
	case addr = <-readyc:
	case err := <-done:
		t.Fatalf("router exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("router not ready after 10s")
	}

	cl := service.NewClient("http://"+addr, nil)
	queryText, err := os.ReadFile("../../testdata/fig1_query.lg")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Query(ctx, service.QueryRequest{Query: string(queryText), Limit: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(gen.Fig1Embeddings()))
	if resp.Partial || resp.Count != want {
		t.Fatalf("routed fig1: partial %v count %d, want exact %d", resp.Partial, resp.Count, want)
	}
	// Embeddings are global ids: every vertex must exist in the source.
	data, err := ceci.LoadGraphFile("../../testdata/fig1_data.lg")
	if err != nil {
		t.Fatal(err)
	}
	for _, emb := range resp.Embeddings {
		for _, v := range emb {
			if int(v) >= data.NumVertices() {
				t.Fatalf("embedding vertex %d beyond the global graph", v)
			}
		}
	}

	// SIGTERM path (modeled by context cancellation) drains cleanly.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("router did not drain within 10s")
	}
}

// TestRouteModeValidation: missing or inconsistent fleet wiring fails
// fast instead of serving a half-configured router.
func TestRouteModeValidation(t *testing.T) {
	if err := run(context.Background(), routeConfig{errw: io.Discard, outw: io.Discard}); err == nil {
		t.Error("route mode without -manifest should fail")
	}

	dir := t.TempDir()
	if err := run(context.Background(), routeConfig{
		partition: true, dataPath: "../../testdata/fig1_data.lg",
		shards: 2, radius: 2, outDir: dir, errw: io.Discard, outw: io.Discard,
	}); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), routeConfig{
		manifestDir: dir,
		replicas:    [][]string{{"http://127.0.0.1:1"}}, // 1 flag, 2 shards
		errw:        io.Discard, outw: io.Discard,
	})
	if err == nil || !strings.Contains(err.Error(), "2 shards") {
		t.Errorf("replica/shard mismatch should fail with the counts: %v", err)
	}

	err = run(context.Background(), routeConfig{
		manifestDir: dir,
		replicas:    [][]string{{"http://a"}, {"http://b"}},
		policy:      "random",
		errw:        io.Discard, outw: io.Discard,
	})
	if err == nil {
		t.Error("unknown policy should fail")
	}
}
