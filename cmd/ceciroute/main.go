// Command ceciroute is the shard fleet's control plane: it cuts a data
// graph into pivot-owned partitions (-partition) and runs the stateless
// scatter-gather router in front of shard-mode ceciserve processes.
//
// Partition a graph:
//
//	ceciroute -partition -data graph.lg -shards 3 -radius 2 -out shards/
//
// Serve each partition (one ceciserve per shard):
//
//	ceciserve -shard-manifest shards/ -shard-id 0 -listen :8081
//	ceciserve -shard-manifest shards/ -shard-id 1 -listen :8082
//	ceciserve -shard-manifest shards/ -shard-id 2 -listen :8083
//
// Route queries across the fleet:
//
//	ceciroute -manifest shards/ \
//	    -shard http://127.0.0.1:8081 -shard http://127.0.0.1:8082 \
//	    -shard http://127.0.0.1:8083 -listen :8080
//
// Each -shard flag lists one shard's replicas (comma-separated base
// URLs), in shard-id order. POST /query scatter-gathers across every
// shard and merges counts/embeddings; GET /shardz shows per-replica
// health; GET /tracez/{traceID} exports a span tree stitched across the
// router and the shards.
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener stops
// accepting, in-flight scatters drain (bounded by -drain), then the
// process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ceci"
	"ceci/internal/buildinfo"
	"ceci/internal/datasets"
	"ceci/internal/graph"
	"ceci/internal/obs"
	"ceci/internal/shard"
	"ceci/internal/telemetry"
)

type routeConfig struct {
	// Partition mode.
	partition bool
	dataPath  string
	dataset   string
	shards    int
	radius    int
	jaccard   bool
	outDir    string

	// Route mode.
	manifestDir string
	replicas    [][]string // one entry per -shard flag, in shard-id order
	listen      string
	policy      string
	hedge       time.Duration
	healthInt   time.Duration
	healthTO    time.Duration
	healthFails int
	timeout     time.Duration
	maxTimeout  time.Duration
	margin      time.Duration
	maxLimit    int64
	drain       time.Duration
	traceSample float64
	flightSize  int
	telemetry   bool
	version     bool

	errw io.Writer // defaults to os.Stderr; tests capture it
	outw io.Writer // defaults to os.Stdout; tests capture it

	// ready, when non-nil, receives the bound address once the router
	// accepts connections (tests use it to find the ephemeral port).
	ready func(addr string)
}

func main() {
	cfg := routeConfig{}
	flag.BoolVar(&cfg.partition, "partition", false, "partition mode: cut -data/-dataset into -shards parts under -out, then exit")
	flag.StringVar(&cfg.dataPath, "data", "", "partition mode: data graph file (.lg labeled, else edge list)")
	flag.StringVar(&cfg.dataset, "dataset", "", "partition mode: built-in dataset substitute (alternative to -data)")
	flag.IntVar(&cfg.shards, "shards", 2, "partition mode: number of shards to cut")
	flag.IntVar(&cfg.radius, "radius", 2, "partition mode: halo radius (max query anchor eccentricity the fleet can answer)")
	flag.BoolVar(&cfg.jaccard, "jaccard", false, "partition mode: co-locate pivots with Jaccard neighborhood similarity >= 0.5")
	flag.StringVar(&cfg.outDir, "out", "", "partition mode: directory for manifest.json and shard files")
	flag.StringVar(&cfg.manifestDir, "manifest", "", "route mode: partition directory written by -partition")
	flag.Func("shard", "route mode: one shard's replica base URLs, comma-separated; repeat in shard-id order", func(v string) error {
		var urls []string
		for _, u := range strings.Split(v, ",") {
			u = strings.TrimSpace(strings.TrimSuffix(u, "/"))
			if u == "" {
				continue
			}
			urls = append(urls, u)
		}
		if len(urls) == 0 {
			return errors.New("empty replica list")
		}
		cfg.replicas = append(cfg.replicas, urls)
		return nil
	})
	flag.StringVar(&cfg.listen, "listen", ":8080", "route mode: address to serve the router API on")
	flag.StringVar(&cfg.policy, "policy", "round-robin", "replica routing policy: broadcast, round-robin, or least-loaded")
	flag.DurationVar(&cfg.hedge, "hedge", 0, "launch a second replica when the first has not answered within this delay (0 = off)")
	flag.DurationVar(&cfg.healthInt, "health-interval", time.Second, "replica health-check period")
	flag.DurationVar(&cfg.healthTO, "health-timeout", 2*time.Second, "per-probe timeout")
	flag.IntVar(&cfg.healthFails, "health-fails", 2, "consecutive probe failures before a replica is excluded")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "default per-query deadline")
	flag.DurationVar(&cfg.maxTimeout, "max-timeout", 5*time.Minute, "upper clamp on request-supplied deadlines")
	flag.DurationVar(&cfg.margin, "margin", 50*time.Millisecond, "deadline slice held back from shards for merging")
	flag.Int64Var(&cfg.maxLimit, "max-limit", 10000, "max merged embeddings returned per request")
	flag.DurationVar(&cfg.drain, "drain", 10*time.Second, "graceful-shutdown drain window")
	flag.Float64Var(&cfg.traceSample, "trace-sample", 1, "head-based trace sampling rate in [0,1] (negative = none)")
	flag.IntVar(&cfg.flightSize, "flight", 0, "flight-recorder ring capacity (0 = default 256)")
	flag.BoolVar(&cfg.telemetry, "telemetry", true, "enable the telemetry hub: /statz, /dashz")
	flag.BoolVar(&cfg.version, "version", false, "print build identity (module version, VCS revision, go version) and exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "ceciroute:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg routeConfig) error {
	if cfg.errw == nil {
		cfg.errw = os.Stderr
	}
	if cfg.outw == nil {
		cfg.outw = os.Stdout
	}
	if cfg.version {
		fmt.Fprintln(cfg.outw, buildinfo.Get())
		return nil
	}
	if cfg.partition {
		return runPartition(cfg)
	}
	return runRouter(ctx, cfg)
}

// runPartition cuts the data graph and writes the shard manifest.
func runPartition(cfg routeConfig) error {
	if cfg.outDir == "" {
		return errors.New("-partition requires -out")
	}
	data, err := loadData(cfg.dataPath, cfg.dataset)
	if err != nil {
		return err
	}
	parts, err := shard.Split(data, shard.PartitionOptions{
		Shards:  cfg.shards,
		Radius:  cfg.radius,
		Jaccard: cfg.jaccard,
	})
	if err != nil {
		return err
	}
	m, err := shard.Save(cfg.outDir, data, parts, cfg.jaccard)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.outw, "ceciroute: partitioned %v into %d shards (radius %d) under %s\n",
		data, m.Shards, m.Radius, cfg.outDir)
	for i, p := range m.Parts {
		fmt.Fprintf(cfg.outw, "  shard %d: %d vertices (%d owned), %d edges -> %s\n",
			i, p.Vertices, p.Owned, p.Edges, p.Graph)
	}
	return nil
}

// runRouter serves the scatter-gather router until the context ends.
func runRouter(ctx context.Context, cfg routeConfig) error {
	if cfg.manifestDir == "" {
		return errors.New("route mode requires -manifest (or use -partition)")
	}
	m, err := shard.LoadManifest(cfg.manifestDir)
	if err != nil {
		return err
	}
	if len(cfg.replicas) == 0 {
		return fmt.Errorf("route mode requires %d -shard flags (one per manifest part, in shard-id order)", m.Shards)
	}
	if len(cfg.replicas) != m.Shards {
		return fmt.Errorf("manifest declares %d shards but %d -shard flags given", m.Shards, len(cfg.replicas))
	}
	policy, err := shard.ParsePolicy(cfg.policy)
	if err != nil {
		return err
	}

	var hub *telemetry.Hub
	if cfg.telemetry {
		hub = telemetry.NewHub(telemetry.Options{})
		hub.Start()
		defer hub.Stop()
	}
	rt, err := shard.NewRouter(shard.RouterOptions{
		Shards:         cfg.replicas,
		Radius:         m.Radius,
		Policy:         policy,
		HealthInterval: cfg.healthInt,
		HealthTimeout:  cfg.healthTO,
		HealthFails:    cfg.healthFails,
		Hedge:          cfg.hedge,
		DefaultTimeout: cfg.timeout,
		MaxTimeout:     cfg.maxTimeout,
		DeadlineMargin: cfg.margin,
		MaxLimit:       cfg.maxLimit,
		Tracer:         obs.NewTracer(obs.TracerOptions{}),
		TraceSample:    cfg.traceSample,
		FlightSize:     cfg.flightSize,
		Registry:       obs.NewRegistry(),
		Telemetry:      hub,
	})
	if err != nil {
		return err
	}
	rt.Start()
	defer rt.Stop()

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", cfg.listen, err)
	}
	srv := &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(cfg.errw, "ceciroute: routing %d shards (policy %s, radius %d) on http://%s/\n",
		m.Shards, policy.Name(), m.Radius, ln.Addr())
	if cfg.ready != nil {
		cfg.ready(ln.Addr().String())
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(cfg.errw, "ceciroute: shutting down (drain %v)\n", cfg.drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		srv.Close()
		return fmt.Errorf("drain incomplete: %w", err)
	}
	fmt.Fprintf(cfg.errw, "ceciroute: clean shutdown\n")
	return nil
}

func loadData(path, dataset string) (*graph.Graph, error) {
	switch {
	case path != "" && dataset != "":
		return nil, fmt.Errorf("-data and -dataset are mutually exclusive")
	case path != "":
		return ceci.LoadGraphFile(path)
	case dataset != "":
		return datasets.Load(dataset)
	default:
		return nil, fmt.Errorf("need -data or -dataset")
	}
}
