package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"ceci"
	"ceci/internal/graph"
	"ceci/internal/service"
	"ceci/internal/shard"
)

// baseConfig is the shared test scaffolding for serve runs.
func baseConfig() serveConfig {
	return serveConfig{
		listen:     "127.0.0.1:0",
		queueDepth: 8,
		cacheMB:    64,
		workers:    1,
		timeout:    30 * time.Second,
		maxTimeout: time.Minute,
		maxLimit:   1 << 20,
		drain:      5 * time.Second,
		errw:       io.Discard,
	}
}

// TestReadinessGate: the server listens before the data graph loads;
// during that window /healthz answers 200 (live) but ?ready=1 answers
// 503, and both flip once the engine is resident.
func TestReadinessGate(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	listenc := make(chan string, 1)
	readyc := make(chan string, 1)
	cfg := baseConfig()
	cfg.dataPath = "../../testdata/fig1_data.lg"
	cfg.listening = func(a string) { listenc <- a }
	cfg.ready = func(a string) { readyc <- a }
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg) }()

	var addr string
	select {
	case addr = <-listenc:
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server not listening after 10s")
	}

	// The gate phase is a race against a fast data load; we can't assert
	// we observed it, but any pre-ready response must be the gate's: 200
	// liveness, 503 readiness, never a query success. Probe once here;
	// the load of fig1 is fast so this usually lands post-ready — both
	// shapes are checked below.
	cl := service.NewClient("http://"+addr, nil)
	cl.SetRetry(1, 0, 0)
	if h, err := cl.Healthz(ctx); err != nil {
		t.Fatalf("liveness during startup must stay 200: %v", err)
	} else if h.Status != "ok" && h.Status != "starting" {
		t.Fatalf("healthz status %q, want ok or starting", h.Status)
	}

	select {
	case <-readyc:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server not ready after 10s")
	}

	// Post-ready: readiness answers 200 and Ready is reported.
	if err := cl.Ready(ctx); err != nil {
		t.Fatalf("ready probe after load: %v", err)
	}
	h, err := cl.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || !h.Ready {
		t.Fatalf("post-ready healthz = %+v", h)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// newGateTestServer serves the pre-ready gate handler over httptest.
func newGateTestServer(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(gateHandler())
	t.Cleanup(srv.Close)
	return srv.URL
}

// mustLoadQuery parses labeled-graph text.
func mustLoadQuery(t *testing.T, text []byte) *graph.Graph {
	t.Helper()
	q, err := graph.LoadLabeled(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestGateHandlerShape: the pre-ready handler's contract, checked
// directly — liveness 200, readiness 503, queries 503.
func TestGateHandlerShape(t *testing.T) {
	srv := newGateTestServer(t)
	for _, c := range []struct {
		path string
		want int
	}{
		{"/healthz", http.StatusOK},
		{"/healthz?ready=1", http.StatusServiceUnavailable},
		{"/query", http.StatusServiceUnavailable},
		{"/cachez", http.StatusServiceUnavailable},
	} {
		resp, err := http.Get(srv + c.path)
		if err != nil {
			t.Fatalf("%s: %v", c.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.path, resp.StatusCode, c.want)
		}
	}
}

// TestServeShardMode: partition fig1 into two shards, serve one, and
// check the health document names the partition while queries answer
// only the owned pivots' share.
func TestServeShardMode(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	data, err := ceci.LoadGraphFile("../../testdata/fig1_data.lg")
	if err != nil {
		t.Fatal(err)
	}
	parts, err := shard.Split(data, shard.PartitionOptions{Shards: 2, Radius: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := shard.Save(dir, data, parts, false); err != nil {
		t.Fatal(err)
	}

	queryText, err := os.ReadFile("../../testdata/fig1_query.lg")
	if err != nil {
		t.Fatal(err)
	}

	// Serve both shards; their counts must sum to the single-node count.
	var total int64
	for id := 0; id < 2; id++ {
		readyc := make(chan string, 1)
		cfg := baseConfig()
		cfg.shardDir = dir
		cfg.shardID = id
		cfg.ready = func(a string) { readyc <- a }
		sctx, scancel := context.WithCancel(ctx)
		done := make(chan error, 1)
		go func() { done <- run(sctx, cfg) }()

		var addr string
		select {
		case addr = <-readyc:
		case err := <-done:
			t.Fatalf("shard %d exited before ready: %v", id, err)
		case <-time.After(10 * time.Second):
			t.Fatalf("shard %d not ready after 10s", id)
		}
		cl := service.NewClient("http://"+addr, nil)
		h, err := cl.Healthz(ctx)
		if err != nil {
			t.Fatalf("shard %d healthz: %v", id, err)
		}
		if h.ShardID == nil || *h.ShardID != id || h.ShardCount != 2 || h.ShardRadius != 2 {
			t.Fatalf("shard %d healthz shard fields = %+v", id, h)
		}
		if h.ShardOwned <= 0 || h.ShardOwned >= data.NumVertices() {
			t.Fatalf("shard %d owns %d of %d vertices; want a proper subset", id, h.ShardOwned, data.NumVertices())
		}
		resp, err := cl.Query(ctx, service.QueryRequest{Query: string(queryText)})
		if err != nil {
			t.Fatalf("shard %d query: %v", id, err)
		}
		// Embeddings come back in global vertex ids: all within range.
		for _, emb := range resp.Embeddings {
			for _, v := range emb {
				if int(v) >= data.NumVertices() {
					t.Fatalf("shard %d emitted local id %d beyond the global graph", id, v)
				}
			}
		}
		total += resp.Count
		scancel()
		if err := <-done; err != nil {
			t.Fatalf("shard %d shutdown: %v", id, err)
		}
	}

	m, err := ceci.Match(data, mustLoadQuery(t, queryText), &ceci.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(m.Collect()))
	if total != want {
		t.Fatalf("shard counts sum to %d, single-node count is %d", total, want)
	}
}

// TestServeShardFlagValidation: the flag cross-checks reject
// inconsistent shard configurations.
func TestServeShardFlagValidation(t *testing.T) {
	cfg := baseConfig()
	cfg.shardDir = t.TempDir() // no manifest inside
	cfg.shardID = 0
	if err := run(context.Background(), cfg); err == nil {
		t.Error("missing manifest.json should fail")
	}

	cfg = baseConfig()
	cfg.shardDir = "somewhere"
	cfg.shardID = -1
	if err := run(context.Background(), cfg); err == nil {
		t.Error("-shard-manifest without -shard-id should fail")
	}

	cfg = baseConfig()
	cfg.shardDir = "somewhere"
	cfg.shardID = 0
	cfg.dataPath = "also-data.lg"
	if err := run(context.Background(), cfg); err == nil {
		t.Error("-shard-manifest with -data should fail")
	}
}
