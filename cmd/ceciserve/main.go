// Command ceciserve runs the long-running query service: the data graph
// is loaded once and held resident, per-query CECI indexes are cached by
// canonical query hash, and match requests arrive over an HTTP JSON API
// with admission control and per-request deadlines.
//
// Usage:
//
//	ceciserve -data graph.lg -listen :8080
//	ceciserve -dataset yt_s -listen 127.0.0.1:8080 -cache-mb 512 -concurrency 8
//
// Endpoints: POST /query, GET /healthz, GET /cachez, GET /queryz (flight
// recorder), GET /tracez/{traceID} (per-query Chrome trace export),
// GET /statz (telemetry hub: ledgers, rollups, SLO burn), GET /dashz
// (HTML dashboard), plus the metric routes (/metrics, /metrics.json,
// /trace, /debug/pprof/).
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener stops
// accepting, in-flight queries drain (bounded by -drain), then the
// process exits 0.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"ceci"
	"ceci/internal/buildinfo"
	"ceci/internal/datasets"
	"ceci/internal/graph"
	"ceci/internal/obs"
	"ceci/internal/order"
	"ceci/internal/service"
	"ceci/internal/shard"
	"ceci/internal/stats"
	"ceci/internal/telemetry"
)

type serveConfig struct {
	dataPath    string
	dataset     string
	shardDir    string // -shard-manifest: partition directory (shard mode)
	shardID     int    // -shard-id: which partition to serve (-1 = single-node)
	listen      string
	concurrency int
	queueDepth  int
	cacheMB     int
	workers     int
	timeout     time.Duration
	maxTimeout  time.Duration
	maxLimit    int64
	drain       time.Duration

	// Adaptive planner.
	planner      bool    // -planner: cost-based order selection + drift re-planning
	plannerDrift float64 // -planner-drift: re-plan when observed cost ≥ this × estimate
	plannerMinQ  int64   // -planner-min-queries: queries observed before drift checks

	// Observability.
	traceSample float64 // -trace-sample: head-based sampling rate for query traces
	traceJSONL  string  // -trace-jsonl: write the span event log (JSONL) here
	auditPath   string  // -audit: write one JSON line per completed query here
	flightSize  int     // -flight: flight-recorder ring capacity
	version     bool    // -version: print build identity and exit

	// Telemetry hub (/statz, /dashz): resource ledgers, time-series
	// rollups, SLO burn rates.
	telemetry       bool          // -telemetry: enable the hub (on by default)
	telemetrySample time.Duration // -telemetry-sample: gauge sampling interval
	sloLatency      time.Duration // -slo-latency: latency SLO target
	sloObjective    float64       // -slo-objective: fraction of queries under target
	sloAvailability float64       // -slo-availability: fraction of queries not failing

	errw io.Writer // defaults to os.Stderr; tests capture it
	outw io.Writer // defaults to os.Stdout; tests capture it

	// listening, when non-nil, receives the bound address as soon as the
	// socket accepts connections — before the data graph loads, while the
	// readiness gate still answers 503 (tests of the gate use it).
	listening func(addr string)

	// ready, when non-nil, receives the bound address once the engine is
	// serving queries (tests use it to find the ephemeral port).
	ready func(addr string)
}

func main() {
	cfg := serveConfig{}
	flag.StringVar(&cfg.dataPath, "data", "", "data graph file (.lg labeled, else edge list)")
	flag.StringVar(&cfg.dataset, "dataset", "", "built-in dataset substitute (alternative to -data)")
	flag.StringVar(&cfg.shardDir, "shard-manifest", "", "shard mode: partition directory written by ceciroute -partition (use with -shard-id)")
	flag.IntVar(&cfg.shardID, "shard-id", -1, "shard mode: which partition of -shard-manifest to serve")
	flag.StringVar(&cfg.listen, "listen", ":8080", "address to serve the query API on")
	flag.IntVar(&cfg.concurrency, "concurrency", 0, "max queries executing at once (0 = all cores)")
	flag.IntVar(&cfg.queueDepth, "queue", 64, "max queries waiting for a slot before load-shedding")
	flag.IntVar(&cfg.cacheMB, "cache-mb", 256, "index cache budget in MiB")
	flag.IntVar(&cfg.workers, "workers", 1, "enumeration workers per query")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "default per-query deadline")
	flag.DurationVar(&cfg.maxTimeout, "max-timeout", 5*time.Minute, "upper clamp on request-supplied deadlines")
	flag.Int64Var(&cfg.maxLimit, "max-limit", 10000, "max embeddings returned per request")
	flag.DurationVar(&cfg.drain, "drain", 10*time.Second, "graceful-shutdown drain window")
	flag.BoolVar(&cfg.planner, "planner", false, "cost-based adaptive planning: score every matching-order heuristic plus a greedy order per query class, cache the winner, re-plan on selectivity drift")
	flag.Float64Var(&cfg.plannerDrift, "planner-drift", 4, "re-plan when a cached order's observed cost is at least this factor above its estimate")
	flag.Int64Var(&cfg.plannerMinQ, "planner-min-queries", 3, "queries a cached plan must observe before drift checks begin")
	flag.Float64Var(&cfg.traceSample, "trace-sample", 1, "head-based trace sampling rate in [0,1]; unsampled queries record no spans (negative = none)")
	flag.StringVar(&cfg.traceJSONL, "trace-jsonl", "", "write the span event log (JSONL) to this file")
	flag.StringVar(&cfg.auditPath, "audit", "", "append one JSON line per completed query (the flight-recorder record) to this file")
	flag.IntVar(&cfg.flightSize, "flight", 0, "flight-recorder ring capacity (0 = default 256)")
	flag.BoolVar(&cfg.version, "version", false, "print build identity (module version, VCS revision, go version) and exit")
	flag.BoolVar(&cfg.telemetry, "telemetry", true, "enable the telemetry hub: per-query resource ledgers, /statz, /dashz")
	flag.DurationVar(&cfg.telemetrySample, "telemetry-sample", 10*time.Second, "telemetry gauge sampling interval")
	flag.DurationVar(&cfg.sloLatency, "slo-latency", 500*time.Millisecond, "latency SLO target per query")
	flag.Float64Var(&cfg.sloObjective, "slo-objective", 0.99, "latency SLO objective (fraction of queries under target)")
	flag.Float64Var(&cfg.sloAvailability, "slo-availability", 0.999, "availability SLO objective (fraction of queries not failing)")
	flag.Parse()
	if cfg.shardID >= 0 && cfg.shardDir == "" {
		fmt.Fprintln(os.Stderr, "ceciserve: -shard-id requires -shard-manifest")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "ceciserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg serveConfig) error {
	if cfg.errw == nil {
		cfg.errw = os.Stderr
	}
	if cfg.outw == nil {
		cfg.outw = os.Stdout
	}
	if cfg.version {
		fmt.Fprintln(cfg.outw, buildinfo.Get())
		return nil
	}
	// Listen before loading the graph: the gate handler answers
	// liveness (200) but not readiness (/healthz?ready=1 -> 503) while
	// the data loads, so routers and smoke tests never race startup.
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", cfg.listen, err)
	}
	var handler atomic.Pointer[http.Handler]
	gate := gateHandler()
	handler.Store(&gate)
	srv := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			(*handler.Load()).ServeHTTP(w, r)
		}),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(cfg.errw, "ceciserve: listening on http://%s/ (loading data)\n", ln.Addr())
	if cfg.listening != nil {
		cfg.listening(ln.Addr().String())
	}

	data, shardCfg, err := loadResident(cfg)
	if err != nil {
		srv.Close()
		return err
	}
	if shardCfg != nil {
		fmt.Fprintf(cfg.errw, "ceciserve: shard %d/%d resident: %v (%d owned, halo radius %d)\n",
			shardCfg.ID, shardCfg.Shards, data, len(shardCfg.OwnedLocals), shardCfg.Radius)
	} else {
		fmt.Fprintf(cfg.errw, "ceciserve: data graph %v resident\n", data)
	}

	// Optional durable observability sinks: the span event log and the
	// per-query audit log are buffered files, flushed on every shutdown
	// path (including SIGINT/SIGTERM) by the deferred closure below.
	tropts := obs.TracerOptions{}
	var traceFile, auditFile *os.File
	var traceBuf, auditBuf *bufio.Writer
	if cfg.traceJSONL != "" {
		traceFile, err = os.Create(cfg.traceJSONL)
		if err != nil {
			srv.Close()
			return fmt.Errorf("-trace-jsonl: %w", err)
		}
		traceBuf = bufio.NewWriter(traceFile)
		tropts.JSONL = traceBuf
	}
	var audit io.Writer
	if cfg.auditPath != "" {
		auditFile, err = os.OpenFile(cfg.auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			srv.Close()
			return fmt.Errorf("-audit: %w", err)
		}
		auditBuf = bufio.NewWriter(auditFile)
		audit = auditBuf
	}
	tracer := obs.NewTracer(tropts)
	defer func() {
		// Force-close any spans still open when the process exits (a query
		// cut off mid-drain), so the span log ends with matched events.
		tracer.EndOpen()
		if traceBuf != nil {
			traceBuf.Flush()
			traceFile.Close()
		}
		if auditBuf != nil {
			auditBuf.Flush()
			auditFile.Close()
		}
	}()

	// Telemetry hub: per-query resource ledgers, time-series rollups, and
	// SLO burn state behind /statz and /dashz. The background sampler
	// stops with the process.
	var hub *telemetry.Hub
	if cfg.telemetry {
		hub = telemetry.NewHub(telemetry.Options{
			SampleInterval: cfg.telemetrySample,
			SLO: telemetry.SLOConfig{
				LatencyTarget:         cfg.sloLatency,
				LatencyObjective:      cfg.sloObjective,
				AvailabilityObjective: cfg.sloAvailability,
			},
		})
		hub.Start()
		defer hub.Stop()
	}

	reg := obs.NewRegistry()
	eng := service.New(data, service.Options{
		MaxConcurrent:     cfg.concurrency,
		QueueDepth:        cfg.queueDepth,
		DefaultTimeout:    cfg.timeout,
		MaxTimeout:        cfg.maxTimeout,
		MaxLimit:          cfg.maxLimit,
		CacheBytes:        int64(cfg.cacheMB) << 20,
		Workers:           cfg.workers,
		Order:             order.BFSOrder,
		Planner:           cfg.planner,
		PlannerDrift:      cfg.plannerDrift,
		PlannerMinQueries: cfg.plannerMinQ,
		Registry:          reg,
		Tracer:            tracer,
		TraceSample:       cfg.traceSample,
		FlightSize:        cfg.flightSize,
		Audit:             audit,
		Stats:             &stats.Counters{},
		Telemetry:         hub,
		Shard:             shardCfg,
	})

	// Swap the gate out: from here /healthz?ready=1 answers 200 and
	// queries are served.
	engh := http.Handler(eng.Handler())
	handler.Store(&engh)
	fmt.Fprintf(cfg.errw, "ceciserve: serving on http://%s/\n", ln.Addr())
	if cfg.ready != nil {
		cfg.ready(ln.Addr().String())
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight queries finish
	// within the window, then force-close whatever remains.
	fmt.Fprintf(cfg.errw, "ceciserve: shutting down (drain %v)\n", cfg.drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		srv.Close()
		return fmt.Errorf("drain incomplete: %w", err)
	}
	fmt.Fprintf(cfg.errw, "ceciserve: clean shutdown\n")
	return nil
}

// gateHandler serves the pre-ready phase: the process is live (plain
// /healthz answers 200 "starting") but not ready (?ready=1 answers 503,
// as does every other route) until the resident graph is loaded and the
// engine handler is swapped in.
func gateHandler() http.Handler {
	starting := service.HealthResponse{Status: "starting", Build: buildinfo.Get()}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		status := http.StatusOK
		if r.URL.Query().Get("ready") == "1" {
			status = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(starting)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "starting: data graph loading", http.StatusServiceUnavailable)
	})
	return mux
}

// loadResident resolves what this process serves: a whole data graph
// (single-node, shardDir empty) or one partition of a shard manifest
// (shard mode). The -shard-id/-shard-manifest pairing is validated at
// flag-parse time in main.
func loadResident(cfg serveConfig) (*graph.Graph, *service.ShardConfig, error) {
	if cfg.shardDir == "" {
		data, err := loadData(cfg.dataPath, cfg.dataset)
		return data, nil, err
	}
	if cfg.dataPath != "" || cfg.dataset != "" {
		return nil, nil, fmt.Errorf("-shard-manifest is mutually exclusive with -data/-dataset")
	}
	if cfg.shardID < 0 {
		return nil, nil, fmt.Errorf("-shard-manifest requires -shard-id")
	}
	part, err := shard.LoadPart(cfg.shardDir, cfg.shardID)
	if err != nil {
		return nil, nil, err
	}
	return part.Graph, &service.ShardConfig{
		ID:          part.ID,
		Shards:      part.Shards,
		Radius:      part.Radius,
		Globals:     part.Globals,
		OwnedLocals: part.OwnedLocals,
	}, nil
}

func loadData(path, dataset string) (*graph.Graph, error) {
	switch {
	case path != "" && dataset != "":
		return nil, fmt.Errorf("-data and -dataset are mutually exclusive")
	case path != "":
		return ceci.LoadGraphFile(path)
	case dataset != "":
		return datasets.Load(dataset)
	default:
		return nil, fmt.Errorf("need -data or -dataset")
	}
}
