package main

import (
	"context"
	"io"
	"os"
	"testing"
	"time"

	"ceci/internal/service"
)

// TestServeSmoke boots the full server on the paper's Figure 1 pair,
// exercises healthz/query/cachez through the typed client, and checks
// the SIGINT path (modeled by context cancellation) shuts down cleanly.
func TestServeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrc := make(chan string, 1)
	cfg := serveConfig{
		dataPath:   "../../testdata/fig1_data.lg",
		listen:     "127.0.0.1:0",
		queueDepth: 8,
		cacheMB:    64,
		workers:    1,
		timeout:    30 * time.Second,
		maxTimeout: time.Minute,
		maxLimit:   100,
		drain:      5 * time.Second,
		errw:       io.Discard,
		ready:      func(a string) { addrc <- a },
	}
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg) }()

	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server not ready after 10s")
	}
	cl := service.NewClient("http://"+addr, nil)

	h, err := cl.Healthz(ctx)
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if h.Status != "ok" || h.DataVertices == 0 {
		t.Fatalf("healthz = %+v", h)
	}

	queryText, err := os.ReadFile("../../testdata/fig1_query.lg")
	if err != nil {
		t.Fatal(err)
	}
	req := service.QueryRequest{Query: string(queryText)}
	first, err := cl.Query(ctx, req)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if first.Count == 0 || len(first.Embeddings) == 0 {
		t.Fatalf("fig1 query found nothing: %+v", first)
	}
	if first.CacheHit {
		t.Error("first query reported a cache hit")
	}

	second, err := cl.Query(ctx, req)
	if err != nil {
		t.Fatalf("repeat query: %v", err)
	}
	if !second.CacheHit {
		t.Error("repeat query missed the cache")
	}
	if second.Count != first.Count {
		t.Errorf("counts differ across cache hit: %d vs %d", second.Count, first.Count)
	}

	cs, err := cl.Cachez(ctx)
	if err != nil {
		t.Fatalf("cachez: %v", err)
	}
	if cs.Hits < 1 || cs.Entries != 1 {
		t.Errorf("cache stats = %+v, want >=1 hit and 1 entry", cs)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down within 10s")
	}
}
