package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ceci/internal/service"
)

// TestServeSmoke boots the full server on the paper's Figure 1 pair,
// exercises healthz/query/cachez through the typed client, and checks
// the SIGINT path (modeled by context cancellation) shuts down cleanly.
func TestServeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrc := make(chan string, 1)
	cfg := serveConfig{
		dataPath:   "../../testdata/fig1_data.lg",
		listen:     "127.0.0.1:0",
		queueDepth: 8,
		cacheMB:    64,
		workers:    1,
		timeout:    30 * time.Second,
		maxTimeout: time.Minute,
		maxLimit:   100,
		drain:      5 * time.Second,
		errw:       io.Discard,
		ready:      func(a string) { addrc <- a },
	}
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg) }()

	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server not ready after 10s")
	}
	cl := service.NewClient("http://"+addr, nil)

	h, err := cl.Healthz(ctx)
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if h.Status != "ok" || h.DataVertices == 0 {
		t.Fatalf("healthz = %+v", h)
	}

	queryText, err := os.ReadFile("../../testdata/fig1_query.lg")
	if err != nil {
		t.Fatal(err)
	}
	req := service.QueryRequest{Query: string(queryText)}
	first, err := cl.Query(ctx, req)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if first.Count == 0 || len(first.Embeddings) == 0 {
		t.Fatalf("fig1 query found nothing: %+v", first)
	}
	if first.CacheHit {
		t.Error("first query reported a cache hit")
	}

	second, err := cl.Query(ctx, req)
	if err != nil {
		t.Fatalf("repeat query: %v", err)
	}
	if !second.CacheHit {
		t.Error("repeat query missed the cache")
	}
	if second.Count != first.Count {
		t.Errorf("counts differ across cache hit: %d vs %d", second.Count, first.Count)
	}

	cs, err := cl.Cachez(ctx)
	if err != nil {
		t.Fatalf("cachez: %v", err)
	}
	if cs.Hits < 1 || cs.Entries != 1 {
		t.Errorf("cache stats = %+v, want >=1 hit and 1 entry", cs)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down within 10s")
	}
}

// TestServeTraceAuditFlush boots a server with the durable observability
// sinks enabled (-audit, -trace-jsonl), runs a traced query, checks the
// tracing endpoints, then shuts down and verifies both files were
// flushed to disk — the SIGINT/SIGTERM flush path.
func TestServeTraceAuditFlush(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	dir := t.TempDir()
	auditPath := filepath.Join(dir, "audit.jsonl")
	tracePath := filepath.Join(dir, "trace.jsonl")
	addrc := make(chan string, 1)
	cfg := serveConfig{
		dataPath:   "../../testdata/fig1_data.lg",
		listen:     "127.0.0.1:0",
		queueDepth: 8,
		cacheMB:    64,
		workers:    1,
		timeout:    30 * time.Second,
		maxTimeout: time.Minute,
		maxLimit:   100,
		drain:      5 * time.Second,
		auditPath:  auditPath,
		traceJSONL: tracePath,
		errw:       io.Discard,
		ready:      func(a string) { addrc <- a },
	}
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg) }()

	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server not ready after 10s")
	}
	cl := service.NewClient("http://"+addr, nil)

	h, err := cl.Healthz(ctx)
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if h.Build.GoVersion == "" {
		t.Fatalf("healthz missing build info: %+v", h)
	}

	queryText, err := os.ReadFile("../../testdata/fig1_query.lg")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Query(ctx, service.QueryRequest{Query: string(queryText)})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if resp.TraceID == "" {
		t.Fatal("response has no trace ID")
	}
	qz, err := cl.Queryz(ctx)
	if err != nil {
		t.Fatalf("queryz: %v", err)
	}
	if qz.Total != 1 || len(qz.Recent) != 1 || qz.Recent[0].TraceID != resp.TraceID {
		t.Fatalf("queryz = %+v, want the one traced query", qz)
	}
	if _, err := cl.Tracez(ctx, resp.TraceID); err != nil {
		t.Fatalf("tracez: %v", err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down within 10s")
	}

	// Both sinks must be flushed and valid JSONL after shutdown.
	for _, p := range []string{auditPath, tracePath} {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
		if len(lines) == 0 || lines[0] == "" {
			t.Fatalf("%s is empty after shutdown", p)
		}
		for _, line := range lines {
			var doc map[string]any
			if err := json.Unmarshal([]byte(line), &doc); err != nil {
				t.Fatalf("%s: bad JSONL line %q: %v", p, line, err)
			}
		}
	}
	// The audit line is the flight record of our query.
	raw, _ := os.ReadFile(auditPath)
	if !strings.Contains(string(raw), resp.TraceID) {
		t.Fatalf("audit log does not mention trace %s:\n%s", resp.TraceID, raw)
	}
}

// TestServeVersion: -version prints the build identity and exits
// without needing a data graph.
func TestServeVersion(t *testing.T) {
	var out strings.Builder
	cfg := serveConfig{version: true, outw: &out, errw: io.Discard}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "go1.") {
		t.Fatalf("version output missing go version: %q", out.String())
	}
}

// TestServeStatzSmoke boots a server with the telemetry hub enabled,
// runs a query, and checks the /statz (JSON + text) and /dashz surfaces
// carry the query's ledger and the SLO state.
func TestServeStatzSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrc := make(chan string, 1)
	cfg := serveConfig{
		dataPath:        "../../testdata/fig1_data.lg",
		listen:          "127.0.0.1:0",
		queueDepth:      8,
		cacheMB:         64,
		workers:         1,
		timeout:         30 * time.Second,
		maxTimeout:      time.Minute,
		maxLimit:        100,
		drain:           5 * time.Second,
		telemetry:       true,
		telemetrySample: 10 * time.Millisecond,
		sloLatency:      500 * time.Millisecond,
		errw:            io.Discard,
		ready:           func(a string) { addrc <- a },
	}
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg) }()

	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server not ready after 10s")
	}
	cl := service.NewClient("http://"+addr, nil)

	queryText, err := os.ReadFile("../../testdata/fig1_query.lg")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Query(ctx, service.QueryRequest{Query: string(queryText)})
	if err != nil {
		t.Fatalf("query: %v", err)
	}

	// The flight record carries the resource ledger.
	qz, err := cl.Queryz(ctx)
	if err != nil {
		t.Fatalf("queryz: %v", err)
	}
	if len(qz.Recent) != 1 || qz.Recent[0].Resources == nil || qz.Recent[0].Resources.Units <= 0 {
		t.Fatalf("flight record missing resource ledger: %+v", qz.Recent)
	}

	// /statz: the background sampler runs every 10ms, so a populated
	// series view appears quickly.
	var doc map[string]json.RawMessage
	deadline := time.Now().Add(5 * time.Second)
	for {
		raw := httpGetBody(t, "http://"+addr+"/statz")
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("statz JSON: %v\n%s", err, raw)
		}
		var series map[string]json.RawMessage
		if err := json.Unmarshal(doc["series"], &series); err == nil && len(series) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("statz series never populated:\n%s", raw)
		}
		time.Sleep(20 * time.Millisecond)
	}
	var queries int
	if err := json.Unmarshal(doc["queries"], &queries); err != nil || queries != 1 {
		t.Fatalf("statz queries = %s (%v)", doc["queries"], err)
	}

	text := string(httpGetBody(t, "http://"+addr+"/statz?format=text"))
	for _, want := range []string{"slo (", resp.QueryHash} {
		if !strings.Contains(text, want) {
			t.Fatalf("statz text missing %q:\n%s", want, text)
		}
	}
	dash := string(httpGetBody(t, "http://"+addr+"/dashz"))
	if !strings.Contains(strings.ToLower(dash), "<!doctype html>") {
		t.Fatalf("dashz is not HTML:\n%.200s", dash)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down within 10s")
	}
}

// httpGetBody fetches a URL and returns the body, failing the test on
// transport or non-200 errors.
func httpGetBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}
