package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ceci"
	"ceci/internal/gen"
)

func writeFixtures(t *testing.T) (dataPath, queryPath string) {
	t.Helper()
	dir := t.TempDir()
	dataPath = filepath.Join(dir, "data.lg")
	queryPath = filepath.Join(dir, "query.lg")
	for path, g := range map[string]*ceci.Graph{
		dataPath:  gen.Fig1Data(),
		queryPath: gen.Fig1Query(),
	} {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := ceci.WriteLabeledGraph(f, g); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return dataPath, queryPath
}

func TestRunFromFiles(t *testing.T) {
	dataPath, queryPath := writeFixtures(t)
	for _, strategy := range []string{"st", "cgd", "fgd"} {
		cfg := runConfig{
			dataPath: dataPath, queryPath: queryPath,
			workers: 1, strategy: strategy, beta: 0.2, orderName: "bfs",
			verbose: true, explain: true,
		}
		if err := run(context.Background(), cfg); err != nil {
			t.Fatalf("strategy %s: %v", strategy, err)
		}
	}
}

func TestRunBuiltins(t *testing.T) {
	cfg := runConfig{
		dataset: "yt_s", qg: "QG1",
		workers: 2, limit: 100, strategy: "fgd", beta: 0.2, orderName: "least-frequent",
	}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunExplainAnalyze(t *testing.T) {
	dataPath, queryPath := writeFixtures(t)
	var stdout, stderr bytes.Buffer
	cfg := runConfig{
		dataPath: dataPath, queryPath: queryPath,
		workers: 2, strategy: "fgd", beta: 0.2, orderName: "bfs",
		explainAnalyze: true, outw: &stdout, errw: &stderr,
	}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{
		"embeddings: 2", "filter funnel", "index shape",
		"enumeration intersections", "cluster cardinality distribution",
		"workers", "phases",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("-explain-analyze output missing %q:\n%s", want, out)
		}
	}
}

func TestRunProfileJSON(t *testing.T) {
	dataPath, queryPath := writeFixtures(t)
	profPath := filepath.Join(t.TempDir(), "profile.json")
	var stdout, stderr bytes.Buffer
	cfg := runConfig{
		dataPath: dataPath, queryPath: queryPath,
		workers: 1, strategy: "fgd", beta: 0.2, orderName: "bfs",
		profileJSON: profPath, outw: &stdout, errw: &stderr,
	}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(profPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep ceci.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("-profile-json is not valid JSON: %v", err)
	}
	if rep.Embeddings != 2 {
		t.Fatalf("embeddings = %d, want 2", rep.Embeddings)
	}
	if len(rep.Profile.Vertices) == 0 || rep.Profile.Clusters.Pivots.Count == 0 {
		t.Fatalf("profile incomplete: %+v", rep.Profile)
	}
	// Without -explain-analyze the standard summary still prints.
	if !strings.Contains(stdout.String(), "embeddings: 2") {
		t.Fatalf("summary missing:\n%s", stdout.String())
	}
}

func TestRunStatsJSON(t *testing.T) {
	dataPath, queryPath := writeFixtures(t)
	var stderr bytes.Buffer
	cfg := runConfig{
		dataPath: dataPath, queryPath: queryPath,
		workers: 1, strategy: "fgd", beta: 0.2, orderName: "bfs",
		statsJSON: true, errw: &stderr,
	}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	type spanNode struct {
		Name     string     `json:"name"`
		Children []spanNode `json:"children"`
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
		Trace    []spanNode       `json:"trace"`
	}
	if err := json.Unmarshal(stderr.Bytes(), &doc); err != nil {
		t.Fatalf("-stats output is not valid JSON: %v\n%s", err, stderr.String())
	}
	if doc.Counters["embeddings"] <= 0 {
		t.Fatalf("embeddings counter = %d, want > 0", doc.Counters["embeddings"])
	}
	names := map[string]bool{}
	var walk func([]spanNode)
	walk = func(ns []spanNode) {
		for _, n := range ns {
			names[n.Name] = true
			walk(n.Children)
		}
	}
	walk(doc.Trace)
	// All phases nest under the single "run" root span.
	for _, want := range []string{"run", "preprocess", "build", "refine", "enumerate"} {
		if !names[want] {
			t.Fatalf("span %q missing from trace: %v", want, names)
		}
	}
}

func TestRunProgressAndTrace(t *testing.T) {
	dataPath, queryPath := writeFixtures(t)
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	var stderr bytes.Buffer
	cfg := runConfig{
		dataPath: dataPath, queryPath: queryPath,
		workers: 2, strategy: "fgd", beta: 0.2, orderName: "bfs",
		progressEvery: time.Millisecond, tracePath: tracePath, errw: &stderr,
	}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "progress: clusters") {
		t.Fatalf("no progress lines in stderr: %q", stderr.String())
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 2 {
		t.Fatalf("trace log too short: %d lines", len(lines))
	}
	for _, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
	}
}

func TestRunListen(t *testing.T) {
	dataPath, queryPath := writeFixtures(t)
	var stderr bytes.Buffer
	cfg := runConfig{
		dataPath: dataPath, queryPath: queryPath,
		workers: 1, strategy: "fgd", beta: 0.2, orderName: "bfs",
		listen: "127.0.0.1:0", errw: &stderr,
	}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "telemetry: http://") {
		t.Fatalf("no telemetry banner: %q", stderr.String())
	}
}

func TestRunValidation(t *testing.T) {
	dataPath, queryPath := writeFixtures(t)
	cases := []struct {
		name string
		cfg  runConfig
	}{
		{"no data", runConfig{queryPath: queryPath, strategy: "fgd", orderName: "bfs"}},
		{"both data", runConfig{dataPath: dataPath, dataset: "yt_s", queryPath: queryPath, strategy: "fgd", orderName: "bfs"}},
		{"no query", runConfig{dataPath: dataPath, strategy: "fgd", orderName: "bfs"}},
		{"both query", runConfig{dataPath: dataPath, queryPath: queryPath, qg: "QG1", strategy: "fgd", orderName: "bfs"}},
		{"bad qg", runConfig{dataPath: dataPath, qg: "QG9", strategy: "fgd", orderName: "bfs"}},
		{"bad strategy", runConfig{dataPath: dataPath, queryPath: queryPath, strategy: "warp", orderName: "bfs"}},
		{"bad order", runConfig{dataPath: dataPath, queryPath: queryPath, strategy: "fgd", orderName: "chaos"}},
		{"bad dataset", runConfig{dataset: "nope", queryPath: queryPath, strategy: "fgd", orderName: "bfs"}},
	}
	for _, c := range cases {
		c.cfg.workers = 1
		c.cfg.beta = 0.2
		if err := run(context.Background(), c.cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRunVerifyMode(t *testing.T) {
	var out, errb bytes.Buffer
	cfg := runConfig{
		verify: true, seed: 1, pairs: 10, workers: 2,
		verifyOut: t.TempDir(), outw: &out, errw: &errb,
	}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatalf("verify failed: %v\n%s", err, errb.String())
	}
	if !strings.Contains(out.String(), "all agree") {
		t.Fatalf("summary missing from output: %q", out.String())
	}
	if !strings.Contains(out.String(), "7 engines") {
		t.Fatalf("engine count missing from output: %q", out.String())
	}
}

func TestRunVerifyVerbosePrintsPerSeed(t *testing.T) {
	var out, errb bytes.Buffer
	cfg := runConfig{
		verify: true, seed: 3, pairs: 2, workers: 1, verbose: true,
		verifyOut: t.TempDir(), outw: &out, errw: &errb,
	}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "seed 3:") || !strings.Contains(out.String(), "seed 4:") {
		t.Fatalf("per-seed reports missing: %q", out.String())
	}
}

// TestRunTimeoutReportsPartial: a deadline far too short for the query
// must produce a non-nil (non-zero exit) "timed out" error — with the
// partial embedding count when enumeration had started.
func TestRunTimeoutReportsPartial(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.lg")
	queryPath := filepath.Join(dir, "query.lg")
	data := gen.ErdosRenyi(3000, 30000, 1)
	qb := ceci.NewBuilder(4)
	qb.AddEdge(0, 1)
	qb.AddEdge(1, 2)
	qb.AddEdge(2, 3)
	query, err := qb.Build()
	if err != nil {
		t.Fatal(err)
	}
	for path, g := range map[string]*ceci.Graph{dataPath: data, queryPath: query} {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := ceci.WriteLabeledGraph(f, g); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	var out, errb bytes.Buffer
	cfg := runConfig{
		dataPath: dataPath, queryPath: queryPath,
		strategy: "fgd", orderName: "bfs", workers: 2,
		timeout: 2 * time.Millisecond,
		outw:    &out, errw: &errb,
	}
	start := time.Now()
	err = run(context.Background(), cfg)
	if err == nil {
		t.Skip("host finished a 3000-vertex 4-path inside 2ms; nothing to assert")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("error = %v, want a timed-out report", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("timeout took %v to take effect", elapsed)
	}
}

// TestRunLedger: -ledger prints the run's resource accounting after the
// result lines, with non-trivial charges.
func TestRunLedger(t *testing.T) {
	dataPath, queryPath := writeFixtures(t)
	var out bytes.Buffer
	cfg := runConfig{
		dataPath: dataPath, queryPath: queryPath,
		workers: 1, strategy: "fgd", beta: 0.2, orderName: "bfs",
		ledger: true, outw: &out,
	}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "resource ledger:") {
		t.Fatalf("-ledger output missing the ledger block:\n%s", text)
	}
	for _, want := range []string{"units", "kernel"} {
		if !strings.Contains(text, want) {
			t.Fatalf("ledger block missing %q:\n%s", want, text)
		}
	}
}

// TestRunExplainAnalyzeResources: the EXPLAIN ANALYZE profile carries
// the resource-ledger section without asking for -ledger.
func TestRunExplainAnalyzeResources(t *testing.T) {
	dataPath, queryPath := writeFixtures(t)
	var out bytes.Buffer
	cfg := runConfig{
		dataPath: dataPath, queryPath: queryPath,
		workers: 1, strategy: "fgd", beta: 0.2, orderName: "bfs",
		explainAnalyze: true, outw: &out,
	}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "== resources ==") || !strings.Contains(text, "resource ledger:") {
		t.Fatalf("explain-analyze output missing resources section:\n%s", text)
	}
}
