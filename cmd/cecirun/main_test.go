package main

import (
	"os"
	"path/filepath"
	"testing"

	"ceci"
	"ceci/internal/gen"
)

func writeFixtures(t *testing.T) (dataPath, queryPath string) {
	t.Helper()
	dir := t.TempDir()
	dataPath = filepath.Join(dir, "data.lg")
	queryPath = filepath.Join(dir, "query.lg")
	for path, g := range map[string]*ceci.Graph{
		dataPath:  gen.Fig1Data(),
		queryPath: gen.Fig1Query(),
	} {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := ceci.WriteLabeledGraph(f, g); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return dataPath, queryPath
}

func TestRunFromFiles(t *testing.T) {
	dataPath, queryPath := writeFixtures(t)
	for _, strategy := range []string{"st", "cgd", "fgd"} {
		if err := run(dataPath, "", queryPath, "", 1, 0, strategy, 0.2, "bfs", false, false, true, true); err != nil {
			t.Fatalf("strategy %s: %v", strategy, err)
		}
	}
}

func TestRunBuiltins(t *testing.T) {
	if err := run("", "yt_s", "", "QG1", 2, 100, "fgd", 0.2, "least-frequent", false, false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	dataPath, queryPath := writeFixtures(t)
	cases := []struct {
		name                     string
		data, dataset, query, qg string
		strategy, order          string
	}{
		{"no data", "", "", queryPath, "", "fgd", "bfs"},
		{"both data", dataPath, "yt_s", queryPath, "", "fgd", "bfs"},
		{"no query", dataPath, "", "", "", "fgd", "bfs"},
		{"both query", dataPath, "", queryPath, "QG1", "fgd", "bfs"},
		{"bad qg", dataPath, "", "", "QG9", "fgd", "bfs"},
		{"bad strategy", dataPath, "", queryPath, "", "warp", "bfs"},
		{"bad order", dataPath, "", queryPath, "", "fgd", "chaos"},
		{"bad dataset", "", "nope", queryPath, "", "fgd", "bfs"},
	}
	for _, c := range cases {
		if err := run(c.data, c.dataset, c.query, c.qg, 1, 0, c.strategy, 0.2, c.order, false, false, false, false); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
