// Command cecirun runs one subgraph-matching query against a data graph
// and reports the embedding count, timings, and index statistics.
//
// Usage:
//
//	cecirun -data graph.lg -query query.lg
//	cecirun -data graph.edges -qg QG3 -workers 8 -strategy fgd
//	cecirun -dataset lj_s -qg QG1 -limit 1024 -print
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"ceci"
	"ceci/internal/datasets"
	"ceci/internal/gen"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "data graph file (.lg labeled, else edge list)")
		dataset   = flag.String("dataset", "", "built-in dataset substitute (alternative to -data)")
		queryPath = flag.String("query", "", "query graph file")
		qg        = flag.String("qg", "", "built-in query graph: QG1..QG5 (alternative to -query)")
		workers   = flag.Int("workers", 0, "worker count (0 = all cores)")
		limit     = flag.Int64("limit", 0, "stop after this many embeddings (0 = all)")
		strategy  = flag.String("strategy", "fgd", "workload strategy: st | cgd | fgd")
		beta      = flag.Float64("beta", 0.2, "extreme-cluster threshold factor")
		orderName = flag.String("order", "bfs", "matching order: bfs | least-frequent | path-ranked | edge-ranked")
		edgeVerif = flag.Bool("edge-verification", false, "ablation: verify non-tree edges by adjacency probes")
		printEmbs = flag.Bool("print", false, "print each embedding")
		verbose   = flag.Bool("v", false, "print index statistics and counters")
		explain   = flag.Bool("explain", false, "print the query plan before running")
	)
	flag.Parse()

	if err := run(*dataPath, *dataset, *queryPath, *qg, *workers, *limit,
		*strategy, *beta, *orderName, *edgeVerif, *printEmbs, *verbose, *explain); err != nil {
		fmt.Fprintln(os.Stderr, "cecirun:", err)
		os.Exit(1)
	}
}

func run(dataPath, dataset, queryPath, qg string, workers int, limit int64,
	strategy string, beta float64, orderName string, edgeVerif, printEmbs, verbose, explain bool) error {

	data, err := loadData(dataPath, dataset)
	if err != nil {
		return err
	}
	query, err := loadQuery(queryPath, qg)
	if err != nil {
		return err
	}

	opts := &ceci.Options{
		Workers:          workers,
		Limit:            limit,
		Beta:             beta,
		EdgeVerification: edgeVerif,
		Stats:            &ceci.Stats{},
	}
	switch strings.ToLower(strategy) {
	case "st":
		opts.Strategy = ceci.StrategyStatic
	case "cgd":
		opts.Strategy = ceci.StrategyCoarse
	case "fgd", "":
		opts.Strategy = ceci.StrategyFine
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}
	switch strings.ToLower(orderName) {
	case "bfs", "":
		opts.Order = ceci.OrderBFS
	case "least-frequent":
		opts.Order = ceci.OrderLeastFrequent
	case "path-ranked":
		opts.Order = ceci.OrderPathRanked
	case "edge-ranked":
		opts.Order = ceci.OrderEdgeRanked
	default:
		return fmt.Errorf("unknown order %q", orderName)
	}

	fmt.Printf("data:  %v\n", data)
	fmt.Printf("query: %v\n", query)

	buildStart := time.Now()
	m, err := ceci.Match(data, query, opts)
	if err != nil {
		return err
	}
	buildTime := time.Since(buildStart)

	if explain {
		fmt.Println()
		fmt.Print(m.Explain())
		fmt.Println()
	}

	enumStart := time.Now()
	var count int64
	if printEmbs {
		var mu sync.Mutex
		m.ForEach(func(emb []ceci.VertexID) bool {
			mu.Lock()
			fmt.Println(emb)
			count++
			mu.Unlock()
			return true
		})
	} else {
		count = m.Count()
	}
	enumTime := time.Since(enumStart)

	fmt.Printf("embeddings: %d\n", count)
	fmt.Printf("build:      %v\n", buildTime)
	fmt.Printf("enumerate:  %v\n", enumTime)
	if verbose {
		info := m.IndexInfo()
		fmt.Printf("index: pivots=%d candidate-edges=%d size=%dB theoretical=%dB saved=%.1f%%\n",
			info.Pivots, info.CandidateEdges, info.SizeBytes,
			info.TheoreticalBytes, info.SpaceSavedPercent())
		fmt.Printf("cardinality bound: %d\n", info.TotalCardinality)
		for k, v := range opts.Stats.Snapshot() {
			if v != 0 {
				fmt.Printf("  %-20s %d\n", k, v)
			}
		}
	}
	return nil
}

func loadData(path, dataset string) (*ceci.Graph, error) {
	switch {
	case path != "" && dataset != "":
		return nil, fmt.Errorf("-data and -dataset are mutually exclusive")
	case path != "":
		return ceci.LoadGraphFile(path)
	case dataset != "":
		return datasets.Load(dataset)
	default:
		return nil, fmt.Errorf("need -data or -dataset")
	}
}

func loadQuery(path, qg string) (*ceci.Graph, error) {
	switch {
	case path != "" && qg != "":
		return nil, fmt.Errorf("-query and -qg are mutually exclusive")
	case path != "":
		return ceci.LoadGraphFile(path)
	case qg != "":
		q, ok := gen.QueryGraphs()[strings.ToUpper(qg)]
		if !ok {
			return nil, fmt.Errorf("unknown query graph %q (QG1..QG5)", qg)
		}
		return q, nil
	default:
		return nil, fmt.Errorf("need -query or -qg")
	}
}
