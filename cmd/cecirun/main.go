// Command cecirun runs one subgraph-matching query against a data graph
// and reports the embedding count, timings, and index statistics.
//
// Usage:
//
//	cecirun -data graph.lg -query query.lg
//	cecirun -data graph.edges -qg QG3 -workers 8 -strategy fgd
//	cecirun -dataset lj_s -qg QG1 -limit 1024 -print
//	cecirun -dataset yt_s -qg QG4 -progress 2s -listen :9090 -stats
//
// With -verify it instead runs the differential-correctness harness:
// seeded random graph/query pairs are checked across all seven engines
// (reference oracle, CECI, and the five baselines), and a failing seed is
// shrunk to a minimal counterexample written out as .lg files.
//
//	cecirun -verify -seed 1 -pairs 500
//	cecirun -verify -seed 1337            # replay one failing seed
//	cecirun -verify -seed 1337 -verify-out /tmp/crash
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"ceci"
	"ceci/internal/buildinfo"
	"ceci/internal/datasets"
	"ceci/internal/gen"
	"ceci/internal/obs"
	"ceci/internal/verify"
)

// runConfig carries every cecirun option; flags map onto it 1:1.
type runConfig struct {
	dataPath  string
	dataset   string
	queryPath string
	qg        string
	workers   int
	limit     int64
	timeout   time.Duration // -timeout: overall deadline; partial counts + non-zero exit when hit
	strategy  string
	beta      float64
	orderName string
	edgeVerif bool
	printEmbs bool
	verbose   bool
	explain   bool

	// Profiling.
	explainAnalyze bool   // -explain-analyze: run with deep instrumentation, print the profile
	profileJSON    string // -profile-json: write the ExplainAnalyze report as JSON here
	ledger         bool   // -ledger: print the run's resource ledger (CPU, units, scratch, kernels)

	// Observability.
	statsJSON     bool          // -stats: dump counters + span tree as JSON to stderr
	listen        string        // -listen: serve /metrics, /metrics.json, /trace, /debug/pprof
	progressEvery time.Duration // -progress: print live progress lines to stderr
	tracePath     string        // -trace: write the JSONL span event log here
	traceExport   string        // -trace-export: write the span tree as Chrome trace_event JSON ("-" = stdout)
	traceSample   float64       // -trace-sample: head-based sampling rate for this run's trace
	version       bool          // -version: print build identity and exit

	// Differential verification.
	verify    bool   // -verify: run the cross-matcher harness instead of a query
	seed      int64  // -seed: first seed to check
	pairs     int    // -pairs: number of consecutive seeds
	verifyOut string // -verify-out: where minimized counterexamples land

	errw io.Writer // defaults to os.Stderr; tests capture it
	outw io.Writer // defaults to os.Stdout; tests capture it
}

func main() {
	cfg := runConfig{}
	flag.StringVar(&cfg.dataPath, "data", "", "data graph file (.lg labeled, else edge list)")
	flag.StringVar(&cfg.dataset, "dataset", "", "built-in dataset substitute (alternative to -data)")
	flag.StringVar(&cfg.queryPath, "query", "", "query graph file")
	flag.StringVar(&cfg.qg, "qg", "", "built-in query graph: QG1..QG5 (alternative to -query)")
	flag.IntVar(&cfg.workers, "workers", 0, "worker count (0 = all cores)")
	flag.Int64Var(&cfg.limit, "limit", 0, "stop after this many embeddings (0 = all)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "abort after this long, reporting partial counts and exiting non-zero (0 = no deadline)")
	flag.StringVar(&cfg.strategy, "strategy", "fgd", "workload strategy: st | cgd | fgd")
	flag.Float64Var(&cfg.beta, "beta", 0.2, "extreme-cluster threshold factor")
	flag.StringVar(&cfg.orderName, "order", "bfs", "matching order: bfs | least-frequent | path-ranked | edge-ranked | auto (cost-based planner)")
	flag.BoolVar(&cfg.edgeVerif, "edge-verification", false, "ablation: verify non-tree edges by adjacency probes")
	flag.BoolVar(&cfg.printEmbs, "print", false, "print each embedding")
	flag.BoolVar(&cfg.verbose, "v", false, "print index statistics and counters")
	flag.BoolVar(&cfg.explain, "explain", false, "print the query plan before running")
	flag.BoolVar(&cfg.explainAnalyze, "explain-analyze", false, "execute with deep instrumentation and print the per-vertex profile")
	flag.StringVar(&cfg.profileJSON, "profile-json", "", "write the EXPLAIN ANALYZE report as JSON to this file (implies instrumentation)")
	flag.BoolVar(&cfg.ledger, "ledger", false, "print the run's resource ledger (CPU time, work units, peak scratch, kernel mix)")
	flag.BoolVar(&cfg.statsJSON, "stats", false, "print the final counter snapshot and span tree as JSON to stderr")
	flag.StringVar(&cfg.listen, "listen", "", "serve telemetry (/metrics, /metrics.json, /trace, /debug/pprof) on this address")
	flag.DurationVar(&cfg.progressEvery, "progress", 0, "print live progress to stderr at this interval (0 = off)")
	flag.StringVar(&cfg.tracePath, "trace", "", "write the JSONL span event log to this file")
	flag.StringVar(&cfg.traceExport, "trace-export", "", "write the run's span tree as Chrome trace_event JSON to this file (\"-\" = stdout; load in chrome://tracing)")
	flag.Float64Var(&cfg.traceSample, "trace-sample", 1, "head-based trace sampling rate in [0,1]; an unsampled run records no spans")
	flag.BoolVar(&cfg.version, "version", false, "print build identity (module version, VCS revision, go version) and exit")
	flag.BoolVar(&cfg.verify, "verify", false, "run the differential-correctness harness on seeded random pairs")
	flag.Int64Var(&cfg.seed, "seed", 1, "first seed for -verify")
	flag.IntVar(&cfg.pairs, "pairs", 1, "number of consecutive seeds for -verify")
	flag.StringVar(&cfg.verifyOut, "verify-out", ".", "directory for minimized counterexample .lg files")
	flag.Parse()

	// SIGINT/SIGTERM cancel the run's context: the build aborts at its
	// next expansion step, enumeration at its next depth step, and the
	// telemetry endpoint drains — same path as -timeout expiry.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "cecirun:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg runConfig) error {
	if cfg.errw == nil {
		cfg.errw = os.Stderr
	}
	if cfg.outw == nil {
		cfg.outw = os.Stdout
	}
	if cfg.version {
		fmt.Fprintln(cfg.outw, buildinfo.Get())
		return nil
	}
	if cfg.verify {
		return runVerify(cfg)
	}
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	data, err := loadData(cfg.dataPath, cfg.dataset)
	if err != nil {
		return err
	}
	query, err := loadQuery(cfg.queryPath, cfg.qg)
	if err != nil {
		return err
	}

	opts := &ceci.Options{
		Workers:          cfg.workers,
		Limit:            cfg.limit,
		Beta:             cfg.beta,
		EdgeVerification: cfg.edgeVerif,
		Stats:            &ceci.Stats{},
	}
	if cfg.ledger {
		opts.Ledger = ceci.NewLedger()
	}
	switch strings.ToLower(cfg.strategy) {
	case "st":
		opts.Strategy = ceci.StrategyStatic
	case "cgd":
		opts.Strategy = ceci.StrategyCoarse
	case "fgd", "":
		opts.Strategy = ceci.StrategyFine
	default:
		return fmt.Errorf("unknown strategy %q", cfg.strategy)
	}
	switch strings.ToLower(cfg.orderName) {
	case "bfs", "":
		opts.Order = ceci.OrderBFS
	case "least-frequent":
		opts.Order = ceci.OrderLeastFrequent
	case "path-ranked":
		opts.Order = ceci.OrderPathRanked
	case "edge-ranked":
		opts.Order = ceci.OrderEdgeRanked
	case "auto":
		opts.Planner = true
	default:
		return fmt.Errorf("unknown order %q", cfg.orderName)
	}

	// Observability wiring: tracer (with optional JSONL log), head-based
	// sampling, live progress printing, and the telemetry endpoint. A zero
	// sampling rate means "everything" (the config zero value must not
	// silently disable tracing); pass a negative rate to sample nothing.
	rate := cfg.traceSample
	if rate == 0 {
		rate = 1
	}
	sampled := obs.NewTraceContext().SampleHead(rate)
	tropts := ceci.TracerOptions{}
	var traceFile *os.File
	var traceBuf *bufio.Writer
	if cfg.tracePath != "" && sampled {
		traceFile, err = os.Create(cfg.tracePath)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		traceBuf = bufio.NewWriter(traceFile)
		tropts.JSONL = traceBuf
	}
	if sampled {
		opts.Tracer = ceci.NewTracer(tropts)
	} else if cfg.tracePath != "" || cfg.traceExport != "" {
		fmt.Fprintf(cfg.errw, "trace: run not sampled (-trace-sample %v); no spans recorded\n", cfg.traceSample)
	}
	// One deferred closure owns trace teardown so the order holds on
	// every exit path — including SIGINT/SIGTERM and -timeout expiry:
	// force-close any still-open spans (emitting their JSONL end events),
	// render the Chrome export, then flush the event log. Without the
	// EndOpen an interrupted run would drop the tail of the span log.
	defer func() {
		opts.Tracer.EndOpen()
		if cfg.traceExport != "" && opts.Tracer != nil {
			if xerr := exportChrome(cfg.traceExport, opts.Tracer, cfg.outw, cfg.errw); xerr != nil {
				fmt.Fprintln(cfg.errw, "-trace-export:", xerr)
			}
		}
		if traceBuf != nil {
			traceBuf.Flush()
			traceFile.Close()
		}
	}()
	// The run's root span: the preprocess/build/enumerate spans opened by
	// the layers below nest under it through the context.
	root := opts.Tracer.Start("run")
	ctx = obs.ContextWithSpan(ctx, root)

	reg := obs.NewRegistry()
	reg.SetCounters(opts.Stats)
	reg.SetTracer(opts.Tracer)
	var progressPrint ceci.ProgressFunc
	if cfg.progressEvery > 0 {
		opts.ProgressInterval = cfg.progressEvery
		errw := cfg.errw
		progressPrint = func(p ceci.Progress) {
			fmt.Fprintf(errw, "progress: clusters %d/%d  embeddings %d (%.0f/s)  eta %v\n",
				p.ClustersDone, p.ClustersTotal, p.Embeddings, p.EmbeddingsPerSec, p.ETA.Round(time.Millisecond))
		}
	}
	if cfg.progressEvery > 0 || cfg.listen != "" {
		opts.Progress = reg.ProgressFunc(progressPrint)
	}
	if cfg.listen != "" {
		srv, err := obs.Serve(cfg.listen, reg)
		if err != nil {
			return err
		}
		// Graceful drain on exit (including SIGINT/SIGTERM): in-flight
		// scrapes finish, bounded by a short window.
		defer func() {
			drainCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			srv.Shutdown(drainCtx)
		}()
		fmt.Fprintf(cfg.errw, "telemetry: http://%s/\n", srv.Addr())
	}

	fmt.Fprintf(cfg.outw, "data:  %v\n", data)
	fmt.Fprintf(cfg.outw, "query: %v\n", query)

	if cfg.explainAnalyze || cfg.profileJSON != "" {
		rep, err := ceci.ExplainAnalyze(data, query, opts)
		if err != nil {
			return err
		}
		// The profiler's funnel digest rides the root span as attributes,
		// so a -trace-export timeline carries the same filtering story as
		// the EXPLAIN ANALYZE text.
		for k, v := range rep.Profile.FunnelTotals() {
			root.Annotate(obs.Int("funnel_"+k, v))
		}
		if cfg.explainAnalyze {
			fmt.Fprintln(cfg.outw)
			fmt.Fprint(cfg.outw, rep.Text())
		} else {
			fmt.Fprintf(cfg.outw, "embeddings: %d\n", rep.Embeddings)
			fmt.Fprintf(cfg.outw, "build:      %v\n", rep.BuildTime)
			fmt.Fprintf(cfg.outw, "enumerate:  %v\n", rep.EnumTime)
		}
		if cfg.profileJSON != "" {
			b, err := rep.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(cfg.profileJSON, append(b, '\n'), 0o644); err != nil {
				return fmt.Errorf("-profile-json: %w", err)
			}
			fmt.Fprintf(cfg.errw, "profile written to %s\n", cfg.profileJSON)
		}
		if cfg.statsJSON {
			return writeStatsJSON(cfg.errw, opts)
		}
		return nil
	}

	buildStart := time.Now()
	m, err := ceci.MatchCtx(ctx, data, query, opts)
	if err != nil {
		if isDeadline(err) {
			return fmt.Errorf("timed out after %v during index build (no partial counts: the index was incomplete)", cfg.timeout)
		}
		return err
	}
	buildTime := time.Since(buildStart)

	if cfg.explain {
		fmt.Println()
		fmt.Print(m.Explain())
		fmt.Println()
	}

	enumStart := time.Now()
	var count int64
	var enumErr error
	if cfg.printEmbs {
		var mu sync.Mutex
		enumErr = m.ForEachCtx(ctx, func(emb []ceci.VertexID) bool {
			mu.Lock()
			fmt.Println(emb)
			count++
			mu.Unlock()
			return true
		})
	} else {
		count, enumErr = m.CountCtx(ctx)
	}
	enumTime := time.Since(enumStart)

	// The ledger covers whatever ran, complete or interrupted — partial
	// charges are still real work done.
	printLedger := func() {
		if opts.Ledger != nil {
			fmt.Fprint(cfg.outw, opts.Ledger.Snapshot().Text())
		}
	}
	if enumErr != nil {
		// The run was cut short (deadline or signal). Partial counts are
		// still meaningful — every reported embedding was verified — so
		// print them before exiting non-zero.
		fmt.Printf("embeddings: %d (partial)\n", count)
		fmt.Printf("build:      %v\n", buildTime)
		fmt.Printf("enumerate:  %v (interrupted)\n", enumTime)
		printLedger()
		if cfg.statsJSON {
			if err := writeStatsJSON(cfg.errw, opts); err != nil {
				return err
			}
		}
		if isDeadline(enumErr) {
			return fmt.Errorf("timed out after %v with %d embeddings found", cfg.timeout, count)
		}
		return fmt.Errorf("interrupted with %d embeddings found: %w", count, enumErr)
	}

	fmt.Printf("embeddings: %d\n", count)
	fmt.Printf("build:      %v\n", buildTime)
	fmt.Printf("enumerate:  %v\n", enumTime)
	printLedger()
	if cfg.verbose {
		info := m.IndexInfo()
		fmt.Printf("index: pivots=%d candidate-edges=%d size=%dB theoretical=%dB saved=%.1f%%\n",
			info.Pivots, info.CandidateEdges, info.SizeBytes,
			info.TheoreticalBytes, info.SpaceSavedPercent())
		fmt.Printf("cardinality bound: %d\n", info.TotalCardinality)
		for k, v := range opts.Stats.Snapshot() {
			if v != 0 {
				fmt.Printf("  %-20s %d\n", k, v)
			}
		}
	}
	if cfg.statsJSON {
		if err := writeStatsJSON(cfg.errw, opts); err != nil {
			return err
		}
	}
	return nil
}

// isDeadline reports whether err is a context deadline expiry.
func isDeadline(err error) bool { return errors.Is(err, context.DeadlineExceeded) }

// exportChrome renders the tracer's full span forest — stitched by
// trace-context identity — as Chrome trace_event JSON, to a file or
// ("-") stdout.
func exportChrome(path string, tr *ceci.Tracer, outw, errw io.Writer) error {
	doc, err := obs.ChromeTrace(obs.Stitch(tr.Tree()))
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if path == "-" {
		_, err = outw.Write(doc)
		return err
	}
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(errw, "trace exported to %s (load in chrome://tracing or Perfetto)\n", path)
	return nil
}

// writeStatsJSON dumps the final counter snapshot and span tree as one
// JSON document, machine-readable from stderr.
func writeStatsJSON(w io.Writer, opts *ceci.Options) error {
	doc := map[string]any{
		"counters": opts.Stats.Snapshot(),
		"trace":    opts.Tracer.Tree(),
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}

// runVerify sweeps seeds [seed, seed+pairs) through the differential
// harness. The first disagreement is minimized and written to
// verify-out/ceci-verify-<seed>-{data,query}.lg; the exit status is
// non-zero so CI and scripts notice.
func runVerify(cfg runConfig) error {
	if cfg.pairs < 1 {
		cfg.pairs = 1
	}
	opts := verify.Options{Workers: cfg.workers, MaxEmbeddings: 1 << 20}
	checked, skipped := 0, 0
	for seed := cfg.seed; seed < cfg.seed+int64(cfg.pairs); seed++ {
		rep := verify.CheckSeed(seed, opts)
		if rep.Skipped {
			skipped++
			continue
		}
		checked++
		if rep.OK() {
			if cfg.verbose {
				fmt.Fprintf(cfg.outw, "%s\n", rep)
			}
			continue
		}
		fmt.Fprintf(cfg.errw, "DISAGREEMENT\n%s\n", rep)
		fmt.Fprintf(cfg.errw, "minimizing counterexample...\n")
		md, mq, mrep := verify.MinimizeFailure(rep.Data, rep.Query, opts)
		dataPath := filepath.Join(cfg.verifyOut, fmt.Sprintf("ceci-verify-%d-data.lg", seed))
		queryPath := filepath.Join(cfg.verifyOut, fmt.Sprintf("ceci-verify-%d-query.lg", seed))
		if err := writeGraphFile(dataPath, md); err != nil {
			return err
		}
		if err := writeGraphFile(queryPath, mq); err != nil {
			return err
		}
		fmt.Fprintf(cfg.errw, "minimized to data %v, query %v\n%s\n", md, mq, mrep)
		fmt.Fprintf(cfg.errw, "wrote %s and %s\n", dataPath, queryPath)
		fmt.Fprintf(cfg.errw, "replay: cecirun -data %s -query %s -print\n", dataPath, queryPath)
		return fmt.Errorf("verify: seed %d disagrees across engines", seed)
	}
	fmt.Fprintf(cfg.outw, "verify: %d pair(s) checked across %d engines, all agree (%d skipped as too large)\n",
		checked, len(verify.Engines()), skipped)
	return nil
}

func writeGraphFile(path string, g *ceci.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ceci.WriteLabeledGraph(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadData(path, dataset string) (*ceci.Graph, error) {
	switch {
	case path != "" && dataset != "":
		return nil, fmt.Errorf("-data and -dataset are mutually exclusive")
	case path != "":
		return ceci.LoadGraphFile(path)
	case dataset != "":
		return datasets.Load(dataset)
	default:
		return nil, fmt.Errorf("need -data or -dataset")
	}
}

func loadQuery(path, qg string) (*ceci.Graph, error) {
	switch {
	case path != "" && qg != "":
		return nil, fmt.Errorf("-query and -qg are mutually exclusive")
	case path != "":
		return ceci.LoadGraphFile(path)
	case qg != "":
		q, ok := gen.QueryGraphs()[strings.ToUpper(qg)]
		if !ok {
			return nil, fmt.Errorf("unknown query graph %q (QG1..QG5)", qg)
		}
		return q, nil
	default:
		return nil, fmt.Errorf("need -query or -qg")
	}
}
