package main

import (
	"testing"
	"time"
)

func TestExperimentRegistry(t *testing.T) {
	want := []string{
		"table1", "table2", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"fig19", "fig20", "orders",
	}
	if len(experiments) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(experiments), len(want))
	}
	for _, name := range want {
		e, ok := find(name)
		if !ok {
			t.Fatalf("missing experiment %s", name)
		}
		if e.run == nil || e.desc == "" {
			t.Fatalf("experiment %s incomplete", name)
		}
	}
	if _, ok := find("fig99"); ok {
		t.Fatal("phantom experiment found")
	}
}

func TestSpeedupFormatting(t *testing.T) {
	if got := speedup(2*time.Second, time.Second); got != "2.00x" {
		t.Fatalf("got %q", got)
	}
	if got := speedup(0, time.Second); got != "-" {
		t.Fatalf("zero base: %q", got)
	}
	if got := speedup(time.Second, 0); got != "-" {
		t.Fatalf("zero other: %q", got)
	}
}

func TestMedian(t *testing.T) {
	ds := []time.Duration{5, 1, 9}
	if got := median(ds); got != 5 {
		t.Fatalf("median = %v", got)
	}
	if median(nil) != 0 {
		t.Fatal("empty median")
	}
}

func TestRunBudget(t *testing.T) {
	if runBudget(benchConfig{quick: true}) >= runBudget(benchConfig{}) {
		t.Fatal("quick budget should be smaller")
	}
}

// TestTable1Smoke runs the cheapest experiment end to end.
func TestTable1Smoke(t *testing.T) {
	if err := runTable1(benchConfig{quick: true}); err != nil {
		t.Fatal(err)
	}
}
