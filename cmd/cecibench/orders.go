package main

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"

	"ceci"
	"ceci/internal/datasets"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
	"ceci/internal/plan"
)

// runOrders runs the matching-order matrix on the Figure 7/8 suite:
// every static heuristic plus the cost-based planner ("auto") on each
// (dataset, query) pair, reporting the planner's estimate next to the
// measured comparison count and enumeration time. Two properties are
// enforced, not just printed:
//
//   - every order enumerates the identical embedding multiset (checked
//     by an order-independent hash, so parallel enumeration is fine);
//   - the planner's total comparison count across the suite is no worse
//     than the best single static heuristic's total — the planner may
//     lose a case to the oracle-best static order, but switching
//     per-case must beat committing to any one heuristic overall.
//
// Comparison counts are deterministic (independent of worker
// scheduling), so this gate is stable across machines; enumeration
// times are reported for local reading only.
func runOrders(cfg benchConfig) error {
	cases, err := orderCases(cfg)
	if err != nil {
		return err
	}

	staticNames := make([]string, 0, len(order.Heuristics()))
	for _, h := range order.Heuristics() {
		staticNames = append(staticNames, h.String())
	}

	totalCmp := map[string]int64{}
	totalTime := map[string]time.Duration{}
	autoWins, autoTies := 0, 0

	fmt.Printf("%-6s %-5s %-18s %12s %14s %12s %12s\n",
		"data", "query", "order", "estimate", "comparisons", "build", "enum")
	for _, c := range cases {
		dname, qname := c.dname, c.qname
		data, query := c.data, c.query

		// One planner pass prices every order up front; the "auto" row
		// then executes the winner.
		pl, err := plan.New(data, query, plan.DefaultOptions())
		if err != nil {
			return err
		}
		dec, err := pl.Decide(nil)
		if err != nil {
			return err
		}
		est := map[string]float64{"auto": dec.Estimate}
		for _, h := range order.Heuristics() {
			ord, err := pl.Base().DeriveOrder(h)
			if err != nil {
				return err
			}
			est[h.String()] = pl.EstimateOrder(h.String(), ord, nil).Cost
		}

		var refHash uint64
		var refCount int64
		var defaultCmp int64
		rows := append(append([]string{}, staticNames...), "auto")
		for i, name := range rows {
			st := &ceci.Stats{}
			opts := &ceci.Options{Stats: st}
			if name == "auto" {
				opts.Planner = true
			} else {
				h, err := heuristicByName(name)
				if err != nil {
					return err
				}
				opts.Order = h
			}
			buildStart := time.Now()
			m, err := ceci.Match(data, query, opts)
			if err != nil {
				return fmt.Errorf("%s/%s %s: %w", dname, qname, name, err)
			}
			build := time.Since(buildStart)

			// Order-independent multiset hash: per-embedding FNV summed
			// with atomics, safe under the concurrent callback.
			var hsum, count atomic.Uint64
			enumStart := time.Now()
			m.ForEach(func(emb []ceci.VertexID) bool {
				h := fnv.New64a()
				var buf [4]byte
				for _, v := range emb {
					buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
					h.Write(buf[:])
				}
				hsum.Add(h.Sum64())
				count.Add(1)
				return true
			})
			enum := time.Since(enumStart)

			cmp := st.Snapshot()["intersection_ops"]
			totalCmp[name] += cmp
			totalTime[name] += build + enum

			if i == 0 {
				refHash, refCount = hsum.Load(), int64(count.Load())
			} else if hsum.Load() != refHash || int64(count.Load()) != refCount {
				return fmt.Errorf("%s/%s: order %s enumerated a different embedding set (%d vs %d)",
					dname, qname, name, count.Load(), refCount)
			}
			if name == order.BFSOrder.String() {
				defaultCmp = cmp
			}

			label := name
			if name == "auto" {
				label = "auto(=" + dec.Chosen + ")"
				if cmp < defaultCmp {
					autoWins++
				} else if cmp == defaultCmp {
					autoTies++
				}
			}
			fmt.Printf("%-6s %-5s %-18s %12.4g %14d %12v %12v\n",
				dname, qname, label, est[name], cmp,
				build.Round(time.Microsecond), enum.Round(time.Microsecond))
		}
	}

	fmt.Printf("\n%-18s %14s %12s\n", "order (totals)", "comparisons", "time")
	bestStatic, bestStaticTotal := "", int64(-1)
	for _, name := range staticNames {
		fmt.Printf("%-18s %14d %12v\n", name, totalCmp[name], totalTime[name].Round(time.Millisecond))
		if bestStaticTotal < 0 || totalCmp[name] < bestStaticTotal {
			bestStatic, bestStaticTotal = name, totalCmp[name]
		}
	}
	fmt.Printf("%-18s %14d %12v\n", "auto", totalCmp["auto"], totalTime["auto"].Round(time.Millisecond))
	fmt.Printf("\nplanner vs default (bfs): better on %d case(s), tied on %d\n", autoWins, autoTies)

	if totalCmp["auto"] > bestStaticTotal {
		return fmt.Errorf("planner total comparisons %d exceed best static heuristic %s (%d)",
			totalCmp["auto"], bestStatic, bestStaticTotal)
	}
	fmt.Printf("planner total comparisons %d <= best static (%s, %d)\n",
		totalCmp["auto"], bestStatic, bestStaticTotal)
	return nil
}

// orderCase is one (dataset, query) cell of the matrix.
type orderCase struct {
	dname, qname string
	data, query  *ceci.Graph
}

// orderCases builds the matrix's case list. Two families:
//
//   - Unlabeled QG cases, limited to pairs a single order fully
//     enumerates in ~seconds — the matrix runs every case 5-6 times
//     (QG2 explodes to tens of millions of embeddings and QG4 to far
//     more; the time-budgeted fig7/fig8 runs cover those). On the
//     unlabeled substitutes every heuristic collapses to the same
//     order (uniform candidate counts), so these cases exercise the
//     identical-embeddings property, not order separation.
//   - Labeled cases: the QG topologies with explicit label patterns
//     over a Zipf-labeled copy of the substitutes (a few very common
//     labels, a selective tail). Skewed per-vertex candidate counts
//     are what make the heuristics genuinely disagree — this is where
//     order choice matters and the planner must earn its keep.
//     (DFS-grown QuerySet queries are no use here: on these sparse
//     substitutes they come out as trees, which enumerate with zero
//     intersections, so every order ties; and the rd_s/hu_s label
//     regimes are covered by fig9/fig10 in first-1024 mode.)
func orderCases(cfg benchConfig) ([]orderCase, error) {
	var cases []orderCase
	qgs := gen.QueryGraphs()
	unlabeled := [][2]string{
		{"wt_s", "QG1"}, {"wt_s", "QG3"},
		{"yt_s", "QG1"}, {"yt_s", "QG3"},
	}
	if !cfg.quick {
		unlabeled = append(unlabeled,
			[2]string{"lj_s", "QG1"}, [2]string{"lj_s", "QG3"}, [2]string{"lj_s", "QG5"},
			[2]string{"wg_s", "QG1"}, [2]string{"wg_s", "QG3"}, [2]string{"wg_s", "QG5"},
		)
	}
	for _, c := range unlabeled {
		data, err := datasets.Load(c[0])
		if err != nil {
			return nil, err
		}
		cases = append(cases, orderCase{c[0], c[1], data, qgs[c[1]]})
	}

	// Label patterns reuse the QG topologies: label k of the Zipf
	// alphabet covers ~(1+k)^-1.4 of the vertices, so pattern [0 1 2 3]
	// mixes one huge candidate set with progressively selective ones.
	patterns := []struct {
		qname  string
		labels []graph.Label
	}{
		{"QG1", []graph.Label{0, 1, 2}},
		{"QG2", []graph.Label{0, 1, 0, 2}},
		{"QG2", []graph.Label{0, 1, 2, 3}},
		{"QG3", []graph.Label{0, 1, 2, 3}},
		{"QG4", []graph.Label{0, 1, 2, 1, 0}},
		{"QG4", []graph.Label{0, 0, 1, 2, 3}},
		{"QG5", []graph.Label{0, 1, 2, 3, 4}},
	}
	labeled := []struct {
		dname  string
		labels int
	}{{"yt_s", 12}}
	if !cfg.quick {
		labeled = append(labeled, struct {
			dname  string
			labels int
		}{"lj_s", 16})
	}
	for _, lc := range labeled {
		base, err := datasets.Load(lc.dname)
		if err != nil {
			return nil, err
		}
		data := gen.WithZipfMultiLabels(base, lc.labels, 1, 1.4, 7*int64(lc.labels))
		dname := fmt.Sprintf("%s/z%d", lc.dname, lc.labels)
		for _, p := range patterns {
			q := relabelQuery(qgs[p.qname], p.labels)
			qname := fmt.Sprintf("%s%v", p.qname, p.labels)
			cases = append(cases, orderCase{dname, qname, data, q})
		}
	}
	return cases, nil
}

// relabelQuery copies a query topology with explicit vertex labels.
func relabelQuery(topo *ceci.Graph, labels []graph.Label) *ceci.Graph {
	b := graph.NewBuilder(topo.NumVertices())
	for v := 0; v < topo.NumVertices(); v++ {
		b.SetLabel(graph.VertexID(v), labels[v])
	}
	topo.Edges(func(u, v graph.VertexID) bool {
		b.AddEdge(u, v)
		return true
	})
	return b.MustBuild()
}

func heuristicByName(name string) (ceci.OrderHeuristic, error) {
	for _, h := range order.Heuristics() {
		if h.String() == name {
			return h, nil
		}
	}
	return 0, fmt.Errorf("unknown heuristic %q", name)
}
