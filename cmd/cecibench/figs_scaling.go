package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"ceci/internal/baseline"
	"ceci/internal/baseline/psgl"
	icec "ceci/internal/ceci"
	"ceci/internal/cluster"
	"ceci/internal/datasets"
	"ceci/internal/enum"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
	"ceci/internal/stats"
	"ceci/internal/workload"
)

// measureStrategyCosts builds the index once and measures per-unit costs
// for the given strategy's unit decomposition.
func measureStrategyCosts(data, query *graph.Graph, strat workload.Strategy, beta float64, workers int) ([]time.Duration, int64, error) {
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		return nil, 0, err
	}
	ix := icec.Build(data, tree, icec.Options{})
	m := enum.NewMatcher(ix, enum.Options{Workers: workers, Strategy: strat, Beta: beta})
	unitCosts := m.MeasureUnits()
	costs := make([]time.Duration, len(unitCosts))
	var total int64
	for i, c := range unitCosts {
		costs[i] = c.Duration
		total += c.Embeddings
	}
	return costs, total, nil
}

// runFig11: speedup of CGD and FGD over ST at the paper's worker count
// (β = 0.2, queries QG1/QG3/QG5 — imbalance at depths 3/4/5).
func runFig11(cfg benchConfig) error {
	dnames := []string{"wt_s", "lj_s", "yt_s"}
	if cfg.quick {
		dnames = []string{"wt_s", "yt_s"}
	}
	workers := 32
	if cfg.workers > 0 {
		workers = cfg.workers
	}
	fmt.Printf("simulated workers: %d, beta = 0.2\n", workers)
	fmt.Printf("%-6s %-5s %12s %12s %12s %12s %12s\n",
		"data", "query", "ST", "CGD", "FGD", "CGD/ST", "FGD/ST")
	for _, dname := range dnames {
		data, err := datasets.Load(dname)
		if err != nil {
			return err
		}
		for _, qname := range []string{"QG1", "QG3", "QG5"} {
			query := gen.QueryGraphs()[qname]
			clusterCosts, n1, err := measureStrategyCosts(data, query, workload.CGD, 0.2, workers)
			if err != nil {
				return err
			}
			fgdCosts, n2, err := measureStrategyCosts(data, query, workload.FGD, 0.2, workers)
			if err != nil {
				return err
			}
			if n1 != n2 {
				return fmt.Errorf("%s/%s: FGD decomposition changed count %d != %d", dname, qname, n2, n1)
			}
			st := workload.SimulateMakespan(clusterCosts, workers, workload.ST)
			cgd := workload.SimulateMakespan(clusterCosts, workers, workload.CGD)
			fgd := workload.SimulateMakespan(fgdCosts, workers, workload.FGD)
			fmt.Printf("%-6s %-5s %12v %12v %12v %12s %12s\n",
				dname, qname,
				st.Round(time.Microsecond), cgd.Round(time.Microsecond), fgd.Round(time.Microsecond),
				speedup(st, cgd), speedup(st, fgd))
		}
	}
	fmt.Println("\nexpected shape (paper): FGD > CGD > ST; paper reports CGD 10.7x over ST, FGD 16.8x over CGD on average")
	return nil
}

// runFig12: per-worker busy times under different β (smaller β = more
// decomposition overhead but flatter tail).
func runFig12(cfg benchConfig) error {
	dname := "lj_s"
	if cfg.quick {
		dname = "wt_s"
	}
	data, err := datasets.Load(dname)
	if err != nil {
		return err
	}
	query := gen.QueryGraphs()["QG3"]
	workers := 16
	fmt.Printf("dataset %s, QG3, %d simulated workers\n", dname, workers)
	for _, beta := range []float64{1.0, 0.2, 0.1} {
		start := time.Now()
		costs, _, err := measureStrategyCosts(data, query, workload.FGD, beta, workers)
		decomposeAndMeasure := time.Since(start)
		if err != nil {
			return err
		}
		times := workload.SimulateWorkerTimes(costs, workers, workload.FGD)
		min, max, sum := times[0], times[0], time.Duration(0)
		for _, t := range times {
			if t < min {
				min = t
			}
			if t > max {
				max = t
			}
			sum += t
		}
		mean := sum / time.Duration(len(times))
		skew := float64(max) / float64(mean+1)
		fmt.Printf("beta=%-4v units=%-6d fastest=%-12v slowest=%-12v mean=%-12v skew=%.2f (overhead incl. measurement %v)\n",
			beta, len(costs), min.Round(time.Microsecond), max.Round(time.Microsecond),
			mean.Round(time.Microsecond), skew, decomposeAndMeasure.Round(time.Millisecond))
	}
	fmt.Println("\nexpected shape (paper): smaller beta -> more units, higher one-time cost, much smaller tail skew")
	return nil
}

func runThreadScaling(cfg benchConfig, qname string) error {
	// QG1 runs on the Table 1 substitutes; QG4's embedding counts explode
	// on the hub-heavy ones (billions — PsgL cannot materialize its
	// levels at all, the pathology §6.4 reports), so its scalability
	// comparison uses a hub-free ER workload both systems complete.
	type workloadSpec struct {
		name string
		data *graph.Graph
	}
	var specs []workloadSpec
	if qname == "QG4" {
		n := 16000
		if cfg.quick {
			n = 8000
		}
		specs = append(specs, workloadSpec{fmt.Sprintf("er-%d", n), gen.ErdosRenyi(n, 4*n, 77)})
	} else {
		dnames := []string{"lj_s", "ok_s"}
		if cfg.quick {
			dnames = []string{"wt_s"}
		}
		for _, dname := range dnames {
			data, err := datasets.Load(dname)
			if err != nil {
				return err
			}
			specs = append(specs, workloadSpec{dname, data})
		}
	}
	threadCounts := []int{1, 2, 4, 8, 16, 32}
	query := gen.QueryGraphs()[qname]
	for _, spec := range specs {
		// CECI: measured unit costs, FGD schedule.
		costs, nC, err := measureStrategyCosts(spec.data, query, workload.FGD, 0.2, 32)
		if err != nil {
			return err
		}
		// PsgL: measured level costs, barrier schedule.
		levels, nP, err := psgl.Measure(spec.data, query, baseline.Options{})
		psglOK := err == nil
		if err != nil && !errors.Is(err, psgl.ErrIntermediatesExceeded) {
			return err
		}
		if psglOK && nC != nP {
			return fmt.Errorf("%s/%s: ceci %d != psgl %d", spec.name, qname, nC, nP)
		}
		base := workload.SimulateMakespan(costs, 1, workload.FGD)
		var psglBase time.Duration
		if psglOK {
			psglBase = psgl.SimulateMakespan(levels, 1)
		}
		fmt.Printf("dataset %s, %s (%d embeddings)\n", spec.name, qname, nC)
		fmt.Printf("  %-8s %14s %10s %14s %10s\n", "threads", "CECI", "speedup", "PsgL", "speedup")
		for _, k := range threadCounts {
			c := workload.SimulateMakespan(costs, k, workload.FGD)
			pStr, pSpeed := "DNF", "-"
			if psglOK {
				p := psgl.SimulateMakespan(levels, k)
				pStr = p.Round(time.Microsecond).String()
				pSpeed = speedup(psglBase, p)
			}
			fmt.Printf("  %-8d %14v %10s %14s %10s\n", k,
				c.Round(time.Microsecond), speedup(base, c), pStr, pSpeed)
		}
	}
	fmt.Println("\nexpected shape (paper): CECI near-linear to 16 threads then flattening; PsgL clearly weaker scaling")
	return nil
}

func runFig13(cfg benchConfig) error { return runThreadScaling(cfg, "QG1") }
func runFig14(cfg benchConfig) error { return runThreadScaling(cfg, "QG4") }

// runFig15: phase breakdown — the paper's CPU-utilization story is that
// enumeration dominates (>95%) and is the fully parallel phase.
func runFig15(cfg benchConfig) error {
	dname := "ok_s"
	if cfg.quick {
		dname = "wt_s"
	}
	data, err := datasets.Load(dname)
	if err != nil {
		return err
	}
	trace := stats.NewPhaseTrace()
	for _, qname := range []string{"QG1", "QG3", "QG5"} {
		query := gen.QueryGraphs()[qname]
		var tree *order.QueryTree
		trace.Time("preprocess", func() {
			tree, err = order.Preprocess(data, query, order.DefaultOptions())
		})
		if err != nil {
			return err
		}
		var ix *icec.Index
		trace.Time("build+refine", func() {
			ix = icec.Build(data, tree, icec.Options{})
		})
		trace.Time("enumerate", func() {
			// Budgeted: the phase proportions stabilize long before the
			// big clique counts finish on the denser substitutes.
			deadline := time.Now().Add(runBudget(cfg))
			var n atomic.Int64
			enum.NewMatcher(ix, enum.Options{Strategy: workload.FGD}).ForEach(
				func([]graph.VertexID) bool {
					return n.Add(1)%8192 != 0 || time.Now().Before(deadline)
				})
		})
	}
	fmt.Printf("dataset %s, QG1+QG3+QG5 aggregate phase times:\n%s", dname, trace)
	enumShare := float64(trace.Get("enumerate")) /
		float64(trace.Get("enumerate")+trace.Get("build+refine")+trace.Get("preprocess"))
	fmt.Printf("enumeration share: %.1f%% (paper: >95%%, the phase that saturates all cores)\n", 100*enumShare)
	return nil
}

// simCache memoizes cluster measurements across the distributed figures
// (the serial measurement pass is by far the expensive part; figures 16,
// 17, and 20 share it).
var simCache = map[string]*cluster.Simulation{}

func cachedSimulation(dname, qname string) (*cluster.Simulation, error) {
	key := dname + "/" + qname
	if sim, ok := simCache[key]; ok {
		return sim, nil
	}
	data, err := datasets.Load(dname)
	if err != nil {
		return nil, err
	}
	sim, err := cluster.NewSimulation(data, gen.QueryGraphs()[qname])
	if err != nil {
		return nil, err
	}
	simCache[key] = sim
	return sim, nil
}

// runDistributed drives the cluster simulator across machine counts.
// QG4 (the paper's second query here) multiplies embedding counts by
// orders of magnitude on the hub-heavy substitutes, so it is included
// only under -large; QG3 stands in by default.
func runDistributed(cfg benchConfig, mode cluster.Mode) error {
	dname := "wt_s"
	queries := []string{"QG1", "QG3"}
	if cfg.large {
		queries = []string{"QG1", "QG4"}
	}
	machineCounts := []int{1, 2, 4, 8, 16}
	for _, qname := range queries {
		sim, err := cachedSimulation(dname, qname)
		if err != nil {
			return err
		}
		fmt.Printf("dataset %s, %s, mode %v, 4 workers/machine\n", dname, qname, mode)
		fmt.Printf("  %-9s %14s %10s %12s %8s\n", "machines", "makespan", "speedup", "embeddings", "steals")
		var base time.Duration
		for _, m := range machineCounts {
			res, err := sim.Run(cluster.Config{
				Machines:          m,
				WorkersPerMachine: 4,
				Mode:              mode,
				Jaccard:           mode == cluster.Replicated,
			})
			if err != nil {
				return err
			}
			if m == 1 {
				base = res.Makespan
			}
			fmt.Printf("  %-9d %14v %10s %12d %8d\n",
				m, res.Makespan.Round(time.Microsecond), speedup(base, res.Makespan),
				res.Embeddings, res.Steals)
		}
	}
	if mode == cluster.Replicated {
		fmt.Println("\nexpected shape (paper): near-linear to 4-8 machines, flattening for small graphs; max ~13.7-14.9x at 16")
	} else {
		fmt.Println("\nexpected shape (paper): build cost inflated by remote IO, but still ~12.6-13.6x at 16 machines")
	}
	return nil
}

func runFig16(cfg benchConfig) error { return runDistributed(cfg, cluster.Replicated) }
func runFig17(cfg benchConfig) error { return runDistributed(cfg, cluster.SharedStorage) }

// runFig20: CECI construction cost breakdown (IO vs communication vs
// compute) for the shared-storage configuration.
func runFig20(cfg benchConfig) error {
	dname := "wt_s"
	sim, err := cachedSimulation(dname, "QG1")
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s, QG1, shared-storage build breakdown per machine count\n", dname)
	fmt.Printf("%-9s %14s %14s %14s %8s\n", "machines", "compute", "IO", "comm", "IO share")
	for _, m := range []int{1, 2, 4, 8, 16} {
		res, err := sim.Run(cluster.Config{
			Machines:          m,
			WorkersPerMachine: 4,
			Mode:              cluster.SharedStorage,
		})
		if err != nil {
			return err
		}
		var compute, io, comm time.Duration
		for _, l := range res.Machines {
			compute += l.BuildCompute
			io += l.BuildIO
			comm += l.Comm
		}
		share := float64(io) / float64(compute+io+comm+1)
		fmt.Printf("%-9d %14v %14v %14v %7.1f%%\n",
			m, compute.Round(time.Microsecond), io.Round(time.Microsecond),
			comm.Round(time.Microsecond), 100*share)
	}
	// Measured variant: the same deployment against a real CSR file with
	// positioned reads (internal/cluster.RunDiskShared).
	data, err := datasets.Load(dname)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "cecibench-fig20")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	csrPath := filepath.Join(dir, dname+".csr")
	f, err := os.Create(csrPath)
	if err != nil {
		return err
	}
	if err := graph.WriteCSR(f, data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("\nmeasured (real positioned reads against a CSR file):")
	fmt.Printf("%-9s %14s %14s %12s %12s\n", "machines", "compute", "IO (measured)", "reads", "embeddings")
	for _, m := range []int{1, 4} {
		res, err := cluster.RunDiskShared(csrPath, gen.QueryGraphs()["QG1"], cluster.Config{
			Machines: m, WorkersPerMachine: 1,
		})
		if err != nil {
			return err
		}
		var compute, io time.Duration
		var reads int64
		for _, l := range res.Machines {
			compute += l.BuildCompute
			io += l.BuildIO
			reads += l.RemoteReads
		}
		fmt.Printf("%-9d %14v %14v %12d %12d\n",
			m, compute.Round(time.Microsecond), io.Round(time.Microsecond), reads, res.Embeddings)
	}
	fmt.Println("\nexpected shape (paper): IO dominates the networked-storage build (up to 100x the in-memory build cost)")
	return nil
}
