package main

import (
	"fmt"
	"time"

	"ceci/internal/ceci"
	"ceci/internal/datasets"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
)

// runTable1 prints the dataset inventory: each substitute's actual size
// next to the paper's original (Table 1).
func runTable1(cfg benchConfig) error {
	fmt.Printf("%-6s %-4s %-12s %10s %10s   %-10s %-10s  %s\n",
		"name", "abbr", "paper", "|V|", "|E|", "paper |V|", "paper |E|", "shape")
	for _, spec := range datasets.Catalog() {
		if !cfg.large && (spec.Name == "fs_s" || spec.Name == "yh_s") && cfg.quick {
			continue
		}
		g, err := datasets.Load(spec.Name)
		if err != nil {
			return err
		}
		fmt.Printf("%-6s %-4s %-12s %10d %10d   %-10s %-10s  %s\n",
			spec.Name, spec.Abbr, spec.PaperName, g.NumVertices(), g.NumEdges(),
			spec.PaperV, spec.PaperE, spec.Shape)
	}
	return nil
}

// table2Datasets matches the paper's Table 2 column set (FS, LJ, OK, WT,
// YH, YT) via the substitutes.
func table2Datasets(cfg benchConfig) []string {
	if cfg.quick {
		return []string{"lj_s", "wt_s", "yt_s"}
	}
	out := []string{"lj_s", "ok_s", "wt_s", "yt_s"}
	if cfg.large {
		out = append([]string{"fs_s"}, append(out, "yh_s")...)
	}
	return out
}

// runTable2 reproduces Table 2: CECI size (8 bytes per candidate edge)
// against the theoretical 8·|Eq|·|Eg| bound, and the % saved.
func runTable2(cfg benchConfig) error {
	names := table2Datasets(cfg)
	queries := gen.QueryGraphs()
	fmt.Printf("%-5s", "query")
	for _, d := range names {
		fmt.Printf(" | %-26s", d)
	}
	fmt.Println()
	for _, qname := range []string{"QG1", "QG2", "QG3", "QG4", "QG5"} {
		fmt.Printf("%-5s", qname)
		for _, dname := range names {
			g, err := datasets.Load(dname)
			if err != nil {
				return err
			}
			ix, _, err := buildIndex(g, queries[qname])
			if err != nil {
				return err
			}
			actual := ix.SizeBytes()
			theo := ix.TheoreticalBytes()
			saved := 100 * (1 - float64(actual)/float64(theo))
			fmt.Printf(" | %7s (%7s) [%5.1f%%]", mb(actual), mb(theo), saved)
		}
		fmt.Println()
	}
	fmt.Println("\nformat per cell: actual (theoretical) [% saved], sizes in MB")
	return nil
}

func mb(b int64) string {
	return fmt.Sprintf("%.2f", float64(b)/(1<<20))
}

func buildIndex(data, query *graph.Graph) (*ceci.Index, *order.QueryTree, error) {
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	return ceci.Build(data, tree, ceci.Options{}), tree, nil
}

// timeIt runs fn and returns its wall-clock duration.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
