package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func benchCase(total int64) CaseResult {
	return CaseResult{
		Dataset: "wt_s", Query: "QG1",
		Embeddings:       100,
		BuildNS:          total / 2,
		EnumNS:           total / 2,
		TotalNS:          total,
		EmbeddingsPerSec: 1e6,
		IndexBytes:       4096,
		RecursiveCalls:   1000,
		IntersectionOps:  500,
		PeakHeapBytes:    1 << 20,
	}
}

func TestCompareBenchIdentical(t *testing.T) {
	base := &BenchResult{Cases: []CaseResult{benchCase(1e9)}}
	if n := compareBench(io.Discard, base, base, 0.25); n != 0 {
		t.Fatalf("identical results: %d regressions", n)
	}
}

func TestCompareBenchWithinThreshold(t *testing.T) {
	base := &BenchResult{Cases: []CaseResult{benchCase(1e9)}}
	cur := &BenchResult{Cases: []CaseResult{benchCase(12e8)}} // +20% < 25%
	if n := compareBench(io.Discard, base, cur, 0.25); n != 0 {
		t.Fatalf("+20%% under a 25%% threshold: %d regressions", n)
	}
}

func TestCompareBenchTimingRegression(t *testing.T) {
	base := &BenchResult{Cases: []CaseResult{benchCase(1e9)}}
	cur := &BenchResult{Cases: []CaseResult{benchCase(14e8)}} // +40% > 25%
	// build_ns and total_ns both crossed the threshold.
	if n := compareBench(io.Discard, base, cur, 0.25); n != 2 {
		t.Fatalf("regressions = %d, want 2 (build_ns, total_ns)", n)
	}
}

func TestCompareBenchEmbeddingMismatchAlwaysFails(t *testing.T) {
	base := &BenchResult{Cases: []CaseResult{benchCase(1e9)}}
	c := benchCase(1e9)
	c.Embeddings++ // off by one: correctness, not performance
	cur := &BenchResult{Cases: []CaseResult{c}}
	if n := compareBench(io.Discard, base, cur, 100); n != 1 {
		t.Fatalf("regressions = %d, want 1 even at a huge threshold", n)
	}
}

func TestCompareBenchThroughputRegression(t *testing.T) {
	base := &BenchResult{Cases: []CaseResult{benchCase(1e9)}}
	c := benchCase(1e9)
	c.EmbeddingsPerSec = 1e6 / 2 // halved throughput
	cur := &BenchResult{Cases: []CaseResult{c}}
	if n := compareBench(io.Discard, base, cur, 0.25); n != 1 {
		t.Fatalf("regressions = %d, want 1", n)
	}
}

func TestCompareBenchPeakHeapNeverGated(t *testing.T) {
	base := &BenchResult{Cases: []CaseResult{benchCase(1e9)}}
	c := benchCase(1e9)
	c.PeakHeapBytes *= 100
	cur := &BenchResult{Cases: []CaseResult{c}}
	if n := compareBench(io.Discard, base, cur, 0.25); n != 0 {
		t.Fatalf("peak heap gated: %d regressions", n)
	}
}

func TestCompareBenchProfileKeyRegression(t *testing.T) {
	b := benchCase(1e9)
	b.Profile = map[string]int64{"enum_comparisons": 1000, "enum_kernel_gallop_scanned": 400}
	base := &BenchResult{Cases: []CaseResult{b}}
	c := benchCase(1e9)
	c.Profile = map[string]int64{"enum_comparisons": 2000, "enum_kernel_gallop_scanned": 400}
	cur := &BenchResult{Cases: []CaseResult{c}}
	if n := compareBench(io.Discard, base, cur, 0.25); n != 1 {
		t.Fatalf("doubled enum_comparisons not gated: %d regressions", n)
	}
}

func TestCompareBenchProfileKeyNewInCandidate(t *testing.T) {
	// A key the baseline predates (e.g. the per-kernel split before a
	// baseline refresh) is reported but never gated.
	base := &BenchResult{Cases: []CaseResult{benchCase(1e9)}}
	c := benchCase(1e9)
	c.Profile = map[string]int64{"enum_kernel_bitset_calls": 123456}
	cur := &BenchResult{Cases: []CaseResult{c}}
	if n := compareBench(io.Discard, base, cur, 0.25); n != 0 {
		t.Fatalf("baseline-missing profile key gated: %d regressions", n)
	}
}

func TestCompareBenchMissingCase(t *testing.T) {
	base := &BenchResult{Cases: []CaseResult{benchCase(1e9)}}
	cur := &BenchResult{Cases: nil}
	if n := compareBench(io.Discard, base, cur, 0.25); n != 1 {
		t.Fatalf("missing case not flagged: %d", n)
	}
}

func TestBenchResultFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := &BenchResult{
		Name: "x", GoVersion: "go1.x", Workers: 4,
		Cases: []CaseResult{benchCase(1e9)},
	}
	path := filepath.Join(dir, "BENCH_x.json")
	b, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadBenchResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "x" || len(got.Cases) != 1 || got.Cases[0].TotalNS != 1e9 {
		t.Fatalf("round trip = %+v", got)
	}
}

// TestCommittedBaselineLoads guards the CI gating artifact: the baseline
// checked into testdata must stay parseable and cover the full suite.
func TestCommittedBaselineLoads(t *testing.T) {
	base, err := loadBenchResult(filepath.Join("testdata", "BENCH_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Cases) != len(benchSuite) {
		t.Fatalf("baseline has %d cases, suite has %d", len(base.Cases), len(benchSuite))
	}
	for i, c := range benchSuite {
		got := base.Cases[i]
		if got.Dataset != c.dataset || got.Query != c.query {
			t.Fatalf("baseline case %d = %s/%s, want %s/%s", i, got.Dataset, got.Query, c.dataset, c.query)
		}
		if got.Embeddings <= 0 || got.TotalNS <= 0 {
			t.Fatalf("baseline case %d has empty measurements: %+v", i, got)
		}
	}
}
