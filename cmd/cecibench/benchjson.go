package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"ceci"
	"ceci/internal/datasets"
	"ceci/internal/gen"
)

// The regression-tracking suite: small enough for CI, varied enough to
// cover both sparse (wt_s) and denser (yt_s) substitutes and both a
// path-ish (QG1) and a cyclic (QG3) pattern.
var benchSuite = []struct {
	dataset string
	query   string
}{
	{"wt_s", "QG1"},
	{"wt_s", "QG3"},
	{"yt_s", "QG1"},
	{"yt_s", "QG3"},
}

const benchReps = 3

// BenchResult is one BENCH_<name>.json document: everything needed to
// compare two checkouts of this repository on the same machine (timing
// metrics) or across machines (deterministic counters).
type BenchResult struct {
	Name      string       `json:"name"`
	GitSHA    string       `json:"git_sha,omitempty"`
	GoVersion string       `json:"go_version"`
	Workers   int          `json:"workers"`
	Cases     []CaseResult `json:"cases"`
}

// CaseResult is one (dataset, query) measurement.
type CaseResult struct {
	Dataset string `json:"dataset"`
	Query   string `json:"query"`

	// Correctness gate: must match the baseline exactly.
	Embeddings int64 `json:"embeddings"`

	// Timing metrics (medians over benchReps runs); machine-dependent.
	BuildNS          int64   `json:"build_ns"`
	EnumNS           int64   `json:"enum_ns"`
	TotalNS          int64   `json:"total_ns"`
	EmbeddingsPerSec float64 `json:"embeddings_per_sec"`

	// Deterministic work counters; comparable across machines.
	IndexBytes      int64 `json:"index_bytes"`
	RecursiveCalls  int64 `json:"recursive_calls"`
	IntersectionOps int64 `json:"intersection_ops"`

	// Allocation metrics for the enumeration phase (heap allocations and
	// bytes per full enumeration, minimum over reps — the minimum is the
	// least contaminated by background goroutines and GC bookkeeping).
	// Gated in -compare: the enumeration hot path is designed to be
	// allocation-free, so growth here is a structural regression.
	EnumAllocsPerOp int64 `json:"enum_allocs_per_op"`
	EnumBytesPerOp  int64 `json:"enum_bytes_per_op"`

	// Memory: max heap-in-use observed after each rep. Reported in
	// comparisons but never gated (GC timing makes it noisy).
	PeakHeapBytes int64 `json:"peak_heap_bytes"`

	// Profile is the filter-funnel summary from the EXPLAIN ANALYZE
	// collector — deterministic totals across the whole run.
	Profile map[string]int64 `json:"profile,omitempty"`

	// Order is how the matching order was chosen ("bfs", ...,
	// "auto:<winner>" under the planner); MatchingOrder is the order
	// itself; PlannerEstimate is the cost model's estimate for it (0
	// when the planner was off). Order changes are reported by -compare
	// but never gated — the gated counters above already catch any real
	// cost of an order switch.
	Order           string  `json:"order,omitempty"`
	MatchingOrder   []int   `json:"matching_order,omitempty"`
	PlannerEstimate float64 `json:"planner_estimate,omitempty"`
}

type benchJSONConfig struct {
	jsonOut   string  // directory for BENCH_<name>.json ("" = don't write)
	name      string  // bench name; file becomes BENCH_<name>.json
	compare   string  // baseline BENCH json to compare against ("" = don't)
	candidate string  // pre-recorded candidate json ("" = run the suite)
	threshold float64 // relative regression threshold for timing metrics
	workers   int
	order     string // matching order: a heuristic name or "auto" (default bfs)
}

// runBenchJSON drives the machine-readable benchmark modes: run the
// suite and write BENCH_<name>.json, compare against a baseline, or
// both. Returns an error (non-zero exit) on any regression.
func runBenchJSON(cfg benchJSONConfig) error {
	var cur *BenchResult
	if cfg.candidate != "" {
		loaded, err := loadBenchResult(cfg.candidate)
		if err != nil {
			return fmt.Errorf("-candidate: %w", err)
		}
		cur = loaded
	} else {
		measured, err := measureSuite(cfg.name, cfg.workers, cfg.order)
		if err != nil {
			return err
		}
		cur = measured
	}

	if cfg.jsonOut != "" {
		if err := os.MkdirAll(cfg.jsonOut, 0o755); err != nil {
			return err
		}
		path := filepath.Join(cfg.jsonOut, "BENCH_"+cur.Name+".json")
		b, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d cases)\n", path, len(cur.Cases))
	}

	if cfg.compare != "" {
		base, err := loadBenchResult(cfg.compare)
		if err != nil {
			return fmt.Errorf("-compare: %w", err)
		}
		regressions := compareBench(os.Stdout, base, cur, cfg.threshold)
		if regressions > 0 {
			return fmt.Errorf("%d regression(s) vs %s (threshold %.0f%%)",
				regressions, cfg.compare, 100*cfg.threshold)
		}
		fmt.Printf("no regressions vs %s (threshold %.0f%%)\n", cfg.compare, 100*cfg.threshold)
	}
	return nil
}

func loadBenchResult(path string) (*BenchResult, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchResult
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// measureSuite runs every suite case benchReps times and records the
// median timings plus the deterministic counters of the final rep.
// orderName selects the matching order for every case: a heuristic name
// or "auto" for the cost-based planner ("" = bfs, the default).
func measureSuite(name string, workers int, orderName string) (*BenchResult, error) {
	if workers <= 0 || workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0) // oversubscription only adds noise
	}
	res := &BenchResult{
		Name:      name,
		GitSHA:    gitSHA(),
		GoVersion: runtime.Version(),
		Workers:   workers,
	}
	for _, c := range benchSuite {
		data, err := datasets.Load(c.dataset)
		if err != nil {
			return nil, err
		}
		query, ok := gen.QueryGraphs()[c.query]
		if !ok {
			return nil, fmt.Errorf("unknown query %s", c.query)
		}

		var builds, enums []time.Duration
		var cr CaseResult
		cr.Dataset, cr.Query = c.dataset, c.query
		for rep := 0; rep < benchReps; rep++ {
			st := &ceci.Stats{}
			opts := &ceci.Options{Workers: workers, Stats: st}
			if err := applyOrder(opts, orderName); err != nil {
				return nil, err
			}
			buildStart := time.Now()
			m, err := ceci.Match(data, query, opts)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", c.dataset, c.query, err)
			}
			builds = append(builds, time.Since(buildStart))
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			enumStart := time.Now()
			n := m.Count()
			enums = append(enums, time.Since(enumStart))
			runtime.ReadMemStats(&ms1)
			allocs := int64(ms1.Mallocs - ms0.Mallocs)
			bytes := int64(ms1.TotalAlloc - ms0.TotalAlloc)
			if rep == 0 || allocs < cr.EnumAllocsPerOp {
				cr.EnumAllocsPerOp = allocs
			}
			if rep == 0 || bytes < cr.EnumBytesPerOp {
				cr.EnumBytesPerOp = bytes
			}

			snap := st.Snapshot()
			cr.Embeddings = n
			cr.IndexBytes = snap["index_bytes"]
			cr.RecursiveCalls = snap["recursive_calls"]
			cr.IntersectionOps = snap["intersection_ops"]
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if heap := int64(ms.HeapInuse); heap > cr.PeakHeapBytes {
				cr.PeakHeapBytes = heap
			}
		}
		// One profiled run for the funnel summary (kept out of the timed
		// reps so instrumentation can never shift the timing metrics).
		profOpts := &ceci.Options{Workers: workers}
		if err := applyOrder(profOpts, orderName); err != nil {
			return nil, err
		}
		rep, err := ceci.ExplainAnalyze(data, query, profOpts)
		if err != nil {
			return nil, err
		}
		cr.Profile = rep.Profile.FunnelTotals()
		cr.Order = rep.Profile.Order
		cr.MatchingOrder = rep.Profile.MatchingOrder
		if pp := rep.Profile.Planner; pp != nil {
			cr.PlannerEstimate = pp.Estimate
		}

		cr.BuildNS = int64(median(builds))
		cr.EnumNS = int64(median(enums))
		cr.TotalNS = cr.BuildNS + cr.EnumNS
		if cr.EnumNS > 0 {
			cr.EmbeddingsPerSec = float64(cr.Embeddings) / (float64(cr.EnumNS) / float64(time.Second))
		}
		res.Cases = append(res.Cases, cr)
		fmt.Printf("%-6s %-4s  embeddings=%-10d build=%-12v enum=%-12v\n",
			c.dataset, c.query, cr.Embeddings,
			time.Duration(cr.BuildNS).Round(time.Microsecond),
			time.Duration(cr.EnumNS).Round(time.Microsecond))
	}
	return res, nil
}

// compareBench prints per-metric deltas and returns the number of
// regressions. Gating rules:
//
//   - embeddings must match exactly (a mismatch is a correctness bug,
//     not a performance regression);
//   - timing metrics (build_ns, total_ns) regress when the candidate
//     exceeds baseline × (1 + threshold); embeddings_per_sec regresses
//     when it falls below baseline ÷ (1 + threshold);
//   - deterministic counters (index_bytes, recursive_calls,
//     intersection_ops) use the same relative threshold — they should
//     not move at all, but the threshold forgives intentional algorithm
//     changes accompanied by a baseline refresh;
//   - peak_heap_bytes is reported but never gated.
func compareBench(w io.Writer, base, cur *BenchResult, threshold float64) int {
	baseCases := map[string]CaseResult{}
	for _, c := range base.Cases {
		baseCases[c.Dataset+"/"+c.Query] = c
	}
	keys := make([]string, 0, len(cur.Cases))
	curCases := map[string]CaseResult{}
	for _, c := range cur.Cases {
		k := c.Dataset + "/" + c.Query
		keys = append(keys, k)
		curCases[k] = c
	}
	sort.Strings(keys)

	regressions := 0
	fmt.Fprintf(w, "%-12s %-20s %14s %14s %9s  %s\n",
		"case", "metric", "baseline", "candidate", "delta", "verdict")
	for _, k := range keys {
		c := curCases[k]
		b, ok := baseCases[k]
		if !ok {
			fmt.Fprintf(w, "%-12s %-20s %14s %14s %9s  new case (not gated)\n", k, "-", "-", "-", "-")
			continue
		}
		row := func(metric string, baseV, curV float64, bad bool) {
			verdict := "ok"
			if bad {
				verdict = "REGRESSION"
				regressions++
			}
			delta := "-"
			if baseV != 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*(curV-baseV)/baseV)
			}
			fmt.Fprintf(w, "%-12s %-20s %14.0f %14.0f %9s  %s\n", k, metric, baseV, curV, delta, verdict)
		}
		if b.Order != "" && c.Order != "" && b.Order != c.Order {
			fmt.Fprintf(w, "%-12s %-20s %14s %14s %9s  order changed (not gated)\n",
				k, "order", b.Order, c.Order, "-")
		}
		row("embeddings", float64(b.Embeddings), float64(c.Embeddings), c.Embeddings != b.Embeddings)
		row("build_ns", float64(b.BuildNS), float64(c.BuildNS), exceeds(c.BuildNS, b.BuildNS, threshold))
		row("total_ns", float64(b.TotalNS), float64(c.TotalNS), exceeds(c.TotalNS, b.TotalNS, threshold))
		row("embeddings_per_sec", b.EmbeddingsPerSec, c.EmbeddingsPerSec,
			b.EmbeddingsPerSec > 0 && c.EmbeddingsPerSec < b.EmbeddingsPerSec/(1+threshold))
		row("index_bytes", float64(b.IndexBytes), float64(c.IndexBytes), exceeds(c.IndexBytes, b.IndexBytes, threshold))
		row("recursive_calls", float64(b.RecursiveCalls), float64(c.RecursiveCalls), exceeds(c.RecursiveCalls, b.RecursiveCalls, threshold))
		row("intersection_ops", float64(b.IntersectionOps), float64(c.IntersectionOps), exceeds(c.IntersectionOps, b.IntersectionOps, threshold))
		// Allocation metrics: exceeds() skips gating when the baseline
		// predates them (zero value).
		row("enum_allocs_per_op", float64(b.EnumAllocsPerOp), float64(c.EnumAllocsPerOp), exceeds(c.EnumAllocsPerOp, b.EnumAllocsPerOp, threshold))
		row("enum_bytes_per_op", float64(b.EnumBytesPerOp), float64(c.EnumBytesPerOp), exceeds(c.EnumBytesPerOp, b.EnumBytesPerOp, threshold))
		row("peak_heap_bytes", float64(b.PeakHeapBytes), float64(c.PeakHeapBytes), false)
		// Deterministic funnel counters from the profiled run, including
		// the per-kernel enum split. Keys present in both documents gate
		// with the relative threshold; keys the baseline predates are
		// reported unchecked until the next baseline refresh.
		profKeys := make([]string, 0, len(c.Profile))
		for pk := range c.Profile {
			if strings.HasPrefix(pk, "enum_") {
				profKeys = append(profKeys, pk)
			}
		}
		sort.Strings(profKeys)
		for _, pk := range profKeys {
			bv, inBase := b.Profile[pk]
			row(pk, float64(bv), float64(c.Profile[pk]), inBase && exceeds(c.Profile[pk], bv, threshold))
		}
	}
	for k := range baseCases {
		if _, ok := curCases[k]; !ok {
			fmt.Fprintf(w, "%-12s %-20s %14s %14s %9s  MISSING from candidate\n", k, "-", "-", "-", "-")
			regressions++
		}
	}
	return regressions
}

// applyOrder maps a -order flag value onto match options: a static
// heuristic by name, or "auto" for the cost-based planner.
func applyOrder(opts *ceci.Options, name string) error {
	switch strings.ToLower(name) {
	case "", "bfs":
		opts.Order = ceci.OrderBFS
	case "least-frequent":
		opts.Order = ceci.OrderLeastFrequent
	case "path-ranked":
		opts.Order = ceci.OrderPathRanked
	case "edge-ranked":
		opts.Order = ceci.OrderEdgeRanked
	case "auto":
		opts.Planner = true
	default:
		return fmt.Errorf("unknown order %q", name)
	}
	return nil
}

// exceeds reports whether cur has grown past base by more than the
// relative threshold.
func exceeds(cur, base int64, threshold float64) bool {
	if base <= 0 {
		return false
	}
	return float64(cur) > float64(base)*(1+threshold)
}

// gitSHA best-effort resolves HEAD; empty when git is unavailable.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
