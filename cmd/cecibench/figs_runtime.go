package main

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"ceci/internal/baseline"
	"ceci/internal/baseline/bare"
	"ceci/internal/baseline/cfl"
	"ceci/internal/baseline/dualsim"
	"ceci/internal/baseline/psgl"
	"ceci/internal/baseline/turboiso"
	icec "ceci/internal/ceci"
	"ceci/internal/datasets"
	"ceci/internal/enum"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
	"ceci/internal/stats"
	"ceci/internal/workload"
)

// psglEmbeddingCap guards the PsgL baseline against its own exponential
// intermediate sets (the paper reports PsgL failing on YH with >512 GB):
// when CECI's count exceeds the cap we report DNF instead of thrashing.
const psglEmbeddingCap = 40_000_000

// Per-run wall-clock budgets: the paper's testbed enumerated billions of
// embeddings per pair on 28 cores; pairs that exceed the budget on this
// host are reported as exceeding it rather than stalling the harness.
func runBudget(cfg benchConfig) time.Duration {
	if cfg.quick {
		return 10 * time.Second
	}
	return 60 * time.Second
}

// errBudget marks an enumeration stopped by the harness budget.
var errBudget = errors.New("run exceeded harness time budget")

// ceciFullBudget is ceciFull with a wall-clock budget enforced through
// the enumeration callback.
func ceciFullBudget(data, query *graph.Graph, budget time.Duration) (time.Duration, int64, error) {
	start := time.Now()
	deadline := start.Add(budget)
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		return 0, 0, err
	}
	ix := icec.Build(data, tree, icec.Options{})
	m := enum.NewMatcher(ix, enum.Options{Strategy: workload.FGD})
	var n atomic.Int64
	var expired atomic.Bool
	m.ForEach(func([]graph.VertexID) bool {
		c := n.Add(1)
		if c%8192 == 0 && time.Now().After(deadline) {
			expired.Store(true)
			return false
		}
		return true
	})
	if expired.Load() {
		return time.Since(start), n.Load(), errBudget
	}
	return time.Since(start), n.Load(), nil
}

// baselineBudget wraps any callback-driven baseline with the same budget.
func baselineBudget(f baseline.ForEachFunc, data, query *graph.Graph, opts baseline.Options, budget time.Duration) (time.Duration, int64, error) {
	start := time.Now()
	deadline := start.Add(budget)
	var n atomic.Int64
	var expired atomic.Bool
	err := f(data, query, opts, func([]graph.VertexID) bool {
		c := n.Add(1)
		if c%8192 == 0 && time.Now().After(deadline) {
			expired.Store(true)
			return false
		}
		return true
	})
	if err != nil {
		return time.Since(start), n.Load(), err
	}
	if expired.Load() {
		return time.Since(start), n.Load(), errBudget
	}
	return time.Since(start), n.Load(), nil
}

// fig7Datasets: the paper runs eight real graphs; the harness defaults to
// the six mid-size substitutes and adds fs_s/yh_s under -large.
func fig7Datasets(cfg benchConfig) []string {
	if cfg.quick {
		return []string{"wt_s", "yt_s", "lj_s"}
	}
	out := []string{"cp_s", "lj_s", "ok_s", "wg_s", "wt_s", "yt_s"}
	if cfg.large {
		out = append(out, "fs_s", "yh_s")
	}
	return out
}

// cecuFull runs CECI end to end (preprocess + build + enumerate all) and
// returns total time and count.
func ceciFull(data, query *graph.Graph) (time.Duration, int64, error) {
	start := time.Now()
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		return 0, 0, err
	}
	ix := icec.Build(data, tree, icec.Options{})
	m := enum.NewMatcher(ix, enum.Options{Strategy: workload.FGD})
	n := m.Count()
	return time.Since(start), n, nil
}

func runBaselineTimed(f baseline.ForEachFunc, data, query *graph.Graph, opts baseline.Options) (time.Duration, int64, error) {
	start := time.Now()
	n, err := baseline.CountWith(f, data, query, opts)
	return time.Since(start), n, err
}

func runQueryComparison(cfg benchConfig, qnames []string, dnames []string) error {
	queries := gen.QueryGraphs()
	budget := runBudget(cfg)
	fmt.Printf("per-run budget %v; rows marked >budget enumerated more embeddings than fit it\n", budget)
	fmt.Printf("%-6s %-5s %12s %12s %12s %12s %10s %10s\n",
		"data", "query", "embeddings", "CECI", "DualSim", "PsgL", "vs DS", "vs PsgL")
	for _, dname := range dnames {
		data, err := datasets.Load(dname)
		if err != nil {
			return err
		}
		for _, qname := range qnames {
			query := queries[qname]
			tCeci, n, err := ceciFullBudget(data, query, budget)
			ceciStr := tCeci.Round(time.Millisecond).String()
			ceciDNF := errors.Is(err, errBudget)
			if err != nil && !ceciDNF {
				return err
			}
			if ceciDNF {
				ceciStr = ">" + budget.String()
			}

			dsStr, psglStr := "DNF", "DNF"
			var tDS, tPsgl time.Duration
			if !ceciDNF {
				// DualSim pays per-page IO; with simulated latency enabled
				// it is IO-bound exactly like the original.
				var nDS int64
				tDS, nDS, err = baselineBudget(dualsimForEach, data, query, baseline.Options{}, budget)
				switch {
				case errors.Is(err, errBudget):
					tDS = 0
					dsStr = ">" + budget.String()
				case err != nil:
					return err
				case nDS != n:
					return fmt.Errorf("%s/%s: dualsim count %d != ceci %d", dname, qname, nDS, n)
				default:
					dsStr = tDS.Round(time.Millisecond).String()
				}
				if n <= psglEmbeddingCap {
					var nP int64
					start := time.Now()
					nP, err = baseline.CountWith(func(d, q *graph.Graph, o baseline.Options, fn func([]graph.VertexID) bool) error {
						return psgl.ForEachOpt(d, q, psgl.Options{
							Options:  o,
							Deadline: start.Add(2 * budget), // PsgL gets 2x: it cannot stream early
						}, fn)
					}, data, query, baseline.Options{})
					tPsgl = time.Since(start)
					switch {
					case errors.Is(err, psgl.ErrIntermediatesExceeded):
						tPsgl = 0 // DNF: intermediate blowup, like the paper's YH runs
					case errors.Is(err, psgl.ErrDeadlineExceeded):
						tPsgl = 0
						psglStr = ">" + (2 * budget).String()
					case err != nil:
						return err
					case nP != n:
						return fmt.Errorf("%s/%s: psgl count %d != ceci %d", dname, qname, nP, n)
					default:
						psglStr = tPsgl.Round(time.Millisecond).String()
					}
				}
			}
			fmt.Printf("%-6s %-5s %12d %12s %12s %12s %10s %10s\n",
				dname, qname, n, ceciStr, dsStr, psglStr,
				speedup(tDS, tCeci), speedup(tPsgl, tCeci))
		}
	}
	fmt.Println("\nexpected shape (paper): CECI fastest on every pair; avg 1.9-4.5x vs DualSim, 4-87x vs PsgL")
	return nil
}

// dualsimForEach adapts the page-bound enumerator with the harness's
// comparison settings (simulated per-page IO latency on).
func dualsimForEach(data, query *graph.Graph, opts baseline.Options, fn func([]graph.VertexID) bool) error {
	// 500ns per page miss models a fast NVMe read amortized over the
	// buffer hits; it lands DualSim in the paper's observed 2-13x range
	// behind CECI rather than making the comparison IO-latency trivia.
	return dualsim.ForEachOpt(data, query, dualsim.Options{
		Options:          opts,
		PageSizeVertices: 64,
		BufferPages:      256,
		IOLatency:        500 * time.Nanosecond,
	}, fn)
}

func runFig7(cfg benchConfig) error {
	return runQueryComparison(cfg, []string{"QG1", "QG4"}, fig7Datasets(cfg))
}

func runFig8(cfg benchConfig) error {
	dnames := []string{"wg_s", "wt_s", "lj_s"}
	if cfg.quick {
		dnames = []string{"wt_s", "yt_s"}
	}
	return runQueryComparison(cfg, []string{"QG2", "QG3", "QG5"}, dnames)
}

// runFig9 compares CECI against CFLMatch for the first 1,024 embeddings
// of DFS-grown labeled queries of increasing size (paper: 3-50 vertices,
// 100 queries per size, single-threaded).
func runFig9(cfg benchConfig) error {
	sizes := []int{3, 5, 8, 12, 16, 20, 30, 40, 50}
	perSize := 20
	if cfg.quick {
		sizes = []int{3, 5, 8, 12}
		perSize = 5
	}
	for _, dname := range []string{"rd_s", "hu_s"} {
		data, err := datasets.Load(dname)
		if err != nil {
			return err
		}
		fmt.Printf("dataset %s (%v)\n", dname, data)
		fmt.Printf("  %-5s %6s %14s %14s %10s\n", "size", "ok", "CECI", "CFLMatch", "speedup")
		for _, size := range sizes {
			queries := gen.QuerySet(data, size, perSize, int64(size)*7919)
			var tCeci, tCfl time.Duration
			ok := 0
			for _, q := range queries {
				tc, nC, err := ceciFirstK(data, q, 1024)
				if err != nil {
					continue
				}
				start := time.Now()
				nF, err := baseline.CountWith(cfl.ForEach, data, q, baseline.Options{Workers: 1, Limit: 1024})
				if err != nil {
					continue
				}
				tf := time.Since(start)
				if nC != nF {
					return fmt.Errorf("%s size %d: ceci %d != cfl %d", dname, size, nC, nF)
				}
				tCeci += tc
				tCfl += tf
				ok++
			}
			if ok == 0 {
				fmt.Printf("  %-5d %6s\n", size, "0")
				continue
			}
			fmt.Printf("  %-5d %6d %14v %14v %10s\n", size, ok,
				(tCeci / time.Duration(ok)).Round(time.Microsecond),
				(tCfl / time.Duration(ok)).Round(time.Microsecond),
				speedup(tCfl, tCeci))
		}
	}
	fmt.Println("\nexpected shape (paper): CECI 3.5x (RD) and 1.9x (HU) faster on average; gap narrows for larger queries")
	return nil
}

// ceciFirstK runs the paper's first-k mode single-threaded, using the
// incremental per-cluster build: indexing only the clusters the first k
// embeddings actually come from, which is how a k-at-a-time system
// should behave (and what keeps CECI ahead of the lazy-exploration
// baselines TurboIso/CFLMatch on these dense labeled graphs).
func ceciFirstK(data, query *graph.Graph, k int64) (time.Duration, int64, error) {
	start := time.Now()
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		return 0, 0, err
	}
	var n int64
	n = enum.CountIncremental(data, tree, icec.Options{}, enum.Options{Workers: 1, Limit: k})
	return time.Since(start), n, nil
}

// runFig10 compares CECI with TurboIso and Boosted-TurboIso on the HU
// substitute, first 1,024 embeddings.
func runFig10(cfg benchConfig) error {
	data, err := datasets.Load("hu_s")
	if err != nil {
		return err
	}
	sizes := []int{3, 5, 8, 12, 16, 20}
	perSize := 20
	if cfg.quick {
		sizes = []int{3, 5, 8}
		perSize = 5
	}
	fmt.Printf("%-5s %6s %14s %14s %14s %10s %10s\n",
		"size", "ok", "CECI", "TurboIso", "Boosted", "vs TI", "vs BTI")
	for _, size := range sizes {
		queries := gen.QuerySet(data, size, perSize, int64(size)*104729)
		var tCeci, tTI, tBTI time.Duration
		ok := 0
		for _, q := range queries {
			tc, nC, err := ceciFirstK(data, q, 1024)
			if err != nil {
				continue
			}
			start := time.Now()
			nT, err := turboiso.Count(data, q, turboiso.Options{Options: baseline.Options{Workers: 1, Limit: 1024}})
			if err != nil {
				continue
			}
			ti := time.Since(start)
			start = time.Now()
			nB, err := turboiso.Count(data, q, turboiso.Options{Options: baseline.Options{Workers: 1, Limit: 1024}, Boosted: true})
			if err != nil {
				continue
			}
			bi := time.Since(start)
			if nC != nT || nC != nB {
				return fmt.Errorf("size %d: counts diverge ceci=%d ti=%d bti=%d", size, nC, nT, nB)
			}
			tCeci += tc
			tTI += ti
			tBTI += bi
			ok++
		}
		if ok == 0 {
			continue
		}
		fmt.Printf("%-5d %6d %14v %14v %14v %10s %10s\n", size, ok,
			(tCeci / time.Duration(ok)).Round(time.Microsecond),
			(tTI / time.Duration(ok)).Round(time.Microsecond),
			(tBTI / time.Duration(ok)).Round(time.Microsecond),
			speedup(tTI, tCeci), speedup(tBTI, tCeci))
	}
	fmt.Println("\nexpected shape (paper): CECI 2.71x vs TurboIso, 2.52x vs Boosted on average")
	return nil
}

// runFig18 compares the number of recursive calls CECI makes against
// PsgL's expansions for QG1-QG5 (the paper reports up to 44% reduction,
// growing with query complexity). PsgL must fully materialize every
// level, so this figure runs on a sparser graph where it completes all
// five queries.
func runFig18(cfg benchConfig) error {
	// Erdős–Rényi keeps PsgL's level-wise expansion finite across all
	// five queries (hub-heavy graphs blow past its intermediate cap on
	// QG4/QG5 — the very pathology the paper reports). The recursive-call
	// ratio is a machine-independent metric, so the smaller graph does
	// not distort the comparison.
	n, m := 12000, 48000
	if cfg.quick {
		n, m = 6000, 24000
	}
	data := gen.ErdosRenyi(n, m, 42)
	dname := fmt.Sprintf("er-%d", n)
	fmt.Printf("dataset %s (%v)\n", dname, data)
	fmt.Printf("%-5s %14s %14s %12s\n", "query", "CECI calls", "PsgL calls", "reduction")
	for _, qname := range []string{"QG1", "QG2", "QG3", "QG4", "QG5"} {
		query := gen.QueryGraphs()[qname]
		stC := &stats.Counters{}
		tree, err := order.Preprocess(data, query, order.DefaultOptions())
		if err != nil {
			return err
		}
		ix := icec.Build(data, tree, icec.Options{Stats: stC})
		nC := enum.NewMatcher(ix, enum.Options{Stats: stC, Strategy: workload.FGD}).Count()

		stP := &stats.Counters{}
		nP, err := psgl.Count(data, query, baseline.Options{Stats: stP})
		if errors.Is(err, psgl.ErrIntermediatesExceeded) {
			fmt.Printf("%-5s %14d %14s %12s\n", qname, stC.RecursiveCalls.Load(), "DNF", "-")
			continue
		}
		if err != nil {
			return err
		}
		if nC != nP {
			return fmt.Errorf("%s: ceci %d != psgl %d", qname, nC, nP)
		}
		c, p := stC.RecursiveCalls.Load(), stP.RecursiveCalls.Load()
		red := 0.0
		if p > 0 {
			red = 100 * (1 - float64(c)/float64(p))
		}
		fmt.Printf("%-5s %14d %14d %11.1f%%\n", qname, c, p, red)
	}
	fmt.Println("\nexpected shape (paper): up to 44% fewer recursive calls, larger for complex queries")
	return nil
}

// runFig19 ablates the CECI pipeline against the bare-graph baseline:
// bare -> +index+filtering -> +refinement -> +intersection (full CECI).
func runFig19(cfg benchConfig) error {
	dnames := []string{"wt_s", "yt_s"}
	if cfg.quick {
		dnames = []string{"yt_s"}
	}
	queries := gen.QueryGraphs()
	fmt.Printf("%-6s %-5s %12s %12s %12s %12s %12s\n",
		"data", "query", "bare", "+filter", "+refine", "full CECI", "total")
	for _, dname := range dnames {
		data, err := datasets.Load(dname)
		if err != nil {
			return err
		}
		for _, qname := range []string{"QG1", "QG3", "QG5"} {
			query := queries[qname]
			tBare, nBare, err := runBaselineTimed(bare.ForEach, data, query, baseline.Options{})
			if err != nil {
				return err
			}
			// +filtering: CECI index without refinement, edge verification.
			tFilter, nF, err := ceciVariant(data, query, true, true)
			if err != nil {
				return err
			}
			// +refinement: refined index, still edge verification.
			tRefine, nR, err := ceciVariant(data, query, false, true)
			if err != nil {
				return err
			}
			// full: refined index, intersection-based enumeration.
			tFull, nFull, err := ceciVariant(data, query, false, false)
			if err != nil {
				return err
			}
			if nBare != nF || nBare != nR || nBare != nFull {
				return fmt.Errorf("%s/%s: ablation counts diverge %d %d %d %d",
					dname, qname, nBare, nF, nR, nFull)
			}
			fmt.Printf("%-6s %-5s %12v %12v %12v %12v %12s\n",
				dname, qname,
				tBare.Round(time.Millisecond), tFilter.Round(time.Millisecond),
				tRefine.Round(time.Millisecond), tFull.Round(time.Millisecond),
				speedup(tBare, tFull))
		}
	}
	fmt.Println("\nexpected shape (paper): full CECI up to 2 orders of magnitude over bare; each stage contributes")
	return nil
}

func ceciVariant(data, query *graph.Graph, skipRefine, edgeVerify bool) (time.Duration, int64, error) {
	start := time.Now()
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		return 0, 0, err
	}
	ix := icec.Build(data, tree, icec.Options{SkipRefinement: skipRefine})
	m := enum.NewMatcher(ix, enum.Options{EdgeVerification: edgeVerify, Strategy: workload.FGD})
	n := m.Count()
	return time.Since(start), n, nil
}
