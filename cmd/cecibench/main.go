// Command cecibench regenerates every table and figure of the paper's
// evaluation (Section 6) on the synthetic dataset substitutes, printing
// the same rows/series the paper reports. Absolute numbers differ from
// the paper (different hardware, scaled datasets); the shapes — who wins,
// by roughly what factor, where curves flatten — are the reproduction
// target, recorded side by side with the paper's values in EXPERIMENTS.md.
//
// Usage:
//
//	cecibench -exp table2          # one experiment
//	cecibench -exp all             # everything (minutes)
//	cecibench -exp fig7 -quick     # reduced datasets/sizes
//	cecibench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ceci/internal/buildinfo"
	"ceci/internal/obs"
)

type benchConfig struct {
	quick   bool
	large   bool // include the two largest substitutes (fs_s, yh_s)
	workers int  // simulated worker count ceiling
}

type experiment struct {
	name string
	desc string
	run  func(cfg benchConfig) error
}

var experiments = []experiment{
	{"table1", "dataset inventory: substitutes vs the paper's Table 1", runTable1},
	{"table2", "CECI size vs theoretical bound, % saved (Table 2)", runTable2},
	{"fig7", "all-embeddings runtime: CECI vs DualSim vs PsgL, QG1 & QG4 (Figure 7)", runFig7},
	{"fig8", "all-embeddings runtime: QG2, QG3, QG5 on WG/WT/LJ substitutes (Figure 8)", runFig8},
	{"fig9", "first-1024, labeled queries 3-50: CECI vs CFLMatch on RD & HU (Figure 9)", runFig9},
	{"fig10", "first-1024 on HU: CECI vs TurboIso vs Boosted-TurboIso (Figure 10)", runFig10},
	{"fig11", "CGD and FGD speedup over ST, QG1/QG3/QG5 (Figure 11)", runFig11},
	{"fig12", "per-worker finish times for beta = 1 / 0.2 / 0.1 (Figure 12)", runFig12},
	{"fig13", "thread scalability vs PsgL, QG1 (Figure 13)", runFig13},
	{"fig14", "thread scalability vs PsgL, QG4 (Figure 14)", runFig14},
	{"fig15", "phase breakdown / CPU utilization story (Figure 15)", runFig15},
	{"fig16", "distributed speedup, replicated graph, 1-16 machines (Figure 16)", runFig16},
	{"fig17", "distributed speedup, shared storage (Figure 17)", runFig17},
	{"fig18", "recursive-call reduction vs PsgL (Figure 18)", runFig18},
	{"fig19", "speedup breakdown over bare-graph baseline (Figure 19)", runFig19},
	{"fig20", "CECI construction cost breakdown: IO/comm/compute (Figure 20)", runFig20},
	{"orders", "matching-order matrix: every heuristic vs the cost-based planner on the Fig 7/8 suite", runOrders},
}

func main() {
	var (
		exp     = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		list    = flag.Bool("list", false, "list experiments")
		quick   = flag.Bool("quick", false, "reduced datasets and query counts")
		large   = flag.Bool("large", false, "include the largest substitutes (fs_s, yh_s) where skipped by default")
		workers = flag.Int("workers", 32, "simulated worker-count ceiling for scalability figures")
		orderFl = flag.String("order", "", "matching order for the BENCH json suite: bfs | least-frequent | path-ranked | edge-ranked | auto (cost-based planner)")
		listen  = flag.String("listen", "", "serve telemetry (/metrics, /metrics.json, /debug/pprof) on this address while experiments run")

		jsonOut   = flag.String("json-out", "", "run the regression suite and write BENCH_<name>.json into this directory")
		benchName = flag.String("bench-name", "bench", "name embedded in the BENCH json filename")
		compare   = flag.String("compare", "", "compare against this baseline BENCH json; exit non-zero on regression")
		candidate = flag.String("candidate", "", "with -compare: use this pre-recorded BENCH json instead of re-running the suite")
		threshold = flag.Float64("threshold", 0.25, "relative regression threshold for -compare timing metrics")
		version   = flag.Bool("version", false, "print build identity (module version, VCS revision, go version) and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	if *jsonOut != "" || *compare != "" {
		err := runBenchJSON(benchJSONConfig{
			jsonOut:   *jsonOut,
			name:      *benchName,
			compare:   *compare,
			candidate: *candidate,
			threshold: *threshold,
			workers:   *workers,
			order:     *orderFl,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cecibench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *listen != "" {
		// Long experiment sweeps are exactly when a pprof profile or a
		// runtime-gauge scrape is wanted; serve for the process lifetime.
		srv, err := obs.Serve(*listen, obs.NewRegistry())
		if err != nil {
			fmt.Fprintf(os.Stderr, "cecibench: -listen: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/\n", srv.Addr())
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments {
			fmt.Printf("  %-8s %s\n", e.name, e.desc)
		}
		return
	}
	cfg := benchConfig{quick: *quick, large: *large, workers: *workers}

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = nil
		for _, e := range experiments {
			names = append(names, e.name)
		}
	}
	for _, name := range names {
		e, ok := find(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "cecibench: unknown experiment %q (try -list)\n", name)
			os.Exit(1)
		}
		fmt.Printf("=== %s: %s ===\n", e.name, e.desc)
		start := time.Now()
		if err := e.run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "cecibench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v ---\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
}

func find(name string) (experiment, bool) {
	for _, e := range experiments {
		if e.name == name {
			return e, true
		}
	}
	return experiment{}, false
}

// speedup formats a ratio; "-" when either side is missing (DNF rows).
func speedup(base, other time.Duration) string {
	if base <= 0 || other <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(other))
}

// median of durations (used to stabilize single-run timings).
func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}
