package main

import (
	"os"
	"path/filepath"
	"testing"

	"ceci/internal/graph"
)

func TestMakeGraphKinds(t *testing.T) {
	cases := []struct {
		name    string
		dataset string
		kind    string
		wantErr bool
	}{
		{"dataset", "wt_s", "", false},
		{"kronecker", "", "kronecker", false},
		{"chunglu", "", "chunglu", false},
		{"er", "", "er", false},
		{"missing", "", "", true},
		{"unknown", "", "nope", true},
	}
	for _, c := range cases {
		g, err := makeGraph(c.dataset, c.kind, 8, 4, 1000, 3000, 6, 2.3, 0, 1)
		if c.wantErr {
			if err == nil {
				t.Errorf("%s: expected error", c.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if g.NumVertices() == 0 {
			t.Errorf("%s: empty graph", c.name)
		}
	}
}

func TestMakeGraphLabels(t *testing.T) {
	g, err := makeGraph("", "er", 0, 0, 500, 1500, 0, 0, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLabels() < 5 {
		t.Fatalf("labels = %d, want ~7", g.NumLabels())
	}
}

func TestWriteFormats(t *testing.T) {
	g, err := makeGraph("", "er", 0, 0, 50, 120, 0, 0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, name := range []string{"g.lg", "g.csr", "g.edges"} {
		path := filepath.Join(dir, name)
		if err := write(g, path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g2, err := graph.LoadFile(path)
		if name == "g.csr" {
			// LoadFile does not dispatch CSR; use the dedicated reader.
			f, ferr := openCSR(path)
			if ferr != nil {
				t.Fatalf("%s: %v", name, ferr)
			}
			g2, err = f, nil
		}
		if err != nil {
			t.Fatalf("%s reload: %v", name, err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: edges %d != %d", name, g2.NumEdges(), g.NumEdges())
		}
	}
}

func openCSR(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadCSR(f)
}
