// Command gengraph emits synthetic graphs in the repository's text or
// binary formats: the Table 1 dataset substitutes by name, or parametric
// Kronecker / Chung-Lu / Erdős–Rényi graphs.
//
// Usage:
//
//	gengraph -dataset lj_s -o lj.lg
//	gengraph -kind kronecker -scale 14 -edgefactor 8 -seed 7 -o g.edges
//	gengraph -kind chunglu -n 50000 -avgdeg 12 -gamma 2.3 -labels 100 -o g.lg
//	gengraph -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ceci/internal/buildinfo"
	"ceci/internal/datasets"
	"ceci/internal/gen"
	"ceci/internal/graph"
)

func main() {
	var (
		dataset    = flag.String("dataset", "", "emit a Table 1 substitute by name (see -list)")
		list       = flag.Bool("list", false, "list available dataset substitutes")
		kind       = flag.String("kind", "", "generator: kronecker | chunglu | er")
		scale      = flag.Int("scale", 14, "kronecker: log2 of vertex count")
		edgeFactor = flag.Int("edgefactor", 8, "kronecker: edges per vertex")
		n          = flag.Int("n", 10000, "chunglu/er: vertex count")
		m          = flag.Int("m", 40000, "er: edge count")
		avgDeg     = flag.Float64("avgdeg", 8, "chunglu: average degree")
		gamma      = flag.Float64("gamma", 2.3, "chunglu: power-law exponent")
		labels     = flag.Int("labels", 0, "inject this many random labels (0 = unlabeled)")
		seed       = flag.Int64("seed", 1, "generator seed")
		out        = flag.String("o", "", "output path (.lg labeled, .csr binary, else edge list; default stdout edge list)")
		version    = flag.Bool("version", false, "print build identity (module version, VCS revision, go version) and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	if *list {
		for _, s := range datasets.Catalog() {
			fmt.Printf("%-6s %-3s %-12s paper: %s vertices, %s edges — %s\n",
				s.Name, s.Abbr, s.PaperName, s.PaperV, s.PaperE, s.Shape)
		}
		return
	}

	g, err := makeGraph(*dataset, *kind, *scale, *edgeFactor, *n, *m, *avgDeg, *gamma, *labels, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
	if err := write(g, *out); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "generated %v\n", g)
}

func makeGraph(dataset, kind string, scale, edgeFactor, n, m int, avgDeg, gamma float64, labels int, seed int64) (*graph.Graph, error) {
	if dataset != "" {
		return datasets.Load(dataset)
	}
	var g *graph.Graph
	switch kind {
	case "kronecker":
		g = gen.Kronecker(scale, edgeFactor, seed)
	case "chunglu":
		g = gen.ChungLu(n, avgDeg, gamma, seed)
	case "er":
		g = gen.ErdosRenyi(n, m, seed)
	case "":
		return nil, fmt.Errorf("need -dataset or -kind (see -list)")
	default:
		return nil, fmt.Errorf("unknown -kind %q", kind)
	}
	if labels > 0 {
		g = gen.WithRandomLabels(g, labels, seed+1000)
	}
	return g, nil
}

func write(g *graph.Graph, path string) error {
	if path == "" {
		return writeEdgeList(os.Stdout, g)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".lg"):
		return graph.WriteLabeled(f, g)
	case strings.HasSuffix(path, ".csr"):
		return graph.WriteCSR(f, g)
	default:
		return writeEdgeList(f, g)
	}
}

func writeEdgeList(f *os.File, g *graph.Graph) error {
	var err error
	g.Edges(func(u, v graph.VertexID) bool {
		_, err = fmt.Fprintf(f, "%d %d\n", u, v)
		return err == nil
	})
	return err
}
