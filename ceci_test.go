package ceci_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ceci"
	"ceci/internal/auto"
	"ceci/internal/gen"
	"ceci/internal/reference"
)

func TestMatchDefaults(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	m, err := ceci.Match(data, query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	embs := m.Collect()
	if len(embs) != 2 {
		t.Fatalf("collect = %d", len(embs))
	}
}

func TestMatchNilGraphs(t *testing.T) {
	q := gen.QG1()
	if _, err := ceci.Match(nil, q, nil); err == nil {
		t.Fatal("nil data accepted")
	}
	if _, err := ceci.Match(q, nil, nil); err == nil {
		t.Fatal("nil query accepted")
	}
}

func TestMatchDisconnectedQuery(t *testing.T) {
	b := ceci.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if _, err := ceci.Match(gen.Fig1Data(), b.MustBuild(), nil); err == nil {
		t.Fatal("disconnected query accepted")
	}
}

func TestOptionsMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	data := gen.WithRandomLabels(gen.ErdosRenyi(40, 150, 5), 3, 3)
	query, err := gen.DFSQuery(data, 4, rng)
	if err != nil {
		t.Skip("no query region")
	}
	cons := auto.Compute(query)
	want := reference.Count(data, query, reference.Options{Constraints: cons})
	for _, strat := range []ceci.Strategy{ceci.StrategyFine, ceci.StrategyStatic, ceci.StrategyCoarse} {
		for _, order := range []ceci.OrderHeuristic{ceci.OrderBFS, ceci.OrderLeastFrequent, ceci.OrderPathRanked, ceci.OrderEdgeRanked} {
			for _, ev := range []bool{false, true} {
				got, err := ceci.Count(data, query, &ceci.Options{
					Workers: 2, Strategy: strat, Order: order, EdgeVerification: ev,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%v/%v/ev=%v: got %d want %d", strat, order, ev, got, want)
				}
			}
		}
	}
}

func TestKeepAutomorphisms(t *testing.T) {
	data := gen.ErdosRenyi(20, 60, 9)
	q := gen.QG1()
	sym, err := ceci.Count(data, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ceci.Count(data, q, &ceci.Options{KeepAutomorphisms: true})
	if err != nil {
		t.Fatal(err)
	}
	if raw != sym*int64(ceci.Automorphisms(q)) {
		t.Fatalf("raw %d != sym %d × %d", raw, sym, ceci.Automorphisms(q))
	}
}

func TestForcedRoot(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	root := ceci.VertexID(0)
	m, err := ceci.Match(data, query, &ceci.Options{Root: &root})
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 2 {
		t.Fatal("forced root changed result")
	}
	bad := ceci.VertexID(99)
	if _, err := ceci.Match(data, query, &ceci.Options{Root: &bad}); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

func TestFirstK(t *testing.T) {
	data := gen.Kronecker(8, 8, 2)
	m, err := ceci.Match(data, gen.QG1(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := m.First(25)
	if len(got) != 25 {
		t.Fatalf("first(25) returned %d", len(got))
	}
	for _, emb := range got {
		if len(emb) != 3 {
			t.Fatalf("embedding size %d", len(emb))
		}
	}
	if m.First(0) != nil {
		t.Fatal("First(0) should be nil")
	}
}

func TestIndexInfo(t *testing.T) {
	m, err := ceci.Match(gen.Fig1Data(), gen.Fig1Query(), nil)
	if err != nil {
		t.Fatal(err)
	}
	info := m.IndexInfo()
	if info.Pivots == 0 || info.CandidateEdges == 0 || info.SizeBytes == 0 {
		t.Fatalf("info = %+v", info)
	}
	if info.SpaceSavedPercent() <= 0 {
		t.Fatalf("expected space savings on the labeled fixture, got %.1f%%", info.SpaceSavedPercent())
	}
	if info.TotalCardinality < 2 {
		t.Fatalf("cardinality bound %d below true count", info.TotalCardinality)
	}
}

func TestStatsPlumbing(t *testing.T) {
	st := &ceci.Stats{}
	_, err := ceci.Count(gen.Fig1Data(), gen.Fig1Query(), &ceci.Options{Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	if st.Embeddings.Load() != 2 || st.RecursiveCalls.Load() == 0 {
		t.Fatalf("stats = %v", st.Snapshot())
	}
}

func TestGraphIO(t *testing.T) {
	g := gen.Fig1Data()
	var buf bytes.Buffer
	if err := ceci.WriteLabeledGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ceci.LoadLabeledGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip lost data")
	}

	el, err := ceci.LoadGraph(strings.NewReader("0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if el.NumEdges() != 2 {
		t.Fatal("edge list load failed")
	}
}

func TestGraphFileCSR(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csr")
	g := gen.Kronecker(6, 4, 1)
	if err := ceci.WriteGraphCSR(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ceci.LoadGraphCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("CSR round trip lost edges")
	}
	if _, err := ceci.LoadGraphCSR(filepath.Join(dir, "missing.csr")); !os.IsNotExist(err) {
		t.Fatalf("missing file gave %v, want not-exist", err)
	}
}

func TestLoadGraphFileDispatch(t *testing.T) {
	dir := t.TempDir()
	lg := filepath.Join(dir, "g.lg")
	f, err := os.Create(lg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ceci.WriteLabeledGraph(f, gen.Fig1Data()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g, err := ceci.LoadGraphFile(lg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLabels() != 5 {
		t.Fatal("labels lost through file dispatch")
	}
}

func TestStrategyStrings(t *testing.T) {
	if ceci.StrategyFine.String() != "FGD" ||
		ceci.StrategyStatic.String() != "ST" ||
		ceci.StrategyCoarse.String() != "CGD" {
		t.Fatal("strategy names wrong")
	}
}

// TestPublicCrossValidation fuzzes the whole public path against the
// oracle.
func TestPublicCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 30; trial++ {
		data := gen.WithRandomLabels(gen.ErdosRenyi(15+rng.Intn(10), 50+rng.Intn(40), int64(trial)), 1+rng.Intn(4), int64(trial))
		query, err := gen.DFSQuery(data, 2+rng.Intn(4), rng)
		if err != nil {
			continue
		}
		cons := auto.Compute(query)
		want := reference.Count(data, query, reference.Options{Constraints: cons})
		got, err := ceci.Count(data, query, &ceci.Options{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: got %d want %d", trial, got, want)
		}
	}
}

func TestIndexSaveLoad(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	m, err := ceci.Match(data, query, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "fig1.idx")
	if err := m.SaveIndexFile(path); err != nil {
		t.Fatal(err)
	}
	m2, err := ceci.MatchWithIndexFile(data, query, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Count(); got != 2 {
		t.Fatalf("reloaded index count = %d, want 2", got)
	}
	// Mismatched query must be rejected.
	if _, err := ceci.MatchWithIndexFile(data, gen.QG1(), path, nil); err == nil {
		t.Fatal("mismatched query accepted")
	}
}

func TestExplain(t *testing.T) {
	m, err := ceci.Match(gen.Fig1Data(), gen.Fig1Query(), nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := m.Explain()
	for _, want := range []string{"matching order", "clusters:", "tree", "non-tree", "set-intersection"} {
		if !strings.Contains(plan, want) {
			t.Fatalf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestIncrementalPublicAPI(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	n, err := ceci.CountIncremental(data, query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("incremental count = %d, want 2", n)
	}
	// Limit semantics.
	big := gen.Kronecker(8, 8, 2)
	n, err = ceci.CountIncremental(big, gen.QG1(), &ceci.Options{Limit: 11})
	if err != nil {
		t.Fatal(err)
	}
	if n != 11 {
		t.Fatalf("incremental limited = %d, want 11", n)
	}
	if _, err := ceci.CountIncremental(nil, query, nil); err == nil {
		t.Fatal("nil data accepted")
	}
}

func TestIncrementalMatchesMonolithicPublic(t *testing.T) {
	data := gen.WithRandomLabels(gen.Kronecker(9, 5, 77), 4, 7)
	qs := gen.QuerySet(data, 4, 3, 5)
	for i, q := range qs {
		mono, err := ceci.Count(data, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := ceci.CountIncremental(data, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if mono != inc {
			t.Fatalf("query %d: monolithic %d != incremental %d", i, mono, inc)
		}
	}
}
