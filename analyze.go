package ceci

import (
	"encoding/json"
	"fmt"
	"time"

	"ceci/internal/enum"
	"ceci/internal/obs"
	"ceci/internal/prof"
)

// Profile is the structured per-query-vertex execution profile produced
// by ExplainAnalyze — the EXPLAIN ANALYZE counterpart to the static
// plan that Matcher.Explain prints.
type Profile = prof.Profile

// Report is the result of ExplainAnalyze: the static plan, the measured
// outcome, and the full execution profile. It marshals to JSON for
// machine consumption (cecirun -profile-json) and renders as text for
// terminals (Report.Text).
type Report struct {
	// Plan is the static Explain output for the prepared query.
	Plan string `json:"plan"`
	// Embeddings found (respecting Options.Limit).
	Embeddings int64 `json:"embeddings"`
	// BuildTime covers preprocessing and index construction; EnumTime
	// covers enumeration.
	BuildTime time.Duration `json:"build_ns"`
	EnumTime  time.Duration `json:"enum_ns"`
	// Index is the built CECI's size and shape accounting.
	Index IndexInfo `json:"index"`
	// Profile is the per-vertex / per-cluster / per-worker accounting.
	Profile Profile `json:"profile"`
}

// ExplainAnalyze executes the query with deep instrumentation enabled
// and returns what actually happened at every stage: the candidate
// funnel of each filter (label, degree, NLC, reverse-BFS refinement,
// cascade deletion), TE/NTE entry counts and bytes, per-NTE intersection
// comparisons versus output sizes, the embedding-cluster cardinality
// distribution with ExtremeCluster splits, and per-worker busy/steal/
// idle time. opts may be nil; Options.Limit is honored (profile counters
// then cover only the work actually performed).
func ExplainAnalyze(data, query *Graph, opts *Options) (*Report, error) {
	o := opts.normalized()
	if o.Tracer == nil {
		// Phases come from the span tree; guarantee one exists.
		o.Tracer = obs.NewTracer(obs.TracerOptions{})
	}
	if o.Ledger == nil {
		// The resource ledger rides every analyzed run: its charges land
		// at work-unit boundaries, so it costs nothing per depth step.
		o.Ledger = NewLedger()
	}
	o.profile = prof.New()
	if o.Planner {
		// Per-depth observed selectivities let the report put measured
		// cost next to the planner's estimate.
		o.depth = enum.NewDepthStats(query.NumVertices())
	}

	buildStart := time.Now()
	m, err := Match(data, query, &o)
	if err != nil {
		return nil, err
	}
	buildTime := time.Since(buildStart)

	enumStart := time.Now()
	embeddings := m.Count()
	enumTime := time.Since(enumStart)

	p := o.profile.Snapshot()
	decorateProfile(&p, m)
	p.SetPhases(o.Tracer.PhaseDurations())
	p.Resources = o.Ledger.Snapshot()
	plannerProfile(&p, m, &o)

	return &Report{
		Plan:       m.Explain(),
		Embeddings: embeddings,
		BuildTime:  buildTime,
		EnumTime:   enumTime,
		Index:      m.IndexInfo(),
		Profile:    p,
	}, nil
}

// decorateProfile fills the query-shape fields the collector cannot
// know: matching-order position, tree parent, and vertex labels.
func decorateProfile(p *Profile, m *Matcher) {
	tree := m.index.Tree
	q := tree.Query
	for pos, u := range tree.Order {
		if int(u) >= len(p.Vertices) {
			continue
		}
		v := &p.Vertices[u]
		v.OrderPos = pos
		v.Parent = int(tree.Parent[u])
		for _, l := range q.Labels(u) {
			v.Labels = append(v.Labels, int(l))
		}
	}
}

// plannerProfile records how the matching order was chosen: the order
// itself and its source always, plus — when the cost-based planner ran —
// every candidate's estimate and the estimated-versus-observed per-depth
// funnel (recosted with the run's measured selectivities).
func plannerProfile(p *Profile, m *Matcher, o *Options) {
	tree := m.index.Tree
	p.MatchingOrder = intOrder(tree.Order)
	dec := m.decision
	if dec == nil {
		p.Order = o.Order.String()
		return
	}
	p.Order = "auto:" + dec.Chosen
	pp := &prof.PlannerProfile{
		Chosen:     dec.Chosen,
		Order:      intOrder(dec.Order),
		Estimate:   dec.Estimate,
		Calibrated: dec.Calibrated,
	}
	for _, c := range dec.Candidates {
		pp.Candidates = append(pp.Candidates, prof.PlannerCandidate{
			Name:     c.Name,
			Order:    intOrder(c.Order),
			Estimate: c.Cost,
			Chosen:   c.Name == dec.Chosen,
		})
	}
	for _, d := range dec.PerDepth {
		pp.Depths = append(pp.Depths, prof.PlannerDepth{
			Vertex:   d.Vertex,
			EstCalls: d.Calls,
			EstOut:   d.Out,
		})
	}
	if o.depth != nil {
		lookups, emitted := o.depth.Snapshot()
		for i := range pp.Depths {
			if i >= len(lookups) {
				break
			}
			pp.Depths[i].ObsCalls = lookups[i]
			if lookups[i] > 0 {
				pp.Depths[i].ObsOut = float64(emitted[i]) / float64(lookups[i])
			}
		}
		if calib := dec.Calibration(lookups, emitted); calib != nil {
			pp.Observed = m.planner.EstimateOrder(dec.Chosen, dec.Order, calib).Cost
		}
	}
	p.Planner = pp
}

func intOrder(ord []VertexID) []int {
	out := make([]int, len(ord))
	for i, u := range ord {
		out[i] = int(u)
	}
	return out
}

// Text renders the report for a terminal: the static plan, the measured
// totals, then the execution profile tables.
func (r *Report) Text() string {
	return fmt.Sprintf("%s\nembeddings: %d\nbuild: %v  enumerate: %v\n\n%s",
		r.Plan, r.Embeddings, r.BuildTime.Round(time.Microsecond),
		r.EnumTime.Round(time.Microsecond), r.Profile.Text())
}

// JSON marshals the report with indentation, ready for -profile-json.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
