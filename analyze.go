package ceci

import (
	"encoding/json"
	"fmt"
	"time"

	"ceci/internal/obs"
	"ceci/internal/prof"
)

// Profile is the structured per-query-vertex execution profile produced
// by ExplainAnalyze — the EXPLAIN ANALYZE counterpart to the static
// plan that Matcher.Explain prints.
type Profile = prof.Profile

// Report is the result of ExplainAnalyze: the static plan, the measured
// outcome, and the full execution profile. It marshals to JSON for
// machine consumption (cecirun -profile-json) and renders as text for
// terminals (Report.Text).
type Report struct {
	// Plan is the static Explain output for the prepared query.
	Plan string `json:"plan"`
	// Embeddings found (respecting Options.Limit).
	Embeddings int64 `json:"embeddings"`
	// BuildTime covers preprocessing and index construction; EnumTime
	// covers enumeration.
	BuildTime time.Duration `json:"build_ns"`
	EnumTime  time.Duration `json:"enum_ns"`
	// Index is the built CECI's size and shape accounting.
	Index IndexInfo `json:"index"`
	// Profile is the per-vertex / per-cluster / per-worker accounting.
	Profile Profile `json:"profile"`
}

// ExplainAnalyze executes the query with deep instrumentation enabled
// and returns what actually happened at every stage: the candidate
// funnel of each filter (label, degree, NLC, reverse-BFS refinement,
// cascade deletion), TE/NTE entry counts and bytes, per-NTE intersection
// comparisons versus output sizes, the embedding-cluster cardinality
// distribution with ExtremeCluster splits, and per-worker busy/steal/
// idle time. opts may be nil; Options.Limit is honored (profile counters
// then cover only the work actually performed).
func ExplainAnalyze(data, query *Graph, opts *Options) (*Report, error) {
	o := opts.normalized()
	if o.Tracer == nil {
		// Phases come from the span tree; guarantee one exists.
		o.Tracer = obs.NewTracer(obs.TracerOptions{})
	}
	if o.Ledger == nil {
		// The resource ledger rides every analyzed run: its charges land
		// at work-unit boundaries, so it costs nothing per depth step.
		o.Ledger = NewLedger()
	}
	o.profile = prof.New()

	buildStart := time.Now()
	m, err := Match(data, query, &o)
	if err != nil {
		return nil, err
	}
	buildTime := time.Since(buildStart)

	enumStart := time.Now()
	embeddings := m.Count()
	enumTime := time.Since(enumStart)

	p := o.profile.Snapshot()
	decorateProfile(&p, m)
	p.SetPhases(o.Tracer.PhaseDurations())
	p.Resources = o.Ledger.Snapshot()

	return &Report{
		Plan:       m.Explain(),
		Embeddings: embeddings,
		BuildTime:  buildTime,
		EnumTime:   enumTime,
		Index:      m.IndexInfo(),
		Profile:    p,
	}, nil
}

// decorateProfile fills the query-shape fields the collector cannot
// know: matching-order position, tree parent, and vertex labels.
func decorateProfile(p *Profile, m *Matcher) {
	tree := m.index.Tree
	q := tree.Query
	for pos, u := range tree.Order {
		if int(u) >= len(p.Vertices) {
			continue
		}
		v := &p.Vertices[u]
		v.OrderPos = pos
		v.Parent = int(tree.Parent[u])
		for _, l := range q.Labels(u) {
			v.Labels = append(v.Labels, int(l))
		}
	}
}

// Text renders the report for a terminal: the static plan, the measured
// totals, then the execution profile tables.
func (r *Report) Text() string {
	return fmt.Sprintf("%s\nembeddings: %d\nbuild: %v  enumerate: %v\n\n%s",
		r.Plan, r.Embeddings, r.BuildTime.Round(time.Microsecond),
		r.EnumTime.Round(time.Microsecond), r.Profile.Text())
}

// JSON marshals the report with indentation, ready for -profile-json.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
