package ceci_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ceci"
	"ceci/internal/gen"
	"ceci/internal/obs"
)

// TestProgressReportingMonotonic drives a full Match/Count with a
// ProgressFunc and asserts every reported count is monotonically
// non-decreasing, ending in a Final report consistent with the result.
func TestProgressReportingMonotonic(t *testing.T) {
	data := gen.ErdosRenyi(150, 900, 11)
	query := gen.QG1()

	var mu sync.Mutex
	var reports []ceci.Progress
	opts := &ceci.Options{
		Workers:          2,
		Stats:            &ceci.Stats{},
		ProgressInterval: time.Millisecond,
		Progress: func(p ceci.Progress) {
			mu.Lock()
			reports = append(reports, p)
			mu.Unlock()
		},
	}
	m, err := ceci.Match(data, query, opts)
	if err != nil {
		t.Fatal(err)
	}
	count := m.Count()
	if count <= 0 {
		t.Fatalf("count = %d, want > 0", count)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(reports) == 0 {
		t.Fatal("no progress reports")
	}
	last := reports[len(reports)-1]
	if !last.Final {
		t.Fatalf("last report not Final: %+v", last)
	}
	if last.ClustersTotal <= 0 || last.ClustersDone != last.ClustersTotal {
		t.Fatalf("final clusters %d/%d", last.ClustersDone, last.ClustersTotal)
	}
	if last.Embeddings != count {
		t.Fatalf("final embeddings = %d, Count = %d", last.Embeddings, count)
	}
	if last.Elapsed <= 0 {
		t.Fatalf("final elapsed = %v", last.Elapsed)
	}
	if len(last.WorkerBusy) != 2 {
		t.Fatalf("worker busy = %v, want 2 workers", last.WorkerBusy)
	}
	for i := 1; i < len(reports); i++ {
		prev, cur := reports[i-1], reports[i]
		if cur.ClustersDone < prev.ClustersDone {
			t.Fatalf("clusters regressed at %d: %d -> %d", i, prev.ClustersDone, cur.ClustersDone)
		}
		if cur.Embeddings < prev.Embeddings {
			t.Fatalf("embeddings regressed at %d: %d -> %d", i, prev.Embeddings, cur.Embeddings)
		}
		if cur.CardinalityDone < prev.CardinalityDone {
			t.Fatalf("cardinality regressed at %d: %d -> %d", i, prev.CardinalityDone, cur.CardinalityDone)
		}
	}
}

// TestTelemetryEndpointDuringEnumeration attaches the full registry —
// counters, tracer, progress — to a live HTTP endpoint and scrapes it
// from inside the run's final progress callback, before enumeration
// returns: both formats must be valid and show nonzero embeddings.
func TestTelemetryEndpointDuringEnumeration(t *testing.T) {
	data := gen.ErdosRenyi(150, 900, 11)
	query := gen.QG1()

	st := &ceci.Stats{}
	tr := ceci.NewTracer(ceci.TracerOptions{})
	reg := obs.NewRegistry()
	reg.SetCounters(st)
	reg.SetTracer(tr)
	srv, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	var prom, metricsJSON string
	var scrapeErr error
	scraped := false
	opts := &ceci.Options{
		Workers: 2, Stats: st, Tracer: tr,
		ProgressInterval: time.Millisecond,
		Progress: reg.ProgressFunc(func(p ceci.Progress) {
			if !p.Final || scraped {
				return
			}
			scraped = true
			prom, scrapeErr = httpGet(base + "/metrics")
			if scrapeErr == nil {
				metricsJSON, scrapeErr = httpGet(base + "/metrics.json")
			}
		}),
	}
	count, err := ceci.Count(data, query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !scraped {
		t.Fatal("final progress report never fired")
	}
	if scrapeErr != nil {
		t.Fatal(scrapeErr)
	}

	embTotal := int64(-1)
	for _, line := range strings.Split(prom, "\n") {
		if v, ok := strings.CutPrefix(line, "ceci_embeddings_total "); ok {
			n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				t.Fatalf("bad counter line %q: %v", line, err)
			}
			embTotal = n
		}
	}
	if embTotal <= 0 {
		t.Fatalf("ceci_embeddings_total = %d, want > 0; scrape:\n%s", embTotal, prom)
	}
	if !strings.Contains(prom, "ceci_clusters_done") || !strings.Contains(prom, "ceci_worker_busy_seconds{worker=\"0\"}") {
		t.Fatalf("progress gauges missing:\n%s", prom)
	}

	var doc struct {
		Counters map[string]int64 `json:"counters"`
		Progress *ceci.Progress   `json:"progress"`
	}
	if err := json.Unmarshal([]byte(metricsJSON), &doc); err != nil {
		t.Fatalf("/metrics.json invalid: %v\n%s", err, metricsJSON)
	}
	if doc.Counters["embeddings"] != count {
		t.Fatalf("json embeddings = %d, Count = %d", doc.Counters["embeddings"], count)
	}
	if doc.Progress == nil || !doc.Progress.Final {
		t.Fatalf("json progress = %+v", doc.Progress)
	}

	// The shared tracer saw every phase of the run.
	phases := tr.PhaseDurations()
	for _, want := range []string{"preprocess", "build", "enumerate", "cluster"} {
		if phases[want] <= 0 {
			t.Fatalf("phase %q missing: %v", want, phases)
		}
	}
}

func TestIncrementalProgress(t *testing.T) {
	data := gen.ErdosRenyi(80, 400, 3)
	query := gen.QG1()
	var mu sync.Mutex
	var last ceci.Progress
	opts := &ceci.Options{
		Workers:          2,
		ProgressInterval: time.Millisecond,
		Progress: func(p ceci.Progress) {
			mu.Lock()
			last = p
			mu.Unlock()
		},
	}
	n, err := ceci.CountIncremental(data, query, opts)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !last.Final || last.ClustersTotal <= 0 || last.ClustersDone != last.ClustersTotal {
		t.Fatalf("final = %+v", last)
	}
	if last.Embeddings != n {
		t.Fatalf("embeddings = %d, count = %d", last.Embeddings, n)
	}
}

func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
