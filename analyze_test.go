package ceci_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"ceci"
	"ceci/internal/gen"
)

func TestExplainAnalyze(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	rep, err := ceci.ExplainAnalyze(data, query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Embeddings != 2 {
		t.Fatalf("embeddings = %d, want 2", rep.Embeddings)
	}
	if rep.BuildTime <= 0 || rep.EnumTime <= 0 {
		t.Fatalf("timings = %v/%v", rep.BuildTime, rep.EnumTime)
	}
	if len(rep.Profile.Vertices) != query.NumVertices() {
		t.Fatalf("vertices = %d, want %d", len(rep.Profile.Vertices), query.NumVertices())
	}

	// The funnel accounts: something was scanned, and every vertex's
	// final candidate count survived the drops.
	var scanned, final int64
	roots := 0
	positions := map[int]bool{}
	for _, v := range rep.Profile.Vertices {
		scanned += v.NeighborsScanned
		final += v.FinalCands
		if v.Parent < 0 {
			roots++
		}
		positions[v.OrderPos] = true
	}
	if final == 0 {
		t.Fatal("no final candidates recorded")
	}
	if scanned == 0 {
		t.Fatal("no neighbors scanned recorded")
	}
	if roots != 1 {
		t.Fatalf("roots = %d, want exactly 1", roots)
	}
	if len(positions) != query.NumVertices() {
		t.Fatalf("order positions not distinct: %v", positions)
	}
	if rep.Profile.Clusters.Pivots.Count == 0 {
		t.Fatal("no cluster distribution")
	}
	if len(rep.Profile.Phases) == 0 {
		t.Fatal("no phases recorded")
	}
	if len(rep.Profile.Workers) == 0 {
		t.Fatal("no worker profiles")
	}

	// The text report includes every advertised section.
	text := rep.Text()
	for _, want := range []string{
		"matching order", "filter funnel", "index shape",
		"cluster cardinality distribution", "workers", "phases",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
}

// TestExplainAnalyzeJSONRoundTrip is the -profile-json contract: the
// report marshals to valid JSON and unmarshals back to the same value.
func TestExplainAnalyzeJSONRoundTrip(t *testing.T) {
	rep, err := ceci.ExplainAnalyze(gen.Fig1Data(), gen.Fig1Query(), &ceci.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back ceci.Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if !reflect.DeepEqual(*rep, back) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", *rep, back)
	}
	// Spot-check machine-readable fields survived.
	if back.Embeddings != rep.Embeddings || len(back.Profile.Vertices) != len(rep.Profile.Vertices) {
		t.Fatal("fields lost in round trip")
	}
}

// TestExplainAnalyzeDeterministic: for a fixed seed the canonical
// profile (timings stripped) is identical run to run, even with 8
// workers racing over the clusters.
func TestExplainAnalyzeDeterministic(t *testing.T) {
	data, query := gen.RandomPair(42)
	opts := &ceci.Options{Workers: 8}
	r1, err := ceci.ExplainAnalyze(data, query, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ceci.ExplainAnalyze(data, query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Embeddings != r2.Embeddings {
		t.Fatalf("embeddings %d vs %d across runs", r1.Embeddings, r2.Embeddings)
	}
	c1, c2 := r1.Profile.Canonical(), r2.Profile.Canonical()
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("canonical profiles differ:\n%+v\nvs\n%+v", c1, c2)
	}
}

// TestExplainAnalyzePlanner: with the cost-based planner on, the report
// carries the planner section — chosen order, every candidate's
// estimate, and the estimated-versus-observed per-depth funnel — and the
// answer matches the planner-off run.
func TestExplainAnalyzePlanner(t *testing.T) {
	data, query := gen.RandomPair(42)
	base, err := ceci.Count(data, query, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ceci.ExplainAnalyze(data, query, &ceci.Options{Planner: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Embeddings != base {
		t.Fatalf("planner changed the answer: %d vs %d", rep.Embeddings, base)
	}
	pp := rep.Profile.Planner
	if pp == nil {
		t.Fatal("no planner profile")
	}
	if pp.Chosen == "" || pp.Estimate <= 0 {
		t.Fatalf("planner profile incomplete: %+v", pp)
	}
	if len(pp.Candidates) < 2 {
		t.Fatalf("want >=2 candidate orders, got %d", len(pp.Candidates))
	}
	chosen := 0
	for _, c := range pp.Candidates {
		if c.Chosen {
			chosen++
			if c.Estimate != pp.Estimate {
				t.Fatalf("chosen candidate estimate %g != %g", c.Estimate, pp.Estimate)
			}
		}
		if c.Estimate < pp.Estimate {
			t.Fatalf("candidate %s (%g) cheaper than chosen (%g)", c.Name, c.Estimate, pp.Estimate)
		}
	}
	if chosen != 1 {
		t.Fatalf("chosen marked on %d candidates, want 1", chosen)
	}
	if len(pp.Depths) != query.NumVertices() {
		t.Fatalf("depth rows = %d, want %d", len(pp.Depths), query.NumVertices())
	}
	var obs int64
	for _, d := range pp.Depths {
		obs += d.ObsCalls
	}
	if base > 0 && obs == 0 {
		t.Fatal("no observed per-depth lookups recorded")
	}
	if base > 0 && pp.Observed <= 0 {
		t.Fatal("no observed (recosted) estimate")
	}
	if want := "auto:" + pp.Chosen; rep.Profile.Order != want {
		t.Fatalf("profile order = %q, want %q", rep.Profile.Order, want)
	}
	if len(rep.Profile.MatchingOrder) != query.NumVertices() {
		t.Fatalf("matching order = %v", rep.Profile.MatchingOrder)
	}
	for _, want := range []string{"== planner ==", "matching order (auto:", "order source: planner"} {
		if !strings.Contains(rep.Text(), want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

// TestExplainAnalyzeOrderRecorded: even without the planner, the report
// names the heuristic and its order.
func TestExplainAnalyzeOrderRecorded(t *testing.T) {
	rep, err := ceci.ExplainAnalyze(gen.Fig1Data(), gen.Fig1Query(),
		&ceci.Options{Order: ceci.OrderLeastFrequent})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Profile.Order != "least-frequent" {
		t.Fatalf("order = %q", rep.Profile.Order)
	}
	if rep.Profile.Planner != nil {
		t.Fatal("planner profile present without Planner option")
	}
	if !strings.Contains(rep.Text(), "matching order (least-frequent):") {
		t.Fatal("text report missing order line")
	}
}

// TestExplainAnalyzeWithLimit: a first-k run still produces a coherent
// profile covering only the work performed.
func TestExplainAnalyzeWithLimit(t *testing.T) {
	data, query := gen.RandomPair(42)
	rep, err := ceci.ExplainAnalyze(data, query, &ceci.Options{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Embeddings > 1 {
		t.Fatalf("limit ignored: %d", rep.Embeddings)
	}
}
