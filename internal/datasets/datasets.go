// Package datasets catalogs the synthetic stand-ins for the paper's
// Table 1 datasets. The SNAP/Yahoo graphs are not available offline, so
// each entry generates a graph whose *shape* matches what drives CECI's
// behaviour — degree skew, density, label selectivity — at a scale a
// single machine handles in seconds (DESIGN.md §4 records the
// substitution rationale).
//
// Abbreviations follow the paper (CP, FS, HU, LJ, OK, WG, WT, YH, YT,
// RD); the "_s" suffix marks the scaled substitutes.
package datasets

import (
	"fmt"
	"sync"

	"ceci/internal/gen"
	"ceci/internal/graph"
)

// Spec describes one dataset substitute.
type Spec struct {
	// Name is the substitute's identifier (e.g. "lj_s").
	Name string
	// Abbr is the paper's abbreviation (e.g. "LJ").
	Abbr string
	// PaperName and PaperV/PaperE document the original (V/E as printed
	// in Table 1).
	PaperName string
	PaperV    string
	PaperE    string
	// Shape explains which generator approximates it and why.
	Shape string
	// Labels is the label alphabet injected for labeled experiments
	// (0 = unlabeled).
	Labels int
	// MultiLabel marks datasets whose vertices carry several labels
	// (the paper's HU).
	MultiLabel bool
	// Make generates the graph (deterministic).
	Make func() *graph.Graph
}

// Catalog returns the Table 1 substitutes in the paper's row order.
func Catalog() []Spec {
	return []Spec{
		{
			Name: "cp_s", Abbr: "CP", PaperName: "citPatent", PaperV: "3.77M", PaperE: "16.5M",
			Shape: "citation network: moderate skew; Chung-Lu γ=2.3, avg deg 8",
			Make:  func() *graph.Graph { return gen.ChungLu(24000, 8, 2.3, 101) },
		},
		{
			Name: "fs_s", Abbr: "FS", PaperName: "Friendster", PaperV: "65.6M", PaperE: "1.8B",
			Shape: "huge social graph: Kronecker scale 16, edge factor 10 (the largest substitute)",
			Make:  func() *graph.Graph { return gen.Kronecker(16, 10, 102) },
		},
		{
			Name: "hu_s", Abbr: "HU", PaperName: "Human", PaperV: "4.6K", PaperE: "0.7M",
			Shape:  "small dense biological network, 90 Zipf-distributed multi-labels: ER n=4600, m=0.7M (full paper density)",
			Labels: 90, MultiLabel: true,
			Make: func() *graph.Graph {
				return gen.WithZipfMultiLabels(gen.ErdosRenyi(4600, 700000, 103), 90, 3, 1.4, 203)
			},
		},
		{
			Name: "lj_s", Abbr: "LJ", PaperName: "live-journal", PaperV: "3.99M", PaperE: "34.68M",
			Shape: "social network: Chung-Lu γ=2.3, avg deg 12",
			Make:  func() *graph.Graph { return gen.ChungLu(40000, 12, 2.3, 104) },
		},
		{
			Name: "ok_s", Abbr: "OK", PaperName: "Orkut", PaperV: "3.0M", PaperE: "117.2M",
			Shape: "dense social network: Chung-Lu γ=2.4, avg deg 28",
			Make:  func() *graph.Graph { return gen.ChungLu(20000, 28, 2.4, 105) },
		},
		{
			Name: "wg_s", Abbr: "WG", PaperName: "Webgoogle", PaperV: "0.9M", PaperE: "8.6M",
			Shape: "web graph: Kronecker scale 14, edge factor 6",
			Make:  func() *graph.Graph { return gen.Kronecker(14, 6, 106) },
		},
		{
			Name: "wt_s", Abbr: "WT", PaperName: "wiki-talk", PaperV: "2.3M", PaperE: "5.0M",
			Shape: "extreme-skew communication graph: Chung-Lu γ=2.0, avg deg 4",
			Make:  func() *graph.Graph { return gen.ChungLu(40000, 4, 2.0, 107) },
		},
		{
			Name: "yh_s", Abbr: "YH", PaperName: "Yahoo", PaperV: "1.4B", PaperE: "12.9B",
			Shape: "largest graph in the study: Kronecker scale 17, edge factor 12",
			Make:  func() *graph.Graph { return gen.Kronecker(17, 12, 108) },
		},
		{
			Name: "yt_s", Abbr: "YT", PaperName: "Youtube", PaperV: "1.1M", PaperE: "3.0M",
			Shape: "sparse social network: Chung-Lu γ=2.2, avg deg 5",
			Make:  func() *graph.Graph { return gen.ChungLu(30000, 5, 2.2, 109) },
		},
		{
			Name: "rd_s", Abbr: "RD", PaperName: "rand_500k", PaperV: "0.5M", PaperE: "2.0M",
			Shape:  "the paper's own synthetic: Graph500 Kronecker scale 14, edge factor 4, 100 labels",
			Labels: 100,
			Make: func() *graph.Graph {
				return gen.WithRandomLabels(gen.Kronecker(14, 4, 110), 100, 210)
			},
		},
	}
}

// Get returns the spec named name (case-sensitive; accepts the paper
// abbreviation too).
func Get(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name || s.Abbr == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

// Names lists the substitute names in catalog order.
func Names() []string {
	specs := Catalog()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*graph.Graph{}
)

// Load generates (or returns the cached) graph for name. Generation is
// deterministic, so caching is safe across experiments.
func Load(name string) (*graph.Graph, error) {
	spec, err := Get(name)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := cache[spec.Name]; ok {
		return g, nil
	}
	g := spec.Make()
	cache[spec.Name] = g
	return g, nil
}
