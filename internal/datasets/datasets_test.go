package datasets_test

import (
	"testing"

	"ceci/internal/datasets"
)

func TestCatalogComplete(t *testing.T) {
	specs := datasets.Catalog()
	if len(specs) != 10 {
		t.Fatalf("catalog has %d entries, want the 10 Table 1 rows", len(specs))
	}
	abbrs := map[string]bool{}
	for _, s := range specs {
		if s.Name == "" || s.Abbr == "" || s.PaperName == "" || s.Make == nil {
			t.Fatalf("incomplete spec %+v", s)
		}
		abbrs[s.Abbr] = true
	}
	for _, want := range []string{"CP", "FS", "HU", "LJ", "OK", "WG", "WT", "YH", "YT", "RD"} {
		if !abbrs[want] {
			t.Fatalf("missing paper dataset %s", want)
		}
	}
}

func TestGetByNameAndAbbr(t *testing.T) {
	byName, err := datasets.Get("lj_s")
	if err != nil {
		t.Fatal(err)
	}
	byAbbr, err := datasets.Get("LJ")
	if err != nil {
		t.Fatal(err)
	}
	if byName.Name != byAbbr.Name {
		t.Fatal("name and abbreviation resolve differently")
	}
	if _, err := datasets.Get("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestLoadCachesAndLabels(t *testing.T) {
	a, err := datasets.Load("wt_s")
	if err != nil {
		t.Fatal(err)
	}
	b, err := datasets.Load("wt_s")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("load did not cache")
	}
	// Labeled datasets must actually carry labels.
	rd, err := datasets.Load("rd_s")
	if err != nil {
		t.Fatal(err)
	}
	if rd.NumLabels() < 50 {
		t.Fatalf("rd_s has %d labels, want ~100", rd.NumLabels())
	}
	spec, _ := datasets.Get("hu_s")
	if !spec.MultiLabel {
		t.Fatal("hu_s should be multi-labeled")
	}
}

func TestNamesOrder(t *testing.T) {
	names := datasets.Names()
	if len(names) != 10 || names[0] != "cp_s" {
		t.Fatalf("names = %v", names)
	}
}
