package service

import (
	"context"
	"errors"
	"testing"

	"ceci/internal/graph"
)

// wholeGraphShard wraps data as a single shard owning every vertex with
// identity global ids.
func wholeGraphShard(data *graph.Graph, radius int) *ShardConfig {
	n := data.NumVertices()
	ids := make([]graph.VertexID, n)
	for i := range ids {
		ids[i] = graph.VertexID(i)
	}
	return &ShardConfig{ID: 0, Shards: 1, Radius: radius, Globals: ids, OwnedLocals: ids}
}

// TestShardModeSingleShardMatchesPlain: a one-shard fleet owning the
// whole graph must behave exactly like a plain engine — same counts,
// same embeddings after the (identity) global translation.
func TestShardModeSingleShardMatchesPlain(t *testing.T) {
	data := testData()
	plain := New(data, Options{MaxLimit: 1 << 20})
	sharded := New(data, Options{MaxLimit: 1 << 20, Shard: wholeGraphShard(data, 4)})
	for i, q := range []*graph.Graph{
		pathQuery(t, 0, 1),
		pathQuery(t, 1, 2, 3),
		pathQuery(t, 3, 1, 2, 0),
	} {
		want, err := plain.Query(context.Background(), Request{Query: q})
		if err != nil {
			t.Fatalf("query %d plain: %v", i, err)
		}
		got, err := sharded.Query(context.Background(), Request{Query: q})
		if err != nil {
			t.Fatalf("query %d sharded: %v", i, err)
		}
		if got.Count != want.Count {
			t.Fatalf("query %d: shard count %d, plain %d", i, got.Count, want.Count)
		}
	}
}

// TestShardModeRadiusGuard: a query whose anchor eccentricity exceeds
// the shard's halo radius is refused with ErrBadQuery — answering it
// could silently miss embeddings that leave the halo.
func TestShardModeRadiusGuard(t *testing.T) {
	data := testData()
	eng := New(data, Options{Shard: wholeGraphShard(data, 1)})

	// A 3-path's anchor (the middle) has eccentricity 1: servable.
	if _, err := eng.Query(context.Background(), Request{Query: pathQuery(t, 1, 2, 3)}); err != nil {
		t.Fatalf("ecc-1 query refused: %v", err)
	}
	// A 5-path's anchor has eccentricity 2 > radius 1: rejected.
	_, err := eng.Query(context.Background(), Request{Query: pathQuery(t, 0, 1, 2, 1, 0)})
	if !errors.Is(err, ErrBadQuery) {
		t.Fatalf("ecc-2 query: err = %v, want ErrBadQuery", err)
	}
}
