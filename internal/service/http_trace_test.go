package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ceci/internal/graph"
	"ceci/internal/obs"
	"ceci/internal/order"
)

// traceTestServer spins up the full HTTP stack around a fresh engine.
func traceTestServer(t *testing.T, opts Options) (*httptest.Server, *Client, *Engine) {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 1
	}
	opts.Order = order.BFSOrder
	eng := New(testData(), opts)
	srv := httptest.NewServer(eng.Handler())
	t.Cleanup(srv.Close)
	return srv, NewClient(srv.URL, srv.Client()), eng
}

// wireQuery renders a pattern graph as the inline wire form.
func wireQuery(q *graph.Graph) QueryRequest {
	wire := QueryRequest{Labels: make([]uint32, q.NumVertices())}
	for v := 0; v < q.NumVertices(); v++ {
		wire.Labels[v] = uint32(q.Label(graph.VertexID(v)))
	}
	for v := 0; v < q.NumVertices(); v++ {
		for _, u := range q.Neighbors(graph.VertexID(v)) {
			if graph.VertexID(v) < u {
				wire.Edges = append(wire.Edges, [2]uint32{uint32(v), uint32(u)})
			}
		}
	}
	return wire
}

// TestTracedQueryEndToEnd drives the full loop the README documents:
// POST /query with a traceparent header, find the record in /queryz,
// fetch its span tree from /tracez/{id} as Chrome trace_event JSON.
func TestTracedQueryEndToEnd(t *testing.T) {
	srv, client, eng := traceTestServer(t, Options{
		Tracer: obs.NewTracer(obs.TracerOptions{}),
	})
	_ = srv

	// The caller owns the trace: its identity goes in, and the query must
	// join it rather than minting a new one.
	want, err := obs.ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatal(err)
	}
	ctx := obs.ContextWithTrace(context.Background(), want)
	resp, err := client.Query(ctx, wireQuery(pathQuery(t, 1, 2, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != want.TraceID.String() {
		t.Fatalf("response trace ID = %s, want the caller's %s", resp.TraceID, want.TraceID)
	}
	if resp.QueryHash == "" {
		t.Fatal("response missing query hash")
	}

	// /queryz: the flight recorder holds the completed query.
	qz, err := client.Queryz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if qz.Total != 1 || len(qz.Recent) != 1 {
		t.Fatalf("queryz = total %d recent %d, want 1/1", qz.Total, len(qz.Recent))
	}
	rec := qz.Recent[0]
	if rec.TraceID != resp.TraceID || rec.Outcome != 200 || !rec.Sampled {
		t.Fatalf("bad flight record: %+v", rec)
	}
	if rec.QueryHash != resp.QueryHash {
		t.Fatalf("flight hash %s != response hash %s", rec.QueryHash, resp.QueryHash)
	}
	if rec.TotalUS <= 0 || rec.EnumUS < 0 || rec.BuildUS < 0 {
		t.Fatalf("phase durations missing: %+v", rec)
	}

	// /tracez/{id}: a valid Chrome trace_event doc with a connected tree
	// rooted at service-query under the caller's span.
	doc, err := client.Tracez(context.Background(), resp.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatalf("tracez is not valid Chrome JSON: %v\n%s", err, doc)
	}
	names := map[string]bool{}
	for _, ev := range parsed.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
			if got := ev.Args["trace_id"]; got != resp.TraceID {
				t.Fatalf("span %q in trace %s, want %s", ev.Name, got, resp.TraceID)
			}
		}
		if ev.Name == "service-query" && ev.Args["parent_span_id"] != want.SpanID.String() {
			t.Fatalf("service-query parent = %s, want caller's %s",
				ev.Args["parent_span_id"], want.SpanID)
		}
	}
	for _, phase := range []string{"service-query", "build", "enumerate"} {
		if !names[phase] {
			t.Fatalf("phase %q missing from exported trace: %v", phase, names)
		}
	}

	// The engine's tracer forest was drained into the flight recorder:
	// a second export still works, and the tracer is not accumulating.
	if got := len(eng.opts.Tracer.Tree()); got != 0 {
		t.Fatalf("tracer retains %d roots after Take, want 0", got)
	}
	if _, err := client.Tracez(context.Background(), resp.TraceID); err != nil {
		t.Fatalf("second tracez fetch: %v", err)
	}
}

// TestTracedQueryHeaderEgress checks the raw HTTP surfaces: traceparent
// response header, text-format /queryz, JSONL-format /tracez, and the
// 404s for unknown or unsampled traces.
func TestTracedQueryHeaderEgress(t *testing.T) {
	srv, client, _ := traceTestServer(t, Options{
		Tracer: obs.NewTracer(obs.TracerOptions{}),
	})

	body, _ := json.Marshal(wireQuery(pathQuery(t, 1, 2)))
	hresp, err := srv.Client().Post(srv.URL+"/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	tp := hresp.Header.Get("traceparent")
	tc, err := obs.ParseTraceparent(tp)
	if err != nil {
		t.Fatalf("response traceparent %q: %v", tp, err)
	}
	var out QueryResponse
	if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if tc.TraceID.String() != out.TraceID {
		t.Fatalf("header trace %s != body trace %s", tc.TraceID, out.TraceID)
	}

	// Text table form of the flight recorder mentions the query.
	treq, err := srv.Client().Get(srv.URL + "/queryz?format=text")
	if err != nil {
		t.Fatal(err)
	}
	txt, err := io.ReadAll(treq.Body)
	treq.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), tc.TraceID.String()) {
		t.Fatalf("text table missing trace id:\n%s", txt)
	}

	// JSONL form of the trace: every line parses alone.
	raw, err := client.Tracez(context.Background(), out.TraceID+"?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var node map[string]any
		if err := json.Unmarshal([]byte(line), &node); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
	}

	// Unknown trace: 404.
	if _, err := client.Tracez(context.Background(), strings.Repeat("0", 31)+"1"); err == nil {
		t.Fatal("tracez for unknown ID succeeded")
	}
}

// TestUnsampledQueryRecordedWithoutSpans: with sampling off, queries
// still land in the flight recorder (with a trace ID) but carry no
// spans, and /tracez answers 404 for them.
func TestUnsampledQueryRecordedWithoutSpans(t *testing.T) {
	_, client, eng := traceTestServer(t, Options{
		Tracer:      obs.NewTracer(obs.TracerOptions{}),
		TraceSample: -1,
	})
	resp, err := client.Query(context.Background(), wireQuery(pathQuery(t, 1, 2, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID == "" {
		t.Fatal("unsampled query lost its trace ID")
	}
	rec, ok := eng.Flight().Find(resp.TraceID)
	if !ok {
		t.Fatal("unsampled query missing from flight recorder")
	}
	if rec.Sampled || len(rec.Spans) != 0 {
		t.Fatalf("unsampled query recorded spans: %+v", rec)
	}
	if _, err := client.Tracez(context.Background(), resp.TraceID); err == nil {
		t.Fatal("tracez served an unsampled trace")
	}
	// The tracer recorded nothing for the request either.
	if got := len(eng.opts.Tracer.Tree()); got != 0 {
		t.Fatalf("unsampled query leaked %d tracer roots", got)
	}
}

// TestFlightRecorderCapturesOutcomes: non-200 outcomes (shed, timeout)
// land in the flight recorder with their status codes.
func TestFlightRecorderCapturesOutcomes(t *testing.T) {
	_, client, eng := traceTestServer(t, Options{
		Tracer:         obs.NewTracer(obs.TracerOptions{}),
		DefaultTimeout: time.Hour,
	})
	// A deadline so short the query cannot finish: outcome 504, partial.
	req := wireQuery(pathQuery(t, 1, 2, 1, 2, 1))
	req.TimeoutMS = 1
	if _, err := client.Query(context.Background(), req); err == nil {
		// Rarely the tiny graph finishes within 1ms; the record is then a
		// 200 and the outcome assertion below is vacuous but harmless.
		t.Log("1ms query finished in time; skipping 504 assertion")
		return
	}
	recent := eng.Flight().Recent()
	if len(recent) == 0 {
		t.Fatal("timed-out query missing from flight recorder")
	}
	if got := recent[0].Outcome; got != 504 {
		t.Fatalf("outcome = %d, want 504", got)
	}
	if !recent[0].Partial {
		t.Fatal("timed-out record not marked partial")
	}
}
