package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"ceci/internal/graph"
)

// QueryRequest is the wire form of POST /query. The pattern graph comes
// either as .lg text ("query") or inline ("labels" + "edges"); exactly
// one form must be present.
type QueryRequest struct {
	// Query is the pattern in the labeled-graph text format
	// ("t n m", "v id label", "e u v" lines).
	Query string `json:"query,omitempty"`
	// Labels gives per-vertex labels for the inline form; vertex i has
	// label Labels[i].
	Labels []uint32 `json:"labels,omitempty"`
	// Edges lists undirected edges [u, v] over the inline vertices.
	Edges [][2]uint32 `json:"edges,omitempty"`

	Limit     int64 `json:"limit,omitempty"`
	Offset    int64 `json:"offset,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	CountOnly bool  `json:"count_only,omitempty"`
}

// QueryResponse is the wire form of a query result. Deadline-exceeded
// responses (HTTP 504) still carry the partial count with Partial=true.
type QueryResponse struct {
	Count      int64              `json:"count"`
	Embeddings [][]graph.VertexID `json:"embeddings,omitempty"`
	CacheHit   bool               `json:"cache_hit"`
	Partial    bool               `json:"partial,omitempty"`
	BuildMS    float64            `json:"build_ms"`
	EnumMS     float64            `json:"enum_ms"`
	Error      string             `json:"error,omitempty"`
}

// HealthResponse is the wire form of GET /healthz.
type HealthResponse struct {
	Status       string `json:"status"`
	DataVertices int    `json:"data_vertices"`
	DataEdges    int    `json:"data_edges"`
	DataLabels   int    `json:"data_labels"`
}

// Handler returns the engine's HTTP API:
//
//	POST /query    run a match request (JSON in/out)
//	GET  /healthz  liveness + data graph shape
//	GET  /cachez   index cache statistics
//
// When the engine has a Registry, its telemetry routes (/metrics,
// /metrics.json, /trace, /debug/pprof/) are mounted as the fallback.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", e.handleQuery)
	mux.HandleFunc("GET /healthz", e.handleHealthz)
	mux.HandleFunc("GET /cachez", e.handleCachez)
	if reg := e.opts.Registry; reg != nil {
		mux.Handle("/", reg.Handler())
	}
	return mux
}

func (e *Engine) handleQuery(w http.ResponseWriter, r *http.Request) {
	var wire QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	q, err := wire.queryGraph()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: err.Error()})
		return
	}
	req := Request{
		Query:     q,
		Limit:     wire.Limit,
		Offset:    wire.Offset,
		Timeout:   time.Duration(wire.TimeoutMS) * time.Millisecond,
		CountOnly: wire.CountOnly,
	}
	resp, err := e.Query(r.Context(), req)
	wire2 := QueryResponse{}
	if resp != nil {
		wire2 = QueryResponse{
			Count:      resp.Count,
			Embeddings: resp.Embeddings,
			CacheHit:   resp.CacheHit,
			Partial:    resp.Partial,
			BuildMS:    float64(resp.BuildTime) / float64(time.Millisecond),
			EnumMS:     float64(resp.EnumTime) / float64(time.Millisecond),
		}
	}
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, wire2)
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		wire2.Error = err.Error()
		writeJSON(w, http.StatusTooManyRequests, wire2)
	case errors.Is(err, ErrBadQuery):
		wire2.Error = err.Error()
		writeJSON(w, http.StatusBadRequest, wire2)
	case errors.Is(err, context.DeadlineExceeded):
		wire2.Error = err.Error()
		wire2.Partial = true
		writeJSON(w, http.StatusGatewayTimeout, wire2)
	case errors.Is(err, context.Canceled):
		// Client went away; the status is moot but 499-style is closest.
		wire2.Error = err.Error()
		writeJSON(w, 499, wire2)
	default:
		wire2.Error = err.Error()
		writeJSON(w, http.StatusInternalServerError, wire2)
	}
}

func (e *Engine) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:       "ok",
		DataVertices: e.data.NumVertices(),
		DataEdges:    e.data.NumEdges(),
		DataLabels:   e.data.NumLabels(),
	})
}

func (e *Engine) handleCachez(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, e.cache.stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// queryGraph materializes the pattern from whichever wire form is set.
func (q *QueryRequest) queryGraph() (*graph.Graph, error) {
	hasText := q.Query != ""
	hasInline := len(q.Labels) > 0
	switch {
	case hasText && hasInline:
		return nil, fmt.Errorf("%w: give either query text or labels/edges, not both", ErrBadQuery)
	case hasText:
		g, err := graph.LoadLabeled(strings.NewReader(q.Query))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
		}
		return g, nil
	case hasInline:
		n := len(q.Labels)
		b := graph.NewBuilder(n)
		for v, l := range q.Labels {
			b.SetLabel(graph.VertexID(v), l)
		}
		for _, e := range q.Edges {
			if int(e[0]) >= n || int(e[1]) >= n {
				return nil, fmt.Errorf("%w: edge [%d,%d] references vertex >= %d", ErrBadQuery, e[0], e[1], n)
			}
			b.AddEdge(e[0], e[1])
		}
		g, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
		}
		return g, nil
	default:
		return nil, fmt.Errorf("%w: no query given", ErrBadQuery)
	}
}
