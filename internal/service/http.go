package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"ceci/internal/buildinfo"
	"ceci/internal/graph"
	"ceci/internal/obs"
	"ceci/internal/telemetry"
)

// QueryRequest is the wire form of POST /query. The pattern graph comes
// either as .lg text ("query") or inline ("labels" + "edges"); exactly
// one form must be present.
type QueryRequest struct {
	// Query is the pattern in the labeled-graph text format
	// ("t n m", "v id label", "e u v" lines).
	Query string `json:"query,omitempty"`
	// Labels gives per-vertex labels for the inline form; vertex i has
	// label Labels[i].
	Labels []uint32 `json:"labels,omitempty"`
	// Edges lists undirected edges [u, v] over the inline vertices.
	Edges [][2]uint32 `json:"edges,omitempty"`

	Limit     int64 `json:"limit,omitempty"`
	Offset    int64 `json:"offset,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	CountOnly bool  `json:"count_only,omitempty"`
}

// QueryResponse is the wire form of a query result. Deadline-exceeded
// responses (HTTP 504) still carry the partial count with Partial=true.
type QueryResponse struct {
	Count      int64              `json:"count"`
	Embeddings [][]graph.VertexID `json:"embeddings,omitempty"`
	CacheHit   bool               `json:"cache_hit"`
	Partial    bool               `json:"partial,omitempty"`
	BuildMS    float64            `json:"build_ms"`
	EnumMS     float64            `json:"enum_ms"`
	// TraceID keys this query's record in /queryz and, when the query
	// was sampled, its span tree at /tracez/{trace_id}.
	TraceID string `json:"trace_id,omitempty"`
	// QueryHash is the query's isomorphism-class identity.
	QueryHash string `json:"query_hash,omitempty"`
	Error     string `json:"error,omitempty"`
}

// HealthResponse is the wire form of GET /healthz. Liveness and
// readiness are distinct: a process that answers at all is live, but
// Ready is true only once the resident graph (and shard partition, in
// shard mode) is loaded and queries can be served. `GET /healthz?ready=1`
// returns 503 until then, so routers and smoke tests don't race startup.
type HealthResponse struct {
	Status       string         `json:"status"`
	Ready        bool           `json:"ready"`
	DataVertices int            `json:"data_vertices"`
	DataEdges    int            `json:"data_edges"`
	DataLabels   int            `json:"data_labels"`
	Build        buildinfo.Info `json:"build"`
	// Shard identity, present in shard mode only.
	ShardID     *int `json:"shard_id,omitempty"`
	ShardCount  int  `json:"shard_count,omitempty"`
	ShardRadius int  `json:"shard_radius,omitempty"`
	ShardOwned  int  `json:"shard_owned,omitempty"`
}

// QueryzResponse is the wire form of GET /queryz: the flight recorder's
// view of recent and slowest queries.
type QueryzResponse struct {
	// Total counts every query ever recorded, including those evicted
	// from the ring.
	Total uint64 `json:"total"`
	// Recent lists retained queries, newest first.
	Recent []obs.QueryRecord `json:"recent"`
	// Slowest lists the K slowest queries ever, slowest first.
	Slowest []obs.QueryRecord `json:"slowest"`
}

// Handler returns the engine's HTTP API:
//
//	POST /query             run a match request (JSON in/out; accepts and
//	                        emits W3C traceparent headers)
//	GET  /healthz           liveness + data graph shape + build identity
//	GET  /cachez            index cache statistics
//	GET  /queryz            flight recorder: recent + slowest queries
//	                        (?format=text for an aligned table;
//	                        ?limit=N caps each list, ?min_ms=D keeps
//	                        only queries at least that slow)
//	GET  /tracez/{traceID}  a sampled query's span tree as Chrome
//	                        trace_event JSON (?format=jsonl for the
//	                        compact per-span JSONL form)
//	GET  /statz             telemetry hub: SLO burn state, per-class
//	                        costs, time-series rollups (?format=text)
//	GET  /dashz             self-contained HTML dashboard over /statz
//
// /statz and /dashz require Options.Telemetry. When the engine has a
// Registry, its telemetry routes (/metrics, /metrics.json, /trace,
// /debug/pprof/) are mounted as the fallback.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", e.handleQuery)
	mux.HandleFunc("GET /healthz", e.handleHealthz)
	mux.HandleFunc("GET /cachez", e.handleCachez)
	mux.HandleFunc("GET /queryz", e.handleQueryz)
	mux.HandleFunc("GET /tracez/{traceID}", e.handleTracez)
	if e.opts.Telemetry != nil {
		mux.HandleFunc("GET /statz", e.handleStatz)
		mux.HandleFunc("GET /dashz", e.handleDashz)
	}
	if reg := e.opts.Registry; reg != nil {
		mux.Handle("/", reg.Handler())
	}
	return mux
}

func (e *Engine) handleQuery(w http.ResponseWriter, r *http.Request) {
	var wire QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	q, err := wire.queryGraph()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: err.Error()})
		return
	}
	req := Request{
		Query:     q,
		Limit:     wire.Limit,
		Offset:    wire.Offset,
		Timeout:   time.Duration(wire.TimeoutMS) * time.Millisecond,
		CountOnly: wire.CountOnly,
	}
	// W3C trace-context ingress: a valid traceparent joins this query to
	// the caller's trace (keeping the caller's sampling decision); a
	// malformed or absent header restarts the trace, per the spec.
	ctx := r.Context()
	if tp := r.Header.Get("traceparent"); tp != "" {
		if tc, perr := obs.ParseTraceparent(tp); perr == nil {
			ctx = obs.ContextWithTrace(ctx, tc)
		}
	}
	resp, err := e.Query(ctx, req)
	wire2 := QueryResponse{}
	if resp != nil {
		// Server-Timing (phase breakdown plus SLO state): lets browsers
		// and clients see where the request's time went without parsing
		// the body.
		w.Header().Set("Server-Timing", serverTiming(e, resp))
		wire2 = QueryResponse{
			Count:      resp.Count,
			Embeddings: resp.Embeddings,
			CacheHit:   resp.CacheHit,
			Partial:    resp.Partial,
			BuildMS:    float64(resp.BuildTime) / float64(time.Millisecond),
			EnumMS:     float64(resp.EnumTime) / float64(time.Millisecond),
			TraceID:    resp.TraceID,
			QueryHash:  resp.QueryHash,
		}
		// Egress: the response traceparent names the request's root span,
		// so a calling service can stitch our subtree into its own trace.
		if resp.Trace.Valid() {
			w.Header().Set("traceparent", resp.Trace.Traceparent())
		}
	}
	status := statusFor(err)
	if err != nil {
		wire2.Error = err.Error()
		if status == 429 {
			w.Header().Set("Retry-After", "1")
		}
		if status == 504 {
			wire2.Partial = true
		}
	}
	writeJSON(w, status, wire2)
}

func (e *Engine) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// An engine only exists with its graph resident, so it is always
	// ready; the pre-load 503 phase is served by the startup gate in
	// cmd/ceciserve before this handler is swapped in.
	h := HealthResponse{
		Status:       "ok",
		Ready:        true,
		DataVertices: e.data.NumVertices(),
		DataEdges:    e.data.NumEdges(),
		DataLabels:   e.data.NumLabels(),
		Build:        buildinfo.Get(),
	}
	if sc := e.opts.Shard; sc != nil {
		id := sc.ID
		h.ShardID = &id
		h.ShardCount = sc.Shards
		h.ShardRadius = sc.Radius
		h.ShardOwned = len(sc.OwnedLocals)
	}
	writeJSON(w, http.StatusOK, h)
}

// serverTiming renders the Server-Timing response header: the query's
// phase durations (queue, build, enum, total) plus the current SLO
// state ("ok" or "breach").
func serverTiming(e *Engine, resp *Response) string {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	total := resp.QueueWait + resp.BuildTime + resp.EnumTime
	s := fmt.Sprintf("queue;dur=%.1f, build;dur=%.1f, enum;dur=%.1f, total;dur=%.1f",
		ms(resp.QueueWait), ms(resp.BuildTime), ms(resp.EnumTime), ms(total))
	if h := e.opts.Telemetry; h != nil {
		state := "ok"
		if h.SLO().State().Breach() {
			state = "breach"
		}
		s += `, slo;desc="` + state + `"`
	}
	return s
}

// queryzFilters are the /queryz list filters parsed from the URL.
type queryzFilters struct {
	limit int           // max records per list; 0 = unlimited
	minMS time.Duration // keep only queries at least this slow
}

// parseQueryzFilters validates ?limit= and ?min_ms=. Both are optional;
// negative or non-numeric values are rejected.
func parseQueryzFilters(q url.Values) (queryzFilters, error) {
	var f queryzFilters
	if s := q.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return f, fmt.Errorf("bad limit %q: want a non-negative integer", s)
		}
		f.limit = n
	}
	if s := q.Get("min_ms"); s != "" {
		ms, err := strconv.ParseFloat(s, 64)
		if err != nil || ms < 0 || math.IsNaN(ms) || math.IsInf(ms, 0) {
			return f, fmt.Errorf("bad min_ms %q: want a non-negative number", s)
		}
		f.minMS = time.Duration(ms * float64(time.Millisecond))
	}
	return f, nil
}

// apply filters one record list (order preserved).
func (f queryzFilters) apply(recs []obs.QueryRecord) []obs.QueryRecord {
	if f.minMS > 0 {
		kept := recs[:0]
		for _, r := range recs {
			if time.Duration(r.TotalUS)*time.Microsecond >= f.minMS {
				kept = append(kept, r)
			}
		}
		recs = kept
	}
	if f.limit > 0 && len(recs) > f.limit {
		recs = recs[:f.limit]
	}
	return recs
}

// handleQueryz serves the flight recorder: JSON by default, an aligned
// text table with ?format=text. ?limit= and ?min_ms= filter both lists.
func (e *Engine) handleQueryz(w http.ResponseWriter, r *http.Request) {
	f, err := parseQueryzFilters(r.URL.Query())
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	recent := f.apply(e.flight.Recent())
	slowest := f.apply(e.flight.Slowest())
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, obs.RecordsText(recent, slowest))
		return
	}
	writeJSON(w, http.StatusOK, QueryzResponse{
		Total:   e.flight.Total(),
		Recent:  recent,
		Slowest: slowest,
	})
}

// handleStatz serves the telemetry hub's full view: SLO burn state,
// per-class costs, and time-series rollups. JSON by default,
// ?format=text for aligned tables.
func (e *Engine) handleStatz(w http.ResponseWriter, r *http.Request) {
	h := e.opts.Telemetry
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, h.StatzText())
		return
	}
	b, err := h.StatzJSON()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// handleDashz serves the self-contained HTML dashboard.
func (e *Engine) handleDashz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, telemetry.DashzHTML)
}

// handleTracez serves one query's span tree by trace ID: Chrome
// trace_event JSON by default (load in chrome://tracing or Perfetto),
// the compact per-span JSONL form with ?format=jsonl.
func (e *Engine) handleTracez(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("traceID")
	rec, ok := e.flight.Find(id)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			map[string]string{"error": "trace " + id + " not found (evicted, or never ran here)"})
		return
	}
	if len(rec.Spans) == 0 {
		writeJSON(w, http.StatusNotFound,
			map[string]string{"error": "trace " + id + " was not sampled: no spans recorded"})
		return
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/jsonl")
		obs.WriteSpanJSONL(w, rec.Spans)
		return
	}
	doc, err := obs.ChromeTrace(rec.Spans)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(doc)
}

func (e *Engine) handleCachez(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, e.cache.stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Graph materializes the pattern graph from whichever wire form is
// set. Exported for the shard router, which inspects the query (radius
// guard) before scattering it across the fleet.
func (q *QueryRequest) Graph() (*graph.Graph, error) { return q.queryGraph() }

// queryGraph materializes the pattern from whichever wire form is set.
func (q *QueryRequest) queryGraph() (*graph.Graph, error) {
	hasText := q.Query != ""
	hasInline := len(q.Labels) > 0
	switch {
	case hasText && hasInline:
		return nil, fmt.Errorf("%w: give either query text or labels/edges, not both", ErrBadQuery)
	case hasText:
		g, err := graph.LoadLabeled(strings.NewReader(q.Query))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
		}
		return g, nil
	case hasInline:
		n := len(q.Labels)
		b := graph.NewBuilder(n)
		for v, l := range q.Labels {
			b.SetLabel(graph.VertexID(v), l)
		}
		for _, e := range q.Edges {
			if int(e[0]) >= n || int(e[1]) >= n {
				return nil, fmt.Errorf("%w: edge [%d,%d] references vertex >= %d", ErrBadQuery, e[0], e[1], n)
			}
			b.AddEdge(e[0], e[1])
		}
		g, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
		}
		return g, nil
	default:
		return nil, fmt.Errorf("%w: no query given", ErrBadQuery)
	}
}
