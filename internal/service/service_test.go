package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	ceciroot "ceci"
	"ceci/internal/auto"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/verify"
)

// testData is a labeled random graph shared by the service tests.
func testData() *graph.Graph {
	return gen.WithRandomLabels(gen.ErdosRenyi(400, 2400, 11), 4, 23)
}

// pathQuery builds a labeled path query of the given labels.
func pathQuery(t *testing.T, labels ...graph.Label) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(len(labels))
	for v, l := range labels {
		b.SetLabel(graph.VertexID(v), l)
	}
	for v := 0; v+1 < len(labels); v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID(v+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// coldSet enumerates query against data with a fresh cold build and
// returns the canonical embedding set (the differential oracle).
func coldSet(t *testing.T, data, query *graph.Graph) []string {
	t.Helper()
	m, err := ceciroot.Match(data, query, &ceciroot.Options{Workers: 1})
	if err != nil {
		t.Fatalf("cold match: %v", err)
	}
	return verify.CanonicalSet(m.Collect(), auto.Compute(query))
}

// TestQueryDifferentialVsColdBuild: engine results must match a cold
// ceci.Match build embedding-for-embedding (canonicalized through the
// internal/verify oracle), for several distinct queries.
func TestQueryDifferentialVsColdBuild(t *testing.T) {
	data := testData()
	eng := New(data, Options{MaxLimit: 1 << 20})
	queries := []*graph.Graph{
		pathQuery(t, 0, 1),
		pathQuery(t, 1, 2, 3),
		pathQuery(t, 0, 2, 0),
		pathQuery(t, 3, 1, 2, 0),
	}
	for i, q := range queries {
		resp, err := eng.Query(context.Background(), Request{Query: q})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		got := verify.CanonicalSet(resp.Embeddings, auto.Compute(q))
		want := coldSet(t, data, q)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d embeddings, cold build found %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("query %d: embedding sets diverge at %d: %q vs %q", i, j, got[j], want[j])
			}
		}
	}
}

// TestCacheHitSkipsBuild: the second identical query must hit the cache
// and perform zero additional index builds, returning identical results.
func TestCacheHitSkipsBuild(t *testing.T) {
	data := testData()
	eng := New(data, Options{MaxLimit: 1 << 20})
	q := pathQuery(t, 1, 2, 3)

	first, err := eng.Query(context.Background(), Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit || eng.Builds() != 1 {
		t.Fatalf("first query: hit=%v builds=%d, want miss and 1 build", first.CacheHit, eng.Builds())
	}
	second, err := eng.Query(context.Background(), Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("second query missed the cache")
	}
	if eng.Builds() != 1 {
		t.Errorf("builds = %d after a repeat query, want 1", eng.Builds())
	}
	if second.Count != first.Count {
		t.Errorf("counts differ across hit: %d vs %d", second.Count, first.Count)
	}
	// Same stored index, identity remap: sets are bit-identical.
	got := verify.CanonicalSet(second.Embeddings, nil)
	want := verify.CanonicalSet(first.Embeddings, nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit embeddings differ from cold at %d", i)
		}
	}
}

// TestIsomorphicQueryHitsCache: a vertex-permuted copy of a cached query
// must hit (canonical keys are isomorphism invariants) and its
// embeddings, after the engine's remap, must equal a cold build on the
// permuted query itself.
func TestIsomorphicQueryHitsCache(t *testing.T) {
	data := testData()
	eng := New(data, Options{MaxLimit: 1 << 20})
	q := pathQuery(t, 3, 1, 2, 0)

	if _, err := eng.Query(context.Background(), Request{Query: q}); err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 5; seed++ {
		perm, _ := gen.PermuteVertices(q, gen.NewRNG(seed))
		resp, err := eng.Query(context.Background(), Request{Query: perm})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !resp.CacheHit {
			t.Fatalf("seed %d: permuted query missed the cache", seed)
		}
		got := verify.CanonicalSet(resp.Embeddings, auto.Compute(perm))
		want := coldSet(t, data, perm)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d embeddings via remap, cold build found %d", seed, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("seed %d: remapped set diverges at %d", seed, j)
			}
		}
	}
	if eng.Builds() != 1 {
		t.Errorf("builds = %d, want 1 (all permutations should share one index)", eng.Builds())
	}
}

// TestDeadlinePromptOnCachedHeavyQuery: with the index already cached, a
// 1ms-deadline request on a heavy query must return promptly with
// DeadlineExceeded and a partial response — the acceptance criterion for
// deadline-aware cancellation.
func TestDeadlinePromptOnCachedHeavyQuery(t *testing.T) {
	data := gen.ErdosRenyi(2000, 24000, 3) // unlabeled: huge path count
	eng := New(data, Options{MaxLimit: 1 << 20, DefaultTimeout: time.Minute})
	q := pathQuery(t, 0, 0, 0, 0)

	// Populate the cache without enumerating everything.
	warm, err := eng.Query(context.Background(), Request{Query: q, Limit: 10})
	if err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	if warm.CacheHit {
		t.Fatal("warm-up hit an empty cache")
	}

	start := time.Now()
	resp, err := eng.Query(context.Background(), Request{Query: q, CountOnly: true, Timeout: time.Millisecond})
	elapsed := time.Since(start)
	if err == nil {
		t.Skipf("host counted %d paths inside 1ms; nothing to assert", resp.Count)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want DeadlineExceeded", err)
	}
	if resp == nil || !resp.Partial {
		t.Fatalf("response = %+v, want partial response alongside the error", resp)
	}
	if !resp.CacheHit {
		t.Error("deadline request should have hit the cache (build skipped)")
	}
	if elapsed > 2*time.Second {
		t.Errorf("deadline took %v to fire, want prompt return", elapsed)
	}
}

// TestAdmissionShedsWhenSaturated: with one worker slot and one queue
// slot both occupied, the next request must be shed with ErrOverloaded
// instead of waiting.
func TestAdmissionShedsWhenSaturated(t *testing.T) {
	data := testData()
	eng := New(data, Options{MaxConcurrent: 1, QueueDepth: 1, DefaultTimeout: 5 * time.Second})
	q := pathQuery(t, 0, 1)

	// Occupy the single worker slot directly, park one request in the
	// queue, then check the next one bounces.
	eng.sem <- struct{}{}
	queuedErr := make(chan error, 1)
	go func() {
		_, err := eng.Query(context.Background(), Request{Query: q, CountOnly: true})
		queuedErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for eng.waiting.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never started waiting")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := eng.Query(context.Background(), Request{Query: q, CountOnly: true})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated engine returned %v, want ErrOverloaded", err)
	}

	<-eng.sem // free the slot; the queued request proceeds
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued request failed after slot freed: %v", err)
	}
}

// TestConcurrentStress hammers one engine from many goroutines with a
// mix of cache hits, misses, tiny deadlines, and limits — meant to run
// under -race. Successful responses must report the exact cold-build
// count for their query.
func TestConcurrentStress(t *testing.T) {
	data := testData()
	eng := New(data, Options{MaxConcurrent: 4, QueueDepth: 64, MaxLimit: 1 << 20})

	queries := []*graph.Graph{
		pathQuery(t, 0, 1),
		pathQuery(t, 1, 2, 3),
		pathQuery(t, 2, 0),
		pathQuery(t, 3, 1, 2),
	}
	want := make([]int64, len(queries))
	for i, q := range queries {
		n, err := ceciroot.Count(data, q, &ceciroot.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = n
	}

	const goroutines = 16
	const iters = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi := (g + i) % len(queries)
				req := Request{Query: queries[qi], CountOnly: true}
				switch (g + i) % 4 {
				case 1:
					req.Timeout = time.Millisecond // may or may not expire
				case 2:
					req.Limit = 3
					req.CountOnly = false
				}
				resp, err := eng.Query(context.Background(), req)
				switch {
				case err == nil:
					if req.Limit == 0 && resp.Count != want[qi] {
						errs <- fmt.Errorf("query %d: count %d, want %d", qi, resp.Count, want[qi])
					}
					if req.Limit == 3 && int64(len(resp.Embeddings)) > 3 {
						errs <- fmt.Errorf("limit 3 returned %d embeddings", len(resp.Embeddings))
					}
				case errors.Is(err, context.DeadlineExceeded) && req.Timeout > 0:
					// expected possibility for the 1ms requests
				case errors.Is(err, ErrOverloaded):
					// acceptable under saturation
				default:
					errs <- fmt.Errorf("query %d: unexpected error %v", qi, err)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if b := eng.Builds(); b > int64(len(queries)) {
		t.Errorf("builds = %d, want <= %d (singleflight should coalesce)", b, len(queries))
	}
}

// TestBadQueries: validation failures surface as ErrBadQuery.
func TestBadQueries(t *testing.T) {
	eng := New(testData(), Options{})
	cases := []Request{
		{Query: nil},
		{Query: pathQuery(t, 0, 1), Limit: -1},
		{Query: pathQuery(t, 0, 1), Offset: -2},
	}
	for i, req := range cases {
		if _, err := eng.Query(context.Background(), req); !errors.Is(err, ErrBadQuery) {
			t.Errorf("case %d: error = %v, want ErrBadQuery", i, err)
		}
	}
}

// TestOffsetPagination: with Workers=1 enumeration is deterministic, so
// two pages must partition the full result prefix.
func TestOffsetPagination(t *testing.T) {
	data := testData()
	eng := New(data, Options{Workers: 1, MaxLimit: 1 << 20})
	q := pathQuery(t, 1, 2, 3)

	full, err := eng.Query(context.Background(), Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Embeddings) < 4 {
		t.Skipf("only %d embeddings; pagination needs a few", len(full.Embeddings))
	}
	page1, err := eng.Query(context.Background(), Request{Query: q, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	page2, err := eng.Query(context.Background(), Request{Query: q, Limit: 2, Offset: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(page1.Embeddings) != 2 || len(page2.Embeddings) != 2 {
		t.Fatalf("page sizes %d/%d, want 2/2", len(page1.Embeddings), len(page2.Embeddings))
	}
	for i := 0; i < 2; i++ {
		for u := range full.Embeddings[i] {
			if page1.Embeddings[i][u] != full.Embeddings[i][u] {
				t.Fatalf("page1[%d] diverges from full enumeration", i)
			}
			if page2.Embeddings[i][u] != full.Embeddings[i+2][u] {
				t.Fatalf("page2[%d] diverges from full enumeration", i)
			}
		}
	}
}
