package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"time"

	"ceci/internal/obs"
)

// outgoingTrace resolves the trace position a request should propagate:
// the ambient span's own identity when the caller has one open (its
// spans become the server subtree's parent), else the ambient trace
// context, else invalid (no header sent).
func outgoingTrace(ctx context.Context) obs.TraceContext {
	if s := obs.SpanFromContext(ctx); s != nil {
		tc := s.Context()
		tc.Sampled = true
		return tc
	}
	tc, _ := obs.TraceFromContext(ctx)
	return tc
}

// Client is a thin typed client for the service HTTP API, used by
// ceciserve's tests, the shard router, and the CI smoke jobs.
//
// Transient failures — connection errors and 429 load-shed responses —
// are retried with bounded exponential backoff and full jitter,
// respecting the request context's deadline. Everything else (4xx, 5xx,
// 504-with-partial-body) is returned to the caller on the first
// attempt.
type Client struct {
	base string
	hc   *http.Client

	attempts  int           // total tries per request (default 4)
	baseDelay time.Duration // first backoff step (default 50ms)
	maxDelay  time.Duration // backoff ceiling (default 1s)
}

// NewClient returns a client for a server at base (e.g.
// "http://127.0.0.1:8080"). httpClient may be nil for the default.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		base:      base,
		hc:        httpClient,
		attempts:  4,
		baseDelay: 50 * time.Millisecond,
		maxDelay:  time.Second,
	}
}

// SetRetry tunes the retry policy: attempts is the total number of
// tries (1 disables retries), base the first backoff step, max the
// ceiling. Values <= 0 keep the current setting.
func (c *Client) SetRetry(attempts int, base, max time.Duration) {
	if attempts > 0 {
		c.attempts = attempts
	}
	if base > 0 {
		c.baseDelay = base
	}
	if max > 0 {
		c.maxDelay = max
	}
}

// retryable reports whether a failed attempt should be retried:
// connection-level errors (server not yet up, reset mid-accept) unless
// caused by the caller's own context, and 429 responses (admission
// queue full — the server explicitly asked us to back off).
func retryable(resp *http.Response, err error) bool {
	if err != nil {
		return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
	}
	return resp.StatusCode == http.StatusTooManyRequests
}

// do runs one request with retries. newReq builds a fresh request per
// attempt (bodies are single-shot readers). The response body of a
// retried attempt is drained and closed before the next try.
func (c *Client) do(ctx context.Context, newReq func() (*http.Request, error)) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < c.attempts; attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, attempt); err != nil {
				return nil, lastErr
			}
		}
		hreq, err := newReq()
		if err != nil {
			return nil, err
		}
		hresp, err := c.hc.Do(hreq)
		if !retryable(hresp, err) || attempt == c.attempts-1 {
			return hresp, err
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = &APIError{StatusCode: hresp.StatusCode, Message: "overloaded (retries exhausted)"}
			io.Copy(io.Discard, io.LimitReader(hresp.Body, 4096))
			hresp.Body.Close()
		}
	}
	return nil, lastErr
}

// backoff sleeps exponential-with-full-jitter for the given attempt
// number (1-based), returning early with the context's error if the
// deadline fires first — a retry that cannot finish is not started.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	step := c.baseDelay << (attempt - 1)
	if step > c.maxDelay || step <= 0 {
		step = c.maxDelay
	}
	d := time.Duration(rand.Int64N(int64(step))) + step/2 // jitter in [step/2, 1.5*step)
	if d > c.maxDelay {
		d = c.maxDelay
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// APIError is a non-2xx response. Unwrap exposes the sentinel matching
// the status code (ErrOverloaded for 429, context.DeadlineExceeded for
// 504) so callers can errors.Is against engine semantics.
type APIError struct {
	StatusCode int
	Message    string
	// Resp carries the body when the server included one (504 partial
	// results land here).
	Resp *QueryResponse
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.StatusCode, e.Message)
}

func (e *APIError) Unwrap() error {
	switch e.StatusCode {
	case http.StatusTooManyRequests:
		return ErrOverloaded
	case http.StatusGatewayTimeout:
		return context.DeadlineExceeded
	case http.StatusBadRequest:
		return ErrBadQuery
	}
	return nil
}

// Query posts a match request. On a 504 the returned *QueryResponse is
// non-nil (partial counts) alongside the *APIError.
//
// When ctx carries a trace identity (obs.ContextWithTrace) or an open
// span (obs.ContextWithSpan), it crosses the wire as a W3C traceparent
// header, so the server's spans stitch into the caller's trace.
func (c *Client) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hresp, err := c.do(ctx, func() (*http.Request, error) {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/query", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		if tc := outgoingTrace(ctx); tc.Valid() {
			hreq.Header.Set("traceparent", tc.Traceparent())
		}
		return hreq, nil
	})
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	var out QueryResponse
	if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil && err != io.EOF {
		return nil, fmt.Errorf("service: decoding response: %w", err)
	}
	if hresp.StatusCode != http.StatusOK {
		return &out, &APIError{StatusCode: hresp.StatusCode, Message: out.Error, Resp: &out}
	}
	return &out, nil
}

// Healthz fetches the liveness document.
func (c *Client) Healthz(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.getJSON(ctx, "/healthz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready probes readiness: GET /healthz?ready=1 returns nil only once
// the server has its resident graph (and shard partition) loaded and
// can serve queries. The router's health checker calls this.
func (c *Client) Ready(ctx context.Context) error {
	var out HealthResponse
	return c.getJSON(ctx, "/healthz?ready=1", &out)
}

// Queryz fetches the flight-recorder document: recent and slowest
// completed queries.
func (c *Client) Queryz(ctx context.Context) (*QueryzResponse, error) {
	var out QueryzResponse
	if err := c.getJSON(ctx, "/queryz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Tracez fetches a sampled query's span tree as Chrome trace_event
// JSON bytes (load the result in chrome://tracing or Perfetto).
func (c *Client) Tracez(ctx context.Context, traceID string) ([]byte, error) {
	hresp, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/tracez/"+traceID, nil)
	})
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	body, err := io.ReadAll(hresp.Body)
	if err != nil {
		return nil, err
	}
	if hresp.StatusCode != http.StatusOK {
		return nil, &APIError{StatusCode: hresp.StatusCode, Message: string(body)}
	}
	return body, nil
}

// TracezJSONL fetches a sampled query's spans in the compact per-span
// JSONL form (parse with obs.ReadSpanJSONL). The shard router uses this
// to stitch shard subtrees under its own routing span.
func (c *Client) TracezJSONL(ctx context.Context, traceID string) ([]byte, error) {
	hresp, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/tracez/"+traceID+"?format=jsonl", nil)
	})
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	body, err := io.ReadAll(hresp.Body)
	if err != nil {
		return nil, err
	}
	if hresp.StatusCode != http.StatusOK {
		return nil, &APIError{StatusCode: hresp.StatusCode, Message: string(body)}
	}
	return body, nil
}

// Cachez fetches the index-cache statistics.
func (c *Client) Cachez(ctx context.Context) (*CacheStats, error) {
	var out CacheStats
	if err := c.getJSON(ctx, "/cachez", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	hresp, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	})
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return &APIError{StatusCode: hresp.StatusCode, Message: string(b)}
	}
	return json.NewDecoder(hresp.Body).Decode(v)
}
