package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"ceci/internal/obs"
)

// outgoingTrace resolves the trace position a request should propagate:
// the ambient span's own identity when the caller has one open (its
// spans become the server subtree's parent), else the ambient trace
// context, else invalid (no header sent).
func outgoingTrace(ctx context.Context) obs.TraceContext {
	if s := obs.SpanFromContext(ctx); s != nil {
		tc := s.Context()
		tc.Sampled = true
		return tc
	}
	tc, _ := obs.TraceFromContext(ctx)
	return tc
}

// Client is a thin typed client for the service HTTP API, used by
// ceciserve's tests and the CI smoke job.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for a server at base (e.g.
// "http://127.0.0.1:8080"). httpClient may be nil for the default.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, hc: httpClient}
}

// APIError is a non-2xx response. Unwrap exposes the sentinel matching
// the status code (ErrOverloaded for 429, context.DeadlineExceeded for
// 504) so callers can errors.Is against engine semantics.
type APIError struct {
	StatusCode int
	Message    string
	// Resp carries the body when the server included one (504 partial
	// results land here).
	Resp *QueryResponse
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.StatusCode, e.Message)
}

func (e *APIError) Unwrap() error {
	switch e.StatusCode {
	case http.StatusTooManyRequests:
		return ErrOverloaded
	case http.StatusGatewayTimeout:
		return context.DeadlineExceeded
	case http.StatusBadRequest:
		return ErrBadQuery
	}
	return nil
}

// Query posts a match request. On a 504 the returned *QueryResponse is
// non-nil (partial counts) alongside the *APIError.
//
// When ctx carries a trace identity (obs.ContextWithTrace) or an open
// span (obs.ContextWithSpan), it crosses the wire as a W3C traceparent
// header, so the server's spans stitch into the caller's trace.
func (c *Client) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if tc := outgoingTrace(ctx); tc.Valid() {
		hreq.Header.Set("traceparent", tc.Traceparent())
	}
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	var out QueryResponse
	if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil && err != io.EOF {
		return nil, fmt.Errorf("service: decoding response: %w", err)
	}
	if hresp.StatusCode != http.StatusOK {
		return &out, &APIError{StatusCode: hresp.StatusCode, Message: out.Error, Resp: &out}
	}
	return &out, nil
}

// Healthz fetches the liveness document.
func (c *Client) Healthz(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.getJSON(ctx, "/healthz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Queryz fetches the flight-recorder document: recent and slowest
// completed queries.
func (c *Client) Queryz(ctx context.Context) (*QueryzResponse, error) {
	var out QueryzResponse
	if err := c.getJSON(ctx, "/queryz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Tracez fetches a sampled query's span tree as Chrome trace_event
// JSON bytes (load the result in chrome://tracing or Perfetto).
func (c *Client) Tracez(ctx context.Context, traceID string) ([]byte, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/tracez/"+traceID, nil)
	if err != nil {
		return nil, err
	}
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	body, err := io.ReadAll(hresp.Body)
	if err != nil {
		return nil, err
	}
	if hresp.StatusCode != http.StatusOK {
		return nil, &APIError{StatusCode: hresp.StatusCode, Message: string(body)}
	}
	return body, nil
}

// Cachez fetches the index-cache statistics.
func (c *Client) Cachez(ctx context.Context) (*CacheStats, error) {
	var out CacheStats
	if err := c.getJSON(ctx, "/cachez", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return &APIError{StatusCode: hresp.StatusCode, Message: string(b)}
	}
	return json.NewDecoder(hresp.Body).Decode(v)
}
