package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	icec "ceci/internal/ceci"
	"ceci/internal/enum"
	"ceci/internal/graph"
	"ceci/internal/obs"
	"ceci/internal/order"
	"ceci/internal/plan"
	"ceci/internal/stats"
	"ceci/internal/telemetry"
	"ceci/internal/verify"
)

// ErrOverloaded is returned when both the worker pool and the wait queue
// are full; HTTP maps it to 429 so clients can back off and retry.
var ErrOverloaded = errors.New("service: overloaded, queue full")

// ErrBadQuery wraps query-validation failures; HTTP maps it to 400.
var ErrBadQuery = errors.New("service: bad query")

// Options configures an Engine. Zero values get sensible server
// defaults (documented per field).
type Options struct {
	// MaxConcurrent bounds queries executing simultaneously
	// (default GOMAXPROCS). Each query may itself use Workers cores, so
	// the product is the real CPU ceiling.
	MaxConcurrent int
	// QueueDepth bounds queries waiting for a worker slot (default 64).
	// A query arriving with pool and queue both full is shed with
	// ErrOverloaded instead of queueing unboundedly.
	QueueDepth int
	// DefaultTimeout applies when a request carries none (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied timeouts (default 5m).
	MaxTimeout time.Duration
	// MaxLimit caps embeddings returned per request (default 10000).
	// Counts (CountOnly) are not capped — only materialized results.
	MaxLimit int64
	// CacheBytes is the index cache budget, charged against each frozen
	// index's PhysicalBytes (default 256 MiB).
	CacheBytes int64
	// Workers bounds per-query enumeration parallelism (default 1: with
	// MaxConcurrent queries in flight the server is already parallel
	// across requests; raise this for latency-sensitive single-tenant
	// setups).
	Workers int
	// Order selects the matching-order heuristic for built indexes.
	// Ignored when Planner is set.
	Order order.Heuristic
	// Planner enables cost-based adaptive planning per query class: on
	// build, every heuristic's order plus a greedy min-cost order are
	// scored by internal/plan's cardinality model and the cheapest wins;
	// the winning plan is cached with the index, each query folds its
	// observed per-depth selectivities into the entry, and the engine
	// re-plans — rebuilding the index under a new order if one is now
	// cheaper — when observed cost drifts PlannerDrift× past the
	// estimate.
	Planner bool
	// PlannerDrift is the re-plan trigger factor: re-plan when the
	// running order's cost, recosted under observed selectivities, is at
	// least this many times its original estimate (default 4).
	PlannerDrift float64
	// PlannerMinQueries is how many completed queries a cache entry must
	// observe before drift checks begin (default 3) — one noisy or
	// partial query should not trigger a rebuild.
	PlannerMinQueries int64
	// Registry, when non-nil, receives cache/admission gauges and
	// latency histograms (served at /metrics under the HTTP handler).
	Registry *obs.Registry
	// Tracer, when non-nil, records one span per sampled request with
	// build/enumerate children; completed trees move into the flight
	// recorder (and out of the tracer) when the query finishes.
	Tracer *obs.Tracer
	// TraceSample is the head-based sampling rate for requests that
	// arrive without a traceparent: 1 samples every query, 0.01 one in a
	// hundred. The zero value means 1 (sample everything); pass a
	// negative rate to disable span recording entirely. Requests that
	// carry a traceparent keep the caller's sampling decision.
	TraceSample float64
	// FlightSize is the flight recorder's ring capacity (default 256).
	// The recorder itself is always on — it costs one small struct per
	// completed query regardless of sampling.
	FlightSize int
	// SlowestK is the flight recorder's slowest-query index depth
	// (default 16).
	SlowestK int
	// Audit, when non-nil, receives one JSON line per completed query
	// (the flight-recorder record, spans omitted) — a structured audit
	// log that survives ring eviction. Writes are serialized by the
	// engine; pass a buffered writer for high request rates.
	Audit io.Writer
	// Stats, when non-nil, accumulates build/enumeration counters
	// across all requests.
	Stats *stats.Counters
	// Telemetry, when non-nil, receives per-query resource ledgers and
	// SLO observations, and serves /statz and /dashz. Each query gets a
	// telemetry.Ledger charged by the enumeration at work-unit
	// boundaries; the snapshot rides the flight record.
	Telemetry *telemetry.Hub
	// Shard, when non-nil, runs the engine as one member of a sharded
	// fleet: the resident graph is a pivot-owned partition (owned
	// vertices plus a halo of radius Shard.Radius), indexes restrict
	// their embedding clusters to owned pivots, and embeddings are
	// translated back to the source graph's global vertex ids. See
	// internal/shard for the partitioning contract.
	Shard *ShardConfig
}

// ShardConfig describes the partition an Engine serves in shard mode.
// It mirrors shard.Partition without importing it (the shard package's
// router imports service, not the other way around).
type ShardConfig struct {
	// ID is this shard's index in [0, Shards).
	ID int
	// Shards is the fleet size the partition was cut for.
	Shards int
	// Radius is the halo depth: every vertex within this data-graph
	// distance of an owned vertex is present in the resident subgraph.
	// Queries whose anchor eccentricity exceeds it are rejected — the
	// shard cannot guarantee it holds their full embeddings.
	Radius int
	// Globals maps local vertex id -> global (source graph) vertex id.
	// It is strictly ascending, which makes local-id comparisons agree
	// with global-id comparisons — the property that keeps
	// symmetry-breaking orbit representatives identical across the
	// fleet and on a single node.
	Globals []graph.VertexID
	// OwnedLocals lists the local ids this shard owns (sorted). Only
	// embedding clusters pivoted on owned vertices are enumerated, so
	// fleet-wide shard counts partition the single-node count exactly.
	OwnedLocals []graph.VertexID
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 5 * time.Minute
	}
	if o.MaxLimit <= 0 {
		o.MaxLimit = 10000
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 256 << 20
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.TraceSample == 0 {
		o.TraceSample = 1
	}
	if o.PlannerDrift <= 0 {
		o.PlannerDrift = 4
	}
	if o.PlannerMinQueries <= 0 {
		o.PlannerMinQueries = 3
	}
	return o
}

// Request is one match request against the engine's resident data graph.
type Request struct {
	// Query is the pattern graph. Embeddings in the response are indexed
	// by this graph's vertex ids (even on a cache hit by an isomorphic
	// stored query — the engine translates).
	Query *graph.Graph
	// Limit caps embeddings delivered (0 = server MaxLimit for
	// materialized results, unlimited for CountOnly).
	Limit int64
	// Offset skips this many embeddings before collecting. Pagination is
	// best-effort: parallel enumeration order is nondeterministic, so
	// pages are stable only with Workers=1 per query.
	Offset int64
	// Timeout overrides the server default (clamped to MaxTimeout).
	Timeout time.Duration
	// CountOnly skips materializing embeddings.
	CountOnly bool
}

// Response carries the result. On deadline errors the engine still
// returns a Response with Partial=true and the counts reached.
type Response struct {
	Count      int64
	Embeddings [][]graph.VertexID
	CacheHit   bool
	Partial    bool
	BuildTime  time.Duration
	EnumTime   time.Duration
	// TraceID is the query's trace identity as 32 hex digits — the key
	// into /queryz and /tracez/{traceID}. Set on every response, sampled
	// or not.
	TraceID string
	// Trace is the request root span's trace position, valid only when
	// the query was sampled; HTTP emits it as the response traceparent.
	Trace obs.TraceContext
	// QueryHash identifies the query's isomorphism class (the index
	// cache key, shortened) — equal for isomorphic patterns.
	QueryHash string
	// QueueWait is the time spent waiting for a worker slot.
	QueueWait time.Duration
	// Resources is the query's resource ledger snapshot, present when
	// the engine runs with telemetry enabled.
	Resources *obs.QueryResources
}

// buildCall is the singleflight slot for one cache key: concurrent
// requests for the same (isomorphism class of) query share one build.
type buildCall struct {
	done  chan struct{}
	entry *entry
	err   error
}

// Engine executes queries against one resident data graph.
type Engine struct {
	data  *graph.Graph
	opts  Options
	cache *cache

	sem   chan struct{} // running-query slots (MaxConcurrent)
	queue chan struct{} // waiting-query slots (QueueDepth)

	buildMu  sync.Mutex
	building map[string]*buildCall

	flight  *obs.FlightRecorder
	auditMu sync.Mutex
	audit   *json.Encoder // optional JSONL audit log (nil when unset)

	// Admission/serving counters, exposed as ceci_service_* gauges.
	requests  atomic.Int64
	shed      atomic.Int64
	deadlines atomic.Int64
	builds    atomic.Int64
	inflight  atomic.Int64
	waiting   atomic.Int64

	// Adaptive-planner counters, exposed as ceci_planner_* gauges.
	planned     atomic.Int64 // entries built with a planner-chosen order
	driftChecks atomic.Int64 // calibrated recosts of a running order
	recosts     atomic.Int64 // drift re-plans that kept the order (estimate updated)
	replans     atomic.Int64 // drift re-plans that installed a new order (index rebuilt)

	latency   *obs.Histogram // end-to-end request seconds
	queueWait *obs.Histogram // admission wait seconds
}

// New returns an Engine serving queries against data. The graph is held
// resident for the engine's lifetime; indexes are built per query class
// on demand and cached.
func New(data *graph.Graph, opts Options) *Engine {
	o := opts.withDefaults()
	e := &Engine{
		data:      data,
		opts:      o,
		cache:     newCache(o.CacheBytes),
		sem:       make(chan struct{}, o.MaxConcurrent),
		queue:     make(chan struct{}, o.QueueDepth),
		building:  make(map[string]*buildCall),
		flight:    obs.NewFlightRecorder(o.FlightSize, o.SlowestK),
		latency:   obs.NewHistogram(obs.LatencyBuckets()),
		queueWait: obs.NewHistogram(obs.LatencyBuckets()),
	}
	if o.Audit != nil {
		e.audit = json.NewEncoder(o.Audit)
	}
	if reg := o.Registry; reg != nil {
		reg.SetHistogram("service_latency_seconds", e.latency)
		reg.SetHistogram("service_queue_wait_seconds", e.queueWait)
		reg.SetSource("service", func() map[string]int64 {
			return map[string]int64{
				"requests":          e.requests.Load(),
				"shed":              e.shed.Load(),
				"deadline_exceeded": e.deadlines.Load(),
				"builds":            e.builds.Load(),
				"inflight":          e.inflight.Load(),
				"queue_depth":       e.waiting.Load(),
			}
		})
		reg.SetSource("cache", func() map[string]int64 {
			s := e.cache.stats()
			return map[string]int64{
				"entries":      int64(s.Entries),
				"used_bytes":   s.UsedBytes,
				"budget_bytes": s.BudgetBytes,
				"hits":         s.Hits,
				"misses":       s.Misses,
				"evictions":    s.Evictions,
				"rejected":     s.Rejected,
			}
		})
		if o.Planner {
			reg.SetSource("planner", func() map[string]int64 {
				return map[string]int64{
					"planned":      e.planned.Load(),
					"drift_checks": e.driftChecks.Load(),
					"recosts":      e.recosts.Load(),
					"replans":      e.replans.Load(),
				}
			})
		}
		if o.Stats != nil {
			reg.SetCounters(o.Stats)
		}
		if o.Tracer != nil {
			reg.SetTracer(o.Tracer)
		}
		// The hub samples the registry's gauges and histograms into its
		// time-series store, and registers its SLO burn gauges back.
		o.Telemetry.BindRegistry(reg)
	}
	return e
}

// Data returns the resident data graph.
func (e *Engine) Data() *graph.Graph { return e.data }

// Flight returns the engine's flight recorder (never nil) — the last N
// completed queries plus the slowest-K index, served at /queryz.
func (e *Engine) Flight() *obs.FlightRecorder { return e.flight }

// CacheStats snapshots the index cache counters.
func (e *Engine) CacheStats() CacheStats { return e.cache.stats() }

// Builds returns how many index builds the engine has performed (cache
// hits skip builds; tests assert on this).
func (e *Engine) Builds() int64 { return e.builds.Load() }

// Query runs one request. The flow is: validate, apply deadline, admit
// (try a worker slot, else a bounded queue slot, else shed), resolve the
// index (cache hit / singleflight build), enumerate.
//
// On deadline/cancellation mid-run it returns the partial Response
// together with the context's error, so callers can report how far the
// query got.
func (e *Engine) Query(ctx context.Context, req Request) (*Response, error) {
	e.requests.Add(1)
	start := time.Now()
	defer func() { e.latency.ObserveDuration(time.Since(start)) }()

	if req.Query == nil {
		return nil, fmt.Errorf("%w: nil query graph", ErrBadQuery)
	}
	if req.Query.NumVertices() == 0 {
		return nil, fmt.Errorf("%w: empty query graph", ErrBadQuery)
	}
	if req.Offset < 0 || req.Limit < 0 {
		return nil, fmt.Errorf("%w: negative limit/offset", ErrBadQuery)
	}

	// Deadline: request timeout, clamped; server default otherwise.
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = e.opts.DefaultTimeout
	}
	if timeout > e.opts.MaxTimeout {
		timeout = e.opts.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// Trace identity: adopt the caller's (injected from a traceparent
	// header by the HTTP layer, or set by a Go caller via
	// obs.ContextWithTrace) or mint a fresh one. Every query gets a trace
	// ID — the flight recorder keys on it — but spans are recorded only
	// for sampled queries, so always-on tracing stays cheap.
	tc, hasTC := obs.TraceFromContext(ctx)
	if !hasTC || tc.TraceID.IsZero() {
		tc = obs.NewTraceContext()
		tc.Sampled = tc.SampleHead(e.opts.TraceSample)
	}
	sampled := tc.Sampled && e.opts.Tracer != nil
	var span *obs.Span
	if sampled {
		span = e.opts.Tracer.StartRemote(tc, "service-query",
			obs.Int("query_vertices", int64(req.Query.NumVertices())))
		ctx = obs.ContextWithSpan(ctx, span)
	} else {
		// Keep the inner layers from opening remote spans off the raw
		// trace context of an unsampled request.
		ctx = obs.DetachTrace(ctx)
	}

	// Resource ledger: the enumeration charges it at work-unit
	// boundaries; the allocation watermark brackets the whole query so
	// the build phase's allocations are attributed too.
	var led *telemetry.Ledger
	var alloc telemetry.AllocWatermark
	if e.opts.Telemetry != nil {
		led = telemetry.NewLedger()
		alloc = telemetry.StartAllocWatermark()
	}

	waited, err := e.admit(ctx, span)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			e.deadlines.Add(1)
		}
		e.finish(tc, span, req, nil, err, start, waited, led)
		return nil, err
	}
	e.inflight.Add(1)
	defer func() {
		e.inflight.Add(-1)
		<-e.sem
	}()

	resp, err := e.run(ctx, req, span, led)
	if errors.Is(err, context.DeadlineExceeded) {
		e.deadlines.Add(1)
	}
	if led != nil {
		alloc.ChargeTo(led)
	}
	if resp != nil {
		resp.TraceID = tc.TraceID.String()
		resp.QueueWait = waited
		resp.Resources = led.Snapshot()
		if span != nil {
			resp.Trace = span.Context()
			resp.Trace.Sampled = true
		}
	}
	e.finish(tc, span, req, resp, err, start, waited, led)
	return resp, err
}

// statusFor maps an engine error to the HTTP-style outcome code shared
// by the HTTP layer and the flight recorder.
func statusFor(err error) int {
	switch {
	case err == nil:
		return 200
	case errors.Is(err, ErrOverloaded):
		return 429
	case errors.Is(err, ErrBadQuery):
		return 400
	case errors.Is(err, context.DeadlineExceeded):
		return 504
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	default:
		return 500
	}
}

// finish closes the query's span tree, moves it out of the tracer, and
// records the completed query in the flight recorder (and the audit
// log, when configured). Called exactly once per admitted-or-shed
// query; trace bookkeeping happens only here, at the request boundary,
// never inside the enumeration hot path.
func (e *Engine) finish(tc obs.TraceContext, span *obs.Span, req Request,
	resp *Response, err error, start time.Time, waited time.Duration,
	led *telemetry.Ledger) {

	rec := obs.QueryRecord{
		Resources:       led.Snapshot(),
		TraceID:         tc.TraceID.String(),
		Time:            start,
		QueryVertices:   req.Query.NumVertices(),
		Outcome:         statusFor(err),
		AdmissionWaitUS: waited.Microseconds(),
		TotalUS:         time.Since(start).Microseconds(),
		Sampled:         span != nil,
	}
	if resp != nil {
		rec.QueryHash = resp.QueryHash
		rec.CacheHit = resp.CacheHit
		rec.Partial = resp.Partial
		rec.Embeddings = resp.Count
		rec.BuildUS = resp.BuildTime.Microseconds()
		rec.EnumUS = resp.EnumTime.Microseconds()
	}
	if span != nil {
		span.Annotate(obs.Int("outcome", int64(rec.Outcome)),
			obs.Int("admission_wait_us", rec.AdmissionWaitUS))
		span.End()
		// Take (not Collect): completed trees leave the tracer so a
		// long-running server's span forest stays bounded by the ring.
		rec.Spans = e.opts.Tracer.Take(tc.TraceID)
	}
	e.flight.Record(rec)
	if h := e.opts.Telemetry; h != nil {
		slim := rec
		slim.Spans = nil // the hub aggregates scalars; span trees stay in the recorder
		h.ObserveQuery(slim)
	}
	if e.audit != nil {
		audit := rec
		audit.Spans = nil // the audit log is one line per query, not a span dump
		e.auditMu.Lock()
		e.audit.Encode(audit)
		e.auditMu.Unlock()
	}
}

// admit acquires a worker slot, parking in the bounded queue while the
// pool is full. Returns the time spent waiting, and ErrOverloaded when
// the queue is full too, or the context's error if the deadline fires
// while waiting.
func (e *Engine) admit(ctx context.Context, span *obs.Span) (time.Duration, error) {
	select {
	case e.sem <- struct{}{}:
		return 0, nil // fast path: free worker slot
	default:
	}
	select {
	case e.queue <- struct{}{}:
	default:
		e.shed.Add(1)
		return 0, ErrOverloaded
	}
	e.waiting.Add(1)
	waitStart := time.Now()
	defer func() {
		e.waiting.Add(-1)
		e.queueWait.ObserveDuration(time.Since(waitStart))
		<-e.queue
	}()
	wsp := span.Child("queue-wait")
	defer wsp.End()
	select {
	case e.sem <- struct{}{}:
		return time.Since(waitStart), nil
	case <-ctx.Done():
		return time.Since(waitStart), context.Cause(ctx)
	}
}

// run resolves the index and enumerates. Called with a worker slot
// held. The build and enumeration layers open their own spans beneath
// the request span they find on ctx, so the trace shows the real
// phases (build → expand/refine, enumerate) rather than wrappers.
func (e *Engine) run(ctx context.Context, req Request, span *obs.Span, led *telemetry.Ledger) (*Response, error) {
	ent, perm, hit, buildTime, key, err := e.getIndex(ctx, req.Query)
	qh := queryHash(key)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			// Build cut short by the deadline: report what we know.
			return &Response{Partial: true, BuildTime: buildTime, QueryHash: qh}, context.Cause(ctx)
		}
		return nil, err
	}
	span.Annotate(obs.String("cache_hit", fmt.Sprint(hit)),
		obs.String("query_hash", qh))

	resp := &Response{CacheHit: hit, BuildTime: buildTime, QueryHash: qh}

	// σ maps incoming query vertices to stored-query vertices through
	// the canonical form: embeddings from the cached index are indexed
	// by the stored query's ids and must be translated on a hit by an
	// isomorphic-but-renumbered query.
	sigma := composePerm(ent.invPerm, perm)

	limit := req.Limit
	if !req.CountOnly {
		if limit <= 0 || limit > e.opts.MaxLimit {
			limit = e.opts.MaxLimit
		}
	}
	// The enumeration must deliver offset + limit embeddings to fill the
	// page; CountOnly with Limit 0 counts everything.
	var stopAfter int64
	if limit > 0 {
		stopAfter = req.Offset + limit
	}

	// Per-query depth stats feed the adaptive planner's drift detector;
	// selectivity ratios are scale-free (output per lookup), so partial
	// and limited enumerations contribute without biasing the signal.
	var ds *enum.DepthStats
	if e.opts.Planner && ent.decision != nil {
		ds = enum.NewDepthStats(len(ent.decision.Order))
		defer e.observePlan(ent, ds)
	}

	m := enum.NewMatcher(ent.ix.Load(), enum.Options{
		Workers: e.opts.Workers,
		Limit:   stopAfter,
		Stats:   e.opts.Stats,
		Ledger:  led,
		Depth:   ds,
	})

	// Shard mode: enumerated ids are shard-local; responses speak global
	// (source graph) ids so the router can merge shards without a map.
	var globals []graph.VertexID
	if sc := e.opts.Shard; sc != nil {
		globals = sc.Globals
	}

	enumStart := time.Now()
	var count atomic.Int64
	var mu sync.Mutex
	var page [][]graph.VertexID
	enumErr := m.ForEachCtx(ctx, func(emb []graph.VertexID) bool {
		n := count.Add(1)
		if req.CountOnly {
			return true
		}
		if n <= req.Offset {
			return true
		}
		out := make([]graph.VertexID, len(emb))
		for u := range out {
			dv := emb[sigma[u]]
			if globals != nil {
				dv = globals[dv]
			}
			out[u] = dv
		}
		mu.Lock()
		page = append(page, out)
		mu.Unlock()
		return true
	})
	resp.EnumTime = time.Since(enumStart)

	resp.Count = count.Load()
	resp.Embeddings = page
	if enumErr != nil {
		resp.Partial = true
		return resp, enumErr
	}
	return resp, nil
}

// observePlan folds one query's per-depth lookup/output counts into the
// entry's accumulators and, once PlannerMinQueries queries have been
// seen, recosts the running order under the observed selectivities. A
// drift of PlannerDrift× past the original estimate triggers a re-plan.
func (e *Engine) observePlan(ent *entry, ds *enum.DepthStats) {
	lookups, emitted := ds.Snapshot()
	ent.mu.Lock()
	for i := range lookups {
		ent.obsLookups[i] += lookups[i]
		ent.obsEmitted[i] += emitted[i]
	}
	ent.obsQueries++
	dec := ent.decision
	var calib []float64
	if ent.obsQueries >= e.opts.PlannerMinQueries && !ent.replanning {
		calib = dec.Calibration(ent.obsLookups, ent.obsEmitted)
	}
	ent.mu.Unlock()
	if calib == nil {
		return
	}
	e.driftChecks.Add(1)
	observed := ent.planner.EstimateOrder(dec.Chosen, dec.Order, calib).Cost
	if observed < e.opts.PlannerDrift*math.Max(dec.Estimate, 1) {
		return
	}
	e.replan(ent, calib)
}

// replan re-runs the cost model with the entry's observed selectivities
// folded in. If the calibrated winner is the order already running, the
// entry just adopts the calibrated estimate (so drift does not
// re-trigger every query); otherwise the index is rebuilt under the new
// order and swapped into the cache. Queries already enumerating the old
// index finish on it — the swap only redirects future lookups.
func (e *Engine) replan(ent *entry, calib []float64) {
	ent.mu.Lock()
	if ent.replanning {
		ent.mu.Unlock()
		return
	}
	ent.replanning = true
	ent.mu.Unlock()
	done := func() {
		ent.mu.Lock()
		ent.replanning = false
		ent.mu.Unlock()
	}

	dec, err := ent.planner.Decide(calib)
	if err != nil {
		done()
		return
	}
	if sameOrder(dec.Order, ent.decision.Order) {
		e.recosts.Add(1)
		ent.mu.Lock()
		ent.decision = dec
		ent.resetObsLocked()
		ent.mu.Unlock()
		done()
		return
	}
	// New order: rebuild off the request path's deadline — the rebuild
	// benefits future queries of this class, not the one that noticed.
	// The entry's pivot restriction (shard mode) carries over; dropping
	// it here would silently widen the shard to the whole graph.
	ix, err := icec.BuildCtx(context.Background(), e.data, dec.Tree, icec.Options{
		Workers: e.opts.Workers,
		Stats:   e.opts.Stats,
		Pivots:  ent.pivots,
	})
	if err != nil {
		done()
		return
	}
	e.builds.Add(1)
	e.replans.Add(1)
	ent.mu.Lock()
	ent.decision = dec
	ent.resetObsLocked()
	ent.mu.Unlock()
	e.cache.replace(ent, ix, ix.PhysicalBytes())
	done()
}

func sameOrder(a, b []graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// getIndex returns the cache entry for the query's isomorphism class,
// building (once, via singleflight) on a miss. perm maps the incoming
// query's vertices to canonical positions; key is the canonical cache
// key (returned even on failure, so the flight record keeps the query's
// identity).
func (e *Engine) getIndex(ctx context.Context, q *graph.Graph) (ent *entry, perm []int, hit bool, buildTime time.Duration, key string, err error) {
	key, perm = verify.CanonicalGraph(q)
	for {
		if ent, ok := e.cache.get(key); ok {
			return ent, perm, true, 0, key, nil
		}
		e.buildMu.Lock()
		if call, ok := e.building[key]; ok {
			e.buildMu.Unlock()
			// Follow a build in flight. If the leader's deadline killed
			// the build but ours is still alive, loop and retry (we may
			// become the next leader).
			select {
			case <-call.done:
				if call.err != nil {
					if isCtxErr(call.err) && ctx.Err() == nil {
						continue
					}
					return nil, nil, false, 0, key, call.err
				}
				return call.entry, perm, false, 0, key, nil
			case <-ctx.Done():
				return nil, nil, false, 0, key, context.Cause(ctx)
			}
		}
		call := &buildCall{done: make(chan struct{})}
		e.building[key] = call
		e.buildMu.Unlock()

		// The build opens its own span (expand/refine children) beneath
		// the request span riding ctx; no wrapper span here.
		buildStart := time.Now()
		call.entry, call.err = e.buildEntry(ctx, q, key, perm)
		buildTime = time.Since(buildStart)

		e.buildMu.Lock()
		delete(e.building, key)
		e.buildMu.Unlock()
		close(call.done)

		if call.err != nil {
			return nil, nil, false, buildTime, key, call.err
		}
		return call.entry, perm, false, buildTime, key, nil
	}
}

// queryHash shortens a canonical cache key to 16 hex digits — the
// query-class identity shown in /queryz and EXPLAIN output.
func queryHash(key string) string {
	if key == "" {
		return ""
	}
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:8])
}

// buildEntry preprocesses and builds one frozen index, inserting it into
// the cache on success. With Options.Planner the matching order comes
// from the cost-based planner and the winning plan is cached alongside
// the index for later drift checks.
//
// In shard mode the stored query is the incoming query's canonical form
// and the index root is forced to the canonical anchor (the query's
// minimum-eccentricity vertex). Both choices are isomorphism-invariant,
// so every shard — whichever renumbering of the query class it saw
// first — partitions embeddings by the same query vertex and agrees
// with single-node serving on symmetry-breaking representatives.
func (e *Engine) buildEntry(ctx context.Context, q *graph.Graph, key string, perm []int) (*entry, error) {
	var tree *order.QueryTree
	var planner *plan.Planner
	var decision *plan.Decision
	var pivots []graph.VertexID
	var err error
	forcedRoot := -1
	storedQuery := q
	invPerm := invertPerm(perm)
	if sc := e.opts.Shard; sc != nil {
		storedQuery, err = canonicalForm(q, perm)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
		}
		// Stored query ids == canonical positions, so translation back
		// from the stored numbering is the identity.
		invPerm = identityPerm(len(perm))
		anchor, ecc := order.Anchor(storedQuery)
		if ecc > sc.Radius {
			return nil, fmt.Errorf("%w: query anchor eccentricity %d exceeds shard halo radius %d; repartition with -radius >= %d",
				ErrBadQuery, ecc, sc.Radius, ecc)
		}
		forcedRoot = int(anchor)
		// Owned pivots only: clusters anchored on halo vertices belong to
		// the shard that owns them. Non-nil even when empty, so the index
		// build restricts rather than re-deriving root candidates.
		pivots = make([]graph.VertexID, 0)
		order.ForEachCandidate(e.data, storedQuery, anchor, func(v graph.VertexID) {
			if containsVertex(sc.OwnedLocals, v) {
				pivots = append(pivots, v)
			}
		})
	}
	if e.opts.Planner {
		planner, err = plan.New(e.data, storedQuery, plan.Options{ForcedRoot: forcedRoot})
		if err == nil {
			decision, err = planner.Decide(nil)
		}
		if decision != nil {
			tree = decision.Tree
		}
	} else {
		tree, err = order.Preprocess(e.data, storedQuery, order.Options{
			ForcedRoot: forcedRoot,
			Heuristic:  e.opts.Order,
		})
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	ix, err := icec.BuildCtx(ctx, e.data, tree, icec.Options{
		Workers: e.opts.Workers,
		Stats:   e.opts.Stats,
		Pivots:  pivots,
	})
	if err != nil {
		return nil, err
	}
	e.builds.Add(1)
	ent := &entry{
		key:      key,
		query:    storedQuery,
		invPerm:  invPerm,
		pivots:   pivots,
		bytes:    ix.PhysicalBytes(),
		planner:  planner,
		decision: decision,
	}
	ent.ix.Store(ix)
	if decision != nil {
		e.planned.Add(1)
		n := len(decision.Order)
		ent.obsLookups = make([]int64, n)
		ent.obsEmitted = make([]int64, n)
	}
	e.cache.add(ent)
	return ent, nil
}

// composePerm returns sigma with sigma[u] = invStored[permIncoming[u]]:
// incoming vertex -> canonical position -> stored query vertex.
func composePerm(invStored, permIncoming []int) []int {
	sigma := make([]int, len(permIncoming))
	for u, p := range permIncoming {
		sigma[u] = invStored[p]
	}
	return sigma
}

func invertPerm(perm []int) []int {
	inv := make([]int, len(perm))
	for v, p := range perm {
		inv[p] = v
	}
	return inv
}

func identityPerm(n int) []int {
	id := make([]int, n)
	for i := range id {
		id[i] = i
	}
	return id
}

// canonicalForm rebuilds q under its canonical numbering (perm from
// verify.CanonicalGraph, perm[orig] = canonical position). Isomorphic
// queries produce identical graphs, which is what makes shard-mode
// anchor and matching-order choices consistent fleet-wide.
func canonicalForm(q *graph.Graph, perm []int) (*graph.Graph, error) {
	n := q.NumVertices()
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		labels := q.Labels(graph.VertexID(v))
		cv := graph.VertexID(perm[v])
		b.SetLabel(cv, labels[0])
		for _, l := range labels[1:] {
			b.AddExtraLabel(cv, l)
		}
	}
	q.Edges(func(u, v graph.VertexID) bool {
		b.AddEdge(graph.VertexID(perm[u]), graph.VertexID(perm[v]))
		return true
	})
	return b.Build()
}

// containsVertex reports whether sorted holds v (binary search).
func containsVertex(sorted []graph.VertexID, v graph.VertexID) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == v
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
