package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"ceci/internal/obs"
	"ceci/internal/telemetry"
)

// TestParseQueryzFilters table-tests the /queryz URL filter parsing.
func TestParseQueryzFilters(t *testing.T) {
	cases := []struct {
		name    string
		query   string
		want    queryzFilters
		wantErr bool
	}{
		{name: "empty", query: "", want: queryzFilters{}},
		{name: "limit", query: "limit=5", want: queryzFilters{limit: 5}},
		{name: "limit zero", query: "limit=0", want: queryzFilters{}},
		{name: "limit negative", query: "limit=-1", wantErr: true},
		{name: "limit junk", query: "limit=abc", wantErr: true},
		{name: "limit float", query: "limit=2.5", wantErr: true},
		{name: "min_ms", query: "min_ms=2.5", want: queryzFilters{minMS: 2500 * time.Microsecond}},
		{name: "min_ms integer", query: "min_ms=10", want: queryzFilters{minMS: 10 * time.Millisecond}},
		{name: "min_ms zero", query: "min_ms=0", want: queryzFilters{}},
		{name: "min_ms negative", query: "min_ms=-3", wantErr: true},
		{name: "min_ms junk", query: "min_ms=fast", wantErr: true},
		{name: "min_ms nan", query: "min_ms=NaN", wantErr: true},
		{name: "min_ms inf", query: "min_ms=Inf", wantErr: true},
		{name: "both", query: "limit=3&min_ms=1",
			want: queryzFilters{limit: 3, minMS: time.Millisecond}},
		{name: "unrelated params ignored", query: "format=text&foo=bar", want: queryzFilters{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vals, err := url.ParseQuery(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			got, err := parseQueryzFilters(vals)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("parse %q: want error, got %+v", tc.query, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("parse %q: %v", tc.query, err)
			}
			if got != tc.want {
				t.Fatalf("parse %q = %+v, want %+v", tc.query, got, tc.want)
			}
		})
	}
}

// TestQueryzFilterApply checks the filters against record lists directly:
// min_ms drops fast queries, limit caps the list, order is preserved.
func TestQueryzFilterApply(t *testing.T) {
	recs := func() []obs.QueryRecord {
		return []obs.QueryRecord{
			{Seq: 1, TotalUS: 500},
			{Seq: 2, TotalUS: 4000},
			{Seq: 3, TotalUS: 12000},
			{Seq: 4, TotalUS: 900},
		}
	}
	got := queryzFilters{minMS: 2 * time.Millisecond}.apply(recs())
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Fatalf("min_ms filter = %+v", got)
	}
	got = queryzFilters{limit: 3}.apply(recs())
	if len(got) != 3 || got[0].Seq != 1 {
		t.Fatalf("limit filter = %+v", got)
	}
	got = queryzFilters{minMS: 2 * time.Millisecond, limit: 1}.apply(recs())
	if len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("combined filter = %+v", got)
	}
	if got = (queryzFilters{}).apply(nil); len(got) != 0 {
		t.Fatalf("empty filter on nil = %+v", got)
	}
}

// telemetryTestServer spins up the HTTP stack with a telemetry hub (not
// started: tests call Sample explicitly for determinism).
func telemetryTestServer(t *testing.T) (*httptest.Server, *Client, *telemetry.Hub) {
	t.Helper()
	hub := telemetry.NewHub(telemetry.Options{
		Resolutions: []telemetry.Resolution{{Step: 10 * time.Second, Len: 30}},
	})
	srv, client, _ := traceTestServer(t, Options{
		Telemetry: hub,
		Registry:  obs.NewRegistry(),
	})
	return srv, client, hub
}

// TestTelemetryEndToEnd drives the monitoring loop the README documents:
// queries flow into the hub, /statz serves SLO + class + series state in
// JSON and text, /dashz serves the dashboard, and /query responses carry
// a Server-Timing breakdown.
func TestTelemetryEndToEnd(t *testing.T) {
	srv, client, hub := telemetryTestServer(t)

	resp, err := client.Query(context.Background(), wireQuery(pathQuery(t, 1, 2, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.QueryHash == "" {
		t.Fatal("response missing query hash")
	}
	if _, err := client.Query(context.Background(), wireQuery(pathQuery(t, 2, 3))); err != nil {
		t.Fatal(err)
	}
	hub.Sample()

	// The flight record carries the resource ledger.
	qz, err := client.Queryz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(qz.Recent) != 2 {
		t.Fatalf("queryz recent = %d, want 2", len(qz.Recent))
	}
	res := qz.Recent[0].Resources
	if res == nil || res.Units <= 0 || res.CPUUS < 0 {
		t.Fatalf("flight record missing ledger: %+v", res)
	}

	// /statz JSON: classes and series populated, SLO healthy.
	body, ctype := httpGet(t, srv, "/statz")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("statz content type = %q", ctype)
	}
	var doc telemetry.Statz
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("statz JSON: %v\n%s", err, body)
	}
	if doc.Queries != 2 || doc.Errors != 0 {
		t.Fatalf("statz queries/errors = %d/%d", doc.Queries, doc.Errors)
	}
	if len(doc.Classes) != 2 {
		t.Fatalf("statz classes = %+v", doc.Classes)
	}
	seen := map[string]bool{}
	for _, c := range doc.Classes {
		seen[c.Hash] = true
		if c.Resources.Units <= 0 {
			t.Fatalf("class %s has no ledger charges: %+v", c.Hash, c)
		}
	}
	if !seen[resp.QueryHash] {
		t.Fatalf("statz classes %v missing query hash %s", doc.Classes, resp.QueryHash)
	}
	for _, name := range []string{"ledger_queries", "runtime_goroutines", "slo_latency_fast_burn"} {
		if _, ok := doc.Series[name]; !ok {
			t.Fatalf("statz series missing %q (have %d)", name, len(doc.Series))
		}
	}
	if doc.SLO.Latency.Breach || doc.SLO.Availability.Breach {
		t.Fatalf("healthy run must not breach: %+v", doc.SLO)
	}

	// /statz text form.
	body, ctype = httpGet(t, srv, "/statz?format=text")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("statz text content type = %q", ctype)
	}
	for _, want := range []string{"slo (", "query classes", resp.QueryHash} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("statz text missing %q:\n%s", want, body)
		}
	}

	// /dashz: the self-contained dashboard.
	body, ctype = httpGet(t, srv, "/dashz")
	if !strings.HasPrefix(ctype, "text/html") {
		t.Fatalf("dashz content type = %q", ctype)
	}
	for _, want := range []string{"<!doctype html>", "/statz", "svg"} {
		if !strings.Contains(strings.ToLower(string(body)), want) {
			t.Fatalf("dashz missing %q", want)
		}
	}

	// The SLO gauge source feeds the Prometheus exposition too.
	body, _ = httpGet(t, srv, "/metrics")
	if !strings.Contains(string(body), "ceci_slo_latency_breach 0") {
		t.Fatalf("prometheus exposition missing SLO gauges:\n%s", body)
	}
}

// TestQueryzFiltersHTTP exercises ?limit= and ?min_ms= through the HTTP
// surface, including the 400 on malformed values.
func TestQueryzFiltersHTTP(t *testing.T) {
	srv, client, _ := telemetryTestServer(t)
	for i := 0; i < 3; i++ {
		if _, err := client.Query(context.Background(), wireQuery(pathQuery(t, 1, 2, 3))); err != nil {
			t.Fatal(err)
		}
	}

	var qz QueryzResponse
	body, _ := httpGet(t, srv, "/queryz?limit=2")
	if err := json.Unmarshal(body, &qz); err != nil {
		t.Fatal(err)
	}
	if qz.Total != 3 || len(qz.Recent) != 2 {
		t.Fatalf("limit=2: total %d recent %d, want 3/2", qz.Total, len(qz.Recent))
	}

	// An impossibly high floor empties both lists but keeps the total.
	body, _ = httpGet(t, srv, "/queryz?min_ms=3600000")
	if err := json.Unmarshal(body, &qz); err != nil {
		t.Fatal(err)
	}
	if qz.Total != 3 || len(qz.Recent) != 0 || len(qz.Slowest) != 0 {
		t.Fatalf("min_ms floor: %+v", qz)
	}

	resp, err := srv.Client().Get(srv.URL + "/queryz?limit=-1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d, want 400", resp.StatusCode)
	}
}

// TestServerTimingHeader checks POST /query responses expose the phase
// breakdown and SLO state via Server-Timing.
func TestServerTimingHeader(t *testing.T) {
	srv, _, _ := telemetryTestServer(t)
	req := wireQuery(pathQuery(t, 1, 2, 3))
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/query", "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	st := resp.Header.Get("Server-Timing")
	for _, part := range []string{"queue;dur=", "build;dur=", "enum;dur=", "total;dur=", `slo;desc="ok"`} {
		if !strings.Contains(st, part) {
			t.Fatalf("Server-Timing %q missing %q", st, part)
		}
	}
}

// httpGet fetches a path from the test server, returning body and
// Content-Type.
func httpGet(t *testing.T, srv *httptest.Server, path string) ([]byte, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.Header.Get("Content-Type")
}
