package service

import (
	"context"
	"fmt"
	"testing"

	"ceci/internal/auto"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/verify"
)

// TestCacheBudgetNeverExceeded: property test — under a random add/get
// sequence the used-bytes total never exceeds the budget, and entries
// larger than the whole budget are rejected outright.
func TestCacheBudgetNeverExceeded(t *testing.T) {
	const budget = 10_000
	c := newCache(budget)
	rng := gen.NewRNG(7)
	keys := make([]string, 0, 64)
	for i := 0; i < 500; i++ {
		switch rng.Intn(3) {
		case 0, 1:
			key := fmt.Sprintf("k%d", i)
			size := int64(1 + rng.Intn(4000))
			c.add(&entry{key: key, bytes: size})
			keys = append(keys, key)
		case 2:
			if len(keys) > 0 {
				c.get(keys[rng.Intn(len(keys))])
			}
		}
		s := c.stats()
		if s.UsedBytes > budget {
			t.Fatalf("step %d: used %d bytes > budget %d", i, s.UsedBytes, budget)
		}
	}
	// Oversized entry: rejected, not partially admitted.
	before := c.stats()
	c.add(&entry{key: "huge", bytes: budget + 1})
	after := c.stats()
	if _, ok := c.get("huge"); ok {
		t.Fatal("entry larger than the budget was cached")
	}
	if after.Rejected != before.Rejected+1 {
		t.Errorf("rejected counter did not advance: %d -> %d", before.Rejected, after.Rejected)
	}
}

// TestCacheEvictsLRU: the least-recently-used entry goes first, and a
// get refreshes recency.
func TestCacheEvictsLRU(t *testing.T) {
	c := newCache(30)
	c.add(&entry{key: "a", bytes: 10})
	c.add(&entry{key: "b", bytes: 10})
	c.add(&entry{key: "c", bytes: 10})
	if _, ok := c.get("a"); !ok { // refresh a: b is now LRU
		t.Fatal("a missing")
	}
	c.add(&entry{key: "d", bytes: 10}) // must evict b
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction despite being LRU")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s evicted out of LRU order", k)
		}
	}
	if s := c.stats(); s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
}

// TestEvictionThenRebuildMatchesColdBuild: force evictions with a tiny
// byte budget, then re-run every query; each answer (rebuilt or cached)
// must equal the first answer bit-for-bit through the verify oracle.
func TestEvictionThenRebuildMatchesColdBuild(t *testing.T) {
	data := gen.WithRandomLabels(gen.ErdosRenyi(300, 1800, 5), 3, 17)
	// Budget fits roughly one index, so cycling through queries evicts.
	eng := New(data, Options{CacheBytes: 1 << 15, MaxLimit: 1 << 20})

	queries := []*graph.Graph{
		pathQuery(t, 0, 1),
		pathQuery(t, 1, 2),
		pathQuery(t, 2, 0, 1),
		pathQuery(t, 0, 2, 1),
	}
	first := make([][]string, len(queries))
	for i, q := range queries {
		resp, err := eng.Query(context.Background(), Request{Query: q})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		first[i] = verify.CanonicalSet(resp.Embeddings, auto.Compute(q))
	}
	for round := 0; round < 2; round++ {
		for i, q := range queries {
			resp, err := eng.Query(context.Background(), Request{Query: q})
			if err != nil {
				t.Fatalf("round %d query %d: %v", round, i, err)
			}
			got := verify.CanonicalSet(resp.Embeddings, auto.Compute(q))
			if len(got) != len(first[i]) {
				t.Fatalf("round %d query %d: %d embeddings, first run had %d", round, i, len(got), len(first[i]))
			}
			for j := range got {
				if got[j] != first[i][j] {
					t.Fatalf("round %d query %d: results drifted at %d", round, i, j)
				}
			}
		}
	}
	s := eng.CacheStats()
	if s.UsedBytes > s.BudgetBytes {
		t.Errorf("cache over budget: %d > %d", s.UsedBytes, s.BudgetBytes)
	}
	if s.Evictions == 0 && s.Rejected == 0 {
		t.Logf("note: no evictions triggered (indexes smaller than expected); stats=%+v", s)
	}
}
