package service

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientRetries429ThenSucceeds: load-shed responses are retried
// with backoff until the server admits the request.
func TestClientRetries429ThenSucceeds(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			http.Error(w, `{"error":"overloaded"}`, http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok"}`))
	}))
	t.Cleanup(srv.Close)

	cl := NewClient(srv.URL, nil)
	cl.SetRetry(4, 5*time.Millisecond, 50*time.Millisecond)
	h, err := cl.Healthz(context.Background())
	if err != nil {
		t.Fatalf("healthz after retries: %v", err)
	}
	if h.Status != "ok" {
		t.Fatalf("status %q", h.Status)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (two 429s + success)", got)
	}
}

// TestClientRetriesConnectionErrors: a server that is down when the
// request starts but comes up during the backoff window is reached by a
// later attempt — the shard-fleet startup pattern.
func TestClientRetriesConnectionErrors(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing is listening now

	var served atomic.Int64
	go func() {
		time.Sleep(100 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		http.Serve(ln2, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			served.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"status":"ok"}`))
		}))
	}()

	cl := NewClient("http://"+addr, nil)
	h, err := cl.Healthz(context.Background())
	if err != nil {
		t.Fatalf("healthz never reached the late server: %v", err)
	}
	if h.Status != "ok" || served.Load() == 0 {
		t.Fatalf("status %q served %d", h.Status, served.Load())
	}
}

// TestClientDoesNotRetryBadRequest: 4xx responses other than 429 are
// the caller's fault — exactly one attempt.
func TestClientDoesNotRetryBadRequest(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, `{"error":"bad query"}`, http.StatusBadRequest)
	}))
	t.Cleanup(srv.Close)

	cl := NewClient(srv.URL, nil)
	_, err := cl.Query(context.Background(), QueryRequest{Labels: []uint32{0}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1", got)
	}
}

// TestClientBackoffRespectsContext: retries stop when the caller's
// deadline fires mid-backoff; the last transport error is returned
// promptly instead of sleeping through the remaining attempts.
func TestClientBackoffRespectsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"overloaded"}`, http.StatusTooManyRequests)
	}))
	t.Cleanup(srv.Close)

	cl := NewClient(srv.URL, nil)
	cl.SetRetry(4, 200*time.Millisecond, time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	start := time.Now()
	_, err := cl.Healthz(ctx)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("want an error when every attempt is shed")
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want the 429 APIError", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("took %v; the deadline should cut the backoff short", elapsed)
	}
}
