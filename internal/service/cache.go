// Package service implements a long-running query engine over one
// resident data graph: a canonical-key LRU cache of built CECI indexes,
// admission control (bounded queue + worker semaphore + per-request
// deadlines), and an HTTP JSON API.
//
// The design follows directly from the paper's cost split: index
// construction (Section 3) is the per-query fixed cost — O(|E(g)|)
// traversal plus refinement — while enumeration (Section 4) is the
// variable cost. A server answering many queries against one data graph
// amortizes the fixed cost by caching frozen indexes keyed by query
// isomorphism class, so a repeated (or merely relabeled) query skips
// straight to enumeration.
package service

import (
	"container/list"
	"sync"
	"sync/atomic"

	icec "ceci/internal/ceci"
	"ceci/internal/graph"
	"ceci/internal/plan"
)

// entry is one cached, frozen index plus the bookkeeping required to
// serve isomorphic queries: invPerm maps canonical vertex positions back
// to the stored query's vertex ids, so a hit by a permuted twin can
// translate embeddings into the incoming query's numbering.
//
// ix is an atomic pointer because the adaptive planner may swap in a
// rebuilt index (new matching order) while queries are reading it;
// bytes is guarded by the owning cache's mutex once inserted.
type entry struct {
	key     string
	ix      atomic.Pointer[icec.Index]
	query   *graph.Graph // the stored query (its numbering indexes embeddings)
	invPerm []int        // canonical position -> stored query vertex
	// pivots restricts the index to owned embedding clusters (shard
	// mode; nil on single-node engines). Immutable after build; replans
	// must rebuild with the same restriction.
	pivots []graph.VertexID
	bytes  int64
	elem   *list.Element

	// Adaptive-planner state (Options.Planner): the planner that scored
	// this query class's orders, the decision currently executing, and
	// the observed per-depth selectivity accumulators folded in after
	// each query. All guarded by mu; planner itself is immutable.
	mu         sync.Mutex
	planner    *plan.Planner
	decision   *plan.Decision
	obsLookups []int64
	obsEmitted []int64
	obsQueries int64
	replanning bool
}

// resetObsLocked clears the selectivity accumulators after a re-plan
// adopted a new decision; callers hold e.mu.
func (e *entry) resetObsLocked() {
	for i := range e.obsLookups {
		e.obsLookups[i] = 0
		e.obsEmitted[i] = 0
	}
	e.obsQueries = 0
}

// CacheStats is a point-in-time snapshot of cache behavior, exposed at
// /cachez and as ceci_cache_* gauges.
type CacheStats struct {
	Entries     int   `json:"entries"`
	UsedBytes   int64 `json:"used_bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Rejected    int64 `json:"rejected"` // entries larger than the whole budget
}

// cache is an LRU over frozen indexes with a byte budget charged against
// Index.PhysicalBytes (the measured footprint of the flat arena index,
// PR 4), not an entry count: one huge query must not pin the budget
// worth of small ones.
type cache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List // front = most recently used; values are *entry
	byKey  map[string]*entry

	hits, misses, evictions, rejected int64
}

func newCache(budget int64) *cache {
	return &cache{budget: budget, lru: list.New(), byKey: make(map[string]*entry)}
}

// get returns the entry for key, promoting it to most-recently-used.
func (c *cache) get(key string) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(e.elem)
	return e, true
}

// add inserts e, evicting least-recently-used entries until the budget
// holds. An entry larger than the entire budget is not cached at all
// (the query still runs; it just pays the build every time). Re-adding
// an existing key keeps the incumbent — concurrent builders may race
// here and the first insert wins.
func (c *cache) add(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byKey[e.key]; ok {
		return
	}
	if e.bytes > c.budget {
		c.rejected++
		return
	}
	for c.used+e.bytes > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.byKey, victim.key)
		c.used -= victim.bytes
		c.evictions++
	}
	e.elem = c.lru.PushFront(e)
	c.byKey[e.key] = e
	c.used += e.bytes
}

// replace swaps ent's index for a rebuilt one (adaptive re-plan),
// adjusting the byte accounting and evicting LRU entries if the new
// index pushed the cache over budget. ent itself is never the victim —
// it was just used. Safe to call for entries no longer in the cache
// (evicted mid-replan): the index still swaps, only accounting is
// skipped.
func (c *cache) replace(ent *entry, ix *icec.Index, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent.ix.Store(ix)
	if cur, ok := c.byKey[ent.key]; !ok || cur != ent {
		return
	}
	c.used += bytes - ent.bytes
	ent.bytes = bytes
	c.lru.MoveToFront(ent.elem)
	for c.used > c.budget {
		back := c.lru.Back()
		if back == nil || back.Value.(*entry) == ent {
			break
		}
		victim := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.byKey, victim.key)
		c.used -= victim.bytes
		c.evictions++
	}
}

// stats snapshots the counters.
func (c *cache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:     len(c.byKey),
		UsedBytes:   c.used,
		BudgetBytes: c.budget,
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Rejected:    c.rejected,
	}
}
