package service

import (
	"context"
	"testing"

	"ceci/internal/gen"
	"ceci/internal/plan"
	"ceci/internal/verify"
)

// TestPlannerDifferential: the adaptive planner must never change the
// answer — for a sweep of seeded pairs, a planner engine and a static
// (default-order) engine report identical counts.
func TestPlannerDifferential(t *testing.T) {
	for _, seed := range []int64{1, 7, 13, 42} {
		data, query := gen.RandomPair(seed)
		static := New(data, Options{Workers: 2})
		planned := New(data, Options{Workers: 2, Planner: true})

		req := Request{Query: query, CountOnly: true}
		rs, err := static.Query(context.Background(), req)
		if err != nil {
			t.Fatalf("seed %d static: %v", seed, err)
		}
		rp, err := planned.Query(context.Background(), req)
		if err != nil {
			t.Fatalf("seed %d planner: %v", seed, err)
		}
		if rs.Count != rp.Count {
			t.Fatalf("seed %d: planner count %d != static %d", seed, rp.Count, rs.Count)
		}
		if planned.planned.Load() != 1 {
			t.Fatalf("seed %d: planned gauge = %d, want 1", seed, planned.planned.Load())
		}
	}
}

// TestPlannerDriftReplans: injected drift on a cached plan must
// deterministically trigger a re-plan on the next cache-hit query —
// the estimate is tampered down so the observed (calibrated) cost of
// the running order reads as a PlannerDrift× overshoot.
func TestPlannerDriftReplans(t *testing.T) {
	data, query := gen.RandomPair(42)
	e := New(data, Options{Workers: 1, Planner: true, PlannerMinQueries: 1, PlannerDrift: 2})
	ctx := context.Background()

	r1, err := e.Query(ctx, Request{Query: query, CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Count == 0 {
		t.Fatal("fixture has no embeddings; drift needs observed lookups")
	}
	if got := e.driftChecks.Load(); got != 1 {
		t.Fatalf("drift checks after first query = %d, want 1 (min-queries met)", got)
	}
	if got := e.recosts.Load() + e.replans.Load(); got != 0 {
		t.Fatalf("re-planned without drift: recosts+replans = %d", got)
	}

	key, _ := verify.CanonicalGraph(query)
	ent, ok := e.cache.get(key)
	if !ok {
		t.Fatal("entry not cached")
	}
	// Inject drift: shrink the cached estimate so the next observation
	// reads the (unchanged) true cost as a huge overshoot.
	ent.mu.Lock()
	tampered := *ent.decision
	tampered.Estimate = 1e-9
	ent.decision = &tampered
	ent.mu.Unlock()

	r2, err := e.Query(ctx, Request{Query: query, CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("second query missed the cache")
	}
	if got := e.driftChecks.Load(); got != 2 {
		t.Fatalf("drift checks = %d, want 2", got)
	}
	if got := e.recosts.Load() + e.replans.Load(); got != 1 {
		t.Fatalf("recosts+replans = %d, want exactly 1", got)
	}
	ent.mu.Lock()
	dec := ent.decision
	obsQ := ent.obsQueries
	ent.mu.Unlock()
	if !dec.Calibrated {
		t.Fatal("post-drift decision not calibrated")
	}
	if dec.Estimate == tampered.Estimate {
		t.Fatal("re-plan did not refresh the estimate")
	}
	if obsQ != 0 {
		t.Fatalf("accumulators not reset after re-plan: obsQueries = %d", obsQ)
	}

	r3, err := e.Query(ctx, Request{Query: query, CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Count != r1.Count {
		t.Fatalf("count changed across re-plan: %d vs %d", r3.Count, r1.Count)
	}
}

// TestPlannerDriftRebuild: when the tampered running order is NOT the
// calibrated winner, drift must rebuild the index under the winning
// order and swap it into the cache — the full adaptive path.
func TestPlannerDriftRebuild(t *testing.T) {
	data, query := gen.RandomPair(42)
	e := New(data, Options{Workers: 1, Planner: true, PlannerMinQueries: 1, PlannerDrift: 2})
	ctx := context.Background()

	r1, err := e.Query(ctx, Request{Query: query, CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	key, _ := verify.CanonicalGraph(query)
	ent, _ := e.cache.get(key)

	// Pretend a worse candidate order is the one running: point the
	// cached decision at a non-chosen candidate with a tiny estimate.
	// The calibrated winner differs, so drift must take the rebuild
	// path, not the recost shortcut.
	ent.mu.Lock()
	var alt *plan.Candidate
	for i := range ent.decision.Candidates {
		c := &ent.decision.Candidates[i]
		if !sameOrder(c.Order, ent.decision.Order) {
			alt = c
			break
		}
	}
	if alt == nil {
		ent.mu.Unlock()
		t.Skip("fixture has only one distinct candidate order")
	}
	// Keep the original PerDepth so the calibration ratios stay close to
	// 1 and the calibrated winner remains the true cheapest order.
	tampered := *ent.decision
	tampered.Chosen = alt.Name
	tampered.Order = alt.Order
	tampered.Estimate = 1e-9
	ent.decision = &tampered
	ent.mu.Unlock()
	buildsBefore := e.Builds()

	if _, err := e.Query(ctx, Request{Query: query, CountOnly: true}); err != nil {
		t.Fatal(err)
	}
	if got := e.replans.Load(); got != 1 {
		t.Fatalf("replans = %d, want 1 (recosts = %d)", got, e.recosts.Load())
	}
	if got := e.Builds(); got != buildsBefore+1 {
		t.Fatalf("builds = %d, want %d (rebuild under the new order)", got, buildsBefore+1)
	}
	ent.mu.Lock()
	installed := ent.decision.Order
	ent.mu.Unlock()
	if sameOrder(installed, alt.Order) {
		t.Fatal("re-plan kept the tampered order")
	}
	if got := ent.ix.Load().Tree; !sameOrder(got.Order, installed) {
		t.Fatalf("swapped index order %v != decision order %v", got.Order, installed)
	}

	r2, err := e.Query(ctx, Request{Query: query, CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Count != r1.Count {
		t.Fatalf("count changed across rebuild: %d vs %d", r2.Count, r1.Count)
	}
	// Byte accounting followed the swap.
	if s := e.CacheStats(); s.UsedBytes != ent.bytes {
		t.Fatalf("cache used %d != entry bytes %d", s.UsedBytes, ent.bytes)
	}
}
