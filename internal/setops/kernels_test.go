package setops_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"ceci/internal/setops"

	"ceci/internal/bitset"
)

// naiveIntersect is the reference oracle every kernel is checked against:
// the simplest possible two-pointer walk, no unrolling, no skipping.
func naiveIntersect(a, b []uint32) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

var allKernels = []setops.Kernel{setops.KernelMerge, setops.KernelGallop, setops.KernelBitset, setops.KernelProbe}

// checkAllKernels asserts that every kernel produces exactly the
// reference intersection for (a, b) — both materializing and size-only,
// both with and without a scratch — and that the recorded stats are
// attributed to the kernel that ran.
func checkAllKernels(t *testing.T, a, b []uint32) {
	t.Helper()
	want := naiveIntersect(a, b)
	for _, k := range allKernels {
		got := setops.IntersectWith(k, nil, a, b, nil)
		if !equal(got, want) {
			t.Fatalf("kernel %v: got %v want %v\na=%v\nb=%v", k, got, want, a, b)
		}
		if n := setops.IntersectionSizeWith(k, a, b, nil); n != len(want) {
			t.Fatalf("kernel %v size: got %d want %d\na=%v\nb=%v", k, n, len(want), a, b)
		}
		var sc setops.Scratch
		got = setops.IntersectWith(k, nil, a, b, &sc)
		if !equal(got, want) {
			t.Fatalf("kernel %v (scratch): got %v want %v", k, got, want)
		}
		if len(a) > 0 && len(b) > 0 {
			if sc.Stats.Calls[k] != 1 {
				t.Fatalf("kernel %v: stats recorded under wrong kernel: %+v", k, sc.Stats)
			}
			if sc.Stats.Emitted[k] != int64(len(want)) {
				t.Fatalf("kernel %v: emitted %d want %d", k, sc.Stats.Emitted[k], len(want))
			}
		}
	}
}

func TestKernelDifferentialOracleRandom(t *testing.T) {
	f := func(a, b sortedSet) bool {
		want := naiveIntersect(a, b)
		for _, k := range allKernels {
			if !equal(setops.IntersectWith(k, nil, a, b, nil), want) {
				return false
			}
			if setops.IntersectionSizeWith(k, a, b, nil) != len(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// ramp returns {start, start+step, start+2*step, ...} of length n.
func ramp(start, step uint32, n int) []uint32 {
	out := make([]uint32, n)
	v := start
	for i := range out {
		out[i] = v
		v += step
	}
	return out
}

// TestKernelAdversarialShapes drives every kernel through the shapes that
// historically break intersection kernels: empties, singletons, identical
// lists, disjoint ranges, extreme skew, dense runs straddling 64-bit word
// and 4096-value chunk boundaries, and values at the top of the uint32
// range (where window arithmetic can wrap).
func TestKernelAdversarialShapes(t *testing.T) {
	const chunk = bitset.ChunkBits
	cases := []struct {
		name string
		a, b []uint32
	}{
		{"both empty", nil, nil},
		{"one empty", nil, []uint32{1, 2, 3}},
		{"singletons hit", []uint32{7}, []uint32{7}},
		{"singletons miss", []uint32{7}, []uint32{8}},
		{"singleton vs huge", []uint32{5000}, ramp(0, 1, 20000)},
		{"identical lists", ramp(3, 5, 1000), ramp(3, 5, 1000)},
		{"disjoint low/high", ramp(0, 1, 500), ramp(100000, 1, 500)},
		{"interleaved no overlap", ramp(0, 2, 1000), ramp(1, 2, 1000)},
		{"1:10000 skew", []uint32{0, 9999, 50000, 99990}, ramp(0, 1, 100000)},
		{"skew misses between runs", []uint32{10, 20, 30}, ramp(1000, 3, 40000)},
		{"dense straddling word boundary", ramp(60, 1, 10), ramp(62, 1, 10)},
		{"dense at word edges", []uint32{63, 64, 127, 128, 191, 192}, []uint32{64, 128, 192}},
		{"dense straddling chunk boundary", ramp(chunk-32, 1, 64), ramp(chunk-16, 1, 64)},
		{"chunk-aligned heads", ramp(chunk, 1, 100), ramp(2*chunk, 1, 100)},
		{"sparse across many chunks", ramp(0, chunk, 64), ramp(0, chunk/2, 128)},
		{"gap skips whole chunks", append(ramp(0, 1, 16), ramp(100*chunk, 1, 16)...), append(ramp(8, 1, 16), ramp(100*chunk+8, 1, 16)...)},
		{"top of uint32 range", ramp(1<<32-100, 1, 100), ramp(1<<32-50, 1, 50)},
		{"last value is MaxUint32", []uint32{1<<32 - 1}, ramp(1<<32-chunk, 7, chunk/7)},
		{"wrap probe: huge jump after dense", append(ramp(0, 1, 64), 1<<32-2, 1<<32-1), append(ramp(32, 1, 64), 1<<32-1)},
		{"run lengths 1..5 mixed", []uint32{1, 2, 3, 10, 11, 40, 41, 42, 43, 44, 90}, []uint32{2, 3, 4, 11, 12, 13, 42, 43, 90, 91}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkAllKernels(t, tc.a, tc.b)
			checkAllKernels(t, tc.b, tc.a)
		})
	}
}

// TestChooseKernelBreakpoints pins the selector's decision at each
// cardinality-ratio and density breakpoint so a future threshold change
// must be made (and benchmarked) deliberately.
func TestChooseKernelBreakpoints(t *testing.T) {
	// Sparse lists: step 100 ≫ bitsetMaxGap keeps density out of play.
	sparse := func(n int) []uint32 { return ramp(0, 100, n) }
	// Dense lists: step 1 is maximal density.
	dense := func(n int) []uint32 { return ramp(0, 1, n) }
	cases := []struct {
		name string
		a, b []uint32
		want setops.Kernel
	}{
		{"empty a", nil, sparse(10), setops.KernelMerge},
		{"empty both", nil, nil, setops.KernelMerge},
		// Gap 100 is too sparse for bitset but well inside the probe
		// kernel's 512-gap window.
		{"equal sizes gap 100", sparse(100), sparse(100), setops.KernelProbe},
		{"ratio 15 gap 100", sparse(10), sparse(150), setops.KernelProbe},
		{"ratio 16 sparse", sparse(10), sparse(160), setops.KernelGallop},
		{"ratio 16 reversed", sparse(160), sparse(10), setops.KernelGallop},
		{"ratio 1000", sparse(4), sparse(4000), setops.KernelGallop},
		// Density breakpoint: span <= (len(a)+len(b))*8 chooses bitset.
		// 2×1000 elements, avg gap 4 → span 4000 <= 16000.
		{"dense equal sizes", dense(1000), ramp(0, 4, 1000), setops.KernelBitset},
		// Interleaved lists with combined avg gap 8: span 15993 <= 16000.
		{"gap exactly 8", ramp(0, 16, 1000), ramp(8, 16, 1000), setops.KernelBitset},
		// Just past the bitset threshold: combined span 16992 > 16000,
		// but gap 17 is still far inside the probe window.
		{"gap just past 8", ramp(0, 17, 1000), ramp(8, 17, 1000), setops.KernelProbe},
		// Probe breakpoint: span(a) <= (len(a)+len(b))*512 chooses probe.
		// 999*1024 = 1022976 <= 2000*512 = 1024000.
		{"gap just under 512", ramp(0, 1024, 1000), ramp(500, 1024, 1000), setops.KernelProbe},
		// 999*1026 = 1024974 > 1024000: past the probe window, merge.
		{"gap just past 512", ramp(0, 1026, 1000), ramp(500, 1026, 1000), setops.KernelMerge},
		// Skew wins over density: a dense pair at ratio >= 16 still gallops
		// (probing 10 values beats building 64-word windows).
		{"dense but skewed", dense(10), dense(160), setops.KernelGallop},
		// Disjoint dense runs: the combined span is huge (no bitset), but
		// the smaller list alone is dense, so the probe kernel fires — it
		// gallops the big list to the (empty) overlap and exits early.
		{"disjoint dense runs", dense(100), ramp(1<<20, 1, 100), setops.KernelProbe},
		{"singleton vs singleton", []uint32{3}, []uint32{9}, setops.KernelBitset},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := setops.ChooseKernel(tc.a, tc.b); got != tc.want {
				t.Fatalf("ChooseKernel = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestKernelStringNames(t *testing.T) {
	names := map[setops.Kernel]string{
		setops.KernelMerge:  "merge",
		setops.KernelGallop: "gallop",
		setops.KernelBitset: "bitset",
		setops.KernelProbe:  "probe",
		setops.Kernel(99):   "unknown",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Fatalf("Kernel(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// TestKernelStatsDeterministic asserts the work counters are pure
// functions of the inputs: two identical runs record identical deltas,
// and Sub/TotalScanned behave arithmetically.
func TestKernelStatsDeterministic(t *testing.T) {
	lists := [][]uint32{ramp(0, 3, 2000), ramp(0, 2, 3000), ramp(0, 7, 500)}
	var sc setops.Scratch
	before := sc.Stats
	setops.IntersectK(&sc, lists)
	d1 := sc.Stats.Sub(before)

	before = sc.Stats
	setops.IntersectK(&sc, lists)
	d2 := sc.Stats.Sub(before)

	if d1 != d2 {
		t.Fatalf("identical runs recorded different stats:\n%+v\n%+v", d1, d2)
	}
	if d1.TotalScanned() == 0 {
		t.Fatal("no scanned work recorded")
	}
	var calls int64
	for k := 0; k < setops.NumKernels; k++ {
		calls += d1.Calls[k]
	}
	if calls != 2 { // 3 lists → 2 pairwise intersections
		t.Fatalf("recorded %d calls, want 2", calls)
	}
}

// TestKernelScratchRace runs 8 workers, each reusing one Scratch across
// many distinct "queries" (list pairs chosen to hit all four kernels,
// including the chunk builders and span bitmap the bitset and probe
// paths reuse), and checks every
// result against the reference. Under -race this proves per-worker
// scratch reuse never leaks state across queries or workers.
func TestKernelScratchRace(t *testing.T) {
	type query struct {
		a, b []uint32
		want []uint32
	}
	rng := rand.New(rand.NewSource(42))
	queries := make([]query, 48)
	for i := range queries {
		var a, b []uint32
		switch i % 4 {
		case 0: // dense → bitset
			a = ramp(uint32(rng.Intn(1000)), 1+uint32(rng.Intn(3)), 500+rng.Intn(1500))
			b = ramp(uint32(rng.Intn(1000)), 1+uint32(rng.Intn(3)), 500+rng.Intn(1500))
		case 1: // skewed → gallop
			a = ramp(uint32(rng.Intn(100)), 17, 30+rng.Intn(50))
			b = ramp(0, 1, 40000)
		case 2: // clustered gap ~100 → probe (reuses the span bitmap)
			a = ramp(uint32(rng.Intn(100)), 97, 1000)
			b = ramp(uint32(rng.Intn(100)), 101, 1000)
		default: // wide-span sparse → merge
			a = ramp(uint32(rng.Intn(100)), 2000, 1000)
			b = ramp(uint32(rng.Intn(100)), 2003, 1000)
		}
		queries[i] = query{a, b, naiveIntersect(a, b)}
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sc setops.Scratch
			for iter := 0; iter < 50; iter++ {
				q := queries[(w*31+iter)%len(queries)]
				got := setops.IntersectK(&sc, [][]uint32{q.a, q.b})
				if !equal(got, q.want) {
					errs <- fmt.Errorf("worker %d iter %d: got %d elems want %d", w, iter, len(got), len(q.want))
					return
				}
				k := setops.ChooseKernel(q.a, q.b)
				if n := setops.IntersectionSizeWith(k, q.a, q.b, &sc); n != len(q.want) {
					errs <- fmt.Errorf("worker %d iter %d: size %d want %d", w, iter, n, len(q.want))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestIntersectAdaptiveAgreement checks the public adaptive entry points
// agree with the oracle regardless of which kernel the selector picked.
func TestIntersectAdaptiveAgreement(t *testing.T) {
	f := func(a, b sortedSet) bool {
		want := naiveIntersect(a, b)
		return equal(setops.Intersect(nil, a, b), want) &&
			setops.IntersectionSize(a, b) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKernelMergeBalanced(b *testing.B) {
	x := ramp(0, 97, 4096)
	y := ramp(50, 101, 4096)
	benchKernel(b, setops.KernelMerge, x, y)
}

func BenchmarkKernelGallopSkewed(b *testing.B) {
	x := ramp(0, 1017, 256)
	y := ramp(0, 3, 100000)
	benchKernel(b, setops.KernelGallop, x, y)
}

func BenchmarkKernelBitsetDense(b *testing.B) {
	x := ramp(0, 2, 8192)
	y := ramp(1, 3, 8192)
	benchKernel(b, setops.KernelBitset, x, y)
}

func BenchmarkKernelProbeClustered(b *testing.B) {
	x := ramp(0, 97, 4096)
	y := ramp(50, 101, 4096)
	benchKernel(b, setops.KernelProbe, x, y)
}

func BenchmarkKernelAdaptive(b *testing.B) {
	x := ramp(0, 2, 8192)
	y := ramp(1, 3, 8192)
	var sc setops.Scratch
	var dst []uint32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = setops.IntersectWith(setops.ChooseKernel(x, y), dst[:0], x, y, &sc)
	}
	sinkLen = len(dst)
}

var sinkLen int

func benchKernel(b *testing.B, k setops.Kernel, x, y []uint32) {
	var sc setops.Scratch
	var dst []uint32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = setops.IntersectWith(k, dst[:0], x, y, &sc)
	}
	sinkLen = len(dst)
}
