package setops_test

import (
	"slices"
	"testing"
	"testing/quick"

	"ceci/internal/setops"
)

// These tests pin the package's aliasing contract:
//
//   - Intersect: dst = a[:0] and dst = b[:0] are supported for every
//     kernel (writes never pass the read cursor).
//   - Diff: dst = a[:0] is supported; dst = b[:0] is detected and b is
//     copied first.
//   - Union: both rewound forms are detected and the aliased input is
//     copied first (the union outgrows its inputs, so in-place writes
//     would clobber unread elements).
//
// Each property test clones the inputs up front so the oracle sees the
// pre-call values even after the operation scribbles over the shared
// backing array.

func TestIntersectAliasDstA(t *testing.T) {
	f := func(a, b sortedSet) bool {
		orig := slices.Clone([]uint32(a))
		want := naiveIntersect(orig, b)
		got := setops.Intersect(a[:0], a, b)
		return equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectAliasDstB(t *testing.T) {
	f := func(a, b sortedSet) bool {
		orig := slices.Clone([]uint32(b))
		want := naiveIntersect(a, orig)
		got := setops.Intersect(b[:0], a, b)
		return equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestIntersectAliasEveryKernel forces each kernel individually through
// both rewound-alias forms on shapes that exercise its skip logic, so the
// write-cursor-behind-read-cursor invariant is proven per kernel rather
// than only for whatever the selector happens to pick.
func TestIntersectAliasEveryKernel(t *testing.T) {
	shapes := [][2][]uint32{
		{ramp(0, 1, 3000), ramp(1500, 1, 3000)},            // dense, half-overlap
		{ramp(0, 3, 5000), ramp(0, 7, 5000)},               // moderate density
		{ramp(0, 211, 40), ramp(0, 1, 8000)},               // 1:200 skew
		{ramp(0, 1, 64), ramp(0, 1, 64)},                   // identical
		{ramp(0, 1, 100), ramp(1<<20, 1, 100)},             // disjoint
		{ramp(1<<32-200, 1, 200), ramp(1<<32-100, 1, 100)}, // top of range
	}
	for _, k := range allKernels {
		for si, s := range shapes {
			a, b := s[0], s[1]
			want := naiveIntersect(a, b)

			aa := slices.Clone(a)
			if got := setops.IntersectWith(k, aa[:0], aa, b, nil); !equal(got, want) {
				t.Fatalf("kernel %v shape %d dst=a[:0]: got %d elems want %d", k, si, len(got), len(want))
			}
			bb := slices.Clone(b)
			if got := setops.IntersectWith(k, bb[:0], a, bb, nil); !equal(got, want) {
				t.Fatalf("kernel %v shape %d dst=b[:0]: got %d elems want %d", k, si, len(got), len(want))
			}
		}
	}
}

func TestDiffAliasDstA(t *testing.T) {
	f := func(a, b sortedSet) bool {
		orig := slices.Clone([]uint32(a))
		want := setops.Diff(nil, orig, b)
		got := setops.Diff(a[:0], a, b)
		return equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDiffAliasDstB(t *testing.T) {
	f := func(a, b sortedSet) bool {
		orig := slices.Clone([]uint32(b))
		want := setops.Diff(nil, a, orig)
		got := setops.Diff(b[:0], a, b)
		return equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionAliasDstA(t *testing.T) {
	f := func(a, b sortedSet) bool {
		orig := slices.Clone([]uint32(a))
		want := mapUnion(orig, b)
		got := setops.Union(a[:0], a, b)
		return equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionAliasDstB(t *testing.T) {
	f := func(a, b sortedSet) bool {
		orig := slices.Clone([]uint32(b))
		want := mapUnion(a, orig)
		got := setops.Union(b[:0], a, b)
		return equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestUnionAliasWouldClobber is the concrete regression shape: without
// the copy-on-alias guard, the first write dst[0] = b[0] lands in a[0]
// before a[0] is read (b[0] < a[0]), corrupting the rest of the merge.
func TestUnionAliasWouldClobber(t *testing.T) {
	a := []uint32{10, 11, 12, 13}
	b := []uint32{1, 2, 3, 4}
	got := setops.Union(a[:0], a, b)
	want := []uint32{1, 2, 3, 4, 10, 11, 12, 13}
	if !equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// TestDiffAliasWouldClobber: dst = b[:0] with a's elements sorting below
// b's means writes to b's array precede the reads that skip them.
func TestDiffAliasWouldClobber(t *testing.T) {
	a := []uint32{1, 2, 3, 4, 5}
	b := []uint32{4, 5, 6}
	got := setops.Diff(b[:0], a, b)
	want := []uint32{1, 2, 3}
	if !equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// TestIntersectKAliasFirstList: IntersectK's documented contract is that
// the result may alias lists[0] only when k == 1; with k >= 2 the result
// lives in the scratch buffers and the inputs are untouched.
func TestIntersectKAliasInputsUntouched(t *testing.T) {
	a := ramp(0, 2, 100)
	b := ramp(0, 3, 100)
	ac, bc := slices.Clone(a), slices.Clone(b)
	var sc setops.Scratch
	setops.IntersectK(&sc, [][]uint32{a, b})
	if !equal(a, ac) || !equal(b, bc) {
		t.Fatal("IntersectK mutated its inputs")
	}
}
