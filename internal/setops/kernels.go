package setops

import (
	"math"
	"math/bits"

	"ceci/internal/bitset"
)

// Kernel identifies one of the adaptive intersection kernels. Every
// kernel computes exactly the same strictly-increasing intersection; they
// differ only in cost shape, and ChooseKernel picks the cheapest from
// O(1) statistics of the inputs.
type Kernel uint8

const (
	// KernelMerge is the classic two-cursor linear merge: the fallback
	// for similarly sized lists spread over a wide value range, where
	// neither probing nor bitmap materialization pays for itself.
	KernelMerge Kernel = iota
	// KernelGallop probes each element of the smaller list into the
	// larger by exponential search plus binary refinement; it wins when
	// the size ratio is heavily skewed.
	KernelGallop
	// KernelBitset materializes both lists 4096 values at a time into
	// word-packed chunks and ANDs them word-parallel; it wins when the
	// lists are dense over their value span (average gap <= 8).
	KernelBitset
	// KernelProbe materializes the smaller list into a span-offset
	// bitmap (bitset.Span), then tests the larger list's overlapping
	// range against it — one load-shift-mask per probe instead of the
	// merge's unpredictable cursor branch. It wins on the locally
	// clustered, moderately sparse lists a frozen CECI index produces.
	KernelProbe

	// NumKernels is the number of distinct kernels (array sizing).
	NumKernels = 4
)

// String returns the kernel's short name.
func (k Kernel) String() string {
	switch k {
	case KernelMerge:
		return "merge"
	case KernelGallop:
		return "gallop"
	case KernelBitset:
		return "bitset"
	case KernelProbe:
		return "probe"
	}
	return "unknown"
}

// Selection thresholds. gallopRatio is the size disparity beyond which
// probing the smaller list into the larger beats merging — 16 follows the
// classic adaptive set-intersection literature and measured well here.
// bitsetMaxGap is the largest average value gap at which the chunked
// bitset kernel beats everything else: at gap <= 8 a 64-bit word holds
// >= 8 candidates, so two fills plus one AND per word touch fewer cache
// lines than any per-element walk. probeMaxGap is the largest ratio of
// the smaller list's value span to the combined length at which the
// span-bitmap probe wins: the bitmap costs one memclr of span/8 bytes
// plus one bit-set per element, and memclr retires cache-line-at-a-time,
// so the overhead stays small relative to the branchy merge up to an
// average gap of 512; beyond that, sweeping mostly-empty bitmap words
// costs more than the merge's linear walk.
const (
	gallopRatio  = 16
	bitsetMaxGap = 8
	probeMaxGap  = 512
)

// ChooseKernel picks the cheapest kernel for a ∩ b using only O(1)
// statistics of the sorted inputs: the two lengths and the value spans.
// On frozen CECI indexes these are exactly the cardinality-column stats
// (list length) plus the first/last entries of the arena views, so the
// per-call selection costs a handful of compares. Selection order:
// skewed sizes gallop; dense combined spans bitset; locally clustered
// small-side spans probe; everything else merges.
func ChooseKernel(a, b []uint32) Kernel {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return KernelMerge // trivially empty; merge exits immediately
	}
	if len(b) >= gallopRatio*len(a) {
		return KernelGallop
	}
	lo, hi := a[0], a[len(a)-1]
	if b[0] < lo {
		lo = b[0]
	}
	if bl := b[len(b)-1]; bl > hi {
		hi = bl
	}
	if uint64(hi-lo)+1 <= uint64(len(a)+len(b))*bitsetMaxGap {
		return KernelBitset
	}
	// The probe bitmap only spans the smaller list's value range (the
	// larger list is probed, not materialized), so this gate is on a's
	// span alone.
	if uint64(a[len(a)-1]-a[0]) <= uint64(len(a)+len(b))*probeMaxGap {
		return KernelProbe
	}
	return KernelMerge
}

// intersectMerge is the classic two-cursor merge. Branch-reduced and
// 4-way block-skip variants were benchmarked against it on the list
// shapes the enumeration actually produces and lost: the select-style
// cursor advance compiles to more branches than the three-way switch on
// this toolchain, and the shapes that would reward block-skipping are
// routed to the gallop or probe kernels by ChooseKernel instead (see
// DESIGN.md). Returns the result and the number of elements examined.
func intersectMerge(dst, a, b []uint32) ([]uint32, int) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			dst = append(dst, x)
			i++
			j++
		}
	}
	return dst, i + j
}

// mergeCount is the counting twin of intersectMerge.
func mergeCount(a, b []uint32) (n, scanned int) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n, i + j
}

// intersectGallop probes each element of small into large by exponential
// search. The scanned count is the final cursor position in large plus
// one visit per element of small — derived after the fact rather than by
// instrumenting the search loops, so profiling costs nothing on the hot
// path. Returns the result and that scanned count.
func intersectGallop(dst, small, large []uint32) ([]uint32, int) {
	lo := 0
	for _, x := range small {
		lo = gallop(large, lo, x)
		if lo == len(large) {
			break
		}
		if large[lo] == x {
			dst = append(dst, x)
			lo++
		}
	}
	return dst, lo + len(small)
}

// gallopCount is the counting twin of intersectGallop.
func gallopCount(small, large []uint32) (n, scanned int) {
	lo := 0
	for _, x := range small {
		lo = gallop(large, lo, x)
		if lo == len(large) {
			break
		}
		if large[lo] == x {
			n++
			lo++
		}
	}
	return n, lo + len(small)
}

// gallop returns the smallest index i >= lo with large[i] >= x, using
// exponential probing followed by binary search.
func gallop(large []uint32, lo int, x uint32) int {
	n := len(large)
	if lo >= n || large[lo] >= x {
		return lo
	}
	step := 1
	hi := lo + 1
	for hi < n && large[hi] < x {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > n {
		hi = n
	}
	// binary search in (lo, hi]
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if large[mid] < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// intersectProbe fills the smaller list a into the span bitmap sp (Fill
// includes the clear of the previous window), gallops the larger list to
// the overlap region [a[0], a[last]], then tests each element of that
// region against the bitmap. Emission follows b's order, so the output
// is sorted. Returns the result and the number of elements examined.
//
// dst may alias a (a is fully consumed into the bitmap before the first
// write) or b (the write cursor never passes the read cursor).
func intersectProbe(dst, a, b []uint32, sp *bitset.Span) ([]uint32, int) {
	sp.Fill(a)
	j := gallop(b, 0, a[0])
	end := a[len(a)-1]
	jend := len(b)
	if end != math.MaxUint32 {
		jend = gallop(b, j, end+1)
	}
	for _, x := range b[j:jend] {
		if sp.Test(x) {
			dst = append(dst, x)
		}
	}
	return dst, len(a) + (jend - j)
}

// probeCount is the counting twin of intersectProbe.
func probeCount(a, b []uint32, sp *bitset.Span) (n, scanned int) {
	sp.Fill(a)
	j := gallop(b, 0, a[0])
	end := a[len(a)-1]
	jend := len(b)
	if end != math.MaxUint32 {
		jend = gallop(b, j, end+1)
	}
	for _, x := range b[j:jend] {
		if sp.Test(x) {
			n++
		}
	}
	return n, len(a) + (jend - j)
}

// intersectBitset is the chunked word-parallel kernel: both lists are
// materialized 4096 values at a time into the two chunk builders, the 64
// words are ANDed, and survivors are re-emitted by trailing-zero scans.
// Windows outside both lists' current heads are skipped entirely, so
// disjoint ranges cost one compare per list run. Returns the result and
// the number of elements plus words examined.
func intersectBitset(dst, a, b []uint32, ca, cb *bitset.ChunkBuilder) ([]uint32, int) {
	scanned := 0
	for len(a) > 0 && len(b) > 0 {
		// Align the window to the larger of the two heads: values below
		// it in either list cannot match and are skipped wholesale.
		base := a[0]
		if b[0] > base {
			base = b[0]
		}
		base &^= bitset.ChunkBits - 1
		for len(a) > 0 && a[0] < base {
			a = a[1:]
			scanned++
		}
		for len(b) > 0 && b[0] < base {
			b = b[1:]
			scanned++
		}
		if len(a) == 0 || len(b) == 0 {
			break
		}
		// 64-bit window end: base near 1<<32 must not wrap.
		if end := uint64(base) + bitset.ChunkBits; uint64(a[0]) >= end || uint64(b[0]) >= end {
			continue // heads diverged past the window; realign
		}
		na := ca.Fill(a, base)
		nb := cb.Fill(b, base)
		scanned += na + nb
		for w := range ca.Words {
			m := ca.Words[w] & cb.Words[w]
			for m != 0 {
				t := bits.TrailingZeros64(m)
				dst = append(dst, base+uint32(w<<6+t))
				m &= m - 1
			}
		}
		scanned += len(ca.Words)
		a = a[na:]
		b = b[nb:]
	}
	return dst, scanned
}

// bitsetCount is the counting twin of intersectBitset: one popcount per
// ANDed word instead of re-emission.
func bitsetCount(a, b []uint32, ca, cb *bitset.ChunkBuilder) (n, scanned int) {
	for len(a) > 0 && len(b) > 0 {
		base := a[0]
		if b[0] > base {
			base = b[0]
		}
		base &^= bitset.ChunkBits - 1
		for len(a) > 0 && a[0] < base {
			a = a[1:]
			scanned++
		}
		for len(b) > 0 && b[0] < base {
			b = b[1:]
			scanned++
		}
		if len(a) == 0 || len(b) == 0 {
			break
		}
		if end := uint64(base) + bitset.ChunkBits; uint64(a[0]) >= end || uint64(b[0]) >= end {
			continue
		}
		na := ca.Fill(a, base)
		nb := cb.Fill(b, base)
		scanned += na + nb
		for w := range ca.Words {
			n += bits.OnesCount64(ca.Words[w] & cb.Words[w])
		}
		scanned += len(ca.Words)
		a = a[na:]
		b = b[nb:]
	}
	return n, scanned
}

// KernelStats accumulates per-kernel work counters: how often each kernel
// fired, how many elements (and, for the bitset kernel, words) it
// actually examined, and how many elements it emitted. The scratch-taking
// entry points (IntersectK, IntersectWith) record into their scratch's
// stats; internal/ceci drains the deltas into the EXPLAIN ANALYZE
// profile. All counts are deterministic functions of the inputs.
type KernelStats struct {
	Calls   [NumKernels]int64
	Scanned [NumKernels]int64
	Emitted [NumKernels]int64
}

func (s *KernelStats) record(k Kernel, scanned, emitted int) {
	s.Calls[k]++
	s.Scanned[k] += int64(scanned)
	s.Emitted[k] += int64(emitted)
}

// Sub returns s - prev field-wise: the work recorded since prev was
// captured.
func (s *KernelStats) Sub(prev KernelStats) KernelStats {
	var d KernelStats
	for k := 0; k < NumKernels; k++ {
		d.Calls[k] = s.Calls[k] - prev.Calls[k]
		d.Scanned[k] = s.Scanned[k] - prev.Scanned[k]
		d.Emitted[k] = s.Emitted[k] - prev.Emitted[k]
	}
	return d
}

// TotalScanned sums the scanned counter across kernels.
func (s *KernelStats) TotalScanned() int64 {
	var n int64
	for k := 0; k < NumKernels; k++ {
		n += s.Scanned[k]
	}
	return n
}

// IntersectWith runs one specific kernel for a ∩ b, appending to dst
// (which may share its backing array with a or b in the dst = x[:0]
// form, like Intersect). sc may be nil; when non-nil its bitmap scratch
// is reused and the kernel's work is recorded into sc.Stats. The
// cross-kernel differential tests and the fuzz targets drive every
// kernel through this entry point against the same inputs.
func IntersectWith(k Kernel, dst, a, b []uint32, sc *Scratch) []uint32 {
	dst = dst[:0]
	if len(a) == 0 || len(b) == 0 {
		return dst
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	var scanned int
	switch k {
	case KernelGallop:
		dst, scanned = intersectGallop(dst, a, b)
	case KernelBitset:
		if sc != nil {
			dst, scanned = intersectBitset(dst, a, b, &sc.chunkA, &sc.chunkB)
		} else {
			var ca, cb bitset.ChunkBuilder
			dst, scanned = intersectBitset(dst, a, b, &ca, &cb)
		}
	case KernelProbe:
		if sc != nil {
			dst, scanned = intersectProbe(dst, a, b, &sc.span)
		} else {
			var sp bitset.Span
			dst, scanned = intersectProbe(dst, a, b, &sp)
		}
	default:
		dst, scanned = intersectMerge(dst, a, b)
	}
	if sc != nil {
		sc.Stats.record(k, scanned, len(dst))
	}
	return dst
}

// IntersectionSizeWith returns |a ∩ b| computed by one specific kernel.
func IntersectionSizeWith(k Kernel, a, b []uint32, sc *Scratch) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	var n, scanned int
	switch k {
	case KernelGallop:
		n, scanned = gallopCount(a, b)
	case KernelBitset:
		if sc != nil {
			n, scanned = bitsetCount(a, b, &sc.chunkA, &sc.chunkB)
		} else {
			var ca, cb bitset.ChunkBuilder
			n, scanned = bitsetCount(a, b, &ca, &cb)
		}
	case KernelProbe:
		if sc != nil {
			n, scanned = probeCount(a, b, &sc.span)
		} else {
			var sp bitset.Span
			n, scanned = probeCount(a, b, &sp)
		}
	default:
		n, scanned = mergeCount(a, b)
	}
	if sc != nil {
		sc.Stats.record(k, scanned, n)
	}
	return n
}
