package setops

import (
	"math/rand"
	"sort"
	"testing"
)

// naiveUnion is the obviously-correct oracle: gather into a set, sort.
func naiveUnion(lists [][]uint32) []uint32 {
	set := map[uint32]bool{}
	for _, l := range lists {
		for _, x := range l {
			set[x] = true
		}
	}
	out := make([]uint32, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// decodeLists turns fuzz bytes into strictly increasing lists: each byte
// is a gap (gap+1 keeps them strictly increasing); a zero byte starts a
// new list. This covers the 0/1/2/many-list dispatch tiers of UnionMany.
func decodeLists(data []byte) [][]uint32 {
	var lists [][]uint32
	var cur []uint32
	var last uint32
	for _, b := range data {
		if b == 0 {
			lists = append(lists, cur)
			cur, last = nil, 0
			continue
		}
		last += uint32(b)
		cur = append(cur, last)
	}
	return append(lists, cur)
}

func FuzzUnionMany(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{1, 2, 0, 2, 2, 0, 3})
	f.Add([]byte{5, 0, 5, 0, 5, 0, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		lists := decodeLists(data)
		got := UnionMany(lists)
		want := naiveUnion(lists)
		if !equalU32(got, want) {
			t.Fatalf("UnionMany(%v) = %v, want %v", lists, got, want)
		}
		if !IsSorted(got) {
			t.Fatalf("UnionMany(%v) = %v: not strictly sorted", lists, got)
		}
	})
}

// TestUnionManyProperty is the non-fuzz property check that runs on every
// `go test`: random list shapes against the naive oracle, covering the
// many-lists gather-sort-dedup path that repeated pairwise merging skips.
func TestUnionManyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		k := rng.Intn(8)
		lists := make([][]uint32, k)
		for i := range lists {
			n := rng.Intn(30)
			x := uint32(0)
			for j := 0; j < n; j++ {
				x += uint32(1 + rng.Intn(9))
				lists[i] = append(lists[i], x)
			}
		}
		got := UnionMany(lists)
		want := naiveUnion(lists)
		if !equalU32(got, want) {
			t.Fatalf("trial %d: UnionMany = %v, want %v (lists %v)", trial, got, want, lists)
		}
	}
}
