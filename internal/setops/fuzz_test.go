package setops_test

import (
	"testing"

	"ceci/internal/setops"
)

// decodeLists turns raw fuzz bytes into two strictly-increasing uint32
// lists. data[0] picks the split point (so the fuzzer controls the size
// ratio, from 1:N skew to balanced); each remaining byte is a delta with
// gap = byte+1, except bytes >= 240 which decode to large jumps of
// (byte-239)*977 — prime-stepped so runs land on and straddle 64-bit word
// and 4096-value chunk boundaries at many alignments. Deltas are >= 1, so
// strict monotonicity holds by construction, and repeated large-jump
// bytes walk the lists toward the top of the uint32 range where window
// arithmetic must not wrap.
func decodeLists(data []byte) (a, b []uint32) {
	if len(data) < 1 {
		return nil, nil
	}
	split := int(data[0])
	rest := data[1:]
	cut := len(rest) * split / 256
	decode := func(bs []byte) []uint32 {
		if len(bs) == 0 {
			return nil
		}
		out := make([]uint32, 0, len(bs))
		var v uint64
		for _, c := range bs {
			var gap uint64
			if c >= 240 {
				gap = uint64(c-239) * 977 * 257 // jumps up to ~4.2M: skips whole chunks
			} else {
				gap = uint64(c) + 1
			}
			v += gap
			if v > 1<<32-1 {
				break
			}
			out = append(out, uint32(v))
		}
		return out
	}
	return decode(rest[:cut]), decode(rest[cut:])
}

// FuzzIntersectKernels drives all three kernels (plus the adaptive entry
// point, with and without scratch) against the naive reference on
// fuzzer-shaped inputs, asserting bit-identical outputs everywhere.
func FuzzIntersectKernels(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := decodeLists(data)
		if !setops.IsSorted(a) || !setops.IsSorted(b) {
			t.Fatalf("decoder produced unsorted input: %v %v", a, b)
		}
		want := naiveIntersect(a, b)
		var sc setops.Scratch
		for _, k := range allKernels {
			if got := setops.IntersectWith(k, nil, a, b, nil); !equal(got, want) {
				t.Fatalf("kernel %v diverged: got %v want %v\na=%v\nb=%v", k, got, want, a, b)
			}
			if got := setops.IntersectWith(k, nil, a, b, &sc); !equal(got, want) {
				t.Fatalf("kernel %v (scratch) diverged\na=%v\nb=%v", k, a, b)
			}
		}
		if got := setops.Intersect(nil, a, b); !equal(got, want) {
			t.Fatalf("adaptive Intersect diverged\na=%v\nb=%v", a, b)
		}
		if got := setops.Intersect(nil, b, a); !equal(got, want) {
			t.Fatalf("adaptive Intersect not symmetric\na=%v\nb=%v", a, b)
		}
	})
}

// FuzzIntersectionSize checks every kernel's counting twin against the
// materializing reference on the same decoded inputs.
func FuzzIntersectionSize(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := decodeLists(data)
		want := len(naiveIntersect(a, b))
		var sc setops.Scratch
		for _, k := range allKernels {
			if got := setops.IntersectionSizeWith(k, a, b, nil); got != want {
				t.Fatalf("kernel %v size: got %d want %d\na=%v\nb=%v", k, got, want, a, b)
			}
			if got := setops.IntersectionSizeWith(k, a, b, &sc); got != want {
				t.Fatalf("kernel %v size (scratch): got %d want %d", k, got, want)
			}
		}
		if got := setops.IntersectionSize(a, b); got != want {
			t.Fatalf("adaptive size: got %d want %d", got, want)
		}
	})
}

// fuzzSeeds returns in-code seeds complementing the committed corpus:
// shapes chosen to start the fuzzer at each kernel's breakpoints.
func fuzzSeeds() [][]byte {
	dense := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = 0 // gap 1
		}
		return out
	}
	seeds := [][]byte{
		{},
		{128},
		{0, 1, 2, 3},   // empty a, tiny b
		{255, 1, 2, 3}, // tiny a, empty b
	}
	// Balanced dense: both halves gap-1 runs (bitset kernel).
	seeds = append(seeds, append([]byte{128}, dense(200)...))
	// 1:60 skew (gallop kernel): 3-element a, 180-element b.
	skew := append([]byte{4}, dense(183)...)
	seeds = append(seeds, skew)
	// Word-boundary straddles: gap-1 runs separated by mid jumps.
	run := append([]byte{128}, 63, 0, 0, 0, 63, 0, 0, 0)
	seeds = append(seeds, append(run, dense(64)...))
	// Chunk skips: large-jump bytes interleaved with dense runs.
	jumpy := []byte{128}
	for i := 0; i < 24; i++ {
		if i%6 == 5 {
			jumpy = append(jumpy, 250)
		} else {
			jumpy = append(jumpy, byte(i%3))
		}
	}
	seeds = append(seeds, jumpy)
	// Top-of-range walk: ~1100 max jumps of ~4M cross 1<<32, proving the
	// decoder's clamp and the kernels' window arithmetic at the ceiling.
	top := []byte{100}
	for i := 0; i < 1100; i++ {
		top = append(top, 255)
	}
	seeds = append(seeds, top)
	return seeds
}
