package setops_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"ceci/internal/setops"
)

// sortedSet is a quick.Generator producing random strictly-increasing
// uint32 slices with varied densities, so both merge and gallop paths get
// exercised.
type sortedSet []uint32

func (sortedSet) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size + 1)
	span := 1 + r.Intn(4*size+1)
	m := map[uint32]bool{}
	for i := 0; i < n; i++ {
		m[uint32(r.Intn(span))] = true
	}
	out := make(sortedSet, 0, len(m))
	for x := range m {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return reflect.ValueOf(out)
}

func mapIntersect(a, b []uint32) []uint32 {
	in := map[uint32]bool{}
	for _, x := range a {
		in[x] = true
	}
	var out []uint32
	for _, x := range b {
		if in[x] {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func mapUnion(a, b []uint32) []uint32 {
	in := map[uint32]bool{}
	for _, x := range a {
		in[x] = true
	}
	for _, x := range b {
		in[x] = true
	}
	out := make([]uint32, 0, len(in))
	for x := range in {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equal(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIntersectMatchesMapReference(t *testing.T) {
	f := func(a, b sortedSet) bool {
		got := setops.Intersect(nil, a, b)
		return equal(got, mapIntersect(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectGallopPath(t *testing.T) {
	// Force the galloping path with a tiny list against a huge one.
	large := make([]uint32, 10000)
	for i := range large {
		large[i] = uint32(3 * i)
	}
	small := []uint32{0, 3, 4, 2997, 29997, 30000}
	got := setops.Intersect(nil, small, large)
	want := []uint32{0, 3, 2997, 29997}
	if !equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	// Symmetric argument order must agree.
	if !equal(setops.Intersect(nil, large, small), want) {
		t.Fatal("argument order changed the result")
	}
}

func TestIntersectEmpty(t *testing.T) {
	if got := setops.Intersect(nil, nil, []uint32{1, 2}); len(got) != 0 {
		t.Fatalf("nil ∩ x = %v", got)
	}
	if got := setops.Intersect(nil, []uint32{1, 2}, nil); len(got) != 0 {
		t.Fatalf("x ∩ nil = %v", got)
	}
}

func TestIntersectReusesDst(t *testing.T) {
	dst := make([]uint32, 0, 64)
	a := []uint32{1, 5, 9}
	b := []uint32{5, 9, 11}
	got := setops.Intersect(dst, a, b)
	if !equal(got, []uint32{5, 9}) {
		t.Fatalf("got %v", got)
	}
	if cap(got) != cap(dst) {
		t.Error("dst capacity not reused")
	}
}

func TestUnionMatchesMapReference(t *testing.T) {
	f := func(a, b sortedSet) bool {
		return equal(setops.Union(nil, a, b), mapUnion(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionManyMatchesPairwise(t *testing.T) {
	f := func(lists []sortedSet) bool {
		raw := make([][]uint32, len(lists))
		var acc []uint32
		for i, l := range lists {
			raw[i] = l
			acc = mapUnion(acc, l)
		}
		return equal(setops.UnionMany(raw), acc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectKMatchesFold(t *testing.T) {
	f := func(a, b, c, d sortedSet) bool {
		want := mapIntersect(mapIntersect(a, b), mapIntersect(c, d))
		var sc setops.Scratch
		got := setops.IntersectK(&sc, [][]uint32{a, b, c, d})
		return equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectKSingleAliases(t *testing.T) {
	a := []uint32{1, 2, 3}
	got := setops.IntersectK(nil, [][]uint32{a})
	if &got[0] != &a[0] {
		t.Error("k=1 should return the input list unchanged")
	}
	if setops.IntersectK(nil, nil) != nil {
		t.Error("k=0 should return nil")
	}
}

func TestIntersectKScratchReuse(t *testing.T) {
	var sc setops.Scratch
	a := []uint32{1, 2, 3, 4}
	b := []uint32{2, 4, 6}
	c := []uint32{4, 5}
	first := setops.IntersectK(&sc, [][]uint32{a, b, c})
	if !equal(first, []uint32{4}) {
		t.Fatalf("got %v", first)
	}
	// A second use with the same scratch must not corrupt results.
	second := setops.IntersectK(&sc, [][]uint32{a, b})
	if !equal(second, []uint32{2, 4}) {
		t.Fatalf("got %v", second)
	}
}

func TestDiff(t *testing.T) {
	got := setops.Diff(nil, []uint32{1, 2, 3, 5, 8}, []uint32{2, 5, 9})
	if !equal(got, []uint32{1, 3, 8}) {
		t.Fatalf("got %v", got)
	}
}

func TestDiffProperty(t *testing.T) {
	f := func(a, b sortedSet) bool {
		diff := setops.Diff(nil, a, b)
		inter := setops.Intersect(nil, a, b)
		// |diff| + |inter| == |a| and diff ∩ b == ∅.
		if len(diff)+len(inter) != len(a) {
			return false
		}
		return len(setops.Intersect(nil, diff, b)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestContains(t *testing.T) {
	a := []uint32{2, 4, 8, 16}
	for _, x := range a {
		if !setops.Contains(a, x) {
			t.Fatalf("missing %d", x)
		}
	}
	for _, x := range []uint32{0, 3, 17} {
		if setops.Contains(a, x) {
			t.Fatalf("phantom %d", x)
		}
	}
	if setops.Contains(nil, 1) {
		t.Fatal("phantom in nil")
	}
}

func TestIntersectionSizeMatchesIntersect(t *testing.T) {
	f := func(a, b sortedSet) bool {
		return setops.IntersectionSize(a, b) == len(setops.Intersect(nil, a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectionSizeGallop(t *testing.T) {
	large := make([]uint32, 5000)
	for i := range large {
		large[i] = uint32(2 * i)
	}
	small := []uint32{0, 2, 3, 9998}
	if got := setops.IntersectionSize(small, large); got != 3 {
		t.Fatalf("got %d want 3", got)
	}
}

func TestIsSorted(t *testing.T) {
	if !setops.IsSorted([]uint32{1, 2, 3}) || !setops.IsSorted(nil) {
		t.Fatal("sorted input rejected")
	}
	if setops.IsSorted([]uint32{1, 1}) || setops.IsSorted([]uint32{2, 1}) {
		t.Fatal("unsorted input accepted")
	}
}

func TestOutputsAreSortedSets(t *testing.T) {
	f := func(a, b sortedSet) bool {
		return setops.IsSorted(setops.Intersect(nil, a, b)) &&
			setops.IsSorted(setops.Union(nil, a, b)) &&
			setops.IsSorted(setops.Diff(nil, a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
