// Package setops implements sorted-set operations over []uint32 candidate
// lists. These kernels are the hot path of CECI's intersection-based
// embedding enumeration (Section 4.1, Lemma 2 of the paper): every
// non-tree-edge verification becomes an intersection of sorted candidate
// lists instead of an adjacency probe.
//
// Three strategies are provided and selected adaptively:
//
//   - linear merge for similarly sized inputs,
//   - galloping (exponential) search when one input is much smaller,
//   - binary probes of single elements for membership tests.
//
// All functions treat inputs as strictly increasing sequences and produce
// strictly increasing outputs.
package setops

import (
	"slices"
	"sort"
)

// gallopRatio is the size disparity beyond which Intersect switches from
// linear merge to galloping search. 16 follows the classic adaptive
// set-intersection literature (and measured well in bench_setops).
const gallopRatio = 16

// Intersect writes the intersection of a and b into dst (reusing its
// capacity) and returns the result. dst may be nil. dst must not alias a
// or b.
func Intersect(dst, a, b []uint32) []uint32 {
	dst = dst[:0]
	if len(a) == 0 || len(b) == 0 {
		return dst
	}
	// Ensure a is the smaller list.
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) >= gallopRatio*len(a) {
		return intersectGallop(dst, a, b)
	}
	return intersectMerge(dst, a, b)
}

func intersectMerge(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			dst = append(dst, x)
			i++
			j++
		}
	}
	return dst
}

func intersectGallop(dst, small, large []uint32) []uint32 {
	lo := 0
	for _, x := range small {
		lo = gallop(large, lo, x)
		if lo == len(large) {
			break
		}
		if large[lo] == x {
			dst = append(dst, x)
			lo++
		}
	}
	return dst
}

// gallop returns the smallest index i >= lo with large[i] >= x, using
// exponential probing followed by binary search.
func gallop(large []uint32, lo int, x uint32) int {
	n := len(large)
	if lo >= n || large[lo] >= x {
		return lo
	}
	step := 1
	hi := lo + 1
	for hi < n && large[hi] < x {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > n {
		hi = n
	}
	// binary search in (lo, hi]
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if large[mid] < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// Contains reports whether sorted list a contains x.
func Contains(a []uint32, x uint32) bool {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= x })
	return i < len(a) && a[i] == x
}

// IntersectK intersects k sorted lists (k >= 1), smallest first for speed.
// scratch provides reusable buffers; pass nil to allocate. The result may
// alias lists[0] only when k == 1.
func IntersectK(scratch *Scratch, lists [][]uint32) []uint32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	if scratch == nil {
		scratch = &Scratch{}
	}
	// Order by length without copying list contents. Insertion sort on
	// indices: k is tiny (one list per query edge into the new vertex)
	// and sort.Slice would allocate on every enumeration step.
	order := scratch.order[:0]
	for i := range lists {
		order = append(order, i)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && len(lists[order[j-1]]) > len(lists[order[j]]); j-- {
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	scratch.order = order

	cur := Intersect(scratch.a[:0], lists[order[0]], lists[order[1]])
	scratch.a = cur
	for i := 2; i < len(order) && len(cur) > 0; i++ {
		next := Intersect(scratch.b[:0], cur, lists[order[i]])
		scratch.a, scratch.b = next, cur[:0]
		cur = next
	}
	return cur
}

// Scratch holds reusable buffers for IntersectK, avoiding per-call
// allocation in the enumeration inner loop. Not safe for concurrent use;
// each worker keeps its own.
type Scratch struct {
	a, b  []uint32
	order []int
}

// Union writes the sorted union of a and b into dst and returns it.
// dst must not alias a or b.
func Union(dst, a, b []uint32) []uint32 {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			dst = append(dst, x)
			i++
		case x > y:
			dst = append(dst, y)
			j++
		default:
			dst = append(dst, x)
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// UnionMany returns the sorted union of all lists. For many inputs it
// gathers, sorts, and deduplicates — O(N log N) total instead of the
// O(k·N) of repeated pairwise merging.
func UnionMany(lists [][]uint32) []uint32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		out := make([]uint32, len(lists[0]))
		copy(out, lists[0])
		return out
	case 2:
		return Union(nil, lists[0], lists[1])
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	all := make([]uint32, 0, total)
	for _, l := range lists {
		all = append(all, l...)
	}
	// slices.Sort specializes on the element type — unlike sort.Slice it
	// allocates no closure and no reflect-based swapper, and pattern-
	// defeating quicksort beats the interface-dispatch sort on uint32.
	slices.Sort(all)
	w := 0
	for i, x := range all {
		if i == 0 || x != all[i-1] {
			all[w] = x
			w++
		}
	}
	return all[:w]
}

// Diff writes a \ b (elements of a not in b) into dst and returns it.
func Diff(dst, a, b []uint32) []uint32 {
	dst = dst[:0]
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j == len(b) || b[j] != x {
			dst = append(dst, x)
		}
	}
	return dst
}

// IntersectionSize returns |a ∩ b| without materializing the result.
func IntersectionSize(a, b []uint32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) >= gallopRatio*len(a) {
		n, lo := 0, 0
		for _, x := range a {
			lo = gallop(b, lo, x)
			if lo == len(b) {
				break
			}
			if b[lo] == x {
				n++
				lo++
			}
		}
		return n
	}
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// IsSorted reports whether a is strictly increasing (the invariant all
// kernels in this package rely on).
func IsSorted(a []uint32) bool {
	for i := 1; i < len(a); i++ {
		if a[i-1] >= a[i] {
			return false
		}
	}
	return true
}
