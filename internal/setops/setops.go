// Package setops implements sorted-set operations over []uint32 candidate
// lists. These kernels are the hot path of CECI's intersection-based
// embedding enumeration (Section 4.1, Lemma 2 of the paper): every
// non-tree-edge verification becomes an intersection of sorted candidate
// lists instead of an adjacency probe.
//
// Four intersection kernels are provided and selected adaptively per
// call from O(1) statistics of the inputs (lengths and value spans — on
// a frozen CECI index these come straight from the flat columns):
//
//   - KernelMerge: classic two-cursor linear merge, the wide-span
//     fallback for similarly sized inputs;
//   - KernelGallop: exponential search plus binary refinement, when one
//     input is much smaller;
//   - KernelBitset: 4096-value chunked word-parallel AND via
//     bitset.ChunkBuilder, when the inputs are dense over their span;
//   - KernelProbe: span-offset bitmap (bitset.Span) built from the
//     smaller list and probed by the larger, for the locally clustered,
//     moderately sparse lists frozen CECI indexes produce.
//
// All functions treat inputs as strictly increasing sequences and produce
// strictly increasing outputs. Every kernel is bit-identical to the
// others on the same inputs; the cross-kernel differential tests and the
// FuzzIntersectKernels / FuzzIntersectionSize targets enforce that.
package setops

import (
	"slices"
	"sort"
	"unsafe"

	"ceci/internal/bitset"
)

// Intersect writes the intersection of a and b into dst (reusing its
// capacity) and returns the result, selecting the cheapest kernel for the
// inputs' shape. dst may be nil.
//
// Aliasing: dst may share a backing array with a or b in the rewound form
// dst = x[:0] (every kernel writes at or below the positions it has
// already consumed). Arbitrary overlap — dst starting mid-way into a or b
// — is not supported.
func Intersect(dst, a, b []uint32) []uint32 {
	dst = dst[:0]
	if len(a) == 0 || len(b) == 0 {
		return dst
	}
	return IntersectWith(ChooseKernel(a, b), dst, a, b, nil)
}

// Contains reports whether sorted list a contains x.
func Contains(a []uint32, x uint32) bool {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= x })
	return i < len(a) && a[i] == x
}

// IntersectK intersects k sorted lists (k >= 1), smallest first for
// speed, choosing the cheapest kernel per pairwise step and recording
// per-kernel work into scratch.Stats. scratch provides reusable buffers;
// pass nil to allocate. The result may alias lists[0] only when k == 1.
func IntersectK(scratch *Scratch, lists [][]uint32) []uint32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	if scratch == nil {
		scratch = &Scratch{}
	}
	// Order by length without copying list contents. Insertion sort on
	// indices: k is tiny (one list per query edge into the new vertex)
	// and sort.Slice would allocate on every enumeration step.
	order := scratch.order[:0]
	for i := range lists {
		order = append(order, i)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && len(lists[order[j-1]]) > len(lists[order[j]]); j-- {
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	scratch.order = order

	first, second := lists[order[0]], lists[order[1]]
	cur := IntersectWith(ChooseKernel(first, second), scratch.a[:0], first, second, scratch)
	scratch.a = cur
	for i := 2; i < len(order) && len(cur) > 0; i++ {
		next := lists[order[i]]
		out := IntersectWith(ChooseKernel(cur, next), scratch.b[:0], cur, next, scratch)
		scratch.a, scratch.b = out, cur[:0]
		cur = out
	}
	return cur
}

// Scratch holds reusable buffers for the scratch-taking entry points —
// intermediate result slices for IntersectK, the two chunk builders the
// bitset kernel fills, the probe kernel's span bitmap, and the
// per-kernel work counters — avoiding per-call allocation in the
// enumeration inner loop. Not safe for concurrent use; each worker keeps
// its own.
type Scratch struct {
	a, b  []uint32
	order []int

	chunkA, chunkB bitset.ChunkBuilder
	span           bitset.Span

	// Stats accumulates per-kernel calls / scanned / emitted across every
	// recorded operation on this scratch. Callers that need per-call
	// deltas snapshot it before and Sub after.
	Stats KernelStats
}

// FootprintBytes returns the scratch's allocated backing size: the two
// intermediate result buffers, the ordering slice, the two fixed chunk
// builders, and the probe span bitmap. The resource ledger reads this at
// work-unit boundaries to track a query's peak scratch memory.
func (s *Scratch) FootprintBytes() int64 {
	return int64(cap(s.a))*4 + int64(cap(s.b))*4 + int64(cap(s.order))*8 +
		2*(bitset.ChunkBits/8) + s.span.FootprintBytes()
}

// Union writes the sorted union of a and b into dst and returns it.
// dst must not alias a or b; the rewound form dst = x[:0] is detected
// and handled by copying that input first (the union outgrows its
// inputs, so in-place writes would clobber unread elements).
func Union(dst, a, b []uint32) []uint32 {
	if sharesBacking(dst, a) {
		a = slices.Clone(a)
	}
	if sharesBacking(dst, b) {
		b = slices.Clone(b)
	}
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			dst = append(dst, x)
			i++
		case x > y:
			dst = append(dst, y)
			j++
		default:
			dst = append(dst, x)
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// UnionMany returns the sorted union of all lists. For many inputs it
// gathers, sorts, and deduplicates — O(N log N) total instead of the
// O(k·N) of repeated pairwise merging.
func UnionMany(lists [][]uint32) []uint32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		out := make([]uint32, len(lists[0]))
		copy(out, lists[0])
		return out
	case 2:
		return Union(nil, lists[0], lists[1])
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	all := make([]uint32, 0, total)
	for _, l := range lists {
		all = append(all, l...)
	}
	// slices.Sort specializes on the element type — unlike sort.Slice it
	// allocates no closure and no reflect-based swapper, and pattern-
	// defeating quicksort beats the interface-dispatch sort on uint32.
	slices.Sort(all)
	w := 0
	for i, x := range all {
		if i == 0 || x != all[i-1] {
			all[w] = x
			w++
		}
	}
	return all[:w]
}

// Diff writes a \ b (elements of a not in b) into dst and returns it.
//
// Aliasing: dst = a[:0] is safe (the output is a subsequence of a, so
// writes never pass the read cursor). dst = b[:0] would clobber unread
// elements of b and is detected and handled by copying b first.
func Diff(dst, a, b []uint32) []uint32 {
	if sharesBacking(dst, b) {
		b = slices.Clone(b)
	}
	dst = dst[:0]
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j == len(b) || b[j] != x {
			dst = append(dst, x)
		}
	}
	return dst
}

// sharesBacking reports whether dst (in its rewound dst = x[:0] form)
// shares a backing array with s — the aliasing pattern the candidate-list
// pipelines use. It compares the underlying array pointers, so it also
// catches dst rewound from a slice-of-s prefix.
func sharesBacking(dst, s []uint32) bool {
	if cap(dst) == 0 || len(s) == 0 {
		return false
	}
	return unsafe.SliceData(dst[:1]) == unsafe.SliceData(s)
}

// IntersectionSize returns |a ∩ b| without materializing the result,
// selecting the cheapest kernel (the bitset path counts with one
// popcount per word instead of re-emitting survivors).
func IntersectionSize(a, b []uint32) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	return IntersectionSizeWith(ChooseKernel(a, b), a, b, nil)
}

// IsSorted reports whether a is strictly increasing (the invariant all
// kernels in this package rely on).
func IsSorted(a []uint32) bool {
	for i := 1; i < len(a); i++ {
		if a[i-1] >= a[i] {
			return false
		}
	}
	return true
}
