package auto_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"ceci/internal/auto"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/reference"
)

func TestTriangleEquivalence(t *testing.T) {
	// QG1: all three vertices are mutually equivalent (one class).
	c := auto.Compute(gen.QG1())
	if len(c.Classes) != 1 || len(c.Classes[0]) != 3 {
		t.Fatalf("classes = %v", c.Classes)
	}
	if c.OrbitSize() != 6 {
		t.Fatalf("orbit = %d, want 3! = 6", c.OrbitSize())
	}
}

func TestCliqueOrbits(t *testing.T) {
	if got := auto.Compute(gen.QG3()).OrbitSize(); got != 24 {
		t.Fatalf("QG3 orbit = %d, want 4! = 24", got)
	}
	if got := auto.Compute(gen.QG5()).OrbitSize(); got != 120 {
		t.Fatalf("QG5 orbit = %d, want 5! = 120", got)
	}
}

func TestSquareEquivalence(t *testing.T) {
	// QG2 (4-cycle): opposite corners are NEC-equivalent: {0,2} and {1,3}.
	c := auto.Compute(gen.QG2())
	if len(c.Classes) != 2 {
		t.Fatalf("classes = %v", c.Classes)
	}
	if c.OrbitSize() != 4 {
		t.Fatalf("orbit = %d, want 2!·2! = 4", c.OrbitSize())
	}
}

func TestPathEndpoints(t *testing.T) {
	// Path a-b-c: endpoints equivalent (non-adjacent case).
	g := mustGraph(3, [][2]graph.VertexID{{0, 1}, {1, 2}})
	c := auto.Compute(g)
	if len(c.Classes) != 1 || len(c.Classes[0]) != 2 {
		t.Fatalf("classes = %v", c.Classes)
	}
}

func TestLabelsBreakEquivalence(t *testing.T) {
	b := graph.NewBuilder(3)
	b.SetLabel(0, 1) // different label
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	c := auto.Compute(b.MustBuild())
	// Only {1, 2} are equivalent now.
	if len(c.Classes) != 1 || len(c.Classes[0]) != 2 || c.Classes[0][0] != 1 {
		t.Fatalf("classes = %v", c.Classes)
	}
}

func TestFig1NoSymmetry(t *testing.T) {
	if c := auto.Compute(gen.Fig1Query()); !c.Empty() {
		t.Fatalf("Figure 1 query has distinct labels, expected no classes, got %v", c.Classes)
	}
}

func TestAllowsOrdering(t *testing.T) {
	c := auto.Compute(gen.QG1()) // class {0,1,2}: M(0)<M(1)<M(2)
	m := make([]graph.VertexID, 3)
	matched := make([]bool, 3)
	// With vertex 0 matched to 5, vertex 1 may only take > 5.
	m[0] = 5
	matched[0] = true
	if c.Allows(1, 3, m, matched) {
		t.Fatal("allowed M(1) < M(0)")
	}
	if !c.Allows(1, 7, m, matched) {
		t.Fatal("rejected M(1) > M(0)")
	}
	// Reverse direction: matching vertex 0 after vertex 1.
	matched[0] = false
	m[1] = 5
	matched[1] = true
	if c.Allows(0, 7, m, matched) {
		t.Fatal("allowed M(0) > M(1)")
	}
	if !c.Allows(0, 2, m, matched) {
		t.Fatal("rejected M(0) < M(1)")
	}
}

// TestOrbitFactorOnCliques: on clique queries the NEC classes generate
// the full automorphism group, so raw count = constrained count × orbit.
func TestOrbitFactorOnCliques(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	data := randomGraph(rng, 12, 40)
	for _, q := range []*graph.Graph{gen.QG1(), gen.QG3()} {
		cons := auto.Compute(q)
		raw := reference.Count(data, q, reference.Options{})
		constrained := reference.Count(data, q, reference.Options{Constraints: cons})
		if raw != constrained*int64(cons.OrbitSize()) {
			t.Fatalf("raw %d != constrained %d × orbit %d", raw, constrained, cons.OrbitSize())
		}
	}
}

// TestConstraintsNeverLoseSubgraphs: every subgraph found without
// constraints has exactly one representative under constraints.
func TestConstraintsNeverLoseSubgraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		data := randomGraph(rng, 10, 25)
		query, err := gen.DFSQuery(data, 2+rng.Intn(3), rng)
		if err != nil {
			continue
		}
		cons := auto.Compute(query)
		rawSets := map[string]int{}
		reference.ForEach(data, query, reference.Options{}, func(emb []graph.VertexID) bool {
			rawSets[vertexSetKey(emb)]++
			return true
		})
		conSets := map[string]int{}
		reference.ForEach(data, query, reference.Options{Constraints: cons}, func(emb []graph.VertexID) bool {
			conSets[vertexSetKey(emb)]++
			return true
		})
		for set := range rawSets {
			if conSets[set] == 0 {
				t.Fatalf("trial %d: subgraph %q lost under constraints", trial, set)
			}
		}
		for set, n := range conSets {
			if rawSets[set] < n {
				t.Fatalf("trial %d: subgraph %q over-represented", trial, set)
			}
		}
	}
}

func vertexSetKey(emb []graph.VertexID) string {
	sorted := append([]graph.VertexID(nil), emb...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b strings.Builder
	for _, v := range sorted {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

func mustGraph(n int, edges [][2]graph.VertexID) *graph.Graph {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.MustBuild()
}

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.VertexID(perm[i-1]), graph.VertexID(perm[i]))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return b.MustBuild()
}
