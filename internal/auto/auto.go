// Package auto implements automorphism breaking for query graphs
// (Section 2.2): query vertices are grouped into NEC-style equivalence
// classes (same label set and same neighborhood, ignoring a possible
// mutual edge, following TurboIso's neighborhood equivalence), and an
// ordering constraint map(u_i) < map(u_j) is enforced within each class
// (the symmetry-breaking rule of Grochow-Kellis). With the constraints
// active, exactly one representative of each automorphism orbit induced
// by these classes is enumerated.
package auto

import (
	"ceci/internal/graph"
)

// Constraints records, for every query vertex u, the equivalence-class
// neighbors whose data-graph matches must be smaller (Less[u]) or larger
// (Greater[u]) than u's match. A vertex with empty slices is
// unconstrained.
type Constraints struct {
	Less    [][]graph.VertexID // all w with required M(w) < M(u)
	Greater [][]graph.VertexID // all w with required M(w) > M(u)
	Classes [][]graph.VertexID // the equivalence classes of size >= 2
}

// Empty reports whether no constraints exist (no symmetric vertices).
func (c *Constraints) Empty() bool { return len(c.Classes) == 0 }

// Compute derives equivalence classes and ordering constraints for q.
func Compute(q *graph.Graph) *Constraints {
	n := q.NumVertices()
	c := &Constraints{
		Less:    make([][]graph.VertexID, n),
		Greater: make([][]graph.VertexID, n),
	}
	assigned := make([]bool, n)
	for u := 0; u < n; u++ {
		if assigned[u] {
			continue
		}
		class := []graph.VertexID{graph.VertexID(u)}
		for w := u + 1; w < n; w++ {
			if !assigned[w] && equivalent(q, graph.VertexID(u), graph.VertexID(w)) {
				class = append(class, graph.VertexID(w))
			}
		}
		if len(class) < 2 {
			continue
		}
		for _, v := range class {
			assigned[v] = true
		}
		c.Classes = append(c.Classes, class)
		// Enforce M(class[0]) < M(class[1]) < ... (IDs are ascending).
		for i := 1; i < len(class); i++ {
			c.Less[class[i]] = append(c.Less[class[i]], class[i-1])
			c.Greater[class[i-1]] = append(c.Greater[class[i-1]], class[i])
		}
	}
	return c
}

// equivalent reports the NEC relation: u ≡ w iff they carry the same
// label set and N(u)\{w} == N(w)\{u}. This covers both the adjacent case
// (e.g. vertices of a clique) and the non-adjacent case (e.g. the two
// endpoints of a path of length two).
func equivalent(q *graph.Graph, u, w graph.VertexID) bool {
	lu, lw := q.Labels(u), q.Labels(w)
	if len(lu) != len(lw) {
		return false
	}
	for i := range lu {
		if lu[i] != lw[i] {
			return false
		}
	}
	nu, nw := q.Neighbors(u), q.Neighbors(w)
	i, j := 0, 0
	for i < len(nu) || j < len(nw) {
		// Skip the mutual edge on both sides.
		if i < len(nu) && nu[i] == w {
			i++
			continue
		}
		if j < len(nw) && nw[j] == u {
			j++
			continue
		}
		if i == len(nu) || j == len(nw) {
			return false
		}
		if nu[i] != nw[j] {
			return false
		}
		i++
		j++
	}
	return true
}

// Allows reports whether assigning data vertex v to query vertex u is
// consistent with the ordering constraints, given the current partial
// match. matched[w] must be true when query vertex w is assigned, with
// its data vertex in m[w].
func (c *Constraints) Allows(u graph.VertexID, v graph.VertexID, m []graph.VertexID, matched []bool) bool {
	for _, w := range c.Less[u] {
		if matched[w] && m[w] >= v {
			return false
		}
	}
	for _, w := range c.Greater[u] {
		if matched[w] && m[w] <= v {
			return false
		}
	}
	return true
}

// OrbitSize returns the product of class factorials: the number of
// automorphisms induced by the equivalence classes. Useful to convert a
// constrained count into a raw (automorphism-inclusive) count in tests.
func (c *Constraints) OrbitSize() int {
	total := 1
	for _, class := range c.Classes {
		f := 1
		for i := 2; i <= len(class); i++ {
			f *= i
		}
		total *= f
	}
	return total
}
