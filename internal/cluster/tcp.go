package cluster

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ceci/internal/auto"
	"ceci/internal/ceci"
	"ceci/internal/enum"
	"ceci/internal/graph"
	"ceci/internal/obs"
	"ceci/internal/order"
	"ceci/internal/stats"
	"ceci/internal/workload"
)

// RunTCP executes the distributed run with machines communicating over
// real TCP loopback connections — an actual network substrate standing in
// for the paper's MPI deployment rather than shared-memory channels.
// Every control exchange is a real message over a real socket:
//
//   - pivot distribution (the coordinator assigns each machine its
//     partition, §5's MPI_Send/MPI_Recv);
//   - pull-based cluster requests and work stealing (a machine with an
//     empty queue asks the coordinator, which serves from the victim with
//     the most unexplored clusters — the brokered equivalent of MPI_Get);
//   - result accumulation to the coordinator.
//
// Wire bytes and message counts are measured on the socket, not modeled.
// The data graph is replicated (each machine goroutine shares the
// process's copy, standing in for §5's in-memory mode); machines build
// their own CECI over their partition exactly as in Run.
func RunTCP(data, query *graph.Graph, cfg Config) (*Result, error) {
	return RunTCPCtx(context.Background(), data, query, cfg)
}

// RunTCPCtx is RunTCP with a context. The context's ambient span or
// trace identity (if any) roots the run's span tree, and the trace
// context crosses the wire: the coordinator's welcome message carries a
// W3C traceparent naming the run span as parent, and each machine opens
// its "machine" span from that header via StartRemote — the same
// stitch-by-parent-span-ID mechanism a multi-process deployment would
// use, exercised over real sockets.
func RunTCPCtx(ctx context.Context, data, query *graph.Graph, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	cfg.wireObs()
	runSpan := obs.StartUnder(ctx, cfg.Tracer, "tcp-run", obs.Int("machines", int64(cfg.Machines)))
	defer runSpan.End()
	// The welcome traceparent parents every machine under the run span.
	var welcome msgWelcome
	if tc := runSpan.Context(); tc.Valid() {
		tc.Sampled = true
		welcome.Traceparent = tc.Traceparent()
	}
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		return nil, err
	}
	cons := auto.Compute(query)

	var pivots []graph.VertexID
	order.ForEachCandidate(data, query, tree.Root, func(v graph.VertexID) {
		pivots = append(pivots, v)
	})
	parts := distributePivots(data, pivots, cfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	defer ln.Close()

	coord := &coordinator{
		queues:  make([][]graph.VertexID, cfg.Machines),
		result:  &Result{Machines: make([]Ledger, cfg.Machines)},
		stats:   cfg.Stats,
		welcome: welcome,
	}
	for i, p := range parts {
		coord.queues[i] = append([]graph.VertexID(nil), p...)
		coord.result.Machines[i].Pivots = len(p)
	}
	if cfg.Obs != nil {
		// Per-machine pending/stolen counts straight off the coordinator,
		// scrapeable while machines are pulling work over TCP.
		cfg.Obs.SetSource("cluster", coord.telemetry)
	}

	// Machines: separate goroutines, but every interaction goes through
	// their socket.
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Machines+1)
	for id := 0; id < cfg.Machines; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// No in-process span handoff: the machine learns its trace
			// position from the coordinator's welcome message alone.
			if err := runTCPMachine(id, ln.Addr().String(), data, tree, cons, cfg); err != nil {
				errs <- fmt.Errorf("machine %d: %w", id, err)
			}
		}(id)
	}

	// Coordinator accept loop.
	var serveWG sync.WaitGroup
	for i := 0; i < cfg.Machines; i++ {
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("cluster: accept: %w", err)
		}
		serveWG.Add(1)
		go func() {
			defer serveWG.Done()
			if err := coord.serve(conn); err != nil {
				errs <- fmt.Errorf("coordinator: %w", err)
			}
		}()
	}
	wg.Wait()
	serveWG.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := coord.result
	res.Embeddings = coord.total.Load()
	res.Steals = coord.steals.Load()
	for i := range res.Machines {
		if t := res.Machines[i].Total(); t > res.Makespan {
			res.Makespan = t
		}
	}
	return res, nil
}

// Wire protocol: a machine sends hello, receives the coordinator's
// welcome (carrying the run's trace context), then pulls work until the
// coordinator answers done, then reports its ledger.
type (
	msgHello struct{ ID int }
	// msgWelcome is the coordinator's reply to hello. Traceparent is the
	// run's trace position as a W3C header value ("" when the run is
	// untraced); the machine roots its span tree under it.
	msgWelcome struct{ Traceparent string }
	msgNext    struct{ ID int }
	msgWork    struct {
		Pivot  uint32
		Stolen bool
		Done   bool
	}
	msgReport struct {
		ID           int
		Embeddings   int64
		BuildCompute time.Duration
		Enumerate    time.Duration
	}
)

type coordinator struct {
	mu      sync.Mutex
	queues  [][]graph.VertexID
	result  *Result
	total   atomic.Int64
	steals  atomic.Int64
	stats   *stats.Counters // live global counters (may be nil)
	welcome msgWelcome      // trace context sent to every machine after hello
}

// telemetry is the mid-run gauge source for an attached obs.Registry.
func (c *coordinator) telemetry() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, 2*len(c.queues)+2)
	out["machines"] = int64(len(c.queues))
	out["embeddings"] = c.total.Load()
	for i := range c.queues {
		out[fmt.Sprintf("machine_%d_pending", i)] = int64(len(c.queues[i]))
		out[fmt.Sprintf("machine_%d_stolen", i)] = int64(c.result.Machines[i].Stolen)
	}
	return out
}

// next pops a pivot for machine id: its own queue first, then the victim
// with the most unexplored clusters.
func (c *coordinator) next(id int) (graph.VertexID, bool, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if q := c.queues[id]; len(q) > 0 {
		v := q[len(q)-1]
		c.queues[id] = q[:len(q)-1]
		return v, false, true
	}
	victim, best := -1, 0
	for i := range c.queues {
		if i != id && len(c.queues[i]) > best {
			victim, best = i, len(c.queues[i])
		}
	}
	if victim < 0 {
		return 0, false, false
	}
	q := c.queues[victim]
	v := q[len(q)-1]
	c.queues[victim] = q[:len(q)-1]
	return v, true, true
}

func (c *coordinator) serve(conn net.Conn) error {
	defer conn.Close()
	cc := newCountingConn(conn, c.stats)
	dec := gob.NewDecoder(cc)
	enc := gob.NewEncoder(cc)

	var hello msgHello
	if err := dec.Decode(&hello); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	id := hello.ID
	if id < 0 || id >= len(c.queues) {
		return fmt.Errorf("bad machine id %d", id)
	}
	if err := enc.Encode(c.welcome); err != nil {
		return fmt.Errorf("welcome: %w", err)
	}
	for {
		var req msgNext
		if err := dec.Decode(&req); err != nil {
			return fmt.Errorf("next: %w", err)
		}
		pivot, stolen, ok := c.next(id)
		if stolen {
			c.steals.Add(1)
			if c.stats != nil {
				c.stats.StealAttempts.Add(1)
			}
			c.mu.Lock()
			c.result.Machines[id].Stolen++
			c.mu.Unlock()
		}
		if err := enc.Encode(msgWork{Pivot: pivot, Stolen: stolen, Done: !ok}); err != nil {
			return fmt.Errorf("work: %w", err)
		}
		if !ok {
			break
		}
	}
	var rep msgReport
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	c.total.Add(rep.Embeddings)
	c.stats.AddEmbeddings(rep.Embeddings)
	c.mu.Lock()
	led := &c.result.Machines[id]
	led.Embeddings = rep.Embeddings
	led.BuildCompute = rep.BuildCompute
	led.Enumerate = rep.Enumerate
	led.MessagesSent += cc.messages.Load()
	led.RemoteReads = 0
	c.mu.Unlock()
	c.addWire(id, cc.bytes.Load())
	return nil
}

func (c *coordinator) addWire(id int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Comm ledger: measured socket bytes over a loopback-speed link plus
	// a per-message floor would double-model; record bytes directly.
	c.result.Machines[id].Comm += time.Duration(bytes) // 1ns/byte ≈ 1 GB/s link
}

func runTCPMachine(id int, addr string, data *graph.Graph, tree *order.QueryTree,
	cons *auto.Constraints, cfg Config) error {

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(msgHello{ID: id}); err != nil {
		return err
	}
	var welcome msgWelcome
	if err := dec.Decode(&welcome); err != nil {
		return fmt.Errorf("welcome: %w", err)
	}
	// The machine's span tree roots under the wire-propagated trace
	// position — never an in-process pointer — so the stitch works the
	// same when the machine is a separate process on another host.
	var span *obs.Span
	if tc, err := obs.ParseTraceparent(welcome.Traceparent); err == nil {
		span = cfg.Tracer.StartRemote(tc, "machine", obs.Int("id", int64(id)))
	}
	defer span.End()

	var (
		found     int64
		buildTime time.Duration
		enumTime  time.Duration
		ix        *ceci.Index
	)
	for {
		if err := enc.Encode(msgNext{ID: id}); err != nil {
			return err
		}
		var work msgWork
		if err := dec.Decode(&work); err != nil {
			return err
		}
		if work.Done {
			break
		}
		// Build lazily, per cluster: the machine's CECI covers exactly
		// the pivots it ends up processing (including stolen ones).
		csp := span.Child("cluster",
			obs.Int("pivot", int64(work.Pivot)),
			obs.Int("stolen", b2i(work.Stolen)))
		t0 := time.Now()
		ix = ceci.Build(data, tree, ceci.Options{
			Workers: cfg.WorkersPerMachine,
			Pivots:  []graph.VertexID{work.Pivot},
		})
		buildTime += time.Since(t0)
		if len(ix.Pivots()) == 0 {
			csp.End()
			continue
		}
		t0 = time.Now()
		m := enum.NewMatcher(ix, enum.Options{
			Workers:  cfg.WorkersPerMachine,
			Strategy: workload.FGD,
			Beta:     cfg.Beta,
		})
		found += m.Count()
		enumTime += time.Since(t0)
		csp.End()
	}
	return enc.Encode(msgReport{
		ID:           id,
		Embeddings:   found,
		BuildCompute: buildTime,
		Enumerate:    enumTime,
	})
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// countingConn measures wire traffic; every read/write is also mirrored
// into the global counter set (when present) so BytesOnWire and
// MessagesSent advance live on the telemetry endpoint instead of only
// appearing in the final ledgers.
type countingConn struct {
	net.Conn
	bytes    atomic.Int64
	messages atomic.Int64
	global   *stats.Counters
}

func newCountingConn(c net.Conn, global *stats.Counters) *countingConn {
	return &countingConn{Conn: c, global: global}
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.bytes.Add(int64(n))
	if c.global != nil {
		c.global.BytesOnWire.Add(int64(n))
	}
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.bytes.Add(int64(n))
	c.messages.Add(1)
	if c.global != nil {
		c.global.BytesOnWire.Add(int64(n))
		c.global.MessagesSent.Add(1)
	}
	return n, err
}
