package cluster

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ceci/internal/ceci"
	"ceci/internal/enum"
	"ceci/internal/graph"
	"ceci/internal/order"
	"ceci/internal/stats"
	"ceci/internal/workload"
)

// RunDiskShared executes the paper's §5 shared-storage deployment with
// real file IO: the data graph lives in a single CSR file (the lustre
// stand-in); machines hold only the beginning_position and label arrays
// and materialize, on demand, the region of the graph their pivot
// partition needs — depth-bounded BFS reads against the file. The IO the
// ledgers report is measured, not modeled: every adjacency fetch was a
// positioned read.
//
// The query is preprocessed against the disk graph's metadata (degrees
// and labels are resident; the NLC filter for pivot selection reads
// adjacency, charged like every other read, reproducing the paper's
// "CECI construction can take up to 40% of the total run-time" in this
// mode).
func RunDiskShared(csrPath string, query *graph.Graph, cfg Config) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	coordStats := &stats.Counters{}
	disk, err := graph.OpenDiskCSR(csrPath, coordStats)
	if err != nil {
		return nil, err
	}
	defer disk.Close()

	// The query tree is derived from the query alone plus cheap root
	// selection against disk metadata.
	tree, pivots, err := preprocessOnDisk(disk, query)
	if err != nil {
		return nil, err
	}
	// Shared-storage pivot distribution uses degree only (§5: "only the
	// degree of a node v is used since the neighbor information is not
	// available"), scaled by vertex ID as in distributePivots.
	parts := distributeByDegree(disk, pivots, cfg.Machines)

	res := &Result{Machines: make([]Ledger, cfg.Machines)}
	depth := treeHeight(tree)
	var total atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Machines)
	for id := 0; id < cfg.Machines; id++ {
		res.Machines[id].Pivots = len(parts[id])
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			led := &res.Machines[id]
			if len(parts[id]) == 0 {
				return
			}
			st := &stats.Counters{}
			md, err := graph.OpenDiskCSR(csrPath, st)
			if err != nil {
				errs <- err
				return
			}
			defer md.Close()

			ioStart := time.Now()
			region, err := md.MaterializeRegion(parts[id], depth)
			if err != nil {
				errs <- err
				return
			}
			led.BuildIO = time.Since(ioStart)
			led.RemoteReads = st.RemoteReads.Load()

			buildStart := time.Now()
			ix := ceci.Build(region, tree, ceci.Options{
				Workers: cfg.WorkersPerMachine,
				Pivots:  parts[id],
			})
			led.BuildCompute = time.Since(buildStart)

			enumStart := time.Now()
			n := enum.NewMatcher(ix, enum.Options{
				Workers:  cfg.WorkersPerMachine,
				Strategy: workload.FGD,
				Beta:     cfg.Beta,
			}).Count()
			led.Enumerate = time.Since(enumStart)
			led.Embeddings = n
			total.Add(n)
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Embeddings = total.Load()
	for i := range res.Machines {
		if t := res.Machines[i].Total(); t > res.Makespan {
			res.Makespan = t
		}
	}
	return res, nil
}

// preprocessOnDisk derives the query tree and pivots using only disk
// metadata plus charged adjacency reads for the NLC filter.
func preprocessOnDisk(disk *graph.DiskCSR, query *graph.Graph) (*order.QueryTree, []graph.VertexID, error) {
	// Build a minimal in-memory view sufficient for order.Preprocess's
	// candidate counting: labels and degrees are resident; the NLC filter
	// needs neighbor labels, so candidate counting reads adjacency.
	// Rather than replicating the preprocessing logic, materialize the
	// label-filtered candidate neighborhoods of every query label — the
	// same reads the real system would issue — and preprocess on that
	// partial view.
	seeds := make([]graph.VertexID, 0, 1024)
	seen := make(map[graph.VertexID]bool)
	for u := 0; u < query.NumVertices(); u++ {
		for _, l := range query.Labels(graph.VertexID(u)) {
			for v := 0; v < disk.NumVertices(); v++ {
				if disk.Label(graph.VertexID(v)) == l && !seen[graph.VertexID(v)] {
					seen[graph.VertexID(v)] = true
					seeds = append(seeds, graph.VertexID(v))
				}
			}
		}
	}
	view, err := disk.MaterializeRegion(seeds, 0)
	if err != nil {
		return nil, nil, err
	}
	tree, err := order.Preprocess(view, query, order.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	var pivots []graph.VertexID
	order.ForEachCandidate(view, query, tree.Root, func(v graph.VertexID) {
		pivots = append(pivots, v)
	})
	return tree, pivots, nil
}

func distributeByDegree(disk *graph.DiskCSR, pivots []graph.VertexID, machines int) [][]graph.VertexID {
	n := float64(disk.NumVertices())
	loads := make([]float64, machines)
	parts := make([][]graph.VertexID, machines)
	for _, v := range pivots {
		w := float64(disk.Degree(v)) * (n - float64(v)) / n
		best := 0
		for i := 1; i < machines; i++ {
			if loads[i] < loads[best] {
				best = i
			}
		}
		loads[best] += w + 1
		parts[best] = append(parts[best], v)
	}
	for _, p := range parts {
		sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
	}
	return parts
}

func treeHeight(tree *order.QueryTree) int {
	max := int32(0)
	for _, d := range tree.Depth {
		if d > max {
			max = d
		}
	}
	return int(max)
}
