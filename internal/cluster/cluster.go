// Package cluster simulates the paper's distributed CECI deployment
// (Section 5) on a single host: machines are goroutine ensembles with
// explicit message and IO accounting, so the distributed experiments
// (Figures 16, 17, 20) can be reproduced without MPI or a lustre
// filesystem.
//
// What is faithful to the paper:
//
//   - two graph-placement modes: Replicated (every machine holds the data
//     graph; Figure 16) and SharedStorage (one CSR copy behind a
//     latency-charged accessor; Figure 17);
//   - pivot distribution by the light-weight workload estimate of §5
//     (degree + neighbor degrees when the graph is local, degree only
//     when it is not), scaled by (|V|-v)/|V| to account for the
//     automorphism-breaking order;
//   - Jaccard-similarity co-location of overlapping clusters (replicated
//     mode only, top-K largest clusters, J >= 0.5);
//   - per-machine CECI construction over the machine's pivot partition;
//   - work stealing from the machine with the most unexplored clusters,
//     modeled as a one-sided read of the victim's queue and index (the
//     MPI_Get of the paper);
//   - result accumulation to machine 0.
//
// What is modeled rather than physical: network latency/bandwidth and
// shared-storage read cost are charged to per-machine cost ledgers
// (Ledger) instead of being slept away, so experiments report both the
// measured compute time and the modeled IO/communication components —
// exactly the breakdown Figure 20 plots.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ceci/internal/auto"
	"ceci/internal/ceci"
	"ceci/internal/enum"
	"ceci/internal/graph"
	"ceci/internal/obs"
	"ceci/internal/order"
	"ceci/internal/prof"
	"ceci/internal/stats"
	"ceci/internal/workload"
)

// Mode selects graph placement.
type Mode int

const (
	// Replicated loads the whole data graph into every machine's memory
	// (the Figure 16 configuration).
	Replicated Mode = iota
	// SharedStorage keeps one CSR on networked storage; every adjacency
	// fetch during CECI construction pays the remote-read cost (the
	// Figure 17 configuration).
	SharedStorage
)

func (m Mode) String() string {
	if m == SharedStorage {
		return "shared-storage"
	}
	return "replicated"
}

// Config describes the simulated deployment.
type Config struct {
	// Machines is the number of simulated machines (paper: 1–16).
	Machines int
	// WorkersPerMachine is the per-machine thread count (paper: 4).
	WorkersPerMachine int
	// Mode selects Replicated or SharedStorage placement.
	Mode Mode
	// RemoteReadLatency is charged per adjacency fetch in SharedStorage
	// mode (default 5µs, a contended networked read).
	RemoteReadLatency time.Duration
	// MessageLatency is charged per control message (default 50µs).
	MessageLatency time.Duration
	// BytesPerSecond models storage/network bandwidth for bulk transfers
	// (default 1 GiB/s).
	BytesPerSecond float64
	// Jaccard enables similarity-based co-location (replicated only).
	Jaccard bool
	// JaccardTopK bounds how many of the largest clusters are compared
	// (default 1000, as in the paper).
	JaccardTopK int
	// Beta is the FGD ExtremeCluster threshold within each machine.
	Beta float64
	// Stats receives global counters (may be nil). Steal attempts,
	// embeddings, remote reads, and (TCP mode) wire bytes and message
	// counts are added live as machines progress, so an attached
	// telemetry endpoint sees them mid-run.
	Stats *stats.Counters
	// Tracer records per-machine build/enumerate spans (may be nil).
	Tracer *obs.Tracer
	// Profile receives the EXPLAIN ANALYZE accounting (may be nil): the
	// filter funnel of every machine's build, enumeration intersection
	// costs, per-machine cluster cardinalities, and one worker slot per
	// machine filled from its ledger (busy = enumerate wall time,
	// units = clusters executed, steals = clusters stolen).
	Profile *prof.Collector
	// Obs, when non-nil, is wired to the run: Stats become its counter
	// set, the tracer is attached, and a "cluster" gauge source exposes
	// per-machine pending-queue depth (and, in TCP mode, stolen-cluster
	// counts) for mid-run scraping.
	Obs *obs.Registry
}

// wireObs connects the registry to this run's stats/tracer, creating a
// counter set when the caller supplied neither.
func (c *Config) wireObs() {
	if c.Obs == nil {
		return
	}
	if existing := c.Obs.Counters(); c.Stats == nil && existing != nil {
		c.Stats = existing
	}
	if c.Stats == nil {
		c.Stats = &stats.Counters{}
	}
	c.Obs.SetCounters(c.Stats)
	if c.Tracer != nil {
		c.Obs.SetTracer(c.Tracer)
	}
}

func (c *Config) defaults() error {
	if c.Machines <= 0 {
		return errors.New("cluster: Machines must be positive")
	}
	if c.WorkersPerMachine <= 0 {
		c.WorkersPerMachine = 4
	}
	if c.RemoteReadLatency <= 0 {
		c.RemoteReadLatency = 5 * time.Microsecond
	}
	if c.MessageLatency <= 0 {
		c.MessageLatency = 50 * time.Microsecond
	}
	if c.BytesPerSecond <= 0 {
		c.BytesPerSecond = 1 << 30
	}
	if c.JaccardTopK <= 0 {
		c.JaccardTopK = 1000
	}
	return nil
}

// Ledger is a per-machine cost account combining measured wall time with
// modeled IO and communication charges.
type Ledger struct {
	BuildCompute time.Duration // measured: CECI construction CPU
	BuildIO      time.Duration // modeled: remote reads (SharedStorage) or initial graph load (Replicated)
	Comm         time.Duration // modeled: pivot distribution, steals, result accumulation
	Enumerate    time.Duration // measured: embedding enumeration wall time
	Pivots       int           // clusters assigned initially
	Stolen       int           // clusters obtained by stealing
	Embeddings   int64
	RemoteReads  int64
	MessagesSent int64
}

// Total returns the machine's end-to-end modeled time.
func (l *Ledger) Total() time.Duration {
	return l.BuildCompute + l.BuildIO + l.Comm + l.Enumerate
}

// Result is the outcome of a simulated distributed run.
type Result struct {
	Embeddings int64
	Machines   []Ledger
	// Makespan is the slowest machine's total modeled time — the quantity
	// whose inverse scaling Figures 16/17 plot.
	Makespan time.Duration
	// Steals counts successful work-steal transfers.
	Steals int64
}

// Run executes the distributed subgraph listing simulation.
func Run(data, query *graph.Graph, cfg Config) (*Result, error) {
	return RunCtx(context.Background(), data, query, cfg)
}

// RunCtx is Run under a context. Cancellation is honored at cluster
// granularity — each machine checks the context before building its CECI,
// before every locally-owned pivot, and before every steal — and inside
// per-cluster enumeration through the enumerator's own context plumbing.
// On cancellation the partial Result accumulated so far is returned
// together with the context's cause.
func RunCtx(ctx context.Context, data, query *graph.Graph, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	cfg.wireObs()
	// StartUnder joins the request's trace when the context carries an
	// ambient span or trace context (service queries); a bare Run stays a
	// local root span.
	runSpan := obs.StartUnder(ctx, cfg.Tracer, "cluster-run",
		obs.Int("machines", int64(cfg.Machines)),
		obs.String("mode", cfg.Mode.String()))
	defer runSpan.End()
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		return nil, err
	}
	cons := auto.Compute(query)

	// Coordinator: collect pivots and distribute them by the §5
	// light-weight workload estimate.
	var pivots []graph.VertexID
	order.ForEachCandidate(data, query, tree.Root, func(v graph.VertexID) {
		pivots = append(pivots, v)
	})
	parts := distributePivots(data, pivots, cfg)

	res := &Result{Machines: make([]Ledger, cfg.Machines)}
	machines := make([]*machine, cfg.Machines)
	for i := range machines {
		machines[i] = &machine{
			id:     i,
			ctx:    ctx,
			cfg:    &cfg,
			data:   data,
			tree:   tree,
			cons:   cons,
			ledger: &res.Machines[i],
			span:   runSpan.Child("machine", obs.Int("id", int64(i))),
		}
	}
	// Shared steal registry: pending (machine, pivot-queue) state.
	reg := &stealRegistry{queues: make([]pivotQueue, cfg.Machines)}
	if cfg.Obs != nil {
		// Per-machine pending-queue depth, scrapeable mid-run.
		cfg.Obs.SetSource("cluster", func() map[string]int64 {
			out := make(map[string]int64, len(reg.queues)+1)
			out["machines"] = int64(len(reg.queues))
			for i := range reg.queues {
				out[fmt.Sprintf("machine_%d_pending", i)] = int64(reg.queues[i].size())
			}
			return out
		})
	}
	for i, p := range parts {
		reg.queues[i].pivots = p
		res.Machines[i].Pivots = len(p)
		// Pivot distribution: one message per machine plus payload bytes.
		res.Machines[i].Comm += cfg.MessageLatency +
			time.Duration(float64(len(p)*4)/cfg.BytesPerSecond*float64(time.Second))
		res.Machines[i].MessagesSent++
	}

	cfg.Profile.EnsureWorkers(cfg.Machines)

	var total atomic.Int64
	var steals atomic.Int64
	var wg sync.WaitGroup
	for _, m := range machines {
		wg.Add(1)
		go func(m *machine) {
			defer wg.Done()
			m.run(reg, &total, &steals)
		}(m)
	}
	wg.Wait()

	// Result accumulation to machine 0: one message per other machine.
	for i := 1; i < cfg.Machines; i++ {
		res.Machines[i].Comm += cfg.MessageLatency
		res.Machines[i].MessagesSent++
	}

	res.Embeddings = total.Load()
	res.Steals = steals.Load()
	for i := range res.Machines {
		if t := res.Machines[i].Total(); t > res.Makespan {
			res.Makespan = t
		}
	}
	cfg.Profile.AddEnumWall(res.Makespan)
	// Embeddings, steals, and remote reads were added to cfg.Stats live,
	// per pivot/steal, inside machine.run.
	if err := ctx.Err(); err != nil {
		return res, context.Cause(ctx)
	}
	return res, nil
}

// distributePivots assigns pivots to machines via the shared §5
// workload-estimate partitioner (workload.DistributePivots). Neighbor
// degrees and Jaccard co-location require the whole graph locally, so
// both are gated on Replicated mode.
func distributePivots(data *graph.Graph, pivots []graph.VertexID, cfg Config) [][]graph.VertexID {
	return workload.DistributePivots(data, pivots, workload.DistributeOptions{
		Parts:           cfg.Machines,
		NeighborDegrees: cfg.Mode == Replicated,
		Jaccard:         cfg.Jaccard && cfg.Mode == Replicated,
		JaccardTopK:     cfg.JaccardTopK,
	})
}

// pivotQueue is one machine's pending clusters, stealable by others.
type pivotQueue struct {
	mu     sync.Mutex
	pivots []graph.VertexID
	index  *ceci.Index // published after the owner builds it
}

func (q *pivotQueue) pop() (graph.VertexID, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pivots) == 0 {
		return 0, false
	}
	v := q.pivots[len(q.pivots)-1]
	q.pivots = q.pivots[:len(q.pivots)-1]
	return v, true
}

func (q *pivotQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pivots)
}

type stealRegistry struct {
	queues []pivotQueue
}

// victim returns the machine with the most unexplored clusters, excluding
// self; ok is false when everything is drained.
func (r *stealRegistry) victim(self int) (int, bool) {
	best, bestSize := -1, 0
	for i := range r.queues {
		if i == self {
			continue
		}
		if s := r.queues[i].size(); s > bestSize {
			best, bestSize = i, s
		}
	}
	return best, best >= 0
}

type machine struct {
	id     int
	ctx    context.Context
	cfg    *Config
	data   *graph.Graph
	tree   *order.QueryTree
	cons   *auto.Constraints
	ledger *Ledger
	span   *obs.Span
}

func (m *machine) run(reg *stealRegistry, total *atomic.Int64, steals *atomic.Int64) {
	defer m.span.End()
	q := &reg.queues[m.id]

	// Phase 1: build the local CECI over this machine's pivot partition.
	// The build opens its own span (with expand/refine children); parenting
	// it under this machine's span via the context keeps one tree.
	st := &stats.Counters{}
	buildCtx := obs.ContextWithSpan(obs.DetachTrace(m.ctx), m.span)
	start := time.Now()
	q.mu.Lock()
	myPivots := append([]graph.VertexID(nil), q.pivots...)
	q.mu.Unlock()
	var ix *ceci.Index
	if len(myPivots) > 0 {
		var err error
		ix, err = ceci.BuildCtx(buildCtx, m.data, m.tree, ceci.Options{
			Workers: m.cfg.WorkersPerMachine,
			Pivots:  myPivots,
			Stats:   st,
			Profile: m.cfg.Profile,
		})
		if err != nil {
			// Cancelled mid-build: this machine contributes nothing; the
			// loops below observe the context and drain immediately.
			ix = nil
		}
	}
	if p := m.cfg.Profile; p != nil && ix != nil {
		// The per-pivot inner matchers get no profile (their worker IDs
		// would collide across machines); this machine's cluster
		// cardinalities and ledger are recorded here instead.
		cards := make([]int64, len(myPivots))
		for i, pv := range myPivots {
			cards[i] = ix.ClusterCardinality(pv)
		}
		p.RecordClusters(workload.FGD.String(), cards, cards)
	}
	m.ledger.BuildCompute = time.Since(start)
	m.ledger.RemoteReads = st.RemoteReads.Load()
	if g := m.cfg.Stats; g != nil {
		g.RemoteReads.Add(m.ledger.RemoteReads)
	}

	switch m.cfg.Mode {
	case SharedStorage:
		// Every adjacency fetch paid the remote-read cost.
		m.ledger.BuildIO = time.Duration(m.ledger.RemoteReads) * m.cfg.RemoteReadLatency
	case Replicated:
		// One bulk load of the CSR into local memory.
		bytes := float64(m.data.BytesEstimate())
		m.ledger.BuildIO = time.Duration(bytes / m.cfg.BytesPerSecond * float64(time.Second))
	}

	q.mu.Lock()
	q.index = ix
	q.mu.Unlock()

	// Phase 2: enumerate local clusters, then steal. The per-pivot inner
	// matchers run under a detached context — one "enumerate" span per
	// pivot would flood the trace — so this wrapper span is the phase's
	// representation in the tree.
	esp := m.span.Child("enumerate")
	defer esp.End()
	pivotCtx := obs.DetachTrace(m.ctx)
	enumStart := time.Now()
	var found, executed int64
	runPivot := func(ix *ceci.Index, pivot graph.VertexID) {
		executed++
		sub := restrictIndex(ix, pivot)
		matcher := enum.NewMatcher(sub, enum.Options{
			Workers:  m.cfg.WorkersPerMachine,
			Strategy: workload.FGD,
			Beta:     m.cfg.Beta,
		})
		n, _ := matcher.CountCtx(pivotCtx)
		found += n
		// Live accounting: the totals and global counters advance per
		// cluster, not at machine exit, so telemetry tracks the run.
		total.Add(n)
		m.cfg.Stats.AddEmbeddings(n)
	}
	for {
		if m.ctx.Err() != nil {
			break
		}
		pivot, ok := q.pop()
		if !ok {
			break
		}
		if ix != nil {
			runPivot(ix, pivot)
		}
	}
	// Work stealing: one-sided reads of the victim's queue and index.
	for m.ctx.Err() == nil {
		victim, ok := reg.victim(m.id)
		if !ok {
			break
		}
		vq := &reg.queues[victim]
		vq.mu.Lock()
		vix := vq.index
		vq.mu.Unlock()
		if vix == nil {
			// The victim is still building its CECI; its clusters are
			// not stealable yet.
			runtime.Gosched()
			continue
		}
		pivot, ok := vq.pop()
		if !ok {
			continue
		}
		m.ledger.Comm += m.cfg.MessageLatency // the MPI_Get
		m.ledger.MessagesSent++
		m.ledger.Stolen++
		steals.Add(1)
		if g := m.cfg.Stats; g != nil {
			g.StealAttempts.Add(1)
		}
		runPivot(vix, pivot)
	}
	m.ledger.Enumerate = time.Since(enumStart)
	m.ledger.Embeddings = found
	m.cfg.Profile.RecordWorker(m.id, m.ledger.Enumerate, executed, int64(m.ledger.Stolen))
}

// restrictIndex views ix through a single pivot without copying: the
// enumerator only reads Cands of the root to seed clusters, so a shallow
// clone with a one-element root candidate list suffices.
func restrictIndex(ix *ceci.Index, pivot graph.VertexID) *ceci.Index {
	clone := *ix
	clone.Nodes = append([]ceci.Node(nil), ix.Nodes...)
	root := ix.Tree.Root
	node := clone.Nodes[root]
	node.Cands = []graph.VertexID{pivot}
	clone.Nodes[root] = node
	return &clone
}

// String renders a result summary.
func (r *Result) String() string {
	return fmt.Sprintf("cluster{embeddings=%d machines=%d makespan=%v steals=%d}",
		r.Embeddings, len(r.Machines), r.Makespan, r.Steals)
}
