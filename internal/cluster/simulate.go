package cluster

import (
	"sort"
	"time"

	"ceci/internal/ceci"
	"ceci/internal/enum"
	"ceci/internal/graph"
	"ceci/internal/order"
	"ceci/internal/stats"
	"ceci/internal/workload"
)

// Simulation is the modeled-time version of a distributed run: the CECI
// build and each embedding cluster's enumeration are measured serially
// once (so host core count does not distort the numbers), after which
// any machine-count/mode configuration can be replayed through a
// discrete-event simulation of the distributed schedule — including
// pivot partitioning, work stealing, and IO/communication charges. This
// is what the Figure 16/17 speedup curves and the Figure 20 build-cost
// breakdown are generated from; Run is the real concurrent
// implementation, cross-checked against the simulation for identical
// embedding counts.
type Simulation struct {
	data  *graph.Graph
	query *graph.Graph
	tree  *order.QueryTree

	pivots      []graph.VertexID
	clusterCost map[graph.VertexID]time.Duration
	clusterEmb  map[graph.VertexID]int64

	buildCompute time.Duration // serial build of the full index
	remoteReads  int64         // adjacency fetches during that build
	total        int64         // total embeddings
}

// NewSimulation measures the workload once: one serial index build plus
// one serial enumeration per embedding cluster.
func NewSimulation(data, query *graph.Graph) (*Simulation, error) {
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		return nil, err
	}
	s := &Simulation{
		data:        data,
		query:       query,
		tree:        tree,
		clusterCost: make(map[graph.VertexID]time.Duration),
		clusterEmb:  make(map[graph.VertexID]int64),
	}
	st := &stats.Counters{}
	start := time.Now()
	ix := ceci.Build(data, tree, ceci.Options{Workers: 1, Stats: st})
	s.buildCompute = time.Since(start)
	s.remoteReads = st.RemoteReads.Load()
	s.pivots = append(s.pivots, ix.Pivots()...)

	// Per-cluster measured costs: one searcher reused across clusters.
	m := enum.NewMatcher(ix, enum.Options{Workers: 1, Strategy: workload.CGD})
	for _, c := range m.MeasureUnits() {
		pivot := c.Unit.Prefix[0]
		s.clusterCost[pivot] = c.Duration
		s.clusterEmb[pivot] = c.Embeddings
		s.total += c.Embeddings
	}
	return s, nil
}

// Embeddings returns the measured total embedding count.
func (s *Simulation) Embeddings() int64 { return s.total }

// Run replays the distributed schedule for one configuration.
func (s *Simulation) Run(cfg Config) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	parts := distributePivots(s.data, s.pivots, cfg)
	res := &Result{Machines: make([]Ledger, cfg.Machines)}

	type clusterCost struct {
		pivot graph.VertexID
		cost  time.Duration
		embs  int64
	}
	queues := make([][]clusterCost, cfg.Machines)
	totalPivots := len(s.pivots)
	for i, part := range parts {
		led := &res.Machines[i]
		led.Pivots = len(part)
		led.Comm += cfg.MessageLatency +
			time.Duration(float64(len(part)*4)/cfg.BytesPerSecond*float64(time.Second))
		led.MessagesSent++
		if len(part) == 0 {
			continue
		}
		// Each machine builds a CECI restricted to its pivot share; the
		// frontier work — and hence compute and remote reads — scales
		// with that share (the paper's light-weight balancing targets
		// exactly this proportionality).
		share := float64(len(part)) / float64(totalPivots)
		led.BuildCompute = time.Duration(share * float64(s.buildCompute))
		led.RemoteReads = int64(share * float64(s.remoteReads))
		switch cfg.Mode {
		case SharedStorage:
			led.BuildIO = time.Duration(led.RemoteReads) * cfg.RemoteReadLatency
		case Replicated:
			led.BuildIO = time.Duration(float64(s.data.BytesEstimate()) /
				cfg.BytesPerSecond * float64(time.Second))
		}
		for _, p := range part {
			queues[i] = append(queues[i], clusterCost{p, s.clusterCost[p], s.clusterEmb[p]})
		}
		// Big clusters first, as the real work pool orders them.
		sort.Slice(queues[i], func(a, b int) bool {
			return queues[i][a].cost > queues[i][b].cost
		})
	}

	// Discrete-event replay with work stealing. A machine with W workers
	// is modeled as a server of speed W (per-cluster FGD decomposition
	// makes clusters divisible in the real system, so the fluid
	// approximation is close).
	speed := float64(cfg.WorkersPerMachine)
	clock := make([]time.Duration, cfg.Machines)
	enumTime := make([]time.Duration, cfg.Machines)
	for i := range clock {
		clock[i] = res.Machines[i].BuildCompute + res.Machines[i].BuildIO + res.Machines[i].Comm
	}
	active := cfg.Machines
	done := make([]bool, cfg.Machines)
	for active > 0 {
		m := -1
		for i := 0; i < cfg.Machines; i++ {
			if !done[i] && (m < 0 || clock[i] < clock[m]) {
				m = i
			}
		}
		if len(queues[m]) > 0 {
			c := queues[m][0]
			queues[m] = queues[m][1:]
			d := time.Duration(float64(c.cost) / speed)
			clock[m] += d
			enumTime[m] += d
			res.Machines[m].Embeddings += c.embs
			continue
		}
		// Steal from the victim with the most unexplored clusters.
		victim, best := -1, 0
		for i := 0; i < cfg.Machines; i++ {
			if i != m && len(queues[i]) > best {
				victim, best = i, len(queues[i])
			}
		}
		if victim < 0 {
			done[m] = true
			active--
			continue
		}
		c := queues[victim][0]
		queues[victim] = queues[victim][1:]
		res.Machines[m].Stolen++
		res.Machines[m].MessagesSent++
		res.Steals++
		d := time.Duration(float64(c.cost) / speed)
		clock[m] += cfg.MessageLatency + d
		enumTime[m] += d
		res.Machines[m].Embeddings += c.embs
		res.Machines[m].Comm += cfg.MessageLatency
	}
	for i := range res.Machines {
		res.Machines[i].Enumerate = enumTime[i]
		if t := res.Machines[i].Total(); t > res.Makespan {
			res.Makespan = t
		}
	}
	res.Embeddings = s.total
	return res, nil
}

// Simulate is the one-shot convenience: measure then replay one
// configuration. Prefer NewSimulation + Run when sweeping machine
// counts — the measurement is by far the expensive part.
func Simulate(data, query *graph.Graph, cfg Config) (*Result, error) {
	sim, err := NewSimulation(data, query)
	if err != nil {
		return nil, err
	}
	return sim.Run(cfg)
}
