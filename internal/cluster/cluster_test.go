package cluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ceci/internal/auto"
	"ceci/internal/cluster"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/obs"
	"ceci/internal/reference"
)

func TestClusterMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		data := randomGraph(rng, 20, 60, 2)
		query, err := gen.DFSQuery(data, 3+rng.Intn(3), rng)
		if err != nil {
			continue
		}
		cons := auto.Compute(query)
		want := reference.Count(data, query, reference.Options{Constraints: cons})
		for _, machines := range []int{1, 3, 5} {
			for _, mode := range []cluster.Mode{cluster.Replicated, cluster.SharedStorage} {
				res, err := cluster.Run(data, query, cluster.Config{
					Machines:          machines,
					WorkersPerMachine: 2,
					Mode:              mode,
				})
				if err != nil {
					t.Fatalf("trial %d m=%d %v: %v", trial, machines, mode, err)
				}
				if res.Embeddings != want {
					t.Fatalf("trial %d m=%d %v: got %d want %d",
						trial, machines, mode, res.Embeddings, want)
				}
			}
		}
	}
}

func TestClusterJaccardColocationAgrees(t *testing.T) {
	data := gen.Kronecker(9, 8, 13)
	query := gen.QG2()
	base, err := cluster.Run(data, query, cluster.Config{Machines: 4, WorkersPerMachine: 1})
	if err != nil {
		t.Fatal(err)
	}
	jac, err := cluster.Run(data, query, cluster.Config{
		Machines: 4, WorkersPerMachine: 1, Jaccard: true, JaccardTopK: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Embeddings != jac.Embeddings {
		t.Fatalf("jaccard co-location changed result: %d vs %d", jac.Embeddings, base.Embeddings)
	}
}

func TestClusterLedgers(t *testing.T) {
	data := gen.Kronecker(9, 8, 5)
	res, err := cluster.Run(data, gen.QG1(), cluster.Config{
		Machines: 4, WorkersPerMachine: 1, Mode: cluster.SharedStorage,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("makespan not recorded")
	}
	var pivots, reads int64
	for _, l := range res.Machines {
		pivots += int64(l.Pivots)
		reads += l.RemoteReads
	}
	if pivots == 0 {
		t.Fatal("no pivots distributed")
	}
	if reads == 0 {
		t.Fatal("shared-storage mode recorded no remote reads")
	}
	// BuildIO must reflect the remote reads in shared mode.
	for i, l := range res.Machines {
		if l.RemoteReads > 0 && l.BuildIO == 0 {
			t.Fatalf("machine %d: %d remote reads but zero BuildIO", i, l.RemoteReads)
		}
	}
}

func TestClusterWorkStealingOccurs(t *testing.T) {
	// A deliberately skewed pivot distribution: a hub-heavy Kronecker
	// graph with many machines and one worker each should trigger steals
	// at least sometimes. This asserts the mechanism works end-to-end
	// (count correct even when steals happen), not a scheduling property.
	data := gen.Kronecker(10, 10, 2)
	query := gen.QG1()
	res, err := cluster.Run(data, query, cluster.Config{Machines: 8, WorkersPerMachine: 1})
	if err != nil {
		t.Fatal(err)
	}
	single, err := cluster.Run(data, query, cluster.Config{Machines: 1, WorkersPerMachine: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embeddings != single.Embeddings {
		t.Fatalf("distributed count %d != single-machine %d", res.Embeddings, single.Embeddings)
	}
}

// TestSimulateMatchesRun: the discrete-event simulation and the real
// concurrent implementation must find the same embedding count for the
// same configuration.
func TestSimulateMatchesRun(t *testing.T) {
	data := gen.Kronecker(9, 6, 17)
	query := gen.QG2()
	sim, err := cluster.NewSimulation(data, query)
	if err != nil {
		t.Fatal(err)
	}
	for _, machines := range []int{1, 3, 8} {
		for _, mode := range []cluster.Mode{cluster.Replicated, cluster.SharedStorage} {
			cfg := cluster.Config{Machines: machines, WorkersPerMachine: 2, Mode: mode}
			simRes, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			runRes, err := cluster.Run(data, query, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if simRes.Embeddings != runRes.Embeddings {
				t.Fatalf("m=%d %v: simulate %d != run %d",
					machines, mode, simRes.Embeddings, runRes.Embeddings)
			}
			if simRes.Embeddings != sim.Embeddings() {
				t.Fatal("result total diverges from measurement total")
			}
			// Pivot conservation: assignments cover every cluster.
			pivots := 0
			for _, l := range simRes.Machines {
				pivots += l.Pivots
			}
			wantPivots := 0
			for _, l := range runRes.Machines {
				wantPivots += l.Pivots
			}
			if pivots != wantPivots {
				t.Fatalf("pivot counts diverge: %d vs %d", pivots, wantPivots)
			}
		}
	}
}

// TestSimulationSpeedupMonotone: more machines never increase the
// enumeration-phase makespan in replicated mode (build and comm charges
// are per-machine constants there).
func TestSimulationSpeedupMonotone(t *testing.T) {
	data := gen.Kronecker(10, 8, 23)
	sim, err := cluster.NewSimulation(data, gen.QG1())
	if err != nil {
		t.Fatal(err)
	}
	var prev *cluster.Result
	for _, machines := range []int{1, 2, 4, 8} {
		res, err := sim.Run(cluster.Config{Machines: machines, WorkersPerMachine: 2})
		if err != nil {
			t.Fatal(err)
		}
		var maxEnum, prevMax = maxEnumerate(res), maxEnumerate(prev)
		if prev != nil && maxEnum > prevMax+prevMax/4 {
			t.Fatalf("enumeration makespan grew: %v -> %v at %d machines",
				prevMax, maxEnum, machines)
		}
		prev = res
	}
}

func maxEnumerate(r *cluster.Result) (max time.Duration) {
	if r == nil {
		return 0
	}
	for _, l := range r.Machines {
		if l.Enumerate > max {
			max = l.Enumerate
		}
	}
	return max
}

func TestClusterRejectsBadConfig(t *testing.T) {
	data := gen.Kronecker(6, 4, 1)
	if _, err := cluster.Run(data, gen.QG1(), cluster.Config{Machines: 0}); err == nil {
		t.Fatal("expected error for zero machines")
	}
}

func randomGraph(rng *rand.Rand, n, m, labels int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(labels)))
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.VertexID(perm[i-1]), graph.VertexID(perm[i]))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return b.MustBuild()
}

// TestRunTCPMatchesOracle: the TCP-transport deployment must agree with
// the oracle and with the in-process Run.
func TestRunTCPMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		data := randomGraph(rng, 25, 70, 2)
		query, err := gen.DFSQuery(data, 3+rng.Intn(3), rng)
		if err != nil {
			continue
		}
		cons := auto.Compute(query)
		want := reference.Count(data, query, reference.Options{Constraints: cons})
		for _, machines := range []int{1, 4} {
			res, err := cluster.RunTCP(data, query, cluster.Config{
				Machines:          machines,
				WorkersPerMachine: 2,
			})
			if err != nil {
				t.Fatalf("trial %d m=%d: %v", trial, machines, err)
			}
			if res.Embeddings != want {
				t.Fatalf("trial %d m=%d: got %d want %d", trial, machines, res.Embeddings, want)
			}
		}
	}
}

// TestRunTCPWireAccounting: messages and bytes must actually flow.
func TestRunTCPWireAccounting(t *testing.T) {
	data := gen.Kronecker(9, 6, 3)
	res, err := cluster.RunTCP(data, gen.QG1(), cluster.Config{
		Machines: 3, WorkersPerMachine: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var msgs int64
	var comm time.Duration
	for _, l := range res.Machines {
		msgs += l.MessagesSent
		comm += l.Comm
	}
	if msgs == 0 {
		t.Fatal("no messages counted on the wire")
	}
	if comm == 0 {
		t.Fatal("no wire bytes recorded")
	}
}

// TestRunDiskSharedMatchesOracle: the real-file-IO shared-storage
// deployment must produce exact counts and record actual reads.
func TestRunDiskSharedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	dir := t.TempDir()
	for trial := 0; trial < 6; trial++ {
		data := randomGraph(rng, 30, 90, 3)
		query, err := gen.DFSQuery(data, 3+rng.Intn(3), rng)
		if err != nil {
			continue
		}
		path := filepath.Join(dir, fmt.Sprintf("g%d.csr", trial))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.WriteCSR(f, data); err != nil {
			t.Fatal(err)
		}
		f.Close()

		cons := auto.Compute(query)
		want := reference.Count(data, query, reference.Options{Constraints: cons})
		for _, machines := range []int{1, 3} {
			res, err := cluster.RunDiskShared(path, query, cluster.Config{
				Machines:          machines,
				WorkersPerMachine: 1,
			})
			if err != nil {
				t.Fatalf("trial %d m=%d: %v", trial, machines, err)
			}
			if res.Embeddings != want {
				t.Fatalf("trial %d m=%d: got %d want %d", trial, machines, res.Embeddings, want)
			}
			if want > 0 {
				var reads int64
				for _, l := range res.Machines {
					reads += l.RemoteReads
				}
				if reads == 0 {
					t.Fatalf("trial %d: no disk reads recorded", trial)
				}
			}
		}
	}
}

// TestRunObservability: an attached registry must expose the in-process
// run's counters, span tree, and per-machine queue gauges.
func TestRunObservability(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(obs.TracerOptions{})
	data := gen.Kronecker(9, 6, 3)
	res, err := cluster.Run(data, gen.QG1(), cluster.Config{
		Machines: 3, WorkersPerMachine: 1, Obs: reg, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := reg.Counters()
	if c == nil {
		t.Fatal("registry has no counters after run")
	}
	if got := c.Embeddings.Load(); got != res.Embeddings {
		t.Fatalf("live embeddings = %d, result = %d", got, res.Embeddings)
	}
	phases := tr.PhaseDurations()
	for _, want := range []string{"cluster-run", "machine", "build", "enumerate"} {
		if phases[want] <= 0 {
			t.Fatalf("phase %q missing: %v", want, phases)
		}
	}
	prom := reg.PrometheusText()
	for _, want := range []string{"ceci_cluster_machines 3", "ceci_cluster_machine_0_pending", "ceci_embeddings_total"} {
		if !strings.Contains(prom, want) {
			t.Fatalf("missing %q in scrape:\n%s", want, prom)
		}
	}
}

// TestRunTCPObservability: wire traffic and steals must be visible live
// through the registry, not just in the final ledgers.
func TestRunTCPObservability(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(obs.TracerOptions{})
	data := gen.Kronecker(9, 6, 3)
	res, err := cluster.RunTCP(data, gen.QG1(), cluster.Config{
		Machines: 3, WorkersPerMachine: 1, Obs: reg, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := reg.Counters()
	if c.BytesOnWire.Load() == 0 || c.MessagesSent.Load() == 0 {
		t.Fatalf("wire counters empty: bytes=%d msgs=%d",
			c.BytesOnWire.Load(), c.MessagesSent.Load())
	}
	if got := c.Embeddings.Load(); got != res.Embeddings {
		t.Fatalf("live embeddings = %d, result = %d", got, res.Embeddings)
	}
	phases := tr.PhaseDurations()
	for _, want := range []string{"tcp-run", "machine", "cluster"} {
		if phases[want] <= 0 {
			t.Fatalf("phase %q missing: %v", want, phases)
		}
	}
	if !strings.Contains(reg.PrometheusText(), "ceci_cluster_machines 3") {
		t.Fatal("cluster gauge source missing from scrape")
	}
}

// TestRunTCPConnectedSpanTree: the trace context crosses the real TCP
// wire, so every machine's spans must stitch into ONE tree under the
// caller's trace — no orphaned roots.
func TestRunTCPConnectedSpanTree(t *testing.T) {
	tr := obs.NewTracer(obs.TracerOptions{})
	// The caller's trace identity arrives as if from an upstream service.
	want, err := obs.ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatal(err)
	}
	ctx := obs.ContextWithTrace(context.Background(), want)
	data := gen.Kronecker(9, 6, 3)
	const machines = 3
	if _, err := cluster.RunTCPCtx(ctx, data, gen.QG1(), cluster.Config{
		Machines: machines, WorkersPerMachine: 1, Tracer: tr,
	}); err != nil {
		t.Fatal(err)
	}

	roots := obs.Stitch(tr.Tree())
	if len(roots) != 1 {
		names := make([]string, len(roots))
		for i, r := range roots {
			names[i] = r.Name
		}
		t.Fatalf("span forest has %d roots %v, want 1 connected tree", len(roots), names)
	}
	root := roots[0]
	if root.Name != "tcp-run" {
		t.Fatalf("root span = %q, want tcp-run", root.Name)
	}
	if root.TraceID != want.TraceID.String() {
		t.Fatalf("root trace ID = %s, want caller's %s", root.TraceID, want.TraceID)
	}
	if root.ParentSpanID != want.SpanID.String() {
		t.Fatalf("root parent = %s, want caller's span %s", root.ParentSpanID, want.SpanID)
	}

	// Every span in the tree belongs to the caller's trace, machine spans
	// sit directly under the run root, and each has real work below it.
	machineCount := 0
	var walk func(n *obs.SpanNode, depth int)
	walk = func(n *obs.SpanNode, depth int) {
		if n.TraceID != want.TraceID.String() {
			t.Fatalf("span %q left the trace: %s", n.Name, n.TraceID)
		}
		if n.Name == "machine" {
			machineCount++
			if depth != 1 {
				t.Fatalf("machine span at depth %d, want 1", depth)
			}
			if len(n.Children) == 0 {
				t.Fatalf("machine span has no child spans")
			}
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	if machineCount != machines {
		t.Fatalf("stitched %d machine spans, want %d", machineCount, machines)
	}

	// The connected tree renders as valid Chrome trace_event JSON.
	doc, err := obs.ChromeTrace(roots)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	byName := map[string]int{}
	for _, ev := range parsed.TraceEvents {
		byName[ev.Name]++
	}
	if byName["tcp-run"] != 1 || byName["machine"] != machines {
		t.Fatalf("Chrome export event counts wrong: %v", byName)
	}
}
