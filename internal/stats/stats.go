// Package stats provides the instrumentation used to reproduce the
// paper's measurement figures: recursive-call counts (Figure 18), filter
// effectiveness, index size accounting (Table 2), per-worker busy time
// (Figure 12), and phase traces (Figures 15, 20).
//
// Counters are cheap atomics so they can stay enabled inside enumeration
// inner loops.
package stats

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unicode"
)

// Counters accumulates algorithm-level metrics. The zero value is ready;
// a nil *Counters is accepted by every method (no-ops), letting hot paths
// skip instrumentation branches.
type Counters struct {
	RecursiveCalls    atomic.Int64 // backtracking expansions (Figure 18's metric)
	Embeddings        atomic.Int64
	IntersectionOps   atomic.Int64 // candidate-list intersections performed
	EdgeVerifications atomic.Int64 // adjacency probes (baselines only)
	FilteredLabel     atomic.Int64 // candidates dropped by the label filter
	FilteredDegree    atomic.Int64
	FilteredNLC       atomic.Int64
	FilteredCascade   atomic.Int64 // dropped by empty-TE cascade (Alg. 1 lines 9-12)
	FilteredRefine    atomic.Int64 // dropped by reverse-BFS refinement
	IndexBytes        atomic.Int64
	PageLoads         atomic.Int64 // dualsim: slotted page loads
	StealAttempts     atomic.Int64 // cluster: work-steal RPCs
	MessagesSent      atomic.Int64
	BytesOnWire       atomic.Int64
	RemoteReads       atomic.Int64 // shared-storage graph accesses
	UnitsScheduled    atomic.Int64 // work units handed to enumeration workers
	ExtremeSplits     atomic.Int64 // extra units from ExtremeCluster decomposition (Alg. 3)
}

// AddRecursive increments the recursive-call counter.
func (c *Counters) AddRecursive(n int64) {
	if c != nil {
		c.RecursiveCalls.Add(n)
	}
}

// AddEmbeddings increments the embedding counter.
func (c *Counters) AddEmbeddings(n int64) {
	if c != nil {
		c.Embeddings.Add(n)
	}
}

// AddIntersections increments the intersection counter.
func (c *Counters) AddIntersections(n int64) {
	if c != nil {
		c.IntersectionOps.Add(n)
	}
}

// AddEdgeVerifications increments the adjacency-probe counter.
func (c *Counters) AddEdgeVerifications(n int64) {
	if c != nil {
		c.EdgeVerifications.Add(n)
	}
}

// Snapshot captures the current values, keyed by the snake_case form of
// each field name (RecursiveCalls → "recursive_calls", FilteredNLC →
// "filtered_nlc"). The mapping is reflection-derived so a counter added
// to the struct can never be silently missing from snapshots or the
// telemetry endpoint.
func (c *Counters) Snapshot() map[string]int64 {
	if c == nil {
		return nil
	}
	v := reflect.ValueOf(c).Elem()
	t := v.Type()
	out := make(map[string]int64, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Type != reflect.TypeOf(atomic.Int64{}) {
			continue
		}
		out[SnakeCase(f.Name)] = v.Field(i).Addr().Interface().(*atomic.Int64).Load()
	}
	return out
}

// SnakeCase converts a Go field name to its snapshot key: word
// boundaries become underscores and acronym runs stay together
// ("BytesOnWire" → "bytes_on_wire", "FilteredNLC" → "filtered_nlc").
func SnakeCase(name string) string {
	var b strings.Builder
	runes := []rune(name)
	for i, r := range runes {
		if unicode.IsUpper(r) && i > 0 &&
			(unicode.IsLower(runes[i-1]) || (i+1 < len(runes) && unicode.IsLower(runes[i+1]))) {
			b.WriteByte('_')
		}
		b.WriteRune(unicode.ToLower(r))
	}
	return b.String()
}

// WorkerClock tracks per-worker busy time, reproducing the per-worker
// finish-time skew of Figure 12.
type WorkerClock struct {
	mu   sync.Mutex
	busy []time.Duration
}

// NewWorkerClock creates a clock for n workers.
func NewWorkerClock(n int) *WorkerClock {
	return &WorkerClock{busy: make([]time.Duration, n)}
}

// Add charges d of busy time to worker i. Out-of-range indices are
// ignored: instrumentation must never crash the enumeration it observes.
func (w *WorkerClock) Add(i int, d time.Duration) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if i >= 0 && i < len(w.busy) {
		w.busy[i] += d
	}
	w.mu.Unlock()
}

// BusyTimes returns a copy of the per-worker busy durations.
func (w *WorkerClock) BusyTimes() []time.Duration {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]time.Duration, len(w.busy))
	copy(out, w.busy)
	return out
}

// Skew returns max/mean busy-time ratio; 1.0 is perfectly balanced.
func (w *WorkerClock) Skew() float64 {
	times := w.BusyTimes()
	if len(times) == 0 {
		return 1
	}
	var max, sum time.Duration
	for _, t := range times {
		sum += t
		if t > max {
			max = t
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(times))
	return float64(max) / mean
}

// PhaseTrace records wall-clock spans per named phase (load, preprocess,
// build, refine, enumerate...), supporting Figure 15's utilization story
// and Figure 20's build-cost breakdown.
type PhaseTrace struct {
	mu     sync.Mutex
	spans  map[string]time.Duration
	orderd []string
}

// NewPhaseTrace returns an empty trace.
func NewPhaseTrace() *PhaseTrace {
	return &PhaseTrace{spans: make(map[string]time.Duration)}
}

// Time runs fn and charges its duration to phase name.
func (p *PhaseTrace) Time(name string, fn func()) {
	if p == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	p.Add(name, time.Since(start))
}

// Add charges d to phase name.
func (p *PhaseTrace) Add(name string, d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if _, ok := p.spans[name]; !ok {
		p.orderd = append(p.orderd, name)
	}
	p.spans[name] += d
	p.mu.Unlock()
}

// Get returns the accumulated duration of phase name.
func (p *PhaseTrace) Get(name string) time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spans[name]
}

// Phases returns phase names in first-seen order.
func (p *PhaseTrace) Phases() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.orderd))
	copy(out, p.orderd)
	return out
}

// String renders the trace sorted by share of total time.
func (p *PhaseTrace) String() string {
	if p == nil {
		return "<nil trace>"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	type row struct {
		name string
		d    time.Duration
	}
	rows := make([]row, 0, len(p.spans))
	var total time.Duration
	for n, d := range p.spans {
		rows = append(rows, row{n, d})
		total += d
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
	s := ""
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.d) / float64(total)
		}
		s += fmt.Sprintf("%-12s %12v %5.1f%%\n", r.name, r.d, pct)
	}
	return s
}
