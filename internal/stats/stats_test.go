package stats_test

import (
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ceci/internal/stats"
)

func TestNilCountersSafe(t *testing.T) {
	var c *stats.Counters
	c.AddRecursive(1)
	c.AddEmbeddings(1)
	c.AddIntersections(1)
	c.AddEdgeVerifications(1)
	if c.Snapshot() != nil {
		t.Fatal("nil snapshot should be nil")
	}
}

func TestCountersSnapshot(t *testing.T) {
	c := &stats.Counters{}
	c.AddRecursive(5)
	c.AddEmbeddings(3)
	c.FilteredNLC.Add(2)
	snap := c.Snapshot()
	if snap["recursive_calls"] != 5 || snap["embeddings"] != 3 || snap["filtered_nlc"] != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap["page_loads"] != 0 {
		t.Fatal("untouched counter nonzero")
	}
	// The scheduling counters added for the profiler surface under the
	// expected snake_case keys.
	c.UnitsScheduled.Add(7)
	c.ExtremeSplits.Add(2)
	snap = c.Snapshot()
	if snap["units_scheduled"] != 7 || snap["extreme_splits"] != 2 {
		t.Fatalf("scheduling counters missing: %v", snap)
	}
}

// TestSnapshotCoversEveryCounter walks Counters by reflection, bumps each
// exported atomic.Int64 field to a distinct value, and asserts the
// snapshot reports every one under its snake_case key — so adding a
// counter without snapshot coverage is impossible.
func TestSnapshotCoversEveryCounter(t *testing.T) {
	c := &stats.Counters{}
	v := reflect.ValueOf(c).Elem()
	ty := v.Type()
	want := map[string]int64{}
	for i := 0; i < ty.NumField(); i++ {
		f := ty.Field(i)
		if !f.IsExported() || f.Type != reflect.TypeOf(atomic.Int64{}) {
			continue
		}
		val := int64(i + 1)
		v.Field(i).Addr().Interface().(*atomic.Int64).Store(val)
		want[stats.SnakeCase(f.Name)] = val
	}
	if len(want) == 0 {
		t.Fatal("no exported counter fields found")
	}
	snap := c.Snapshot()
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d keys, struct has %d counters", len(snap), len(want))
	}
	for key, val := range want {
		if snap[key] != val {
			t.Errorf("snapshot[%q] = %d, want %d", key, snap[key], val)
		}
	}
}

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"RecursiveCalls": "recursive_calls",
		"Embeddings":     "embeddings",
		"FilteredNLC":    "filtered_nlc",
		"BytesOnWire":    "bytes_on_wire",
		"PageLoads":      "page_loads",
		"NLCFilter":      "nlc_filter",
	}
	for in, want := range cases {
		if got := stats.SnakeCase(in); got != want {
			t.Errorf("SnakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := &stats.Counters{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AddRecursive(1)
			}
		}()
	}
	wg.Wait()
	if got := c.RecursiveCalls.Load(); got != 8000 {
		t.Fatalf("got %d, want 8000", got)
	}
}

func TestWorkerClock(t *testing.T) {
	w := stats.NewWorkerClock(3)
	w.Add(0, 10*time.Millisecond)
	w.Add(1, 20*time.Millisecond)
	w.Add(1, 10*time.Millisecond)
	times := w.BusyTimes()
	if times[0] != 10*time.Millisecond || times[1] != 30*time.Millisecond || times[2] != 0 {
		t.Fatalf("times = %v", times)
	}
	// Skew: max 30ms, mean (10+30+0)/3 = 13.33ms → 2.25.
	if skew := w.Skew(); skew < 2.2 || skew > 2.3 {
		t.Fatalf("skew = %v", skew)
	}
}

func TestWorkerClockOutOfRange(t *testing.T) {
	w := stats.NewWorkerClock(2)
	w.Add(-1, time.Second) // must not panic
	w.Add(2, time.Second)  // must not panic
	w.Add(1<<30, time.Second)
	for i, d := range w.BusyTimes() {
		if d != 0 {
			t.Fatalf("worker %d charged %v by out-of-range Add", i, d)
		}
	}
}

func TestWorkerClockNilAndEmpty(t *testing.T) {
	var w *stats.WorkerClock
	w.Add(0, time.Second)
	if w.BusyTimes() != nil {
		t.Fatal("nil clock times")
	}
	if w.Skew() != 1 {
		t.Fatal("nil clock skew should be 1")
	}
	empty := stats.NewWorkerClock(2)
	if empty.Skew() != 1 {
		t.Fatal("all-zero clock skew should be 1")
	}
}

func TestPhaseTrace(t *testing.T) {
	p := stats.NewPhaseTrace()
	p.Time("build", func() { time.Sleep(time.Millisecond) })
	p.Add("enumerate", 100*time.Millisecond)
	p.Add("enumerate", 50*time.Millisecond)
	if p.Get("enumerate") != 150*time.Millisecond {
		t.Fatalf("enumerate = %v", p.Get("enumerate"))
	}
	if p.Get("build") <= 0 {
		t.Fatal("build not timed")
	}
	phases := p.Phases()
	if len(phases) != 2 || phases[0] != "build" {
		t.Fatalf("phases = %v", phases)
	}
	s := p.String()
	if !strings.Contains(s, "enumerate") || !strings.Contains(s, "%") {
		t.Fatalf("render: %q", s)
	}
}

func TestPhaseTraceNil(t *testing.T) {
	var p *stats.PhaseTrace
	ran := false
	p.Time("x", func() { ran = true })
	if !ran {
		t.Fatal("nil trace must still run fn")
	}
	p.Add("x", time.Second)
	if p.Get("x") != 0 || p.Phases() != nil {
		t.Fatal("nil trace should be inert")
	}
	if p.String() != "<nil trace>" {
		t.Fatal("nil render")
	}
}
