package workload

import (
	"testing"

	"ceci/internal/gen"
	"ceci/internal/graph"
)

// collectAssignment flattens parts into a pivot -> part map, failing if
// any pivot appears in more than one part.
func collectAssignment(t *testing.T, pivots []graph.VertexID, parts [][]graph.VertexID) map[graph.VertexID]int {
	t.Helper()
	where := make(map[graph.VertexID]int)
	for i, part := range parts {
		for _, v := range part {
			if prev, dup := where[v]; dup {
				t.Fatalf("pivot %d assigned to both part %d and part %d", v, prev, i)
			}
			where[v] = i
		}
	}
	if len(where) != len(pivots) {
		t.Fatalf("parts cover %d pivots, want %d", len(where), len(pivots))
	}
	for _, v := range pivots {
		if _, ok := where[v]; !ok {
			t.Fatalf("pivot %d missing from every part", v)
		}
	}
	return where
}

// TestDistributePivotsPartition: every pivot lands in exactly one part,
// for both weight modes and with the Jaccard co-location pass on.
func TestDistributePivotsPartition(t *testing.T) {
	data := gen.WithRandomLabels(gen.ErdosRenyi(200, 800, 7), 3, 9)
	pivots := make([]graph.VertexID, 0, data.NumVertices())
	for v := 0; v < data.NumVertices(); v += 2 {
		pivots = append(pivots, graph.VertexID(v))
	}
	for _, opt := range []DistributeOptions{
		{Parts: 4},
		{Parts: 4, NeighborDegrees: true},
		{Parts: 4, NeighborDegrees: true, Jaccard: true},
		{Parts: 4, NeighborDegrees: true, Jaccard: true, JaccardTopK: 8},
	} {
		parts := DistributePivots(data, pivots, opt)
		if len(parts) != opt.Parts {
			t.Fatalf("opt %+v: got %d parts, want %d", opt, len(parts), opt.Parts)
		}
		collectAssignment(t, pivots, parts)
		for i, part := range parts {
			for j := 1; j < len(part); j++ {
				if part[j-1] >= part[j] {
					t.Fatalf("opt %+v: part %d not ascending at %d", opt, i, j)
				}
			}
		}
	}
}

// TestDistributePivotsDeterministic: the same inputs must give the same
// partition — shard layouts are part of the fleet's identity.
func TestDistributePivotsDeterministic(t *testing.T) {
	data := gen.WithRandomLabels(gen.ErdosRenyi(150, 600, 3), 3, 5)
	pivots := make([]graph.VertexID, data.NumVertices())
	for v := range pivots {
		pivots[v] = graph.VertexID(v)
	}
	opt := DistributeOptions{Parts: 5, NeighborDegrees: true, Jaccard: true}
	a := DistributePivots(data, pivots, opt)
	b := DistributePivots(data, pivots, opt)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("part %d size differs across runs: %d vs %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("part %d diverges at %d: %d vs %d", i, j, a[i][j], b[i][j])
			}
		}
	}
}

// TestDistributePivotsBalance: greedy largest-first bin packing should
// keep the weight spread under control — no part more than twice the
// mean estimated load on a well-mixed random graph.
func TestDistributePivotsBalance(t *testing.T) {
	data := gen.WithRandomLabels(gen.ErdosRenyi(300, 1500, 13), 3, 17)
	pivots := make([]graph.VertexID, data.NumVertices())
	for v := range pivots {
		pivots[v] = graph.VertexID(v)
	}
	parts := DistributePivots(data, pivots, DistributeOptions{Parts: 4})
	var total float64
	loads := make([]float64, len(parts))
	for i, part := range parts {
		for _, v := range part {
			w := PivotWeight(data, v, false)
			loads[i] += w
			total += w
		}
	}
	mean := total / float64(len(parts))
	for i, load := range loads {
		if load > 2*mean {
			t.Errorf("part %d load %.1f exceeds 2x mean %.1f", i, load, mean)
		}
		if len(parts[i]) == 0 {
			t.Errorf("part %d is empty", i)
		}
	}
}

// TestPivotWeightScaling: the §5 estimate scales a vertex's weight by
// (n - v)/n, so low-id vertices (enumerated by more pivots under the
// symmetry-breaking order) weigh more than high-id vertices of equal
// degree.
func TestPivotWeightScaling(t *testing.T) {
	// A 4-cycle: every vertex has degree 2; only the scaling differs.
	b := graph.NewBuilder(4)
	for v := 0; v < 4; v++ {
		b.SetLabel(graph.VertexID(v), 0)
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	w0 := PivotWeight(g, 0, false)
	w3 := PivotWeight(g, 3, false)
	if w0 <= w3 {
		t.Fatalf("weight(v0)=%v should exceed weight(v3)=%v under (n-v)/n scaling", w0, w3)
	}
}
