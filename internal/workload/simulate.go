package workload

import "time"

// SimulateWorkerTimes returns each worker's busy time when k workers
// process units with the given costs under a distribution strategy.
// Costs are in pool order (for FGD, already sorted largest-first by
// Decompose).
//
//   - ST: units are preassigned round-robin; no re-adjustment
//     (Section 4.2).
//   - CGD / FGD: pull-based list scheduling — each unit goes to the
//     worker that becomes free earliest, in pool order.
//
// This mirrors how the real ForEach schedules work, but over measured
// per-unit durations, so speedup curves are host-core-count independent
// (the per-worker series is what Figure 12 plots).
func SimulateWorkerTimes(costs []time.Duration, workers int, strategy Strategy) []time.Duration {
	if workers < 1 {
		workers = 1
	}
	finish := make([]time.Duration, workers)
	switch strategy {
	case ST:
		for i, c := range costs {
			finish[i%workers] += c
		}
	default:
		for _, c := range costs {
			earliest := 0
			for w := 1; w < workers; w++ {
				if finish[w] < finish[earliest] {
					earliest = w
				}
			}
			finish[earliest] += c
		}
	}
	return finish
}

// SimulateMakespan returns the finishing time of the slowest worker — the
// quantity whose inverse scaling the paper's speedup figures plot.
func SimulateMakespan(costs []time.Duration, workers int, strategy Strategy) time.Duration {
	var max time.Duration
	for _, f := range SimulateWorkerTimes(costs, workers, strategy) {
		if f > max {
			max = f
		}
	}
	return max
}
