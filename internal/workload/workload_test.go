package workload_test

import (
	"math/rand"
	"testing"
	"time"

	"ceci/internal/auto"
	"ceci/internal/ceci"
	"ceci/internal/enum"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
	"ceci/internal/workload"
)

func buildIndex(t *testing.T, data, query *graph.Graph) *ceci.Index {
	t.Helper()
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ceci.Build(data, tree, ceci.Options{})
}

func TestClustersOnePerPivot(t *testing.T) {
	data := gen.Kronecker(8, 6, 3)
	ix := buildIndex(t, data, gen.QG1())
	units := workload.Clusters(ix)
	if len(units) != len(ix.Pivots()) {
		t.Fatalf("units %d != pivots %d", len(units), len(ix.Pivots()))
	}
	for i, u := range units {
		if len(u.Prefix) != 1 || u.Prefix[0] != ix.Pivots()[i] {
			t.Fatalf("unit %d malformed: %+v", i, u)
		}
		if u.Card != ix.ClusterCardinality(u.Prefix[0]) {
			t.Fatalf("unit %d cardinality mismatch", i)
		}
	}
}

// TestDecomposePartitionsSearchSpace: FGD decomposition must preserve the
// total embedding count exactly — no loss, no duplication — across many
// random graphs, betas, and queries with symmetry.
func TestDecomposePartitionsSearchSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		data := randomGraph(rng, 15, 45, 2)
		query, err := gen.DFSQuery(data, 3+rng.Intn(3), rng)
		if err != nil {
			continue
		}
		ix := buildIndex(t, data, query)
		want := enum.NewMatcher(ix, enum.Options{Workers: 1, Strategy: workload.CGD}).Count()
		for _, beta := range []float64{1.0, 0.3, 0.05} {
			m := enum.NewMatcher(ix, enum.Options{Workers: 4, Strategy: workload.FGD, Beta: beta})
			if got := m.Count(); got != want {
				t.Fatalf("trial %d beta %v: got %d want %d", trial, beta, got, want)
			}
		}
	}
}

func TestDecomposeSplitsExtremeClusters(t *testing.T) {
	// A hub-heavy Kronecker graph has dominant clusters; with small beta
	// and several workers, FGD must produce more units than clusters.
	data := gen.Kronecker(10, 8, 5)
	ix := buildIndex(t, data, gen.QG1())
	cons := auto.Compute(gen.QG1())
	clusters := workload.Clusters(ix)
	units := workload.Decompose(ix, cons, 0.1, 16)
	if len(units) <= len(clusters) {
		t.Fatalf("decomposition did not split: %d units vs %d clusters", len(units), len(clusters))
	}
	// Pool must be sorted by descending cardinality.
	for i := 1; i < len(units); i++ {
		if units[i-1].Card < units[i].Card {
			t.Fatalf("pool not sorted at %d", i)
		}
	}
}

func TestDecomposeSingleWorkerNoSplit(t *testing.T) {
	data := gen.Kronecker(8, 6, 3)
	ix := buildIndex(t, data, gen.QG1())
	units := workload.Decompose(ix, nil, 0.1, 1)
	if len(units) != len(workload.Clusters(ix)) {
		t.Fatal("single worker should skip decomposition")
	}
}

func TestPoolDrainsExactlyOnce(t *testing.T) {
	units := make([]workload.Unit, 100)
	for i := range units {
		units[i] = workload.Unit{Prefix: []graph.VertexID{graph.VertexID(i)}}
	}
	pool := workload.NewPool(units)
	seen := make(chan graph.VertexID, 200)
	done := make(chan bool)
	for w := 0; w < 4; w++ {
		go func() {
			for {
				u, ok := pool.Next()
				if !ok {
					done <- true
					return
				}
				seen <- u.Prefix[0]
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	close(seen)
	got := map[graph.VertexID]int{}
	for v := range seen {
		got[v]++
	}
	if len(got) != 100 {
		t.Fatalf("saw %d distinct units, want 100", len(got))
	}
	for v, n := range got {
		if n != 1 {
			t.Fatalf("unit %d seen %d times", v, n)
		}
	}
}

func TestPartitionRoundRobin(t *testing.T) {
	units := make([]workload.Unit, 10)
	groups := workload.Partition(units, 3)
	if len(groups[0]) != 4 || len(groups[1]) != 3 || len(groups[2]) != 3 {
		t.Fatalf("group sizes: %d %d %d", len(groups[0]), len(groups[1]), len(groups[2]))
	}
	if got := workload.Partition(units, 0); len(got) != 1 || len(got[0]) != 10 {
		t.Fatal("k<1 should collapse to one group")
	}
}

func TestSimulateMakespanST(t *testing.T) {
	costs := []time.Duration{10, 1, 1, 1} // round-robin with 2 workers: w0={10,1}, w1={1,1}
	if got := workload.SimulateMakespan(costs, 2, workload.ST); got != 11 {
		t.Fatalf("ST makespan = %v, want 11", got)
	}
}

func TestSimulateMakespanCGD(t *testing.T) {
	costs := []time.Duration{10, 1, 1, 1} // greedy: w0=10, w1=1+1+1
	if got := workload.SimulateMakespan(costs, 2, workload.CGD); got != 10 {
		t.Fatalf("CGD makespan = %v, want 10", got)
	}
}

func TestSimulateMakespanProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		costs := make([]time.Duration, n)
		var total, max time.Duration
		for i := range costs {
			costs[i] = time.Duration(rng.Intn(1000)) * time.Microsecond
			total += costs[i]
			if costs[i] > max {
				max = costs[i]
			}
		}
		for _, workers := range []int{1, 2, 7, 100} {
			for _, s := range []workload.Strategy{workload.ST, workload.CGD, workload.FGD} {
				got := workload.SimulateMakespan(costs, workers, s)
				// Bounds: max unit <= makespan <= total; 1 worker = total.
				if got < max || got > total {
					t.Fatalf("makespan %v outside [%v, %v]", got, max, total)
				}
				if workers == 1 && got != total {
					t.Fatalf("1 worker makespan %v != total %v", got, total)
				}
				// Work is conserved across workers.
				var sum time.Duration
				for _, w := range workload.SimulateWorkerTimes(costs, workers, s) {
					sum += w
				}
				if sum != total {
					t.Fatalf("worker times sum %v != total %v", sum, total)
				}
			}
		}
		// Greedy list scheduling is a 2-approximation of the optimum, so
		// CGD can never exceed twice the lower bound max(total/k, max).
		for _, workers := range []int{2, 5} {
			cgd := workload.SimulateMakespan(costs, workers, workload.CGD)
			lower := total / time.Duration(workers)
			if max > lower {
				lower = max
			}
			if cgd > 2*lower {
				t.Fatalf("CGD %v exceeds 2x lower bound %v", cgd, lower)
			}
		}
	}
}

func TestStrategyStrings(t *testing.T) {
	if workload.ST.String() != "ST" || workload.CGD.String() != "CGD" || workload.FGD.String() != "FGD" {
		t.Fatal("strategy names wrong")
	}
}

func randomGraph(rng *rand.Rand, n, m, labels int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(labels)))
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.VertexID(perm[i-1]), graph.VertexID(perm[i]))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return b.MustBuild()
}
