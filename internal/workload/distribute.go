package workload

import (
	"sort"

	"ceci/internal/graph"
	"ceci/internal/setops"
)

// DistributeOptions configures pivot-to-partition assignment (§5's
// lightweight workload estimate plus optional Jaccard co-location).
// Shared by the simulated cluster runtime (internal/cluster) and the
// serving-fleet partitioner (internal/shard).
type DistributeOptions struct {
	// Parts is the number of partitions (machines or shards).
	Parts int
	// NeighborDegrees includes Σ deg(neighbors) in each pivot's weight.
	// Valid only when the whole graph is locally readable (the paper's
	// replicated mode); degree-only otherwise.
	NeighborDegrees bool
	// Jaccard enables similarity-based co-location of overlapping
	// clusters: among the JaccardTopK heaviest pivots, neighbors with
	// J ≥ 0.5 land on the same partition (capacity-capped).
	Jaccard bool
	// JaccardTopK bounds how many of the heaviest pivots are compared
	// pairwise (default 1000, as in the paper).
	JaccardTopK int
}

// PivotWeight is the §5 lightweight workload estimate for one pivot:
// deg(v) (+ Σ deg(neighbors) when the graph is local), scaled by
// (|V|-v)/|V| to account for the asymmetry inflicted by
// automorphism-breaking matching orders.
func PivotWeight(data *graph.Graph, v graph.VertexID, neighborDegrees bool) float64 {
	w := float64(data.Degree(v))
	if neighborDegrees {
		for _, u := range data.Neighbors(v) {
			w += float64(data.Degree(u))
		}
	}
	n := float64(data.NumVertices())
	return w * (n - float64(v)) / n
}

// DistributePivots assigns pivots to opt.Parts partitions by greedy
// largest-first bin packing on PivotWeight, optionally co-locating
// Jaccard-similar clusters first. Every pivot lands in exactly one
// partition; each partition's pivot list is sorted ascending. The
// assignment is deterministic for a fixed (data, pivots, opt).
func DistributePivots(data *graph.Graph, pivots []graph.VertexID, opt DistributeOptions) [][]graph.VertexID {
	if opt.Parts < 1 {
		opt.Parts = 1
	}
	if opt.JaccardTopK <= 0 {
		opt.JaccardTopK = 1000
	}
	type wp struct {
		v graph.VertexID
		w float64
	}
	weighted := make([]wp, len(pivots))
	for i, v := range pivots {
		weighted[i] = wp{v, PivotWeight(data, v, opt.NeighborDegrees)}
	}
	// Stable + secondary key keeps the order deterministic under ties.
	sort.Slice(weighted, func(i, j int) bool {
		if weighted[i].w != weighted[j].w {
			return weighted[i].w > weighted[j].w
		}
		return weighted[i].v < weighted[j].v
	})

	loads := make([]float64, opt.Parts)
	owner := make(map[graph.VertexID]int, len(pivots))
	assign := func(v graph.VertexID, w float64, part int) {
		owner[v] = part
		loads[part] += w
	}
	argminLoad := func() int {
		best := 0
		for i := 1; i < opt.Parts; i++ {
			if loads[i] < loads[best] {
				best = i
			}
		}
		return best
	}

	var maxLoad float64
	for _, p := range weighted {
		maxLoad += p.w
	}
	maxLoad = maxLoad / float64(opt.Parts) * 1.25 // co-location capacity cap

	if opt.Jaccard {
		// Pass 1: largest clusters pull their similar peers along.
		topK := opt.JaccardTopK
		if topK > len(weighted) {
			topK = len(weighted)
		}
		for i := 0; i < topK; i++ {
			v := weighted[i].v
			if _, done := owner[v]; done {
				continue
			}
			m := argminLoad()
			assign(v, weighted[i].w, m)
			for j := i + 1; j < topK; j++ {
				u := weighted[j].v
				if _, done := owner[u]; done {
					continue
				}
				if loads[m]+weighted[j].w > maxLoad {
					break
				}
				if Jaccard(data, v, u) >= 0.5 {
					assign(u, weighted[j].w, m)
				}
			}
		}
	}
	for _, p := range weighted {
		if _, done := owner[p.v]; !done {
			assign(p.v, p.w, argminLoad())
		}
	}

	parts := make([][]graph.VertexID, opt.Parts)
	for _, p := range weighted {
		m := owner[p.v]
		parts[m] = append(parts[m], p.v)
	}
	for _, p := range parts {
		sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
	}
	return parts
}

// Jaccard returns |N(a) ∩ N(b)| / |N(a) ∪ N(b)|, the cluster-overlap
// proxy the paper's co-location pass thresholds at 0.5.
func Jaccard(data *graph.Graph, a, b graph.VertexID) float64 {
	na, nb := data.Neighbors(a), data.Neighbors(b)
	if len(na) == 0 && len(nb) == 0 {
		return 0
	}
	inter := setops.IntersectionSize(na, nb)
	union := len(na) + len(nb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
