// Package workload implements the paper's workload distribution schemes
// (Sections 4.2–4.3): static distribution (ST), coarse-grained dynamic
// pull-based distribution (CGD), and fine-grained dynamic distribution
// (FGD) with cardinality-driven ExtremeCluster decomposition
// (Algorithm 3).
package workload

import (
	"cmp"
	"fmt"
	"slices"
	"sync/atomic"

	"ceci/internal/auto"
	"ceci/internal/ceci"
	"ceci/internal/graph"
)

// Strategy selects a distribution scheme.
type Strategy int

const (
	// ST assigns an equal number of embedding clusters to each worker up
	// front, with no re-adjustment.
	ST Strategy = iota
	// CGD lets idle workers pull whole clusters from a shared pool.
	CGD
	// FGD additionally decomposes ExtremeClusters — clusters whose
	// cardinality exceeds β × expected-per-worker — into sub-clusters
	// before pulling, and sorts the pool by descending cardinality so
	// large units start first.
	FGD
)

func (s Strategy) String() string {
	switch s {
	case ST:
		return "ST"
	case CGD:
		return "CGD"
	case FGD:
		return "FGD"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// DefaultBeta is the paper's workload-balancing default (§6.3 fixes
// β = 0.2 for the Figure 11 experiments).
const DefaultBeta = 0.2

// Unit is a schedulable piece of the search space: a consistent prefix of
// the matching order (Prefix[i] matches query vertex Order[i]) plus its
// estimated workload. A depth-1 unit is a whole embedding cluster.
type Unit struct {
	Prefix []graph.VertexID
	Card   int64
}

// Clusters returns one depth-1 unit per pivot, in pivot order. All
// prefixes share one backing array — one allocation instead of one per
// pivot keeps scheduling off the enumeration allocation budget.
func Clusters(ix *ceci.Index) []Unit {
	pivots := ix.Pivots()
	backing := make([]graph.VertexID, len(pivots))
	copy(backing, pivots)
	units := make([]Unit, len(pivots))
	for i, p := range pivots {
		units[i] = Unit{Prefix: backing[i : i+1 : i+1], Card: ix.ClusterCardinality(p)}
	}
	return units
}

// Decompose implements Algorithm 3: every unit whose workload exceeds
// β × (total/workers) is recursively split along the matching order into
// per-matching-node sub-units. Injectivity and symmetry-breaking
// constraints are honored during splitting so the resulting units
// partition exactly the search space the enumerator would explore.
func Decompose(ix *ceci.Index, cons *auto.Constraints, beta float64, workers int) []Unit {
	units := Clusters(ix)
	if workers <= 1 {
		return units
	}
	if beta <= 0 {
		beta = DefaultBeta
	}
	var total int64
	for _, u := range units {
		total += u.Card
	}
	if total <= 0 {
		return units
	}
	threshold := beta * float64(total) / float64(workers)
	if threshold < 1 {
		threshold = 1
	}

	d := decomposer{
		ix:        ix,
		cons:      cons,
		threshold: threshold,
		m:         make([]graph.VertexID, ix.Tree.NumVertices()),
		matched:   make([]bool, ix.Tree.NumVertices()),
	}
	out := make([]Unit, 0, len(units))
	for _, u := range units {
		out = d.split(out, u.Prefix, float64(u.Card))
	}
	// Largest units first smooths worker finishing times (§4.3).
	slices.SortFunc(out, func(a, b Unit) int { return cmp.Compare(b.Card, a.Card) })
	return out
}

type decomposer struct {
	ix        *ceci.Index
	cons      *auto.Constraints
	threshold float64
	m         []graph.VertexID
	matched   []bool
	scratch   ceci.MatchScratch

	// prefixes is the arena backing every emitted sub-unit prefix: one
	// growing allocation instead of one slice per unit. Growth may
	// reallocate the backing array; already-carved prefixes keep pointing
	// into the old one, which stays valid because prefixes are write-once.
	prefixes []graph.VertexID
	// cands is the per-depth candidate scratch: split recurses with
	// depth+1, so each depth owns its slot and capacity is reused across
	// the whole decomposition.
	cands [][]cardCand
}

type cardCand struct {
	v graph.VertexID
	c int64
}

// carve appends prefix+v to the prefix arena and returns the carved,
// capacity-clamped view.
func (d *decomposer) carve(prefix []graph.VertexID, v graph.VertexID) []graph.VertexID {
	start := len(d.prefixes)
	d.prefixes = append(d.prefixes, prefix...)
	d.prefixes = append(d.prefixes, v)
	end := len(d.prefixes)
	return d.prefixes[start:end:end]
}

// split appends to out either the unit itself (small enough or fully
// expanded) or its recursively decomposed sub-units.
func (d *decomposer) split(out []Unit, prefix []graph.VertexID, work float64) []Unit {
	tree := d.ix.Tree
	depth := len(prefix)
	if work <= d.threshold || depth == tree.NumVertices() {
		return append(out, Unit{Prefix: prefix, Card: int64(work + 0.5)})
	}

	// Install the prefix into the scratch embedding. Recursive calls
	// work on superset prefixes and clear their flags on return, so the
	// caller re-installs after each recursion (see below).
	d.install(prefix)
	defer func() {
		for i := range prefix {
			d.matched[tree.Order[i]] = false
		}
	}()

	uNext := tree.Order[depth]
	matching := d.ix.CandidatesFor(uNext, d.m, &d.scratch)

	// Filter to assignments the enumerator would actually make, and
	// collect their cardinalities for proportional workload split. The
	// candidate buffer is per-depth scratch: recursion below uses depth+1.
	for len(d.cands) <= depth {
		d.cands = append(d.cands, nil)
	}
	cands := d.cands[depth][:0]
	node := &d.ix.Nodes[uNext]
	var total int64
	for _, v := range matching {
		if d.used(prefix, v) {
			continue
		}
		if d.cons != nil && !d.cons.Allows(uNext, v, d.m, d.matched) {
			continue
		}
		c := node.CardOf(v)
		if c <= 0 {
			c = 1 // refinement disabled or stale: keep a floor
		}
		cands = append(cands, cardCand{v, c})
		total += c
	}
	d.cands[depth] = cands
	if len(cands) == 0 {
		// The unit is a dead end; keep it so accounting stays simple —
		// it costs one candidate lookup at run time.
		return append(out, Unit{Prefix: prefix, Card: 0})
	}
	for _, c := range cands {
		myWork := work * float64(c.c) / float64(total)
		sub := d.carve(prefix, c.v)
		if myWork <= d.threshold {
			out = append(out, Unit{Prefix: sub, Card: int64(myWork + 0.5)})
		} else {
			out = d.split(out, sub, myWork)
			// The recursion cleared the matched flags of its (superset)
			// prefix; restore ours for the remaining loop iterations.
			d.install(prefix)
		}
	}
	return out
}

func (d *decomposer) install(prefix []graph.VertexID) {
	tree := d.ix.Tree
	for i, v := range prefix {
		u := tree.Order[i]
		d.m[u] = v
		d.matched[u] = true
	}
}

func (d *decomposer) used(prefix []graph.VertexID, v graph.VertexID) bool {
	for _, p := range prefix {
		if p == v {
			return true
		}
	}
	return false
}

// Pool is a shared work pool workers pull from (the classical pull-based
// dynamic model the paper cites). Safe for concurrent Next calls.
type Pool struct {
	units  []Unit
	cursor atomic.Int64
}

// NewPool wraps units in a pool.
func NewPool(units []Unit) *Pool { return &Pool{units: units} }

// Next returns the next unit, or false when the pool is drained.
func (p *Pool) Next() (Unit, bool) {
	i := p.cursor.Add(1) - 1
	if i >= int64(len(p.units)) {
		return Unit{}, false
	}
	return p.units[i], true
}

// Len returns the total number of units.
func (p *Pool) Len() int { return len(p.units) }

// Partition splits units into k static groups round-robin (ST). Workers
// own their group exclusively.
func Partition(units []Unit, k int) [][]Unit {
	if k < 1 {
		k = 1
	}
	groups := make([][]Unit, k)
	for i, u := range units {
		groups[i%k] = append(groups[i%k], u)
	}
	return groups
}
