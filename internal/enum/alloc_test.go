package enum

import (
	"testing"

	"ceci/internal/ceci"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
	"ceci/internal/prof"
	"ceci/internal/workload"
)

// denseClique returns K_n: every candidate list during a clique-query
// enumeration is a gap-1 run, which drives the bitset kernel.
func denseClique(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	return b.MustBuild()
}

// hubTriangles returns two hub vertices connected to every leaf plus a
// leaf-chain, so triangle enumeration intersects a huge hub adjacency
// against tiny leaf adjacencies — a >16:1 skew that drives the gallop
// kernel.
func hubTriangles(leaves int) *graph.Graph {
	b := graph.NewBuilder(2 + leaves)
	for i := 0; i < leaves; i++ {
		leaf := graph.VertexID(2 + i)
		b.AddEdge(0, leaf)
		b.AddEdge(1, leaf)
		if i > 0 {
			b.AddEdge(leaf-1, leaf)
		}
	}
	b.AddEdge(0, 1)
	return b.MustBuild()
}

// kernelCalls runs a profiled enumeration of (data, query) and returns
// the per-kernel call totals, so fixtures can assert which kernel the
// adaptive selector actually exercised.
func kernelCalls(t *testing.T, data, query *graph.Graph) map[string]int64 {
	t.Helper()
	tree, err := order.Preprocess(data, query, order.Options{})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	collector := prof.New()
	ix := ceci.Build(data, tree, ceci.Options{Profile: collector})
	NewMatcher(ix, Options{Workers: 1, Profile: collector}).Count()
	return collector.Snapshot().FunnelTotals()
}

// TestEnumerationStepZeroAlloc proves the steady-state enumeration step —
// CandidatesFor against the frozen flat index, setops.IntersectK through
// the per-depth scratch, the word-packed injectivity bitmap, and the
// symmetry-breaking check — performs zero heap allocations once a
// worker's buffers are warm. This is the contract the arena-backed index
// exists to provide; any regression (a closure capture, a map lookup that
// boxes, a scratch slice that stopped being reused) fails here before it
// shows up in benchmarks.
func TestEnumerationStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; run without -race")
	}
	cases := []struct {
		name        string
		data, query *graph.Graph
		wantKernel  string // kernel that must fire for this fixture ("" = any)
	}{
		{"fig1", gen.Fig1Data(), gen.Fig1Query(), ""},
		{"random-pair-7", nil, nil, ""},
		// Dense clique: gap-1 candidate lists force the bitset-chunked
		// kernel, proving its chunk-builder reuse is allocation-free.
		{"dense-bitset", denseClique(48), gen.QG3(), "bitset"},
		// Hub skew on a 4-clique query: enumeration intersects a huge hub
		// adjacency against tiny leaf adjacencies, a >16:1 ratio that
		// forces the gallop kernel.
		{"skew-gallop", hubTriangles(600), gen.QG3(), "gallop"},
		// Triangle query over the same hub graph: the moderately sparse
		// comparably sized leaf-chain lists drive the probe kernel.
		{"hub-probe", hubTriangles(600), gen.QG1(), "probe"},
	}
	cases[1].data, cases[1].query = gen.RandomPair(7)

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.wantKernel != "" {
				totals := kernelCalls(t, tc.data, tc.query)
				if totals["enum_kernel_"+tc.wantKernel+"_calls"] == 0 {
					t.Fatalf("fixture did not drive the %s kernel: %v", tc.wantKernel, totals)
				}
			}
			tree, err := order.Preprocess(tc.data, tc.query, order.Options{})
			if err != nil {
				t.Fatalf("Preprocess: %v", err)
			}
			ix := ceci.Build(tc.data, tree, ceci.Options{})
			if !ix.Frozen() {
				t.Fatal("Build did not freeze the index")
			}
			m := NewMatcher(ix, Options{Workers: 1, Strategy: workload.FGD})
			units := m.units()
			if len(units) == 0 {
				t.Skip("no work units for this pair")
			}
			var count int64
			ctl := &control{fn: func([]graph.VertexID) bool {
				count++
				return true
			}}
			s := newSearcher(m, ctl)
			pass := func() {
				for _, u := range units {
					s.runUnit(u)
				}
			}
			pass() // warm the per-depth intersection scratch
			if count == 0 {
				t.Skip("pair has no embeddings; nothing steady-state to measure")
			}
			if avg := testing.AllocsPerRun(20, pass); avg != 0 {
				t.Errorf("enumeration pass allocates %.1f times, want 0", avg)
			}
		})
	}
}
