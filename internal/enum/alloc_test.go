package enum

import (
	"testing"

	"ceci/internal/ceci"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
	"ceci/internal/workload"
)

// TestEnumerationStepZeroAlloc proves the steady-state enumeration step —
// CandidatesFor against the frozen flat index, setops.IntersectK through
// the per-depth scratch, the word-packed injectivity bitmap, and the
// symmetry-breaking check — performs zero heap allocations once a
// worker's buffers are warm. This is the contract the arena-backed index
// exists to provide; any regression (a closure capture, a map lookup that
// boxes, a scratch slice that stopped being reused) fails here before it
// shows up in benchmarks.
func TestEnumerationStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; run without -race")
	}
	cases := []struct {
		name        string
		data, query *graph.Graph
	}{
		{"fig1", gen.Fig1Data(), gen.Fig1Query()},
		{"random-pair-7", nil, nil},
	}
	cases[1].data, cases[1].query = gen.RandomPair(7)

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tree, err := order.Preprocess(tc.data, tc.query, order.Options{})
			if err != nil {
				t.Fatalf("Preprocess: %v", err)
			}
			ix := ceci.Build(tc.data, tree, ceci.Options{})
			if !ix.Frozen() {
				t.Fatal("Build did not freeze the index")
			}
			m := NewMatcher(ix, Options{Workers: 1, Strategy: workload.FGD})
			units := m.units()
			if len(units) == 0 {
				t.Skip("no work units for this pair")
			}
			var count int64
			ctl := &control{fn: func([]graph.VertexID) bool {
				count++
				return true
			}}
			s := newSearcher(m, ctl)
			pass := func() {
				for _, u := range units {
					s.runUnit(u)
				}
			}
			pass() // warm the per-depth intersection scratch
			if count == 0 {
				t.Skip("pair has no embeddings; nothing steady-state to measure")
			}
			if avg := testing.AllocsPerRun(20, pass); avg != 0 {
				t.Errorf("enumeration pass allocates %.1f times, want 0", avg)
			}
		})
	}
}
