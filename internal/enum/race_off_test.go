//go:build !race

package enum

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
