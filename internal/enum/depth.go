package enum

import "sync/atomic"

// DepthStats aggregates per-matching-order-depth candidate lookups and
// outputs across enumeration workers — the observed selectivity funnel
// the cost-based planner's drift detector feeds on (internal/plan).
//
// Like the resource ledger, it follows the watermark pattern: workers
// count into plain per-searcher slices inside the depth step and drain
// deltas into these atomics only at work-unit boundaries, so enabling
// depth stats adds one nil-check and two plain integer adds to the
// steady-state step and keeps it allocation-free.
type DepthStats struct {
	lookups []atomic.Int64
	emitted []atomic.Int64
}

// NewDepthStats returns a sink for a query with the given number of
// matching-order positions.
func NewDepthStats(depths int) *DepthStats {
	return &DepthStats{
		lookups: make([]atomic.Int64, depths),
		emitted: make([]atomic.Int64, depths),
	}
}

// Depths returns the number of matching-order positions tracked.
func (d *DepthStats) Depths() int { return len(d.lookups) }

// Snapshot copies the per-depth counters: lookups[i] is how many
// CandidatesFor calls ran at order position i, emitted[i] how many
// candidates they produced in total (before injectivity and
// symmetry-breaking filters — the same accounting the cost model
// predicts).
func (d *DepthStats) Snapshot() (lookups, emitted []int64) {
	lookups = make([]int64, len(d.lookups))
	emitted = make([]int64, len(d.emitted))
	for i := range d.lookups {
		lookups[i] = d.lookups[i].Load()
		emitted[i] = d.emitted[i].Load()
	}
	return lookups, emitted
}

// add charges one depth. Called only from work-unit-boundary drains.
func (d *DepthStats) add(depth int, l, e int64) {
	d.lookups[depth].Add(l)
	d.emitted[depth].Add(e)
}
