package enum_test

import (
	"math/rand"
	"sort"
	"testing"

	"ceci/internal/auto"
	"ceci/internal/ceci"
	"ceci/internal/enum"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
	"ceci/internal/reference"
	"ceci/internal/stats"
	"ceci/internal/workload"
)

func buildMatcher(t *testing.T, data, query *graph.Graph, oopts order.Options, eopts enum.Options) *enum.Matcher {
	t.Helper()
	tree, err := order.Preprocess(data, query, oopts)
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	ix := ceci.Build(data, tree, ceci.Options{Stats: eopts.Stats})
	return enum.NewMatcher(ix, eopts)
}

func TestFig1Embeddings(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	m := buildMatcher(t, data, query,
		order.Options{ForcedRoot: 0}, enum.Options{Workers: 1})
	got := m.Collect()
	want := gen.Fig1Embeddings()
	if len(got) != len(want) {
		t.Fatalf("found %d embeddings, want %d: %v", len(got), len(want), got)
	}
	sortEmbeddings(got)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("embedding %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

// TestCrossValidation compares CECI enumeration against the brute-force
// oracle over many random labeled graphs and queries, with and without
// symmetry breaking, across strategies and worker counts.
func TestCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	strategies := []workload.Strategy{workload.ST, workload.CGD, workload.FGD}
	for trial := 0; trial < 80; trial++ {
		data := randomGraph(rng, 10+rng.Intn(8), 20+rng.Intn(25), 1+rng.Intn(3))
		query, err := gen.DFSQuery(data, 2+rng.Intn(4), rng)
		if err != nil {
			continue
		}
		wantRaw := reference.Count(data, query, reference.Options{})
		cons := auto.Compute(query)
		wantSym := reference.Count(data, query, reference.Options{Constraints: cons})

		for _, strat := range strategies {
			for _, workers := range []int{1, 4} {
				m := buildMatcher(t, data, query, order.DefaultOptions(), enum.Options{
					Workers: workers, Strategy: strat, DisableSymmetryBreaking: true,
				})
				if got := m.Count(); got != wantRaw {
					t.Fatalf("trial %d %v/w%d raw: got %d want %d (q=%v)",
						trial, strat, workers, got, wantRaw, query)
				}
				m = buildMatcher(t, data, query, order.DefaultOptions(), enum.Options{
					Workers: workers, Strategy: strat,
				})
				if got := m.Count(); got != wantSym {
					t.Fatalf("trial %d %v/w%d sym: got %d want %d",
						trial, strat, workers, got, wantSym)
				}
			}
		}
	}
}

// TestEdgeVerificationAblation: the ablation mode must produce identical
// results to intersection-based enumeration.
func TestEdgeVerificationAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		data := randomGraph(rng, 12, 36, 2)
		query, err := gen.DFSQuery(data, 4, rng)
		if err != nil {
			continue
		}
		st := &stats.Counters{}
		mi := buildMatcher(t, data, query, order.DefaultOptions(), enum.Options{Workers: 2})
		mv := buildMatcher(t, data, query, order.DefaultOptions(), enum.Options{
			Workers: 2, EdgeVerification: true, Stats: st,
		})
		ci, cv := mi.Count(), mv.Count()
		if ci != cv {
			t.Fatalf("trial %d: intersection %d != edge-verification %d", trial, ci, cv)
		}
		if query.NumEdges() > query.NumVertices()-1 && cv > 0 && st.EdgeVerifications.Load() == 0 {
			t.Fatalf("trial %d: edge-verification mode did no probes", trial)
		}
	}
}

func TestMatchingOrderHeuristicsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	heuristics := []order.Heuristic{order.BFSOrder, order.LeastFrequent, order.PathRanked, order.EdgeRanked}
	for trial := 0; trial < 30; trial++ {
		data := randomGraph(rng, 12, 30, 2)
		query, err := gen.DFSQuery(data, 4, rng)
		if err != nil {
			continue
		}
		var want int64 = -1
		for _, h := range heuristics {
			m := buildMatcher(t, data, query, order.Options{ForcedRoot: -1, Heuristic: h}, enum.Options{Workers: 2})
			got := m.Count()
			if want < 0 {
				want = got
			} else if got != want {
				t.Fatalf("trial %d: heuristic %v count %d != %d", trial, h, got, want)
			}
		}
	}
}

func TestFirstKLimit(t *testing.T) {
	data := gen.Kronecker(8, 8, 1)
	query := gen.QG1()
	for _, workers := range []int{1, 4} {
		m := buildMatcher(t, data, query, order.DefaultOptions(), enum.Options{
			Workers: workers, Limit: 100,
		})
		total := buildMatcher(t, data, query, order.DefaultOptions(), enum.Options{Workers: 1}).Count()
		got := m.Count()
		want := int64(100)
		if total < want {
			want = total
		}
		if got != want {
			t.Fatalf("workers=%d: limited count = %d, want %d (total %d)", workers, got, want, total)
		}
	}
}

func TestEarlyStopFromCallback(t *testing.T) {
	data := gen.Kronecker(8, 8, 1)
	m := buildMatcher(t, data, gen.QG1(), order.DefaultOptions(), enum.Options{Workers: 4})
	calls := 0
	m.ForEach(func([]graph.VertexID) bool {
		calls++
		return calls < 5
	})
	if calls < 5 {
		t.Fatalf("callback stopped after %d calls", calls)
	}
}

// TestCliqueCounts pins known clique counts: symmetry-broken triangle and
// k-clique counts on a complete graph K_n are n choose k.
func TestCliqueCounts(t *testing.T) {
	complete := func(n int) *graph.Graph {
		b := graph.NewBuilder(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				b.AddEdge(graph.VertexID(i), graph.VertexID(j))
			}
		}
		return b.MustBuild()
	}
	k8 := complete(8)
	cases := []struct {
		q    *graph.Graph
		want int64
	}{
		{gen.QG1(), 56}, // C(8,3)
		{gen.QG3(), 70}, // C(8,4)
		{gen.QG5(), 56}, // C(8,5)
	}
	for i, c := range cases {
		m := buildMatcher(t, k8, c.q, order.DefaultOptions(), enum.Options{Workers: 2})
		if got := m.Count(); got != c.want {
			t.Fatalf("case %d: count = %d, want %d", i, got, c.want)
		}
	}
}

// TestQG4HouseCount cross-checks the house query against the oracle on a
// Kronecker graph.
func TestQG4HouseCount(t *testing.T) {
	data := gen.ErdosRenyi(18, 60, 3)
	query := gen.QG4()
	cons := auto.Compute(query)
	want := reference.Count(data, query, reference.Options{Constraints: cons})
	m := buildMatcher(t, data, query, order.DefaultOptions(), enum.Options{Workers: 4, Strategy: workload.FGD})
	if got := m.Count(); got != want {
		t.Fatalf("house count = %d, want %d", got, want)
	}
}

func TestRecursiveCallCounter(t *testing.T) {
	st := &stats.Counters{}
	data := gen.Kronecker(8, 6, 2)
	m := buildMatcher(t, data, gen.QG1(), order.DefaultOptions(), enum.Options{Workers: 2, Stats: st})
	n := m.Count()
	if n > 0 && st.RecursiveCalls.Load() == 0 {
		t.Fatal("recursive calls not counted")
	}
	if st.Embeddings.Load() != n {
		t.Fatalf("embedding counter %d != count %d", st.Embeddings.Load(), n)
	}
}

func sortEmbeddings(embs [][]graph.VertexID) {
	sort.Slice(embs, func(i, j int) bool {
		for k := range embs[i] {
			if embs[i][k] != embs[j][k] {
				return embs[i][k] < embs[j][k]
			}
		}
		return false
	})
}

func randomGraph(rng *rand.Rand, n, m, labels int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(labels)))
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.VertexID(perm[i-1]), graph.VertexID(perm[i]))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return b.MustBuild()
}

// TestSingleWorkerDeterminism: with one worker the enumeration order is
// fully determined by the pool order and sorted candidate lists.
func TestSingleWorkerDeterminism(t *testing.T) {
	data := gen.Kronecker(8, 6, 11)
	m1 := buildMatcher(t, data, gen.QG2(), order.DefaultOptions(), enum.Options{Workers: 1, Strategy: workload.CGD})
	m2 := buildMatcher(t, data, gen.QG2(), order.DefaultOptions(), enum.Options{Workers: 1, Strategy: workload.CGD})
	a, b := m1.Collect(), m2.Collect()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("embedding %d differs: %v vs %v", i, a[i], b[i])
			}
		}
	}
}
