// Package enum implements CECI's parallel embedding enumeration
// (Section 4): intersection-based backtracking over embedding clusters,
// scheduled by the ST / CGD / FGD strategies of internal/workload, with
// optional first-k limits (the paper's "first 1,024 embeddings" mode)
// and an edge-verification ablation.
package enum

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ceci/internal/auto"
	"ceci/internal/ceci"
	"ceci/internal/graph"
	"ceci/internal/obs"
	"ceci/internal/prof"
	"ceci/internal/stats"
	"ceci/internal/telemetry"
	"ceci/internal/workload"
)

// Options configures enumeration.
type Options struct {
	// Workers bounds parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Limit stops after this many embeddings (0 = all). With multiple
	// workers the count is exact but which embeddings are returned is
	// nondeterministic, matching the paper's first-k experiments.
	Limit int64
	// Strategy selects workload distribution (default FGD).
	Strategy workload.Strategy
	// Beta is the ExtremeCluster threshold factor (default 0.2).
	Beta float64
	// EdgeVerification enables the ablation of Section 4.1: non-tree
	// edges are checked by adjacency probes instead of intersection.
	EdgeVerification bool
	// DisableSymmetryBreaking lists every automorphic image (used by
	// correctness tests comparing raw counts).
	DisableSymmetryBreaking bool
	// Stats and Clock receive instrumentation (may be nil).
	Stats *stats.Counters
	Clock *stats.WorkerClock
	// Trace records enumerate/cluster spans (may be nil).
	Trace *obs.Tracer
	// Progress receives live cluster-completion and embedding counts;
	// the reporter is started when enumeration begins and stopped (with
	// a final report) when it ends (may be nil).
	Progress *obs.Reporter
	// Profile receives the EXPLAIN ANALYZE accounting: cluster/unit
	// cardinality distributions and per-worker busy/unit/steal totals
	// (may be nil). Attach the same collector to the build options to
	// also capture the filter funnel and index shape.
	Profile *prof.Collector
	// Ledger receives the query's resource charges — worker busy time,
	// recursive calls, embeddings, peak scratch footprint, and the
	// intersection-kernel mix — accumulated at work-unit boundaries only,
	// so the zero-allocation depth step stays untouched (may be nil).
	Ledger *telemetry.Ledger
	// Depth receives per-matching-order-depth lookup/output counts — the
	// observed selectivities the cost-based planner's drift detector
	// compares against its estimate. Charged at work-unit boundaries
	// under the same watermark pattern as Ledger (may be nil).
	Depth *DepthStats
}

// Matcher enumerates the embeddings represented by a CECI index.
type Matcher struct {
	ix   *ceci.Index
	cons *auto.Constraints
	opts Options
}

// NewMatcher prepares enumeration over ix. Symmetry-breaking constraints
// are derived from the query unless disabled.
func NewMatcher(ix *ceci.Index, opts Options) *Matcher {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Beta <= 0 {
		opts.Beta = workload.DefaultBeta
	}
	m := &Matcher{ix: ix, opts: opts}
	if !opts.DisableSymmetryBreaking {
		m.cons = auto.Compute(ix.Tree.Query)
	}
	return m
}

// Index returns the underlying CECI index.
func (m *Matcher) Index() *ceci.Index { return m.ix }

// Count enumerates and returns the number of embeddings (respecting
// Limit if set).
func (m *Matcher) Count() int64 {
	var n atomic.Int64
	m.ForEach(func([]graph.VertexID) bool {
		n.Add(1)
		return true
	})
	return n.Load()
}

// CountCtx counts embeddings under ctx. On cancellation or deadline it
// returns the embeddings delivered so far together with the context's
// error, so callers can report partial counts.
func (m *Matcher) CountCtx(ctx context.Context) (int64, error) {
	var n atomic.Int64
	err := m.ForEachCtx(ctx, func([]graph.VertexID) bool {
		n.Add(1)
		return true
	})
	return n.Load(), err
}

// Collect gathers embeddings into a slice (each indexed by query vertex
// ID). Intended for tests and small result sets; prefer ForEach for
// large enumerations.
func (m *Matcher) Collect() [][]graph.VertexID {
	var mu sync.Mutex
	var out [][]graph.VertexID
	m.ForEach(func(emb []graph.VertexID) bool {
		cp := make([]graph.VertexID, len(emb))
		copy(cp, emb)
		mu.Lock()
		out = append(out, cp)
		mu.Unlock()
		return true
	})
	return out
}

// ForEach calls fn for every embedding. The slice passed to fn is indexed
// by query vertex ID and reused between calls: copy it to retain it. fn
// may be called concurrently from multiple workers and must be
// goroutine-safe; returning false stops the enumeration early.
func (m *Matcher) ForEach(fn func(emb []graph.VertexID) bool) {
	m.forEach(context.Background(), &control{fn: fn, limit: m.opts.Limit})
}

// ForEachCtx is ForEach under a context: when ctx is cancelled or its
// deadline passes, the shared stop flag is raised and every worker
// unwinds at its next depth step — the same mechanism Limit uses, so
// cancellation adds nothing to the per-step cost and nothing to the
// steady-state allocation count. Embeddings already delivered to fn
// stay delivered; the return value is the context's cause (nil on a
// complete, uncancelled enumeration).
func (m *Matcher) ForEachCtx(ctx context.Context, fn func(emb []graph.VertexID) bool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	ctl := &control{fn: fn, limit: m.opts.Limit}
	var cancelled atomic.Bool
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			cancelled.Store(true)
			ctl.stop.Store(true)
		})
		defer stop()
	}
	m.forEach(ctx, ctl)
	if cancelled.Load() {
		return context.Cause(ctx)
	}
	return nil
}

func (m *Matcher) forEach(ctx context.Context, ctl *control) {
	units := m.units()
	if rep := m.opts.Progress; rep != nil {
		var card int64
		for _, u := range units {
			if card += u.Card; card < 0 { // overflow: clamp
				card = ceci.CardSaturation
			}
		}
		if m.opts.Clock == nil {
			m.opts.Clock = stats.NewWorkerClock(m.opts.Workers)
		}
		rep.SetClock(m.opts.Clock)
		rep.AddTotals(len(units), card)
		rep.Start()
		defer rep.Stop()
	}
	if len(units) == 0 {
		return
	}
	workers := m.opts.Workers
	if workers > len(units) && m.opts.Strategy != workload.FGD {
		workers = len(units)
	}
	if workers < 1 {
		workers = 1
	}

	// StartUnder joins the request's trace when the context carries a
	// parent span or trace context (service queries, remote machines);
	// a bare ForEach stays a local root span.
	span := obs.StartUnder(ctx, m.opts.Trace, "enumerate",
		obs.String("strategy", m.opts.Strategy.String()),
		obs.Int("units", int64(len(units))),
		obs.Int("workers", int64(workers)))
	defer span.End()

	if st := m.opts.Stats; st != nil {
		st.UnitsScheduled.Add(int64(len(units)))
		if n := len(units) - len(m.ix.Pivots()); n > 0 {
			st.ExtremeSplits.Add(int64(n))
		}
	}
	if p := m.opts.Profile; p != nil {
		pivots := m.ix.Pivots()
		pivotCards := make([]int64, len(pivots))
		for i, pv := range pivots {
			pivotCards[i] = m.ix.ClusterCardinality(pv)
		}
		unitCards := make([]int64, len(units))
		for i, u := range units {
			unitCards[i] = u.Card
		}
		p.RecordClusters(m.opts.Strategy.String(), pivotCards, unitCards)
		p.EnsureWorkers(workers)
		enumStart := time.Now()
		defer func() { p.AddEnumWall(time.Since(enumStart)) }()
	}

	switch m.opts.Strategy {
	case workload.ST:
		groups := workload.Partition(units, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				m.runWorker(w, ctl, span, func() (workload.Unit, bool) {
					g := groups[w]
					if len(g) == 0 {
						return workload.Unit{}, false
					}
					groups[w] = g[1:]
					return g[0], true
				})
			}(w)
		}
		wg.Wait()
	default: // CGD, FGD
		pool := workload.NewPool(units)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				m.runWorker(w, ctl, span, pool.Next)
			}(w)
		}
		wg.Wait()
	}
}

// units materializes the schedulable work according to the strategy.
func (m *Matcher) units() []workload.Unit {
	switch m.opts.Strategy {
	case workload.FGD:
		return workload.Decompose(m.ix, m.cons, m.opts.Beta, m.opts.Workers)
	default:
		return workload.Clusters(m.ix)
	}
}

// control carries the shared early-termination state. The stop flag is
// raised by the limit logic, by a consumer returning false, and by the
// context watcher in ForEachCtx.
type control struct {
	fn      func([]graph.VertexID) bool
	limit   int64
	emitted atomic.Int64
	stop    atomic.Bool
}

// emit delivers one embedding. delivered reports whether fn actually
// received it — under a Limit, racing workers can reserve slots past the
// cap, and those embeddings are never delivered — and cont whether
// enumeration may continue. Counter sinks must charge only delivered
// embeddings, or a limit- or cancel-stopped run reports more embeddings
// than its consumer ever saw.
func (c *control) emit(emb []graph.VertexID) (delivered, cont bool) {
	if c.limit > 0 {
		n := c.emitted.Add(1)
		if n > c.limit {
			c.stop.Store(true)
			return false, false
		}
		if !c.fn(emb) {
			c.stop.Store(true)
			return true, false
		}
		if n == c.limit {
			c.stop.Store(true)
			return true, false
		}
		return true, true
	}
	if !c.fn(emb) {
		c.stop.Store(true)
		return true, false
	}
	return true, true
}

func (m *Matcher) runWorker(id int, ctl *control, parent *obs.Span, next func() (workload.Unit, bool)) {
	s := newSearcher(m, ctl)
	defer s.flush()
	for {
		if ctl.stop.Load() {
			return
		}
		unit, ok := next()
		if !ok {
			return
		}
		// Per-unit clock charges (rather than one charge at worker exit)
		// keep mid-run busy-time snapshots meaningful.
		start := time.Now()
		var span *obs.Span
		if parent != nil {
			span = parent.Child("cluster",
				obs.Int("pivot", int64(unit.Prefix[0])),
				obs.Int("depth", int64(len(unit.Prefix))),
				obs.Int("card", unit.Card),
				obs.Int("worker", int64(id)))
		}
		ok = s.runUnit(unit)
		span.End()
		elapsed := time.Since(start)
		m.opts.Clock.Add(id, elapsed)
		m.opts.Profile.WorkerUnit(id, elapsed)
		if m.opts.Ledger != nil {
			s.chargeLedger(elapsed)
		}
		s.chargeDepth()
		if rep := m.opts.Progress; rep != nil {
			rep.ClusterDone(unit.Card)
			s.flush()
		}
		if !ok {
			return
		}
	}
}
