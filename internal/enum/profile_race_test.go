package enum_test

import (
	"reflect"
	"testing"

	"ceci/internal/ceci"
	"ceci/internal/enum"
	"ceci/internal/gen"
	"ceci/internal/order"
	"ceci/internal/prof"
	"ceci/internal/stats"
	"ceci/internal/workload"
)

// profiledCount runs a full build + enumeration over the seeded pair
// with an attached profile collector and returns the snapshot.
func profiledCount(t *testing.T, seed int64, workers int, strategy workload.Strategy) (prof.Profile, int64, map[string]int64) {
	t.Helper()
	data, query := gen.RandomPair(seed)
	tree, err := order.Preprocess(data, query, order.Options{})
	if err != nil {
		t.Fatalf("seed %d: Preprocess: %v", seed, err)
	}
	p := prof.New()
	st := &stats.Counters{}
	ix := ceci.Build(data, tree, ceci.Options{Stats: st, Profile: p})
	m := enum.NewMatcher(ix, enum.Options{Workers: workers, Strategy: strategy, Stats: st, Profile: p})
	n := m.Count()
	return p.Snapshot(), n, st.Snapshot()
}

// TestProfileDeterministicAcrossRuns is the EXPLAIN ANALYZE determinism
// guarantee: for a fixed seed the canonical profile (timings stripped)
// is a pure function of (data, query, options), so two 8-worker runs —
// with nondeterministic unit interleaving — must produce identical
// counters, funnels, and histograms. Run under -race this also shakes
// out unsynchronized collector access.
func TestProfileDeterministicAcrossRuns(t *testing.T) {
	for _, seed := range []int64{7, 42, 1234} {
		p1, n1, _ := profiledCount(t, seed, 8, workload.FGD)
		p2, n2, _ := profiledCount(t, seed, 8, workload.FGD)
		if n1 != n2 {
			t.Fatalf("seed %d: embeddings %d vs %d across runs", seed, n1, n2)
		}
		c1, c2 := p1.Canonical(), p2.Canonical()
		if !reflect.DeepEqual(c1, c2) {
			t.Fatalf("seed %d: canonical profiles differ:\n%+v\n%+v", seed, c1, c2)
		}
	}
}

// TestProfileConsistentAcrossWorkerCounts: under ST the same whole
// clusters are enumerated regardless of worker count, so an 8-worker
// run must account for exactly the same work as a serial run — any
// difference means a lost (racy) counter update. (FGD is excluded:
// its extreme-cluster decomposition legitimately depends on the
// worker count, changing per-unit enumeration counters.)
func TestProfileConsistentAcrossWorkerCounts(t *testing.T) {
	for _, seed := range []int64{7, 42, 1234} {
		serial, n1, st1 := profiledCount(t, seed, 1, workload.ST)
		parallel, n8, st8 := profiledCount(t, seed, 8, workload.ST)
		if n1 != n8 {
			t.Fatalf("seed %d: embeddings %d (1 worker) vs %d (8 workers)", seed, n1, n8)
		}
		s, p := serial.Canonical(), parallel.Canonical()
		if !reflect.DeepEqual(s, p) {
			t.Fatalf("seed %d: canonical profiles differ between 1 and 8 workers:\n%+v\n%+v", seed, s, p)
		}
		for _, key := range []string{"embeddings", "recursive_calls", "intersection_ops", "units_scheduled"} {
			if st1[key] != st8[key] {
				t.Fatalf("seed %d: stats %q = %d (1 worker) vs %d (8 workers)", seed, key, st1[key], st8[key])
			}
		}
	}
}

// TestProfileWorkerAccounting checks the non-canonical (timing) side:
// every scheduled unit is attributed to exactly one of the 8 worker
// slots and the unit-seconds histogram saw every unit.
func TestProfileWorkerAccounting(t *testing.T) {
	p, _, st := profiledCount(t, 42, 8, workload.FGD)
	if len(p.Workers) != 8 {
		t.Fatalf("worker slots = %d, want 8", len(p.Workers))
	}
	var units int64
	for _, w := range p.Workers {
		units += w.Units
		if w.Idle < 0 {
			t.Fatalf("worker %d: negative idle %v", w.Worker, w.Idle)
		}
	}
	scheduled := st["units_scheduled"]
	if scheduled <= 0 || units != scheduled {
		t.Fatalf("worker units sum = %d, units_scheduled = %d", units, scheduled)
	}
	h, ok := p.Histograms["unit_seconds"]
	if !ok {
		t.Fatal("unit_seconds histogram missing")
	}
	if int64(h.Count) != scheduled {
		t.Fatalf("unit_seconds histogram count = %d, want %d", h.Count, scheduled)
	}
}
