package enum

import (
	"testing"

	"ceci/internal/ceci"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
	"ceci/internal/prof"
	"ceci/internal/workload"
)

// TestDepthStatsMatchProfile: the per-depth lookup/output counters must
// agree exactly with the EXPLAIN ANALYZE per-vertex enumeration funnel —
// they are the same events, bucketed by order position instead of
// vertex. Runs multi-worker to exercise the cross-worker drain.
func TestDepthStatsMatchProfile(t *testing.T) {
	cases := []struct {
		name        string
		data, query *graph.Graph
	}{
		{"fig1", gen.Fig1Data(), gen.Fig1Query()},
		{"random-pair-11", nil, nil},
	}
	cases[1].data, cases[1].query = gen.RandomPair(11)

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tree, err := order.Preprocess(tc.data, tc.query, order.Options{})
			if err != nil {
				t.Fatal(err)
			}
			collector := prof.New()
			ix := ceci.Build(tc.data, tree, ceci.Options{Profile: collector})
			ds := NewDepthStats(tree.NumVertices())
			NewMatcher(ix, Options{Workers: 4, Profile: collector, Depth: ds}).Count()

			lookups, emitted := ds.Snapshot()
			p := collector.Snapshot()
			for pos, u := range tree.Order {
				e := p.Vertices[u].Enum
				if lookups[pos] != e.Lookups || emitted[pos] != e.Output {
					t.Fatalf("depth %d (u%d): depth stats %d/%d != profile %d/%d",
						pos, u, lookups[pos], emitted[pos], e.Lookups, e.Output)
				}
			}
		})
	}
}

// TestDepthStatsZeroAlloc: enabling the depth counters must not break
// the zero-allocation steady state — counting is two plain adds, and
// the unit-boundary drain reuses the watermark slices.
func TestDepthStatsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; run without -race")
	}
	data, query := gen.Fig1Data(), gen.Fig1Query()
	tree, err := order.Preprocess(data, query, order.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix := ceci.Build(data, tree, ceci.Options{})
	ds := NewDepthStats(tree.NumVertices())
	m := NewMatcher(ix, Options{Workers: 1, Strategy: workload.FGD, Depth: ds})
	units := m.units()
	if len(units) == 0 {
		t.Skip("no work units")
	}
	ctl := &control{fn: func([]graph.VertexID) bool { return true }}
	s := newSearcher(m, ctl)
	pass := func() {
		for _, u := range units {
			s.runUnit(u)
		}
		s.chargeDepth()
	}
	pass()
	if avg := testing.AllocsPerRun(20, pass); avg != 0 {
		t.Errorf("depth-counted enumeration pass allocates %.1f times, want 0", avg)
	}
	if l, _ := ds.Snapshot(); l[1] == 0 {
		t.Fatal("depth stats recorded nothing")
	}
}
