package enum_test

import (
	"testing"

	"ceci/internal/enum"
	"ceci/internal/gen"
	"ceci/internal/order"
	"ceci/internal/telemetry"
)

// TestLedgerCharges runs a full enumeration with a resource ledger
// attached and checks the charges are consistent with the run: CPU time
// accrued, unit/call/embedding counts match the enumeration's own
// counters, kernel work appears when intersections ran, and the scratch
// footprint is positive.
func TestLedgerCharges(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	led := telemetry.NewLedger()
	m := buildMatcher(t, data, query,
		order.Options{ForcedRoot: 0}, enum.Options{Workers: 2, Ledger: led})
	n := m.Count()
	if n == 0 {
		t.Fatalf("no embeddings")
	}

	r := led.Snapshot()
	if r.Units <= 0 {
		t.Fatalf("no units charged: %+v", r)
	}
	if r.Embeddings != n {
		t.Fatalf("ledger embeddings = %d, enumeration delivered %d", r.Embeddings, n)
	}
	if r.RecursiveCalls <= 0 {
		t.Fatalf("no recursive calls charged: %+v", r)
	}
	if r.PeakScratchBytes <= 0 {
		t.Fatalf("no scratch footprint: %+v", r)
	}
	// The Fig.1 query has non-tree edges, so intersections — and with
	// them kernel work — must have been recorded.
	var kernelCalls int64
	for _, k := range r.Kernels {
		kernelCalls += k.Calls
	}
	if kernelCalls <= 0 {
		t.Fatalf("no kernel work charged: %+v", r.Kernels)
	}
}

// TestLedgerRepeatable checks the deterministic charges (everything but
// CPU time and scratch, which depend on scheduling) are identical across
// runs of the same single-worker enumeration.
func TestLedgerRepeatable(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	run := func() *telemetry.Ledger {
		led := telemetry.NewLedger()
		m := buildMatcher(t, data, query,
			order.Options{ForcedRoot: 0}, enum.Options{Workers: 1, Ledger: led})
		m.Count()
		return led
	}
	a, b := run().Snapshot(), run().Snapshot()
	if a.Units != b.Units || a.RecursiveCalls != b.RecursiveCalls ||
		a.Embeddings != b.Embeddings || len(a.Kernels) != len(b.Kernels) {
		t.Fatalf("ledger not repeatable:\n%+v\n%+v", a, b)
	}
	for i := range a.Kernels {
		if a.Kernels[i] != b.Kernels[i] {
			t.Fatalf("kernel mix differs: %+v vs %+v", a.Kernels[i], b.Kernels[i])
		}
	}
}
