package enum

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ceci/internal/auto"
	"ceci/internal/ceci"
	"ceci/internal/graph"
	"ceci/internal/obs"
	"ceci/internal/order"
	"ceci/internal/workload"
)

// ForEachIncremental enumerates embeddings cluster by cluster, building
// each pivot's slice of the CECI on demand instead of indexing the whole
// data graph up front. Embedding clusters are independent (that is the
// core observation of the paper), so a per-cluster build touches only the
// region reachable from its pivot — exactly the right trade for first-k
// workloads (§6.2's 1,024-embedding experiments), where a monolithic
// build would index far more of the graph than the enumeration ever
// visits.
//
// Semantics match Matcher.ForEach: fn may run concurrently, the slice is
// reused, returning false stops everything; eopts.Limit is honored
// globally across clusters.
func ForEachIncremental(data *graph.Graph, tree *order.QueryTree,
	bopts ceci.Options, eopts Options, fn func(emb []graph.VertexID) bool) {
	_ = ForEachIncrementalCtx(context.Background(), data, tree, bopts, eopts, fn)
}

// ForEachIncrementalCtx is ForEachIncremental under a context: the
// deadline/cancel is honored at cluster granularity between per-pivot
// builds, inside each on-demand build (via ceci.BuildCtx), and at depth-
// step granularity inside enumeration through the shared stop flag.
// Returns the context's cause when the run was cut short, nil otherwise.
func ForEachIncrementalCtx(ctx context.Context, data *graph.Graph, tree *order.QueryTree,
	bopts ceci.Options, eopts Options, fn func(emb []graph.VertexID) bool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	var pivots []graph.VertexID
	order.ForEachCandidate(data, tree.Query, tree.Root, func(v graph.VertexID) {
		pivots = append(pivots, v)
	})
	if len(pivots) == 0 {
		return nil
	}

	workers := eopts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pivots) {
		workers = len(pivots)
	}
	var cons *auto.Constraints
	if !eopts.DisableSymmetryBreaking {
		cons = auto.Compute(tree.Query)
	}
	ctl := &control{fn: fn, limit: eopts.Limit}
	var cancelled atomic.Bool
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			cancelled.Store(true)
			ctl.stop.Store(true)
		})
		defer stop()
	}

	if rep := eopts.Progress; rep != nil {
		// Cluster cardinalities are unknown up front (each cluster's index
		// is built on demand), so ETA derives from cluster counts alone.
		rep.AddTotals(len(pivots), 0)
		rep.Start()
		defer rep.Stop()
	}
	span := obs.StartUnder(ctx, eopts.Trace, "enumerate-incremental",
		obs.Int("pivots", int64(len(pivots))),
		obs.Int("workers", int64(workers)))
	defer span.End()
	// Per-cluster builds below run under a detached context: one span per
	// cluster would flood the trace, and clusterOpts.Tracer is already nil.
	buildCtx := obs.DetachTrace(ctx)

	if p := eopts.Profile; p != nil {
		if bopts.Profile == nil {
			bopts.Profile = p // one attach point covers the per-cluster builds
		}
		p.EnsureWorkers(workers)
		enumStart := time.Now()
		defer func() { p.AddEnumWall(time.Since(enumStart)) }()
	}

	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One matcher shell and searcher per worker; the index is
			// swapped per cluster so buffers are reused.
			shell := &Matcher{cons: cons, opts: eopts}
			var s *searcher
			defer func() {
				if s != nil {
					s.flush()
				}
			}()
			pivotBuf := make([]graph.VertexID, 1)
			for {
				i := cursor.Add(1) - 1
				if i >= int64(len(pivots)) || ctl.stop.Load() {
					return
				}
				unitStart := time.Now()
				pivotBuf[0] = pivots[i]
				clusterOpts := bopts
				clusterOpts.Workers = 1
				clusterOpts.Pivots = pivotBuf
				clusterOpts.Tracer = nil // per-cluster builds would flood the trace
				ix, err := ceci.BuildCtx(buildCtx, data, tree, clusterOpts)
				if err != nil {
					return // cancelled mid-build; ctl.stop is already up
				}
				if len(ix.Pivots()) == 0 {
					eopts.Profile.WorkerUnit(w, time.Since(unitStart))
					eopts.Progress.ClusterDone(0)
					continue // cluster died during filtering/refinement
				}
				shell.ix = ix
				if s == nil {
					s = newSearcher(shell, ctl)
				}
				ok := s.runUnit(workload.Unit{Prefix: pivotBuf[:1]})
				elapsed := time.Since(unitStart)
				eopts.Profile.WorkerUnit(w, elapsed)
				if eopts.Ledger != nil {
					s.chargeLedger(elapsed)
				}
				s.chargeDepth()
				if rep := eopts.Progress; rep != nil {
					rep.ClusterDone(0)
					s.flush()
				}
				if !ok {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if cancelled.Load() {
		return context.Cause(ctx)
	}
	return nil
}

// CountIncremental counts embeddings via ForEachIncremental.
func CountIncremental(data *graph.Graph, tree *order.QueryTree, bopts ceci.Options, eopts Options) int64 {
	var n atomic.Int64
	ForEachIncremental(data, tree, bopts, eopts, func([]graph.VertexID) bool {
		n.Add(1)
		return true
	})
	return n.Load()
}
