package enum_test

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"ceci/internal/ceci"
	"ceci/internal/enum"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
)

// TestIncrementalMatchesMonolithic: cluster-by-cluster lazy building must
// produce exactly the same counts as the monolithic index, across random
// labeled graphs and worker counts.
func TestIncrementalMatchesMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 40; trial++ {
		data := randomGraph(rng, 12+rng.Intn(10), 25+rng.Intn(30), 1+rng.Intn(3))
		query, err := gen.DFSQuery(data, 2+rng.Intn(4), rng)
		if err != nil {
			continue
		}
		tree, err := order.Preprocess(data, query, order.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		ix := ceci.Build(data, tree, ceci.Options{})
		want := enum.NewMatcher(ix, enum.Options{Workers: 1}).Count()
		for _, workers := range []int{1, 4} {
			got := enum.CountIncremental(data, tree, ceci.Options{}, enum.Options{Workers: workers})
			if got != want {
				t.Fatalf("trial %d w=%d: incremental %d != monolithic %d", trial, workers, got, want)
			}
		}
	}
}

func TestIncrementalLimit(t *testing.T) {
	data := gen.Kronecker(9, 8, 3)
	tree, err := order.Preprocess(data, gen.QG1(), order.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got := enum.CountIncremental(data, tree, ceci.Options{},
			enum.Options{Workers: workers, Limit: 77})
		if got != 77 {
			t.Fatalf("w=%d: limited count = %d, want 77", workers, got)
		}
	}
}

func TestIncrementalEarlyStop(t *testing.T) {
	data := gen.Kronecker(9, 8, 3)
	tree, err := order.Preprocess(data, gen.QG1(), order.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	enum.ForEachIncremental(data, tree, ceci.Options{}, enum.Options{Workers: 1},
		func([]uint32) bool {
			calls++
			return calls < 9
		})
	if calls != 9 {
		t.Fatalf("callback ran %d times, want 9", calls)
	}
}

func TestIncrementalEmptyResult(t *testing.T) {
	// A query with a label absent from the data graph: no pivots at all.
	data := gen.Fig1Data()
	b := graph.NewBuilder(2)
	b.SetLabel(0, 99)
	b.SetLabel(1, 99)
	b.AddEdge(0, 1)
	query := b.MustBuild()
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := enum.CountIncremental(data, tree, ceci.Options{}, enum.Options{}); got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
}

// collectEmbeddings gathers an enumeration into a sorted, comparable set
// of embedding encodings (safe under concurrent callbacks).
func collectEmbeddings(forEach func(fn func([]graph.VertexID) bool)) []string {
	var mu sync.Mutex
	var out []string
	forEach(func(emb []graph.VertexID) bool {
		mu.Lock()
		out = append(out, fmt.Sprint(emb))
		mu.Unlock()
		return true
	})
	sort.Strings(out)
	return out
}

// TestIncrementalMatchesBatchEmbeddings: on 20 seeded graph/query pairs,
// incremental enumeration after an index rebuild must match batch
// enumeration embedding-for-embedding — not merely in count.
func TestIncrementalMatchesBatchEmbeddings(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		data, query := gen.RandomPair(seed)
		tree, err := order.Preprocess(data, query, order.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		// Build, enumerate, then rebuild the index from scratch before the
		// incremental pass, so the comparison spans an index rebuild.
		ix := ceci.Build(data, tree, ceci.Options{})
		batch := collectEmbeddings(func(fn func([]graph.VertexID) bool) {
			enum.NewMatcher(ix, enum.Options{Workers: 2}).ForEach(fn)
		})
		tree2, err := order.Preprocess(data, query, order.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3} {
			incr := collectEmbeddings(func(fn func([]graph.VertexID) bool) {
				enum.ForEachIncremental(data, tree2, ceci.Options{}, enum.Options{Workers: workers}, fn)
			})
			if len(incr) != len(batch) {
				t.Fatalf("seed %d w=%d: incremental %d embeddings, batch %d",
					seed, workers, len(incr), len(batch))
			}
			for i := range batch {
				if batch[i] != incr[i] {
					t.Fatalf("seed %d w=%d: embedding %d differs: batch %s, incremental %s",
						seed, workers, i, batch[i], incr[i])
				}
			}
		}
	}
}

// TestIncrementalEmptyMatchesBatch: the no-embedding case must agree
// embedding-for-embedding too (both sides empty).
func TestIncrementalEmptyMatchesBatch(t *testing.T) {
	data := gen.Fig1Data()
	b := graph.NewBuilder(3)
	for v := 0; v < 3; v++ {
		b.SetLabel(graph.VertexID(v), 77) // label absent from the data graph
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	query := b.MustBuild()
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	batch := collectEmbeddings(func(fn func([]graph.VertexID) bool) {
		enum.NewMatcher(ceci.Build(data, tree, ceci.Options{}), enum.Options{}).ForEach(fn)
	})
	incr := collectEmbeddings(func(fn func([]graph.VertexID) bool) {
		enum.ForEachIncremental(data, tree, ceci.Options{}, enum.Options{}, fn)
	})
	if len(batch) != 0 || len(incr) != 0 {
		t.Fatalf("want empty results, got batch %d incremental %d", len(batch), len(incr))
	}
}

// TestIncrementalSingleCluster: force a root with exactly one candidate
// (a uniquely-labeled vertex), so the whole enumeration lives in a single
// embedding cluster; incremental and batch must still agree exactly.
func TestIncrementalSingleCluster(t *testing.T) {
	// Data: a star of B-labeled leaves around the only A-labeled hub,
	// with a cycle through the leaves for non-tree edges.
	b := graph.NewBuilder(7)
	b.SetLabel(0, 0) // the unique A
	for v := graph.VertexID(1); v < 7; v++ {
		b.SetLabel(v, 1)
		b.AddEdge(0, v)
	}
	for v := graph.VertexID(1); v < 6; v++ {
		b.AddEdge(v, v+1)
	}
	data := b.MustBuild()

	qb := graph.NewBuilder(3)
	qb.SetLabel(0, 0)
	qb.SetLabel(1, 1)
	qb.SetLabel(2, 1)
	qb.AddEdge(0, 1)
	qb.AddEdge(0, 2)
	qb.AddEdge(1, 2)
	query := qb.MustBuild()

	root := 0 // the A-labeled query vertex: exactly one data candidate
	tree, err := order.Preprocess(data, query, order.Options{ForcedRoot: root, Heuristic: order.BFSOrder})
	if err != nil {
		t.Fatal(err)
	}
	ix := ceci.Build(data, tree, ceci.Options{})
	if got := len(ix.Pivots()); got != 1 {
		t.Fatalf("pivots = %d, want exactly 1 cluster", got)
	}
	batch := collectEmbeddings(func(fn func([]graph.VertexID) bool) {
		enum.NewMatcher(ix, enum.Options{Workers: 2}).ForEach(fn)
	})
	incr := collectEmbeddings(func(fn func([]graph.VertexID) bool) {
		enum.ForEachIncremental(data, tree, ceci.Options{}, enum.Options{Workers: 2}, fn)
	})
	if len(batch) == 0 {
		t.Fatal("expected embeddings in the single-cluster case")
	}
	if len(batch) != len(incr) {
		t.Fatalf("batch %d embeddings, incremental %d", len(batch), len(incr))
	}
	for i := range batch {
		if batch[i] != incr[i] {
			t.Fatalf("embedding %d differs: %s vs %s", i, batch[i], incr[i])
		}
	}
}
