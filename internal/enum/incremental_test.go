package enum_test

import (
	"math/rand"
	"testing"

	"ceci/internal/ceci"
	"ceci/internal/enum"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
)

// TestIncrementalMatchesMonolithic: cluster-by-cluster lazy building must
// produce exactly the same counts as the monolithic index, across random
// labeled graphs and worker counts.
func TestIncrementalMatchesMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 40; trial++ {
		data := randomGraph(rng, 12+rng.Intn(10), 25+rng.Intn(30), 1+rng.Intn(3))
		query, err := gen.DFSQuery(data, 2+rng.Intn(4), rng)
		if err != nil {
			continue
		}
		tree, err := order.Preprocess(data, query, order.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		ix := ceci.Build(data, tree, ceci.Options{})
		want := enum.NewMatcher(ix, enum.Options{Workers: 1}).Count()
		for _, workers := range []int{1, 4} {
			got := enum.CountIncremental(data, tree, ceci.Options{}, enum.Options{Workers: workers})
			if got != want {
				t.Fatalf("trial %d w=%d: incremental %d != monolithic %d", trial, workers, got, want)
			}
		}
	}
}

func TestIncrementalLimit(t *testing.T) {
	data := gen.Kronecker(9, 8, 3)
	tree, err := order.Preprocess(data, gen.QG1(), order.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got := enum.CountIncremental(data, tree, ceci.Options{},
			enum.Options{Workers: workers, Limit: 77})
		if got != 77 {
			t.Fatalf("w=%d: limited count = %d, want 77", workers, got)
		}
	}
}

func TestIncrementalEarlyStop(t *testing.T) {
	data := gen.Kronecker(9, 8, 3)
	tree, err := order.Preprocess(data, gen.QG1(), order.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	enum.ForEachIncremental(data, tree, ceci.Options{}, enum.Options{Workers: 1},
		func([]uint32) bool {
			calls++
			return calls < 9
		})
	if calls != 9 {
		t.Fatalf("callback ran %d times, want 9", calls)
	}
}

func TestIncrementalEmptyResult(t *testing.T) {
	// A query with a label absent from the data graph: no pivots at all.
	data := gen.Fig1Data()
	b := graph.NewBuilder(2)
	b.SetLabel(0, 99)
	b.SetLabel(1, 99)
	b.AddEdge(0, 1)
	query := b.MustBuild()
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := enum.CountIncremental(data, tree, ceci.Options{}, enum.Options{}); got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
}
