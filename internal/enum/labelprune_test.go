package enum_test

import (
	"math/rand"
	"testing"

	"ceci/internal/ceci"
	"ceci/internal/enum"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
	"ceci/internal/prof"
)

func countWith(t *testing.T, data, query *graph.Graph, copts ceci.Options, workers int) (int64, map[string]int64) {
	t.Helper()
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	var collector *prof.Collector
	if copts.Profile == nil {
		collector = prof.New()
		copts.Profile = collector
	} else {
		collector = copts.Profile
	}
	ix := ceci.Build(data, tree, copts)
	n := enum.NewMatcher(ix, enum.Options{Workers: workers, Profile: collector}).Count()
	return n, collector.Snapshot().FunnelTotals()
}

// TestLabelPairPruneEquivalence: enabling the label-pair prune must never
// change the embedding count — under default filtering (where the NLC
// filter subsumes it) and under SkipNLCFilter (where it recovers real
// pruning). Random labeled graphs across several alphabet sizes.
func TestLabelPairPruneEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	anyPruned := int64(0)
	for trial := 0; trial < 60; trial++ {
		labels := 2 + rng.Intn(5)
		data := randomGraph(rng, 14+rng.Intn(10), 40+rng.Intn(40), labels)
		query, err := gen.DFSQuery(data, 3+rng.Intn(3), rng)
		if err != nil {
			continue
		}
		for _, skipNLC := range []bool{false, true} {
			base, _ := countWith(t, data, query, ceci.Options{SkipNLCFilter: skipNLC}, 2)
			pruned, totals := countWith(t, data, query, ceci.Options{SkipNLCFilter: skipNLC, LabelPairPrune: true}, 2)
			if base != pruned {
				t.Fatalf("trial %d skipNLC=%v: prune changed count %d -> %d", trial, skipNLC, base, pruned)
			}
			if skipNLC {
				anyPruned += totals["enum_label_pruned"]
			}
		}
	}
	// The prune must actually fire somewhere across the sweep, or the
	// equivalence above proves nothing.
	if anyPruned == 0 {
		t.Fatal("label-pair prune never dropped a candidate across 60 labeled trials")
	}
}

// TestLabelPairPruneUnlabeledNoop: on a single-label graph the prune has
// nothing to key on and must change neither results nor counters.
func TestLabelPairPruneUnlabeledNoop(t *testing.T) {
	data := gen.Kronecker(7, 6, 3)
	query := gen.QG1()
	base, _ := countWith(t, data, query, ceci.Options{}, 2)
	pruned, totals := countWith(t, data, query, ceci.Options{LabelPairPrune: true}, 2)
	if base != pruned {
		t.Fatalf("prune changed count on unlabeled graph: %d -> %d", base, pruned)
	}
	if totals["enum_label_pruned"] != 0 {
		t.Fatalf("prune counter fired on unlabeled graph: %d", totals["enum_label_pruned"])
	}
}

// TestKernelCountersAccountAllWork: the per-kernel scanned/call counters
// drained from the enumeration scratches must be internally consistent —
// calls sum to the intersection count and scanned work is nonzero
// whenever intersections ran.
func TestKernelCountersAccountAllWork(t *testing.T) {
	data := gen.Kronecker(8, 8, 1)
	query := gen.QG3()
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	collector := prof.New()
	ix := ceci.Build(data, tree, ceci.Options{Profile: collector})
	enum.NewMatcher(ix, enum.Options{Workers: 4, Profile: collector}).Count()
	p := collector.Snapshot()

	var intersections, kernelCalls, scanned int64
	for _, v := range p.Vertices {
		intersections += v.Enum.Intersections
		scanned += v.Enum.Scanned
		for _, k := range v.Enum.Kernels {
			kernelCalls += k.Calls
		}
	}
	if intersections == 0 {
		t.Fatal("fixture produced no intersections; pick a denser one")
	}
	// Every charged intersection runs at most one kernel call (IntersectK
	// stops early once an intermediate comes up empty, so calls can fall
	// short of the charge, never past it). Kernel calls above the charge
	// would mean work ran outside the adaptive dispatch's accounting.
	if kernelCalls > intersections {
		t.Fatalf("kernel calls %d > intersections %d: work escaped the per-kernel accounting", kernelCalls, intersections)
	}
	if kernelCalls == 0 {
		t.Fatal("no kernel calls recorded despite intersections")
	}
	if scanned == 0 {
		t.Fatal("no scanned work recorded despite intersections")
	}
	totals := p.FunnelTotals()
	if totals["enum_scanned"] != scanned {
		t.Fatalf("FunnelTotals enum_scanned %d != summed %d", totals["enum_scanned"], scanned)
	}
}

// TestKernelCountersDeterministic: two identical profiled runs must
// record identical kernel splits (they are pure functions of the inputs,
// regardless of worker interleaving).
func TestKernelCountersDeterministic(t *testing.T) {
	data := gen.Kronecker(7, 7, 2)
	query := gen.QG3()
	run := func() map[string]int64 {
		tree, err := order.Preprocess(data, query, order.DefaultOptions())
		if err != nil {
			t.Fatalf("Preprocess: %v", err)
		}
		collector := prof.New()
		ix := ceci.Build(data, tree, ceci.Options{Profile: collector})
		enum.NewMatcher(ix, enum.Options{Workers: 4, Profile: collector}).Count()
		return collector.Snapshot().FunnelTotals()
	}
	a, b := run(), run()
	for _, key := range []string{
		"enum_comparisons", "enum_scanned",
		"enum_kernel_merge_calls", "enum_kernel_gallop_calls", "enum_kernel_bitset_calls", "enum_kernel_probe_calls",
		"enum_kernel_merge_scanned", "enum_kernel_gallop_scanned", "enum_kernel_bitset_scanned", "enum_kernel_probe_scanned",
	} {
		if a[key] != b[key] {
			t.Fatalf("%s nondeterministic: %d vs %d", key, a[key], b[key])
		}
	}
}
