package enum

import (
	"time"

	"ceci/internal/bitset"
	"ceci/internal/ceci"
	"ceci/internal/graph"
	"ceci/internal/setops"
	"ceci/internal/workload"
)

// searcher is one worker's backtracking state. All buffers are owned by
// the worker; nothing here is shared.
type searcher struct {
	m    *Matcher
	ctl  *control
	tree queryShape

	emb     []graph.VertexID    // partial embedding, indexed by query vertex
	matched []bool              // indexed by query vertex
	used    bitset.Bits         // indexed by data vertex (injectivity bitmap)
	scratch []ceci.MatchScratch // per-depth intersection buffers

	// Cumulative counters for the searcher's lifetime; flush pushes the
	// delta beyond flushed* to the Stats/Progress sinks so live snapshots
	// advance mid-run without an atomic per embedding.
	recursiveCalls int64
	embeddings     int64
	flushedCalls   int64
	flushedEmbs    int64

	// Ledger watermarks: the portion of the cumulative counters already
	// charged to the resource ledger at the last work-unit boundary.
	ledCalls   int64
	ledEmbs    int64
	ledKernels setops.KernelStats

	// Per-depth selectivity counters (nil unless Options.Depth is set):
	// depthLookups/depthEmitted accumulate plainly inside the depth step;
	// ledDepth* are the watermarks drained into the shared DepthStats
	// atomics at work-unit boundaries.
	depthLookups []int64
	depthEmitted []int64
	ledDepthL    []int64
	ledDepthE    []int64
}

// liveFlushMask batches sink updates: counters drain every 4096
// embeddings (and at each unit boundary), keeping the hot path
// atomic-free.
const liveFlushMask = 1<<12 - 1

// queryShape caches the tree fields the inner loop touches.
type queryShape struct {
	order []graph.VertexID
	n     int
}

func newSearcher(m *Matcher, ctl *control) *searcher {
	n := m.ix.Tree.NumVertices()
	s := &searcher{
		m:       m,
		ctl:     ctl,
		tree:    queryShape{order: m.ix.Tree.Order, n: n},
		emb:     make([]graph.VertexID, n),
		matched: make([]bool, n),
		used:    bitset.New(m.ix.Data.NumVertices()),
		scratch: make([]ceci.MatchScratch, n+1),
	}
	if d := m.opts.Depth; d != nil && d.Depths() >= n {
		s.depthLookups = make([]int64, n)
		s.depthEmitted = make([]int64, n)
		s.ledDepthL = make([]int64, n)
		s.ledDepthE = make([]int64, n)
	}
	return s
}

// runUnit enumerates the embeddings of one work unit: the prefix is
// installed (it was validated during decomposition) and the search
// continues from the next matching-order position. Returns false when
// the enumeration should stop globally.
func (s *searcher) runUnit(u workload.Unit) bool {
	// Invalidate the per-depth stable-intersection caches: correctness
	// does not require it (cache keys are compared on every lookup), but
	// resetting at unit boundaries makes the rebuild counts — and so the
	// per-kernel profile — independent of which worker ran which
	// consecutive units.
	for i := range s.scratch {
		s.scratch[i].ResetUnitCache()
	}
	for i, v := range u.Prefix {
		q := s.tree.order[i]
		s.emb[q] = v
		s.matched[q] = true
		s.used.Set(v)
	}
	ok := s.search(len(u.Prefix))
	for i, v := range u.Prefix {
		q := s.tree.order[i]
		s.matched[q] = false
		s.used.Clear(v)
	}
	return ok
}

// search extends the embedding at the given matching-order depth.
// Returns false to stop enumeration (limit reached, consumer stop, or
// context cancellation).
func (s *searcher) search(depth int) bool {
	// The entry check gives depth-step cancellation granularity: once the
	// stop flag is up — limit, consumer, or a context deadline — no new
	// depth is entered, even on a worker's first descent. One relaxed
	// atomic load; nothing allocates.
	if s.ctl.stop.Load() {
		return false
	}
	if depth == s.tree.n {
		delivered, cont := s.ctl.emit(s.emb)
		if delivered {
			s.embeddings++
			if s.embeddings&liveFlushMask == 0 {
				s.flush()
			}
		}
		return cont
	}
	u := s.tree.order[depth]
	s.recursiveCalls++

	var cands []graph.VertexID
	if s.m.opts.EdgeVerification {
		cands = s.m.ix.CandidatesForEdgeVerify(u, s.emb)
	} else {
		cands = s.m.ix.CandidatesFor(u, s.emb, &s.scratch[depth])
	}
	if s.depthLookups != nil {
		s.depthLookups[depth]++
		s.depthEmitted[depth] += int64(len(cands))
	}
	if len(cands) == 0 {
		return true
	}
	cons := s.m.cons
	for _, v := range cands {
		if s.used.Get(v) {
			continue
		}
		if cons != nil && !cons.Allows(u, v, s.emb, s.matched) {
			continue
		}
		if s.m.opts.EdgeVerification && !s.m.ix.VerifyNTE(u, v, s.emb) {
			continue
		}
		s.emb[u] = v
		s.matched[u] = true
		s.used.Set(v)
		ok := s.search(depth + 1)
		s.matched[u] = false
		s.used.Clear(v)
		if !ok {
			return false
		}
		// Periodically observe the global stop flag so deep subtrees
		// terminate promptly once a limit is hit elsewhere.
		if s.ctl.stop.Load() {
			return false
		}
	}
	return true
}

// chargeLedger pushes this worker's deltas since the previous charge to
// the query's resource ledger: the unit's busy time, recursive-call and
// embedding deltas, the per-kernel work summed across the per-depth
// scratches, and the worker's current scratch footprint (a handful of
// atomic adds — runWorker calls it once per completed unit, never inside
// the depth step).
func (s *searcher) chargeLedger(elapsed time.Duration) {
	led := s.m.opts.Ledger
	var kern setops.KernelStats
	var scratchBytes int64
	for i := range s.scratch {
		k := s.scratch[i].KernelTotals()
		for j := 0; j < setops.NumKernels; j++ {
			kern.Calls[j] += k.Calls[j]
			kern.Scanned[j] += k.Scanned[j]
			kern.Emitted[j] += k.Emitted[j]
		}
		scratchBytes += s.scratch[i].FootprintBytes()
	}
	scratchBytes += int64(cap(s.emb))*4 + int64(cap(s.matched)) + int64(len(s.used))*8
	led.AddUnit(elapsed, s.recursiveCalls-s.ledCalls, s.embeddings-s.ledEmbs, scratchBytes)
	led.AddKernels(kern.Sub(s.ledKernels))
	s.ledCalls = s.recursiveCalls
	s.ledEmbs = s.embeddings
	s.ledKernels = kern
}

// chargeDepth drains per-depth lookup/output deltas since the previous
// charge into the shared DepthStats atomics — the same unit-boundary
// watermark discipline as chargeLedger, so the depth step itself stays
// atomic-free and allocation-free.
func (s *searcher) chargeDepth() {
	d := s.m.opts.Depth
	if d == nil || s.depthLookups == nil {
		return
	}
	for i := range s.depthLookups {
		dl := s.depthLookups[i] - s.ledDepthL[i]
		de := s.depthEmitted[i] - s.ledDepthE[i]
		if dl == 0 && de == 0 {
			continue
		}
		d.add(i, dl, de)
		s.ledDepthL[i] = s.depthLookups[i]
		s.ledDepthE[i] = s.depthEmitted[i]
	}
}

// flush pushes counter deltas since the last flush to the Stats counters
// and the Progress reporter. Cumulative fields are never reset, so
// callers (MeasureUnits) can still read them across units.
func (s *searcher) flush() {
	dCalls := s.recursiveCalls - s.flushedCalls
	dEmbs := s.embeddings - s.flushedEmbs
	if dCalls == 0 && dEmbs == 0 {
		return
	}
	if st := s.m.opts.Stats; st != nil {
		st.RecursiveCalls.Add(dCalls)
		st.Embeddings.Add(dEmbs)
	}
	s.m.opts.Progress.AddEmbeddings(dEmbs)
	s.flushedCalls = s.recursiveCalls
	s.flushedEmbs = s.embeddings
}
