package enum

import (
	"ceci/internal/ceci"
	"ceci/internal/graph"
	"ceci/internal/workload"
)

// searcher is one worker's backtracking state. All buffers are owned by
// the worker; nothing here is shared.
type searcher struct {
	m    *Matcher
	ctl  *control
	tree queryShape

	emb     []graph.VertexID    // partial embedding, indexed by query vertex
	matched []bool              // indexed by query vertex
	used    []bool              // indexed by data vertex (injectivity bitmap)
	scratch []ceci.MatchScratch // per-depth intersection buffers

	recursiveCalls int64
	embeddings     int64
}

// queryShape caches the tree fields the inner loop touches.
type queryShape struct {
	order []graph.VertexID
	n     int
}

func newSearcher(m *Matcher, ctl *control) *searcher {
	n := m.ix.Tree.NumVertices()
	return &searcher{
		m:       m,
		ctl:     ctl,
		tree:    queryShape{order: m.ix.Tree.Order, n: n},
		emb:     make([]graph.VertexID, n),
		matched: make([]bool, n),
		used:    make([]bool, m.ix.Data.NumVertices()),
		scratch: make([]ceci.MatchScratch, n+1),
	}
}

// runUnit enumerates the embeddings of one work unit: the prefix is
// installed (it was validated during decomposition) and the search
// continues from the next matching-order position. Returns false when
// the enumeration should stop globally.
func (s *searcher) runUnit(u workload.Unit) bool {
	for i, v := range u.Prefix {
		q := s.tree.order[i]
		s.emb[q] = v
		s.matched[q] = true
		s.used[v] = true
	}
	ok := s.search(len(u.Prefix))
	for i, v := range u.Prefix {
		q := s.tree.order[i]
		s.matched[q] = false
		s.used[v] = false
	}
	return ok
}

// search extends the embedding at the given matching-order depth.
// Returns false to stop enumeration (limit reached or consumer stop).
func (s *searcher) search(depth int) bool {
	if depth == s.tree.n {
		s.embeddings++
		return s.ctl.emit(s.emb)
	}
	u := s.tree.order[depth]
	s.recursiveCalls++

	var cands []graph.VertexID
	if s.m.opts.EdgeVerification {
		cands = s.m.ix.CandidatesForEdgeVerify(u, s.emb)
	} else {
		cands = s.m.ix.CandidatesFor(u, s.emb, &s.scratch[depth])
	}
	if len(cands) == 0 {
		return true
	}
	cons := s.m.cons
	for _, v := range cands {
		if s.used[v] {
			continue
		}
		if cons != nil && !cons.Allows(u, v, s.emb, s.matched) {
			continue
		}
		if s.m.opts.EdgeVerification && !s.m.ix.VerifyNTE(u, v, s.emb) {
			continue
		}
		s.emb[u] = v
		s.matched[u] = true
		s.used[v] = true
		ok := s.search(depth + 1)
		s.matched[u] = false
		s.used[v] = false
		if !ok {
			return false
		}
		// Periodically observe the global stop flag so deep subtrees
		// terminate promptly once a limit is hit elsewhere.
		if s.ctl.stop.Load() {
			return false
		}
	}
	return true
}

func (s *searcher) flushStats() {
	if st := s.m.opts.Stats; st != nil {
		st.RecursiveCalls.Add(s.recursiveCalls)
		st.Embeddings.Add(s.embeddings)
	}
	s.recursiveCalls = 0
	s.embeddings = 0
}
