package enum

import (
	"time"

	"ceci/internal/graph"
	"ceci/internal/workload"
)

// UnitCost records the measured cost of one work unit: the basis for the
// schedule simulation behind the paper's scalability figures. On hosts
// with fewer cores than the experiment's worker count (common when
// reproducing a 28-core/16-machine study on a laptop), wall-clock speedup
// curves are meaningless; instead, every unit is processed serially, its
// real duration recorded, and k-worker makespans are computed by
// simulating the ST/CGD/FGD schedules over those measured costs
// (workload.SimulateMakespan).
type UnitCost struct {
	Unit       workload.Unit
	Duration   time.Duration
	Embeddings int64
}

// MeasureUnits enumerates every unit of the matcher's strategy serially,
// returning per-unit measured costs. The total embedding count across
// units equals a full unlimited enumeration (Options.Limit is ignored:
// scalability experiments enumerate everything).
func (m *Matcher) MeasureUnits() []UnitCost {
	units := m.units()
	costs := make([]UnitCost, len(units))
	s := newSearcher(m, &control{fn: func([]graph.VertexID) bool { return true }})
	for i, u := range units {
		before := s.embeddings
		start := time.Now()
		s.runUnit(u)
		costs[i] = UnitCost{
			Unit:       u,
			Duration:   time.Since(start),
			Embeddings: s.embeddings - before,
		}
	}
	s.flush()
	return costs
}
