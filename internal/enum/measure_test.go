package enum_test

import (
	"testing"

	"ceci/internal/ceci"
	"ceci/internal/enum"
	"ceci/internal/gen"
	"ceci/internal/order"
	"ceci/internal/workload"
)

// TestMeasureUnitsTotalsMatchCount: serial unit measurement must account
// for every embedding exactly once, for both cluster-granular and
// FGD-decomposed unit sets.
func TestMeasureUnitsTotalsMatchCount(t *testing.T) {
	data := gen.Kronecker(9, 8, 13)
	for _, qname := range []string{"QG1", "QG2", "QG3"} {
		query := gen.QueryGraphs()[qname]
		tree, err := order.Preprocess(data, query, order.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		ix := ceci.Build(data, tree, ceci.Options{})
		want := enum.NewMatcher(ix, enum.Options{Workers: 1}).Count()
		for _, strat := range []workload.Strategy{workload.CGD, workload.FGD} {
			m := enum.NewMatcher(ix, enum.Options{Workers: 8, Strategy: strat, Beta: 0.1})
			costs := m.MeasureUnits()
			var total int64
			for _, c := range costs {
				total += c.Embeddings
				if c.Duration < 0 {
					t.Fatalf("%s/%v: negative duration", qname, strat)
				}
			}
			if total != want {
				t.Fatalf("%s/%v: unit embeddings sum %d != count %d", qname, strat, total, want)
			}
		}
	}
}

// TestMeasureUnitsClusterGranularity: with CGD the units are exactly the
// embedding clusters.
func TestMeasureUnitsClusterGranularity(t *testing.T) {
	data := gen.Kronecker(8, 6, 7)
	tree, err := order.Preprocess(data, gen.QG1(), order.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ix := ceci.Build(data, tree, ceci.Options{})
	m := enum.NewMatcher(ix, enum.Options{Workers: 4, Strategy: workload.CGD})
	costs := m.MeasureUnits()
	if len(costs) != len(ix.Pivots()) {
		t.Fatalf("units %d != pivots %d", len(costs), len(ix.Pivots()))
	}
	for i, c := range costs {
		if len(c.Unit.Prefix) != 1 || c.Unit.Prefix[0] != ix.Pivots()[i] {
			t.Fatalf("unit %d is not cluster-granular: %+v", i, c.Unit)
		}
	}
}
