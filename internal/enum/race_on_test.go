//go:build race

package enum

// raceEnabled reports whether the race detector is active. Its
// instrumentation adds runtime bookkeeping allocations, so the strict
// zero-allocation assertions are skipped under -race.
const raceEnabled = true
