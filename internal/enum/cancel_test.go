package enum

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"ceci/internal/ceci"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
	"ceci/internal/stats"
)

// heavyMatcher builds a matcher over an unlabeled-ish pair with far more
// embeddings than the tests consume, so a cancel always lands mid-run.
func heavyMatcher(t *testing.T, opts Options) *Matcher {
	t.Helper()
	data := gen.ErdosRenyi(300, 2400, 7)
	qb := graph.NewBuilder(3) // path query: thousands of embeddings
	qb.AddEdge(0, 1)
	qb.AddEdge(1, 2)
	query, err := qb.Build()
	if err != nil {
		t.Fatalf("query build: %v", err)
	}
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	ix := ceci.Build(data, tree, ceci.Options{})
	return NewMatcher(ix, opts)
}

// TestCancelMidEnumerationConsistentStats cancels an enumeration from
// inside the consumer callback and checks the counters are not torn:
// Stats.Embeddings must equal the number of callback invocations exactly
// — a cancelled or limit-stopped run must never report embeddings its
// consumer did not receive. Runs with several workers so it exercises the
// racing-reservation path under -race.
func TestCancelMidEnumerationConsistentStats(t *testing.T) {
	st := &stats.Counters{}
	m := heavyMatcher(t, Options{Workers: 4, Stats: st})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var delivered atomic.Int64
	err := m.ForEachCtx(ctx, func([]graph.VertexID) bool {
		if delivered.Add(1) >= 100 {
			cancel()
			// The cancel watcher (context.AfterFunc) runs on its own
			// goroutine; throttle post-cancel deliveries so enumeration
			// cannot finish the whole graph before the stop flag lands.
			<-ctx.Done()
			time.Sleep(200 * time.Microsecond)
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEachCtx error = %v, want context.Canceled", err)
	}
	got, want := st.Embeddings.Load(), delivered.Load()
	if got != want {
		t.Errorf("Stats.Embeddings = %d, want %d (callback invocations)", got, want)
	}
	if want < 100 {
		t.Errorf("delivered %d embeddings before cancel, want >= 100", want)
	}
}

// TestLimitStopConsistentStats checks the same invariant on the Limit
// path: with racing workers reserving slots past the cap, exactly Limit
// embeddings are delivered and exactly Limit are counted.
func TestLimitStopConsistentStats(t *testing.T) {
	const limit = 57
	st := &stats.Counters{}
	m := heavyMatcher(t, Options{Workers: 4, Limit: limit, Stats: st})

	var delivered atomic.Int64
	m.ForEach(func([]graph.VertexID) bool {
		delivered.Add(1)
		return true
	})
	if got := delivered.Load(); got != limit {
		t.Errorf("delivered %d embeddings, want exactly %d", got, limit)
	}
	if got := st.Embeddings.Load(); got != limit {
		t.Errorf("Stats.Embeddings = %d, want exactly %d", got, limit)
	}
}

// TestDeadlineMidEnumeration drives the deadline path: a context that
// expires mid-run must stop the enumeration promptly and surface
// DeadlineExceeded, with the partial count intact.
func TestDeadlineMidEnumeration(t *testing.T) {
	m := heavyMatcher(t, Options{Workers: 2})

	// First measure: the pair must be heavy enough that 1ms cannot
	// finish it. (It enumerates hundreds of thousands of paths.)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	n, err := m.CountCtx(ctx)
	elapsed := time.Since(start)
	if err == nil {
		t.Skipf("enumeration finished inside the deadline (%d embeddings); host too fast", n)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CountCtx error = %v, want DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestPreCancelledContext: an already-dead context does no work at all.
func TestPreCancelledContext(t *testing.T) {
	m := heavyMatcher(t, Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := m.ForEachCtx(ctx, func([]graph.VertexID) bool {
		called = true
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if called {
		t.Error("callback invoked despite pre-cancelled context")
	}
}

// TestIncrementalCancellation checks ForEachIncrementalCtx honors a
// cancel raised from the consumer.
func TestIncrementalCancellation(t *testing.T) {
	data := gen.ErdosRenyi(300, 2400, 7)
	qb := graph.NewBuilder(3)
	qb.AddEdge(0, 1)
	qb.AddEdge(1, 2)
	query, err := qb.Build()
	if err != nil {
		t.Fatalf("query build: %v", err)
	}
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var delivered atomic.Int64
	err = ForEachIncrementalCtx(ctx, data, tree, ceci.Options{}, Options{Workers: 4},
		func([]graph.VertexID) bool {
			if delivered.Add(1) >= 50 {
				cancel()
				// Throttle post-cancel deliveries (see
				// TestCancelMidEnumerationConsistentStats): the watcher
				// goroutine must get scheduled before enumeration can
				// drain the remaining clusters.
				<-ctx.Done()
				time.Sleep(200 * time.Microsecond)
			}
			return true
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if delivered.Load() < 50 {
		t.Errorf("delivered %d, want >= 50", delivered.Load())
	}
}
