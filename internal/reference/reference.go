// Package reference provides a deliberately naive, obviously-correct
// subgraph matcher in the spirit of Ullmann's 1976 algorithm: depth-first
// assignment of query vertices in ID order with full edge verification
// and no index, no pruning beyond labels and degrees, and no parallelism.
//
// It exists as the correctness oracle for every other matcher in the
// repository (they are cross-validated against it on randomized small
// graphs) and as the most basic baseline.
package reference

import (
	"ceci/internal/auto"
	"ceci/internal/graph"
)

// Options configures the reference matcher.
type Options struct {
	// Constraints, when non-nil, applies symmetry-breaking ordering
	// rules so the count matches matchers that deduplicate
	// automorphisms. When nil, every isomorphic mapping is listed.
	Constraints *auto.Constraints
	// Limit stops after this many embeddings (0 = all).
	Limit int64
}

// FindAll enumerates embeddings of query in data, returning each as a
// slice indexed by query vertex ID.
func FindAll(data, query *graph.Graph, opts Options) [][]graph.VertexID {
	var out [][]graph.VertexID
	ForEach(data, query, opts, func(emb []graph.VertexID) bool {
		cp := make([]graph.VertexID, len(emb))
		copy(cp, emb)
		out = append(out, cp)
		return true
	})
	return out
}

// Count returns the number of embeddings.
func Count(data, query *graph.Graph, opts Options) int64 {
	var n int64
	ForEach(data, query, opts, func([]graph.VertexID) bool {
		n++
		return true
	})
	return n
}

// emit delivers the current embedding; reports whether to continue.
func (s *state) emit() bool {
	if s.opts.Limit > 0 && s.found >= s.opts.Limit {
		return false
	}
	s.found++
	if !s.fn(s.emb) {
		return false
	}
	return s.opts.Limit == 0 || s.found < s.opts.Limit
}

// ForEach enumerates embeddings of query in data, calling fn for each.
// The slice passed to fn is reused between calls: copy it to retain it.
// fn returning false stops the search.
func ForEach(data, query *graph.Graph, opts Options, fn func([]graph.VertexID) bool) {
	n := query.NumVertices()
	if n == 0 || n > data.NumVertices() {
		return
	}
	s := &state{
		data:    data,
		query:   query,
		opts:    opts,
		fn:      fn,
		emb:     make([]graph.VertexID, n),
		matched: make([]bool, n),
		used:    make([]bool, data.NumVertices()),
	}
	s.search(0)
}

type state struct {
	data, query *graph.Graph
	opts        Options
	fn          func([]graph.VertexID) bool
	emb         []graph.VertexID
	matched     []bool
	used        []bool
	found       int64
}

func (s *state) search(u int) bool {
	if u == s.query.NumVertices() {
		return s.emit()
	}
	qu := graph.VertexID(u)
	quDeg := s.query.Degree(qu)
	for v := 0; v < s.data.NumVertices(); v++ {
		dv := graph.VertexID(v)
		if s.used[dv] {
			continue
		}
		if !s.labelOK(qu, dv) || s.data.Degree(dv) < quDeg {
			continue
		}
		if !s.edgesOK(qu, dv) {
			continue
		}
		if s.opts.Constraints != nil && !s.opts.Constraints.Allows(qu, dv, s.emb, s.matched) {
			continue
		}
		s.emb[qu] = dv
		s.matched[qu] = true
		s.used[dv] = true
		ok := s.search(u + 1)
		s.matched[qu] = false
		s.used[dv] = false
		if !ok {
			return false
		}
	}
	return true
}

// labelOK checks L_q(u) ⊆ L(v), the paper's label-containment semantics.
func (s *state) labelOK(u, v graph.VertexID) bool {
	for _, l := range s.query.Labels(u) {
		if !s.data.HasLabel(v, l) {
			return false
		}
	}
	return true
}

// edgesOK verifies every query edge between u and already-matched
// vertices.
func (s *state) edgesOK(u, v graph.VertexID) bool {
	for _, w := range s.query.Neighbors(u) {
		if s.matched[w] && !s.data.HasEdge(s.emb[w], v) {
			return false
		}
	}
	return true
}
