package reference_test

import (
	"testing"

	"ceci/internal/auto"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/reference"
)

func TestTriangleInTriangle(t *testing.T) {
	tri := gen.QG1()
	// A triangle contains 6 raw mappings of itself, 1 after symmetry.
	if got := reference.Count(tri, tri, reference.Options{}); got != 6 {
		t.Fatalf("raw = %d, want 6", got)
	}
	cons := auto.Compute(tri)
	if got := reference.Count(tri, tri, reference.Options{Constraints: cons}); got != 1 {
		t.Fatalf("constrained = %d, want 1", got)
	}
}

func TestLabelContainmentSemantics(t *testing.T) {
	// Data vertex with labels {1, 2} must match query vertices labeled 1
	// or 2 (the paper's L_q(u) ⊆ L(f(u)) condition).
	db := graph.NewBuilder(2)
	db.SetLabel(0, 1)
	db.AddExtraLabel(0, 2)
	db.SetLabel(1, 3)
	db.AddEdge(0, 1)
	data := db.MustBuild()

	qb := graph.NewBuilder(2)
	qb.SetLabel(0, 2) // matches data 0 via the extra label
	qb.SetLabel(1, 3)
	qb.AddEdge(0, 1)
	query := qb.MustBuild()

	if got := reference.Count(data, query, reference.Options{}); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
}

func TestQueryLargerThanData(t *testing.T) {
	small := gen.QG1()
	big := gen.QG5()
	if got := reference.Count(small, big, reference.Options{}); got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
}

func TestLimit(t *testing.T) {
	k8 := complete(8)
	got := reference.FindAll(k8, gen.QG1(), reference.Options{Limit: 10})
	if len(got) != 10 {
		t.Fatalf("limited to %d, want 10", len(got))
	}
}

func TestEarlyStop(t *testing.T) {
	k8 := complete(8)
	calls := 0
	reference.ForEach(k8, gen.QG1(), reference.Options{}, func([]graph.VertexID) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Fatalf("callback ran %d times", calls)
	}
}

func TestFig1(t *testing.T) {
	got := reference.Count(gen.Fig1Data(), gen.Fig1Query(), reference.Options{})
	if got != 2 {
		t.Fatalf("Figure 1 count = %d, want 2", got)
	}
}

func TestDegreeFilterCorrectness(t *testing.T) {
	// A star query (center degree 3) cannot map its center to a degree-2
	// data vertex.
	qb := graph.NewBuilder(4)
	qb.AddEdge(0, 1)
	qb.AddEdge(0, 2)
	qb.AddEdge(0, 3)
	star := qb.MustBuild()

	db := graph.NewBuilder(4)
	db.AddEdge(0, 1)
	db.AddEdge(0, 2)
	path := db.MustBuild()
	if got := reference.Count(path, star, reference.Options{}); got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
}

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	return b.MustBuild()
}
