package shard

import (
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	ceciroot "ceci"
	"ceci/internal/gen"
	"ceci/internal/order"
	"ceci/internal/service"
)

// restartableShard is one shard served on a fixed address that tests
// can kill and bring back — the unit of fault injection.
type restartableShard struct {
	t    *testing.T
	eng  *service.Engine
	addr string
	srv  *http.Server
}

func startRestartable(t *testing.T, p *Partition) *restartableShard {
	t.Helper()
	s := &restartableShard{t: t, eng: shardEngine(p, service.Options{})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.addr = ln.Addr().String()
	s.serve(ln)
	t.Cleanup(s.kill)
	return s
}

func (s *restartableShard) serve(ln net.Listener) {
	s.srv = &http.Server{Handler: s.eng.Handler()}
	srv := s.srv
	go func() { srv.Serve(ln) }()
}

// kill closes the listener and every open connection at once.
func (s *restartableShard) kill() {
	if s.srv != nil {
		s.srv.Close()
		s.srv = nil
	}
}

// restart re-listens on the original address with the same engine.
func (s *restartableShard) restart() {
	s.t.Helper()
	var ln net.Listener
	var err error
	// The old listener's port can linger briefly; retry the bind.
	for i := 0; i < 50; i++ {
		ln, err = net.Listen("tcp", s.addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		s.t.Fatalf("rebind %s: %v", s.addr, err)
	}
	s.serve(ln)
}

// TestShardFailureIsExplicitPartial: killing a shard must surface as an
// explicit partial result naming the dead shard — never a silent
// undercount — and restarting it must re-admit it within the
// health-check interval, restoring exact counts.
func TestShardFailureIsExplicitPartial(t *testing.T) {
	data, query := gen.RandomPair(9)
	_, ecc := order.Anchor(query)
	radius := ecc
	if radius < 1 {
		radius = 1
	}
	m, err := ceciroot.Match(data, query, &ceciroot.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fullCount := int64(len(m.Collect()))

	parts, err := Split(data, PartitionOptions{Shards: 3, Radius: radius})
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*restartableShard, len(parts))
	urls := make([][]string, len(parts))
	for i, p := range parts {
		shards[i] = startRestartable(t, p)
		urls[i] = []string{"http://" + shards[i].addr}
	}

	rt, err := NewRouter(RouterOptions{
		Shards:         urls,
		Radius:         radius,
		HealthInterval: 25 * time.Millisecond,
		HealthTimeout:  time.Second,
		HealthFails:    1,
		MaxLimit:       1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Stop)
	rsrv := httptest.NewServer(rt.Handler())
	t.Cleanup(rsrv.Close)

	waitReady := func(what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !rt.Ready() {
			if time.Now().After(deadline) {
				t.Fatalf("router never became ready %s", what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitReady("at startup")

	wire := service.QueryRequest{Query: wireText(t, query), Limit: 1 << 20}

	// Baseline: whole fleet answers, counts are exact.
	resp, status := postRoute(t, rsrv.URL, wire)
	if status != http.StatusOK || resp.Partial || resp.Count != fullCount {
		t.Fatalf("baseline: status %d partial %v count %d, want 200/false/%d",
			status, resp.Partial, resp.Count, fullCount)
	}
	if resp.ShardsOK != 3 {
		t.Fatalf("baseline shards_ok = %d, want 3", resp.ShardsOK)
	}

	// Kill shard 1 and query before the health checker can exclude it:
	// the dead leg must be reported, not absorbed.
	shards[1].kill()
	resp, status = postRoute(t, rsrv.URL, wire)
	if status != http.StatusOK {
		t.Fatalf("post-kill status %d, want 200 with partial accounting", status)
	}
	if !resp.Partial {
		t.Fatal("killed shard produced a non-partial response: silent undercount")
	}
	if len(resp.ShardsFailed) != 1 || resp.ShardsFailed[0] != 1 {
		t.Fatalf("shards_failed = %v, want [1]", resp.ShardsFailed)
	}
	if resp.ShardsOK != 2 {
		t.Fatalf("shards_ok = %d, want 2", resp.ShardsOK)
	}
	if resp.Count > fullCount {
		t.Fatalf("partial count %d exceeds full count %d", resp.Count, fullCount)
	}
	if len(resp.ShardErrors) == 0 {
		t.Fatal("partial response carries no shard_errors detail")
	}

	// Restart: the health checker must re-admit the shard and exact
	// counts must return.
	shards[1].restart()
	waitReady("after restart")
	resp, status = postRoute(t, rsrv.URL, wire)
	if status != http.StatusOK || resp.Partial || resp.Count != fullCount {
		t.Fatalf("post-restart: status %d partial %v count %d, want 200/false/%d",
			status, resp.Partial, resp.Count, fullCount)
	}
}

// TestAllShardsDownIs502: with every shard dead the router answers 502
// — an error, not an empty success.
func TestAllShardsDownIs502(t *testing.T) {
	data, query := gen.RandomPair(3)
	_, ecc := order.Anchor(query)
	radius := ecc
	if radius < 1 {
		radius = 1
	}
	parts, err := Split(data, PartitionOptions{Shards: 2, Radius: radius})
	if err != nil {
		t.Fatal(err)
	}
	urls := make([][]string, len(parts))
	for i, p := range parts {
		s := startRestartable(t, p)
		urls[i] = []string{"http://" + s.addr}
		s.kill()
	}
	rt, err := NewRouter(RouterOptions{Shards: urls, Radius: radius})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)
	rsrv := httptest.NewServer(rt.Handler())
	t.Cleanup(rsrv.Close)

	resp, status := postRoute(t, rsrv.URL, service.QueryRequest{Query: wireText(t, query), CountOnly: true})
	if status != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", status)
	}
	if !resp.Partial || resp.Error == "" {
		t.Fatalf("502 body should be explicit: partial %v error %q", resp.Partial, resp.Error)
	}
}
