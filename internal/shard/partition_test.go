package shard

import (
	"testing"

	"ceci/internal/gen"
	"ceci/internal/graph"
)

// testGraph is a labeled random graph shared by the partition tests.
func testGraph() *graph.Graph {
	return gen.WithRandomLabels(gen.ErdosRenyi(120, 500, 5), 3, 7)
}

// TestSplitOwnershipPartition: across all shards, the owned sets must
// partition the vertex set — every global vertex owned exactly once.
func TestSplitOwnershipPartition(t *testing.T) {
	data := testGraph()
	for _, shards := range []int{1, 2, 3, 5} {
		parts, err := Split(data, PartitionOptions{Shards: shards, Radius: 2})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(parts) != shards {
			t.Fatalf("shards=%d: got %d parts", shards, len(parts))
		}
		owner := make(map[graph.VertexID]int)
		for _, p := range parts {
			if p.Owned() == 0 {
				t.Fatalf("shards=%d: shard %d owns nothing", shards, p.ID)
			}
			for _, lv := range p.OwnedLocals {
				gv := p.Globals[lv]
				if prev, dup := owner[gv]; dup {
					t.Fatalf("shards=%d: vertex %d owned by shards %d and %d", shards, gv, prev, p.ID)
				}
				owner[gv] = p.ID
			}
		}
		if len(owner) != data.NumVertices() {
			t.Fatalf("shards=%d: %d vertices owned, want %d", shards, len(owner), data.NumVertices())
		}
	}
}

// TestSplitHaloAndLocalIDInvariants: globals ascend strictly (the
// symmetry-breaking invariant), the halo is exactly the vertices within
// Radius of the owned set, and the induced subgraph preserves labels
// and every internal edge.
func TestSplitHaloAndLocalIDInvariants(t *testing.T) {
	data := testGraph()
	const radius = 2
	parts, err := Split(data, PartitionOptions{Shards: 3, Radius: radius})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		// Strictly ascending globals.
		for i := 1; i < len(p.Globals); i++ {
			if p.Globals[i-1] >= p.Globals[i] {
				t.Fatalf("shard %d: globals not strictly ascending at %d", p.ID, i)
			}
		}
		// Halo = BFS ball of depth radius around the owned set.
		want := haloBall(data, p, radius)
		if len(want) != len(p.Globals) {
			t.Fatalf("shard %d: subgraph has %d vertices, BFS ball has %d", p.ID, len(p.Globals), len(want))
		}
		for _, gv := range p.Globals {
			if !want[gv] {
				t.Fatalf("shard %d: vertex %d in subgraph but outside the radius-%d ball", p.ID, gv, radius)
			}
		}
		// Labels survive and internal edges are preserved exactly.
		inShard := make(map[graph.VertexID]graph.VertexID, len(p.Globals)) // global -> local
		for lv, gv := range p.Globals {
			inShard[gv] = graph.VertexID(lv)
		}
		for lv, gv := range p.Globals {
			gl := data.Labels(gv)
			sl := p.Graph.Labels(graph.VertexID(lv))
			if len(gl) != len(sl) {
				t.Fatalf("shard %d: vertex %d label count %d, want %d", p.ID, gv, len(sl), len(gl))
			}
			for i := range gl {
				if gl[i] != sl[i] {
					t.Fatalf("shard %d: vertex %d labels diverge", p.ID, gv)
				}
			}
			wantDeg := 0
			for _, w := range data.Neighbors(gv) {
				if lw, ok := inShard[w]; ok {
					wantDeg++
					if !hasNeighbor(p.Graph, graph.VertexID(lv), lw) {
						t.Fatalf("shard %d: edge %d-%d missing in subgraph", p.ID, gv, w)
					}
				}
			}
			if got := len(p.Graph.Neighbors(graph.VertexID(lv))); got != wantDeg {
				t.Fatalf("shard %d: vertex %d has %d shard edges, want %d", p.ID, gv, got, wantDeg)
			}
		}
	}
}

// haloBall marks every vertex within radius of p's owned set.
func haloBall(data *graph.Graph, p *Partition, radius int) map[graph.VertexID]bool {
	dist := make(map[graph.VertexID]int)
	var queue []graph.VertexID
	for _, lv := range p.OwnedLocals {
		gv := p.Globals[lv]
		dist[gv] = 0
		queue = append(queue, gv)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] == radius {
			continue
		}
		for _, w := range data.Neighbors(v) {
			if _, seen := dist[w]; !seen {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	ball := make(map[graph.VertexID]bool, len(dist))
	for v := range dist {
		ball[v] = true
	}
	return ball
}

func hasNeighbor(g *graph.Graph, v, w graph.VertexID) bool {
	for _, u := range g.Neighbors(v) {
		if u == w {
			return true
		}
	}
	return false
}

// TestSplitValidation: degenerate shapes are rejected up front.
func TestSplitValidation(t *testing.T) {
	data := testGraph()
	if _, err := Split(data, PartitionOptions{Shards: 0}); err == nil {
		t.Error("0 shards should error")
	}
	if _, err := Split(data, PartitionOptions{Shards: data.NumVertices() + 1}); err == nil {
		t.Error("more shards than vertices should error")
	}
}

// TestManifestRoundTrip: Save then LoadPart must reproduce every
// partition byte-for-byte — graph shape, globals, owned flags.
func TestManifestRoundTrip(t *testing.T) {
	data := testGraph()
	parts, err := Split(data, PartitionOptions{Shards: 3, Radius: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	m, err := Save(dir, data, parts, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards != 3 || m.Radius != 2 || m.Source.Vertices != data.NumVertices() {
		t.Fatalf("manifest header %+v", m)
	}
	if _, err := LoadManifest(dir); err != nil {
		t.Fatal(err)
	}
	for _, want := range parts {
		got, err := LoadPart(dir, want.ID)
		if err != nil {
			t.Fatalf("shard %d: %v", want.ID, err)
		}
		if got.Shards != want.Shards || got.Radius != want.Radius {
			t.Fatalf("shard %d: header (%d,%d), want (%d,%d)", want.ID, got.Shards, got.Radius, want.Shards, want.Radius)
		}
		if got.Graph.NumVertices() != want.Graph.NumVertices() || got.Graph.NumEdges() != want.Graph.NumEdges() {
			t.Fatalf("shard %d: graph shape differs after round trip", want.ID)
		}
		if len(got.Globals) != len(want.Globals) || len(got.OwnedLocals) != len(want.OwnedLocals) {
			t.Fatalf("shard %d: map sizes differ", want.ID)
		}
		for i := range want.Globals {
			if got.Globals[i] != want.Globals[i] {
				t.Fatalf("shard %d: globals[%d] = %d, want %d", want.ID, i, got.Globals[i], want.Globals[i])
			}
		}
		for i := range want.OwnedLocals {
			if got.OwnedLocals[i] != want.OwnedLocals[i] {
				t.Fatalf("shard %d: ownedLocals[%d] differs", want.ID, i)
			}
		}
	}
	// Out-of-range part ids are rejected.
	if _, err := LoadPart(dir, 3); err == nil {
		t.Error("part 3 of a 3-shard manifest should error")
	}
}
