package shard

import (
	"fmt"
	"sort"
	"sync"
)

// RoutingPolicy orders one shard's replicas by preference for a single
// scatter leg. The router always queries every shard (each owns
// distinct pivots); the policy only chooses among a shard's replicas.
//
// parallel=true queries every returned replica simultaneously and the
// first usable response wins (the broadcast correctness baseline);
// parallel=false queries ordered[0] and hedges down the list when the
// straggler timer fires.
type RoutingPolicy interface {
	Name() string
	Pick(shard int, replicas []*Replica) (ordered []*Replica, parallel bool)
}

// ParsePolicy maps a policy name (the -policy flag) to an
// implementation: "broadcast", "round-robin", or "least-loaded".
func ParsePolicy(name string) (RoutingPolicy, error) {
	switch name {
	case "broadcast":
		return Broadcast{}, nil
	case "round-robin", "":
		return NewRoundRobin(), nil
	case "least-loaded":
		return LeastLoaded{}, nil
	}
	return nil, fmt.Errorf("shard: unknown routing policy %q (want broadcast, round-robin, or least-loaded)", name)
}

// Broadcast fans each scatter leg out to every replica of the shard and
// takes the first usable response — maximum cost, minimum tail latency,
// and the correctness baseline the differential tests pin the other
// policies against.
type Broadcast struct{}

func (Broadcast) Name() string { return "broadcast" }

func (Broadcast) Pick(_ int, replicas []*Replica) ([]*Replica, bool) {
	return replicas, true
}

// RoundRobin rotates the primary replica per shard across requests;
// later replicas in rotation order serve as hedge targets.
type RoundRobin struct {
	mu   sync.Mutex
	next map[int]int
}

// NewRoundRobin returns a RoundRobin with per-shard rotation state.
func NewRoundRobin() *RoundRobin { return &RoundRobin{next: make(map[int]int)} }

func (*RoundRobin) Name() string { return "round-robin" }

func (p *RoundRobin) Pick(shard int, replicas []*Replica) ([]*Replica, bool) {
	if len(replicas) <= 1 {
		return replicas, false
	}
	p.mu.Lock()
	start := p.next[shard] % len(replicas)
	p.next[shard]++
	p.mu.Unlock()
	ordered := make([]*Replica, 0, len(replicas))
	for i := 0; i < len(replicas); i++ {
		ordered = append(ordered, replicas[(start+i)%len(replicas)])
	}
	return ordered, false
}

// LeastLoaded prefers the replica with the fewest in-flight router
// requests (ties broken by listing order, so it degrades to the
// configured order under no load).
type LeastLoaded struct{}

func (LeastLoaded) Name() string { return "least-loaded" }

func (LeastLoaded) Pick(_ int, replicas []*Replica) ([]*Replica, bool) {
	if len(replicas) <= 1 {
		return replicas, false
	}
	ordered := make([]*Replica, len(replicas))
	copy(ordered, replicas)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].Inflight() < ordered[j].Inflight()
	})
	return ordered, false
}
