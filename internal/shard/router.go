package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ceci/internal/buildinfo"
	"ceci/internal/graph"
	"ceci/internal/obs"
	"ceci/internal/order"
	"ceci/internal/service"
	"ceci/internal/telemetry"
)

// Replica is one shard server the router can send a leg to. Health
// state is maintained by the background checker; inflight counts the
// router's own outstanding requests (the least-loaded policy's signal).
type Replica struct {
	Shard int
	URL   string

	client  *service.Client // query path: retries + backoff
	healthc *service.Client // probe path: single attempt

	healthy  atomic.Bool
	checked  atomic.Bool // at least one probe ever succeeded
	fails    atomic.Int64
	inflight atomic.Int64
	lastErr  atomic.Value // string
}

// Healthy reports whether the replica passed its latest probes.
func (r *Replica) Healthy() bool { return r.healthy.Load() }

// Checked reports whether the replica has ever passed a probe.
func (r *Replica) Checked() bool { return r.checked.Load() }

// Inflight returns the router's outstanding requests to this replica.
func (r *Replica) Inflight() int64 { return r.inflight.Load() }

// RouterOptions configures a Router. Zero values get serving defaults.
type RouterOptions struct {
	// Shards[i] lists the replica base URLs serving shard i. Every
	// shard needs at least one replica.
	Shards [][]string
	// Radius is the fleet's halo radius (from the manifest): queries
	// whose anchor eccentricity exceeds it are rejected at the router
	// with 400 instead of scattering a doomed request.
	Radius int
	// Policy picks replicas within a shard (default round-robin).
	Policy RoutingPolicy
	// HealthInterval is the probe period (default 1s).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (default 2s).
	HealthTimeout time.Duration
	// HealthFails is how many consecutive probe failures exclude a
	// replica (default 2). One success re-admits it.
	HealthFails int
	// Hedge launches a second replica when the first has not answered
	// within this delay (0 disables; ignored by broadcast, which
	// already queries everyone).
	Hedge time.Duration
	// DefaultTimeout applies when a request carries none (default 30s);
	// MaxTimeout clamps request-supplied timeouts (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DeadlineMargin is held back from the per-shard deadline so the
	// router can merge and respond inside the caller's budget
	// (default 50ms).
	DeadlineMargin time.Duration
	// MaxLimit caps merged embeddings per request (default 10000).
	MaxLimit int64
	// Tracer + TraceSample mirror service.Options: sampled requests get
	// a routing span tree with one scatter child per shard, stitched
	// with the shards' own span trees at gather time.
	Tracer      *obs.Tracer
	TraceSample float64
	// FlightSize/SlowestK size the router's flight recorder (/queryz).
	FlightSize int
	SlowestK   int
	// Registry, when non-nil, receives router gauges and the latency
	// histogram, and serves the metric routes under the handler.
	Registry *obs.Registry
	// Telemetry, when non-nil, observes routed queries (SLO burn) and
	// serves /statz and /dashz.
	Telemetry *telemetry.Hub
	// HTTPClient overrides the transport (tests); nil = defaults.
	HTTPClient *http.Client
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.Policy == nil {
		o.Policy = NewRoundRobin()
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = time.Second
	}
	if o.HealthTimeout <= 0 {
		o.HealthTimeout = 2 * time.Second
	}
	if o.HealthFails <= 0 {
		o.HealthFails = 2
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 5 * time.Minute
	}
	if o.DeadlineMargin <= 0 {
		o.DeadlineMargin = 50 * time.Millisecond
	}
	if o.MaxLimit <= 0 {
		o.MaxLimit = 10000
	}
	if o.TraceSample == 0 {
		o.TraceSample = 1
	}
	return o
}

// RouteResponse is the router's wire form: the merged QueryResponse
// plus explicit per-shard accounting. A killed shard surfaces as
// Partial=true with its id in ShardsFailed — never a silent undercount.
type RouteResponse struct {
	service.QueryResponse
	ShardsTotal  int               `json:"shards_total"`
	ShardsOK     int               `json:"shards_ok"`
	ShardsFailed []int             `json:"shards_failed,omitempty"`
	ShardErrors  map[string]string `json:"shard_errors,omitempty"`
	// Hedged counts scatter legs answered by a hedge or failover
	// replica rather than the primary.
	Hedged int `json:"hedged,omitempty"`
}

// RouterHealth is the router's GET /healthz document.
type RouterHealth struct {
	Status string         `json:"status"`
	Ready  bool           `json:"ready"`
	Shards int            `json:"shards"`
	Radius int            `json:"radius"`
	Policy string         `json:"policy"`
	Build  buildinfo.Info `json:"build"`
}

// ShardzReplica is one replica's status in GET /shardz.
type ShardzReplica struct {
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Checked  bool   `json:"checked"`
	Inflight int64  `json:"inflight"`
	Fails    int64  `json:"consecutive_fails"`
	LastErr  string `json:"last_error,omitempty"`
}

// ShardzResponse is the GET /shardz document.
type ShardzResponse struct {
	Policy string            `json:"policy"`
	Radius int               `json:"radius"`
	Shards [][]ShardzReplica `json:"shards"`
}

// Router scatter-gathers queries across a shard fleet. It is stateless
// with respect to the data: shards hold the partitions; the router
// holds only replica health and observability state.
type Router struct {
	opts   RouterOptions
	shards [][]*Replica
	flight *obs.FlightRecorder

	stopOnce sync.Once
	stop     chan struct{}
	done     sync.WaitGroup

	requests atomic.Int64
	failures atomic.Int64 // responses with zero usable shards
	partials atomic.Int64 // responses missing at least one shard
	hedges   atomic.Int64 // hedge/failover legs launched

	latency *obs.Histogram
}

// NewRouter builds a Router over the given fleet. Call Start to begin
// health checking (until then every replica is unchecked and scatter
// falls back to trying all of them).
func NewRouter(opts RouterOptions) (*Router, error) {
	o := opts.withDefaults()
	if len(o.Shards) == 0 {
		return nil, errors.New("shard: router needs at least one shard")
	}
	rt := &Router{
		opts:    o,
		stop:    make(chan struct{}),
		flight:  obs.NewFlightRecorder(o.FlightSize, o.SlowestK),
		latency: obs.NewHistogram(obs.LatencyBuckets()),
	}
	for i, urls := range o.Shards {
		if len(urls) == 0 {
			return nil, fmt.Errorf("shard: shard %d has no replicas", i)
		}
		var reps []*Replica
		for _, u := range urls {
			rep := &Replica{
				Shard:   i,
				URL:     u,
				client:  service.NewClient(u, o.HTTPClient),
				healthc: service.NewClient(u, o.HTTPClient),
			}
			rep.healthc.SetRetry(1, 0, 0) // probes are their own retry loop
			rep.lastErr.Store("")
			reps = append(reps, rep)
		}
		rt.shards = append(rt.shards, reps)
	}
	if reg := o.Registry; reg != nil {
		reg.SetHistogram("router_latency_seconds", rt.latency)
		reg.SetSource("router", func() map[string]int64 {
			healthy := int64(0)
			for _, reps := range rt.shards {
				for _, rep := range reps {
					if rep.Healthy() {
						healthy++
					}
				}
			}
			return map[string]int64{
				"requests":         rt.requests.Load(),
				"failures":         rt.failures.Load(),
				"partials":         rt.partials.Load(),
				"hedges":           rt.hedges.Load(),
				"healthy_replicas": healthy,
			}
		})
		if o.Tracer != nil {
			reg.SetTracer(o.Tracer)
		}
		o.Telemetry.BindRegistry(reg)
	}
	return rt, nil
}

// Flight returns the router's flight recorder (/queryz backing store).
func (rt *Router) Flight() *obs.FlightRecorder { return rt.flight }

// Start launches the health-check loop: an immediate probe of every
// replica, then one round per HealthInterval.
func (rt *Router) Start() {
	rt.done.Add(1)
	go func() {
		defer rt.done.Done()
		rt.probeAll()
		t := time.NewTicker(rt.opts.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				rt.probeAll()
			case <-rt.stop:
				return
			}
		}
	}()
}

// Stop ends the health-check loop.
func (rt *Router) Stop() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.done.Wait()
}

// Ready reports whether every shard has at least one probed-healthy
// replica — the router's own readiness condition.
func (rt *Router) Ready() bool {
	for _, reps := range rt.shards {
		ok := false
		for _, rep := range reps {
			if rep.Checked() && rep.Healthy() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// probeAll health-checks every replica concurrently.
func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, reps := range rt.shards {
		for _, rep := range reps {
			wg.Add(1)
			go func(rep *Replica) {
				defer wg.Done()
				rt.probe(rep)
			}(rep)
		}
	}
	wg.Wait()
}

// probe runs one readiness check: /healthz?ready=1 within
// HealthTimeout. HealthFails consecutive failures exclude the replica;
// a single success re-admits it.
func (rt *Router) probe(rep *Replica) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.opts.HealthTimeout)
	defer cancel()
	if err := rep.healthc.Ready(ctx); err != nil {
		rep.lastErr.Store(err.Error())
		if rep.fails.Add(1) >= int64(rt.opts.HealthFails) {
			rep.healthy.Store(false)
		}
		return
	}
	rep.lastErr.Store("")
	rep.fails.Store(0)
	rep.healthy.Store(true)
	rep.checked.Store(true)
}

// Handler returns the router's HTTP API:
//
//	POST /query             scatter-gather a match request across shards
//	GET  /healthz           liveness (+ ?ready=1: 503 until every shard
//	                        has a probed-healthy replica)
//	GET  /shardz            per-replica health, load, and last error
//	GET  /queryz            router flight recorder (?format=text)
//	GET  /tracez/{traceID}  stitched span tree spanning router + shards
//	GET  /statz, /dashz     telemetry hub (requires Options.Telemetry)
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", rt.handleQuery)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /shardz", rt.handleShardz)
	mux.HandleFunc("GET /queryz", rt.handleQueryz)
	mux.HandleFunc("GET /tracez/{traceID}", rt.handleTracez)
	if rt.opts.Telemetry != nil {
		mux.HandleFunc("GET /statz", rt.handleStatz)
		mux.HandleFunc("GET /dashz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			fmt.Fprint(w, telemetry.DashzHTML)
		})
	}
	if reg := rt.opts.Registry; reg != nil {
		mux.Handle("/", reg.Handler())
	}
	return mux
}

// shardResult is one scatter leg's outcome.
type shardResult struct {
	shard   int
	resp    *service.QueryResponse
	replica *Replica
	err     error
	hedged  bool
}

// usable reports whether the leg produced a mergeable response: success
// or a 504 that carried its partial counts.
func (r shardResult) usable() bool {
	if r.err == nil {
		return r.resp != nil
	}
	var apiErr *service.APIError
	return errors.As(r.err, &apiErr) &&
		apiErr.StatusCode == http.StatusGatewayTimeout && r.resp != nil
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	start := time.Now()
	defer func() { rt.latency.ObserveDuration(time.Since(start)) }()

	var wire service.QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
		writeJSON(w, http.StatusBadRequest, RouteResponse{QueryResponse: service.QueryResponse{Error: "bad JSON: " + err.Error()}})
		return
	}
	q, err := wire.Graph()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, RouteResponse{QueryResponse: service.QueryResponse{Error: err.Error()}})
		return
	}
	if !q.Connected() {
		writeJSON(w, http.StatusBadRequest, RouteResponse{QueryResponse: service.QueryResponse{Error: "query graph must be connected"}})
		return
	}
	if _, ecc := order.Anchor(q); ecc > rt.opts.Radius {
		writeJSON(w, http.StatusBadRequest, RouteResponse{QueryResponse: service.QueryResponse{
			Error: fmt.Sprintf("query anchor eccentricity %d exceeds fleet halo radius %d; repartition with a larger -radius", ecc, rt.opts.Radius),
		}})
		return
	}
	if wire.Offset < 0 || wire.Limit < 0 {
		writeJSON(w, http.StatusBadRequest, RouteResponse{QueryResponse: service.QueryResponse{Error: "negative limit/offset"}})
		return
	}

	// Deadline: request timeout, clamped; router default otherwise.
	timeout := time.Duration(wire.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = rt.opts.DefaultTimeout
	}
	if timeout > rt.opts.MaxTimeout {
		timeout = rt.opts.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Trace identity: join the caller's trace or mint one; the routing
	// span becomes the parent of every scatter leg's shard subtree.
	if tp := r.Header.Get("traceparent"); tp != "" {
		if tc, perr := obs.ParseTraceparent(tp); perr == nil {
			ctx = obs.ContextWithTrace(ctx, tc)
		}
	}
	tc, hasTC := obs.TraceFromContext(ctx)
	if !hasTC || tc.TraceID.IsZero() {
		tc = obs.NewTraceContext()
		tc.Sampled = tc.SampleHead(rt.opts.TraceSample)
	}
	sampled := tc.Sampled && rt.opts.Tracer != nil
	var span *obs.Span
	if sampled {
		span = rt.opts.Tracer.StartRemote(tc, "route-query",
			obs.Int("query_vertices", int64(q.NumVertices())),
			obs.Int("shards", int64(len(rt.shards))))
		ctx = obs.ContextWithSpan(ctx, span)
	} else {
		ctx = obs.DetachTrace(ctx)
	}

	// Per-shard sub-request: each shard must deliver enough embeddings
	// to fill the global page worst-case (offset is applied after the
	// merge — shard enumeration order gives no global offset), under a
	// deadline that leaves the router margin to merge and respond.
	sub := wire
	sub.Offset = 0
	if !wire.CountOnly {
		limit := wire.Limit
		if limit <= 0 || limit > rt.opts.MaxLimit {
			limit = rt.opts.MaxLimit
		}
		sub.Limit = wire.Offset + limit
	}
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl) - rt.opts.DeadlineMargin
		if remaining < time.Millisecond {
			remaining = time.Millisecond
		}
		sub.TimeoutMS = remaining.Milliseconds()
		if sub.TimeoutMS < 1 {
			sub.TimeoutMS = 1
		}
	}

	// Scatter to every shard; each leg applies the routing policy and
	// hedging over that shard's replicas.
	results := make([]shardResult, len(rt.shards))
	var wg sync.WaitGroup
	for i := range rt.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = rt.queryShard(ctx, i, sub, span)
		}(i)
	}
	wg.Wait()

	resp, status := rt.merge(wire, results)
	resp.TraceID = tc.TraceID.String()

	if span != nil {
		// Egress traceparent names the routing span, so an upstream
		// caller can stitch the whole fleet subtree into its own trace.
		tcOut := span.Context()
		tcOut.Sampled = true
		w.Header().Set("traceparent", tcOut.Traceparent())
	}
	rt.finish(tc, span, q, resp, status, start, results)
	writeJSON(w, status, resp)
}

// queryShard runs one scatter leg: pick replicas by policy, launch
// (all at once for broadcast; primary + hedge/failover otherwise), and
// return the first usable response. A 400 is terminal — it is the
// query's fault, not the replica's.
func (rt *Router) queryShard(ctx context.Context, shard int, req service.QueryRequest, parent *obs.Span) shardResult {
	sp := parent.Child("scatter", obs.Int("shard", int64(shard)))
	defer sp.End()
	if sp != nil {
		ctx = obs.ContextWithSpan(ctx, sp)
	}

	reps := rt.pickReplicas(shard)
	if len(reps) == 0 {
		return shardResult{shard: shard, err: fmt.Errorf("shard %d: no replicas configured", shard)}
	}
	ordered, parallel := rt.opts.Policy.Pick(shard, reps)

	cctx, cancel := context.WithCancel(ctx)
	defer cancel() // first usable response wins; losers are cancelled

	resc := make(chan shardResult, len(ordered))
	launch := func(rep *Replica, hedged bool) {
		if hedged {
			rt.hedges.Add(1)
		}
		go func() {
			rep.inflight.Add(1)
			defer rep.inflight.Add(-1)
			resp, err := rep.client.Query(cctx, req)
			resc <- shardResult{shard: shard, resp: resp, replica: rep, err: err, hedged: hedged}
		}()
	}

	next := 0
	if parallel {
		for ; next < len(ordered); next++ {
			launch(ordered[next], next > 0)
		}
	} else {
		launch(ordered[next], false)
		next++
	}

	var hedgeC <-chan time.Time
	if !parallel && rt.opts.Hedge > 0 && next < len(ordered) {
		t := time.NewTimer(rt.opts.Hedge)
		defer t.Stop()
		hedgeC = t.C
	}

	outstanding := next
	var last shardResult
	for outstanding > 0 {
		select {
		case res := <-resc:
			outstanding--
			if res.usable() {
				sp.Annotate(obs.String("replica", res.replica.URL))
				return res
			}
			if errors.Is(res.err, service.ErrBadQuery) {
				return res // every replica would refuse it the same way
			}
			last = res
			// Failover: the leg failed outright, try the next replica
			// immediately rather than waiting for the hedge timer.
			if next < len(ordered) {
				launch(ordered[next], true)
				next++
				outstanding++
			}
		case <-hedgeC:
			hedgeC = nil
			if next < len(ordered) {
				launch(ordered[next], true)
				next++
				outstanding++
			}
		case <-ctx.Done():
			if last.replica == nil {
				return shardResult{shard: shard, err: context.Cause(ctx)}
			}
			return last
		}
	}
	return last
}

// pickReplicas returns the shard's healthy replicas, falling back to
// all of them when none are (a probe may lag a just-restarted shard;
// trying is strictly better than refusing).
func (rt *Router) pickReplicas(shard int) []*Replica {
	all := rt.shards[shard]
	healthy := make([]*Replica, 0, len(all))
	for _, rep := range all {
		if rep.Healthy() {
			healthy = append(healthy, rep)
		}
	}
	if len(healthy) == 0 {
		return all
	}
	return healthy
}

// merge folds the scatter legs into one RouteResponse. Counts add,
// embeddings concatenate (shards emit global ids), phase times take the
// fleet max (the critical path), cache_hit ANDs. Missing shards make
// the response Partial with explicit ids in shards_failed.
func (rt *Router) merge(wire service.QueryRequest, results []shardResult) (*RouteResponse, int) {
	out := &RouteResponse{ShardsTotal: len(results)}
	out.CacheHit = true
	var shardErrs map[string]string
	for i, res := range results {
		if !res.usable() {
			msg := "unreachable"
			if res.err != nil {
				msg = res.err.Error()
			}
			if shardErrs == nil {
				shardErrs = make(map[string]string)
			}
			shardErrs[strconv.Itoa(i)] = msg
			out.ShardsFailed = append(out.ShardsFailed, i)
			continue
		}
		out.ShardsOK++
		if res.hedged {
			out.Hedged++
		}
		r := res.resp
		out.Count += r.Count
		out.Embeddings = append(out.Embeddings, r.Embeddings...)
		out.Partial = out.Partial || r.Partial
		out.CacheHit = out.CacheHit && r.CacheHit
		if r.BuildMS > out.BuildMS {
			out.BuildMS = r.BuildMS
		}
		if r.EnumMS > out.EnumMS {
			out.EnumMS = r.EnumMS
		}
		if out.QueryHash == "" {
			out.QueryHash = r.QueryHash
		}
	}
	out.ShardErrors = shardErrs

	if out.ShardsOK == 0 {
		rt.failures.Add(1)
		out.CacheHit = false
		out.Partial = true
		out.Embeddings = nil
		out.Error = "all shards failed"
		return out, http.StatusBadGateway
	}
	if len(out.ShardsFailed) > 0 {
		rt.partials.Add(1)
		out.Partial = true
	}

	// Global pagination, best-effort: apply the caller's offset/limit to
	// the concatenated embeddings (shards were asked for offset+limit
	// each, so the page is full whenever the data allows).
	if !wire.CountOnly {
		if wire.Offset > 0 {
			if wire.Offset >= int64(len(out.Embeddings)) {
				out.Embeddings = nil
			} else {
				out.Embeddings = out.Embeddings[wire.Offset:]
			}
		}
		limit := wire.Limit
		if limit <= 0 || limit > rt.opts.MaxLimit {
			limit = rt.opts.MaxLimit
		}
		if int64(len(out.Embeddings)) > limit {
			out.Embeddings = out.Embeddings[:limit]
		}
	}
	return out, http.StatusOK
}

// finish records the routed query: close the routing span, pull the
// shards' span trees over /tracez and stitch them under the scatter
// children, then hand the record to the flight recorder and telemetry.
func (rt *Router) finish(tc obs.TraceContext, span *obs.Span, q *graph.Graph,
	resp *RouteResponse, status int, start time.Time, results []shardResult) {

	rec := obs.QueryRecord{
		TraceID:       tc.TraceID.String(),
		Time:          start,
		QueryVertices: q.NumVertices(),
		Outcome:       status,
		TotalUS:       time.Since(start).Microseconds(),
		Sampled:       span != nil,
		QueryHash:     resp.QueryHash,
		CacheHit:      resp.CacheHit,
		Partial:       resp.Partial,
		Embeddings:    resp.Count,
		BuildUS:       int64(resp.BuildMS * 1000),
		EnumUS:        int64(resp.EnumMS * 1000),
	}
	if span != nil {
		span.Annotate(obs.Int("outcome", int64(status)),
			obs.Int("shards_ok", int64(resp.ShardsOK)))
		span.End()
		nodes := rt.opts.Tracer.Take(tc.TraceID)
		nodes = append(nodes, rt.fetchShardSpans(results)...)
		rec.Spans = obs.Stitch(nodes)
	}
	rt.flight.Record(rec)
	if h := rt.opts.Telemetry; h != nil {
		slim := rec
		slim.Spans = nil
		h.ObserveQuery(slim)
	}
}

// fetchShardSpans pulls each answering shard's span log (the flat
// JSONL form) so the gathered trees re-root under this trace's scatter
// spans. The shard's flight record exists by the time its HTTP response
// was written, so a prompt fetch is safe; a shard that cannot answer
// simply contributes no subtree.
func (rt *Router) fetchShardSpans(results []shardResult) []*obs.SpanNode {
	var nodes []*obs.SpanNode
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, res := range results {
		if !res.usable() || res.replica == nil || res.resp.TraceID == "" {
			continue
		}
		wg.Add(1)
		go func(res shardResult) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), rt.opts.HealthTimeout)
			defer cancel()
			b, err := res.replica.client.TracezJSONL(ctx, res.resp.TraceID)
			if err != nil {
				return
			}
			sub, err := obs.ReadSpanJSONL(bytes.NewReader(b))
			if err != nil {
				return
			}
			mu.Lock()
			nodes = append(nodes, sub...)
			mu.Unlock()
		}(res)
	}
	wg.Wait()
	return nodes
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ready := rt.Ready()
	status := http.StatusOK
	if r.URL.Query().Get("ready") == "1" && !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, RouterHealth{
		Status: "ok",
		Ready:  ready,
		Shards: len(rt.shards),
		Radius: rt.opts.Radius,
		Policy: rt.opts.Policy.Name(),
		Build:  buildinfo.Get(),
	})
}

func (rt *Router) handleShardz(w http.ResponseWriter, _ *http.Request) {
	out := ShardzResponse{Policy: rt.opts.Policy.Name(), Radius: rt.opts.Radius}
	for _, reps := range rt.shards {
		var row []ShardzReplica
		for _, rep := range reps {
			lastErr, _ := rep.lastErr.Load().(string)
			row = append(row, ShardzReplica{
				URL:      rep.URL,
				Healthy:  rep.Healthy(),
				Checked:  rep.Checked(),
				Inflight: rep.Inflight(),
				Fails:    rep.fails.Load(),
				LastErr:  lastErr,
			})
		}
		out.Shards = append(out.Shards, row)
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleQueryz(w http.ResponseWriter, r *http.Request) {
	recent := rt.flight.Recent()
	slowest := rt.flight.Slowest()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, obs.RecordsText(recent, slowest))
		return
	}
	writeJSON(w, http.StatusOK, service.QueryzResponse{
		Total:   rt.flight.Total(),
		Recent:  recent,
		Slowest: slowest,
	})
}

func (rt *Router) handleTracez(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("traceID")
	rec, ok := rt.flight.Find(id)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			map[string]string{"error": "trace " + id + " not found (evicted, or never routed here)"})
		return
	}
	if len(rec.Spans) == 0 {
		writeJSON(w, http.StatusNotFound,
			map[string]string{"error": "trace " + id + " was not sampled: no spans recorded"})
		return
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/jsonl")
		obs.WriteSpanJSONL(w, rec.Spans)
		return
	}
	doc, err := obs.ChromeTrace(rec.Spans)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(doc)
}

func (rt *Router) handleStatz(w http.ResponseWriter, r *http.Request) {
	h := rt.opts.Telemetry
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, h.StatzText())
		return
	}
	b, err := h.StatzJSON()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
