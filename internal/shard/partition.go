// Package shard implements the sharded serving fleet: a partitioner
// that cuts the data graph into pivot-owned shards (the paper's §5
// workload estimate + Jaccard co-location, via internal/workload), and
// a stateless scatter-gather router that fronts N shard-mode ceciserve
// processes.
//
// The correctness contract that makes sharded counts exactly equal
// single-node counts, even with symmetry breaking on:
//
//  1. Every data vertex is owned by exactly one shard; each shard's
//     resident subgraph is the induced subgraph over its owned
//     vertices plus a halo of every vertex within distance Radius.
//  2. Shards force each query's index root to the query's canonical
//     anchor (minimum-eccentricity vertex of the canonical form) and
//     enumerate only clusters pivoted on owned vertices. An embedding
//     mapping the anchor to v lies entirely within distance
//     ecc(anchor) <= Radius of v, so the owner of v sees the whole
//     embedding; queries with ecc > Radius are rejected up front.
//  3. Shard-local vertex ids ascend in global-id order, so the
//     automorphism-breaking "M(class[i-1]) < M(class[i])" comparisons
//     agree with global ids — every shard picks the same orbit
//     representative as a single node would, and each representative
//     is emitted by exactly one shard: the owner of its anchor image.
package shard

import (
	"fmt"

	"ceci/internal/graph"
	"ceci/internal/workload"
)

// Partition is one shard's slice of the data graph.
type Partition struct {
	// ID is this shard's index in [0, Shards).
	ID int
	// Shards is the fleet size this partition was cut for.
	Shards int
	// Radius is the halo depth the subgraph was grown to.
	Radius int
	// Graph is the induced subgraph over owned + halo vertices, with
	// local ids ascending in global-id order.
	Graph *graph.Graph
	// Globals maps local id -> global id (strictly ascending).
	Globals []graph.VertexID
	// OwnedLocals lists the local ids of owned vertices (sorted).
	OwnedLocals []graph.VertexID
}

// Owned returns how many vertices this shard owns.
func (p *Partition) Owned() int { return len(p.OwnedLocals) }

// PartitionOptions configures Split.
type PartitionOptions struct {
	// Shards is the number of partitions (>= 1, <= |V|).
	Shards int
	// Radius is the halo depth (default 2). It bounds the anchor
	// eccentricity of servable queries: a path query on 2k+1 vertices
	// needs Radius >= k.
	Radius int
	// Jaccard enables similarity co-location of overlapping clusters.
	Jaccard bool
	// JaccardTopK bounds the pairwise comparisons (default 1000).
	JaccardTopK int
}

// Split cuts data into pivot-owned shards: ownership comes from the §5
// workload estimate (greedy largest-first bin packing with optional
// Jaccard co-location), halos from a BFS of depth Radius out of each
// owned set. Every vertex is owned by exactly one shard; shards
// overlap only in halo.
func Split(data *graph.Graph, opt PartitionOptions) ([]*Partition, error) {
	n := data.NumVertices()
	if opt.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", opt.Shards)
	}
	if opt.Shards > n {
		return nil, fmt.Errorf("shard: %d shards for %d vertices; every shard must own at least one vertex", opt.Shards, n)
	}
	if opt.Radius <= 0 {
		opt.Radius = 2
	}

	all := make([]graph.VertexID, n)
	for i := range all {
		all[i] = graph.VertexID(i)
	}
	parts := workload.DistributePivots(data, all, workload.DistributeOptions{
		Parts:           opt.Shards,
		NeighborDegrees: true, // the partitioner reads the whole graph
		Jaccard:         opt.Jaccard,
		JaccardTopK:     opt.JaccardTopK,
	})
	repairEmpty(parts)

	out := make([]*Partition, opt.Shards)
	for i, owned := range parts {
		p, err := induce(data, i, opt, owned)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// repairEmpty moves single vertices from the largest part into empty
// ones. Zero-weight vertices (isolated, or id-scaled to nothing) can
// leave greedy bins empty, and an empty shard cannot even build a
// graph; ownership stays a partition either way.
func repairEmpty(parts [][]graph.VertexID) {
	for i := range parts {
		if len(parts[i]) > 0 {
			continue
		}
		donor := -1
		for j := range parts {
			if donor < 0 || len(parts[j]) > len(parts[donor]) {
				donor = j
			}
		}
		if len(parts[donor]) < 2 {
			continue // caller guaranteed shards <= vertices, so this cannot happen
		}
		last := len(parts[donor]) - 1
		parts[i] = append(parts[i], parts[donor][last])
		parts[donor] = parts[donor][:last]
	}
}

// induce builds one shard: BFS to Radius out of the owned set marks the
// halo, then the induced subgraph is assembled with local ids assigned
// in ascending global order (the symmetry-breaking invariant).
func induce(data *graph.Graph, id int, opt PartitionOptions, owned []graph.VertexID) (*Partition, error) {
	n := data.NumVertices()
	// dist < 0: excluded; 0: owned; 1..Radius: halo ring.
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]graph.VertexID, 0, len(owned))
	for _, v := range owned {
		dist[v] = 0
		queue = append(queue, v)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] == opt.Radius {
			continue
		}
		for _, w := range data.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}

	// Local ids ascend in global order: walk globals 0..n-1 once.
	local := make([]graph.VertexID, n) // global -> local (valid where dist >= 0)
	var globals []graph.VertexID
	for v := 0; v < n; v++ {
		if dist[v] >= 0 {
			local[v] = graph.VertexID(len(globals))
			globals = append(globals, graph.VertexID(v))
		}
	}

	b := graph.NewBuilder(len(globals))
	ownedLocals := make([]graph.VertexID, 0, len(owned))
	for lv, gv := range globals {
		labels := data.Labels(gv)
		b.SetLabel(graph.VertexID(lv), labels[0])
		for _, l := range labels[1:] {
			b.AddExtraLabel(graph.VertexID(lv), l)
		}
		if dist[gv] == 0 {
			ownedLocals = append(ownedLocals, graph.VertexID(lv))
		}
		for _, w := range data.Neighbors(gv) {
			if w > gv && dist[w] >= 0 {
				b.AddEdge(graph.VertexID(lv), local[w])
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", id, err)
	}
	return &Partition{
		ID:          id,
		Shards:      opt.Shards,
		Radius:      opt.Radius,
		Graph:       g,
		Globals:     globals,
		OwnedLocals: ownedLocals,
	}, nil
}
