package shard

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ceci/internal/graph"
)

// Manifest describes a partitioned data graph on disk: manifest.json
// plus, per shard, a labeled-graph file and a vertex map file. Shards
// and the router both load it — shards to serve one partition, the
// router to learn the fleet size and halo radius.
type Manifest struct {
	Shards  int    `json:"shards"`
	Radius  int    `json:"radius"`
	Jaccard bool   `json:"jaccard"`
	Source  Source `json:"source"`
	Parts   []Part `json:"parts"`
}

// Source records the shape of the graph that was partitioned, so a
// shard can refuse a manifest cut from a different graph than expected.
type Source struct {
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
}

// Part is one shard's file pointers and shape.
type Part struct {
	Graph    string `json:"graph"` // labeled-graph file, relative to the manifest dir
	Map      string `json:"map"`   // vertex map file, relative to the manifest dir
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Owned    int    `json:"owned"`
}

// Save writes the partitions into dir (created if missing):
// manifest.json, shard-<i>.lg, shard-<i>.map. The map file has one
// "<globalID> <owned 0|1>" line per local vertex, in local-id order.
func Save(dir string, source *graph.Graph, parts []*Partition, jaccard bool) (*Manifest, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("shard: no partitions to save")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manifest{
		Shards:  len(parts),
		Radius:  parts[0].Radius,
		Jaccard: jaccard,
		Source:  Source{Vertices: source.NumVertices(), Edges: source.NumEdges()},
	}
	for _, p := range parts {
		gname := fmt.Sprintf("shard-%d.lg", p.ID)
		mname := fmt.Sprintf("shard-%d.map", p.ID)
		if err := writeGraphFile(filepath.Join(dir, gname), p.Graph); err != nil {
			return nil, err
		}
		if err := writeMapFile(filepath.Join(dir, mname), p); err != nil {
			return nil, err
		}
		m.Parts = append(m.Parts, Part{
			Graph:    gname,
			Map:      mname,
			Vertices: p.Graph.NumVertices(),
			Edges:    p.Graph.NumEdges(),
			Owned:    p.Owned(),
		})
	}
	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), append(mb, '\n'), 0o644); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadManifest reads dir/manifest.json.
func LoadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if err := json.Unmarshal(b, m); err != nil {
		return nil, fmt.Errorf("shard: manifest: %w", err)
	}
	if m.Shards != len(m.Parts) {
		return nil, fmt.Errorf("shard: manifest declares %d shards but lists %d parts", m.Shards, len(m.Parts))
	}
	return m, nil
}

// LoadPart reads shard id's subgraph and vertex map from a manifest
// directory.
func LoadPart(dir string, id int) (*Partition, error) {
	m, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	if id < 0 || id >= len(m.Parts) {
		return nil, fmt.Errorf("shard: id %d out of range [0,%d)", id, len(m.Parts))
	}
	part := m.Parts[id]
	gf, err := os.Open(filepath.Join(dir, part.Graph))
	if err != nil {
		return nil, err
	}
	defer gf.Close()
	g, err := graph.LoadLabeled(gf)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", id, err)
	}
	globals, ownedLocals, err := readMapFile(filepath.Join(dir, part.Map), g.NumVertices())
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", id, err)
	}
	return &Partition{
		ID:          id,
		Shards:      m.Shards,
		Radius:      m.Radius,
		Graph:       g,
		Globals:     globals,
		OwnedLocals: ownedLocals,
	}, nil
}

func writeGraphFile(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := graph.WriteLabeled(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeMapFile(path string, p *Partition) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	owned := make(map[graph.VertexID]bool, len(p.OwnedLocals))
	for _, lv := range p.OwnedLocals {
		owned[lv] = true
	}
	for lv, gv := range p.Globals {
		o := 0
		if owned[graph.VertexID(lv)] {
			o = 1
		}
		fmt.Fprintf(w, "%d %d\n", gv, o)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readMapFile(path string, vertices int) ([]graph.VertexID, []graph.VertexID, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var globals, ownedLocals []graph.VertexID
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, nil, fmt.Errorf("map line %d: want \"<global> <owned>\", got %q", line, text)
		}
		gv, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, nil, fmt.Errorf("map line %d: %v", line, err)
		}
		if len(globals) > 0 && graph.VertexID(gv) <= globals[len(globals)-1] {
			return nil, nil, fmt.Errorf("map line %d: global ids must be strictly ascending", line)
		}
		lv := graph.VertexID(len(globals))
		globals = append(globals, graph.VertexID(gv))
		switch fields[1] {
		case "1":
			ownedLocals = append(ownedLocals, lv)
		case "0":
		default:
			return nil, nil, fmt.Errorf("map line %d: owned flag must be 0 or 1", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(globals) != vertices {
		return nil, nil, fmt.Errorf("map lists %d vertices but graph has %d", len(globals), vertices)
	}
	if len(ownedLocals) == 0 {
		return nil, nil, fmt.Errorf("map declares no owned vertices")
	}
	return globals, ownedLocals, nil
}
