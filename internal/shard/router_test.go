package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	ceciroot "ceci"
	"ceci/internal/auto"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/obs"
	"ceci/internal/order"
	"ceci/internal/service"
	"ceci/internal/verify"
)

// shardEngine builds a shard-mode service engine for one partition.
func shardEngine(p *Partition, opts service.Options) *service.Engine {
	if opts.MaxLimit == 0 {
		opts.MaxLimit = 1 << 20
	}
	opts.Shard = &service.ShardConfig{
		ID:          p.ID,
		Shards:      p.Shards,
		Radius:      p.Radius,
		Globals:     p.Globals,
		OwnedLocals: p.OwnedLocals,
	}
	return service.New(p.Graph, opts)
}

// startFleet partitions data and serves each shard over httptest,
// returning a started router in front of the fleet.
func startFleet(t *testing.T, data *graph.Graph, shards, radius int,
	sopts service.Options, ropts RouterOptions) (*Router, *httptest.Server) {
	t.Helper()
	parts, err := Split(data, PartitionOptions{Shards: shards, Radius: radius})
	if err != nil {
		t.Fatal(err)
	}
	urls := make([][]string, len(parts))
	for i, p := range parts {
		o := sopts
		// Each shard needs its own tracer: shards are separate processes
		// in production, and Tracer.Take is destructive per trace id.
		if o.TraceSample > 0 {
			o.Tracer = obs.NewTracer(obs.TracerOptions{})
		}
		srv := httptest.NewServer(shardEngine(p, o).Handler())
		t.Cleanup(srv.Close)
		urls[i] = []string{srv.URL}
	}
	ropts.Shards = urls
	ropts.Radius = radius
	if ropts.MaxLimit == 0 {
		ropts.MaxLimit = 1 << 20
	}
	rt, err := NewRouter(ropts)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Stop)
	rsrv := httptest.NewServer(rt.Handler())
	t.Cleanup(rsrv.Close)
	return rt, rsrv
}

// wireText renders a query graph as the .lg wire form.
func wireText(t *testing.T, q *graph.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteLabeled(&buf, q); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// postRoute posts a query to the router and decodes the RouteResponse.
func postRoute(t *testing.T, url string, wire service.QueryRequest) (*RouteResponse, int) {
	t.Helper()
	body, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	hresp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	out := &RouteResponse{}
	if err := json.NewDecoder(hresp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return out, hresp.StatusCode
}

// TestRouterDifferentialVsSingleNode is the sharding oracle: for seeded
// (data, query) pairs and fleet sizes 2, 3, and 5, the router's merged
// count — and the canonical embedding set — must equal a cold
// single-node build. This is the claim the whole partitioning contract
// exists to uphold.
func TestRouterDifferentialVsSingleNode(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		data, query := gen.RandomPair(seed)
		_, ecc := order.Anchor(query)
		radius := ecc
		if radius < 1 {
			radius = 1
		}

		m, err := ceciroot.Match(data, query, &ceciroot.Options{Workers: 1})
		if err != nil {
			t.Fatalf("seed %d: cold match: %v", seed, err)
		}
		wantEmbs := m.Collect()
		want := verify.CanonicalSet(wantEmbs, auto.Compute(query))

		for _, shards := range []int{2, 3, 5} {
			if shards > data.NumVertices() {
				continue
			}
			_, rsrv := startFleet(t, data, shards, radius, service.Options{}, RouterOptions{})
			cl := service.NewClient(rsrv.URL, nil)
			resp, err := cl.Query(context.Background(), service.QueryRequest{
				Query: wireText(t, query),
				Limit: 1 << 20,
			})
			if err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, shards, err)
			}
			if resp.Partial {
				t.Fatalf("seed %d shards %d: unexpected partial result", seed, shards)
			}
			if resp.Count != int64(len(wantEmbs)) {
				t.Fatalf("seed %d shards %d: count %d, single-node found %d",
					seed, shards, resp.Count, len(wantEmbs))
			}
			got := verify.CanonicalSet(resp.Embeddings, auto.Compute(query))
			if len(got) != len(want) {
				t.Fatalf("seed %d shards %d: %d embeddings, want %d", seed, shards, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d shards %d: embedding sets diverge at %d: %q vs %q",
						seed, shards, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRouterRejectsOverRadiusQuery: a query whose anchor eccentricity
// exceeds the fleet's halo radius is refused with 400 at the router —
// scattering it could silently miss embeddings.
func TestRouterRejectsOverRadiusQuery(t *testing.T) {
	data := gen.WithRandomLabels(gen.ErdosRenyi(60, 240, 3), 2, 5)
	_, rsrv := startFleet(t, data, 2, 1, service.Options{}, RouterOptions{})
	// A 5-path has anchor eccentricity 2 > radius 1.
	wire := service.QueryRequest{Labels: []uint32{0, 0, 0, 0, 0},
		Edges: [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {3, 4}}}
	resp, status := postRoute(t, rsrv.URL, wire)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (resp %+v)", status, resp)
	}
}

// TestRouterTraceStitching: one sampled query's /tracez document on the
// router must contain the full fleet tree — route-query at the root,
// one scatter child per shard, each adopting that shard's
// service-query subtree fetched at gather time.
func TestRouterTraceStitching(t *testing.T) {
	data, query := gen.RandomPair(7)
	_, ecc := order.Anchor(query)
	_, rsrv := startFleet(t, data, 2, ecc,
		service.Options{TraceSample: 1},
		RouterOptions{Tracer: obs.NewTracer(obs.TracerOptions{}), TraceSample: 1})

	cl := service.NewClient(rsrv.URL, nil)
	resp, err := cl.Query(context.Background(), service.QueryRequest{Query: wireText(t, query), CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID == "" {
		t.Fatal("sampled query returned no trace id")
	}

	b, err := cl.TracezJSONL(context.Background(), resp.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	roots, err := obs.ReadSpanJSONL(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 || roots[0].Name != "route-query" {
		t.Fatalf("want a single route-query root, got %d roots", len(roots))
	}
	scatters := 0
	stitched := 0
	for _, c := range roots[0].Children {
		if c.Name != "scatter" {
			continue
		}
		scatters++
		for _, g := range c.Children {
			if g.Name == "service-query" {
				stitched++
			}
		}
	}
	if scatters != 2 {
		t.Fatalf("found %d scatter spans, want 2", scatters)
	}
	if stitched != 2 {
		t.Fatalf("%d of 2 scatter spans adopted a shard service-query subtree", stitched)
	}
}

// stubShard is a fake shard server for routing-behavior tests: answers
// readiness, records hits and the propagated deadline, and can stall.
type stubShard struct {
	hits        atomic.Int64
	lastTimeout atomic.Int64
	delay       time.Duration
	resp        service.QueryResponse
}

func (s *stubShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz":
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "ready": true})
	case "/query":
		s.hits.Add(1)
		var wire service.QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
			writeJSON(w, http.StatusBadRequest, service.QueryResponse{Error: err.Error()})
			return
		}
		s.lastTimeout.Store(wire.TimeoutMS)
		if s.delay > 0 {
			select {
			case <-time.After(s.delay):
			case <-r.Context().Done():
				return
			}
		}
		writeJSON(w, http.StatusOK, s.resp)
	default:
		http.NotFound(w, r)
	}
}

// stubRouter builds a router over stub replicas for one shard.
func stubRouter(t *testing.T, stubs []*stubShard, ropts RouterOptions) *httptest.Server {
	t.Helper()
	urls := make([]string, len(stubs))
	for i, s := range stubs {
		srv := httptest.NewServer(s)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	ropts.Shards = [][]string{urls}
	if ropts.Radius == 0 {
		ropts.Radius = 1
	}
	rt, err := NewRouter(ropts)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Stop)
	rsrv := httptest.NewServer(rt.Handler())
	t.Cleanup(rsrv.Close)
	return rsrv
}

// edgeWire is the minimal routable query: a connected 2-path.
func edgeWire() service.QueryRequest {
	return service.QueryRequest{Labels: []uint32{0, 0}, Edges: [][2]uint32{{0, 1}}, CountOnly: true}
}

// TestRoundRobinSpreadsPrimaries: with three replicas and six queries,
// the rotation must land two primaries on each.
func TestRoundRobinSpreadsPrimaries(t *testing.T) {
	stubs := []*stubShard{{resp: service.QueryResponse{Count: 1}}, {resp: service.QueryResponse{Count: 1}}, {resp: service.QueryResponse{Count: 1}}}
	rsrv := stubRouter(t, stubs, RouterOptions{Policy: NewRoundRobin()})
	for i := 0; i < 6; i++ {
		resp, status := postRoute(t, rsrv.URL, edgeWire())
		if status != http.StatusOK || resp.Count != 1 {
			t.Fatalf("query %d: status %d count %d", i, status, resp.Count)
		}
	}
	for i, s := range stubs {
		if got := s.hits.Load(); got != 2 {
			t.Errorf("replica %d served %d queries, want 2", i, got)
		}
	}
}

// TestBroadcastQueriesEveryReplica: the broadcast policy launches every
// replica at once and merges the first usable answer.
func TestBroadcastQueriesEveryReplica(t *testing.T) {
	stubs := []*stubShard{
		{resp: service.QueryResponse{Count: 7}, delay: 30 * time.Millisecond},
		{resp: service.QueryResponse{Count: 7}, delay: 30 * time.Millisecond},
		{resp: service.QueryResponse{Count: 7}, delay: 30 * time.Millisecond},
	}
	rsrv := stubRouter(t, stubs, RouterOptions{Policy: Broadcast{}})
	resp, status := postRoute(t, rsrv.URL, edgeWire())
	if status != http.StatusOK || resp.Count != 7 {
		t.Fatalf("status %d count %d", status, resp.Count)
	}
	for i, s := range stubs {
		if s.hits.Load() != 1 {
			t.Errorf("replica %d saw %d requests, want 1 (broadcast)", i, s.hits.Load())
		}
	}
}

// TestHedgedRequestBeatsStraggler: when the primary stalls past the
// hedge delay, the second replica answers and the response is flagged
// hedged — well before the straggler would have finished.
func TestHedgedRequestBeatsStraggler(t *testing.T) {
	slow := &stubShard{resp: service.QueryResponse{Count: 3}, delay: 2 * time.Second}
	fast := &stubShard{resp: service.QueryResponse{Count: 3}}
	rsrv := stubRouter(t, []*stubShard{slow, fast}, RouterOptions{
		Policy: NewRoundRobin(), // first query's primary is replica 0 (slow)
		Hedge:  20 * time.Millisecond,
	})
	start := time.Now()
	resp, status := postRoute(t, rsrv.URL, edgeWire())
	elapsed := time.Since(start)
	if status != http.StatusOK || resp.Count != 3 {
		t.Fatalf("status %d count %d", status, resp.Count)
	}
	if resp.Hedged != 1 {
		t.Errorf("hedged = %d, want 1", resp.Hedged)
	}
	if elapsed >= time.Second {
		t.Errorf("hedged response took %v; should beat the 2s straggler", elapsed)
	}
	if fast.hits.Load() != 1 {
		t.Errorf("hedge replica saw %d requests, want 1", fast.hits.Load())
	}
}

// TestDeadlinePropagation: the per-shard sub-request's timeout must be
// the caller's budget minus the router's merge margin, never more.
func TestDeadlinePropagation(t *testing.T) {
	stub := &stubShard{resp: service.QueryResponse{Count: 0}}
	rsrv := stubRouter(t, []*stubShard{stub}, RouterOptions{DeadlineMargin: 100 * time.Millisecond})
	wire := edgeWire()
	wire.TimeoutMS = 1000
	if _, status := postRoute(t, rsrv.URL, wire); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	got := stub.lastTimeout.Load()
	if got <= 0 || got > 900 {
		t.Fatalf("shard saw timeout_ms %d, want in (0, 900]", got)
	}
}

// TestRoundRobinPickRotation exercises the policy directly: rotation
// per shard, independent counters across shards.
func TestRoundRobinPickRotation(t *testing.T) {
	reps := []*Replica{{URL: "a"}, {URL: "b"}, {URL: "c"}}
	p := NewRoundRobin()
	wantFirst := []string{"a", "b", "c", "a"}
	for round, want := range wantFirst {
		ordered, parallel := p.Pick(0, reps)
		if parallel {
			t.Fatal("round-robin must not be parallel")
		}
		if len(ordered) != 3 || ordered[0].URL != want {
			t.Fatalf("round %d: primary %s, want %s", round, ordered[0].URL, want)
		}
	}
	// A different shard's rotation is independent.
	ordered, _ := p.Pick(1, reps)
	if ordered[0].URL != "a" {
		t.Fatalf("shard 1 first pick = %s, want a", ordered[0].URL)
	}
}

// TestLeastLoadedOrdersByInflight: fewest outstanding requests first.
func TestLeastLoadedOrdersByInflight(t *testing.T) {
	a := &Replica{URL: "a"}
	b := &Replica{URL: "b"}
	c := &Replica{URL: "c"}
	a.inflight.Store(5)
	b.inflight.Store(1)
	c.inflight.Store(3)
	ordered, parallel := LeastLoaded{}.Pick(0, []*Replica{a, b, c})
	if parallel {
		t.Fatal("least-loaded must not be parallel")
	}
	want := []string{"b", "c", "a"}
	for i, w := range want {
		if ordered[i].URL != w {
			t.Fatalf("order[%d] = %s, want %s", i, ordered[i].URL, w)
		}
	}
}

// TestParsePolicy: names map to implementations; junk is an error.
func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]string{
		"broadcast": "broadcast", "round-robin": "round-robin",
		"": "round-robin", "least-loaded": "least-loaded",
	} {
		p, err := ParsePolicy(name)
		if err != nil || p.Name() != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Error("unknown policy should error")
	}
}
