package ceci

import (
	"math/rand"
	"testing"

	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
)

func eqVals(a, b []graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertSameCandMap checks that a mutable and a frozen CandMap expose the
// same logical content through every read accessor.
func assertSameCandMap(t *testing.T, u int, kind string, mut, fro *CandMap) {
	t.Helper()
	if !eqVals(mut.Keys(), fro.Keys()) {
		t.Fatalf("u%d %s: keys differ: %v vs %v", u, kind, mut.Keys(), fro.Keys())
	}
	for _, k := range mut.Keys() {
		if !eqVals(mut.Get(k), fro.Get(k)) {
			t.Fatalf("u%d %s[%d]: values differ: %v vs %v", u, kind, k, mut.Get(k), fro.Get(k))
		}
	}
	if mut.Get(graph.VertexID(1<<31)) != nil || fro.Get(graph.VertexID(1<<31)) != nil {
		t.Fatalf("u%d %s: Get(absent) not nil", u, kind)
	}
	if !eqVals(mut.ValueUnion(), fro.ValueUnion()) {
		t.Fatalf("u%d %s: ValueUnion differs", u, kind)
	}
	if mut.CandidateEdges() != fro.CandidateEdges() {
		t.Fatalf("u%d %s: CandidateEdges %d vs %d", u, kind, mut.CandidateEdges(), fro.CandidateEdges())
	}
	i := 0
	fro.ForEach(func(k graph.VertexID, vals []graph.VertexID) {
		if k != mut.Keys()[i] || !eqVals(vals, mut.Get(k)) {
			t.Fatalf("u%d %s: ForEach diverges at key %d", u, kind, k)
		}
		i++
	})
}

// TestFrozenEquivalence builds the same index twice — once left mutable
// via skipFreeze, once frozen into the flat arena form — over randomized
// (data, query) pairs and asserts every read accessor agrees: keys,
// values, unions, candidate-edge counts, and cardinalities.
func TestFrozenEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		data, query := gen.RandomPair(seed)
		tree, err := order.Preprocess(data, query, order.Options{})
		if err != nil {
			t.Fatalf("seed %d: Preprocess: %v", seed, err)
		}
		mut := Build(data, tree, Options{skipFreeze: true})
		fro := Build(data, tree, Options{})
		if mut.Frozen() {
			t.Fatalf("seed %d: skipFreeze build is frozen", seed)
		}
		if !fro.Frozen() {
			t.Fatalf("seed %d: default build is not frozen", seed)
		}
		for u := range mut.Nodes {
			nm, nf := &mut.Nodes[u], &fro.Nodes[u]
			if !eqVals(nm.Cands, nf.Cands) {
				t.Fatalf("seed %d u%d: cands differ", seed, u)
			}
			for _, v := range nm.Cands {
				if nm.CardOf(v) != nf.CardOf(v) {
					t.Fatalf("seed %d u%d: card[%d] %d vs %d",
						seed, u, v, nm.CardOf(v), nf.CardOf(v))
				}
			}
			if nf.Card != nil {
				t.Fatalf("seed %d u%d: frozen node still holds the Card map", seed, u)
			}
			assertSameCandMap(t, u, "TE", &nm.TE, &nf.TE)
			for j := range nm.NTE {
				assertSameCandMap(t, u, "NTE", &nm.NTE[j], &nf.NTE[j])
			}
		}
		if mut.CandidateEdges() != fro.CandidateEdges() {
			t.Fatalf("seed %d: CandidateEdges differ", seed)
		}
		if mut.UniqueCandidateEdges() != fro.UniqueCandidateEdges() {
			t.Fatalf("seed %d: UniqueCandidateEdges differ", seed)
		}
		if mut.TotalCardinality() != fro.TotalCardinality() {
			t.Fatalf("seed %d: TotalCardinality differ", seed)
		}
	}
}

// TestFrozenMutationPanics pins the immutability contract: structural
// mutation of a frozen CandMap must panic rather than corrupt the arena.
func TestFrozenMutationPanics(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	tree, err := order.Preprocess(data, query, order.Options{ForcedRoot: 0})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	ix := Build(data, tree, Options{})
	var m *CandMap
	for u := range ix.Nodes {
		if ix.Nodes[u].TE.Len() > 0 {
			m = &ix.Nodes[u].TE
			break
		}
	}
	if m == nil {
		t.Fatal("no non-empty TE map")
	}
	for name, mutate := range map[string]func(){
		"AppendKey":   func() { m.AppendKey(1<<30, []graph.VertexID{1}) },
		"Delete":      func() { m.Delete(m.Keys()[0]) },
		"DeleteValue": func() { m.DeleteValue(1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on frozen map did not panic", name)
				}
			}()
			mutate()
		}()
	}
}

// TestUnsortedPivots is the regression test for the O(n) middle-insert
// path: Options.Pivots passed shuffled (and with duplicates) must produce
// the same index as the sorted list, because Build normalizes the slice
// before the root candidates are installed.
func TestUnsortedPivots(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for seed := int64(1); seed <= 10; seed++ {
		data, query := gen.RandomPair(seed)
		tree, err := order.Preprocess(data, query, order.Options{})
		if err != nil {
			t.Fatalf("seed %d: Preprocess: %v", seed, err)
		}
		base := Build(data, tree, Options{})
		pivots := base.Pivots()
		if len(pivots) < 2 {
			continue
		}
		shuffled := make([]graph.VertexID, len(pivots))
		copy(shuffled, pivots)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		shuffled = append(shuffled, shuffled[0]) // a duplicate, too
		got := Build(data, tree, Options{Pivots: shuffled})
		want := Build(data, tree, Options{Pivots: pivots})
		if !eqVals(got.Pivots(), want.Pivots()) {
			t.Fatalf("seed %d: pivots differ: %v vs %v", seed, got.Pivots(), want.Pivots())
		}
		if got.CandidateEdges() != want.CandidateEdges() {
			t.Fatalf("seed %d: CandidateEdges %d vs %d",
				seed, got.CandidateEdges(), want.CandidateEdges())
		}
		if got.TotalCardinality() != want.TotalCardinality() {
			t.Fatalf("seed %d: TotalCardinality %d vs %d",
				seed, got.TotalCardinality(), want.TotalCardinality())
		}
		// The caller's slice must not be reordered in place.
		if shuffled[len(shuffled)-1] != shuffled[0] {
			t.Fatalf("seed %d: Build mutated the caller's pivot slice", seed)
		}
	}
}
