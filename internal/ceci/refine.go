package ceci

import (
	"ceci/internal/graph"
	"ceci/internal/setops"
)

// refine implements Algorithm 2: a reverse matching-order sweep that
// computes the cardinality of every (query vertex, candidate) pair and
// deletes candidates whose cardinality is zero — i.e. candidates
// guaranteed to appear in no embedding. Cardinality is defined bottom-up
// (Section 3.3):
//
//	card(u, v) = ∏_{uc ∈ treeChildren(u)} Σ_{vc ∈ TE[uc][v]} card(uc, vc)
//
// with card(u, v) forced to 0 when u has an incoming non-tree edge whose
// NTE structure does not contain v among its values (such a v can never
// satisfy that query edge). Leaf candidates have cardinality 1.
func (ix *Index) refine() {
	tree := ix.Tree
	for i := len(tree.Order) - 1; i >= 0; i-- {
		if ix.buildCancelled() {
			return
		}
		u := tree.Order[i]
		node := &ix.Nodes[u]
		node.Card = make(map[graph.VertexID]int64, len(node.Cands))

		// Union of values per incoming NTE edge: v must appear in every
		// one of them (Algorithm 2 line 5).
		nteUnions := make([][]graph.VertexID, len(node.NTE))
		for j := range node.NTE {
			nteUnions[j] = node.NTE[j].ValueUnion()
		}

		// Iterate over a snapshot: removal mutates node.Cands.
		cands := make([]graph.VertexID, len(node.Cands))
		copy(cands, node.Cands)
		for _, v := range cands {
			card := ix.cardinalityOf(u, v, nteUnions)
			if card == 0 {
				if ix.opts.Stats != nil {
					ix.opts.Stats.FilteredRefine.Add(1)
				}
				if p := ix.opts.Profile; p != nil {
					p.Vertex(int(u)).AddRefined(1)
				}
				ix.removeCandidate(u, v)
				continue
			}
			node.Card[v] = card
		}
	}
}

func (ix *Index) cardinalityOf(u graph.VertexID, v graph.VertexID, nteUnions [][]graph.VertexID) int64 {
	for _, union := range nteUnions {
		if !setops.Contains(union, v) {
			return 0
		}
	}
	card := int64(1)
	for _, uc := range ix.Tree.Children[u] {
		child := &ix.Nodes[uc]
		var sum int64
		for _, vc := range child.TE.Get(v) {
			sum = satAdd(sum, child.Card[vc])
		}
		card = satMul(card, sum)
		if card == 0 {
			return 0
		}
	}
	return card
}
