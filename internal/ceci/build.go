package ceci

import (
	"context"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"ceci/internal/graph"
	"ceci/internal/obs"
	"ceci/internal/order"
	"ceci/internal/prof"
	"ceci/internal/setops"
)

// Build constructs the CECI for (data, tree) following Algorithm 1:
// BFS-ordered frontier expansion with label / degree / NLC filters for
// both tree-edge and non-tree-edge candidates, empty-entry cascade
// deletion, and (unless disabled) the reverse-BFS refinement of
// Algorithm 2.
func Build(data *graph.Graph, tree *order.QueryTree, opts Options) *Index {
	ix, _ := BuildCtx(context.Background(), data, tree, opts)
	return ix
}

// BuildCtx is Build with cancellation: the construction observes ctx at
// frontier-chunk, query-vertex, and refinement-round granularity and
// aborts promptly once the deadline passes or the context is cancelled,
// returning a nil index and the context's error. The cancellation check
// is one relaxed atomic load — workers never block on the context — so
// the uncancelled build costs the same as Build.
func BuildCtx(ctx context.Context, data *graph.Graph, tree *order.QueryTree, opts Options) (*Index, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var cancelled *atomic.Bool
	if ctx.Done() != nil {
		cancelled = new(atomic.Bool)
		stop := context.AfterFunc(ctx, func() { cancelled.Store(true) })
		defer stop()
	}
	ix := build(ctx, data, tree, opts, cancelled)
	if cancelled != nil && cancelled.Load() {
		if err := context.Cause(ctx); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// build is the shared construction body. cancelled, when non-nil, is
// flipped by the context watcher; the partially built index returned
// after an abort is discarded by BuildCtx.
func build(ctx context.Context, data *graph.Graph, tree *order.QueryTree, opts Options, cancelled *atomic.Bool) *Index {
	if opts.RefineRounds <= 0 {
		opts.RefineRounds = 1
	}
	// StartUnder parents the build span beneath the request's ambient
	// span (service queries) or trace context (remote machines) when the
	// context carries one; a bare Build stays a local root span.
	span := obs.StartUnder(ctx, opts.Tracer, "build",
		obs.Int("query_vertices", int64(tree.NumVertices())))
	defer span.End()
	ix := &Index{
		Data:    data,
		Tree:    tree,
		Nodes:   make([]Node, tree.NumVertices()),
		opts:    opts,
		bcancel: cancelled,
	}
	ix.indexNTEChildren()
	if p := opts.Profile; p != nil {
		// Idempotent, so the incremental mode's per-cluster builds all
		// share one collector and their counters accumulate.
		p.InitQuery(tree.NumVertices(), func(u int) []int {
			parents := make([]int, len(tree.NTEParents[u]))
			for j, pv := range tree.NTEParents[u] {
				parents[j] = int(pv)
			}
			return parents
		})
	}

	// Root candidates = cluster pivots.
	root := tree.Root
	if opts.Pivots != nil {
		pivots := make([]graph.VertexID, len(opts.Pivots))
		copy(pivots, opts.Pivots)
		// Candidate sets are sorted everywhere else (binary searches,
		// set operations, AppendKey's append fast path); sorting and
		// deduplicating here keeps an unsorted caller from silently
		// degrading AppendKey into its O(n) middle-insert path — or
		// worse, breaking the removeCandidate binary search.
		slices.Sort(pivots)
		pivots = slices.Compact(pivots)
		ix.Nodes[root].Cands = pivots
	} else {
		var pivots []graph.VertexID
		order.ForEachCandidate(data, tree.Query, root, func(v graph.VertexID) {
			pivots = append(pivots, v)
		})
		ix.Nodes[root].Cands = pivots
	}

	// Expand every non-root query vertex in matching order: first its
	// tree edge, then each incoming non-tree edge.
	esp := span.Child("expand", obs.Int("pivots", int64(len(ix.Nodes[root].Cands))))
	for _, u := range tree.Order[1:] {
		if ix.buildCancelled() {
			esp.End()
			return ix
		}
		ix.buildTE(u)
		ix.buildNTE(u)
	}
	esp.End()

	if opts.SkipRefinement {
		ix.optimisticCardinalities()
	} else {
		for round := 0; round < opts.RefineRounds; round++ {
			if ix.buildCancelled() {
				return ix
			}
			rsp := span.Child("refine", obs.Int("round", int64(round)))
			ix.refine()
			rsp.End()
		}
	}
	if ix.buildCancelled() {
		return ix
	}
	if !opts.skipFreeze {
		// Compact the mutable build-time structures into the flat
		// arena-backed steady-state form (and release the build scratch).
		ix.Freeze()
	}
	if opts.Stats != nil {
		opts.Stats.IndexBytes.Store(ix.SizeBytes())
	}
	if p := opts.Profile; p != nil {
		ix.recordShape(p)
	}
	return ix
}

// recordShape charges the surviving index shape — candidate counts and
// TE/NTE entry and candidate-edge totals — to the profile. Adds rather
// than stores: the incremental mode builds one cluster at a time and the
// per-cluster shapes sum to the whole-index shape.
func (ix *Index) recordShape(p *prof.Collector) {
	for u := range ix.Nodes {
		node := &ix.Nodes[u]
		vc := p.Vertex(u)
		vc.FinalCands.Add(int64(len(node.Cands)))
		vc.TEEntries.Add(int64(node.TE.Len()))
		vc.TECandidates.Add(node.TE.CandidateEdges())
		vc.FlatBytes.Add(node.flatBytes())
		for j := range node.NTE {
			nc := vc.NTE(j)
			nc.Entries.Add(int64(node.NTE[j].Len()))
			nc.Candidates.Add(node.NTE[j].CandidateEdges())
		}
	}
}

func (ix *Index) indexNTEChildren() {
	tree := ix.Tree
	ix.nteChildIdx = make([][]nteRef, tree.NumVertices())
	for u := 0; u < tree.NumVertices(); u++ {
		ix.Nodes[u].NTE = make([]CandMap, len(tree.NTEParents[u]))
		for j, p := range tree.NTEParents[u] {
			ix.nteChildIdx[p] = append(ix.nteChildIdx[p], nteRef{child: graph.VertexID(u), slot: j})
		}
	}
}

func (ix *Index) workers() int {
	if ix.opts.Workers > 0 {
		return ix.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// buildCancelled reports whether the construction's context fired. The
// flag is nil for non-cancellable builds, so the check costs one nil
// compare on the Build path and one atomic load under BuildCtx.
func (ix *Index) buildCancelled() bool {
	return ix.bcancel != nil && ix.bcancel.Load()
}

// parallelFor runs fn(i, w) for i in [0, n) across the index's worker
// budget, pulling fixed-size chunks from a shared cursor — the paper's
// pull-based dynamic distribution with per-thread private bins (§3.6).
// w identifies the executing worker so fn can use pooled per-worker
// scratch; beyond that, workers write only to their own output slots.
func (ix *Index) parallelFor(n int, fn func(i, w int)) {
	workers := ix.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 64 {
		for i := 0; i < n; i++ {
			if i&63 == 0 && ix.buildCancelled() {
				return
			}
			fn(i, 0)
		}
		return
	}
	const chunk = 32
	var cursor int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&cursor, chunk)) - chunk
				if lo >= n || ix.buildCancelled() {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i, w)
				}
			}
		}(w)
	}
	wg.Wait()
}

// buildTE expands the frontier of u's parent, filtering neighbors into
// TE_Candidates of u (Algorithm 1). Frontier vertices whose expansion
// yields no candidate are cascaded out of the index.
func (ix *Index) buildTE(u graph.VertexID) {
	tree := ix.Tree
	up := graph.VertexID(tree.Parent[u])
	frontier := ix.Nodes[up].Cands

	values := ix.valueSlots(len(frontier))
	scratch := ix.scratches()
	ix.parallelFor(len(frontier), func(i, w int) {
		sc := &scratch[w]
		sc.buf = ix.filterNeighborsInto(sc.buf[:0], frontier[i], u)
		values[i] = sc.arena.copyIn(sc.buf)
	})
	if ix.buildCancelled() {
		// The value table may have unfilled slots; consuming it would
		// cascade-delete live candidates. The caller discards the index.
		return
	}

	node := &ix.Nodes[u]
	var dead []graph.VertexID
	for i, vf := range frontier {
		if len(values[i]) == 0 {
			// No tree-edge candidate under vf: vf cannot match up
			// (Algorithm 1 lines 9-12).
			dead = append(dead, vf)
			if ix.opts.Stats != nil {
				ix.opts.Stats.FilteredCascade.Add(1)
			}
			continue
		}
		node.TE.AppendKey(vf, values[i])
	}
	node.Cands = node.TE.ValueUnion()
	for _, vf := range dead {
		ix.removeCandidate(up, vf)
	}
}

// buildNTE fills, for each non-tree edge (un, u), the NTE_Candidates of u
// keyed by un's candidates. Values are the intersection of the key's data
// adjacency with u's candidate set — neighbors failing the label/degree/
// NLC filters are already absent from Cands, so no re-filtering is needed.
func (ix *Index) buildNTE(u graph.VertexID) {
	tree := ix.Tree
	node := &ix.Nodes[u]
	// Every member of Cands carries u's labels, so intersecting with the
	// key's label partition (neighbors carrying u's primary label) is
	// equivalent to intersecting with its full adjacency — just over a
	// shorter left list. Unlabeled graphs fall through to Neighbors.
	uLabel := tree.Query.Label(u)
	for j, un := range tree.NTEParents[u] {
		frontier := ix.Nodes[un].Cands
		values := ix.valueSlots(len(frontier))
		scratch := ix.scratches()
		ix.parallelFor(len(frontier), func(i, w int) {
			sc := &scratch[w]
			sc.buf = setops.Intersect(sc.buf[:0], ix.Data.NeighborsWithLabel(frontier[i], uLabel), node.Cands)
			values[i] = sc.arena.copyIn(sc.buf)
		})
		if ix.buildCancelled() {
			return // unfilled value slots; index is being discarded
		}
		if ix.opts.Stats != nil {
			ix.opts.Stats.IntersectionOps.Add(int64(len(frontier)))
			ix.opts.Stats.RemoteReads.Add(int64(len(frontier)))
		}
		for i, vn := range frontier {
			if len(values[i]) > 0 {
				node.NTE[j].AppendKey(vn, values[i])
			}
		}
		if p := ix.opts.Profile; p != nil {
			// Merge-intersection work: |adj_label(vn)| + |Cands(u)|
			// comparisons per frontier key (the label partition is what
			// was actually intersected), versus what each kept.
			var cmp, out int64
			for i, vn := range frontier {
				cmp += int64(len(ix.Data.NeighborsWithLabel(vn, uLabel)) + len(node.Cands))
				out += int64(len(values[i]))
			}
			nc := p.Vertex(int(u)).NTE(j)
			nc.BuildComparisons.Add(cmp)
			nc.BuildOutput.Add(out)
		}
	}
}

// filterNeighborsInto applies the label, degree, and NLC filters
// (Section 3.2) to the neighbors of vf, appending survivors to dst
// (sorted ascending, since adjacency lists are sorted). dst is a
// worker-private scratch buffer; callers copy the survivors into an
// arena before the buffer is reused.
func (ix *Index) filterNeighborsInto(dst []graph.VertexID, vf graph.VertexID, u graph.VertexID) []graph.VertexID {
	q := ix.Tree.Query
	data := ix.Data
	qLabels := q.Labels(u)
	qDeg := q.Degree(u)
	qSig := graph.NLCOf(q, u)
	st := ix.opts.Stats
	if st != nil {
		st.RemoteReads.Add(1) // one adjacency-list fetch per frontier vertex
	}

	// Funnel counters accumulate in locals — one batched atomic add per
	// frontier vertex, nothing on the per-neighbor path.
	var dropLabel, dropDegree, dropNLC int64
	degree := int64(data.Degree(vf))
	// Label-grouped adjacency: scan only the neighbors carrying u's
	// primary label instead of label-testing the whole list. The
	// partition IS the primary-label filter, so the skipped complement is
	// charged to the label stage and the funnel invariant
	// (scanned = dropped + kept) is unchanged. Extra labels of a
	// multi-labeled query vertex are still tested per neighbor.
	neighbors := data.NeighborsWithLabel(vf, qLabels[0])
	dropLabel = degree - int64(len(neighbors))
	if st != nil && dropLabel > 0 {
		st.FilteredLabel.Add(dropLabel)
	}
	out := dst
	for _, v := range neighbors {
		// Remaining labels of a multi-labeled query vertex.
		okLabel := true
		for _, l := range qLabels[1:] {
			if !data.HasLabel(v, l) {
				okLabel = false
				break
			}
		}
		if !okLabel {
			if st != nil {
				st.FilteredLabel.Add(1)
			}
			dropLabel++
			continue
		}
		// Degree filter.
		if !ix.opts.SkipDegreeFilter && data.Degree(v) < qDeg {
			if st != nil {
				st.FilteredDegree.Add(1)
			}
			dropDegree++
			continue
		}
		// Neighborhood label count filter.
		if !ix.opts.SkipNLCFilter && !data.NLC(v).Covers(qSig) {
			if st != nil {
				st.FilteredNLC.Add(1)
			}
			dropNLC++
			continue
		}
		out = append(out, v)
	}
	if p := ix.opts.Profile; p != nil {
		vc := p.Vertex(int(u))
		vc.NeighborsScanned.Add(degree)
		vc.DroppedLabel.Add(dropLabel)
		vc.DroppedDegree.Add(dropDegree)
		vc.DroppedNLC.Add(dropNLC)
	}
	// data.Neighbors is sorted, so out is sorted.
	return out
}

// removeCandidate deletes data vertex v from query vertex u's candidate
// structures and cascades: the key v disappears from every already-built
// child structure keyed by u's candidates, and if removing v empties a TE
// value list of u, the corresponding parent key is removed recursively.
func (ix *Index) removeCandidate(u graph.VertexID, v graph.VertexID) {
	node := &ix.Nodes[u]
	// Drop from the candidate union.
	i := sort.Search(len(node.Cands), func(i int) bool { return node.Cands[i] >= v })
	if i == len(node.Cands) || node.Cands[i] != v {
		return // already removed
	}
	node.Cands = append(node.Cands[:i], node.Cands[i+1:]...)
	if p := ix.opts.Profile; p != nil {
		// Every deletion counts here; refine() separately counts the
		// refinement-initiated ones, so cascades = removed - refined.
		p.Vertex(int(u)).AddRemoved(1)
	}

	// Drop v wherever it appears as a value of u's own structures.
	var emptied []graph.VertexID
	emptied = node.TE.DeleteValue(v, emptied)
	for j := range node.NTE {
		node.NTE[j].DeleteValue(v, nil)
	}

	// Drop the key v from children keyed by u's candidates.
	tree := ix.Tree
	for _, uc := range tree.Children[u] {
		ix.Nodes[uc].TE.Delete(v)
	}
	for _, ref := range ix.nteChildIdx[u] {
		ix.Nodes[ref.child].NTE[ref.slot].Delete(v)
	}
	if node.Card != nil {
		delete(node.Card, v)
	}

	// A TE key of u whose value list became empty means that parent
	// candidate can no longer match u's parent: cascade upward.
	if tree.Parent[u] != order.NoParent {
		up := graph.VertexID(tree.Parent[u])
		for _, key := range emptied {
			node.TE.Delete(key)
			ix.removeCandidate(up, key)
		}
	}
}

// optimisticCardinalities fills Card from TE sizes without pruning; used
// when refinement is disabled so FGD decomposition still has a signal.
func (ix *Index) optimisticCardinalities() {
	tree := ix.Tree
	for i := len(tree.Order) - 1; i >= 0; i-- {
		u := tree.Order[i]
		node := &ix.Nodes[u]
		node.Card = make(map[graph.VertexID]int64, len(node.Cands))
		if len(tree.Children[u]) == 0 {
			for _, v := range node.Cands {
				node.Card[v] = 1
			}
			continue
		}
		for _, v := range node.Cands {
			card := int64(1)
			for _, uc := range tree.Children[u] {
				var sum int64
				for _, vc := range ix.Nodes[uc].TE.Get(v) {
					sum = satAdd(sum, ix.Nodes[uc].Card[vc])
				}
				card = satMul(card, sum)
				if card == 0 {
					break
				}
			}
			node.Card[v] = card
		}
	}
}
