package ceci_test

import (
	"math/rand"
	"sort"
	"testing"

	"ceci/internal/ceci"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
	"ceci/internal/reference"
	"ceci/internal/stats"
)

// buildFig1 preprocesses the paper's running example with the root forced
// to u1, matching the worked example of Sections 2–4.
func buildFig1(t *testing.T, opts ceci.Options) (*ceci.Index, *order.QueryTree) {
	t.Helper()
	data, query := gen.Fig1Data(), gen.Fig1Query()
	tree, err := order.Preprocess(data, query, order.Options{ForcedRoot: 0, Heuristic: order.BFSOrder})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	return ceci.Build(data, tree, opts), tree
}

func ids(vs ...int) []graph.VertexID {
	out := make([]graph.VertexID, len(vs))
	for i, v := range vs {
		out[i] = gen.Fig1V(v)
	}
	return out
}

func eqIDs(a, b []graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFig1QueryTreeShape(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	tree, err := order.Preprocess(data, query, order.Options{ForcedRoot: 0})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root != 0 {
		t.Fatalf("root = u%d, want u1", tree.Root+1)
	}
	// BFS order u1, u2, u3, u4, u5.
	want := []graph.VertexID{0, 1, 2, 3, 4}
	if !eqIDs(tree.Order, want) {
		t.Fatalf("order = %v, want %v", tree.Order, want)
	}
	// Tree edges: (u1,u2), (u1,u3), (u2,u4), (u3,u5); NTE: (u2,u3), (u3,u4).
	if tree.Parent[1] != 0 || tree.Parent[2] != 0 || tree.Parent[3] != 1 || tree.Parent[4] != 2 {
		t.Fatalf("parents = %v", tree.Parent)
	}
	if got := tree.NTECount(); got != 2 {
		t.Fatalf("NTE count = %d, want 2", got)
	}
	if !eqIDs(tree.NTEParents[2], []graph.VertexID{1}) {
		t.Fatalf("NTE parents of u3 = %v, want [u2]", tree.NTEParents[2])
	}
	if !eqIDs(tree.NTEParents[3], []graph.VertexID{2}) {
		t.Fatalf("NTE parents of u4 = %v, want [u3]", tree.NTEParents[3])
	}
}

func TestFig1PivotsAndFiltering(t *testing.T) {
	ix, _ := buildFig1(t, ceci.Options{})
	// After the v8 NLC prune cascades out the v2 cluster and refinement
	// removes nothing at the root, only v1 remains as a pivot.
	if want := ids(1); !eqIDs(ix.Pivots(), want) {
		t.Fatalf("pivots = %v, want %v", ix.Pivots(), want)
	}
}

func TestFig1TEStructureBeforeRefinement(t *testing.T) {
	ix, _ := buildFig1(t, ceci.Options{SkipRefinement: true})
	// TE of u2 under v1: {v3, v5, v7}; the v2 entry disappears with the
	// cluster cascade.
	u2 := &ix.Nodes[1]
	if got := u2.TE.Get(gen.Fig1V(1)); !eqIDs(got, ids(3, 5, 7)) {
		t.Fatalf("TE(u2)[v1] = %v, want [v3 v5 v7]", got)
	}
	if got := u2.TE.Get(gen.Fig1V(2)); got != nil {
		t.Fatalf("TE(u2)[v2] = %v, want removed", got)
	}
	// TE of u3 under v1: {v4, v6}.
	u3 := &ix.Nodes[2]
	if got := u3.TE.Get(gen.Fig1V(1)); !eqIDs(got, ids(4, 6)) {
		t.Fatalf("TE(u3)[v1] = %v, want [v4 v6]", got)
	}
	// NTE of u3 (from u2): <v3,{v4}>, <v5,{v4,v6}>, <v7,{v6}> — v8 is
	// pruned by NLC so it never shows up as a value.
	nte := &u3.NTE[0]
	if got := nte.Get(gen.Fig1V(3)); !eqIDs(got, ids(4)) {
		t.Fatalf("NTE(u3)[v3] = %v, want [v4]", got)
	}
	if got := nte.Get(gen.Fig1V(5)); !eqIDs(got, ids(4, 6)) {
		t.Fatalf("NTE(u3)[v5] = %v, want [v4 v6]", got)
	}
	if got := nte.Get(gen.Fig1V(7)); !eqIDs(got, ids(6)) {
		t.Fatalf("NTE(u3)[v7] = %v, want [v6]", got)
	}
}

func TestFig1RefinementPrunesV7(t *testing.T) {
	ix, _ := buildFig1(t, ceci.Options{})
	// Reverse-BFS refinement: v7's only u4-child v15 is not among the
	// NTE values of u4, so card(u2, v7) = 0 and v7 disappears.
	u2 := &ix.Nodes[1]
	if got := u2.TE.Get(gen.Fig1V(1)); !eqIDs(got, ids(3, 5)) {
		t.Fatalf("refined TE(u2)[v1] = %v, want [v3 v5]", got)
	}
	// The <v7, {v6}> NTE entry of u3 goes with it (Section 3.3: removed
	// "although it has the valid cardinality of one for v6").
	u3 := &ix.Nodes[2]
	if got := u3.NTE[0].Get(gen.Fig1V(7)); got != nil {
		t.Fatalf("NTE(u3)[v7] = %v, want removed", got)
	}
}

func TestFig1ClusterCardinality(t *testing.T) {
	ix, _ := buildFig1(t, ceci.Options{})
	// card(u1,v1) = Σcard(u2,·) × Σcard(u3,·) = (1+1)·(1+1) = 4: the
	// product-of-sums formula (Section 3.3) is an upper bound on the two
	// true embeddings because it ignores cross-branch NTE consistency.
	if got := ix.ClusterCardinality(gen.Fig1V(1)); got != 4 {
		t.Fatalf("cardinality(u1, v1) = %d, want 4", got)
	}
	if got := ix.TotalCardinality(); got != 4 {
		t.Fatalf("total cardinality = %d, want 4", got)
	}
}

func TestFig1FilterCounters(t *testing.T) {
	st := &stats.Counters{}
	buildFig1(t, ceci.Options{Stats: st})
	if st.FilteredNLC.Load() == 0 {
		t.Error("expected NLC filter activity (v8 must be pruned)")
	}
	if st.FilteredRefine.Load() == 0 {
		t.Error("expected refinement prunes (v7 must be pruned)")
	}
	if st.IndexBytes.Load() <= 0 {
		t.Error("index bytes not recorded")
	}
}

func TestIndexSizeAccounting(t *testing.T) {
	ix, _ := buildFig1(t, ceci.Options{})
	if ix.SizeBytes() != 8*ix.UniqueCandidateEdges() {
		t.Fatalf("SizeBytes %d != 8*UniqueCandidateEdges %d", ix.SizeBytes(), ix.UniqueCandidateEdges())
	}
	if ix.UniqueCandidateEdges() > ix.CandidateEdges() {
		t.Fatalf("unique edges %d exceed stored pairs %d", ix.UniqueCandidateEdges(), ix.CandidateEdges())
	}
	if ix.PhysicalBytes() <= 0 {
		t.Fatal("physical bytes not positive")
	}
	if ix.TheoreticalBytes() <= ix.SizeBytes() {
		t.Fatalf("theoretical %d should exceed actual %d on this fixture",
			ix.TheoreticalBytes(), ix.SizeBytes())
	}
}

// TestCompleteness is the paper's correctness property (Section 3.5): no
// true embedding is lost by filtering and refinement. For every embedding
// found by the oracle, each (parent-match, child-match) pair must be
// present in the corresponding TE/NTE candidate structure.
func TestCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		data := randomGraph(rng, 14, 28, 3)
		query, err := gen.DFSQuery(data, 2+rng.Intn(4), rng)
		if err != nil {
			continue
		}
		tree, err := order.Preprocess(data, query, order.DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ix := ceci.Build(data, tree, ceci.Options{})
		embs := reference.FindAll(data, query, reference.Options{})
		for _, emb := range embs {
			checkEmbeddingInIndex(t, ix, tree, emb)
		}
	}
}

func checkEmbeddingInIndex(t *testing.T, ix *ceci.Index, tree *order.QueryTree, emb []graph.VertexID) {
	t.Helper()
	for _, u := range tree.Order[1:] {
		up := graph.VertexID(tree.Parent[u])
		vals := ix.Nodes[u].TE.Get(emb[up])
		if !contains(vals, emb[u]) {
			t.Fatalf("completeness violated: embedding %v, TE(u%d)[%d] = %v misses %d",
				emb, u, emb[up], vals, emb[u])
		}
		for j, un := range tree.NTEParents[u] {
			vals := ix.Nodes[u].NTE[j].Get(emb[un])
			if !contains(vals, emb[u]) {
				t.Fatalf("completeness violated: embedding %v, NTE(u%d)[%d] = %v misses %d",
					emb, u, emb[un], vals, emb[u])
			}
		}
	}
}

// TestCardinalityUpperBound: the refined cluster cardinality must bound
// the number of embeddings in that cluster from above (Section 4.3).
func TestCardinalityUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		data := randomGraph(rng, 12, 30, 2)
		query, err := gen.DFSQuery(data, 3+rng.Intn(3), rng)
		if err != nil {
			continue
		}
		tree, err := order.Preprocess(data, query, order.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		ix := ceci.Build(data, tree, ceci.Options{})
		// Count raw embeddings (no symmetry breaking) per pivot.
		perPivot := map[graph.VertexID]int64{}
		reference.ForEach(data, query, reference.Options{}, func(emb []graph.VertexID) bool {
			perPivot[emb[tree.Root]]++
			return true
		})
		for pivot, n := range perPivot {
			if card := ix.ClusterCardinality(pivot); card < n {
				t.Fatalf("trial %d: cluster %d cardinality %d < true embeddings %d",
					trial, pivot, card, n)
			}
		}
	}
}

// TestRefineRoundsMonotone: extra refinement rounds never grow the index.
func TestRefineRoundsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := randomGraph(rng, 40, 140, 3)
	query, err := gen.DFSQuery(data, 5, rng)
	if err != nil {
		t.Skip("no query region")
	}
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	for rounds := 1; rounds <= 3; rounds++ {
		ix := ceci.Build(data, tree, ceci.Options{RefineRounds: rounds})
		size := ix.CandidateEdges()
		if prev >= 0 && size > prev {
			t.Fatalf("rounds=%d grew index: %d > %d", rounds, size, prev)
		}
		prev = size
	}
}

func TestSkipRefinementKeepsCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := randomGraph(rng, 14, 30, 2)
	query, err := gen.DFSQuery(data, 4, rng)
	if err != nil {
		t.Skip("no query region")
	}
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ix := ceci.Build(data, tree, ceci.Options{SkipRefinement: true})
	for _, emb := range reference.FindAll(data, query, reference.Options{}) {
		checkEmbeddingInIndex(t, ix, tree, emb)
	}
	// Optimistic cardinalities must still be positive for live pivots.
	for _, p := range ix.Pivots() {
		if ix.ClusterCardinality(p) < 0 {
			t.Fatalf("negative cardinality for pivot %d", p)
		}
	}
}

func TestBuildParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := randomGraph(rng, 300, 1500, 4)
	query, err := gen.DFSQuery(data, 5, rng)
	if err != nil {
		t.Skip("no query region")
	}
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	serial := ceci.Build(data, tree, ceci.Options{Workers: 1})
	parallel := ceci.Build(data, tree, ceci.Options{Workers: 8})
	if serial.CandidateEdges() != parallel.CandidateEdges() {
		t.Fatalf("parallel build diverged: %d vs %d edges",
			parallel.CandidateEdges(), serial.CandidateEdges())
	}
	if !eqIDs(serial.Pivots(), parallel.Pivots()) {
		t.Fatalf("pivots diverged: %v vs %v", parallel.Pivots(), serial.Pivots())
	}
}

// randomGraph builds a connected-ish random labeled graph for fuzz-style
// cross-validation.
func randomGraph(rng *rand.Rand, n, m, labels int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(labels)))
	}
	// A random spanning path keeps most of the graph connected so DFS
	// queries can grow.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.VertexID(perm[i-1]), graph.VertexID(perm[i]))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return b.MustBuild()
}

func contains(vs []graph.VertexID, x graph.VertexID) bool {
	i := sort.Search(len(vs), func(i int) bool { return vs[i] >= x })
	return i < len(vs) && vs[i] == x
}
