// Package ceci implements the paper's core contribution: the Compact
// Embedding Cluster Index. The index logically decomposes the data graph
// into embedding clusters — one per pivot (data vertex matchable to the
// root query vertex) — and stores, per query vertex, the tree-edge and
// non-tree-edge candidate adjacency needed to enumerate embeddings purely
// by sorted-set intersection (Sections 3–4).
package ceci

import (
	"math"
	"sync/atomic"

	"ceci/internal/graph"
	"ceci/internal/obs"
	"ceci/internal/order"
	"ceci/internal/prof"
	"ceci/internal/stats"
)

// CardSaturation caps cardinalities to avoid int64 overflow on dense
// graphs; any value at or above this is "effectively infinite" workload.
const CardSaturation = math.MaxInt64 / 4

// Node holds the per-query-vertex candidate structures.
type Node struct {
	// TE is keyed by the candidates of the query-tree parent; empty for
	// the root (whose candidates are the pivots).
	TE CandMap
	// NTE[j] corresponds to the j-th non-tree edge arriving at this query
	// vertex from Tree.NTEParents[u][j], keyed by that parent's candidates.
	NTE []CandMap
	// Cands is the sorted union candidate set of this query vertex.
	Cands []graph.VertexID
	// Card maps candidate -> cardinality (Section 3.3): the maximum
	// number of embeddings obtainable by matching this candidate here.
	// Populated by Refine; zero-cardinality candidates are deleted.
	// Build-time only: Freeze compacts it into cardVals and nils it.
	Card map[graph.VertexID]int64
	// cardVals is the frozen cardinality column, parallel to Cands.
	cardVals []int64
}

// CardOf returns the refined cardinality of candidate v at this node
// (0 when v is not a candidate). Works in both the mutable and the
// frozen representation.
func (n *Node) CardOf(v graph.VertexID) int64 {
	if n.cardVals != nil {
		cands := n.Cands
		lo, hi := 0, len(cands)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if cands[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(cands) && cands[lo] == v {
			return n.cardVals[lo]
		}
		return 0
	}
	return n.Card[v]
}

// freeze compacts the node's build-time structures: TE and every NTE map
// share one arena sized to the node's candidate-edge total, and the Card
// map collapses into a cardinality column parallel to Cands. Nodes whose
// arena would overflow the 32-bit offsets stay mutable — every accessor
// handles both modes, so this is a (purely theoretical, >4G candidate
// edges per query vertex) graceful degradation, not an error.
func (n *Node) freeze() {
	total := n.TE.CandidateEdges()
	for j := range n.NTE {
		total += n.NTE[j].CandidateEdges()
	}
	if total <= math.MaxUint32 {
		arena := make([]graph.VertexID, 0, total)
		arena = n.TE.freezeInto(arena)
		for j := range n.NTE {
			arena = n.NTE[j].freezeInto(arena)
		}
	}
	if n.cardVals == nil {
		n.cardVals = make([]int64, len(n.Cands))
		for i, v := range n.Cands {
			n.cardVals[i] = n.Card[v]
		}
		n.Card = nil
	}
}

// flatBytes is the node's physical frozen footprint: candidate and
// cardinality columns plus the flat TE/NTE structures.
func (n *Node) flatBytes() int64 {
	b := int64(len(n.Cands))*4 + int64(len(n.cardVals))*8
	b += n.TE.flatBytes()
	for j := range n.NTE {
		b += n.NTE[j].flatBytes()
	}
	return b
}

// Index is the CECI for one (data, query) pair.
type Index struct {
	Data  *graph.Graph
	Tree  *order.QueryTree
	Nodes []Node

	// nteChildIdx[u] lists, for each query vertex u, the (child, slot)
	// pairs such that Nodes[child].NTE[slot] is keyed by u's candidates.
	nteChildIdx [][]nteRef

	// frozen is set once Freeze has compacted the build-time structures
	// into the flat arena-backed form.
	frozen bool
	// bcancel, when non-nil, is flipped by BuildCtx's context watcher;
	// construction loops poll it and abort. Build-time only.
	bcancel *atomic.Bool
	// scratch holds the per-worker build buffers (private bins, §3.6);
	// released by Freeze.
	scratch []buildScratch
	// valbuf is the reusable frontier-expansion output table.
	valbuf [][]graph.VertexID

	// Label-pair prune state (l2Match-style neighboring-label index),
	// built by Freeze when Options.LabelPairPrune is on and the graph is
	// labeled. nbrSig[v] is the neighbor-label bloom of data vertex v
	// (shared graph storage); reqMask[u] the bloom of labels required by
	// query vertex u's later-matched query neighbors. A candidate v for u
	// with nbrSig[v] ⊉ reqMask[u] cannot extend any partial embedding
	// (its neighborhood provably lacks a needed label) and is dropped
	// before any intersection kernel runs.
	nbrSig  []uint64
	reqMask []uint64

	// ntePlan[u] records how CandidatesFor may cache intersections at u's
	// depth across the sibling loop of u's predecessor in the matching
	// order. Built at Freeze() time; nil until then (unfrozen indexes take
	// the direct path).
	ntePlan []cachePlan

	opts Options
}

// cachePlan splits the intersection inputs of one query vertex by
// volatility. The matching order is static, so the vertex matched
// immediately before u — the one whose sibling loop drives consecutive
// CandidatesFor(u, ...) calls — is known at freeze time. Any input list
// keyed by that vertex ("volatile") changes on every call; every other
// input is keyed by an ancestor assignment that stays fixed across the
// whole loop ("stable") and can be intersected once and reused. At most
// one input is volatile: the TE base list when u's tree parent is the
// predecessor, or a single NTE list when that edge is non-tree.
type cachePlan struct {
	// use enables the stable-cache path: at least two inputs are stable,
	// so the cached intersection actually precomputes work. With fewer,
	// the cache would hold a raw input list and the fixed pairing order
	// would forfeit IntersectK's smallest-first ordering (measured 2x
	// slower on the clique queries).
	use bool
	// volBase marks the TE base list volatile (tree parent == predecessor).
	volBase bool
	// volNTE is the volatile NTE slot, or -1.
	volNTE int
}

// Freeze compacts the mutable build-time structures into the flat
// arena-backed representation used by the steady state — CandidatesFor,
// VerifyNTE, cardinality lookups, FGD decomposition, and serialization
// all read the frozen form. Build calls it automatically after
// refinement; it is idempotent. After Freeze the index is immutable.
func (ix *Index) Freeze() {
	if ix.frozen {
		return
	}
	ix.frozen = true
	ix.scratch = nil // release the pooled build buffers
	ix.valbuf = nil
	ix.bcancel = nil // the build completed; drop the watcher flag
	for u := range ix.Nodes {
		ix.Nodes[u].freeze()
	}
	if ix.opts.LabelPairPrune && ix.Data.NumLabels() > 1 {
		ix.buildLabelPrune()
	}
	ix.buildCachePlan()
}

// buildCachePlan computes the per-vertex volatility split CandidatesFor
// uses to cache stable intersections across sibling loops (the
// embedding-cluster observation of Section 4.1 applied one level up:
// consecutive calls at the same depth share every ancestor assignment
// except the predecessor's).
func (ix *Index) buildCachePlan() {
	tree := ix.Tree
	ix.ntePlan = make([]cachePlan, tree.NumVertices())
	for i := 1; i < len(tree.Order); i++ {
		u, prev := tree.Order[i], tree.Order[i-1]
		p := cachePlan{volNTE: -1}
		if graph.VertexID(tree.Parent[u]) == prev {
			p.volBase = true
		}
		for j, un := range tree.NTEParents[u] {
			if un == prev {
				p.volNTE = j
				break
			}
		}
		stable := 1 + len(tree.NTEParents[u])
		if p.volBase {
			stable--
		}
		if p.volNTE >= 0 {
			stable--
		}
		p.use = len(tree.NTEParents[u]) > 0 && stable >= 2
		ix.ntePlan[u] = p
	}
}

// buildLabelPrune materializes the label-pair prune masks. The
// per-data-vertex blooms are computed once per graph (lazily, shared
// across indexes); only the per-query reqMask is built here. A query
// neighbor matched later is either a tree child of u or carries a
// non-tree edge keyed by u's match, so a candidate missing one of those
// labels in its neighborhood can only lead to empty lookups deeper in
// the search — pruning it changes no embedding, which
// TestLabelPairPruneEquivalence locks in.
func (ix *Index) buildLabelPrune() {
	ix.nbrSig = ix.Data.NeighborLabelBlooms()
	tree := ix.Tree
	q := tree.Query
	pos := make([]int, tree.NumVertices())
	for i, u := range tree.Order {
		pos[u] = i
	}
	ix.reqMask = make([]uint64, tree.NumVertices())
	for u := range ix.reqMask {
		var req uint64
		for _, w := range q.Neighbors(graph.VertexID(u)) {
			if pos[w] > pos[u] {
				for _, l := range q.Labels(w) {
					req |= 1 << (l & 63)
				}
			}
		}
		ix.reqMask[u] = req
	}
}

// Frozen reports whether Freeze has run.
func (ix *Index) Frozen() bool { return ix.frozen }

type nteRef struct {
	child graph.VertexID
	slot  int
}

// Options configures index construction.
type Options struct {
	// Workers bounds build parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// SkipNLCFilter disables the neighborhood-label-count filter
	// (ablation for Figure 19).
	SkipNLCFilter bool
	// SkipDegreeFilter disables the degree filter (ablation).
	SkipDegreeFilter bool
	// SkipRefinement disables the reverse-BFS refinement pass (ablation
	// for Figure 19). Cardinalities are then set optimistically from TE
	// list sizes so workload balancing still functions.
	SkipRefinement bool
	// RefineRounds is the number of reverse-BFS refinement passes
	// (default 1, matching the paper; extra rounds prune strictly more).
	RefineRounds int
	// LabelPairPrune enables the l2Match-style neighboring-label prune at
	// enumeration time: candidates whose data neighborhood provably lacks
	// a label required by the query vertex's still-unmatched neighbors
	// are dropped before any intersection kernel runs. Always safe (bloom
	// collisions only keep candidates, never drop matches). Off by
	// default because the NLC filter's count-coverage subsumes it on
	// standard builds; it recovers most of that pruning under
	// SkipNLCFilter and costs one AND-compare per base candidate.
	LabelPairPrune bool
	// Pivots, when non-nil, restricts the index to the given embedding
	// clusters instead of deriving pivots from the root's candidate
	// filters. Used by the distributed runtime (Section 5), where each
	// machine builds a CECI over its assigned pivot partition. Callers
	// must pass vertices that satisfy the root filters; the build sorts
	// and deduplicates the list, so any order is accepted.
	Pivots []graph.VertexID
	// Stats receives instrumentation counters (may be nil). During the
	// build, every adjacency-list fetch increments Stats.RemoteReads so
	// the shared-storage cost model can charge IO per access.
	Stats *stats.Counters
	// Profile, when non-nil, receives the EXPLAIN ANALYZE accounting:
	// the per-query-vertex filter funnel, refinement/cascade deletions,
	// final TE/NTE shape, and enumeration-time intersection costs.
	Profile *prof.Collector
	// Tracer, when non-nil, records a "build" span with "expand" and
	// per-round "refine" children.
	Tracer *obs.Tracer

	// skipFreeze leaves the index in the mutable build-time
	// representation. Test-only: the mutable-vs-frozen equivalence
	// property tests need both forms of the same build.
	skipFreeze bool
}

// Pivots returns the cluster pivots: the surviving candidates of the root
// query vertex. Each pivot identifies one embedding cluster.
func (ix *Index) Pivots() []graph.VertexID { return ix.Nodes[ix.Tree.Root].Cands }

// ClusterCardinality returns the refined cardinality of pivot's embedding
// cluster — the upper bound on embeddings rooted at pivot (Section 4.3).
func (ix *Index) ClusterCardinality(pivot graph.VertexID) int64 {
	return ix.Nodes[ix.Tree.Root].CardOf(pivot)
}

// TotalCardinality sums cluster cardinalities over all pivots.
func (ix *Index) TotalCardinality() int64 {
	var total int64
	for _, p := range ix.Pivots() {
		total = satAdd(total, ix.ClusterCardinality(p))
	}
	return total
}

// CandidateEdges counts all (key, value) pairs across TE and NTE
// structures — the paper's Table 2 unit (8 bytes per candidate edge).
func (ix *Index) CandidateEdges() int64 {
	var n int64
	for u := range ix.Nodes {
		n += ix.Nodes[u].TE.CandidateEdges()
		for j := range ix.Nodes[u].NTE {
			n += ix.Nodes[u].NTE[j].CandidateEdges()
		}
	}
	return n
}

// UniqueCandidateEdges counts candidate edges the way the paper's Table 2
// does: "TE_Candidates and NTE_Candidates only store candidate edges
// once". The in-memory structure keeps both directions of an undirected
// candidate edge (key a value b, and key b value a) so that lookups are
// keyed by whichever endpoint got matched first; this accessor
// deduplicates them per query edge.
func (ix *Index) UniqueCandidateEdges() int64 {
	var n int64
	count := func(m *CandMap) {
		m.ForEach(func(key graph.VertexID, vals []graph.VertexID) {
			for _, v := range vals {
				if key < v {
					n++
				} else {
					// Count (v, key) only when the mirrored direction is
					// absent from this map.
					rev := m.Get(v)
					if !containsSorted(rev, key) {
						n++
					}
				}
			}
		})
	}
	for u := range ix.Nodes {
		count(&ix.Nodes[u].TE)
		for j := range ix.Nodes[u].NTE {
			count(&ix.Nodes[u].NTE[j])
		}
	}
	return n
}

func containsSorted(vs []graph.VertexID, x graph.VertexID) bool {
	lo, hi := 0, len(vs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if vs[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(vs) && vs[lo] == x
}

// SizeBytes reports the index size using the paper's 8-bytes-per-edge
// accounting over unique candidate edges, and TheoreticalBytes the
// O(|Eq|·|Eg|) worst case, enabling Table 2's "% of space saved" column.
func (ix *Index) SizeBytes() int64 { return 8 * ix.UniqueCandidateEdges() }

// PhysicalBytes reports the actual in-memory footprint. For a frozen
// index this is exact: 4 bytes per key, 4 per offset, 4 per arena entry
// (plus the candidate and cardinality columns) — the flat layout DESIGN.md
// maps to the paper's Table 2 byte model. For a mutable index it is the
// pre-freeze estimate of 4 bytes per stored value plus 12 per key (key +
// slice header amortized).
func (ix *Index) PhysicalBytes() int64 {
	if ix.frozen {
		var n int64
		for u := range ix.Nodes {
			n += ix.Nodes[u].flatBytes()
		}
		return n
	}
	var n int64
	add := func(m *CandMap) {
		n += int64(m.Len())*12 + m.CandidateEdges()*4
	}
	for u := range ix.Nodes {
		add(&ix.Nodes[u].TE)
		for j := range ix.Nodes[u].NTE {
			add(&ix.Nodes[u].NTE[j])
		}
	}
	return n
}

// TheoreticalBytes returns the worst-case index footprint 8·|Eq|·|Eg|.
func (ix *Index) TheoreticalBytes() int64 {
	return 8 * int64(ix.Tree.Query.NumEdges()) * int64(ix.Data.NumEdges())
}

func satAdd(a, b int64) int64 {
	s := a + b
	if s < a || s > CardSaturation {
		return CardSaturation
	}
	return s
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > CardSaturation/b {
		return CardSaturation
	}
	return a * b
}
