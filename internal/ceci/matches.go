package ceci

import (
	"ceci/internal/graph"
	"ceci/internal/setops"
)

// MatchScratch holds per-depth reusable buffers for CandidatesFor. Each
// enumeration worker keeps one scratch per backtracking depth so results
// remain valid while deeper levels recurse.
//
// The scratch also carries the cached stable intersection for its depth
// (see cachePlan): consecutive CandidatesFor calls at one depth differ
// only in the predecessor's assignment, so the intersection of every
// input list keyed by an older ancestor is computed once per distinct
// ancestor assignment and reused across the whole sibling loop. This is
// the embedding-cluster observation of Section 4.1 applied one level up.
type MatchScratch struct {
	S     setops.Scratch
	lists [][]uint32
	// prune receives the label-pair-prune survivors of the base list.
	prune []uint32
	// last is the kernel-stats watermark: the delta since the previous
	// drain is what the current CandidatesFor call charged.
	last setops.KernelStats

	// Stable-intersection cache, valid until the stable ancestor
	// assignments change or ResetUnitCache is called.
	nteKeys []graph.VertexID // stable assignments the cache was built for
	nteOK   bool
	nteRes  []uint32 // cached ∩ of the stable lists (aliases S's buffers)
	out     []uint32 // result buffer for the volatile per-sibling step
}

// KernelTotals returns the cumulative per-kernel work recorded on this
// scratch (all CandidatesFor calls at its depth). The enumeration ledger
// diffs consecutive reads at work-unit boundaries.
func (sc *MatchScratch) KernelTotals() setops.KernelStats { return sc.S.Stats }

// FootprintBytes returns the scratch's allocated backing size: the
// setops buffers plus this package's per-depth slices. nteRes aliases
// the setops buffers and out, so it is not counted separately.
func (sc *MatchScratch) FootprintBytes() int64 {
	return sc.S.FootprintBytes() +
		int64(cap(sc.lists))*24 + // slice headers
		int64(cap(sc.prune))*4 +
		int64(cap(sc.nteKeys))*4 +
		int64(cap(sc.out))*4
}

// ResetUnitCache invalidates the cached stable intersection. Enumeration
// workers call it at work-unit boundaries: the cache would remain
// correct across units (keys are compared on every lookup), but resets
// make the rebuild counts — and therefore the per-kernel profile — a
// deterministic function of the unit set rather than of which worker
// happened to run consecutive units.
func (sc *MatchScratch) ResetUnitCache() { sc.nteOK = false }

// CandidatesFor returns the matching nodes for query vertex u given the
// partial embedding m (indexed by query vertex ID): the intersection of
// u's TE candidates under the matched parent with each NTE candidate list
// under the matched non-tree parents (Section 4). The parent and every
// NTE parent of u must already be assigned in m. When the label-pair
// prune is enabled, base candidates whose neighborhood provably lacks a
// label required by u's later-matched query neighbors are dropped first.
//
// The returned slice may alias index storage or scratch buffers: it is
// valid only until the next CandidatesFor call with the same scratch, and
// must not be modified.
func (ix *Index) CandidatesFor(u graph.VertexID, m []graph.VertexID, sc *MatchScratch) []graph.VertexID {
	tree := ix.Tree
	node := &ix.Nodes[u]
	base := node.TE.Get(m[tree.Parent[u]])
	if len(base) == 0 {
		return nil
	}
	var pruned int64
	if sigs := ix.nbrSig; sigs != nil {
		if req := ix.reqMask[u]; req != 0 {
			kept := sc.prune[:0]
			for _, v := range base {
				if sigs[v]&req == req {
					kept = append(kept, v)
				}
			}
			pruned = int64(len(base) - len(kept))
			sc.prune = kept
			base = kept
			if len(base) == 0 {
				if p := ix.opts.Profile; p != nil {
					vc := p.Vertex(int(u))
					vc.EnumLookups.Add(1)
					vc.EnumLabelPruned.Add(pruned)
				}
				return nil
			}
		}
	}
	if len(node.NTE) == 0 {
		if p := ix.opts.Profile; p != nil {
			vc := p.Vertex(int(u))
			vc.EnumLookups.Add(1)
			vc.EnumOutput.Add(int64(len(base)))
			if pruned != 0 {
				vc.EnumLabelPruned.Add(pruned)
			}
			p.ObserveEnumOutput(len(base))
		}
		return base
	}

	nparents := tree.NTEParents[u]
	var plan cachePlan
	if ix.ntePlan != nil {
		plan = ix.ntePlan[u]
	}
	if !plan.use {
		// Fewer than two stable inputs (or an unfrozen index): the cache
		// would precompute nothing, and its fixed pairing order would
		// forfeit IntersectK's smallest-first ordering (measured 2x
		// slower on the clique queries). Direct k-way intersection.
		lists := sc.lists[:0]
		lists = append(lists, base)
		for j, un := range nparents {
			l := node.NTE[j].Get(m[un])
			if len(l) == 0 {
				sc.lists = lists
				if p := ix.opts.Profile; p != nil {
					vc := p.Vertex(int(u))
					vc.EnumLookups.Add(1)
					if pruned != 0 {
						vc.EnumLabelPruned.Add(pruned)
					}
				}
				return nil
			}
			lists = append(lists, l)
		}
		sc.lists = lists
		if ix.opts.Stats != nil {
			ix.opts.Stats.IntersectionOps.Add(int64(len(lists) - 1))
		}
		result := setops.IntersectK(&sc.S, lists)
		if p := ix.opts.Profile; p != nil {
			var cmp int64
			for _, l := range lists {
				cmp += int64(len(l))
			}
			vc := p.Vertex(int(u))
			vc.EnumLookups.Add(1)
			vc.EnumIntersections.Add(int64(len(lists) - 1))
			vc.EnumComparisons.Add(cmp)
			vc.EnumOutput.Add(int64(len(result)))
			if pruned != 0 {
				vc.EnumLabelPruned.Add(pruned)
			}
			// Drain the per-kernel work recorded since the last drain on
			// this scratch into the profile's atomics.
			vc.AddKernelStats(sc.S.Stats.Sub(sc.last))
			sc.last = sc.S.Stats
			p.ObserveEnumOutput(len(result))
		}
		return result
	}

	// Stable-cache path. The cache is keyed by every stable assignment:
	// the tree parent's (unless the base list is the volatile input) and
	// each non-volatile NTE parent's.
	hit := sc.nteOK
	if hit {
		ki := 0
		if !plan.volBase {
			if sc.nteKeys[0] != m[tree.Parent[u]] {
				hit = false
			}
			ki = 1
		}
		if hit {
			for j, un := range nparents {
				if j == plan.volNTE {
					continue
				}
				if sc.nteKeys[ki] != m[un] {
					hit = false
					break
				}
				ki++
			}
		}
	}
	var rebuildCmp, rebuilt int64
	if !hit {
		// Record the full key set first: a rebuild that stops early on an
		// empty list must still leave a complete key for the next lookup.
		sc.nteKeys = sc.nteKeys[:0]
		if !plan.volBase {
			sc.nteKeys = append(sc.nteKeys, m[tree.Parent[u]])
		}
		for j, un := range nparents {
			if j != plan.volNTE {
				sc.nteKeys = append(sc.nteKeys, m[un])
			}
		}
		sc.nteOK = true
		lists := sc.lists[:0]
		if !plan.volBase {
			lists = append(lists, base)
			rebuildCmp += int64(len(base))
		}
		empty := false
		for j, un := range nparents {
			if j == plan.volNTE {
				continue
			}
			l := node.NTE[j].Get(m[un])
			if len(l) == 0 {
				empty = true
				break
			}
			rebuildCmp += int64(len(l))
			lists = append(lists, l)
		}
		sc.lists = lists
		if empty {
			sc.nteRes = nil
		} else {
			rebuilt = int64(len(lists) - 1)
			if ix.opts.Stats != nil {
				ix.opts.Stats.IntersectionOps.Add(rebuilt)
			}
			sc.nteRes = setops.IntersectK(&sc.S, lists)
		}
	}
	if len(sc.nteRes) == 0 {
		// Cached-empty: every sibling under these stable assignments
		// fails the same way.
		if p := ix.opts.Profile; p != nil {
			vc := p.Vertex(int(u))
			vc.EnumLookups.Add(1)
			vc.EnumIntersections.Add(rebuilt)
			vc.EnumComparisons.Add(rebuildCmp)
			if pruned != 0 {
				vc.EnumLabelPruned.Add(pruned)
			}
			vc.AddKernelStats(sc.S.Stats.Sub(sc.last))
			sc.last = sc.S.Stats
		}
		return nil
	}

	// Volatile step: intersect the cached stable result with the one
	// input keyed by the predecessor — the TE base list, a single NTE
	// list, or nothing at all (the cached result is the answer).
	var result []uint32
	var volCmp int64
	intersections := rebuilt
	switch {
	case plan.volBase:
		volCmp = int64(len(sc.nteRes)) + int64(len(base))
		result = setops.IntersectWith(setops.ChooseKernel(sc.nteRes, base), sc.out[:0], sc.nteRes, base, &sc.S)
		sc.out = result
		intersections++
		if ix.opts.Stats != nil {
			ix.opts.Stats.IntersectionOps.Add(1)
		}
	case plan.volNTE >= 0:
		lv := node.NTE[plan.volNTE].Get(m[nparents[plan.volNTE]])
		volCmp = int64(len(sc.nteRes)) + int64(len(lv))
		if len(lv) == 0 {
			result = nil
		} else {
			result = setops.IntersectWith(setops.ChooseKernel(sc.nteRes, lv), sc.out[:0], sc.nteRes, lv, &sc.S)
			sc.out = result
			intersections++
			if ix.opts.Stats != nil {
				ix.opts.Stats.IntersectionOps.Add(1)
			}
		}
	default:
		result = sc.nteRes
	}
	if p := ix.opts.Profile; p != nil {
		vc := p.Vertex(int(u))
		vc.EnumLookups.Add(1)
		vc.EnumIntersections.Add(intersections)
		vc.EnumComparisons.Add(rebuildCmp + volCmp)
		vc.EnumOutput.Add(int64(len(result)))
		if pruned != 0 {
			vc.EnumLabelPruned.Add(pruned)
		}
		// Drain the per-kernel work recorded since the last drain on
		// this scratch into the profile's atomics.
		vc.AddKernelStats(sc.S.Stats.Sub(sc.last))
		sc.last = sc.S.Stats
		p.ObserveEnumOutput(len(result))
	}
	return result
}

// CandidatesForEdgeVerify is the ablation variant (Section 4.1, Lemma 2):
// it returns only the TE candidates and leaves non-tree edges to be
// verified by adjacency probes, the way TurboIso/CFLMatch-style systems
// operate. VerifyNTE performs those probes.
func (ix *Index) CandidatesForEdgeVerify(u graph.VertexID, m []graph.VertexID) []graph.VertexID {
	return ix.Nodes[u].TE.Get(m[ix.Tree.Parent[u]])
}

// VerifyNTE checks v against every non-tree edge of u by binary-search
// adjacency probes on the data graph.
func (ix *Index) VerifyNTE(u graph.VertexID, v graph.VertexID, m []graph.VertexID) bool {
	for _, un := range ix.Tree.NTEParents[u] {
		if ix.opts.Stats != nil {
			ix.opts.Stats.EdgeVerifications.Add(1)
		}
		if !ix.Data.HasEdge(m[un], v) {
			return false
		}
	}
	return true
}
