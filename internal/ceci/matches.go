package ceci

import (
	"ceci/internal/graph"
	"ceci/internal/setops"
)

// MatchScratch holds per-depth reusable buffers for CandidatesFor. Each
// enumeration worker keeps one scratch per backtracking depth so results
// remain valid while deeper levels recurse.
type MatchScratch struct {
	S     setops.Scratch
	lists [][]uint32
}

// CandidatesFor returns the matching nodes for query vertex u given the
// partial embedding m (indexed by query vertex ID): the intersection of
// u's TE candidates under the matched parent with each NTE candidate list
// under the matched non-tree parents (Section 4). The parent and every
// NTE parent of u must already be assigned in m.
//
// The returned slice may alias index storage or scratch buffers: it is
// valid only until the next CandidatesFor call with the same scratch, and
// must not be modified.
func (ix *Index) CandidatesFor(u graph.VertexID, m []graph.VertexID, sc *MatchScratch) []graph.VertexID {
	tree := ix.Tree
	node := &ix.Nodes[u]
	base := node.TE.Get(m[tree.Parent[u]])
	if len(base) == 0 {
		return nil
	}
	if len(node.NTE) == 0 {
		if p := ix.opts.Profile; p != nil {
			vc := p.Vertex(int(u))
			vc.EnumLookups.Add(1)
			vc.EnumOutput.Add(int64(len(base)))
			p.ObserveEnumOutput(len(base))
		}
		return base
	}
	lists := sc.lists[:0]
	lists = append(lists, base)
	for j, un := range tree.NTEParents[u] {
		l := node.NTE[j].Get(m[un])
		if len(l) == 0 {
			sc.lists = lists
			if p := ix.opts.Profile; p != nil {
				p.Vertex(int(u)).EnumLookups.Add(1)
			}
			return nil
		}
		lists = append(lists, l)
	}
	sc.lists = lists
	if ix.opts.Stats != nil {
		ix.opts.Stats.IntersectionOps.Add(int64(len(lists) - 1))
	}
	result := setops.IntersectK(&sc.S, lists)
	if p := ix.opts.Profile; p != nil {
		var cmp int64
		for _, l := range lists {
			cmp += int64(len(l))
		}
		vc := p.Vertex(int(u))
		vc.EnumLookups.Add(1)
		vc.EnumIntersections.Add(int64(len(lists) - 1))
		vc.EnumComparisons.Add(cmp)
		vc.EnumOutput.Add(int64(len(result)))
		p.ObserveEnumOutput(len(result))
	}
	return result
}

// CandidatesForEdgeVerify is the ablation variant (Section 4.1, Lemma 2):
// it returns only the TE candidates and leaves non-tree edges to be
// verified by adjacency probes, the way TurboIso/CFLMatch-style systems
// operate. VerifyNTE performs those probes.
func (ix *Index) CandidatesForEdgeVerify(u graph.VertexID, m []graph.VertexID) []graph.VertexID {
	return ix.Nodes[u].TE.Get(m[ix.Tree.Parent[u]])
}

// VerifyNTE checks v against every non-tree edge of u by binary-search
// adjacency probes on the data graph.
func (ix *Index) VerifyNTE(u graph.VertexID, v graph.VertexID, m []graph.VertexID) bool {
	for _, un := range ix.Tree.NTEParents[u] {
		if ix.opts.Stats != nil {
			ix.opts.Stats.EdgeVerifications.Add(1)
		}
		if !ix.Data.HasEdge(m[un], v) {
			return false
		}
	}
	return true
}
