package ceci

import (
	"math/rand"
	"testing"

	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
)

// TestCachePlanVolatilitySplit re-derives the stable/volatile split from
// first principles for a spread of query shapes and checks Freeze's plan
// against it: the volatile input is exactly the one keyed by the
// predecessor in the matching order, and the cache only engages when at
// least two inputs are stable.
func TestCachePlanVolatilitySplit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	queries := []*graph.Graph{gen.QG1(), gen.QG2(), gen.QG3(), gen.QG4()}
	for trial := 0; trial < 20; trial++ {
		data := gen.Kronecker(7, 6+rng.Intn(4), 1)
		q := queries[trial%len(queries)]
		tree, err := order.Preprocess(data, q, order.DefaultOptions())
		if err != nil {
			continue
		}
		ix := Build(data, tree, Options{})
		if ix.ntePlan == nil {
			t.Fatal("frozen index has no cache plan")
		}
		for i := 1; i < len(tree.Order); i++ {
			u, prev := tree.Order[i], tree.Order[i-1]
			p := ix.ntePlan[u]
			wantVolBase := graph.VertexID(tree.Parent[u]) == prev
			if p.volBase != wantVolBase {
				t.Fatalf("trial %d u=%d: volBase=%v want %v", trial, u, p.volBase, wantVolBase)
			}
			wantVolNTE := -1
			for j, un := range tree.NTEParents[u] {
				if un == prev {
					wantVolNTE = j
					break
				}
			}
			if p.volNTE != wantVolNTE {
				t.Fatalf("trial %d u=%d: volNTE=%d want %d", trial, u, p.volNTE, wantVolNTE)
			}
			stable := 1 + len(tree.NTEParents[u])
			if wantVolBase {
				stable--
			}
			if wantVolNTE >= 0 {
				stable--
			}
			wantUse := len(tree.NTEParents[u]) > 0 && stable >= 2
			if p.use != wantUse {
				t.Fatalf("trial %d u=%d: use=%v want %v (stable=%d, nte=%d)",
					trial, u, p.use, wantUse, stable, len(tree.NTEParents[u]))
			}
		}
	}
}

// TestCachePlanFiresOnClique: the 4-clique's BFS star tree gives the
// deepest vertex a stable TE base (keyed by the root) plus one stable
// NTE list — the configuration the sibling-loop cache exists for. Guard
// against an orderer change silently turning the cache into dead code.
func TestCachePlanFiresOnClique(t *testing.T) {
	data := gen.Kronecker(8, 8, 1)
	tree, err := order.Preprocess(data, gen.QG3(), order.DefaultOptions())
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	ix := Build(data, tree, Options{})
	used := false
	for _, p := range ix.ntePlan {
		used = used || p.use
	}
	if !used {
		t.Fatal("no vertex uses the stable-intersection cache on a 4-clique query")
	}
}

// TestStableCacheEquivalence: enumerating through the stable-intersection
// cache must yield candidate-for-candidate identical results to the
// direct k-way path (forced by clearing the plan). Covers hit, miss, and
// cached-empty transitions across random data/query pairs.
func TestStableCacheEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	checked := 0
	queries := []*graph.Graph{gen.QG1(), gen.QG2(), gen.QG3(), gen.QG4()}
	for trial := 0; trial < 40; trial++ {
		data := gen.Kronecker(7, 5+rng.Intn(5), 1)
		query := queries[trial%len(queries)]
		tree, err := order.Preprocess(data, query, order.DefaultOptions())
		if err != nil {
			continue
		}
		ix := Build(data, tree, Options{})
		planned := ix.ntePlan

		// Walk random prefixes of the matching order, comparing the two
		// paths at every depth. Scratches are per-depth (as in the real
		// searcher) and persist across reps, so later reps exercise
		// misses against stale keys; the second pass over each prefix
		// re-asks every depth with unchanged assignments, exercising
		// pure cache hits.
		scCached := make([]MatchScratch, tree.NumVertices())
		scDirect := make([]MatchScratch, tree.NumVertices())
		for rep := 0; rep < 20; rep++ {
			m := make([]graph.VertexID, tree.NumVertices())
			root := tree.Order[0]
			roots := ix.Nodes[root].Cands
			if len(roots) == 0 {
				break
			}
			m[root] = roots[rng.Intn(len(roots))]
			depth := len(tree.Order)
			for pass := 0; pass < 2; pass++ {
				for i := 1; i < depth; i++ {
					u := tree.Order[i]
					ix.ntePlan = planned
					got := append([]graph.VertexID(nil), ix.CandidatesFor(u, m, &scCached[i])...)
					ix.ntePlan = nil
					want := append([]graph.VertexID(nil), ix.CandidatesFor(u, m, &scDirect[i])...)
					if len(got) != len(want) {
						t.Fatalf("trial %d rep %d pass %d u=%d: cached %d candidates, direct %d", trial, rep, pass, u, len(got), len(want))
					}
					for k := range got {
						if got[k] != want[k] {
							t.Fatalf("trial %d rep %d pass %d u=%d: candidate %d differs: %d vs %d", trial, rep, pass, u, k, got[k], want[k])
						}
					}
					if planned[u].use {
						checked++
					}
					if len(got) == 0 {
						depth = i
						break
					}
					if pass == 0 {
						m[u] = got[rng.Intn(len(got))]
					}
				}
			}
		}
		ix.ntePlan = planned
	}
	if checked == 0 {
		t.Fatal("no comparison ever exercised a cache-enabled vertex; fixtures too small")
	}
}
