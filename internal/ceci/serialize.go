package ceci

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"

	"ceci/internal/graph"
	"ceci/internal/order"
)

// Index serialization. The paper's §6.4 anticipates storing CECI outside
// main memory ("for larger graphs whose CECI does not fit inside memory,
// we plan to store it in non-volatile memory"); this binary format makes
// the index a persistable artifact: build once, reuse across processes,
// or hand a machine's partition to another node.
//
// The format embeds a fingerprint of the (data graph, query tree) pair it
// was built for, and loading verifies it — an index is meaningless
// against any other pair.
//
// Layout (little endian, length-prefixed sections):
//
//	magic "CECIIDX1"
//	fingerprint uint64
//	numQueryVertices uvarint
//	per query vertex:
//	  cands: uvarint count + delta-encoded ids
//	  card:  per cand, uvarint cardinality
//	  TE:    uvarint keys; per key: id + value list (delta-encoded)
//	  NTE:   uvarint maps; per map as TE
var idxMagic = [8]byte{'C', 'E', 'C', 'I', 'I', 'D', 'X', '1'}

var crcTable = crc64.MakeTable(crc64.ECMA)

// Fingerprint identifies the (data, tree) pair an index belongs to.
func Fingerprint(data *graph.Graph, tree *order.QueryTree) uint64 {
	h := crc64.New(crcTable)
	var buf [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	put(uint64(data.NumVertices()))
	put(uint64(data.NumEdges()))
	put(uint64(data.NumLabels()))
	put(uint64(tree.Root))
	for _, u := range tree.Order {
		put(uint64(u))
	}
	tree.Query.Edges(func(a, b graph.VertexID) bool {
		put(uint64(a)<<32 | uint64(b))
		return true
	})
	for u := 0; u < tree.Query.NumVertices(); u++ {
		for _, l := range tree.Query.Labels(graph.VertexID(u)) {
			put(uint64(l))
		}
	}
	return h.Sum64()
}

// WriteTo serializes the index. It returns the number of bytes written.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	if _, err := cw.Write(idxMagic[:]); err != nil {
		return cw.n, err
	}
	writeU64(cw, Fingerprint(ix.Data, ix.Tree))
	writeUvarint(cw, uint64(len(ix.Nodes)))
	for u := range ix.Nodes {
		node := &ix.Nodes[u]
		writeIDs(cw, node.Cands)
		for _, v := range node.Cands {
			writeUvarint(cw, uint64(node.CardOf(v)))
		}
		writeCandMap(cw, &node.TE)
		writeUvarint(cw, uint64(len(node.NTE)))
		for j := range node.NTE {
			writeCandMap(cw, &node.NTE[j])
		}
	}
	if cw.err != nil {
		return cw.n, cw.err
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadIndex deserializes an index previously written by WriteTo. The
// data graph and query tree must be the ones the index was built for;
// the embedded fingerprint is verified.
func ReadIndex(r io.Reader, data *graph.Graph, tree *order.QueryTree) (*Index, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("ceci: index header: %w", err)
	}
	if magic != idxMagic {
		return nil, fmt.Errorf("ceci: bad index magic %q", magic)
	}
	fp, err := readU64(br)
	if err != nil {
		return nil, err
	}
	if want := Fingerprint(data, tree); fp != want {
		return nil, fmt.Errorf("ceci: index fingerprint %x does not match graph/query %x", fp, want)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if int(n) != tree.NumVertices() {
		return nil, fmt.Errorf("ceci: index has %d query vertices, tree has %d", n, tree.NumVertices())
	}
	ix := &Index{
		Data:  data,
		Tree:  tree,
		Nodes: make([]Node, n),
	}
	ix.indexNTEChildren()
	for u := range ix.Nodes {
		node := &ix.Nodes[u]
		if node.Cands, err = readIDs(br); err != nil {
			return nil, fmt.Errorf("ceci: node %d cands: %w", u, err)
		}
		node.Card = make(map[graph.VertexID]int64, len(node.Cands))
		for _, v := range node.Cands {
			c, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			node.Card[v] = int64(c)
		}
		if err := readCandMap(br, &node.TE); err != nil {
			return nil, fmt.Errorf("ceci: node %d TE: %w", u, err)
		}
		nteCount, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if int(nteCount) != len(node.NTE) {
			return nil, fmt.Errorf("ceci: node %d has %d NTE maps, tree expects %d", u, nteCount, len(node.NTE))
		}
		for j := range node.NTE {
			if err := readCandMap(br, &node.NTE[j]); err != nil {
				return nil, fmt.Errorf("ceci: node %d NTE %d: %w", u, j, err)
			}
		}
	}
	// A loaded index goes straight to the steady state: compact it into
	// the flat arena-backed form the enumerator reads.
	ix.Freeze()
	return ix, nil
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

func writeU64(w io.Writer, x uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], x)
	w.Write(buf[:])
}

func readU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func writeUvarint(w io.Writer, x uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	w.Write(buf[:n])
}

// writeIDs delta-encodes a sorted vertex list.
func writeIDs(w io.Writer, ids []graph.VertexID) {
	writeUvarint(w, uint64(len(ids)))
	prev := uint64(0)
	for _, v := range ids {
		writeUvarint(w, uint64(v)-prev)
		prev = uint64(v)
	}
}

func readIDs(r io.ByteReader) ([]graph.VertexID, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	const maxReasonable = 1 << 32
	if n > maxReasonable {
		return nil, fmt.Errorf("ceci: implausible list length %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]graph.VertexID, n)
	prev := uint64(0)
	for i := range out {
		d, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		prev += d
		out[i] = graph.VertexID(prev)
	}
	return out, nil
}

func writeCandMap(w io.Writer, m *CandMap) {
	writeUvarint(w, uint64(m.Len()))
	m.ForEach(func(key graph.VertexID, vals []graph.VertexID) {
		writeUvarint(w, uint64(key))
		writeIDs(w, vals)
	})
}

func readCandMap(r io.ByteReader, m *CandMap) error {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		key, err := binary.ReadUvarint(r)
		if err != nil {
			return err
		}
		vals, err := readIDs(r)
		if err != nil {
			return err
		}
		m.AppendKey(graph.VertexID(key), vals)
	}
	return nil
}
