package ceci_test

import (
	"bytes"
	"testing"

	"ceci/internal/ceci"
	"ceci/internal/enum"
	"ceci/internal/gen"
	"ceci/internal/order"
)

// TestSerializeLoadEnumerate proves the full frozen-index round trip:
// build (which freezes), serialize, load (which re-freezes into the flat
// arena form), and enumerate — the loaded index must report itself frozen
// and produce exactly the embedding count of the original.
func TestSerializeLoadEnumerate(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		data, query := gen.RandomPair(seed)
		tree, err := order.Preprocess(data, query, order.Options{})
		if err != nil {
			t.Fatalf("seed %d: Preprocess: %v", seed, err)
		}
		ix := ceci.Build(data, tree, ceci.Options{})
		if !ix.Frozen() {
			t.Fatalf("seed %d: built index not frozen", seed)
		}
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatalf("seed %d: WriteTo: %v", seed, err)
		}
		got, err := ceci.ReadIndex(&buf, data, tree)
		if err != nil {
			t.Fatalf("seed %d: ReadIndex: %v", seed, err)
		}
		if !got.Frozen() {
			t.Fatalf("seed %d: loaded index not frozen", seed)
		}
		want := enum.NewMatcher(ix, enum.Options{Workers: 2}).Count()
		n := enum.NewMatcher(got, enum.Options{Workers: 2}).Count()
		if n != want {
			t.Fatalf("seed %d: loaded index enumerates %d embeddings, want %d", seed, n, want)
		}
	}
}
