package ceci_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"ceci/internal/ceci"
	"ceci/internal/gen"
	"ceci/internal/order"
)

func TestIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 20; trial++ {
		data := randomGraph(rng, 20, 60, 3)
		query, err := gen.DFSQuery(data, 3+rng.Intn(3), rng)
		if err != nil {
			continue
		}
		tree, err := order.Preprocess(data, query, order.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		ix := ceci.Build(data, tree, ceci.Options{})

		var buf bytes.Buffer
		n, err := ix.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
		}
		got, err := ceci.ReadIndex(&buf, data, tree)
		if err != nil {
			t.Fatal(err)
		}
		assertSameIndex(t, ix, got, tree)
	}
}

func assertSameIndex(t *testing.T, a, b *ceci.Index, tree *order.QueryTree) {
	t.Helper()
	if a.CandidateEdges() != b.CandidateEdges() {
		t.Fatalf("candidate edges differ: %d vs %d", a.CandidateEdges(), b.CandidateEdges())
	}
	for u := range a.Nodes {
		na, nb := &a.Nodes[u], &b.Nodes[u]
		if !eqIDs(na.Cands, nb.Cands) {
			t.Fatalf("node %d cands differ", u)
		}
		for _, v := range na.Cands {
			if na.CardOf(v) != nb.CardOf(v) {
				t.Fatalf("node %d card[%d] differs: %d vs %d", u, v, na.CardOf(v), nb.CardOf(v))
			}
		}
		na.TE.ForEach(func(key uint32, vals []uint32) {
			if !eqIDs(vals, nb.TE.Get(key)) {
				t.Fatalf("node %d TE[%d] differs", u, key)
			}
		})
		for j := range na.NTE {
			na.NTE[j].ForEach(func(key uint32, vals []uint32) {
				if !eqIDs(vals, nb.NTE[j].Get(key)) {
					t.Fatalf("node %d NTE%d[%d] differs", u, j, key)
				}
			})
		}
	}
}

func TestIndexFingerprintMismatch(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	tree, err := order.Preprocess(data, query, order.Options{ForcedRoot: 0})
	if err != nil {
		t.Fatal(err)
	}
	ix := ceci.Build(data, tree, ceci.Options{})
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Loading against a different root (hence different tree) must fail.
	otherTree, err := order.Preprocess(data, query, order.Options{ForcedRoot: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ceci.ReadIndex(bytes.NewReader(buf.Bytes()), data, otherTree); err == nil {
		t.Fatal("mismatched tree accepted")
	}
	// And against a different data graph.
	other := gen.QG5()
	if _, err := ceci.ReadIndex(bytes.NewReader(buf.Bytes()), other, tree); err == nil {
		t.Fatal("mismatched data graph accepted")
	}
}

func TestIndexRejectsGarbage(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	tree, _ := order.Preprocess(data, query, order.Options{ForcedRoot: 0})
	if _, err := ceci.ReadIndex(strings.NewReader("definitely not an index"), data, tree); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ceci.ReadIndex(strings.NewReader(""), data, tree); err == nil {
		t.Fatal("empty input accepted")
	}
}
