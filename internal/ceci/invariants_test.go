package ceci_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ceci/internal/ceci"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
	"ceci/internal/setops"
)

// TestIndexStructuralInvariants property-checks the built index on random
// graphs:
//
//  1. every TE/NTE value list is strictly sorted;
//  2. TE keys of u are a subset of the parent's candidate set, NTE keys a
//     subset of the NTE parent's candidate set;
//  3. every TE value belongs to u's candidate union; NTE values likewise;
//  4. every stored (key, value) pair is a real data edge (soundness half
//     of Section 3.5's correctness argument);
//  5. surviving candidates have positive cardinality.
func TestIndexStructuralInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := randomGraph(rng, 12+rng.Intn(12), 25+rng.Intn(40), 1+rng.Intn(3))
		query, err := gen.DFSQuery(data, 2+rng.Intn(4), rng)
		if err != nil {
			return true
		}
		tree, err := order.Preprocess(data, query, order.DefaultOptions())
		if err != nil {
			return false
		}
		ix := ceci.Build(data, tree, ceci.Options{})
		return checkInvariants(t, ix, tree, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func checkInvariants(t *testing.T, ix *ceci.Index, tree *order.QueryTree, data *graph.Graph) bool {
	t.Helper()
	ok := true
	for u := range ix.Nodes {
		node := &ix.Nodes[u]
		if !setops.IsSorted(node.Cands) {
			t.Logf("u%d: candidate union unsorted", u)
			ok = false
		}
		checkMap := func(m *ceci.CandMap, parentCands []graph.VertexID, kind string) {
			m.ForEach(func(key graph.VertexID, vals []graph.VertexID) {
				if !setops.Contains(parentCands, key) {
					t.Logf("u%d %s: key %d not a parent candidate", u, kind, key)
					ok = false
				}
				if !setops.IsSorted(vals) {
					t.Logf("u%d %s[%d]: values unsorted", u, kind, key)
					ok = false
				}
				for _, v := range vals {
					if !setops.Contains(node.Cands, v) {
						t.Logf("u%d %s[%d]: value %d outside candidate union", u, kind, key, v)
						ok = false
					}
					if !data.HasEdge(key, v) {
						t.Logf("u%d %s[%d]: stored pair (%d,%d) is not a data edge", u, kind, key, key, v)
						ok = false
					}
				}
			})
		}
		if p := tree.Parent[u]; p != order.NoParent {
			checkMap(&node.TE, ix.Nodes[p].Cands, "TE")
		}
		for j, un := range tree.NTEParents[u] {
			checkMap(&node.NTE[j], ix.Nodes[un].Cands, "NTE")
		}
		for _, v := range node.Cands {
			if node.CardOf(v) <= 0 {
				t.Logf("u%d: surviving candidate %d has cardinality %d", u, v, node.CardOf(v))
				ok = false
			}
		}
	}
	return ok
}

// TestPivotSubsetBuild: restricting the build to a pivot subset must
// produce exactly the embeddings rooted at those pivots.
func TestPivotSubsetBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := randomGraph(rng, 20, 60, 2)
	query, err := gen.DFSQuery(data, 3, rng)
	if err != nil {
		t.Skip("no query region")
	}
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	full := ceci.Build(data, tree, ceci.Options{})
	pivots := full.Pivots()
	if len(pivots) < 2 {
		t.Skip("not enough pivots")
	}
	half := append([]graph.VertexID(nil), pivots[:len(pivots)/2]...)
	sub := ceci.Build(data, tree, ceci.Options{Pivots: half})
	got := sub.Pivots()
	// Surviving pivots of the restricted build must be a subset of the
	// requested ones.
	for _, p := range got {
		if !setops.Contains(half, p) {
			t.Fatalf("pivot %d not requested", p)
		}
	}
}
