package ceci

import (
	"testing"

	"ceci/internal/graph"
)

func TestCandMapAppendGet(t *testing.T) {
	var m CandMap
	m.AppendKey(2, []graph.VertexID{10, 20})
	m.AppendKey(5, []graph.VertexID{30})
	m.AppendKey(9, []graph.VertexID{40, 50, 60})
	if m.Len() != 3 {
		t.Fatalf("len = %d", m.Len())
	}
	if got := m.Get(5); len(got) != 1 || got[0] != 30 {
		t.Fatalf("Get(5) = %v", got)
	}
	if m.Get(3) != nil {
		t.Fatal("phantom key")
	}
	if got := m.CandidateEdges(); got != 6 {
		t.Fatalf("edges = %d", got)
	}
}

func TestCandMapOutOfOrderInsert(t *testing.T) {
	var m CandMap
	m.AppendKey(5, []graph.VertexID{1})
	m.AppendKey(2, []graph.VertexID{2}) // triggers the insert path
	m.AppendKey(5, []graph.VertexID{3}) // overwrite
	keys := m.Keys()
	if len(keys) != 2 || keys[0] != 2 || keys[1] != 5 {
		t.Fatalf("keys = %v", keys)
	}
	if got := m.Get(5); len(got) != 1 || got[0] != 3 {
		t.Fatalf("overwrite failed: %v", got)
	}
}

func TestCandMapDelete(t *testing.T) {
	var m CandMap
	for _, k := range []graph.VertexID{1, 3, 5} {
		m.AppendKey(k, []graph.VertexID{k * 10})
	}
	m.Delete(3)
	m.Delete(99) // no-op
	if m.Len() != 2 || m.Get(3) != nil {
		t.Fatal("delete failed")
	}
	if got := m.Get(5); got == nil {
		t.Fatal("wrong entry removed")
	}
}

func TestCandMapDeleteValue(t *testing.T) {
	var m CandMap
	m.AppendKey(1, []graph.VertexID{7, 8})
	m.AppendKey(2, []graph.VertexID{8})
	m.AppendKey(3, []graph.VertexID{9})
	emptied := m.DeleteValue(8, nil)
	if len(emptied) != 1 || emptied[0] != 2 {
		t.Fatalf("emptied = %v", emptied)
	}
	if got := m.Get(1); len(got) != 1 || got[0] != 7 {
		t.Fatalf("Get(1) = %v", got)
	}
	// The emptied key remains until the caller deletes it (cascade).
	if got := m.Get(2); got == nil || len(got) != 0 {
		t.Fatalf("Get(2) = %v, want empty non-nil entry", got)
	}
}

func TestCandMapForEachOrder(t *testing.T) {
	var m CandMap
	m.AppendKey(4, []graph.VertexID{1})
	m.AppendKey(1, []graph.VertexID{2})
	m.AppendKey(2, []graph.VertexID{3})
	var keys []graph.VertexID
	m.ForEach(func(k graph.VertexID, _ []graph.VertexID) {
		keys = append(keys, k)
	})
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("ForEach not in key order: %v", keys)
		}
	}
}

func TestCandMapValueUnion(t *testing.T) {
	var m CandMap
	m.AppendKey(1, []graph.VertexID{3, 5})
	m.AppendKey(2, []graph.VertexID{5, 7})
	union := m.ValueUnion()
	want := []graph.VertexID{3, 5, 7}
	if len(union) != 3 {
		t.Fatalf("union = %v", union)
	}
	for i := range want {
		if union[i] != want[i] {
			t.Fatalf("union = %v, want %v", union, want)
		}
	}
}

func TestSaturatingArithmetic(t *testing.T) {
	if got := satAdd(CardSaturation, 1); got != CardSaturation {
		t.Fatalf("satAdd overflowed: %d", got)
	}
	if got := satMul(CardSaturation/2, 3); got != CardSaturation {
		t.Fatalf("satMul overflowed: %d", got)
	}
	if satMul(0, 5) != 0 || satMul(5, 0) != 0 {
		t.Fatal("satMul zero broken")
	}
	if satAdd(2, 3) != 5 || satMul(2, 3) != 6 {
		t.Fatal("basic arithmetic broken")
	}
}
