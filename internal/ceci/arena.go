package ceci

import "ceci/internal/graph"

// arenaChunk is the number of vertex IDs allocated per arena chunk
// (32 KiB). Large enough that per-frontier-vertex value lists amortize to
// a handful of allocations per expansion, small enough not to waste
// memory on tiny clusters (the incremental mode builds one index per
// pivot).
const arenaChunk = 8192

// valueArena hands out vertex slices carved from large chunks. Slices
// are append-only from the arena's point of view: once carved, a slice's
// capacity is clamped to its own range, so later carves can never write
// into it (callers may still shrink it in place, which cascade deletion
// does). Chunks that fill up are simply dropped — the carved slices keep
// their backing memory alive, and everything is released wholesale when
// Freeze compacts the index and drops the build scratch.
type valueArena struct {
	cur []graph.VertexID
}

// copyIn copies vs into the arena and returns the arena-backed copy.
func (a *valueArena) copyIn(vs []graph.VertexID) []graph.VertexID {
	if len(vs) == 0 {
		return nil
	}
	if cap(a.cur)-len(a.cur) < len(vs) {
		size := arenaChunk
		if size < len(vs) {
			size = len(vs)
		}
		a.cur = make([]graph.VertexID, 0, size)
	}
	start := len(a.cur)
	a.cur = append(a.cur, vs...)
	end := len(a.cur)
	return a.cur[start:end:end]
}

// buildScratch is one worker's private bin during frontier expansion
// (§3.6): filters and intersections write into buf, survivors are
// compacted into the worker's arena. Workers touch only their own
// scratch, so expansion needs no synchronization beyond the work cursor.
type buildScratch struct {
	buf   []graph.VertexID
	arena valueArena
}

// scratches lazily sizes the per-worker scratch pool to the build's
// worker budget, reusing buffers across every buildTE/buildNTE call.
func (ix *Index) scratches() []buildScratch {
	if ix.scratch == nil {
		ix.scratch = make([]buildScratch, ix.workers())
	}
	return ix.scratch
}

// valueSlots returns the reusable n-wide frontier output table. Entries
// written by a previous expansion are dead by then — AppendKey copied the
// slice headers into the CandMap — so plain reuse is safe.
func (ix *Index) valueSlots(n int) [][]graph.VertexID {
	if cap(ix.valbuf) < n {
		ix.valbuf = make([][]graph.VertexID, n)
	}
	ix.valbuf = ix.valbuf[:n]
	return ix.valbuf
}
