package ceci

import (
	"ceci/internal/graph"
	"ceci/internal/setops"
)

// CandMap is the key-value structure backing TE_Candidates and
// NTE_Candidates (Section 3.1): keys are candidates of the parent (or
// NTE-neighbor) query vertex, values are the sorted candidates of the
// child adjacent to that key. Keys are kept sorted so lookups are binary
// searches, mirroring the paper's sorted-vector implementation (§3.6).
//
// The map has two storage modes:
//
//   - mutable (construction and refinement): one heap slice per key, so
//     cascade deletion can shrink individual value lists in place;
//   - frozen flat (steady state, after Index.Freeze): all values live in
//     one shared arena and each key holds a [start, end) offset pair, so
//     Get is a binary search plus a view of contiguous memory — the
//     paper's ~4-bytes-per-candidate-edge layout (Table 2) with no
//     per-entry slice headers or pointer chasing.
//
// Frozen maps are immutable: the mutating methods panic.
type CandMap struct {
	keys  []graph.VertexID
	vals  [][]graph.VertexID // mutable mode; nil once frozen
	offs  []uint32           // frozen mode: len(keys)+1 offsets into arena
	arena []graph.VertexID   // frozen mode: contiguous value storage
}

// Len returns the number of live keys.
func (m *CandMap) Len() int { return len(m.keys) }

// Frozen reports whether the map is in the flat arena-backed mode.
func (m *CandMap) Frozen() bool { return m.offs != nil }

// Get returns the value list for key, or nil. On a frozen map the result
// is a view of the shared arena; it must not be modified.
func (m *CandMap) Get(key graph.VertexID) []graph.VertexID {
	keys := m.keys
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(keys) && keys[lo] == key {
		if m.offs != nil {
			return m.arena[m.offs[lo]:m.offs[lo+1]]
		}
		return m.vals[lo]
	}
	return nil
}

func (m *CandMap) search(key graph.VertexID) int {
	lo, hi := 0, len(m.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// mutable panics when the map has been frozen: every structural change
// must happen before Index.Freeze.
func (m *CandMap) mutable() {
	if m.offs != nil {
		panic("ceci: mutation of frozen CandMap")
	}
}

// AppendKey adds (key, values) assuming key is strictly greater than every
// existing key — the natural case during construction, where frontiers are
// expanded in ascending order. values must be sorted.
func (m *CandMap) AppendKey(key graph.VertexID, values []graph.VertexID) {
	m.mutable()
	if n := len(m.keys); n > 0 && m.keys[n-1] >= key {
		m.insertKey(key, values)
		return
	}
	m.keys = append(m.keys, key)
	m.vals = append(m.vals, values)
}

func (m *CandMap) insertKey(key graph.VertexID, values []graph.VertexID) {
	i := m.search(key)
	if i < len(m.keys) && m.keys[i] == key {
		m.vals[i] = values
		return
	}
	m.keys = append(m.keys, 0)
	m.vals = append(m.vals, nil)
	copy(m.keys[i+1:], m.keys[i:])
	copy(m.vals[i+1:], m.vals[i:])
	m.keys[i] = key
	m.vals[i] = values
}

// Delete removes key (no-op if absent).
func (m *CandMap) Delete(key graph.VertexID) {
	m.mutable()
	i := m.search(key)
	if i == len(m.keys) || m.keys[i] != key {
		return
	}
	m.keys = append(m.keys[:i], m.keys[i+1:]...)
	m.vals = append(m.vals[:i], m.vals[i+1:]...)
}

// DeleteValue removes vertex v from every value list, returning the keys
// whose lists became empty (callers cascade those deletions).
func (m *CandMap) DeleteValue(v graph.VertexID, emptied []graph.VertexID) []graph.VertexID {
	m.mutable()
	for i := range m.keys {
		lst := m.vals[i]
		lo, hi := 0, len(lst)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if lst[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(lst) && lst[lo] == v {
			m.vals[i] = append(lst[:lo], lst[lo+1:]...)
			if len(m.vals[i]) == 0 {
				emptied = append(emptied, m.keys[i])
			}
		}
	}
	return emptied
}

// ForEach visits live (key, values) pairs in ascending key order.
func (m *CandMap) ForEach(fn func(key graph.VertexID, values []graph.VertexID)) {
	if m.offs != nil {
		for i := range m.keys {
			fn(m.keys[i], m.arena[m.offs[i]:m.offs[i+1]])
		}
		return
	}
	for i := range m.keys {
		fn(m.keys[i], m.vals[i])
	}
}

// Keys returns the sorted key slice (aliases internal storage).
func (m *CandMap) Keys() []graph.VertexID { return m.keys }

// ValueUnion returns the sorted union of all value lists.
func (m *CandMap) ValueUnion() []graph.VertexID {
	lists := make([][]uint32, 0, len(m.keys))
	m.ForEach(func(_ graph.VertexID, vals []graph.VertexID) {
		lists = append(lists, vals)
	})
	return setops.UnionMany(lists)
}

// CandidateEdges counts the (key, value) pairs, i.e. candidate data edges
// — the unit of the paper's Table 2 size accounting.
func (m *CandMap) CandidateEdges() int64 {
	if n := len(m.offs); n > 0 {
		return int64(m.offs[n-1]) - int64(m.offs[0])
	}
	var n int64
	for _, v := range m.vals {
		n += int64(len(v))
	}
	return n
}

// freezeInto compacts the map into the flat mode, appending every value
// list to arena (which must have enough spare capacity that no append
// reallocates — Node.freeze presizes it) and installing [start, end)
// offsets. The mutable per-key slices are released. Returns the extended
// arena.
func (m *CandMap) freezeInto(arena []graph.VertexID) []graph.VertexID {
	if m.offs != nil {
		return arena
	}
	offs := make([]uint32, len(m.keys)+1)
	start := len(arena)
	for i, v := range m.vals {
		offs[i] = uint32(len(arena) - start)
		arena = append(arena, v...)
	}
	offs[len(m.keys)] = uint32(len(arena) - start)
	m.offs = offs
	m.arena = arena[start:len(arena):len(arena)]
	m.vals = nil
	return arena
}

// flatBytes is the physical footprint of the frozen representation:
// 4 bytes per key, 4 per offset, 4 per arena entry. Zero when mutable.
func (m *CandMap) flatBytes() int64 {
	if m.offs == nil {
		return 0
	}
	return 4 * int64(len(m.keys)+len(m.offs)+len(m.arena))
}
