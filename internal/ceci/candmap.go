package ceci

import (
	"sort"

	"ceci/internal/graph"
	"ceci/internal/setops"
)

// CandMap is the key-value structure backing TE_Candidates and
// NTE_Candidates (Section 3.1): keys are candidates of the parent (or
// NTE-neighbor) query vertex, values are the sorted candidates of the
// child adjacent to that key. Keys are kept sorted so lookups are binary
// searches, mirroring the paper's sorted-vector implementation (§3.6).
type CandMap struct {
	keys []graph.VertexID
	vals [][]graph.VertexID
}

// Len returns the number of live keys.
func (m *CandMap) Len() int { return len(m.keys) }

// Get returns the value list for key, or nil.
func (m *CandMap) Get(key graph.VertexID) []graph.VertexID {
	i := m.search(key)
	if i < len(m.keys) && m.keys[i] == key {
		return m.vals[i]
	}
	return nil
}

func (m *CandMap) search(key graph.VertexID) int {
	return sort.Search(len(m.keys), func(i int) bool { return m.keys[i] >= key })
}

// AppendKey adds (key, values) assuming key is strictly greater than every
// existing key — the natural case during construction, where frontiers are
// expanded in ascending order. values must be sorted.
func (m *CandMap) AppendKey(key graph.VertexID, values []graph.VertexID) {
	if n := len(m.keys); n > 0 && m.keys[n-1] >= key {
		m.insertKey(key, values)
		return
	}
	m.keys = append(m.keys, key)
	m.vals = append(m.vals, values)
}

func (m *CandMap) insertKey(key graph.VertexID, values []graph.VertexID) {
	i := m.search(key)
	if i < len(m.keys) && m.keys[i] == key {
		m.vals[i] = values
		return
	}
	m.keys = append(m.keys, 0)
	m.vals = append(m.vals, nil)
	copy(m.keys[i+1:], m.keys[i:])
	copy(m.vals[i+1:], m.vals[i:])
	m.keys[i] = key
	m.vals[i] = values
}

// Delete removes key (no-op if absent).
func (m *CandMap) Delete(key graph.VertexID) {
	i := m.search(key)
	if i == len(m.keys) || m.keys[i] != key {
		return
	}
	m.keys = append(m.keys[:i], m.keys[i+1:]...)
	m.vals = append(m.vals[:i], m.vals[i+1:]...)
}

// DeleteValue removes vertex v from every value list, returning the keys
// whose lists became empty (callers cascade those deletions).
func (m *CandMap) DeleteValue(v graph.VertexID, emptied []graph.VertexID) []graph.VertexID {
	for i := range m.keys {
		lst := m.vals[i]
		j := sort.Search(len(lst), func(k int) bool { return lst[k] >= v })
		if j < len(lst) && lst[j] == v {
			m.vals[i] = append(lst[:j], lst[j+1:]...)
			if len(m.vals[i]) == 0 {
				emptied = append(emptied, m.keys[i])
			}
		}
	}
	return emptied
}

// ForEach visits live (key, values) pairs in ascending key order.
func (m *CandMap) ForEach(fn func(key graph.VertexID, values []graph.VertexID)) {
	for i := range m.keys {
		fn(m.keys[i], m.vals[i])
	}
}

// Keys returns the sorted key slice (aliases internal storage).
func (m *CandMap) Keys() []graph.VertexID { return m.keys }

// ValueUnion returns the sorted union of all value lists.
func (m *CandMap) ValueUnion() []graph.VertexID {
	lists := make([][]uint32, len(m.vals))
	for i, v := range m.vals {
		lists[i] = v
	}
	return setops.UnionMany(lists)
}

// CandidateEdges counts the (key, value) pairs, i.e. candidate data edges
// — the unit of the paper's Table 2 size accounting.
func (m *CandMap) CandidateEdges() int64 {
	var n int64
	for _, v := range m.vals {
		n += int64(len(v))
	}
	return n
}
