package telemetry

import (
	"math"
	"sort"
	"sync"
	"time"

	"ceci/internal/obs"
)

// Resolution is one rollup level of the time-series store: bucket width
// and ring length. A {10s, 360} resolution holds the last hour at 10s
// granularity in a fixed 360-slot ring.
type Resolution struct {
	Step time.Duration
	Len  int
}

// DefaultResolutions keeps one hour at 10s, six hours at 1m, and three
// days at 10m — about 9 KiB per series, fixed forever.
func DefaultResolutions() []Resolution {
	return []Resolution{
		{Step: 10 * time.Second, Len: 360},
		{Step: time.Minute, Len: 360},
		{Step: 10 * time.Minute, Len: 432},
	}
}

// Point is one rollup bucket: the bucket's start time (unix seconds) and
// the last value observed within it.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// ring is one resolution's fixed buffer. Buckets take last-value
// semantics: the most recent observation within a bucket wins, which is
// the natural rollup for gauges and for cumulative counters (whose rate
// is the delta between consecutive points). Skipped buckets are NaN and
// dropped from snapshots.
type ring struct {
	stepSec int64
	buf     []float64
	last    int64 // absolute bucket index of the most recent write; -1 empty
	filled  int   // buckets ever written or skipped, capped at len(buf)
}

func newRing(r Resolution) ring {
	buf := make([]float64, r.Len)
	for i := range buf {
		buf[i] = math.NaN()
	}
	return ring{stepSec: int64(r.Step / time.Second), buf: buf, last: -1}
}

// write records v at unix-seconds t. Zero allocations.
func (r *ring) write(t int64, v float64) {
	b := t / r.stepSec
	if r.last < 0 {
		r.last = b
		r.filled = 1
	} else if b > r.last {
		// Advance, voiding any skipped buckets so stale values from a
		// previous lap never masquerade as fresh ones.
		gap := b - r.last
		if gap > int64(len(r.buf)) {
			gap = int64(len(r.buf))
		}
		for i := int64(1); i <= gap; i++ {
			r.buf[(r.last+i)%int64(len(r.buf))] = math.NaN()
		}
		r.last = b
		if r.filled += int(gap); r.filled > len(r.buf) {
			r.filled = len(r.buf)
		}
	} else if b < r.last {
		return // time went backwards; drop rather than corrupt the ring
	}
	r.buf[b%int64(len(r.buf))] = v
}

// points returns the retained buckets oldest-first, skipping voids.
func (r *ring) points() []Point {
	if r.last < 0 {
		return nil
	}
	out := make([]Point, 0, r.filled)
	for i := r.filled - 1; i >= 0; i-- {
		b := r.last - int64(i)
		v := r.buf[b%int64(len(r.buf))]
		if math.IsNaN(v) {
			continue
		}
		out = append(out, Point{T: b * r.stepSec, V: v})
	}
	return out
}

// Store is the in-process time-series store: named series, each held at
// every configured resolution in fixed rings. Observe is the write path
// — one map lookup plus one ring write per resolution, no allocation
// after a series' first observation — so samplers can run at high
// frequency without GC pressure. Snapshots are built on demand.
type Store struct {
	mu     sync.Mutex
	res    []Resolution
	now    func() time.Time
	series map[string]*seriesRings
}

type seriesRings struct {
	rings []ring
}

// NewStore returns a store over the given resolutions (DefaultResolutions
// when nil) with an injected clock (time.Now when nil).
func NewStore(now func() time.Time, res []Resolution) *Store {
	if now == nil {
		now = time.Now
	}
	if len(res) == 0 {
		res = DefaultResolutions()
	}
	return &Store{res: res, now: now, series: make(map[string]*seriesRings)}
}

// Observe records v for the named series at the current time, in every
// resolution. Creates the series on first use.
func (s *Store) Observe(name string, v float64) {
	t := s.now().Unix()
	s.mu.Lock()
	sr := s.series[name]
	if sr == nil {
		sr = &seriesRings{rings: make([]ring, len(s.res))}
		for i, r := range s.res {
			sr.rings[i] = newRing(r)
		}
		s.series[name] = sr
	}
	for i := range sr.rings {
		sr.rings[i].write(t, v)
	}
	s.mu.Unlock()
}

// SeriesWindow is one resolution of one series in a snapshot.
type SeriesWindow struct {
	StepSeconds int64   `json:"step_seconds"`
	Points      []Point `json:"points"`
}

// Snapshot returns every series at every resolution, keyed by series
// name, windows ordered finest-first.
func (s *Store) Snapshot() map[string][]SeriesWindow {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]SeriesWindow, len(s.series))
	for name, sr := range s.series {
		ws := make([]SeriesWindow, len(sr.rings))
		for i := range sr.rings {
			ws[i] = SeriesWindow{StepSeconds: sr.rings[i].stepSec, Points: sr.rings[i].points()}
		}
		out[name] = ws
	}
	return out
}

// Names returns the registered series names, sorted.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.series))
	for n := range s.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Quantile estimates the q-quantile (0 < q < 1) of a histogram snapshot
// by linear interpolation within the containing bucket, Prometheus
// histogram_quantile style. The +Inf bucket clamps to the last finite
// bound. Returns NaN on an empty snapshot.
func Quantile(s obs.HistogramSnapshot, q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			if len(s.Bounds) == 0 {
				return math.NaN()
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	if len(s.Bounds) == 0 {
		return math.NaN()
	}
	return s.Bounds[len(s.Bounds)-1]
}
