package telemetry

import (
	"sort"
	"sync"
	"time"

	"ceci/internal/obs"
)

// ClassStat aggregates every observed query of one canonical class
// (isomorphism-aware query hash): how often the shape runs, how it
// fares, and what it costs. This is the table /statz sorts to answer
// "which query shapes are expensive".
type ClassStat struct {
	// Hash is the canonical query hash (obs.QueryRecord.QueryHash).
	Hash string `json:"hash"`
	// Vertices is the pattern size.
	Vertices int `json:"vertices"`
	// Count is how many queries of this class completed.
	Count int64 `json:"count"`
	// Errors counts non-200 outcomes.
	Errors int64 `json:"errors"`
	// CacheHits counts index-cache hits.
	CacheHits int64 `json:"cache_hits"`
	// TotalUS sums end-to-end latency; MaxUS is the worst instance.
	TotalUS int64 `json:"total_us"`
	MaxUS   int64 `json:"max_us"`
	// Resources is the summed resource ledger across the class (peak
	// fields take the max; see obs.QueryResources.Add).
	Resources obs.QueryResources `json:"resources"`
	// LastSeen is when the class last completed a query.
	LastSeen time.Time `json:"last_seen"`
}

// DefaultMaxClasses bounds the class table; long-tail classes beyond it
// evict the least recently seen.
const DefaultMaxClasses = 256

// ClassTable aggregates completed queries by canonical class. Safe for
// concurrent use; bounded by max with least-recently-seen eviction.
type ClassTable struct {
	mu      sync.Mutex
	max     int
	classes map[string]*ClassStat
}

// NewClassTable returns a table bounded at max classes
// (DefaultMaxClasses when non-positive).
func NewClassTable(max int) *ClassTable {
	if max <= 0 {
		max = DefaultMaxClasses
	}
	return &ClassTable{max: max, classes: make(map[string]*ClassStat)}
}

// Observe folds one completed query into its class at time now. Records
// without a class hash (queries shed before classification) aggregate
// under the "-" pseudo-class. Nil-safe.
func (t *ClassTable) Observe(rec obs.QueryRecord, now time.Time) {
	if t == nil {
		return
	}
	hash := rec.QueryHash
	if hash == "" {
		hash = "-"
	}
	t.mu.Lock()
	cs := t.classes[hash]
	if cs == nil {
		if len(t.classes) >= t.max {
			t.evictOldest()
		}
		cs = &ClassStat{Hash: hash, Vertices: rec.QueryVertices}
		t.classes[hash] = cs
	}
	cs.Count++
	if rec.Outcome != 200 {
		cs.Errors++
	}
	if rec.CacheHit {
		cs.CacheHits++
	}
	cs.TotalUS += rec.TotalUS
	if rec.TotalUS > cs.MaxUS {
		cs.MaxUS = rec.TotalUS
	}
	cs.Resources.Add(rec.Resources)
	cs.LastSeen = now
	t.mu.Unlock()
}

// evictOldest removes the least-recently-seen class. Callers hold t.mu.
func (t *ClassTable) evictOldest() {
	var oldest string
	var oldestAt time.Time
	first := true
	for h, cs := range t.classes {
		if first || cs.LastSeen.Before(oldestAt) {
			oldest, oldestAt, first = h, cs.LastSeen, false
		}
	}
	delete(t.classes, oldest)
}

// Snapshot returns the classes sorted by summed enumeration CPU
// descending (total latency breaks ties) — most expensive shape first.
func (t *ClassTable) Snapshot() []ClassStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]ClassStat, 0, len(t.classes))
	for _, cs := range t.classes {
		out = append(out, *cs)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Resources.CPUUS != out[j].Resources.CPUUS {
			return out[i].Resources.CPUUS > out[j].Resources.CPUUS
		}
		if out[i].TotalUS != out[j].TotalUS {
			return out[i].TotalUS > out[j].TotalUS
		}
		return out[i].Hash < out[j].Hash
	})
	return out
}

// Totals sums every class: query count, error count, and the aggregated
// resource ledger.
func (t *ClassTable) Totals() (queries, errors int64, res obs.QueryResources) {
	if t == nil {
		return 0, 0, obs.QueryResources{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, cs := range t.classes {
		queries += cs.Count
		errors += cs.Errors
		res.Add(&cs.Resources)
	}
	return queries, errors, res
}
