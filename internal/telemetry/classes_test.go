package telemetry

import (
	"fmt"
	"testing"
	"time"

	"ceci/internal/obs"
)

func TestClassTableAggregation(t *testing.T) {
	clk := newFakeClock()
	ct := NewClassTable(8)

	rec := func(hash string, totalUS int64, outcome int, cpuUS int64) obs.QueryRecord {
		return obs.QueryRecord{
			QueryHash:     hash,
			QueryVertices: 3,
			Outcome:       outcome,
			TotalUS:       totalUS,
			Resources:     &obs.QueryResources{CPUUS: cpuUS, Embeddings: 7},
		}
	}
	ct.Observe(rec("aaaa", 100, 200, 50), clk.Now())
	ct.Observe(rec("aaaa", 300, 500, 70), clk.Now())
	ct.Observe(rec("bbbb", 900, 200, 10), clk.Now())

	snap := ct.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("classes = %+v", snap)
	}
	// Sorted by summed CPU descending: aaaa (120) before bbbb (10).
	a := snap[0]
	if a.Hash != "aaaa" || a.Count != 2 || a.Errors != 1 || a.TotalUS != 400 ||
		a.MaxUS != 300 || a.Resources.CPUUS != 120 || a.Resources.Embeddings != 14 {
		t.Fatalf("aaaa = %+v", a)
	}
	if snap[1].Hash != "bbbb" {
		t.Fatalf("order = %s, %s", snap[0].Hash, snap[1].Hash)
	}

	queries, errors, res := ct.Totals()
	if queries != 3 || errors != 1 || res.CPUUS != 130 || res.Embeddings != 21 {
		t.Fatalf("totals = %d, %d, %+v", queries, errors, res)
	}

	// A record with no hash lands in the "-" pseudo-class.
	ct.Observe(obs.QueryRecord{Outcome: 429, TotalUS: 5}, clk.Now())
	if q, _, _ := ct.Totals(); q != 4 {
		t.Fatalf("unclassed record not counted")
	}
}

func TestClassTableEviction(t *testing.T) {
	clk := newFakeClock()
	ct := NewClassTable(4)
	for i := 0; i < 6; i++ {
		ct.Observe(obs.QueryRecord{QueryHash: fmt.Sprintf("h%d", i), Outcome: 200}, clk.Now())
		clk.Advance(time.Second)
	}
	snap := ct.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("table holds %d classes, want 4", len(snap))
	}
	for _, cs := range snap {
		if cs.Hash == "h0" || cs.Hash == "h1" {
			t.Fatalf("oldest classes not evicted: %+v", snap)
		}
	}

	// Re-observing keeps a class fresh across other insertions.
	ct.Observe(obs.QueryRecord{QueryHash: "h2", Outcome: 200}, clk.Now())
	clk.Advance(time.Second)
	for i := 6; i < 9; i++ {
		ct.Observe(obs.QueryRecord{QueryHash: fmt.Sprintf("h%d", i), Outcome: 200}, clk.Now())
		clk.Advance(time.Second)
	}
	found := false
	for _, cs := range ct.Snapshot() {
		if cs.Hash == "h2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("recently seen class evicted: %+v", ct.Snapshot())
	}
}
