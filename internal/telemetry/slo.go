package telemetry

import (
	"sync"
	"time"
)

// SLOConfig sets the service-level objectives the hub tracks. The zero
// value is usable: every field defaults as documented.
type SLOConfig struct {
	// LatencyTarget is the per-query latency goal (default 500ms): a
	// query is "fast" when its total latency is at or under this.
	LatencyTarget time.Duration
	// LatencyObjective is the fraction of successful queries that must
	// be fast (default 0.99).
	LatencyObjective float64
	// AvailabilityObjective is the fraction of queries that must not
	// fail (default 0.999). Failures are server-attributable outcomes:
	// HTTP-style status >= 500, or 429 (shed by admission control).
	// Client errors (4xx other than 429) consume no budget.
	AvailabilityObjective float64
	// FastWindow and SlowWindow are the multiwindow burn-rate horizons
	// (defaults 5m and 1h). The fast window catches sudden incidents;
	// the slow window filters out blips.
	FastWindow, SlowWindow time.Duration
	// FastBurnThreshold and SlowBurnThreshold are the burn rates at
	// which each window is considered breaching (defaults 14.4 and 6 —
	// the classic page-worthy thresholds for a 30-day budget).
	FastBurnThreshold, SlowBurnThreshold float64
	// Step is the bucket width of the internal ring (default 10s).
	Step time.Duration
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.LatencyTarget <= 0 {
		c.LatencyTarget = 500 * time.Millisecond
	}
	if c.LatencyObjective <= 0 || c.LatencyObjective >= 1 {
		c.LatencyObjective = 0.99
	}
	if c.AvailabilityObjective <= 0 || c.AvailabilityObjective >= 1 {
		c.AvailabilityObjective = 0.999
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 5 * time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = time.Hour
	}
	if c.FastBurnThreshold <= 0 {
		c.FastBurnThreshold = 14.4
	}
	if c.SlowBurnThreshold <= 0 {
		c.SlowBurnThreshold = 6
	}
	if c.Step <= 0 {
		c.Step = 10 * time.Second
	}
	return c
}

// sloBucket is one Step's worth of observations.
type sloBucket struct {
	total     int64 // all queries
	availGood int64 // not a server failure (outcome < 500 and != 429)
	latGood   int64 // availGood and latency <= target
}

// SLO tracks error-budget burn against the configured objectives over a
// ring of Step-wide buckets spanning the slow window. Observe is a
// handful of integer updates under a mutex; State sums the ring.
type SLO struct {
	mu      sync.Mutex
	cfg     SLOConfig
	now     func() time.Time
	buckets []sloBucket
	last    int64 // absolute bucket index of the newest bucket; -1 empty
}

// NewSLO returns a tracker for cfg with an injected clock (time.Now when
// nil).
func NewSLO(cfg SLOConfig, now func() time.Time) *SLO {
	cfg = cfg.withDefaults()
	if now == nil {
		now = time.Now
	}
	n := int(cfg.SlowWindow / cfg.Step)
	if n < 1 {
		n = 1
	}
	return &SLO{cfg: cfg, now: now, buckets: make([]sloBucket, n), last: -1}
}

// Config returns the resolved (defaulted) configuration.
func (s *SLO) Config() SLOConfig {
	if s == nil {
		return SLOConfig{}.withDefaults()
	}
	return s.cfg
}

// Observe records one completed query. Nil-safe.
func (s *SLO) Observe(latency time.Duration, outcome int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	b := s.advance(s.now().Unix())
	b.total++
	if outcome < 500 && outcome != 429 {
		b.availGood++
		if latency <= s.cfg.LatencyTarget {
			b.latGood++
		}
	}
	s.mu.Unlock()
}

// advance rotates the ring to the bucket containing unix-seconds t and
// returns it. Callers hold s.mu.
func (s *SLO) advance(t int64) *sloBucket {
	idx := t / int64(s.cfg.Step/time.Second)
	if s.last < 0 {
		s.last = idx
	} else if idx > s.last {
		gap := idx - s.last
		if gap > int64(len(s.buckets)) {
			gap = int64(len(s.buckets))
		}
		for i := int64(1); i <= gap; i++ {
			s.buckets[(s.last+i)%int64(len(s.buckets))] = sloBucket{}
		}
		s.last = idx
	} else if idx < s.last {
		idx = s.last // clock skew: charge the newest bucket
	}
	return &s.buckets[idx%int64(len(s.buckets))]
}

// SLIState is one SLI's burn-rate view.
type SLIState struct {
	// Objective is the configured good-fraction target.
	Objective float64 `json:"objective"`
	// FastBurn and SlowBurn are the error-budget burn rates over the two
	// windows: (bad fraction) / (1 - objective). 1.0 means the budget is
	// being consumed exactly at the sustainable rate; 0 means no errors.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// BudgetRemaining is the fraction of the slow window's error budget
	// left: 1 - SlowBurn (floored at 0).
	BudgetRemaining float64 `json:"budget_remaining"`
	// Breach reports a page-worthy state: the fast window burning past
	// its threshold, or the slow window past its own.
	Breach bool `json:"breach"`
}

// SLOState is the full objective state surfaced at /statz and in the
// Server-Timing response header.
type SLOState struct {
	// Time is when the state was computed.
	Time time.Time `json:"time"`
	// LatencyTargetMS echoes the configured latency goal.
	LatencyTargetMS int64 `json:"latency_target_ms"`
	// FastWindowSeconds and SlowWindowSeconds echo the windows.
	FastWindowSeconds int64 `json:"fast_window_seconds"`
	SlowWindowSeconds int64 `json:"slow_window_seconds"`
	// Latency and Availability are the two tracked SLIs.
	Latency      SLIState `json:"latency"`
	Availability SLIState `json:"availability"`
}

// Breach reports whether either SLI is breaching.
func (st SLOState) Breach() bool { return st.Latency.Breach || st.Availability.Breach }

// State computes the current burn-rate view. Nil-safe (returns zeros).
func (s *SLO) State() SLOState {
	if s == nil {
		return SLOState{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	s.advance(now.Unix()) // age out stale buckets before summing

	stepSec := int64(s.cfg.Step / time.Second)
	sum := func(window time.Duration) (total, availGood, latGood int64) {
		n := int(int64(window/time.Second) / stepSec)
		if n > len(s.buckets) {
			n = len(s.buckets)
		}
		for i := 0; i < n; i++ {
			b := s.buckets[(s.last-int64(i)+2*int64(len(s.buckets)))%int64(len(s.buckets))]
			total += b.total
			availGood += b.availGood
			latGood += b.latGood
		}
		return
	}
	burn := func(bad, total int64, objective float64) float64 {
		if total == 0 {
			return 0
		}
		return (float64(bad) / float64(total)) / (1 - objective)
	}

	fTot, fAvail, fLat := sum(s.cfg.FastWindow)
	sTot, sAvail, sLat := sum(s.cfg.SlowWindow)

	st := SLOState{
		Time:              now,
		LatencyTargetMS:   s.cfg.LatencyTarget.Milliseconds(),
		FastWindowSeconds: int64(s.cfg.FastWindow / time.Second),
		SlowWindowSeconds: int64(s.cfg.SlowWindow / time.Second),
	}

	// Latency SLI: fast fraction of available (non-failed) queries.
	st.Latency = SLIState{
		Objective: s.cfg.LatencyObjective,
		FastBurn:  burn(fAvail-fLat, fAvail, s.cfg.LatencyObjective),
		SlowBurn:  burn(sAvail-sLat, sAvail, s.cfg.LatencyObjective),
	}
	// Availability SLI: non-failed fraction of all queries.
	st.Availability = SLIState{
		Objective: s.cfg.AvailabilityObjective,
		FastBurn:  burn(fTot-fAvail, fTot, s.cfg.AvailabilityObjective),
		SlowBurn:  burn(sTot-sAvail, sTot, s.cfg.AvailabilityObjective),
	}
	for _, sli := range []*SLIState{&st.Latency, &st.Availability} {
		sli.BudgetRemaining = 1 - sli.SlowBurn
		if sli.BudgetRemaining < 0 {
			sli.BudgetRemaining = 0
		}
		sli.Breach = sli.FastBurn >= s.cfg.FastBurnThreshold ||
			sli.SlowBurn >= s.cfg.SlowBurnThreshold
	}
	return st
}
