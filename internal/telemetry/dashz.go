package telemetry

// DashzHTML is the self-contained /dashz dashboard: no external assets,
// no frameworks. It fetches /statz?format=json on an interval and
// renders the SLO banner, the per-class cost table, and one SVG
// sparkline per series from the finest rollup window.
const DashzHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>ceci dashz</title>
<style>
  body { font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 1.5em; background: #101418; color: #d7dde4; }
  h1 { font-size: 16px; } h2 { font-size: 14px; margin-top: 1.6em; }
  a { color: #6ab0f3; }
  .slo { display: flex; gap: 1em; flex-wrap: wrap; }
  .card { background: #181e25; border: 1px solid #2a333d; border-radius: 6px;
          padding: .7em 1em; min-width: 220px; }
  .card .big { font-size: 20px; }
  .ok { color: #63d471; } .breach { color: #ff5c57; font-weight: bold; }
  table { border-collapse: collapse; margin-top: .5em; }
  th, td { padding: .15em .7em; text-align: right; border-bottom: 1px solid #232b34; }
  th { color: #8a97a5; } td:first-child, th:first-child { text-align: left; }
  .charts { display: grid; grid-template-columns: repeat(auto-fill, minmax(290px, 1fr));
            gap: .8em; margin-top: .5em; }
  .chart { background: #181e25; border: 1px solid #2a333d; border-radius: 6px; padding: .5em .7em; }
  .chart .name { color: #8a97a5; overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
  .chart .val { float: right; color: #d7dde4; }
  svg { display: block; width: 100%; height: 44px; margin-top: .3em; }
  polyline { fill: none; stroke: #6ab0f3; stroke-width: 1.5; }
  .err { color: #ff5c57; }
</style>
</head>
<body>
<h1>ceci dashz <span id="at" style="color:#8a97a5"></span></h1>
<p><a href="/statz">/statz</a> · <a href="/statz?format=text">/statz?format=text</a> ·
   <a href="/queryz">/queryz</a> · <a href="/cachez">/cachez</a></p>
<div id="slo" class="slo"></div>
<h2>query classes by enum cpu</h2>
<div id="classes"></div>
<h2>series</h2>
<div id="charts" class="charts"></div>
<script>
"use strict";
function fmtDur(us) {
  if (us >= 1e6) return (us / 1e6).toFixed(2) + "s";
  if (us >= 1e3) return (us / 1e3).toFixed(2) + "ms";
  return us + "µs";
}
function fmtVal(v) {
  if (!isFinite(v)) return "-";
  if (Math.abs(v) >= 1e9) return (v / 1e9).toFixed(2) + "G";
  if (Math.abs(v) >= 1e6) return (v / 1e6).toFixed(2) + "M";
  if (Math.abs(v) >= 1e3) return (v / 1e3).toFixed(2) + "k";
  return Math.abs(v) < 10 && v !== Math.round(v) ? v.toFixed(3) : String(v);
}
function spark(points) {
  if (!points || points.length < 2) return "<svg></svg>";
  const w = 280, h = 40;
  let lo = Infinity, hi = -Infinity;
  for (const p of points) { if (p.v < lo) lo = p.v; if (p.v > hi) hi = p.v; }
  if (hi === lo) { hi += 1; lo -= 1; }
  const t0 = points[0].t, t1 = points[points.length - 1].t || t0 + 1;
  const pts = points.map(p =>
    ((p.t - t0) / (t1 - t0 || 1) * w).toFixed(1) + "," +
    (h - (p.v - lo) / (hi - lo) * (h - 4) - 2).toFixed(1)).join(" ");
  return '<svg viewBox="0 0 ' + w + " " + h + '" preserveAspectRatio="none">' +
         '<polyline points="' + pts + '"/></svg>';
}
function sliCard(name, s) {
  const cls = s.breach ? "breach" : "ok";
  const state = s.breach ? "BREACH" : "ok";
  return '<div class="card"><div>' + name + " (objective " + s.objective + ")</div>" +
    '<div class="big ' + cls + '">' + state + "</div>" +
    "<div>fast burn " + s.fast_burn.toFixed(2) + " · slow burn " + s.slow_burn.toFixed(2) + "</div>" +
    "<div>budget remaining " + (s.budget_remaining * 100).toFixed(1) + "%</div></div>";
}
function classTable(classes) {
  if (!classes || !classes.length) return "<p>no queries yet</p>";
  let t = "<table><tr><th>class</th><th>count</th><th>errs</th><th>hits</th>" +
          "<th>cpu</th><th>total</th><th>max</th><th>embeddings</th></tr>";
  for (const c of classes.slice(0, 30)) {
    t += "<tr><td>" + c.hash + "</td><td>" + c.count + "</td><td>" + c.errors +
         "</td><td>" + c.cache_hits + "</td><td>" + fmtDur(c.resources.cpu_us) +
         "</td><td>" + fmtDur(c.total_us) + "</td><td>" + fmtDur(c.max_us) +
         "</td><td>" + c.resources.embeddings + "</td></tr>";
  }
  return t + "</table>";
}
async function refresh() {
  try {
    const r = await fetch("/statz");
    const d = await r.json();
    document.getElementById("at").textContent = "@ " + d.time;
    document.getElementById("slo").innerHTML =
      sliCard("latency ≤ " + d.slo.latency_target_ms + "ms", d.slo.latency) +
      sliCard("availability", d.slo.availability) +
      '<div class="card"><div>queries</div><div class="big">' + d.queries +
      '</div><div>' + d.errors + " errors</div></div>";
    document.getElementById("classes").innerHTML = classTable(d.classes);
    const names = Object.keys(d.series || {}).sort();
    let html = "";
    for (const n of names) {
      const ws = d.series[n];
      if (!ws || !ws.length || !ws[0].points || !ws[0].points.length) continue;
      const pts = ws[0].points;
      html += '<div class="chart"><div class="name"><span class="val">' +
        fmtVal(pts[pts.length - 1].v) + "</span>" + n + "</div>" + spark(pts) + "</div>";
    }
    document.getElementById("charts").innerHTML = html || "<p>no samples yet</p>";
  } catch (e) {
    document.getElementById("at").innerHTML = '<span class="err">fetch failed: ' + e + "</span>";
  }
}
refresh();
setInterval(refresh, 5000);
</script>
</body>
</html>
`
