package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ceci/internal/obs"
)

func testHub(clk *fakeClock) *Hub {
	return NewHub(Options{
		Now:            clk.Now,
		Resolutions:    []Resolution{{Step: 10 * time.Second, Len: 30}},
		SampleInterval: 10 * time.Second,
		SLO: SLOConfig{
			LatencyTarget: 100 * time.Millisecond,
			FastWindow:    time.Minute,
			SlowWindow:    10 * time.Minute,
		},
	})
}

func TestHubSampleAndStatz(t *testing.T) {
	clk := newFakeClock()
	h := testHub(clk)

	reg := obs.NewRegistry()
	reg.SetSource("svc", func() map[string]int64 { return map[string]int64{"inflight": 3} })
	lat := obs.NewHistogram(obs.LatencyBuckets())
	lat.Observe(0.002)
	lat.Observe(0.004)
	reg.SetHistogram("query_seconds", lat)
	h.BindRegistry(reg)

	h.ObserveQuery(obs.QueryRecord{
		QueryHash: "cafe", QueryVertices: 4, Outcome: 200, TotalUS: 1500,
		Resources: &obs.QueryResources{CPUUS: 1200, Units: 2, Embeddings: 10},
	})
	h.ObserveQuery(obs.QueryRecord{
		QueryHash: "cafe", QueryVertices: 4, Outcome: 504, TotalUS: 900000,
	})

	h.Sample()
	clk.Advance(10 * time.Second)
	h.Sample()

	var doc Statz
	b, err := h.StatzJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Queries != 2 || doc.Errors != 1 {
		t.Fatalf("queries/errors = %d/%d", doc.Queries, doc.Errors)
	}
	if len(doc.Classes) != 1 || doc.Classes[0].Hash != "cafe" || doc.Classes[0].Count != 2 {
		t.Fatalf("classes = %+v", doc.Classes)
	}
	if doc.Totals.CPUUS != 1200 || doc.Totals.Embeddings != 10 {
		t.Fatalf("totals = %+v", doc.Totals)
	}

	// Sampled series: registry gauges, histogram derivations, ledger
	// aggregates, runtime gauges, SLO burns.
	for _, name := range []string{
		"svc_inflight", "query_seconds_count", "query_seconds_p50",
		"ledger_queries", "ledger_cpu_seconds",
		"runtime_goroutines", "runtime_heap_bytes",
		"slo_availability_slow_burn",
	} {
		ws, ok := doc.Series[name]
		if !ok || len(ws) == 0 || len(ws[0].Points) == 0 {
			t.Fatalf("series %q missing from statz (have %d series)", name, len(doc.Series))
		}
	}
	if pts := doc.Series["svc_inflight"][0].Points; len(pts) != 2 || pts[1].V != 3 {
		t.Fatalf("svc_inflight = %+v, want two samples of 3", pts)
	}
	if pts := doc.Series["ledger_queries"][0].Points; pts[len(pts)-1].V != 2 {
		t.Fatalf("ledger_queries = %+v", pts)
	}

	// One failed query of two, availability objective 0.999 → slow burn
	// 0.5/0.001 = 500.
	if got := doc.SLO.Availability.SlowBurn; got < 499.99 || got > 500.01 {
		t.Fatalf("availability slow burn = %g, want ~500", got)
	}
	if !doc.SLO.Availability.Breach {
		t.Fatalf("burn 500 must breach")
	}

	// The SLO gauge source registered back into the registry.
	gs := reg.GaugeSources()
	if gs["slo"]["availability_breach"] != 1 {
		t.Fatalf("slo gauge source = %+v", gs["slo"])
	}

	text := h.StatzText()
	for _, want := range []string{"slo (latency target 100ms", "BREACH", "cafe", "resource ledger:", "series ("} {
		if !strings.Contains(text, want) {
			t.Fatalf("statz text missing %q:\n%s", want, text)
		}
	}
}

func TestHubHistogramDeltaQuantiles(t *testing.T) {
	clk := newFakeClock()
	h := testHub(clk)
	reg := obs.NewRegistry()
	hist := obs.NewHistogram([]float64{1, 10, 100})
	reg.SetHistogram("card", hist)
	h.BindRegistry(reg)

	// First window: values near 1.
	hist.Observe(0.5)
	hist.Observe(0.6)
	h.Sample()
	clk.Advance(10 * time.Second)

	// Second window: values near 100. The p50 series must reflect only
	// the delta window, not the cumulative distribution.
	for i := 0; i < 10; i++ {
		hist.Observe(60)
	}
	h.Sample()

	pts := h.Store().Snapshot()["card_p50"][0].Points
	if len(pts) != 2 {
		t.Fatalf("p50 points = %+v", pts)
	}
	if last := pts[len(pts)-1].V; last <= 10 || last > 100 {
		t.Fatalf("delta-window p50 = %g, want within (10,100] bucket", last)
	}
	cnt := h.Store().Snapshot()["card_count"][0].Points
	if cnt[len(cnt)-1].V != 12 {
		t.Fatalf("count series = %+v, want cumulative 12", cnt)
	}
}

func TestHubStartStop(t *testing.T) {
	h := NewHub(Options{SampleInterval: time.Millisecond})
	h.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if ws, ok := h.Store().Snapshot()["runtime_goroutines"]; ok && len(ws[0].Points) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background sampler produced no samples")
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.Stop()
	h.Stop() // idempotent

	unstarted := NewHub(Options{})
	unstarted.Stop() // must not hang
}
