package telemetry

import (
	"testing"
	"time"

	"ceci/internal/setops"
)

func TestLedgerSnapshot(t *testing.T) {
	l := NewLedger()
	l.AddUnit(2*time.Millisecond, 10, 3, 4096)
	l.AddUnit(3*time.Millisecond, 20, 5, 1024) // smaller scratch: peak keeps 4096

	var d setops.KernelStats
	d.Calls[setops.KernelMerge] = 4
	d.Scanned[setops.KernelMerge] = 400
	d.Emitted[setops.KernelMerge] = 40
	d.Calls[setops.KernelProbe] = 2
	d.Scanned[setops.KernelProbe] = 100
	d.Emitted[setops.KernelProbe] = 10
	l.AddKernels(d)
	l.SetAllocDelta(1<<20, 99)

	r := l.Snapshot()
	if r.CPUUS != 5000 || r.Units != 2 || r.RecursiveCalls != 30 || r.Embeddings != 8 {
		t.Fatalf("snapshot = %+v", r)
	}
	if r.PeakScratchBytes != 4096 {
		t.Fatalf("peak scratch = %d, want max not sum", r.PeakScratchBytes)
	}
	if r.AllocBytes != 1<<20 || r.AllocObjects != 99 {
		t.Fatalf("alloc delta = %d/%d", r.AllocBytes, r.AllocObjects)
	}
	if len(r.Kernels) != 2 {
		t.Fatalf("kernel mix = %+v, want merge and probe only", r.Kernels)
	}
	if r.Kernels[0].Kernel != "merge" || r.Kernels[0].Calls != 4 || r.Kernels[0].Scanned != 400 {
		t.Fatalf("merge mix = %+v", r.Kernels[0])
	}
	if r.Kernels[1].Kernel != "probe" || r.Kernels[1].Emitted != 10 {
		t.Fatalf("probe mix = %+v", r.Kernels[1])
	}
}

func TestLedgerNilSafe(t *testing.T) {
	var l *Ledger
	l.AddUnit(time.Second, 1, 1, 1)
	l.AddKernels(setops.KernelStats{})
	l.SetAllocDelta(1, 1)
	if l.Snapshot() != nil {
		t.Fatalf("nil ledger snapshot must be nil")
	}
	AllocWatermark{}.ChargeTo(nil) // must not panic
}

func TestLedgerChargeAllocFree(t *testing.T) {
	l := NewLedger()
	var d setops.KernelStats
	d.Calls[setops.KernelBitset] = 1
	avg := testing.AllocsPerRun(100, func() {
		l.AddUnit(time.Microsecond, 5, 1, 2048)
		l.AddKernels(d)
	})
	if avg != 0 {
		t.Fatalf("ledger charge allocates %.1f times per unit", avg)
	}
}

func TestAllocWatermark(t *testing.T) {
	l := NewLedger()
	w := StartAllocWatermark()
	sink = make([]byte, 1<<16)
	w.ChargeTo(l)
	r := l.Snapshot()
	if r.AllocBytes < 1<<16 {
		t.Fatalf("alloc delta = %d, want >= %d", r.AllocBytes, 1<<16)
	}
	if r.AllocObjects < 1 {
		t.Fatalf("alloc objects = %d", r.AllocObjects)
	}
}

// sink defeats allocation sinking in TestAllocWatermark.
var sink []byte
