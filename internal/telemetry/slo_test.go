package telemetry

import (
	"math"
	"testing"
	"time"
)

func testSLO(clk *fakeClock) *SLO {
	return NewSLO(SLOConfig{
		LatencyTarget:         100 * time.Millisecond,
		LatencyObjective:      0.9,
		AvailabilityObjective: 0.99,
		FastWindow:            time.Minute,
		SlowWindow:            10 * time.Minute,
		Step:                  10 * time.Second,
	}, clk.Now)
}

func almost(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

func TestSLOBurnRateMath(t *testing.T) {
	clk := newFakeClock()
	s := testSLO(clk)

	// 100 queries over the fast window: 80 fast, 15 slow, 5 failed.
	for i := 0; i < 100; i++ {
		switch {
		case i < 5:
			s.Observe(10*time.Millisecond, 500)
		case i < 20:
			s.Observe(300*time.Millisecond, 200) // slow but successful
		default:
			s.Observe(10*time.Millisecond, 200)
		}
		if i%20 == 19 {
			clk.Advance(10 * time.Second)
		}
	}

	st := s.State()
	// Availability: 5 bad of 100, objective 0.99 → burn = 0.05/0.01 = 5.
	if !almost(st.Availability.FastBurn, 5) || !almost(st.Availability.SlowBurn, 5) {
		t.Fatalf("availability burn = %+v, want 5", st.Availability)
	}
	// Latency: 15 slow of 95 successful, objective 0.9 → burn =
	// (15/95)/0.1 ≈ 1.5789.
	want := (15.0 / 95.0) / 0.1
	if !almost(st.Latency.FastBurn, want) || !almost(st.Latency.SlowBurn, want) {
		t.Fatalf("latency burn = %+v, want %g", st.Latency, want)
	}
	if !almost(st.Availability.BudgetRemaining, 0) {
		// SlowBurn 5 floors remaining at 0.
		t.Fatalf("availability budget = %g, want 0", st.Availability.BudgetRemaining)
	}
	if st.Latency.Breach || st.Availability.Breach {
		t.Fatalf("burns below thresholds must not breach: %+v", st)
	}
}

func TestSLOBreachAndRecovery(t *testing.T) {
	clk := newFakeClock()
	s := testSLO(clk)

	// Total outage: every query fails. Availability burn = 1/0.01 = 100,
	// far past both default thresholds.
	for i := 0; i < 60; i++ {
		s.Observe(time.Millisecond, 503)
		clk.Advance(time.Second)
	}
	st := s.State()
	if !almost(st.Availability.FastBurn, 100) {
		t.Fatalf("outage fast burn = %g, want 100", st.Availability.FastBurn)
	}
	if !st.Availability.Breach || !st.Breach() {
		t.Fatalf("outage must breach: %+v", st.Availability)
	}

	// Shed queries (429) also consume availability budget.
	clk.Advance(10 * time.Minute) // age the outage out of both windows
	s.Observe(time.Millisecond, 429)
	st = s.State()
	if !almost(st.Availability.FastBurn, 100) {
		t.Fatalf("shed burn = %g, want 100 (1 bad of 1)", st.Availability.FastBurn)
	}

	// Client errors (400) do not.
	clk.Advance(10 * time.Minute)
	s.Observe(time.Millisecond, 400)
	st = s.State()
	if st.Availability.FastBurn != 0 {
		t.Fatalf("client-error burn = %g, want 0", st.Availability.FastBurn)
	}
	if st.Availability.Breach {
		t.Fatalf("clean window must not breach")
	}
}

func TestSLOWindowsDiverge(t *testing.T) {
	clk := newFakeClock()
	s := testSLO(clk)

	// Nine minutes of clean traffic, then one minute of failures: the
	// fast window (1m) sees only the failures, the slow window (10m)
	// dilutes them 1:10.
	for i := 0; i < 9*6; i++ {
		s.Observe(time.Millisecond, 200)
		clk.Advance(10 * time.Second)
	}
	for i := 0; i < 6; i++ {
		s.Observe(time.Millisecond, 500)
		clk.Advance(10 * time.Second)
	}
	// Step back inside the last bucket so State's advance doesn't age it.
	clk.t = clk.t.Add(-time.Second)

	st := s.State()
	if !almost(st.Availability.FastBurn, 100) {
		t.Fatalf("fast burn = %g, want 100 (window is all failures)", st.Availability.FastBurn)
	}
	if !almost(st.Availability.SlowBurn, 10) {
		t.Fatalf("slow burn = %g, want 10 (6 bad of 60)", st.Availability.SlowBurn)
	}
}

func TestSLODefaults(t *testing.T) {
	cfg := SLOConfig{}.withDefaults()
	if cfg.LatencyTarget != 500*time.Millisecond || cfg.LatencyObjective != 0.99 ||
		cfg.AvailabilityObjective != 0.999 || cfg.FastWindow != 5*time.Minute ||
		cfg.SlowWindow != time.Hour || cfg.FastBurnThreshold != 14.4 ||
		cfg.SlowBurnThreshold != 6 || cfg.Step != 10*time.Second {
		t.Fatalf("defaults = %+v", cfg)
	}
	var nilSLO *SLO
	nilSLO.Observe(time.Second, 200) // must not panic
	if st := nilSLO.State(); st.Breach() {
		t.Fatalf("nil SLO state = %+v", st)
	}
}
