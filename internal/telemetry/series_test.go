package telemetry

import (
	"math"
	"testing"
	"time"

	"ceci/internal/obs"
)

// fakeClock is a hand-advanced clock shared by the deterministic tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 0, 0, time.UTC)}
}
func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

func TestStoreRollups(t *testing.T) {
	clk := newFakeClock()
	st := NewStore(clk.Now, []Resolution{
		{Step: 10 * time.Second, Len: 6},
		{Step: time.Minute, Len: 4},
	})

	// One observation every 10s for two minutes; the value counts up.
	for i := 0; i < 12; i++ {
		st.Observe("v", float64(i))
		clk.Advance(10 * time.Second)
	}

	snap := st.Snapshot()
	ws, ok := snap["v"]
	if !ok || len(ws) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}

	// Finest ring holds the last 6 buckets: values 6..11.
	fine := ws[0]
	if fine.StepSeconds != 10 || len(fine.Points) != 6 {
		t.Fatalf("fine window = %+v", fine)
	}
	for i, p := range fine.Points {
		if want := float64(6 + i); p.V != want {
			t.Fatalf("fine point %d = %+v, want V=%g", i, p, want)
		}
		if i > 0 && p.T != fine.Points[i-1].T+10 {
			t.Fatalf("fine timestamps not 10s apart: %+v", fine.Points)
		}
	}

	// Minute ring: last value within each minute wins (values 5 and 11),
	// plus the in-progress bucket the final advance opened... the last
	// write happened at t=110s (bucket minute 1, value 11); minute 0
	// closed with value 5.
	coarse := ws[1]
	if coarse.StepSeconds != 60 || len(coarse.Points) != 2 {
		t.Fatalf("coarse window = %+v", coarse)
	}
	if coarse.Points[0].V != 5 || coarse.Points[1].V != 11 {
		t.Fatalf("coarse rollup = %+v, want last-value 5 then 11", coarse.Points)
	}
}

func TestStoreGapsAreVoided(t *testing.T) {
	clk := newFakeClock()
	st := NewStore(clk.Now, []Resolution{{Step: 10 * time.Second, Len: 4}})
	st.Observe("g", 1)
	clk.Advance(30 * time.Second) // skip two buckets
	st.Observe("g", 2)

	pts := st.Snapshot()["g"][0].Points
	if len(pts) != 2 || pts[0].V != 1 || pts[1].V != 2 {
		t.Fatalf("points = %+v, want the two written values only", pts)
	}
	if pts[1].T-pts[0].T != 30 {
		t.Fatalf("gap not preserved in timestamps: %+v", pts)
	}

	// A lap-sized gap must void the whole ring, not resurface stale values.
	clk.Advance(10 * time.Minute)
	st.Observe("g", 3)
	pts = st.Snapshot()["g"][0].Points
	if len(pts) != 1 || pts[0].V != 3 {
		t.Fatalf("after full-ring gap, points = %+v, want just the new value", pts)
	}
}

func TestStoreObserveSteadyStateAllocs(t *testing.T) {
	clk := newFakeClock()
	st := NewStore(clk.Now, DefaultResolutions())
	st.Observe("hot", 0) // create the series
	avg := testing.AllocsPerRun(100, func() {
		st.Observe("hot", 1)
	})
	if avg != 0 {
		t.Fatalf("Observe allocates %.1f times per call in steady state", avg)
	}
}

func TestQuantile(t *testing.T) {
	// 100 observations: 50 in (0,10], 40 in (10,20], 10 in (20, +Inf).
	s := obs.HistogramSnapshot{
		Bounds: []float64{10, 20},
		Counts: []int64{50, 40, 10},
		Count:  100,
	}
	if q := Quantile(s, 0.5); q != 10 {
		t.Fatalf("p50 = %g, want 10 (rank 50 closes the first bucket)", q)
	}
	if q := Quantile(s, 0.25); q != 5 {
		t.Fatalf("p25 = %g, want 5 (midway through the first bucket)", q)
	}
	if q := Quantile(s, 0.75); q != 16.25 {
		t.Fatalf("p75 = %g, want 16.25", q)
	}
	// Quantiles landing in +Inf clamp to the last finite bound.
	if q := Quantile(s, 0.99); q != 20 {
		t.Fatalf("p99 = %g, want clamp to 20", q)
	}
	if q := Quantile(obs.HistogramSnapshot{}, 0.5); !math.IsNaN(q) {
		t.Fatalf("empty quantile = %g, want NaN", q)
	}
}
