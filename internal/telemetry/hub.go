package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ceci/internal/obs"
)

// Options configures a Hub. The zero value works: real clock, default
// resolutions, 10s sampling, default SLO, default class bound.
type Options struct {
	// Now is the injected clock (time.Now when nil). Every component —
	// store buckets, SLO ring, class timestamps — reads it, so tests
	// drive the whole hub with a fake clock.
	Now func() time.Time
	// Resolutions are the store's rollup levels (DefaultResolutions
	// when empty).
	Resolutions []Resolution
	// SampleInterval is how often Start's background sampler runs
	// (default 10s, matching the finest default resolution).
	SampleInterval time.Duration
	// SLO sets the tracked objectives.
	SLO SLOConfig
	// MaxClasses bounds the per-class table (DefaultMaxClasses when
	// non-positive).
	MaxClasses int
}

// Hub is the process's telemetry brain: it owns the time-series store,
// the SLO tracker, and the per-class cost table, samples the obs
// registry and the Go runtime into the store, and renders everything at
// /statz (JSON and text) and /dashz (HTML).
type Hub struct {
	now      func() time.Time
	store    *Store
	slo      *SLO
	classes  *ClassTable
	interval time.Duration

	mu         sync.Mutex
	reg        *obs.Registry
	histTracks map[string]*histTrack

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// histTrack derives rate and quantile series from one cumulative
// histogram: prev is the snapshot at the previous sample, and the
// quantiles are computed over the delta window so they reflect recent
// behavior, not the process's whole life.
type histTrack struct {
	prev obs.HistogramSnapshot
	// precomputed series names, so the steady-state sample pass does no
	// string concatenation
	nCount, nP50, nP99 string
}

// NewHub returns a hub. Call BindRegistry to attach the obs registry,
// Start to begin background sampling (or Sample directly under test).
func NewHub(o Options) *Hub {
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.SampleInterval <= 0 {
		o.SampleInterval = 10 * time.Second
	}
	return &Hub{
		now:        o.Now,
		store:      NewStore(o.Now, o.Resolutions),
		slo:        NewSLO(o.SLO, o.Now),
		classes:    NewClassTable(o.MaxClasses),
		interval:   o.SampleInterval,
		histTracks: make(map[string]*histTrack),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
}

// Store exposes the time-series store (e.g. for service gauges that are
// cheaper to push than to sample).
func (h *Hub) Store() *Store {
	if h == nil {
		return nil
	}
	return h.store
}

// SLO exposes the objective tracker.
func (h *Hub) SLO() *SLO {
	if h == nil {
		return nil
	}
	return h.slo
}

// Classes exposes the per-class cost table.
func (h *Hub) Classes() *ClassTable {
	if h == nil {
		return nil
	}
	return h.classes
}

// BindRegistry attaches the obs registry: its gauge sources and
// histograms are sampled into the store on every Sample pass, and the
// hub registers an "slo" gauge source back into the registry so burn
// state shows up in /metrics and /metrics.json.
func (h *Hub) BindRegistry(reg *obs.Registry) {
	if h == nil || reg == nil {
		return
	}
	h.mu.Lock()
	h.reg = reg
	h.mu.Unlock()
	reg.SetSource("slo", func() map[string]int64 {
		st := h.slo.State()
		breach := func(b bool) int64 {
			if b {
				return 1
			}
			return 0
		}
		return map[string]int64{
			"latency_fast_burn_milli":        int64(st.Latency.FastBurn * 1000),
			"latency_slow_burn_milli":        int64(st.Latency.SlowBurn * 1000),
			"latency_breach":                 breach(st.Latency.Breach),
			"availability_fast_burn_milli":   int64(st.Availability.FastBurn * 1000),
			"availability_slow_burn_milli":   int64(st.Availability.SlowBurn * 1000),
			"availability_breach":            breach(st.Availability.Breach),
			"error_budget_remaining_milli":   int64(st.Availability.BudgetRemaining * 1000),
			"latency_budget_remaining_milli": int64(st.Latency.BudgetRemaining * 1000),
		}
	})
}

// ObserveQuery folds one completed query into the SLO tracker and the
// class table. The service calls it once per query, after recording the
// flight record. Nil-safe.
func (h *Hub) ObserveQuery(rec obs.QueryRecord) {
	if h == nil {
		return
	}
	h.slo.Observe(time.Duration(rec.TotalUS)*time.Microsecond, rec.Outcome)
	h.classes.Observe(rec, h.now())
}

// Sample runs one sampling pass: Go runtime gauges and distributions,
// registry gauge sources and histograms, ledger aggregates, and SLO burn
// gauges all land in the store. Start calls it on a ticker; tests and
// the CI smoke call it directly.
func (h *Hub) Sample() {
	if h == nil {
		return
	}
	// Go runtime.
	rg, rh := obs.RuntimeSnapshot()
	for k, v := range rg {
		h.store.Observe("runtime_"+k, float64(v))
	}
	for k, s := range rh {
		h.trackHistogram("runtime_"+k, s)
	}

	// Registry gauge sources and histograms.
	h.mu.Lock()
	reg := h.reg
	h.mu.Unlock()
	if reg != nil {
		for src, vals := range reg.GaugeSources() {
			for k, v := range vals {
				h.store.Observe(src+"_"+k, float64(v))
			}
		}
		for name, hist := range reg.Histograms() {
			h.trackHistogram(name, hist.Snapshot())
		}
	}

	// Ledger aggregates across classes.
	queries, errors, res := h.classes.Totals()
	h.store.Observe("ledger_queries", float64(queries))
	h.store.Observe("ledger_errors", float64(errors))
	h.store.Observe("ledger_cpu_seconds", float64(res.CPUUS)/1e6)
	h.store.Observe("ledger_units", float64(res.Units))
	h.store.Observe("ledger_recursive_calls", float64(res.RecursiveCalls))
	h.store.Observe("ledger_embeddings", float64(res.Embeddings))
	h.store.Observe("ledger_peak_scratch_bytes", float64(res.PeakScratchBytes))

	// SLO burn state.
	st := h.slo.State()
	h.store.Observe("slo_latency_fast_burn", st.Latency.FastBurn)
	h.store.Observe("slo_latency_slow_burn", st.Latency.SlowBurn)
	h.store.Observe("slo_availability_fast_burn", st.Availability.FastBurn)
	h.store.Observe("slo_availability_slow_burn", st.Availability.SlowBurn)
	h.store.Observe("slo_availability_budget_remaining", st.Availability.BudgetRemaining)
}

// trackHistogram folds one cumulative histogram snapshot into derived
// series: _count (cumulative), and _p50/_p99 over the delta since the
// previous sample (skipped when the window saw no observations).
func (h *Hub) trackHistogram(name string, s obs.HistogramSnapshot) {
	h.mu.Lock()
	tr := h.histTracks[name]
	if tr == nil {
		tr = &histTrack{
			nCount: name + "_count",
			nP50:   name + "_p50",
			nP99:   name + "_p99",
		}
		h.histTracks[name] = tr
	}
	prev := tr.prev
	tr.prev = s
	h.mu.Unlock()

	h.store.Observe(tr.nCount, float64(s.Count))
	delta := deltaSnapshot(s, prev)
	if delta.Count <= 0 {
		return
	}
	h.store.Observe(tr.nP50, Quantile(delta, 0.50))
	h.store.Observe(tr.nP99, Quantile(delta, 0.99))
}

// deltaSnapshot returns cur - prev bucket-wise when the bucket layouts
// match; otherwise (first sample, or runtime histograms whose compacted
// bucket sets shift between samples) it falls back to cur.
func deltaSnapshot(cur, prev obs.HistogramSnapshot) obs.HistogramSnapshot {
	if prev.Count == 0 || len(prev.Bounds) != len(cur.Bounds) || len(prev.Counts) != len(cur.Counts) {
		return cur
	}
	for i := range prev.Bounds {
		if prev.Bounds[i] != cur.Bounds[i] {
			return cur
		}
	}
	d := obs.HistogramSnapshot{
		Bounds: cur.Bounds,
		Counts: make([]int64, len(cur.Counts)),
		Count:  cur.Count - prev.Count,
		Sum:    cur.Sum - prev.Sum,
	}
	for i := range cur.Counts {
		d.Counts[i] = cur.Counts[i] - prev.Counts[i]
	}
	return d
}

// Start launches the background sampler at the configured interval.
// Idempotent; Stop shuts it down.
func (h *Hub) Start() {
	if h == nil {
		return
	}
	h.startOnce.Do(func() {
		go func() {
			defer close(h.done)
			t := time.NewTicker(h.interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					h.Sample()
				case <-h.stop:
					return
				}
			}
		}()
	})
}

// Stop terminates the background sampler (if started) and waits for it.
func (h *Hub) Stop() {
	if h == nil {
		return
	}
	h.stopOnce.Do(func() { close(h.stop) })
	h.startOnce.Do(func() { close(h.done) }) // never started: unblock done
	<-h.done
}

// Statz is the /statz document.
type Statz struct {
	Time           time.Time                 `json:"time"`
	SampleInterval float64                   `json:"sample_interval_seconds"`
	SLO            SLOState                  `json:"slo"`
	Queries        int64                     `json:"queries"`
	Errors         int64                     `json:"errors"`
	Totals         obs.QueryResources        `json:"totals"`
	Classes        []ClassStat               `json:"classes"`
	Series         map[string][]SeriesWindow `json:"series"`
}

// Snapshot assembles the full /statz document.
func (h *Hub) Snapshot() Statz {
	if h == nil {
		return Statz{}
	}
	queries, errors, res := h.classes.Totals()
	return Statz{
		Time:           h.now(),
		SampleInterval: h.interval.Seconds(),
		SLO:            h.slo.State(),
		Queries:        queries,
		Errors:         errors,
		Totals:         res,
		Classes:        h.classes.Snapshot(),
		Series:         h.store.Snapshot(),
	}
}

// StatzJSON renders the /statz document as indented JSON.
func (h *Hub) StatzJSON() ([]byte, error) {
	return json.MarshalIndent(h.Snapshot(), "", "  ")
}

// StatzText renders the /statz document as aligned text tables.
func (h *Hub) StatzText() string {
	st := h.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "statz @ %s\n\n", st.Time.Format(time.RFC3339))

	fmt.Fprintf(&b, "slo (latency target %dms, windows %ds/%ds)\n",
		st.SLO.LatencyTargetMS, st.SLO.FastWindowSeconds, st.SLO.SlowWindowSeconds)
	writeSLI := func(name string, s SLIState) {
		state := "ok"
		if s.Breach {
			state = "BREACH"
		}
		fmt.Fprintf(&b, "  %-14s objective %.4g  fast burn %.3g  slow burn %.3g  budget %.1f%%  %s\n",
			name, s.Objective, s.FastBurn, s.SlowBurn, s.BudgetRemaining*100, state)
	}
	writeSLI("latency", st.SLO.Latency)
	writeSLI("availability", st.SLO.Availability)

	fmt.Fprintf(&b, "\nqueries: %d (%d errors)\n", st.Queries, st.Errors)
	if st.Queries > 0 {
		b.WriteString(st.Totals.Text())
	}

	if len(st.Classes) > 0 {
		fmt.Fprintf(&b, "\nquery classes by enum cpu (%d)\n", len(st.Classes))
		fmt.Fprintf(&b, "  %-16s %6s %6s %5s %12s %12s %12s %10s %10s\n",
			"class", "count", "errs", "hits", "cpu", "total", "max", "embs", "scratch")
		for _, c := range st.Classes {
			fmt.Fprintf(&b, "  %-16s %6d %6d %5d %12v %12v %12v %10d %10d\n",
				c.Hash, c.Count, c.Errors, c.CacheHits,
				time.Duration(c.Resources.CPUUS)*time.Microsecond,
				time.Duration(c.TotalUS)*time.Microsecond,
				time.Duration(c.MaxUS)*time.Microsecond,
				c.Resources.Embeddings, c.Resources.PeakScratchBytes)
		}
	}

	if len(st.Series) > 0 {
		names := make([]string, 0, len(st.Series))
		for n := range st.Series {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "\nseries (%d, finest window)\n", len(names))
		for _, n := range names {
			ws := st.Series[n]
			if len(ws) == 0 || len(ws[0].Points) == 0 {
				continue
			}
			pts := ws[0].Points
			last := pts[len(pts)-1]
			fmt.Fprintf(&b, "  %-40s %3d pts @%ds  last %g\n",
				n, len(pts), ws[0].StepSeconds, last.V)
		}
	}
	return b.String()
}
