// Package telemetry is the observability hub above internal/obs: the
// per-query resource ledger, an in-process time-series store with
// fixed-ring rollups, per-class (canonical query hash) cost aggregation,
// and SLO error-budget burn-rate tracking. internal/obs owns the
// primitive types (Histogram, QueryRecord, QueryResources) and the
// scrape endpoints; this package owns everything that accumulates them
// over time and answers "what is this process doing, and which query
// shapes are expensive" at /statz and /dashz.
package telemetry

import (
	"sync/atomic"
	"time"

	"ceci/internal/obs"
	"ceci/internal/setops"
)

// Ledger accumulates one query's resource consumption. Enumeration
// workers charge it at work-unit boundaries only — never inside the
// zero-allocation depth step — so a ledger adds a handful of atomic adds
// per unit, nothing per embedding. All methods are nil-safe and safe for
// concurrent use; Snapshot converts the counters into the
// obs.QueryResources form that rides the query's flight record.
type Ledger struct {
	cpuNS       atomic.Int64
	units       atomic.Int64
	calls       atomic.Int64
	embeddings  atomic.Int64
	peakScratch atomic.Int64
	allocBytes  atomic.Int64
	allocObjs   atomic.Int64

	kCalls   [setops.NumKernels]atomic.Int64
	kScanned [setops.NumKernels]atomic.Int64
	kEmitted [setops.NumKernels]atomic.Int64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// AddUnit charges one completed work unit: the worker's busy time, the
// recursive calls and embeddings produced since the worker's previous
// charge, and the worker's current scratch footprint (folded into the
// peak via CAS-max).
func (l *Ledger) AddUnit(cpu time.Duration, calls, embeddings, scratchBytes int64) {
	if l == nil {
		return
	}
	l.cpuNS.Add(int64(cpu))
	l.units.Add(1)
	l.calls.Add(calls)
	l.embeddings.Add(embeddings)
	l.maxScratch(scratchBytes)
}

// maxScratch folds b into the peak-scratch high-water mark.
func (l *Ledger) maxScratch(b int64) {
	for {
		cur := l.peakScratch.Load()
		if b <= cur || l.peakScratch.CompareAndSwap(cur, b) {
			return
		}
	}
}

// AddKernels charges a per-kernel work delta (a KernelStats.Sub result).
func (l *Ledger) AddKernels(d setops.KernelStats) {
	if l == nil {
		return
	}
	for k := 0; k < setops.NumKernels; k++ {
		if d.Calls[k] != 0 {
			l.kCalls[k].Add(d.Calls[k])
			l.kScanned[k].Add(d.Scanned[k])
			l.kEmitted[k].Add(d.Emitted[k])
		}
	}
}

// SetAllocDelta records the process heap-allocation delta attributed to
// this query (see AllocWatermark). Overwrites any previous value.
func (l *Ledger) SetAllocDelta(bytes, objects int64) {
	if l == nil {
		return
	}
	l.allocBytes.Store(bytes)
	l.allocObjs.Store(objects)
}

// Snapshot renders the ledger as an obs.QueryResources. Kernels that
// never fired are omitted.
func (l *Ledger) Snapshot() *obs.QueryResources {
	if l == nil {
		return nil
	}
	r := &obs.QueryResources{
		CPUUS:            l.cpuNS.Load() / 1000,
		Units:            l.units.Load(),
		RecursiveCalls:   l.calls.Load(),
		Embeddings:       l.embeddings.Load(),
		PeakScratchBytes: l.peakScratch.Load(),
		AllocBytes:       l.allocBytes.Load(),
		AllocObjects:     l.allocObjs.Load(),
	}
	for k := 0; k < setops.NumKernels; k++ {
		calls := l.kCalls[k].Load()
		if calls == 0 {
			continue
		}
		r.Kernels = append(r.Kernels, obs.KernelMix{
			Kernel:  setops.Kernel(k).String(),
			Calls:   calls,
			Scanned: l.kScanned[k].Load(),
			Emitted: l.kEmitted[k].Load(),
		})
	}
	return r
}

// AllocWatermark is a heap-allocation watermark pair: capture one before
// a query with StartAllocWatermark, call ChargeTo after, and the ledger
// receives the process-wide allocation delta. Under concurrent queries
// the attribution is approximate (neighbors' allocations are included);
// the steady-state enumeration step allocates nothing, so the delta
// predominantly reflects build-phase work.
type AllocWatermark struct {
	bytes, objects int64
}

// StartAllocWatermark captures the current cumulative allocation
// counters from runtime/metrics (two scalar reads, no stop-the-world).
func StartAllocWatermark() AllocWatermark {
	b, o := obs.RuntimeAllocs()
	return AllocWatermark{bytes: b, objects: o}
}

// ChargeTo stores the allocation delta since the watermark into l.
func (w AllocWatermark) ChargeTo(l *Ledger) {
	if l == nil {
		return
	}
	b, o := obs.RuntimeAllocs()
	l.SetAllocDelta(b-w.bytes, o-w.objects)
}
