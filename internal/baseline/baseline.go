// Package baseline defines the shared surface of the comparison systems
// the paper evaluates against (Section 6): a naive bare-graph lister, a
// PsgL-style parallel lister, TurboIso- and CFLMatch-style index matchers,
// and a DualSim-style page-bound enumerator. Each lives in its own
// subpackage and registers itself here so the benchmark harness can
// iterate over them uniformly.
//
// All baselines are independent implementations sharing only the graph
// substrate, the preprocessing helpers, and the symmetry-breaking rules —
// so cross-matcher agreement in tests is meaningful evidence of
// correctness.
package baseline

import (
	"sync/atomic"

	"ceci/internal/graph"
	"ceci/internal/stats"
)

// Options configures a baseline run. The zero value means: GOMAXPROCS
// workers, list everything, break automorphisms, no instrumentation.
type Options struct {
	// Workers bounds parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Limit stops after this many embeddings (0 = all).
	Limit int64
	// DisableSymmetryBreaking lists every automorphic image.
	DisableSymmetryBreaking bool
	// Stats receives instrumentation counters (may be nil).
	Stats *stats.Counters
}

// ForEachFunc is the uniform entry point every baseline implements.
// The embedding slice is indexed by query vertex ID and reused; fn must
// copy to retain and may be called concurrently.
type ForEachFunc func(data, query *graph.Graph, opts Options, fn func(emb []graph.VertexID) bool) error

// CountWith adapts a ForEachFunc into a counter. Safe for baselines that
// invoke the callback concurrently.
func CountWith(f ForEachFunc, data, query *graph.Graph, opts Options) (int64, error) {
	var n atomic.Int64
	err := f(data, query, opts, func([]graph.VertexID) bool {
		n.Add(1)
		return true
	})
	return n.Load(), err
}
