// Package psgl implements a shared-memory analogue of PsgL (Shao et al.,
// SIGMOD 2014), the "all embeddings at once" parallel subgraph lister the
// paper compares against (Figures 7, 8, 13, 14, 18).
//
// Characteristic behaviour reproduced here:
//
//   - level-wise expansion: every partial embedding of level i is
//     materialized before level i+1 starts, so intermediate result sets
//     grow exponentially with query size (the memory blowup the paper
//     reports for the YH graph);
//   - workload redistribution after every expansion: partial embeddings
//     are re-chunked across workers at each level (PsgL chooses a worker
//     per intermediate embedding);
//   - no candidate pruning beyond label/degree checks — no NLC filter, no
//     refinement, no candidate index, which is why CECI's recursive-call
//     reduction (Figure 18) materializes against it.
package psgl

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ceci/internal/auto"
	"ceci/internal/baseline"
	"ceci/internal/graph"
	"ceci/internal/order"
)

// DefaultMaxIntermediates bounds the materialized partial embeddings per
// level. PsgL's level-wise model is inherently exponential in memory —
// the paper reports it needing more than 512 GB on the YH graph — so runs
// that cross this bound abort with ErrIntermediatesExceeded (the "DNF"
// entries in the comparison figures) instead of thrashing the host.
const DefaultMaxIntermediates = 8_000_000

// ErrIntermediatesExceeded reports a run aborted by the memory guard.
var ErrIntermediatesExceeded = errors.New("psgl: intermediate embeddings exceed limit")

// ErrDeadlineExceeded reports a run aborted by the Deadline option.
var ErrDeadlineExceeded = errors.New("psgl: deadline exceeded")

// Options extends the baseline options with the memory guard.
type Options struct {
	baseline.Options
	// MaxIntermediates overrides DefaultMaxIntermediates (0 = default;
	// negative = unlimited).
	MaxIntermediates int
	// Deadline, when non-zero, aborts the expansion once passed (checked
	// between work chunks). PsgL cannot stream results early — levels
	// must fully materialize — so harnesses bound it by wall clock here
	// rather than by an embedding callback.
	Deadline time.Time
}

// ForEach enumerates embeddings of query in data level by level with the
// default memory guard.
func ForEach(data, query *graph.Graph, opts baseline.Options, fn func(emb []graph.VertexID) bool) error {
	return ForEachOpt(data, query, Options{Options: opts}, fn)
}

// ForEachOpt is ForEach with PsgL-specific options.
func ForEachOpt(data, query *graph.Graph, popts Options, fn func(emb []graph.VertexID) bool) error {
	opts := popts.Options
	maxIntermediates := popts.MaxIntermediates
	if maxIntermediates == 0 {
		maxIntermediates = DefaultMaxIntermediates
	}
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		return err
	}
	var cons *auto.Constraints
	if !opts.DisableSymmetryBreaking {
		cons = auto.Compute(query)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	n := query.NumVertices()
	// Level 0: the root's candidates, one partial embedding each.
	var current [][]graph.VertexID
	rootLabels := query.Labels(tree.Root)
	rootDeg := query.Degree(tree.Root)
	for _, v := range data.VerticesWithLabel(rootLabels[0]) {
		if data.Degree(v) < rootDeg || !hasAllLabels(data, v, rootLabels) {
			continue
		}
		emb := make([]graph.VertexID, n)
		emb[tree.Root] = v
		current = append(current, emb)
	}

	// Level-wise: each level is fully materialized before the next one
	// starts — even under a Limit, true to PsgL's all-at-once model.
	var emitted atomic.Int64
	for depth := 1; depth < n && len(current) > 0; depth++ {
		u := tree.Order[depth]
		var aborted abortReason
		current, aborted = expandLevel(data, query, tree, cons, current, depth, u, workers,
			maxIntermediates, popts.Deadline, opts)
		switch aborted {
		case abortMemory:
			return fmt.Errorf("%w: >%d at level %d", ErrIntermediatesExceeded, maxIntermediates, depth)
		case abortDeadline:
			return fmt.Errorf("%w at level %d", ErrDeadlineExceeded, depth)
		}
	}
	// Deliver the completed embeddings.
	for _, emb := range current {
		if opts.Limit > 0 && emitted.Add(1) > opts.Limit {
			break
		}
		if !fn(emb) {
			break
		}
	}
	return nil
}

// Count returns the number of embeddings.
func Count(data, query *graph.Graph, opts baseline.Options) (int64, error) {
	return baseline.CountWith(ForEach, data, query, opts)
}

// abortReason reports why expandLevel stopped early.
type abortReason int

const (
	abortNone abortReason = iota
	abortMemory
	abortDeadline
)

// expandLevel maps every partial embedding to its extensions at query
// vertex u. Partials are re-chunked across workers (PsgL's per-embedding
// work assignment) with per-worker output bins merged at the barrier.
// When maxIntermediates > 0 and the produced count crosses it — or the
// deadline passes — the expansion aborts mid-level before memory or time
// blows up.
func expandLevel(data, query *graph.Graph, tree *order.QueryTree, cons *auto.Constraints,
	current [][]graph.VertexID, depth int, u graph.VertexID, workers, maxIntermediates int,
	deadline time.Time, opts baseline.Options) (next [][]graph.VertexID, aborted abortReason) {

	if workers > len(current) {
		workers = len(current)
	}
	if workers < 1 {
		workers = 1
	}
	bins := make([][][]graph.VertexID, workers)
	var cursor, produced atomic.Int64
	var abort atomic.Int32
	var recursive int64
	var wg sync.WaitGroup
	checkDeadline := !deadline.IsZero()
	matchedTmpl := make([]bool, query.NumVertices())
	for i := 0; i < depth; i++ {
		matchedTmpl[tree.Order[i]] = true
	}
	up := graph.VertexID(tree.Parent[u])
	qLabels := query.Labels(u)
	qDeg := query.Degree(u)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			matched := make([]bool, len(matchedTmpl))
			copy(matched, matchedTmpl)
			var local int64
			prevLen := 0
			const chunk = 64
			for {
				lo := int(cursor.Add(chunk)) - chunk
				if lo >= len(current) || abort.Load() != 0 {
					break
				}
				if checkDeadline && time.Now().After(deadline) {
					abort.Store(int32(abortDeadline))
					break
				}
				hi := lo + chunk
				if hi > len(current) {
					hi = len(current)
				}
				for _, emb := range current[lo:hi] {
					for _, v := range data.Neighbors(emb[up]) {
						if data.Degree(v) < qDeg || !hasAllLabels(data, v, qLabels) {
							continue
						}
						if usedIn(emb, tree, depth, v) {
							continue
						}
						if cons != nil && !cons.Allows(u, v, emb, matched) {
							continue
						}
						// One recursive call per tree-edge expansion of an
						// intermediate match (the paper's Figure 18 metric):
						// non-tree-edge verification happens inside the
						// call, so failed verifications still count — these
						// are the false search paths CECI's NTE candidate
						// intersection avoids exploring at all.
						local++
						if !verifyEdges(data, query, tree, emb, matched, u, v, up) {
							continue
						}
						ext := make([]graph.VertexID, len(emb))
						copy(ext, emb)
						ext[u] = v
						bins[w] = append(bins[w], ext)
					}
				}
				if maxIntermediates > 0 {
					delta := len(bins[w]) - prevLen
					prevLen = len(bins[w])
					if produced.Add(int64(delta)) > int64(maxIntermediates) {
						abort.Store(int32(abortMemory))
						break
					}
				}
			}
			atomic.AddInt64(&recursive, local)
		}(w)
	}
	wg.Wait()
	if opts.Stats != nil {
		opts.Stats.RecursiveCalls.Add(recursive)
	}

	if reason := abortReason(abort.Load()); reason != abortNone {
		return nil, reason
	}
	total := 0
	for _, b := range bins {
		total += len(b)
	}
	next = make([][]graph.VertexID, 0, total)
	for _, b := range bins {
		next = append(next, b...)
	}
	return next, abortNone
}

func usedIn(emb []graph.VertexID, tree *order.QueryTree, depth int, v graph.VertexID) bool {
	for i := 0; i < depth; i++ {
		if emb[tree.Order[i]] == v {
			return true
		}
	}
	return false
}

func verifyEdges(data, query *graph.Graph, tree *order.QueryTree,
	emb []graph.VertexID, matched []bool, u, v, up graph.VertexID) bool {
	for _, w := range query.Neighbors(u) {
		if w == up || !matched[w] {
			continue
		}
		if !data.HasEdge(emb[w], v) {
			return false
		}
	}
	return true
}

func hasAllLabels(g *graph.Graph, v graph.VertexID, labels []graph.Label) bool {
	for _, l := range labels {
		if !g.HasLabel(v, l) {
			return false
		}
	}
	return true
}
