package psgl

import (
	"fmt"
	"time"

	"ceci/internal/auto"
	"ceci/internal/baseline"
	"ceci/internal/graph"
	"ceci/internal/order"
)

// LevelCost records one level-wise expansion: how many intermediate
// embeddings entered the level and how long the (serial) expansion took.
// PsgL's thread scalability is bounded by its per-level barriers: with k
// workers each level costs roughly max(duration/k, granularity floor),
// and the barriers add up — the behaviour behind the paper's Figures
// 13/14 comparison. The harness replays these measured costs through the
// barrier model instead of relying on host core count.
type LevelCost struct {
	Level         int
	Intermediates int
	Duration      time.Duration
}

// Measure runs the level-wise expansion serially, timing every level.
// It returns the per-level costs and the total embedding count.
func Measure(data, query *graph.Graph, opts baseline.Options) ([]LevelCost, int64, error) {
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		return nil, 0, err
	}
	var cons *auto.Constraints
	if !opts.DisableSymmetryBreaking {
		cons = auto.Compute(query)
	}

	n := query.NumVertices()
	var current [][]graph.VertexID
	rootLabels := query.Labels(tree.Root)
	rootDeg := query.Degree(tree.Root)
	start := time.Now()
	for _, v := range data.VerticesWithLabel(rootLabels[0]) {
		if data.Degree(v) < rootDeg || !hasAllLabels(data, v, rootLabels) {
			continue
		}
		emb := make([]graph.VertexID, n)
		emb[tree.Root] = v
		current = append(current, emb)
	}
	costs := []LevelCost{{Level: 0, Intermediates: len(current), Duration: time.Since(start)}}

	for depth := 1; depth < n && len(current) > 0; depth++ {
		u := tree.Order[depth]
		in := len(current)
		t0 := time.Now()
		var aborted abortReason
		current, aborted = expandLevel(data, query, tree, cons, current, depth, u, 1, DefaultMaxIntermediates, time.Time{}, opts)
		if aborted != abortNone {
			return nil, 0, fmt.Errorf("%w: level %d", ErrIntermediatesExceeded, depth)
		}
		costs = append(costs, LevelCost{Level: depth, Intermediates: in, Duration: time.Since(t0)})
	}
	return costs, int64(len(current)), nil
}

// SimulateMakespan models k workers processing the measured levels with a
// barrier after each: level time = ceil(chunks/k) × per-chunk time, where
// work is chunked at the same granularity the parallel implementation
// uses. Small levels stop scaling once chunks < k — exactly PsgL's
// "exhaustive work distribution" weakness.
func SimulateMakespan(costs []LevelCost, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	const chunk = 64
	var total time.Duration
	for _, lc := range costs {
		if lc.Intermediates == 0 || lc.Duration == 0 {
			total += lc.Duration
			continue
		}
		chunks := (lc.Intermediates + chunk - 1) / chunk
		rounds := (chunks + workers - 1) / workers
		// duration × rounds / chunks, ordered to avoid truncation loss.
		total += time.Duration(int64(lc.Duration) * int64(rounds) / int64(chunks))
	}
	return total
}
