package psgl_test

import (
	"errors"
	"testing"

	"ceci/internal/baseline"
	"ceci/internal/baseline/psgl"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/reference"
)

func TestIntermediateGuardTriggers(t *testing.T) {
	// A dense graph with a tiny cap must abort rather than materialize.
	data := gen.ErdosRenyi(200, 4000, 1)
	err := psgl.ForEachOpt(data, gen.QG3(), psgl.Options{MaxIntermediates: 100},
		func([]graph.VertexID) bool { return true })
	if !errors.Is(err, psgl.ErrIntermediatesExceeded) {
		t.Fatalf("err = %v, want ErrIntermediatesExceeded", err)
	}
}

func TestUnlimitedGuardDisabled(t *testing.T) {
	data := gen.ErdosRenyi(50, 200, 2)
	n1, err := psgl.Count(data, gen.QG1(), baseline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var n2 int64
	err = psgl.ForEachOpt(data, gen.QG1(), psgl.Options{MaxIntermediates: -1},
		func([]graph.VertexID) bool { n2++; return true })
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Fatalf("guarded %d != unguarded %d", n1, n2)
	}
}

func TestMeasureMatchesCount(t *testing.T) {
	data := gen.ErdosRenyi(100, 400, 3)
	for _, q := range []*graph.Graph{gen.QG1(), gen.QG2(), gen.QG4()} {
		want, err := psgl.Count(data, q, baseline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		levels, got, err := psgl.Measure(data, q, baseline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("measure count %d != count %d", got, want)
		}
		if len(levels) != q.NumVertices() {
			t.Fatalf("levels = %d, want %d", len(levels), q.NumVertices())
		}
		if levels[0].Intermediates == 0 && want > 0 {
			t.Fatal("level 0 recorded no candidates")
		}
	}
}

func TestSimulateMakespanBarriers(t *testing.T) {
	levels := []psgl.LevelCost{
		{Level: 0, Intermediates: 1000, Duration: 1000},
		{Level: 1, Intermediates: 10, Duration: 100},
	}
	one := psgl.SimulateMakespan(levels, 1)
	if one != 1100 {
		t.Fatalf("1 worker = %v, want 1100", one)
	}
	// With massive parallelism, each level still costs at least one
	// chunk round: the barrier floor.
	many := psgl.SimulateMakespan(levels, 1<<20)
	if many <= 0 || many >= one {
		t.Fatalf("parallel makespan %v not in (0, %v)", many, one)
	}
	// More workers never slower.
	prev := one
	for _, k := range []int{2, 4, 8, 64} {
		cur := psgl.SimulateMakespan(levels, k)
		if cur > prev {
			t.Fatalf("makespan grew at k=%d: %v > %v", k, cur, prev)
		}
		prev = cur
	}
}

func TestPsglMatchesOracleSmall(t *testing.T) {
	data := gen.Fig1Data()
	query := gen.Fig1Query()
	want := reference.Count(data, query, reference.Options{})
	got, err := psgl.Count(data, query, baseline.Options{DisableSymmetryBreaking: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}
