package baseline_test

import (
	"errors"
	"math/rand"
	"testing"

	"ceci/internal/auto"
	"ceci/internal/baseline"
	"ceci/internal/baseline/bare"
	"ceci/internal/baseline/cfl"
	"ceci/internal/baseline/dualsim"
	"ceci/internal/baseline/psgl"
	"ceci/internal/baseline/turboiso"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/reference"
	"ceci/internal/stats"
)

// matchers under test, all sharing the uniform ForEach surface.
var matchers = []struct {
	name string
	f    baseline.ForEachFunc
}{
	{"bare", bare.ForEach},
	{"psgl", psgl.ForEach},
	{"cfl", cfl.ForEach},
	{"turboiso", turboiso.ForEach},
	{"dualsim", func(d, q *graph.Graph, o baseline.Options, fn func([]graph.VertexID) bool) error {
		return dualsim.ForEachOpt(d, q, dualsim.Options{Options: o}, fn) // IO latency off in tests
	}},
}

// TestBaselinesMatchOracle cross-validates every baseline against the
// brute-force reference on randomized labeled graphs, with and without
// symmetry breaking, serial and parallel.
func TestBaselinesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 50; trial++ {
		data := randomGraph(rng, 10+rng.Intn(8), 18+rng.Intn(25), 1+rng.Intn(3))
		query, err := gen.DFSQuery(data, 2+rng.Intn(4), rng)
		if err != nil {
			continue
		}
		wantRaw := reference.Count(data, query, reference.Options{})
		cons := auto.Compute(query)
		wantSym := reference.Count(data, query, reference.Options{Constraints: cons})

		for _, m := range matchers {
			for _, workers := range []int{1, 3} {
				got, err := baseline.CountWith(m.f, data, query, baseline.Options{
					Workers: workers, DisableSymmetryBreaking: true,
				})
				if err != nil {
					t.Fatalf("trial %d %s: %v", trial, m.name, err)
				}
				if got != wantRaw {
					t.Fatalf("trial %d %s/w%d raw: got %d want %d", trial, m.name, workers, got, wantRaw)
				}
				got, err = baseline.CountWith(m.f, data, query, baseline.Options{Workers: workers})
				if err != nil {
					t.Fatalf("trial %d %s: %v", trial, m.name, err)
				}
				if got != wantSym {
					t.Fatalf("trial %d %s/w%d sym: got %d want %d", trial, m.name, workers, got, wantSym)
				}
			}
		}
	}
}

func TestBaselinesOnFig1(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	for _, m := range matchers {
		got, err := baseline.CountWith(m.f, data, query, baseline.Options{Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if got != 2 {
			t.Fatalf("%s: count = %d, want 2", m.name, got)
		}
	}
}

func TestBaselineLimits(t *testing.T) {
	data := gen.Kronecker(8, 8, 3)
	query := gen.QG1()
	total, err := bare.Count(data, query, baseline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if total < 50 {
		t.Skipf("graph too sparse for limit test (only %d triangles)", total)
	}
	for _, m := range matchers {
		got, err := baseline.CountWith(m.f, data, query, baseline.Options{Workers: 2, Limit: 37})
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if got != 37 {
			t.Fatalf("%s: limited count = %d, want 37", m.name, got)
		}
	}
}

func TestCFLMatrixWall(t *testing.T) {
	// CFLMatch must refuse graphs beyond the adjacency-matrix capacity,
	// reproducing the §6.4 observation.
	b := graph.NewBuilder(cfl.MatrixVertexLimit + 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	data := b.MustBuild()
	err := cfl.ForEach(data, gen.QG1(), baseline.Options{}, func([]graph.VertexID) bool { return true })
	if !errors.Is(err, cfl.ErrGraphTooLarge) {
		t.Fatalf("err = %v, want ErrGraphTooLarge", err)
	}
}

func TestTurboIsoBoostedAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 25; trial++ {
		data := randomGraph(rng, 14, 30, 2)
		query, err := gen.DFSQuery(data, 4, rng)
		if err != nil {
			continue
		}
		plain, err := turboiso.Count(data, query, turboiso.Options{})
		if err != nil {
			t.Fatal(err)
		}
		boosted, err := turboiso.Count(data, query, turboiso.Options{Boosted: true})
		if err != nil {
			t.Fatal(err)
		}
		if plain != boosted {
			t.Fatalf("trial %d: boosted %d != plain %d", trial, boosted, plain)
		}
	}
}

func TestDualSimCountsPageLoads(t *testing.T) {
	st := &stats.Counters{}
	data := gen.Kronecker(9, 8, 7)
	_, err := dualsim.Count(data, gen.QG1(), dualsim.Options{
		Options:          baseline.Options{Stats: st, Workers: 2},
		PageSizeVertices: 16,
		BufferPages:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.PageLoads.Load() == 0 {
		t.Fatal("expected page loads with a 4-page buffer")
	}
}

// TestDualSimSmallerBufferLoadsMore: shrinking the buffer must not reduce
// page loads — the IO-amplification behaviour the baseline exists for.
func TestDualSimSmallerBufferLoadsMore(t *testing.T) {
	data := gen.Kronecker(9, 8, 7)
	loads := func(buf int) int64 {
		st := &stats.Counters{}
		_, err := dualsim.Count(data, gen.QG2(), dualsim.Options{
			Options:          baseline.Options{Stats: st, Workers: 1},
			PageSizeVertices: 16,
			BufferPages:      buf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.PageLoads.Load()
	}
	small, large := loads(2), loads(1024)
	if small < large {
		t.Fatalf("buffer 2 loaded %d pages, buffer 1024 loaded %d — expected small <= large to fail, got inversion", small, large)
	}
}

func TestPsglCountsRecursiveCalls(t *testing.T) {
	st := &stats.Counters{}
	data := gen.Kronecker(8, 6, 5)
	n, err := psgl.Count(data, gen.QG1(), baseline.Options{Stats: st, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n > 0 && st.RecursiveCalls.Load() == 0 {
		t.Fatal("psgl did not count expansions")
	}
}

func randomGraph(rng *rand.Rand, n, m, labels int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(labels)))
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.VertexID(perm[i-1]), graph.VertexID(perm[i]))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return b.MustBuild()
}
