// Package turboiso implements a TurboIso-style matcher (Han et al.,
// SIGMOD 2013), compared against in Figure 10.
//
// Faithful characteristics:
//
//   - NEC (neighborhood equivalence class) compression of the query,
//     realized through the shared symmetry-breaking classes;
//   - per-start-vertex candidate regions: for each candidate of the root,
//     the data graph is explored along the query tree to collect a local
//     candidate region (CR), and enumeration happens region by region —
//     this serial region-at-a-time processing is what the paper's §6.4
//     notes "saves memory by serializing the auxiliary data creation and
//     verification";
//   - a locally optimized matching order per region, ranked by candidate
//     count (TurboIso's candidate-size ordering);
//   - non-tree edges verified by adjacency probes.
//
// The Boosted variant (BoostIso's data-side grouping) is approximated by
// deduplicating region exploration across data vertices with identical
// (label, degree, adjacency) signatures; enable with Options.Boosted.
package turboiso

import (
	"sort"

	"ceci/internal/auto"
	"ceci/internal/baseline"
	"ceci/internal/graph"
	"ceci/internal/order"
	"ceci/internal/stats"
)

// Options extends the baseline options with the Boosted toggle.
type Options struct {
	baseline.Options
	// Boosted enables data-side vertex-equivalence grouping, the
	// BoostIso speedup applied on top of TurboIso.
	Boosted bool
}

// ForEach enumerates embeddings of query in data, serially (TurboIso is
// the single-threaded comparison point in the paper's Figure 10).
func ForEach(data, query *graph.Graph, opts baseline.Options, fn func(emb []graph.VertexID) bool) error {
	return ForEachOpt(data, query, Options{Options: opts}, fn)
}

// ForEachOpt is ForEach with TurboIso-specific options.
func ForEachOpt(data, query *graph.Graph, opts Options, fn func(emb []graph.VertexID) bool) error {
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		return err
	}
	var cons *auto.Constraints
	if !opts.DisableSymmetryBreaking {
		cons = auto.Compute(query)
	}

	// Root candidates via label/degree/NLC (TurboIso's start-vertex
	// selection uses the same |cand|/degree ranking CECI adopted).
	var roots []graph.VertexID
	order.ForEachCandidate(data, query, tree.Root, func(v graph.VertexID) {
		roots = append(roots, v)
	})

	s := &searcher{
		data: data, tree: tree, cons: cons, fn: fn,
		limit:   opts.Limit,
		emb:     make([]graph.VertexID, query.NumVertices()),
		matched: make([]bool, query.NumVertices()),
		used:    make([]bool, data.NumVertices()),
		stats:   opts.Stats,
	}
	defer s.flush()

	var boost *boostGroups
	if opts.Boosted {
		boost = groupEquivalent(data, roots)
	}

	for _, v := range roots {
		if boost != nil && boost.skip(v) {
			continue
		}
		cr := exploreRegion(data, tree, v)
		if cr == nil {
			continue
		}
		localOrder := regionOrder(tree, cr)
		reps := []graph.VertexID{v}
		if boost != nil {
			reps = boost.members(v)
		}
		for _, pivot := range reps {
			if cons != nil && !cons.Allows(tree.Root, pivot, s.emb, s.matched) {
				continue
			}
			s.cr = cr
			s.order = localOrder
			s.emb[tree.Root] = pivot
			s.matched[tree.Root] = true
			s.used[pivot] = true
			ok := s.search(1)
			s.matched[tree.Root] = false
			s.used[pivot] = false
			if !ok {
				return nil
			}
		}
	}
	return nil
}

// Count returns the number of embeddings.
func Count(data, query *graph.Graph, opts Options) (int64, error) {
	var n int64
	err := ForEachOpt(data, query, opts, func([]graph.VertexID) bool {
		n++
		return true
	})
	return n, err
}

// region holds per-query-vertex candidate lists local to one start
// vertex: cr[u][parentCand] = sorted candidates of u under parentCand.
type region struct {
	te    []map[graph.VertexID][]graph.VertexID
	sizes []int // total candidates per query vertex, for order ranking
}

// exploreRegion walks the query tree from pivot, collecting the candidate
// region. Returns nil when some query vertex has no candidate (region
// pruned, TurboIso's early stop).
func exploreRegion(data *graph.Graph, tree *order.QueryTree, pivot graph.VertexID) *region {
	n := tree.NumVertices()
	cr := &region{
		te:    make([]map[graph.VertexID][]graph.VertexID, n),
		sizes: make([]int, n),
	}
	for u := range cr.te {
		cr.te[u] = make(map[graph.VertexID][]graph.VertexID)
	}
	frontier := map[graph.VertexID][]graph.VertexID{}
	frontier[tree.Root] = []graph.VertexID{pivot}
	cr.sizes[tree.Root] = 1
	for _, u := range tree.Order[1:] {
		up := graph.VertexID(tree.Parent[u])
		qLabels := tree.Query.Labels(u)
		qDeg := tree.Query.Degree(u)
		seen := map[graph.VertexID]bool{}
		for _, vp := range frontier[up] {
			var vals []graph.VertexID
			for _, v := range data.Neighbors(vp) {
				if data.Degree(v) < qDeg {
					continue
				}
				ok := true
				for _, l := range qLabels {
					if !data.HasLabel(v, l) {
						ok = false
						break
					}
				}
				if ok {
					vals = append(vals, v)
					seen[v] = true
				}
			}
			if len(vals) > 0 {
				cr.te[u][vp] = vals
			}
		}
		if len(seen) == 0 {
			return nil
		}
		lst := make([]graph.VertexID, 0, len(seen))
		for v := range seen {
			lst = append(lst, v)
		}
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		frontier[u] = lst
		cr.sizes[u] = len(lst)
	}
	return cr
}

// regionOrder ranks the non-root query vertices by local candidate count
// (most selective first), constrained to parent-before-child.
func regionOrder(tree *order.QueryTree, cr *region) []graph.VertexID {
	out := make([]graph.VertexID, 0, tree.NumVertices())
	out = append(out, tree.Root)
	avail := append([]graph.VertexID(nil), tree.Children[tree.Root]...)
	for len(avail) > 0 {
		sort.Slice(avail, func(i, j int) bool {
			si, sj := cr.sizes[avail[i]], cr.sizes[avail[j]]
			if si != sj {
				return si < sj
			}
			return avail[i] < avail[j]
		})
		u := avail[0]
		avail = avail[1:]
		out = append(out, u)
		avail = append(avail, tree.Children[u]...)
	}
	return out
}

type searcher struct {
	data    *graph.Graph
	tree    *order.QueryTree
	cons    *auto.Constraints
	cr      *region
	order   []graph.VertexID
	fn      func([]graph.VertexID) bool
	limit   int64
	emitted int64
	emb     []graph.VertexID
	matched []bool
	used    []bool
	stats   *stats.Counters

	recursiveCalls int64
	verifications  int64
}

func (s *searcher) search(depth int) bool {
	if depth == len(s.order) {
		s.emitted++
		if !s.fn(s.emb) {
			return false
		}
		return s.limit == 0 || s.emitted < s.limit
	}
	u := s.order[depth]
	s.recursiveCalls++
	up := graph.VertexID(s.tree.Parent[u])
	for _, v := range s.cr.te[u][s.emb[up]] {
		if s.used[v] {
			continue
		}
		if s.cons != nil && !s.cons.Allows(u, v, s.emb, s.matched) {
			continue
		}
		if !s.verifyEdges(u, v) {
			continue
		}
		s.emb[u] = v
		s.matched[u] = true
		s.used[v] = true
		ok := s.search(depth + 1)
		s.matched[u] = false
		s.used[v] = false
		if !ok {
			return false
		}
	}
	return true
}

// verifyEdges probes every non-tree query edge from u into the matched
// prefix. The local matching order may place NTE neighbors after u, so
// only matched ones are checked here; the remaining ones are checked when
// those vertices are assigned.
func (s *searcher) verifyEdges(u graph.VertexID, v graph.VertexID) bool {
	up := graph.VertexID(s.tree.Parent[u])
	for _, w := range s.tree.Query.Neighbors(u) {
		// The tree edge to the parent is guaranteed by region expansion,
		// and children cannot be matched yet (parent-before-child order);
		// everything else matched is a non-tree edge to probe.
		if w == up || !s.matched[w] {
			continue
		}
		s.verifications++
		if !s.data.HasEdge(s.emb[w], v) {
			return false
		}
	}
	return true
}

func (s *searcher) flush() {
	s.stats.AddRecursive(s.recursiveCalls)
	s.stats.AddEdgeVerifications(s.verifications)
}

// boostGroups clusters root candidates with identical label, degree, and
// adjacency — BoostIso's SEC (syntactic equivalence class) idea applied
// at the start-vertex level: one region exploration serves all members.
type boostGroups struct {
	rep   map[graph.VertexID]graph.VertexID
	byRep map[graph.VertexID][]graph.VertexID
}

func groupEquivalent(data *graph.Graph, roots []graph.VertexID) *boostGroups {
	g := &boostGroups{
		rep:   make(map[graph.VertexID]graph.VertexID, len(roots)),
		byRep: make(map[graph.VertexID][]graph.VertexID),
	}
	// Exact adjacency keys (not hashes): a collision here would merge
	// vertices with different regions and corrupt results.
	bySig := map[string]graph.VertexID{}
	var key []byte
	for _, v := range roots {
		key = key[:0]
		l := data.Label(v)
		key = append(key, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
		for _, w := range data.Neighbors(v) {
			key = append(key, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
		}
		k := string(key)
		r, ok := bySig[k]
		if !ok {
			bySig[k] = v
			r = v
		}
		g.rep[v] = r
		g.byRep[r] = append(g.byRep[r], v)
	}
	return g
}

// skip reports whether v's region is handled by another representative.
func (g *boostGroups) skip(v graph.VertexID) bool { return g.rep[v] != v }

// members returns all candidates sharing v's region.
func (g *boostGroups) members(v graph.VertexID) []graph.VertexID { return g.byRep[v] }
