package turboiso_test

import (
	"math/rand"
	"testing"

	"ceci/internal/auto"
	"ceci/internal/baseline"
	"ceci/internal/baseline/turboiso"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/reference"
	"ceci/internal/stats"
)

func TestRegionExplorationSound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		data := randomLabeled(rng, 16, 45, 3)
		query, err := gen.DFSQuery(data, 3+rng.Intn(3), rng)
		if err != nil {
			continue
		}
		want := reference.Count(data, query, reference.Options{Constraints: auto.Compute(query)})
		for _, boosted := range []bool{false, true} {
			got, err := turboiso.Count(data, query, turboiso.Options{Boosted: boosted})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d boosted=%v: got %d want %d", trial, boosted, got, want)
			}
		}
	}
}

func TestBoostedSharesRegions(t *testing.T) {
	// A graph where many root candidates have identical adjacency: a
	// star with k identical leaves. Boosted mode must explore one region
	// for the whole leaf group but still list each embedding.
	b := graph.NewBuilder(0)
	center := b.AddVertex(0)
	mid := b.AddVertex(1)
	b.AddEdge(center, mid)
	for i := 0; i < 10; i++ {
		leaf := b.AddVertex(2)
		b.AddEdge(mid, leaf)
	}
	data := b.MustBuild()

	// Query: path 2-1-0 (leaf, mid, center labels).
	qb := graph.NewBuilder(0)
	q0 := qb.AddVertex(2)
	q1 := qb.AddVertex(1)
	q2 := qb.AddVertex(0)
	qb.AddEdge(q0, q1)
	qb.AddEdge(q1, q2)
	query := qb.MustBuild()

	plain, err := turboiso.Count(data, query, turboiso.Options{})
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := turboiso.Count(data, query, turboiso.Options{Boosted: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain != 10 || boosted != 10 {
		t.Fatalf("plain=%d boosted=%d, want 10 each", plain, boosted)
	}
}

func TestStatsRecorded(t *testing.T) {
	st := &stats.Counters{}
	data := gen.Fig1Data()
	n, err := turboiso.Count(data, gen.Fig1Query(), turboiso.Options{
		Options: baseline.Options{Stats: st},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count = %d", n)
	}
	if st.RecursiveCalls.Load() == 0 {
		t.Fatal("no recursive calls recorded")
	}
	if st.EdgeVerifications.Load() == 0 {
		t.Fatal("no edge probes recorded (Fig1 query has two non-tree edges)")
	}
}

func randomLabeled(rng *rand.Rand, n, m, labels int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(labels)))
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.VertexID(perm[i-1]), graph.VertexID(perm[i]))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return b.MustBuild()
}
