package cfl_test

import (
	"errors"
	"math/rand"
	"testing"

	"ceci/internal/auto"
	"ceci/internal/baseline"
	"ceci/internal/baseline/cfl"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/reference"
)

func TestMatrixLimitEnforced(t *testing.T) {
	b := graph.NewBuilder(cfl.MatrixVertexLimit + 10)
	b.AddEdge(0, 1)
	err := cfl.ForEach(b.MustBuild(), gen.QG1(), baseline.Options{},
		func([]graph.VertexID) bool { return true })
	if !errors.Is(err, cfl.ErrGraphTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestCPIRefinementSound(t *testing.T) {
	// Cross-check counts against the oracle under both symmetry modes on
	// labeled random graphs: the CPI refinement must not lose embeddings.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		data := randomLabeled(rng, 15, 40, 3)
		query, err := gen.DFSQuery(data, 3+rng.Intn(3), rng)
		if err != nil {
			continue
		}
		want := reference.Count(data, query, reference.Options{Constraints: auto.Compute(query)})
		got, err := cfl.Count(data, query, baseline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: got %d want %d", trial, got, want)
		}
	}
}

func TestFirstKExact(t *testing.T) {
	data := gen.ErdosRenyi(60, 400, 3)
	total, err := cfl.Count(data, gen.QG1(), baseline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if total < 10 {
		t.Skip("too few triangles")
	}
	got, err := cfl.Count(data, gen.QG1(), baseline.Options{Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("limited = %d", got)
	}
}

func randomLabeled(rng *rand.Rand, n, m, labels int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(labels)))
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.VertexID(perm[i-1]), graph.VertexID(perm[i]))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return b.MustBuild()
}
