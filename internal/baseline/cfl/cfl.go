// Package cfl implements a CFLMatch-style matcher (Bi et al., SIGMOD
// 2016), the labeled-graph state of the art the paper compares against in
// Figure 9.
//
// Faithful characteristics:
//
//   - a CPI-like auxiliary structure: per query vertex, tree-edge
//     candidates keyed by the parent's candidates — exactly "CECI minus
//     the NTE lists" — refined by a bottom-up then top-down pass;
//   - non-tree edges verified during enumeration rather than
//     pre-intersected; CFLMatch famously uses an adjacency-matrix
//     representation for O(1) probes, which is why it "failed to run
//     data graphs larger than 500K nodes" (§6.4). We reproduce that
//     limit: graphs above MatrixVertexLimit vertices are rejected with
//     ErrGraphTooLarge.
package cfl

import (
	"errors"
	"fmt"
	"sort"

	"ceci/internal/auto"
	"ceci/internal/baseline"
	"ceci/internal/graph"
	"ceci/internal/order"
)

// MatrixVertexLimit mirrors CFLMatch's adjacency-matrix scalability wall
// (the paper observed failures beyond 500K vertices on a 512 GB server;
// our bit-packed matrix costs n²/8 bytes — 50 MB at the cap — so the cap
// keeps the behaviour while staying laptop-safe).
const MatrixVertexLimit = 20000

// ErrGraphTooLarge reports a data graph beyond the adjacency-matrix cap.
var ErrGraphTooLarge = errors.New("cfl: data graph exceeds adjacency-matrix capacity")

// ForEach enumerates embeddings of query in data. CFLMatch is evaluated
// single-threaded in the paper (§6.2); Workers is accepted but the
// algorithm runs serially regardless, keeping comparisons honest.
func ForEach(data, query *graph.Graph, opts baseline.Options, fn func(emb []graph.VertexID) bool) error {
	if data.NumVertices() > MatrixVertexLimit {
		return fmt.Errorf("%w: %d vertices > %d", ErrGraphTooLarge, data.NumVertices(), MatrixVertexLimit)
	}
	tree, err := order.Preprocess(data, query, order.Options{ForcedRoot: -1, Heuristic: order.PathRanked})
	if err != nil {
		return err
	}
	var cons *auto.Constraints
	if !opts.DisableSymmetryBreaking {
		cons = auto.Compute(query)
	}

	cpi, err := buildCPI(data, tree)
	if err != nil {
		return err
	}
	matrix := newBitMatrix(data)

	s := &searcher{
		data: data, tree: tree, cons: cons, cpi: cpi, matrix: matrix,
		fn:      fn,
		limit:   opts.Limit,
		emb:     make([]graph.VertexID, query.NumVertices()),
		matched: make([]bool, query.NumVertices()),
		used:    make([]bool, data.NumVertices()),
	}
	for _, v := range cpi.cands[tree.Root] {
		if cons != nil && !cons.Allows(tree.Root, v, s.emb, s.matched) {
			continue
		}
		s.emb[tree.Root] = v
		s.matched[tree.Root] = true
		s.used[v] = true
		ok := s.search(1)
		s.matched[tree.Root] = false
		s.used[v] = false
		if !ok {
			break
		}
	}
	if opts.Stats != nil {
		opts.Stats.RecursiveCalls.Add(s.recursiveCalls)
		opts.Stats.EdgeVerifications.Add(s.verifications)
		opts.Stats.IndexBytes.Add(cpi.sizeBytes())
	}
	return nil
}

// Count returns the number of embeddings.
func Count(data, query *graph.Graph, opts baseline.Options) (int64, error) {
	return baseline.CountWith(ForEach, data, query, opts)
}

// cpi is the tree-only candidate index.
type cpi struct {
	cands [][]graph.VertexID                    // per query vertex, sorted candidate set
	te    []map[graph.VertexID][]graph.VertexID // te[u][parentCand] = sorted candidates
}

func buildCPI(data *graph.Graph, tree *order.QueryTree) (*cpi, error) {
	n := tree.NumVertices()
	c := &cpi{
		cands: make([][]graph.VertexID, n),
		te:    make([]map[graph.VertexID][]graph.VertexID, n),
	}
	for u := range c.te {
		c.te[u] = make(map[graph.VertexID][]graph.VertexID)
	}
	// Forward (top-down) construction with LDF+NLC filters.
	order.ForEachCandidate(data, tree.Query, tree.Root, func(v graph.VertexID) {
		c.cands[tree.Root] = append(c.cands[tree.Root], v)
	})
	for _, u := range tree.Order[1:] {
		up := graph.VertexID(tree.Parent[u])
		seen := map[graph.VertexID]bool{}
		qLabels := tree.Query.Labels(u)
		qDeg := tree.Query.Degree(u)
		qSig := graph.NLCOf(tree.Query, u)
		for _, vp := range c.cands[up] {
			var vals []graph.VertexID
			for _, v := range data.Neighbors(vp) {
				if data.Degree(v) < qDeg {
					continue
				}
				ok := true
				for _, l := range qLabels {
					if !data.HasLabel(v, l) {
						ok = false
						break
					}
				}
				if !ok || !data.NLC(v).Covers(qSig) {
					continue
				}
				vals = append(vals, v)
				seen[v] = true
			}
			if len(vals) > 0 {
				c.te[u][vp] = vals
			}
		}
		c.cands[u] = sortedKeys(seen)
	}
	// Backward (bottom-up) refinement: drop parent candidates with an
	// empty child entry.
	for i := n - 1; i >= 1; i-- {
		u := tree.Order[i]
		up := graph.VertexID(tree.Parent[u])
		kept := c.cands[up][:0]
		for _, vp := range c.cands[up] {
			if len(c.te[u][vp]) > 0 {
				kept = append(kept, vp)
			} else {
				delete(c.te[u], vp)
			}
		}
		c.cands[up] = kept
	}
	// Second top-down sweep: restrict child entries to surviving parents.
	for _, u := range tree.Order[1:] {
		up := graph.VertexID(tree.Parent[u])
		live := map[graph.VertexID]bool{}
		for _, vp := range c.cands[up] {
			live[vp] = true
		}
		for vp := range c.te[u] {
			if !live[vp] {
				delete(c.te[u], vp)
			}
		}
	}
	return c, nil
}

func (c *cpi) sizeBytes() int64 {
	var n int64
	for u := range c.te {
		for _, vals := range c.te[u] {
			n += int64(len(vals)) * 8
		}
	}
	return n
}

func sortedKeys(m map[graph.VertexID]bool) []graph.VertexID {
	out := make([]graph.VertexID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// bitMatrix is the |V|×|V| adjacency matrix CFLMatch uses for O(1) edge
// verification.
type bitMatrix struct {
	n    int
	bits []uint64
}

func newBitMatrix(g *graph.Graph) *bitMatrix {
	n := g.NumVertices()
	m := &bitMatrix{n: n, bits: make([]uint64, (n*n+63)/64)}
	g.Edges(func(u, v graph.VertexID) bool {
		m.set(int(u), int(v))
		m.set(int(v), int(u))
		return true
	})
	return m
}

func (m *bitMatrix) set(i, j int) {
	k := i*m.n + j
	m.bits[k/64] |= 1 << (k % 64)
}

func (m *bitMatrix) has(i, j int) bool {
	k := i*m.n + j
	return m.bits[k/64]&(1<<(k%64)) != 0
}

type searcher struct {
	data    *graph.Graph
	tree    *order.QueryTree
	cons    *auto.Constraints
	cpi     *cpi
	matrix  *bitMatrix
	fn      func([]graph.VertexID) bool
	limit   int64
	emitted int64
	emb     []graph.VertexID
	matched []bool
	used    []bool

	recursiveCalls int64
	verifications  int64
}

func (s *searcher) search(depth int) bool {
	if depth == len(s.tree.Order) {
		s.emitted++
		if !s.fn(s.emb) {
			return false
		}
		return s.limit == 0 || s.emitted < s.limit
	}
	u := s.tree.Order[depth]
	s.recursiveCalls++
	up := graph.VertexID(s.tree.Parent[u])
	for _, v := range s.cpi.te[u][s.emb[up]] {
		if s.used[v] {
			continue
		}
		if s.cons != nil && !s.cons.Allows(u, v, s.emb, s.matched) {
			continue
		}
		// Verify the non-tree edges via the adjacency matrix.
		ok := true
		for _, un := range s.tree.NTEParents[u] {
			s.verifications++
			if !s.matrix.has(int(s.emb[un]), int(v)) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		s.emb[u] = v
		s.matched[u] = true
		s.used[v] = true
		cont := s.search(depth + 1)
		s.matched[u] = false
		s.used[v] = false
		if !cont {
			return false
		}
	}
	return true
}
