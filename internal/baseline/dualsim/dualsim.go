// Package dualsim implements a DualSim-style page-bound enumerator (Kim
// et al., SIGMOD 2016), the disk-based comparison system of Figures 7–8.
//
// DualSim stores each vertex's adjacency list in slotted disk pages and,
// at any moment, holds only a small set of pages in memory, iterating
// "dual" combinations of pages and running the matching against the
// loaded set. Its defining performance property — the one the paper leans
// on when explaining its speedups ("DualSim loads a set of few slotted
// pages from graph at a time ... is able to supply very limited amount of
// workload in a given time") — is that every adjacency access goes
// through a bounded page buffer, and buffer misses cost simulated IO.
//
// We reproduce exactly that property: the data graph's adjacency is
// partitioned into fixed-size pages held behind a PageStore with an LRU
// buffer of configurable capacity; a miss charges IOLatency and counts in
// Stats.PageLoads. The matching logic itself is the same correct
// backtracking all baselines share, so results stay comparable while the
// IO-bound behaviour dominates run time just as in the original system.
package dualsim

import (
	"container/list"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ceci/internal/auto"
	"ceci/internal/baseline"
	"ceci/internal/graph"
	"ceci/internal/order"
	"ceci/internal/stats"
)

// Options extends baseline options with the page model.
type Options struct {
	baseline.Options
	// PageSizeVertices is how many vertices' adjacency share one page
	// (default 64).
	PageSizeVertices int
	// BufferPages caps the in-memory page buffer (default 64 — a few
	// megabytes, true to DualSim's small-memory design point).
	BufferPages int
	// IOLatency is charged per page miss (default 20µs, a fast-SSD read;
	// 0 disables the sleep but still counts loads).
	IOLatency time.Duration
}

func (o *Options) defaults() {
	if o.PageSizeVertices <= 0 {
		o.PageSizeVertices = 64
	}
	if o.BufferPages <= 0 {
		o.BufferPages = 64
	}
	if o.IOLatency < 0 {
		o.IOLatency = 0
	}
}

// ForEach enumerates embeddings of query in data through the page store.
func ForEach(data, query *graph.Graph, opts baseline.Options, fn func(emb []graph.VertexID) bool) error {
	return ForEachOpt(data, query, Options{Options: opts, IOLatency: 20 * time.Microsecond}, fn)
}

// ForEachOpt is ForEach with page-model options.
func ForEachOpt(data, query *graph.Graph, opts Options, fn func(emb []graph.VertexID) bool) error {
	opts.defaults()
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		return err
	}
	var cons *auto.Constraints
	if !opts.DisableSymmetryBreaking {
		cons = auto.Compute(query)
	}
	store := NewPageStore(data, opts.PageSizeVertices, opts.BufferPages, opts.IOLatency, opts.Stats)

	// Root candidates (label + degree; degree is page metadata, free).
	var roots []graph.VertexID
	rootLabels := query.Labels(tree.Root)
	rootDeg := query.Degree(tree.Root)
	for _, v := range data.VerticesWithLabel(rootLabels[0]) {
		if data.Degree(v) >= rootDeg && hasAllLabels(data, v, rootLabels) {
			roots = append(roots, v)
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(roots) {
		workers = len(roots)
	}
	if workers < 1 {
		return nil
	}

	var emitted atomic.Int64
	var stop atomic.Bool
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := &searcher{
				data: data, query: query, tree: tree, cons: cons,
				store: store, fn: fn, limit: opts.Limit,
				emitted: &emitted, stop: &stop,
				emb:     make([]graph.VertexID, query.NumVertices()),
				matched: make([]bool, query.NumVertices()),
				used:    make([]bool, data.NumVertices()),
			}
			for {
				i := cursor.Add(1) - 1
				if i >= int64(len(roots)) || stop.Load() {
					return
				}
				v := roots[i]
				if cons != nil && !cons.Allows(tree.Root, v, s.emb, s.matched) {
					continue
				}
				s.emb[tree.Root] = v
				s.matched[tree.Root] = true
				s.used[v] = true
				ok := s.search(1)
				s.matched[tree.Root] = false
				s.used[v] = false
				if !ok {
					return
				}
			}
		}()
	}
	wg.Wait()
	return nil
}

// Count returns the number of embeddings.
func Count(data, query *graph.Graph, opts Options) (int64, error) {
	var n atomic.Int64
	err := ForEachOpt(data, query, opts, func([]graph.VertexID) bool {
		n.Add(1)
		return true
	})
	return n.Load(), err
}

type searcher struct {
	data, query *graph.Graph
	tree        *order.QueryTree
	cons        *auto.Constraints
	store       *PageStore
	fn          func([]graph.VertexID) bool
	limit       int64
	emitted     *atomic.Int64
	stop        *atomic.Bool
	emb         []graph.VertexID
	matched     []bool
	used        []bool
}

func (s *searcher) emit() bool {
	if s.limit > 0 {
		n := s.emitted.Add(1)
		if n > s.limit {
			s.stop.Store(true)
			return false
		}
		if !s.fn(s.emb) || n == s.limit {
			s.stop.Store(true)
			return false
		}
		return true
	}
	if !s.fn(s.emb) {
		s.stop.Store(true)
		return false
	}
	return true
}

func (s *searcher) search(depth int) bool {
	if depth == len(s.tree.Order) {
		return s.emit()
	}
	u := s.tree.Order[depth]
	up := graph.VertexID(s.tree.Parent[u])
	qLabels := s.query.Labels(u)
	qDeg := s.query.Degree(u)
	for _, v := range s.store.Neighbors(s.emb[up]) {
		if s.used[v] || s.data.Degree(v) < qDeg || !hasAllLabels(s.data, v, qLabels) {
			continue
		}
		if s.cons != nil && !s.cons.Allows(u, v, s.emb, s.matched) {
			continue
		}
		if !s.verifyEdges(u, v) {
			continue
		}
		s.emb[u] = v
		s.matched[u] = true
		s.used[v] = true
		ok := s.search(depth + 1)
		s.matched[u] = false
		s.used[v] = false
		if !ok || s.stop.Load() {
			return false
		}
	}
	return true
}

func (s *searcher) verifyEdges(u graph.VertexID, v graph.VertexID) bool {
	up := graph.VertexID(s.tree.Parent[u])
	for _, w := range s.query.Neighbors(u) {
		if w == up || !s.matched[w] {
			continue
		}
		// Edge probes go through the page store too: this is the IO
		// amplification that bounds DualSim's throughput.
		if !containsSorted(s.store.Neighbors(s.emb[w]), v) {
			return false
		}
	}
	return true
}

func hasAllLabels(g *graph.Graph, v graph.VertexID, labels []graph.Label) bool {
	for _, l := range labels {
		if !g.HasLabel(v, l) {
			return false
		}
	}
	return true
}

func containsSorted(vs []graph.VertexID, x graph.VertexID) bool {
	lo, hi := 0, len(vs)
	for lo < hi {
		mid := (lo + hi) / 2
		if vs[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(vs) && vs[lo] == x
}

// PageStore serves adjacency lists page by page with a bounded LRU
// buffer. Misses charge latency and count as page loads.
type PageStore struct {
	g        *graph.Graph
	pageSize int
	capacity int
	latency  time.Duration
	stats    *stats.Counters

	mu      sync.Mutex
	loaded  map[int]*list.Element // pageID -> LRU entry
	lru     *list.List            // front = most recent; values are pageIDs
	pending atomic.Int64          // accumulated IO nanos not yet slept
}

// sleepBatch is the granularity at which accumulated IO latency is
// actually slept away: sub-microsecond per-miss sleeps are rounded up
// wildly by the OS timer, so charges are batched to stay accurate.
const sleepBatch = 200 * time.Microsecond

// NewPageStore wraps g in a paged accessor.
func NewPageStore(g *graph.Graph, pageSize, capacity int, latency time.Duration, st *stats.Counters) *PageStore {
	return &PageStore{
		g:        g,
		pageSize: pageSize,
		capacity: capacity,
		latency:  latency,
		stats:    st,
		loaded:   make(map[int]*list.Element),
		lru:      list.New(),
	}
}

// Neighbors returns v's adjacency after ensuring its page is resident.
func (p *PageStore) Neighbors(v graph.VertexID) []graph.VertexID {
	p.touch(int(v) / p.pageSize)
	return p.g.Neighbors(v)
}

func (p *PageStore) touch(page int) {
	p.mu.Lock()
	if el, ok := p.loaded[page]; ok {
		p.lru.MoveToFront(el)
		p.mu.Unlock()
		return
	}
	// Miss: evict if full, then "load".
	if p.lru.Len() >= p.capacity {
		back := p.lru.Back()
		p.lru.Remove(back)
		delete(p.loaded, back.Value.(int))
	}
	p.loaded[page] = p.lru.PushFront(page)
	p.mu.Unlock()

	if p.stats != nil {
		p.stats.PageLoads.Add(1)
	}
	if p.latency > 0 {
		pending := p.pending.Add(int64(p.latency))
		if pending >= int64(sleepBatch) && p.pending.CompareAndSwap(pending, 0) {
			time.Sleep(time.Duration(pending))
		}
	}
}

// Loads returns the total number of page loads so far.
func (p *PageStore) Loads() int64 {
	if p.stats == nil {
		return 0
	}
	return p.stats.PageLoads.Load()
}
