package dualsim_test

import (
	"testing"
	"time"

	"ceci/internal/baseline"
	"ceci/internal/baseline/dualsim"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/stats"
)

func TestPageStoreLRU(t *testing.T) {
	g := gen.ErdosRenyi(256, 1000, 1)
	st := &stats.Counters{}
	// 16 vertices per page, capacity 2 pages.
	store := dualsim.NewPageStore(g, 16, 2, 0, st)

	store.Neighbors(0)  // page 0: miss
	store.Neighbors(5)  // page 0: hit
	store.Neighbors(20) // page 1: miss
	store.Neighbors(40) // page 2: miss, evicts page 0 (LRU)
	store.Neighbors(0)  // page 0: miss again
	if got := st.PageLoads.Load(); got != 4 {
		t.Fatalf("page loads = %d, want 4", got)
	}
}

func TestPageStoreTouchKeepsHot(t *testing.T) {
	g := gen.ErdosRenyi(256, 1000, 1)
	st := &stats.Counters{}
	store := dualsim.NewPageStore(g, 16, 2, 0, st)
	store.Neighbors(0)  // page 0 miss
	store.Neighbors(20) // page 1 miss
	store.Neighbors(0)  // page 0 hit -> page 1 becomes LRU
	store.Neighbors(40) // page 2 miss, evicts page 1
	store.Neighbors(0)  // page 0 still resident: hit
	if got := st.PageLoads.Load(); got != 3 {
		t.Fatalf("page loads = %d, want 3", got)
	}
}

func TestLatencyCharged(t *testing.T) {
	g := gen.ErdosRenyi(64, 200, 2)
	st := &stats.Counters{}
	store := dualsim.NewPageStore(g, 8, 1, 2*time.Millisecond, st)
	start := time.Now()
	store.Neighbors(0)
	store.Neighbors(63) // different page with capacity 1: second miss
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Fatalf("IO latency not charged: %v", elapsed)
	}
}

func TestNeighborsMatchGraph(t *testing.T) {
	g := gen.Kronecker(7, 4, 3)
	store := dualsim.NewPageStore(g, 32, 8, 0, nil)
	for v := 0; v < g.NumVertices(); v += 7 {
		got := store.Neighbors(graph.VertexID(v))
		want := g.Neighbors(graph.VertexID(v))
		if len(got) != len(want) {
			t.Fatalf("vertex %d adjacency differs", v)
		}
	}
}

func TestCountWithTinyBuffer(t *testing.T) {
	// Correctness must be buffer-size independent.
	data := gen.ErdosRenyi(100, 400, 2)
	want, err := dualsim.Count(data, gen.QG2(), dualsim.Options{
		Options: baseline.Options{Workers: 1}, BufferPages: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dualsim.Count(data, gen.QG2(), dualsim.Options{
		Options: baseline.Options{Workers: 2}, BufferPages: 1, PageSizeVertices: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("tiny buffer changed result: %d vs %d", got, want)
	}
}
