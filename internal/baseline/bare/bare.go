// Package bare implements the no-index parallel backtracking baseline of
// Figure 19: subgraph listing directly on the data graph. Candidates for
// each query vertex come from the matched parent's adjacency with only
// label and degree checks; every other query edge into the prefix is
// verified by adjacency probes. There is no candidate index, no NLC
// filtering, and no refinement — isolating the contribution of CECI's
// pipeline when compared against internal/enum.
package bare

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ceci/internal/auto"
	"ceci/internal/baseline"
	"ceci/internal/graph"
	"ceci/internal/order"
	"ceci/internal/stats"
)

// ForEach enumerates embeddings of query in data. Workers each own a
// backtracking state and pull root candidates from a shared cursor.
func ForEach(data, query *graph.Graph, opts baseline.Options, fn func(emb []graph.VertexID) bool) error {
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		return err
	}
	var cons *auto.Constraints
	if !opts.DisableSymmetryBreaking {
		cons = auto.Compute(query)
	}

	// Root candidates: label + degree only (no NLC — that is CECI's).
	var roots []graph.VertexID
	rootLabels := query.Labels(tree.Root)
	rootDeg := query.Degree(tree.Root)
	for _, v := range data.VerticesWithLabel(rootLabels[0]) {
		if data.Degree(v) >= rootDeg && hasAllLabels(data, v, rootLabels) {
			roots = append(roots, v)
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(roots) {
		workers = len(roots)
	}
	if workers < 1 {
		return nil
	}

	ctl := newControl(fn, opts.Limit)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := &searcher{
				data: data, query: query, tree: tree, cons: cons, ctl: ctl,
				emb:     make([]graph.VertexID, query.NumVertices()),
				matched: make([]bool, query.NumVertices()),
				used:    make([]bool, data.NumVertices()),
				stats:   opts.Stats,
			}
			defer s.flush()
			for {
				i := cursor.Add(1) - 1
				if i >= int64(len(roots)) || ctl.stop.Load() {
					return
				}
				v := roots[i]
				if cons != nil && !cons.Allows(tree.Root, v, s.emb, s.matched) {
					continue
				}
				s.emb[tree.Root] = v
				s.matched[tree.Root] = true
				s.used[v] = true
				ok := s.search(1)
				s.matched[tree.Root] = false
				s.used[v] = false
				if !ok {
					return
				}
			}
		}()
	}
	wg.Wait()
	return nil
}

// Count returns the number of embeddings.
func Count(data, query *graph.Graph, opts baseline.Options) (int64, error) {
	return baseline.CountWith(ForEach, data, query, opts)
}

type control struct {
	fn      func([]graph.VertexID) bool
	limit   int64
	emitted atomic.Int64
	stop    atomic.Bool
}

func newControl(fn func([]graph.VertexID) bool, limit int64) *control {
	return &control{fn: fn, limit: limit}
}

func (c *control) emit(emb []graph.VertexID) bool {
	if c.limit > 0 {
		n := c.emitted.Add(1)
		if n > c.limit {
			c.stop.Store(true)
			return false
		}
		if !c.fn(emb) || n == c.limit {
			c.stop.Store(true)
			return false
		}
		return true
	}
	if !c.fn(emb) {
		c.stop.Store(true)
		return false
	}
	return true
}

type searcher struct {
	data, query *graph.Graph
	tree        *order.QueryTree
	cons        *auto.Constraints
	ctl         *control
	emb         []graph.VertexID
	matched     []bool
	used        []bool
	stats       *stats.Counters

	recursiveCalls int64
	verifications  int64
}

func (s *searcher) search(depth int) bool {
	if depth == len(s.tree.Order) {
		return s.ctl.emit(s.emb)
	}
	u := s.tree.Order[depth]
	s.recursiveCalls++
	up := graph.VertexID(s.tree.Parent[u])
	qLabels := s.query.Labels(u)
	qDeg := s.query.Degree(u)

	for _, v := range s.data.Neighbors(s.emb[up]) {
		if s.used[v] || s.data.Degree(v) < qDeg || !hasAllLabels(s.data, v, qLabels) {
			continue
		}
		if s.cons != nil && !s.cons.Allows(u, v, s.emb, s.matched) {
			continue
		}
		if !s.verifyEdges(u, v) {
			continue
		}
		s.emb[u] = v
		s.matched[u] = true
		s.used[v] = true
		ok := s.search(depth + 1)
		s.matched[u] = false
		s.used[v] = false
		if !ok {
			return false
		}
		if s.ctl.stop.Load() {
			return false
		}
	}
	return true
}

// verifyEdges probes every query edge from u into the matched prefix
// other than the tree edge (whose adjacency provided v).
func (s *searcher) verifyEdges(u graph.VertexID, v graph.VertexID) bool {
	up := graph.VertexID(s.tree.Parent[u])
	for _, w := range s.query.Neighbors(u) {
		if w == up || !s.matched[w] {
			continue
		}
		s.verifications++
		if !s.data.HasEdge(s.emb[w], v) {
			return false
		}
	}
	return true
}

func (s *searcher) flush() {
	if s.stats != nil {
		s.stats.RecursiveCalls.Add(s.recursiveCalls)
		s.stats.EdgeVerifications.Add(s.verifications)
	}
}

func hasAllLabels(g *graph.Graph, v graph.VertexID, labels []graph.Label) bool {
	for _, l := range labels {
		if !g.HasLabel(v, l) {
			return false
		}
	}
	return true
}
