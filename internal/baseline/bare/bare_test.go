package bare_test

import (
	"math/rand"
	"testing"

	"ceci/internal/auto"
	"ceci/internal/baseline"
	"ceci/internal/baseline/bare"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/reference"
	"ceci/internal/stats"
)

func TestBareSound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		data := randomLabeled(rng, 14, 40, 2)
		query, err := gen.DFSQuery(data, 3+rng.Intn(3), rng)
		if err != nil {
			continue
		}
		want := reference.Count(data, query, reference.Options{Constraints: auto.Compute(query)})
		got, err := bare.Count(data, query, baseline.Options{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: got %d want %d", trial, got, want)
		}
	}
}

func TestBareVerificationCounter(t *testing.T) {
	st := &stats.Counters{}
	data := gen.Fig1Data()
	n, err := bare.Count(data, gen.Fig1Query(), baseline.Options{Stats: st, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count = %d", n)
	}
	// Two non-tree edges in the query: probes must happen.
	if st.EdgeVerifications.Load() == 0 {
		t.Fatal("no edge verifications recorded")
	}
}

func TestBareSingleVertexQuery(t *testing.T) {
	b := graph.NewBuilder(1)
	b.SetLabel(0, 0)
	q := b.MustBuild()
	data := gen.ErdosRenyi(20, 40, 1)
	got, err := bare.Count(data, q, baseline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every vertex with degree >= 0 and label 0 matches.
	if got != int64(data.NumVertices()) {
		t.Fatalf("got %d want %d", got, data.NumVertices())
	}
}

func randomLabeled(rng *rand.Rand, n, m, labels int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(labels)))
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.VertexID(perm[i-1]), graph.VertexID(perm[i]))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return b.MustBuild()
}
