// Package buildinfo reads the binary's own build identity — module
// version, VCS revision, go toolchain — from the information the go
// tool embeds at link time. It backs the -version flag on every binary
// and the build block of the service's /healthz response, so "what
// exactly is this server running" is answerable without shelling into
// the deploy.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info is the binary's build identity.
type Info struct {
	// Path is the main module path ("ceci").
	Path string `json:"path,omitempty"`
	// Version is the main module version ("(devel)" for local builds).
	Version string `json:"version,omitempty"`
	// Revision is the VCS commit the binary was built from, when the
	// build ran inside a checkout ("" otherwise, e.g. test binaries).
	Revision string `json:"vcs_revision,omitempty"`
	// Time is the commit timestamp (RFC 3339) when known.
	Time string `json:"vcs_time,omitempty"`
	// Modified reports uncommitted changes in the build's working tree.
	Modified bool `json:"vcs_modified,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// Get reads the running binary's build information. Never fails: when
// the binary carries no build info (unusual outside tests), only
// GoVersion is filled.
func Get() Info {
	info := Info{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Path = bi.Main.Path
	info.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String renders the identity on one line, the -version flag format:
//
//	ceci (devel) rev 1b2c971… (modified) go1.24.0
func (i Info) String() string {
	s := i.Path
	if s == "" {
		s = "ceci"
	}
	if i.Version != "" {
		s += " " + i.Version
	}
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if i.Modified {
			s += " (modified)"
		}
	}
	return fmt.Sprintf("%s %s", s, i.GoVersion)
}
