package gen

import "fmt"

// Randomness in this package.
//
// Every generator that takes a seed routes its randomness through RNG, a
// SplitMix64 sequence (Steele, Lea, Flood: "Fast Splittable Pseudorandom
// Number Generators", OOPSLA 2014). The choice is deliberate:
//
//   - It is specified as pure 64-bit integer arithmetic, so the stream for
//     a given seed is identical on every platform, architecture, and Go
//     release. math/rand's seeded streams are stable under the Go 1
//     compatibility promise, but SplitMix64 removes even that dependency —
//     the differential-testing harness (internal/verify) stores bare seeds
//     as its fuzz corpus and regression artifacts, and those must replay
//     the exact same graph pair forever.
//   - It passes BigCrush, is trivially seedable from any 64-bit value
//     (including 0), and needs 8 bytes of state.
//
// Derived draws are also fully specified here: Intn reduces by modulo
// (the bias for the tiny ranges this package draws is irrelevant and the
// determinism is not), Float64 takes the top 53 bits, and Perm is a
// forward Fisher–Yates fed by Intn.
//
// Helpers that accept externally-owned randomness (DFSQuery, QuerySet,
// the graph transforms) take the Source interface below instead of a
// concrete type, so callers may pass either an *RNG or a *math/rand.Rand.

// Source is the minimal randomness surface gen consumes. Both *RNG and
// *math/rand.Rand satisfy it.
type Source interface {
	// Intn returns a value in [0, n); n must be > 0.
	Intn(n int) int
	// Perm returns a pseudo-random permutation of [0, n).
	Perm(n int) []int
	// Float64 returns a value in [0, 1).
	Float64() float64
}

// RNG is a SplitMix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0; NewRNG names the seed explicitly.
type RNG struct {
	state uint64
}

// NewRNG returns an RNG seeded with seed. Equal seeds yield identical
// streams on every platform and Go version.
func NewRNG(seed int64) *RNG { return &RNG{state: uint64(seed)} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("gen: Intn(%d)", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit value, mirroring math/rand.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a value in [0, 1) built from the top 53 bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders n elements via swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
