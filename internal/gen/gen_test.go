package gen_test

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"testing"

	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/reference"
)

func TestKroneckerDeterministic(t *testing.T) {
	a := gen.Kronecker(10, 8, 7)
	b := gen.Kronecker(10, 8, 7)
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	c := gen.Kronecker(10, 8, 8)
	if c.NumEdges() == a.NumEdges() {
		t.Log("different seeds produced same edge count (possible but unlikely)")
	}
}

func TestKroneckerShape(t *testing.T) {
	g := gen.Kronecker(12, 8, 1)
	if g.NumVertices() != 1<<12 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// Kronecker graphs are heavy tailed: the max degree should far
	// exceed the average.
	avg := float64(2*g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 8*avg {
		t.Fatalf("max degree %d not heavy-tailed (avg %.1f)", g.MaxDegree(), avg)
	}
}

func TestKroneckerPanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for scale 0")
		}
	}()
	gen.Kronecker(0, 8, 1)
}

func TestChungLuShape(t *testing.T) {
	g := gen.ChungLu(20000, 10, 2.3, 5)
	avg := float64(2*g.NumEdges()) / float64(g.NumVertices())
	if math.Abs(avg-10) > 4 {
		t.Fatalf("average degree %.1f too far from 10", avg)
	}
	if float64(g.MaxDegree()) < 5*avg {
		t.Fatalf("max degree %d not skewed (avg %.1f)", g.MaxDegree(), avg)
	}
}

func TestErdosRenyiShape(t *testing.T) {
	g := gen.ErdosRenyi(5000, 20000, 3)
	if g.NumVertices() != 5000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// ER has a light tail: max degree within a small factor of average.
	avg := float64(2*g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) > 6*avg {
		t.Fatalf("ER max degree %d unexpectedly skewed", g.MaxDegree())
	}
}

func TestWithRandomLabels(t *testing.T) {
	g := gen.WithRandomLabels(gen.ErdosRenyi(1000, 3000, 1), 10, 2)
	if g.NumLabels() > 10 {
		t.Fatalf("labels = %d", g.NumLabels())
	}
	seen := map[graph.Label]bool{}
	for v := 0; v < g.NumVertices(); v++ {
		seen[g.Label(graph.VertexID(v))] = true
	}
	if len(seen) < 8 {
		t.Fatalf("only %d distinct labels used", len(seen))
	}
	// Topology preserved.
	if g.NumEdges() != gen.ErdosRenyi(1000, 3000, 1).NumEdges() {
		t.Fatal("labeling changed the topology")
	}
}

func TestWithRandomMultiLabels(t *testing.T) {
	g := gen.WithRandomMultiLabels(gen.ErdosRenyi(500, 1500, 1), 20, 3, 2)
	multi := 0
	for v := 0; v < g.NumVertices(); v++ {
		if len(g.Labels(graph.VertexID(v))) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no multi-labeled vertices")
	}
}

func TestQueryGraphShapes(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		v, e int
	}{
		{"QG1", gen.QG1(), 3, 3},
		{"QG2", gen.QG2(), 4, 4},
		{"QG3", gen.QG3(), 4, 6},
		{"QG4", gen.QG4(), 5, 6},
		{"QG5", gen.QG5(), 5, 10},
	}
	for _, c := range cases {
		if c.g.NumVertices() != c.v || c.g.NumEdges() != c.e {
			t.Errorf("%s: %v, want %d vertices %d edges", c.name, c.g, c.v, c.e)
		}
		// Figure 6: all nodes carry label 0.
		for v := 0; v < c.g.NumVertices(); v++ {
			if c.g.Label(graph.VertexID(v)) != 0 {
				t.Errorf("%s: vertex %d labeled %d", c.name, v, c.g.Label(graph.VertexID(v)))
			}
		}
	}
	if len(gen.QueryGraphs()) != 5 {
		t.Fatal("QueryGraphs should expose QG1..QG5")
	}
}

// TestDFSQueryProperties: generated queries must be connected, carry the
// data graph's labels, and have at least one embedding (the generating
// one) — exactly the §6.2 recipe.
func TestDFSQueryProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := gen.WithRandomLabels(gen.Kronecker(9, 6, 4), 5, 9)
	for size := 2; size <= 8; size++ {
		for trial := 0; trial < 5; trial++ {
			q, err := gen.DFSQuery(data, size, rng)
			if err != nil {
				t.Fatalf("size %d: %v", size, err)
			}
			if q.NumVertices() != size {
				t.Fatalf("size %d: got %d vertices", size, q.NumVertices())
			}
			if !isConnected(q) {
				t.Fatalf("size %d: query disconnected", size)
			}
			if n := reference.Count(data, q, reference.Options{Limit: 1}); n < 1 {
				t.Fatalf("size %d: generated query has no embedding", size)
			}
		}
	}
}

func TestDFSQueryRejectsBadSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := gen.ErdosRenyi(10, 20, 1)
	if _, err := gen.DFSQuery(data, 0, rng); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := gen.DFSQuery(data, 11, rng); err == nil {
		t.Fatal("oversized query accepted")
	}
}

func TestQuerySetCount(t *testing.T) {
	data := gen.ErdosRenyi(200, 800, 2)
	qs := gen.QuerySet(data, 4, 10, 7)
	if len(qs) == 0 {
		t.Fatal("no queries generated")
	}
	for _, q := range qs {
		if q.NumVertices() != 4 {
			t.Fatalf("query size %d", q.NumVertices())
		}
	}
}

// TestFig1FixtureIsSelfConsistent re-derives the two embeddings with the
// oracle, guarding the fixture against accidental edits.
func TestFig1FixtureIsSelfConsistent(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	embs := reference.FindAll(data, query, reference.Options{})
	want := gen.Fig1Embeddings()
	if len(embs) != len(want) {
		t.Fatalf("oracle found %d embeddings, fixture claims %d: %v", len(embs), len(want), embs)
	}
	for _, w := range want {
		found := false
		for _, e := range embs {
			same := true
			for i := range w {
				if e[i] != w[i] {
					same = false
					break
				}
			}
			if same {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("expected embedding %v not found by oracle", w)
		}
	}
}

func isConnected(g *graph.Graph) bool {
	n := g.NumVertices()
	seen := make([]bool, n)
	stack := []graph.VertexID{0}
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, w := range g.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// --- connectivity, portability, pairs, transforms, shrinking ---

// graphFingerprint hashes the full structure (labels + edges) of g; two
// graphs with equal fingerprints are identical for our purposes.
func graphFingerprint(g *graph.Graph) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "n=%d;", g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		fmt.Fprintf(h, "v%d:%v;", v, g.Labels(graph.VertexID(v)))
	}
	g.Edges(func(u, v graph.VertexID) bool {
		fmt.Fprintf(h, "e%d-%d;", u, v)
		return true
	})
	return h.Sum64()
}

// TestGeneratorsAlwaysConnected: every topology generator must emit a
// single component — the component-linking post-pass at work.
func TestGeneratorsAlwaysConnected(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		if g := gen.Kronecker(9, 4, seed); !g.Connected() {
			t.Fatalf("Kronecker seed %d disconnected", seed)
		}
		if g := gen.ChungLu(2000, 4, 2.3, seed); !g.Connected() {
			t.Fatalf("ChungLu seed %d disconnected", seed)
		}
		if g := gen.ErdosRenyi(1000, 800, seed); !g.Connected() {
			t.Fatalf("ErdosRenyi seed %d disconnected", seed)
		}
	}
}

// TestGeneratorGoldenFingerprints pins the exact output of every seeded
// generator. The package's own SplitMix64 RNG guarantees these streams
// are identical on every platform and Go version; if this test fails the
// PRNG or a generator's draw order changed, which invalidates every
// stored fuzz seed — don't do that.
func TestGeneratorGoldenFingerprints(t *testing.T) {
	cases := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"Kronecker(8,6,42)", graphFingerprint(gen.Kronecker(8, 6, 42)), 0xceec1f88774a1041},
		{"ChungLu(500,6,2.3,42)", graphFingerprint(gen.ChungLu(500, 6, 2.3, 42)), 0x469ae76ae5d2e307},
		{"ErdosRenyi(300,500,42)", graphFingerprint(gen.ErdosRenyi(300, 500, 42)), 0x71292cc389fa40e9},
		{"ZipfMulti", graphFingerprint(gen.WithZipfMultiLabels(gen.ErdosRenyi(200, 400, 7), 20, 3, 1.4, 11)), 0xd6a8f52943924f17},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: fingerprint %#x, want %#x", c.name, c.got, c.want)
		}
	}
}

func TestRandomPairGolden(t *testing.T) {
	want := map[int64][2]uint64{
		1: {0x29dcd55b54fd4b66, 0x31397d8ebab110d8},
		2: {0xdbb2afc4e9e48c16, 0x0b3f3dbc200ac8ba},
		3: {0xa3208dcfd6012138, 0xc004e1d390ac5e56},
	}
	for seed, w := range want {
		d, q := gen.RandomPair(seed)
		if got := graphFingerprint(d); got != w[0] {
			t.Errorf("seed %d data: %#x want %#x", seed, got, w[0])
		}
		if got := graphFingerprint(q); got != w[1] {
			t.Errorf("seed %d query: %#x want %#x", seed, got, w[1])
		}
	}
}

// TestRandomPairProperties: pairs must be connected on both sides and the
// query must embed at least once (the generating embedding).
func TestRandomPairProperties(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		d, q := gen.RandomPair(seed)
		if !d.Connected() {
			t.Fatalf("seed %d: data disconnected", seed)
		}
		if !q.Connected() {
			t.Fatalf("seed %d: query disconnected", seed)
		}
		if n := reference.Count(d, q, reference.Options{Limit: 1}); n < 1 {
			t.Fatalf("seed %d: query has no embedding", seed)
		}
	}
}

func TestBuildPairClampsFuzzerInput(t *testing.T) {
	d, q := gen.BuildPair(gen.PairParams{
		DataVertices: -5, ExtraEdges: 1 << 30, Labels: 900, QueryVertices: 200, Seed: 9,
	})
	if d.NumVertices() != 4 {
		t.Fatalf("data vertices = %d, want clamp to 4", d.NumVertices())
	}
	if q.NumVertices() > d.NumVertices() {
		t.Fatalf("query bigger than data")
	}
}

func TestPermuteVerticesPreservesCount(t *testing.T) {
	d, q := gen.RandomPair(17)
	perm, _ := gen.PermuteVertices(d, gen.NewRNG(5))
	want := reference.Count(d, q, reference.Options{})
	got := reference.Count(perm, q, reference.Options{})
	if got != want {
		t.Fatalf("count changed under permutation: %d -> %d", want, got)
	}
	if perm.NumEdges() != d.NumEdges() || perm.NumVertices() != d.NumVertices() {
		t.Fatal("permutation changed graph size")
	}
}

func TestRenameLabelsPreservesCount(t *testing.T) {
	d, q := gen.RandomPair(23)
	alpha := d.NumLabels()
	if qa := q.NumLabels(); qa > alpha {
		alpha = qa
	}
	ren := gen.RandomLabelBijection(alpha, gen.NewRNG(3))
	want := reference.Count(d, q, reference.Options{})
	got := reference.Count(gen.RenameLabels(d, ren), gen.RenameLabels(q, ren), reference.Options{})
	if got != want {
		t.Fatalf("count changed under label renaming: %d -> %d", want, got)
	}
}

func TestDeleteEdgeMonotone(t *testing.T) {
	d, q := gen.RandomPair(31)
	base := reference.Count(d, q, reference.Options{})
	for k := 0; k < 5; k++ {
		smaller := gen.DeleteEdge(d, k*7)
		if smaller.NumEdges() != d.NumEdges()-1 {
			t.Fatalf("DeleteEdge removed %d edges", d.NumEdges()-smaller.NumEdges())
		}
		if got := reference.Count(smaller, q, reference.Options{}); got > base {
			t.Fatalf("count grew after edge deletion: %d > %d", got, base)
		}
	}
}

// TestMinimizeShrinksToTriangle: minimizing "data contains a triangle"
// from a large graph must land on (close to) the 3-vertex triangle.
func TestMinimizeShrinksToTriangle(t *testing.T) {
	data := gen.ErdosRenyi(60, 240, 4)
	tri := gen.QG1()
	failing := func(d, q *graph.Graph) bool {
		// Hold the query shape fixed so the shrink pressure lands on data.
		if q.NumVertices() != 3 || q.NumEdges() != 3 {
			return false
		}
		return reference.Count(d, q, reference.Options{Limit: 1}) > 0
	}
	md, mq := gen.Minimize(data, tri, failing)
	if !failing(md, mq) {
		t.Fatal("minimized pair no longer failing")
	}
	if md.NumVertices() != 3 || md.NumEdges() != 3 {
		t.Fatalf("minimized data is %v, want the bare triangle", md)
	}
	if mq.NumVertices() != 3 {
		t.Fatalf("minimized query is %v", mq)
	}
}

func TestMinimizeNonFailingReturnsInput(t *testing.T) {
	d, q := gen.RandomPair(2)
	md, mq := gen.Minimize(d, q, func(*graph.Graph, *graph.Graph) bool { return false })
	if md != d || mq != q {
		t.Fatal("non-failing input was modified")
	}
}

func TestRNGPortableStream(t *testing.T) {
	// First values of SplitMix64 with seed 1; independently computable
	// from the reference algorithm, so a regression here means the PRNG
	// itself changed.
	r := gen.NewRNG(1)
	want := []uint64{0x910a2dec89025cc1, 0xbeeb8da1658eec67, 0xf893a2eefb32555e}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("Uint64 #%d = %#x, want %#x", i, got, w)
		}
	}
}
