package gen_test

import (
	"math"
	"math/rand"
	"testing"

	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/reference"
)

func TestKroneckerDeterministic(t *testing.T) {
	a := gen.Kronecker(10, 8, 7)
	b := gen.Kronecker(10, 8, 7)
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	c := gen.Kronecker(10, 8, 8)
	if c.NumEdges() == a.NumEdges() {
		t.Log("different seeds produced same edge count (possible but unlikely)")
	}
}

func TestKroneckerShape(t *testing.T) {
	g := gen.Kronecker(12, 8, 1)
	if g.NumVertices() != 1<<12 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// Kronecker graphs are heavy tailed: the max degree should far
	// exceed the average.
	avg := float64(2*g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 8*avg {
		t.Fatalf("max degree %d not heavy-tailed (avg %.1f)", g.MaxDegree(), avg)
	}
}

func TestKroneckerPanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for scale 0")
		}
	}()
	gen.Kronecker(0, 8, 1)
}

func TestChungLuShape(t *testing.T) {
	g := gen.ChungLu(20000, 10, 2.3, 5)
	avg := float64(2*g.NumEdges()) / float64(g.NumVertices())
	if math.Abs(avg-10) > 4 {
		t.Fatalf("average degree %.1f too far from 10", avg)
	}
	if float64(g.MaxDegree()) < 5*avg {
		t.Fatalf("max degree %d not skewed (avg %.1f)", g.MaxDegree(), avg)
	}
}

func TestErdosRenyiShape(t *testing.T) {
	g := gen.ErdosRenyi(5000, 20000, 3)
	if g.NumVertices() != 5000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// ER has a light tail: max degree within a small factor of average.
	avg := float64(2*g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) > 6*avg {
		t.Fatalf("ER max degree %d unexpectedly skewed", g.MaxDegree())
	}
}

func TestWithRandomLabels(t *testing.T) {
	g := gen.WithRandomLabels(gen.ErdosRenyi(1000, 3000, 1), 10, 2)
	if g.NumLabels() > 10 {
		t.Fatalf("labels = %d", g.NumLabels())
	}
	seen := map[graph.Label]bool{}
	for v := 0; v < g.NumVertices(); v++ {
		seen[g.Label(graph.VertexID(v))] = true
	}
	if len(seen) < 8 {
		t.Fatalf("only %d distinct labels used", len(seen))
	}
	// Topology preserved.
	if g.NumEdges() != gen.ErdosRenyi(1000, 3000, 1).NumEdges() {
		t.Fatal("labeling changed the topology")
	}
}

func TestWithRandomMultiLabels(t *testing.T) {
	g := gen.WithRandomMultiLabels(gen.ErdosRenyi(500, 1500, 1), 20, 3, 2)
	multi := 0
	for v := 0; v < g.NumVertices(); v++ {
		if len(g.Labels(graph.VertexID(v))) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no multi-labeled vertices")
	}
}

func TestQueryGraphShapes(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		v, e int
	}{
		{"QG1", gen.QG1(), 3, 3},
		{"QG2", gen.QG2(), 4, 4},
		{"QG3", gen.QG3(), 4, 6},
		{"QG4", gen.QG4(), 5, 6},
		{"QG5", gen.QG5(), 5, 10},
	}
	for _, c := range cases {
		if c.g.NumVertices() != c.v || c.g.NumEdges() != c.e {
			t.Errorf("%s: %v, want %d vertices %d edges", c.name, c.g, c.v, c.e)
		}
		// Figure 6: all nodes carry label 0.
		for v := 0; v < c.g.NumVertices(); v++ {
			if c.g.Label(graph.VertexID(v)) != 0 {
				t.Errorf("%s: vertex %d labeled %d", c.name, v, c.g.Label(graph.VertexID(v)))
			}
		}
	}
	if len(gen.QueryGraphs()) != 5 {
		t.Fatal("QueryGraphs should expose QG1..QG5")
	}
}

// TestDFSQueryProperties: generated queries must be connected, carry the
// data graph's labels, and have at least one embedding (the generating
// one) — exactly the §6.2 recipe.
func TestDFSQueryProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := gen.WithRandomLabels(gen.Kronecker(9, 6, 4), 5, 9)
	for size := 2; size <= 8; size++ {
		for trial := 0; trial < 5; trial++ {
			q, err := gen.DFSQuery(data, size, rng)
			if err != nil {
				t.Fatalf("size %d: %v", size, err)
			}
			if q.NumVertices() != size {
				t.Fatalf("size %d: got %d vertices", size, q.NumVertices())
			}
			if !isConnected(q) {
				t.Fatalf("size %d: query disconnected", size)
			}
			if n := reference.Count(data, q, reference.Options{Limit: 1}); n < 1 {
				t.Fatalf("size %d: generated query has no embedding", size)
			}
		}
	}
}

func TestDFSQueryRejectsBadSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := gen.ErdosRenyi(10, 20, 1)
	if _, err := gen.DFSQuery(data, 0, rng); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := gen.DFSQuery(data, 11, rng); err == nil {
		t.Fatal("oversized query accepted")
	}
}

func TestQuerySetCount(t *testing.T) {
	data := gen.ErdosRenyi(200, 800, 2)
	qs := gen.QuerySet(data, 4, 10, 7)
	if len(qs) == 0 {
		t.Fatal("no queries generated")
	}
	for _, q := range qs {
		if q.NumVertices() != 4 {
			t.Fatalf("query size %d", q.NumVertices())
		}
	}
}

// TestFig1FixtureIsSelfConsistent re-derives the two embeddings with the
// oracle, guarding the fixture against accidental edits.
func TestFig1FixtureIsSelfConsistent(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	embs := reference.FindAll(data, query, reference.Options{})
	want := gen.Fig1Embeddings()
	if len(embs) != len(want) {
		t.Fatalf("oracle found %d embeddings, fixture claims %d: %v", len(embs), len(want), embs)
	}
	for _, w := range want {
		found := false
		for _, e := range embs {
			same := true
			for i := range w {
				if e[i] != w[i] {
					same = false
					break
				}
			}
			if same {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("expected embedding %v not found by oracle", w)
		}
	}
}

func isConnected(g *graph.Graph) bool {
	n := g.NumVertices()
	seen := make([]bool, n)
	stack := []graph.VertexID{0}
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, w := range g.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return count == n
}
