package gen

import (
	"fmt"

	"ceci/internal/graph"
)

// The five unlabeled query graphs of the paper's Figure 6 ("all the nodes
// have same label 0"), chosen to satisfy the constraints the text states:
// QG1 is a 3-vertex clique with 6 automorphisms, and QG1/QG3/QG5 exercise
// backtracking depths 3, 4, and 5 respectively (Section 6.3). This is the
// standard PsgL/DualSim/TTJ query set.

// QG1 returns the triangle (3-clique).
func QG1() *graph.Graph {
	return mustEdges(3, [][2]graph.VertexID{{0, 1}, {0, 2}, {1, 2}})
}

// QG2 returns the 4-cycle (square).
func QG2() *graph.Graph {
	return mustEdges(4, [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
}

// QG3 returns the 4-clique.
func QG3() *graph.Graph {
	return mustEdges(4, [][2]graph.VertexID{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
	})
}

// QG4 returns the house: a 4-cycle with a roof vertex (5 vertices, 6 edges).
func QG4() *graph.Graph {
	return mustEdges(5, [][2]graph.VertexID{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, // walls
		{0, 4}, {1, 4}, // roof
	})
}

// QG5 returns the 5-clique.
func QG5() *graph.Graph {
	edges := [][2]graph.VertexID{}
	for i := graph.VertexID(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]graph.VertexID{i, j})
		}
	}
	return mustEdges(5, edges)
}

// QueryGraphs returns QG1..QG5 keyed by name.
func QueryGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"QG1": QG1(), "QG2": QG2(), "QG3": QG3(), "QG4": QG4(), "QG5": QG5(),
	}
}

func mustEdges(n int, edges [][2]graph.VertexID) *graph.Graph {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.MustBuild()
}

// DFSQuery grows a connected query graph of size vertices from data graph
// g by DFS from a random source, adding every backward edge among selected
// vertices, exactly as the paper's §6.2 prescribes. Labels are transferred
// from the data graph (primary label only, matching "if the data node has
// multiple labels, only the first label is used"). The returned query is
// guaranteed to have at least one embedding in g (the generating one).
//
// Returns an error if g has no connected region of the requested size
// reachable from any of a bounded number of random restarts.
func DFSQuery(g *graph.Graph, size int, rng Source) (*graph.Graph, error) {
	if size < 1 || size > g.NumVertices() {
		return nil, fmt.Errorf("gen: query size %d out of range", size)
	}
	const restarts = 64
	for attempt := 0; attempt < restarts; attempt++ {
		src := graph.VertexID(rng.Intn(g.NumVertices()))
		sel := dfsSelect(g, src, size, rng)
		if len(sel) < size {
			continue
		}
		// Map data vertices to query IDs in selection order.
		idx := make(map[graph.VertexID]graph.VertexID, size)
		b := graph.NewBuilder(size)
		for i, v := range sel {
			idx[v] = graph.VertexID(i)
			b.SetLabel(graph.VertexID(i), g.Label(v))
		}
		// Every backward edge among the selected vertices joins the query.
		for _, v := range sel {
			for _, w := range g.Neighbors(v) {
				if wi, ok := idx[w]; ok {
					b.AddEdge(idx[v], wi)
				}
			}
		}
		return b.Build()
	}
	return nil, fmt.Errorf("gen: no connected region of %d vertices found", size)
}

// dfsSelect walks g depth-first from src, visiting neighbors in random
// order, until size vertices are selected or the component is exhausted.
func dfsSelect(g *graph.Graph, src graph.VertexID, size int, rng Source) []graph.VertexID {
	sel := make([]graph.VertexID, 0, size)
	seen := map[graph.VertexID]bool{src: true}
	stack := []graph.VertexID{src}
	for len(stack) > 0 && len(sel) < size {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sel = append(sel, v)
		nbrs := g.Neighbors(v)
		// Shuffled copy so repeated calls explore different regions.
		perm := rng.Perm(len(nbrs))
		for _, i := range perm {
			w := nbrs[i]
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return sel
}

// QuerySet generates count DFS-grown queries of the given size (paper
// §6.2 uses 100 per size). Queries that cannot be grown (tiny graphs) are
// skipped; the returned slice may be shorter than count.
func QuerySet(g *graph.Graph, size, count int, seed int64) []*graph.Graph {
	rng := NewRNG(seed)
	out := make([]*graph.Graph, 0, count)
	for i := 0; i < count; i++ {
		q, err := DFSQuery(g, size, rng)
		if err != nil {
			continue
		}
		out = append(out, q)
	}
	return out
}
