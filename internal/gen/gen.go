// Package gen generates the synthetic data graphs, query graphs, and paper
// fixtures used across the repository.
//
// The paper evaluates on SNAP datasets (Table 1) that are not available
// offline; DESIGN.md §4 documents the substitution: Graph500 Kronecker
// graphs (the same generator the paper uses for its rand_500k dataset),
// Chung-Lu power-law graphs matching the degree skew that drives CECI's
// workload-balancing results, Erdős–Rényi graphs as a low-skew control,
// and the random label-injection recipe of §6.2.
//
// All generators are deterministic given a seed — bit-for-bit identical on
// every platform and Go version, because every seeded entry point draws
// from the package's own SplitMix64 RNG (see prng.go for the rationale).
// Generated topologies are always connected: each generator runs a
// component-linking post-pass so that downstream consumers (the DFS query
// grower, the differential harness) never have to reason about unreachable
// islands or isolated vertices.
package gen

import (
	"fmt"
	"math"

	"ceci/internal/graph"
)

// edgeRecorder wraps a Builder and tracks connectivity with a union-find
// so generators can link stray components after their main edge pass.
type edgeRecorder struct {
	b  *graph.Builder
	uf []int32 // parent pointers; negative = root with -size
}

func newEdgeRecorder(n int) *edgeRecorder {
	r := &edgeRecorder{b: graph.NewBuilder(n), uf: make([]int32, n)}
	for i := range r.uf {
		r.uf[i] = -1
	}
	return r
}

func (r *edgeRecorder) find(v int32) int32 {
	for r.uf[v] >= 0 {
		if p := r.uf[v]; r.uf[p] >= 0 {
			r.uf[v] = r.uf[p] // path halving
		}
		v = r.uf[v]
	}
	return v
}

func (r *edgeRecorder) addEdge(u, v graph.VertexID) {
	if u == v {
		return
	}
	r.b.AddEdge(u, v)
	ru, rv := r.find(int32(u)), r.find(int32(v))
	if ru == rv {
		return
	}
	if r.uf[ru] > r.uf[rv] { // union by size (sizes are negative)
		ru, rv = rv, ru
	}
	r.uf[ru] += r.uf[rv]
	r.uf[rv] = ru
}

// connect links every component to the first one with a single random
// edge each, making the graph connected while disturbing the degree
// distribution as little as possible. Components are visited in root-ID
// order so the result is seed-deterministic.
func (r *edgeRecorder) connect(rng Source) {
	n := len(r.uf)
	members := map[int32][]int32{}
	var roots []int32
	for v := 0; v < n; v++ {
		root := r.find(int32(v))
		if _, seen := members[root]; !seen {
			roots = append(roots, root)
		}
		members[root] = append(members[root], int32(v))
	}
	if len(roots) < 2 {
		return
	}
	home := members[roots[0]]
	for _, root := range roots[1:] {
		comp := members[root]
		u := home[rng.Intn(len(home))]
		v := comp[rng.Intn(len(comp))]
		r.b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		home = append(home, comp...)
	}
}

func (r *edgeRecorder) build(rng Source) *graph.Graph {
	r.connect(rng)
	return r.b.MustBuild()
}

// Kronecker generates a Graph500-style R-MAT/Kronecker graph with 2^scale
// vertices and approximately edgeFactor * 2^scale undirected edges. The
// (a, b, c, d) probabilities follow the Graph500 reference (0.57, 0.19,
// 0.19, 0.05), producing the heavy-tailed degree distribution the paper's
// rand_500k shares. R-MAT leaves stray vertices untouched; the
// component-linking pass attaches each with one edge, so the returned
// graph is connected.
func Kronecker(scale int, edgeFactor int, seed int64) *graph.Graph {
	if scale < 1 || scale > 30 {
		panic(fmt.Sprintf("gen: Kronecker scale %d out of range [1,30]", scale))
	}
	rng := NewRNG(seed)
	n := 1 << scale
	m := edgeFactor * n
	r := newEdgeRecorder(n)
	const pa, pb, pc = 0.57, 0.19, 0.19
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			x := rng.Float64()
			switch {
			case x < pa:
				// top-left: no bits set
			case x < pa+pb:
				v |= 1 << bit
			case x < pa+pb+pc:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		r.addEdge(graph.VertexID(u), graph.VertexID(v))
	}
	return r.build(rng)
}

// ChungLu generates a power-law graph with n vertices whose expected
// degree sequence follows w_i ∝ (i+1)^(-1/(gamma-1)), scaled to an
// average degree of avgDeg. gamma ≈ 2.1–2.5 matches social networks like
// the paper's LiveJournal/Orkut/Friendster. Low-weight vertices that end
// up isolated are attached by the component-linking pass.
func ChungLu(n int, avgDeg float64, gamma float64, seed int64) *graph.Graph {
	if n < 2 {
		panic("gen: ChungLu needs n >= 2")
	}
	if gamma <= 1 {
		panic("gen: ChungLu needs gamma > 1")
	}
	rng := NewRNG(seed)
	w := make([]float64, n)
	sum := 0.0
	alpha := 1.0 / (gamma - 1.0)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -alpha)
		sum += w[i]
	}
	// Scale weights so Σw = n·avgDeg (expected half-edge count ·2).
	scale := float64(n) * avgDeg / sum
	cum := make([]float64, n+1)
	for i := range w {
		w[i] *= scale
		cum[i+1] = cum[i] + w[i]
	}
	total := cum[n]
	m := int(float64(n) * avgDeg / 2)
	r := newEdgeRecorder(n)
	pick := func() graph.VertexID {
		x := rng.Float64() * total
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return graph.VertexID(lo)
	}
	for i := 0; i < m; i++ {
		r.addEdge(pick(), pick())
	}
	return r.build(rng)
}

// ErdosRenyi generates G(n, m): m uniformly random undirected edges over n
// vertices, plus the component-linking pass. A low-skew control workload.
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	rng := NewRNG(seed)
	r := newEdgeRecorder(n)
	for i := 0; i < m; i++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		r.addEdge(u, v)
	}
	return r.build(rng)
}

// WithRandomLabels returns a copy of g whose vertices carry labels drawn
// uniformly from [0, numLabels). This is the paper's §6.2 recipe ("we
// randomly inject each node of RD with one of the 100 different labels").
func WithRandomLabels(g *graph.Graph, numLabels int, seed int64) *graph.Graph {
	rng := NewRNG(seed)
	b := graph.NewBuilder(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(numLabels)))
	}
	g.Edges(func(u, v graph.VertexID) bool {
		b.AddEdge(u, v)
		return true
	})
	return b.MustBuild()
}

// WithRandomMultiLabels attaches 1..maxPerVertex labels per vertex from an
// alphabet of numLabels, mimicking the paper's HU dataset ("one or more of
// 90 different labels on each node").
func WithRandomMultiLabels(g *graph.Graph, numLabels, maxPerVertex int, seed int64) *graph.Graph {
	return withMultiLabels(g, maxPerVertex, seed, func(rng *RNG) graph.Label {
		return graph.Label(rng.Intn(numLabels))
	})
}

// WithZipfMultiLabels is WithRandomMultiLabels with a Zipf-distributed
// label alphabet (exponent s): a few very common annotations and a long
// selective tail, the frequency profile of real functional annotations
// (GO terms, protein families). Selectivity skew is what gives candidate
// filters their bite, so labeled experiments use this for the HU
// substitute. Sampling is exact inverse-CDF over the finite alphabet
// (P(k) ∝ (1+k)^-s), so the stream is as portable as the RNG beneath it.
func WithZipfMultiLabels(g *graph.Graph, numLabels, maxPerVertex int, s float64, seed int64) *graph.Graph {
	cum := make([]float64, numLabels+1)
	for k := 0; k < numLabels; k++ {
		cum[k+1] = cum[k] + math.Pow(float64(1+k), -s)
	}
	total := cum[numLabels]
	return withMultiLabels(g, maxPerVertex, seed, func(rng *RNG) graph.Label {
		x := rng.Float64() * total
		lo, hi := 0, numLabels-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return graph.Label(lo)
	})
}

func withMultiLabels(g *graph.Graph, maxPerVertex int, seed int64, draw func(*RNG) graph.Label) *graph.Graph {
	if maxPerVertex < 1 {
		maxPerVertex = 1
	}
	rng := NewRNG(seed)
	b := graph.NewBuilder(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		k := 1 + rng.Intn(maxPerVertex)
		b.SetLabel(graph.VertexID(v), draw(rng))
		for i := 1; i < k; i++ {
			b.AddExtraLabel(graph.VertexID(v), draw(rng))
		}
	}
	g.Edges(func(u, v graph.VertexID) bool {
		b.AddEdge(u, v)
		return true
	})
	return b.MustBuild()
}
