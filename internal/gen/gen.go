// Package gen generates the synthetic data graphs, query graphs, and paper
// fixtures used across the repository.
//
// The paper evaluates on SNAP datasets (Table 1) that are not available
// offline; DESIGN.md §4 documents the substitution: Graph500 Kronecker
// graphs (the same generator the paper uses for its rand_500k dataset),
// Chung-Lu power-law graphs matching the degree skew that drives CECI's
// workload-balancing results, Erdős–Rényi graphs as a low-skew control,
// and the random label-injection recipe of §6.2.
//
// All generators are deterministic given a seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"ceci/internal/graph"
)

// Kronecker generates a Graph500-style R-MAT/Kronecker graph with 2^scale
// vertices and approximately edgeFactor * 2^scale undirected edges. The
// (a, b, c, d) probabilities follow the Graph500 reference (0.57, 0.19,
// 0.19, 0.05), producing the heavy-tailed degree distribution the paper's
// rand_500k shares.
func Kronecker(scale int, edgeFactor int, seed int64) *graph.Graph {
	if scale < 1 || scale > 30 {
		panic(fmt.Sprintf("gen: Kronecker scale %d out of range [1,30]", scale))
	}
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	m := edgeFactor * n
	b := graph.NewBuilder(n)
	const pa, pb, pc = 0.57, 0.19, 0.19
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < pa:
				// top-left: no bits set
			case r < pa+pb:
				v |= 1 << bit
			case r < pa+pb+pc:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		b.AddEdge(graph.VertexID(u), graph.VertexID(v))
	}
	return b.MustBuild()
}

// ChungLu generates a power-law graph with n vertices whose expected
// degree sequence follows w_i ∝ (i+1)^(-1/(gamma-1)), scaled to an
// average degree of avgDeg. gamma ≈ 2.1–2.5 matches social networks like
// the paper's LiveJournal/Orkut/Friendster.
func ChungLu(n int, avgDeg float64, gamma float64, seed int64) *graph.Graph {
	if n < 2 {
		panic("gen: ChungLu needs n >= 2")
	}
	if gamma <= 1 {
		panic("gen: ChungLu needs gamma > 1")
	}
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, n)
	sum := 0.0
	alpha := 1.0 / (gamma - 1.0)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -alpha)
		sum += w[i]
	}
	// Scale weights so Σw = n·avgDeg (expected half-edge count ·2).
	scale := float64(n) * avgDeg / sum
	cum := make([]float64, n+1)
	for i := range w {
		w[i] *= scale
		cum[i+1] = cum[i] + w[i]
	}
	total := cum[n]
	m := int(float64(n) * avgDeg / 2)
	b := graph.NewBuilder(n)
	pick := func() graph.VertexID {
		x := rng.Float64() * total
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return graph.VertexID(lo)
	}
	for i := 0; i < m; i++ {
		u, v := pick(), pick()
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.MustBuild()
}

// ErdosRenyi generates G(n, m): m uniformly random undirected edges over n
// vertices. A low-skew control workload.
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.MustBuild()
}

// WithRandomLabels returns a copy of g whose vertices carry labels drawn
// uniformly from [0, numLabels). This is the paper's §6.2 recipe ("we
// randomly inject each node of RD with one of the 100 different labels").
func WithRandomLabels(g *graph.Graph, numLabels int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(numLabels)))
	}
	g.Edges(func(u, v graph.VertexID) bool {
		b.AddEdge(u, v)
		return true
	})
	return b.MustBuild()
}

// WithRandomMultiLabels attaches 1..maxPerVertex labels per vertex from an
// alphabet of numLabels, mimicking the paper's HU dataset ("one or more of
// 90 different labels on each node").
func WithRandomMultiLabels(g *graph.Graph, numLabels, maxPerVertex int, seed int64) *graph.Graph {
	return withMultiLabels(g, maxPerVertex, seed, func(rng *rand.Rand) graph.Label {
		return graph.Label(rng.Intn(numLabels))
	})
}

// WithZipfMultiLabels is WithRandomMultiLabels with a Zipf-distributed
// label alphabet (exponent s): a few very common annotations and a long
// selective tail, the frequency profile of real functional annotations
// (GO terms, protein families). Selectivity skew is what gives candidate
// filters their bite, so labeled experiments use this for the HU
// substitute.
func WithZipfMultiLabels(g *graph.Graph, numLabels, maxPerVertex int, s float64, seed int64) *graph.Graph {
	rngSeed := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rngSeed, s, 1, uint64(numLabels-1))
	return withMultiLabels(g, maxPerVertex, seed+1, func(*rand.Rand) graph.Label {
		return graph.Label(zipf.Uint64())
	})
}

func withMultiLabels(g *graph.Graph, maxPerVertex int, seed int64, draw func(*rand.Rand) graph.Label) *graph.Graph {
	if maxPerVertex < 1 {
		maxPerVertex = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		k := 1 + rng.Intn(maxPerVertex)
		b.SetLabel(graph.VertexID(v), draw(rng))
		for i := 1; i < k; i++ {
			b.AddExtraLabel(graph.VertexID(v), draw(rng))
		}
	}
	g.Edges(func(u, v graph.VertexID) bool {
		b.AddEdge(u, v)
		return true
	})
	return b.MustBuild()
}
