package gen

import "ceci/internal/graph"

// Minimize shrinks a failing (data, query) pair to a locally minimal
// counterexample: it repeatedly bisects away vertices and edges of both
// graphs — delta-debugging style, halving chunk sizes down to single
// elements — keeping only candidates for which failing still reports
// true, until no single removal reproduces the failure.
//
// failing must be a pure predicate; it is also responsible for rejecting
// degenerate candidates (it simply returns false on graphs it cannot
// evaluate — the harness's predicates treat engine errors that differ
// from the original failure as "not failing"). failing is never called
// with a nil graph. If failing(data, query) is false to begin with, the
// pair is returned unchanged.
func Minimize(data, query *graph.Graph, failing func(data, query *graph.Graph) bool) (*graph.Graph, *graph.Graph) {
	if !failing(data, query) {
		return data, query
	}
	for changed := true; changed; {
		changed = false
		if q, ok := shrinkVertices(query, func(cand *graph.Graph) bool {
			return failing(data, cand)
		}); ok {
			query, changed = q, true
		}
		if d, ok := shrinkVertices(data, func(cand *graph.Graph) bool {
			return failing(cand, query)
		}); ok {
			data, changed = d, true
		}
		if d, ok := shrinkEdges(data, func(cand *graph.Graph) bool {
			return failing(cand, query)
		}); ok {
			data, changed = d, true
		}
		if q, ok := shrinkEdges(query, func(cand *graph.Graph) bool {
			return failing(data, cand)
		}); ok {
			query, changed = q, true
		}
	}
	return data, query
}

// shrinkVertices bisects vertex subsets out of g while ok accepts the
// induced subgraph. Reports whether any removal stuck.
func shrinkVertices(g *graph.Graph, ok func(*graph.Graph) bool) (*graph.Graph, bool) {
	improved := false
	for chunk := g.NumVertices() / 2; chunk >= 1; {
		n := g.NumVertices()
		if chunk > n-1 {
			chunk = n - 1 // always keep at least one vertex
		}
		if chunk < 1 {
			break
		}
		removedAny := false
		for start := 0; start+chunk <= n; start += chunk {
			cand := withoutVertexRange(g, start, start+chunk)
			if cand != nil && ok(cand) {
				g = cand
				improved, removedAny = true, true
				break // indices shifted; rescan at this chunk size
			}
		}
		if !removedAny {
			chunk /= 2
		}
	}
	return g, improved
}

// shrinkEdges bisects edge subsets out of g while ok accepts the result.
func shrinkEdges(g *graph.Graph, ok func(*graph.Graph) bool) (*graph.Graph, bool) {
	improved := false
	for chunk := g.NumEdges() / 2; chunk >= 1; {
		m := g.NumEdges()
		if chunk > m {
			chunk = m
		}
		if chunk < 1 {
			break
		}
		removedAny := false
		for start := 0; start+chunk <= m; start += chunk {
			cand := withoutEdgeRange(g, start, start+chunk)
			if cand != nil && ok(cand) {
				g = cand
				improved, removedAny = true, true
				break
			}
		}
		if !removedAny {
			chunk /= 2
		}
	}
	return g, improved
}

// withoutVertexRange returns the subgraph of g induced by dropping
// vertices [lo, hi), with IDs compacted; nil when nothing remains.
func withoutVertexRange(g *graph.Graph, lo, hi int) *graph.Graph {
	n := g.NumVertices()
	if hi-lo >= n {
		return nil
	}
	remap := make([]int, n)
	kept := 0
	for v := 0; v < n; v++ {
		if v >= lo && v < hi {
			remap[v] = -1
			continue
		}
		remap[v] = kept
		kept++
	}
	b := graph.NewBuilder(kept)
	for v := 0; v < n; v++ {
		if remap[v] < 0 {
			continue
		}
		labels := g.Labels(graph.VertexID(v))
		b.SetLabel(graph.VertexID(remap[v]), labels[0])
		for _, l := range labels[1:] {
			b.AddExtraLabel(graph.VertexID(remap[v]), l)
		}
	}
	g.Edges(func(u, v graph.VertexID) bool {
		if remap[u] >= 0 && remap[v] >= 0 {
			b.AddEdge(graph.VertexID(remap[u]), graph.VertexID(remap[v]))
		}
		return true
	})
	out, err := b.Build()
	if err != nil {
		return nil
	}
	return out
}

// withoutEdgeRange returns g minus edges [lo, hi) in Edges order.
func withoutEdgeRange(g *graph.Graph, lo, hi int) *graph.Graph {
	b := graph.NewBuilder(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		labels := g.Labels(graph.VertexID(v))
		b.SetLabel(graph.VertexID(v), labels[0])
		for _, l := range labels[1:] {
			b.AddExtraLabel(graph.VertexID(v), l)
		}
	}
	i := 0
	g.Edges(func(u, v graph.VertexID) bool {
		if i < lo || i >= hi {
			b.AddEdge(u, v)
		}
		i++
		return true
	})
	out, err := b.Build()
	if err != nil {
		return nil
	}
	return out
}
