package gen

import "ceci/internal/graph"

// Randomized (data graph, query graph) pairs for differential testing.
//
// A pair is fully determined by its PairParams, and PairParams are fully
// determined by a single int64 seed (RandomPair), so a bare seed is a
// complete, replayable test case: the fuzz corpus and the regression
// artifacts in internal/verify store nothing else.

// PairParams describes one randomized data/query pair. Clamp folds
// arbitrary (e.g. fuzzer-chosen) values into the supported envelope, so
// any parameter combination is a valid test case.
type PairParams struct {
	// DataVertices is the data-graph size, clamped to [4, 56].
	DataVertices int
	// ExtraEdges is the number of random edges added on top of the
	// connecting spanning tree, clamped to [0, 3·DataVertices].
	ExtraEdges int
	// Labels is the label alphabet size, clamped to [1, 6].
	Labels int
	// QueryVertices is the query size, clamped to [2, 6].
	QueryVertices int
	// Seed drives every random draw.
	Seed int64
}

// Clamp returns params folded into the supported envelope.
func (p PairParams) Clamp() PairParams {
	clamp := func(x, lo, hi int) int {
		if x < lo {
			return lo
		}
		if x > hi {
			return hi
		}
		return x
	}
	p.DataVertices = clamp(p.DataVertices, 4, 56)
	p.ExtraEdges = clamp(p.ExtraEdges, 0, 3*p.DataVertices)
	p.Labels = clamp(p.Labels, 1, 6)
	maxQ := 6
	if p.DataVertices < maxQ {
		maxQ = p.DataVertices
	}
	p.QueryVertices = clamp(p.QueryVertices, 2, maxQ)
	return p
}

// RandomPair derives PairParams from seed and builds the pair. This is
// the harness's standard entry point: one seed, one pair, forever.
func RandomPair(seed int64) (data, query *graph.Graph) {
	rng := NewRNG(seed)
	n := 8 + rng.Intn(40)
	p := PairParams{
		DataVertices:  n,
		ExtraEdges:    rng.Intn(2*n + 1),
		Labels:        1 + rng.Intn(5),
		QueryVertices: 3 + rng.Intn(4),
		Seed:          seed,
	}
	return BuildPair(p)
}

// BuildPair builds the (data, query) pair described by p (after Clamp).
//
// The data graph is connected by construction — a random spanning tree
// (vertex i attaches to a uniform ancestor) plus ExtraEdges uniform
// edges — with labels drawn uniformly from the alphabet. The query is
// DFS-grown from the data graph (§6.2's recipe), so it is connected,
// label-consistent, and guaranteed at least one embedding.
func BuildPair(p PairParams) (data, query *graph.Graph) {
	p = p.Clamp()
	rng := NewRNG(p.Seed)
	b := graph.NewBuilder(p.DataVertices)
	for v := 0; v < p.DataVertices; v++ {
		b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(p.Labels)))
	}
	for v := 1; v < p.DataVertices; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID(rng.Intn(v)))
	}
	for i := 0; i < p.ExtraEdges; i++ {
		u := rng.Intn(p.DataVertices)
		v := rng.Intn(p.DataVertices)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	data = b.MustBuild()
	query, err := DFSQuery(data, p.QueryVertices, rng)
	if err != nil {
		// Unreachable: data is connected and QueryVertices <= DataVertices.
		panic("gen: BuildPair: " + err.Error())
	}
	return data, query
}
