package gen

import "ceci/internal/graph"

// Graph transforms backing the metamorphic invariants of internal/verify:
// subgraph-isomorphism counts must be invariant under data-vertex
// permutation and label renaming, and non-increasing under edge deletion.

// PermuteVertices returns a copy of g with vertex IDs relabeled by a
// random permutation, plus the permutation itself (perm[old] = new).
// Topology and labels travel with the vertices.
func PermuteVertices(g *graph.Graph, rng Source) (*graph.Graph, []graph.VertexID) {
	n := g.NumVertices()
	p := rng.Perm(n)
	perm := make([]graph.VertexID, n)
	for old, nw := range p {
		perm[old] = graph.VertexID(nw)
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		labels := g.Labels(graph.VertexID(v))
		b.SetLabel(perm[v], labels[0])
		for _, l := range labels[1:] {
			b.AddExtraLabel(perm[v], l)
		}
	}
	g.Edges(func(u, v graph.VertexID) bool {
		b.AddEdge(perm[u], perm[v])
		return true
	})
	return b.MustBuild(), perm
}

// RenameLabels applies ren (a mapping over label values; identity beyond
// its length) to every label of g. Passing the same bijection to a data
// graph and its query preserves the embedding set exactly.
func RenameLabels(g *graph.Graph, ren []graph.Label) *graph.Graph {
	apply := func(l graph.Label) graph.Label {
		if int(l) < len(ren) {
			return ren[l]
		}
		return l
	}
	b := graph.NewBuilder(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		labels := g.Labels(graph.VertexID(v))
		b.SetLabel(graph.VertexID(v), apply(labels[0]))
		for _, l := range labels[1:] {
			b.AddExtraLabel(graph.VertexID(v), apply(l))
		}
	}
	g.Edges(func(u, v graph.VertexID) bool {
		b.AddEdge(u, v)
		return true
	})
	return b.MustBuild()
}

// RandomLabelBijection returns a random permutation of the label alphabet
// [0, numLabels).
func RandomLabelBijection(numLabels int, rng Source) []graph.Label {
	p := rng.Perm(numLabels)
	ren := make([]graph.Label, numLabels)
	for old, nw := range p {
		ren[old] = graph.Label(nw)
	}
	return ren
}

// DeleteEdge returns a copy of g without its k-th edge (0-based, in
// Edges iteration order, k taken modulo the edge count). Vertices and
// labels are untouched; returns g itself when it has no edges.
func DeleteEdge(g *graph.Graph, k int) *graph.Graph {
	m := g.NumEdges()
	if m == 0 {
		return g
	}
	k = ((k % m) + m) % m
	b := graph.NewBuilder(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		labels := g.Labels(graph.VertexID(v))
		b.SetLabel(graph.VertexID(v), labels[0])
		for _, l := range labels[1:] {
			b.AddExtraLabel(graph.VertexID(v), l)
		}
	}
	i := 0
	g.Edges(func(u, v graph.VertexID) bool {
		if i != k {
			b.AddEdge(u, v)
		}
		i++
		return true
	})
	return b.MustBuild()
}
