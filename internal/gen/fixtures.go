package gen

import "ceci/internal/graph"

// Paper Figure 1 fixture: the running example used throughout Sections
// 1–4. Labels: A=0, B=1, C=2, D=3, E=4. Data vertices v1..v15 map to IDs
// 0..14 (so vK has ID K-1).
//
// The data graph is reconstructed from the narrative:
//   - pivots {v1, v2} are the candidates of root u1;
//   - TE(u1,u2) = <v1,{v3,v5,v7}>, <v2,{v7,v9}>;
//   - TE(u1,u3) = <v1,{v4,v6}>, <v2,{v8}> with v8 killed by the NLC filter
//     (no E-labeled neighbor), which cascades to remove the v2 cluster;
//   - NTE(u2,u3) = <v3,{v4}>, <v5,{v4,v6}>, <v7,{v6}> (v8 pruned);
//   - reverse-BFS refinement removes v7 from candidates of u2 because its
//     only u4-child v15 is not in NTE_Candidates of u4;
//   - exactly two embeddings survive: (v1,v3,v4,v11,v12) and
//     (v1,v5,v6,v13,v14).

// Fig1LabelA..Fig1LabelE name the labels of the fixture.
const (
	Fig1LabelA graph.Label = iota
	Fig1LabelB
	Fig1LabelC
	Fig1LabelD
	Fig1LabelE
)

// Fig1V converts the paper's 1-based vertex naming (vK) to a VertexID.
func Fig1V(k int) graph.VertexID { return graph.VertexID(k - 1) }

// Fig1Query returns the 5-vertex query graph of Figure 1:
// u1(A)-u2(B), u1-u3(C), u2-u3, u2-u4(D), u3-u4, u3-u5(E).
// Query vertices u1..u5 are IDs 0..4.
func Fig1Query() *graph.Graph {
	b := graph.NewBuilder(5)
	b.SetLabel(0, Fig1LabelA)
	b.SetLabel(1, Fig1LabelB)
	b.SetLabel(2, Fig1LabelC)
	b.SetLabel(3, Fig1LabelD)
	b.SetLabel(4, Fig1LabelE)
	for _, e := range [][2]graph.VertexID{
		{0, 1}, {0, 2}, // tree edges from u1
		{1, 2}, // non-tree edge (u2,u3)
		{1, 3}, // tree edge (u2,u4)
		{2, 3}, // non-tree edge (u3,u4)
		{2, 4}, // tree edge (u3,u5)
	} {
		b.AddEdge(e[0], e[1])
	}
	return b.MustBuild()
}

// Fig1Data returns the 15-vertex data graph of Figure 1.
func Fig1Data() *graph.Graph {
	b := graph.NewBuilder(15)
	setLabels := func(l graph.Label, vs ...int) {
		for _, v := range vs {
			b.SetLabel(Fig1V(v), l)
		}
	}
	setLabels(Fig1LabelA, 1, 2)
	setLabels(Fig1LabelB, 3, 5, 7, 9)
	setLabels(Fig1LabelC, 4, 6, 8, 10)
	setLabels(Fig1LabelD, 11, 13, 15)
	setLabels(Fig1LabelE, 12, 14)
	edges := [][2]int{
		// A-B edges (candidates of the query edge u1-u2)
		{1, 3}, {1, 5}, {1, 7}, {2, 7}, {2, 9},
		// A-C edges (u1-u3)
		{1, 4}, {1, 6}, {2, 8},
		// B-C edges (u2-u3 non-tree edge)
		{3, 4}, {5, 4}, {5, 6}, {7, 6}, {7, 8}, {9, 8},
		// B-D edges (u2-u4)
		{3, 11}, {5, 13}, {7, 15}, {9, 11},
		// C-D edges (u3-u4)
		{4, 11}, {6, 13}, {8, 11},
		// C-E edges (u3-u5)
		{4, 12}, {6, 14},
		// v15 needs a C neighbor to pass the NLC filter for u4 without
		// creating a third embedding: v10 is a C vertex unreachable from
		// the pivots.
		{15, 10},
	}
	for _, e := range edges {
		b.AddEdge(Fig1V(e[0]), Fig1V(e[1]))
	}
	return b.MustBuild()
}

// Fig1Embeddings returns the two embeddings of the fixture in matching
// order (u1,u2,u3,u4,u5), each expressed as data vertex IDs.
func Fig1Embeddings() [][]graph.VertexID {
	return [][]graph.VertexID{
		{Fig1V(1), Fig1V(3), Fig1V(4), Fig1V(11), Fig1V(12)},
		{Fig1V(1), Fig1V(5), Fig1V(6), Fig1V(13), Fig1V(14)},
	}
}
