package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerNesting(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	root := tr.Start("enumerate", Int("units", 3))
	c1 := root.Child("cluster", Int("pivot", 7))
	c1.End()
	c2 := root.Child("cluster", Int("pivot", 9))
	c2.Annotate(String("note", "late"))
	c2.End()
	root.End()

	tree := tr.Tree()
	if len(tree) != 1 {
		t.Fatalf("roots = %d, want 1", len(tree))
	}
	r := tree[0]
	if r.Name != "enumerate" || r.Attrs["units"] != "3" || r.Running {
		t.Fatalf("root = %+v", r)
	}
	if len(r.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(r.Children))
	}
	if r.Children[0].Attrs["pivot"] != "7" || r.Children[1].Attrs["note"] != "late" {
		t.Fatalf("children = %+v, %+v", r.Children[0], r.Children[1])
	}
}

func TestTracerOpenSpanRunning(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	s := tr.Start("build")
	time.Sleep(time.Millisecond)
	tree := tr.Tree()
	if !tree[0].Running || tree[0].DurUS <= 0 {
		t.Fatalf("open span should be running with positive duration: %+v", tree[0])
	}
	s.End()
	s.End() // idempotent
	if tr.Tree()[0].Running {
		t.Fatal("ended span still running")
	}
}

func TestTracerChildCap(t *testing.T) {
	tr := NewTracer(TracerOptions{MaxChildren: 2})
	root := tr.Start("enumerate")
	for i := 0; i < 5; i++ {
		c := root.Child("cluster")
		// Detached spans must still be usable.
		c.Annotate(String("k", "v"))
		gc := c.Child("inner")
		gc.End()
		c.End()
	}
	root.End()
	n := tr.Tree()[0]
	if len(n.Children) != 2 {
		t.Fatalf("recorded children = %d, want 2", len(n.Children))
	}
	if n.Dropped != 3 {
		t.Fatalf("dropped = %d, want 3", n.Dropped)
	}
}

func TestTracerRootCap(t *testing.T) {
	tr := NewTracer(TracerOptions{MaxChildren: 1})
	tr.Start("a").End()
	tr.Start("b").End() // beyond cap: detached, not recorded
	if got := len(tr.Tree()); got != 1 {
		t.Fatalf("roots = %d, want 1", got)
	}
}

func TestTracerJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(TracerOptions{JSONL: &buf})
	s := tr.Start("build", Int("n", 4))
	c := s.Child("refine")
	c.End()
	s.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // 2 starts + 2 ends
		t.Fatalf("lines = %d, want 4: %q", len(lines), buf.String())
	}
	type event struct {
		Ev     string            `json:"ev"`
		ID     int64             `json:"id"`
		Parent int64             `json:"parent"`
		Name   string            `json:"name"`
		DurUS  int64             `json:"dur_us"`
		Attrs  map[string]string `json:"attrs"`
	}
	var evs []event
	for _, l := range lines {
		var e event
		if err := json.Unmarshal([]byte(l), &e); err != nil {
			t.Fatalf("bad line %q: %v", l, err)
		}
		evs = append(evs, e)
	}
	if evs[0].Ev != "start" || evs[0].Name != "build" || evs[0].Attrs["n"] != "4" {
		t.Fatalf("first event = %+v", evs[0])
	}
	if evs[1].Parent != evs[0].ID {
		t.Fatalf("child parent = %d, want %d", evs[1].Parent, evs[0].ID)
	}
	if evs[3].Ev != "end" || evs[3].ID != evs[0].ID {
		t.Fatalf("last event = %+v", evs[3])
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	s.Annotate(String("a", "b"))
	c := s.Child("y")
	c.End()
	s.End()
	if tr.Tree() != nil || tr.PhaseDurations() != nil {
		t.Fatal("nil tracer should snapshot to nil")
	}
	if tr.String() != "<nil tracer>" {
		t.Fatal("nil render")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	root := tr.Start("enumerate")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c := root.Child("cluster", Int("worker", int64(i)))
				c.End()
			}
		}(i)
	}
	wg.Wait()
	root.End()
	n := tr.Tree()[0]
	if len(n.Children)+n.Dropped != 400 {
		t.Fatalf("children %d + dropped %d != 400", len(n.Children), n.Dropped)
	}
}

func TestPhaseDurations(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	b := tr.Start("build")
	r1 := b.Child("refine")
	time.Sleep(time.Millisecond)
	r1.End()
	r2 := b.Child("refine")
	time.Sleep(time.Millisecond)
	r2.End()
	b.End()
	d := tr.PhaseDurations()
	if d["refine"] < 2*time.Millisecond {
		t.Fatalf("refine = %v, want >= 2ms", d["refine"])
	}
	if d["build"] < d["refine"] {
		t.Fatalf("build %v < refine %v", d["build"], d["refine"])
	}
}

// TestPhaseDurationsSemantics documents the chosen PhaseDurations
// contract:
//
//  1. repeated same-name spans — siblings or nested — sum into one
//     entry (flat by-name total, not a tree rollup);
//  2. still-open spans contribute their elapsed-so-far, so the map is
//     usable mid-run, and the same open spans also appear in Tree()
//     snapshots with Running=true and a positive duration;
//  3. aggregating a fully-closed trace is deterministic: repeated calls
//     return identical durations at full time resolution.
func TestPhaseDurationsSemantics(t *testing.T) {
	tr := NewTracer(TracerOptions{})

	// Nested same-name spans: an "enumerate" containing an "enumerate".
	outer := tr.Start("enumerate")
	inner := outer.Child("enumerate")
	time.Sleep(2 * time.Millisecond)
	inner.End()
	outer.End()

	// A still-open span.
	open := tr.Start("build")
	time.Sleep(time.Millisecond)

	d := tr.PhaseDurations()
	// (1) flat by-name total: outer and inner both count, so the entry
	// is at least twice the inner sleep.
	if d["enumerate"] < 4*time.Millisecond {
		t.Fatalf("nested same-name spans not summed: enumerate = %v, want >= 4ms", d["enumerate"])
	}
	// (2) the open span contributes elapsed time...
	if d["build"] <= 0 {
		t.Fatalf("open span missing from PhaseDurations: %v", d)
	}
	// ...and shows up in Tree() as running with positive elapsed time.
	var node *SpanNode
	for _, r := range tr.Tree() {
		if r.Name == "build" {
			node = r
		}
	}
	if node == nil || !node.Running || node.DurUS <= 0 {
		t.Fatalf("open span in Tree() = %+v, want Running with DurUS > 0", node)
	}
	open.End()

	// (3) determinism on a closed trace: two aggregations agree exactly.
	d1 := tr.PhaseDurations()
	d2 := tr.PhaseDurations()
	if len(d1) != len(d2) {
		t.Fatalf("aggregations differ: %v vs %v", d1, d2)
	}
	for name, v := range d1 {
		if d2[name] != v {
			t.Fatalf("non-deterministic aggregation for %s: %v vs %v", name, v, d2[name])
		}
	}
}

func TestTracerString(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	s := tr.Start("build", Int("pivots", 12))
	s.Child("refine").End()
	s.End()
	out := tr.String()
	if !strings.Contains(out, "build") || !strings.Contains(out, "pivots=12") ||
		!strings.Contains(out, "  refine") {
		t.Fatalf("render:\n%s", out)
	}
}
