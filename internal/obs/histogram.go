package obs

import (
	"math"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram safe for concurrent Observe from
// enumeration workers: per-bucket atomic counters plus a CAS-updated
// float64 sum, no locks on the observation path. A nil *Histogram turns
// every method into a no-op, matching the rest of the package.
//
// Buckets follow the Prometheus convention: bounds are inclusive upper
// limits ("le"), and an implicit +Inf bucket catches everything beyond
// the last bound.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram returns a histogram over the given bucket upper bounds.
// Bounds are copied, sorted, and deduplicated; an empty slice yields a
// single +Inf bucket (count/sum only).
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	dedup := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{bounds: dedup, counts: make([]atomic.Int64, len(dedup)+1)}
}

// ExponentialBuckets returns n upper bounds starting at start, each
// factor times the previous — the standard shape for latencies and sizes.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets spans 1µs to ~17s in powers of four — wide enough for
// per-unit enumeration times on both toy and saturated runs.
func LatencyBuckets() []float64 { return ExponentialBuckets(1e-6, 4, 13) }

// SizeBuckets spans 1 to ~10⁹ in powers of four, for candidate-list and
// cluster-cardinality distributions.
func SizeBuckets() []float64 { return ExponentialBuckets(1, 4, 16) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, else +Inf slot
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveInt records an integral value (cardinalities, list sizes).
func (h *Histogram) ObserveInt(v int64) { h.Observe(float64(v)) }

// HistogramSnapshot is an immutable, JSON-marshalable view of a
// histogram. Counts are per-bucket (not cumulative); Counts has one more
// entry than Bounds — the final slot is the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot captures the current state. Under concurrent observation the
// per-bucket counts and the total may be momentarily out of sync by the
// in-flight observations; each value is individually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the running average of observed values (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// promLabel formats a bucket bound for the "le" label.
func promLabel(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}
