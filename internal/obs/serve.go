package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"ceci/internal/stats"
)

// Registry aggregates telemetry sources — a counter set, a tracer, the
// latest progress snapshot, and arbitrary named gauge sources — and
// renders them as JSON or Prometheus text. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters *stats.Counters
	tracer   *Tracer
	progress Progress
	hasProg  bool
	sources  map[string]func() map[string]int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// SetCounters attaches the counter set rendered as ceci_*_total counters.
func (r *Registry) SetCounters(c *stats.Counters) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters = c
	r.mu.Unlock()
}

// Counters returns the attached counter set (may be nil).
func (r *Registry) Counters() *stats.Counters {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters
}

// SetTracer attaches the tracer served at /trace.
func (r *Registry) SetTracer(t *Tracer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tracer = t
	r.mu.Unlock()
}

// ObserveProgress records the latest progress snapshot; wire it as (or
// inside) a ProgressFunc so the endpoint's gauges track the live run.
func (r *Registry) ObserveProgress(p Progress) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.progress = p
	r.hasProg = true
	r.mu.Unlock()
}

// ProgressFunc returns a ProgressFunc that records into the registry and
// then calls next (which may be nil).
func (r *Registry) ProgressFunc(next ProgressFunc) ProgressFunc {
	return func(p Progress) {
		r.ObserveProgress(p)
		if next != nil {
			next(p)
		}
	}
}

// SetSource registers (or replaces) a named gauge source. The function
// is called at scrape time and must be safe for concurrent use; its keys
// become ceci_<name>_<key> gauges.
func (r *Registry) SetSource(name string, fn func() map[string]int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.sources == nil {
		r.sources = make(map[string]func() map[string]int64)
	}
	r.sources[name] = fn
	r.mu.Unlock()
}

// SetHistogram registers (or replaces) a named histogram, rendered as
// ceci_<name>_bucket/_sum/_count series by PrometheusText and under the
// "histograms" key of MetricsJSON. The histogram is snapshotted at
// scrape time, so attach it once and keep observing.
func (r *Registry) SetHistogram(name string, h *Histogram) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	if h == nil {
		delete(r.hists, name)
	} else {
		r.hists[name] = h
	}
	r.mu.Unlock()
}

// SetHistograms registers every histogram in hs (a convenience for
// profiling collectors that expose several at once).
func (r *Registry) SetHistograms(hs map[string]*Histogram) {
	for name, h := range hs {
		r.SetHistogram(name, h)
	}
}

type registrySnapshot struct {
	counters map[string]int64
	progress *Progress
	tracer   *Tracer
	sources  map[string]map[string]int64
	hists    map[string]HistogramSnapshot
}

func (r *Registry) snapshot() registrySnapshot {
	r.mu.Lock()
	counters := r.counters
	tracer := r.tracer
	var prog *Progress
	if r.hasProg {
		p := r.progress
		prog = &p
	}
	fns := make(map[string]func() map[string]int64, len(r.sources))
	for k, v := range r.sources {
		fns[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	snap := registrySnapshot{progress: prog, tracer: tracer}
	snap.counters = counters.Snapshot()
	if len(fns) > 0 {
		snap.sources = make(map[string]map[string]int64, len(fns))
		for name, fn := range fns {
			snap.sources[name] = fn()
		}
	}
	if len(hists) > 0 {
		snap.hists = make(map[string]HistogramSnapshot, len(hists))
		for name, h := range hists {
			snap.hists[name] = h.Snapshot()
		}
	}
	return snap
}

// GaugeSources evaluates every registered gauge source and returns the
// results by source name. The telemetry hub samples this periodically
// into its time-series store.
func (r *Registry) GaugeSources() map[string]map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fns := make(map[string]func() map[string]int64, len(r.sources))
	for k, v := range r.sources {
		fns[k] = v
	}
	r.mu.Unlock()
	out := make(map[string]map[string]int64, len(fns))
	for name, fn := range fns {
		out[name] = fn()
	}
	return out
}

// Histograms returns the registered histograms by name (a copy of the
// map; the histograms themselves are shared and live).
func (r *Registry) Histograms() map[string]*Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		out[k] = v
	}
	return out
}

// MetricsJSON renders the registry as one JSON document: counters,
// latest progress, named sources, and the Go runtime snapshot (scalar
// gauges plus the GC-pause and scheduler-latency distributions).
func (r *Registry) MetricsJSON() ([]byte, error) {
	if r == nil {
		return []byte("{}"), nil
	}
	snap := r.snapshot()
	rg, rh := RuntimeSnapshot()
	doc := map[string]any{
		"counters":           snap.counters,
		"runtime":            rg,
		"runtime_histograms": rh,
	}
	if snap.progress != nil {
		doc["progress"] = snap.progress
	}
	if snap.sources != nil {
		doc["sources"] = snap.sources
	}
	if snap.hists != nil {
		doc["histograms"] = snap.hists
	}
	return json.MarshalIndent(doc, "", "  ")
}

// PrometheusText renders the registry in the Prometheus text exposition
// format: counters as ceci_<name>_total, progress and sources as gauges,
// plus Go runtime gauges.
func (r *Registry) PrometheusText() string {
	if r == nil {
		return ""
	}
	snap := r.snapshot()
	var b strings.Builder

	keys := make([]string, 0, len(snap.counters))
	for k := range snap.counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		name := "ceci_" + k + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, snap.counters[k])
	}

	histNames := make([]string, 0, len(snap.hists))
	for name := range snap.hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		writePromHistogram(&b, "ceci_"+name, snap.hists[name])
	}

	if p := snap.progress; p != nil {
		gauge := func(name string, v float64) {
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", name, name, v)
		}
		gauge("ceci_clusters_done", float64(p.ClustersDone))
		gauge("ceci_clusters_total", float64(p.ClustersTotal))
		gauge("ceci_progress_embeddings", float64(p.Embeddings))
		gauge("ceci_embeddings_per_sec", p.EmbeddingsPerSec)
		gauge("ceci_cardinality_done", float64(p.CardinalityDone))
		gauge("ceci_cardinality_total", float64(p.CardinalityTotal))
		gauge("ceci_eta_seconds", p.ETA.Seconds())
		gauge("ceci_steals", float64(p.Steals))
		if len(p.WorkerBusy) > 0 {
			fmt.Fprintf(&b, "# TYPE ceci_worker_busy_seconds gauge\n")
			for i, d := range p.WorkerBusy {
				fmt.Fprintf(&b, "ceci_worker_busy_seconds{worker=\"%d\"} %g\n", i, d.Seconds())
			}
		}
	}

	srcNames := make([]string, 0, len(snap.sources))
	for name := range snap.sources {
		srcNames = append(srcNames, name)
	}
	sort.Strings(srcNames)
	for _, name := range srcNames {
		vals := snap.sources[name]
		ks := make([]string, 0, len(vals))
		for k := range vals {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			mn := "ceci_" + name + "_" + k
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", mn, mn, vals[k])
		}
	}

	rg, rh := RuntimeSnapshot()
	rks := make([]string, 0, len(rg))
	for k := range rg {
		rks = append(rks, k)
	}
	sort.Strings(rks)
	for _, k := range rks {
		name := "ceci_runtime_" + k
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, rg[k])
	}
	rhNames := make([]string, 0, len(rh))
	for k := range rh {
		rhNames = append(rhNames, k)
	}
	sort.Strings(rhNames)
	for _, k := range rhNames {
		writePromHistogram(&b, "ceci_runtime_"+k, rh[k])
	}
	return b.String()
}

// writePromHistogram renders one histogram in the text exposition
// format: cumulative _bucket series with le labels (ending at +Inf),
// then _sum and _count.
func writePromHistogram(b *strings.Builder, name string, s HistogramSnapshot) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	var cum int64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, promLabel(bound), cum)
	}
	if n := len(s.Counts); n > 0 {
		cum += s.Counts[n-1]
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %g\n", name, s.Sum)
	fmt.Fprintf(b, "%s_count %d\n", name, s.Count)
}

// Handler returns the telemetry mux:
//
//	/               route index
//	/metrics        Prometheus text format
//	/metrics.json   counters + progress + sources as JSON
//	/trace          span tree as JSON
//	/debug/pprof/   net/http/pprof profiles
func (r *Registry) Handler() http.Handler {
	if r == nil {
		r = NewRegistry()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "ceci telemetry\n\n/metrics\n/metrics.json\n/trace\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, r.PrometheusText())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		b, err := r.MetricsJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		r.mu.Lock()
		tr := r.tracer
		r.mu.Unlock()
		b, err := json.MarshalIndent(tr.Tree(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down immediately, dropping in-flight scrapes.
func (s *Server) Close() error {
	err := s.srv.Close()
	// srv.Close closes the listener too; double-close is harmless.
	s.ln.Close()
	return err
}

// Shutdown drains the endpoint gracefully: the listener stops accepting
// and in-flight requests (a scrape, a pprof profile) finish within ctx's
// deadline before the server closes. Falls back to Close on an expired
// context.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	s.ln.Close()
	if err != nil {
		s.srv.Close()
	}
	return err
}

// Serve starts the telemetry endpoint on addr (e.g. "127.0.0.1:0" or
// ":9090") and returns immediately; the server runs until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}
