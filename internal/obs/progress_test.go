package obs

import (
	"sync"
	"testing"
	"time"

	"ceci/internal/stats"
)

func TestReporterLifecycle(t *testing.T) {
	var mu sync.Mutex
	var reports []Progress
	r := NewReporter(func(p Progress) {
		mu.Lock()
		reports = append(reports, p)
		mu.Unlock()
	}, time.Millisecond)

	clock := stats.NewWorkerClock(2)
	clock.Add(0, 3*time.Millisecond)
	r.SetClock(clock)
	r.AddTotals(4, 100)
	r.Start()
	r.Start() // idempotent
	for i := 0; i < 4; i++ {
		r.ClusterDone(25)
		r.AddEmbeddings(10)
		time.Sleep(2 * time.Millisecond)
	}
	r.AddSteals(2)
	r.Stop()
	r.Stop() // idempotent

	mu.Lock()
	defer mu.Unlock()
	if len(reports) < 2 {
		t.Fatalf("reports = %d, want >= 2 (periodic + final)", len(reports))
	}
	last := reports[len(reports)-1]
	if !last.Final {
		t.Fatal("last report not Final")
	}
	if last.ClustersDone != 4 || last.ClustersTotal != 4 ||
		last.Embeddings != 40 || last.CardinalityDone != 100 ||
		last.CardinalityTotal != 100 || last.Steals != 2 {
		t.Fatalf("final = %+v", last)
	}
	if len(last.WorkerBusy) != 2 || last.WorkerBusy[0] != 3*time.Millisecond {
		t.Fatalf("worker busy = %v", last.WorkerBusy)
	}
	if last.Elapsed <= 0 || last.EmbeddingsPerSec <= 0 {
		t.Fatalf("rates = %+v", last)
	}
	for i := 1; i < len(reports); i++ {
		prev, cur := reports[i-1], reports[i]
		if cur.ClustersDone < prev.ClustersDone || cur.Embeddings < prev.Embeddings ||
			cur.CardinalityDone < prev.CardinalityDone || cur.Elapsed < prev.Elapsed {
			t.Fatalf("report %d regressed: %+v -> %+v", i, prev, cur)
		}
	}
}

func TestReporterETA(t *testing.T) {
	// Cardinality-based: half the cardinality done in Elapsed time means
	// ETA ~= Elapsed.
	p := Progress{Elapsed: time.Second, CardinalityDone: 50, CardinalityTotal: 100}
	if got := eta(p); got != time.Second {
		t.Fatalf("cardinality eta = %v, want 1s", got)
	}
	// Cluster fallback when no cardinalities were registered: 1 of 3
	// clusters remains after 2 clusters took 2s, so ~1s to go.
	p = Progress{Elapsed: 2 * time.Second, ClustersDone: 2, ClustersTotal: 3}
	if got := eta(p); got != time.Second {
		t.Fatalf("cluster eta = %v, want 1s", got)
	}
	// Done, or nothing to extrapolate from: 0.
	if eta(Progress{Elapsed: time.Second, ClustersDone: 3, ClustersTotal: 3}) != 0 {
		t.Fatal("completed run should have eta 0")
	}
	if eta(Progress{ClustersTotal: 5}) != 0 {
		t.Fatal("unstarted run should have eta 0")
	}
}

func TestReporterNilSafe(t *testing.T) {
	var r *Reporter
	r.SetClock(nil)
	r.AddTotals(1, 1)
	r.ClusterDone(1)
	r.AddEmbeddings(1)
	r.AddSteals(1)
	r.Start()
	r.Stop()
	if p := r.Snapshot(false); p.ClustersDone != 0 || p.Embeddings != 0 || p.Elapsed != 0 {
		t.Fatalf("nil snapshot = %+v", p)
	}
}

func TestReporterNilFuncAggregatesOnly(t *testing.T) {
	r := NewReporter(nil, time.Millisecond)
	r.AddTotals(2, 0)
	r.Start()
	r.ClusterDone(0)
	r.AddEmbeddings(7)
	time.Sleep(3 * time.Millisecond)
	r.Stop()
	p := r.Snapshot(false)
	if p.ClustersDone != 1 || p.Embeddings != 7 {
		t.Fatalf("snapshot = %+v", p)
	}
}
