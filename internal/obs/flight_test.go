package obs

import (
	"strings"
	"sync"
	"testing"
)

func flightRec(traceID string, totalUS int64) QueryRecord {
	return QueryRecord{
		TraceID:   traceID,
		QueryHash: "deadbeef01234567",
		Outcome:   200,
		TotalUS:   totalUS,
	}
}

func TestFlightRecorderRingEviction(t *testing.T) {
	fr := NewFlightRecorder(4, 2)
	for i := 0; i < 10; i++ {
		fr.Record(flightRec(string(rune('a'+i)), int64(i)))
	}
	if got := fr.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	recent := fr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring retained %d records, want 4", len(recent))
	}
	// Newest first: the last four recorded, in reverse order.
	for i, want := range []string{"j", "i", "h", "g"} {
		if recent[i].TraceID != want {
			t.Fatalf("recent[%d].TraceID = %q, want %q (%+v)", i, recent[i].TraceID, want, recent)
		}
	}
	// Seq is a monotone global counter, unaffected by eviction.
	if recent[0].Seq != 10 || recent[3].Seq != 7 {
		t.Fatalf("bad Seq window: %d..%d", recent[3].Seq, recent[0].Seq)
	}
	// Evicted records are gone from the ring.
	if _, ok := fr.Find("a"); ok {
		t.Fatal("evicted record still findable")
	}
}

func TestFlightRecorderSlowestK(t *testing.T) {
	fr := NewFlightRecorder(2, 3)
	// Record in an order that forces insertion in the middle and at the
	// ends, with durations that outlive ring eviction.
	for _, r := range []struct {
		id string
		us int64
	}{{"a", 50}, {"b", 10}, {"c", 90}, {"d", 20}, {"e", 70}, {"f", 5}} {
		fr.Record(flightRec(r.id, r.us))
	}
	slow := fr.Slowest()
	if len(slow) != 3 {
		t.Fatalf("slowest index holds %d, want 3", len(slow))
	}
	for i, want := range []string{"c", "e", "a"} {
		if slow[i].TraceID != want {
			t.Fatalf("slowest[%d] = %q (%dus), want %q", i, slow[i].TraceID, slow[i].TotalUS, want)
		}
	}
	// "c" and "e" were evicted from the 2-deep ring but survive in the
	// slowest index, so Find still resolves them.
	if _, ok := fr.Find("c"); !ok {
		t.Fatal("slowest record lost after ring eviction")
	}
}

func TestFlightRecorderFindReturnsSpans(t *testing.T) {
	fr := NewFlightRecorder(8, 2)
	rec := flightRec("traced", 42)
	rec.Spans = []*SpanNode{{Name: "service-query"}}
	fr.Record(rec)
	fr.Record(flightRec("untraced", 1))

	got, ok := fr.Find("traced")
	if !ok || len(got.Spans) != 1 || got.Spans[0].Name != "service-query" {
		t.Fatalf("Find lost the span tree: %+v ok=%v", got, ok)
	}
	// Recent strips span trees (they can be large); Find keeps them.
	for _, r := range fr.Recent() {
		if r.Spans != nil {
			t.Fatalf("Recent leaked spans for %q", r.TraceID)
		}
	}
	if _, ok := fr.Find("nope"); ok {
		t.Fatal("Find invented a record")
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(32, 4)
	const writers = 8
	const perWriter = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				fr.Record(flightRec("w", int64(w*perWriter+i)))
				// Interleave readers with writers so -race exercises
				// every accessor against concurrent mutation.
				if i%16 == 0 {
					fr.Recent()
					fr.Slowest()
					fr.Total()
					fr.Find("w")
					fr.Text()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := fr.Total(); got != writers*perWriter {
		t.Fatalf("Total = %d, want %d", got, writers*perWriter)
	}
	if got := len(fr.Recent()); got != 32 {
		t.Fatalf("ring holds %d, want 32", got)
	}
	slow := fr.Slowest()
	if len(slow) != 4 {
		t.Fatalf("slowest holds %d, want 4", len(slow))
	}
	// The global slowest must be the true maximum across all writers.
	if want := int64(writers*perWriter - 1); slow[0].TotalUS != want {
		t.Fatalf("slowest[0] = %dus, want %dus", slow[0].TotalUS, want)
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].TotalUS > slow[i-1].TotalUS {
			t.Fatalf("slowest not sorted: %+v", slow)
		}
	}
	// Seq values are unique even under contention.
	seen := map[uint64]bool{}
	for _, r := range fr.Recent() {
		if seen[r.Seq] {
			t.Fatalf("duplicate Seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}

func TestFlightRecorderText(t *testing.T) {
	fr := NewFlightRecorder(8, 2)
	rec := flightRec("aaaa1111", 1500)
	rec.QueryVertices = 5
	rec.Embeddings = 42
	rec.CacheHit = true
	fr.Record(rec)
	partial := flightRec("bbbb2222", 9000)
	partial.Outcome = 504
	partial.Partial = true
	fr.Record(partial)

	text := fr.Text()
	for _, want := range []string{"aaaa1111", "bbbb2222", "200", "504", "42"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text table missing %q:\n%s", want, text)
		}
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(flightRec("x", 1))
	if fr.Total() != 0 || fr.Recent() != nil || fr.Slowest() != nil {
		t.Fatal("nil recorder not inert")
	}
	if _, ok := fr.Find("x"); ok {
		t.Fatal("nil recorder found a record")
	}
	_ = fr.Text()
}
