package obs

import (
	"bytes"
	"strings"
	"testing"
)

// jsonlFixture builds a two-root forest with nesting: the shape a
// router gathers from itself plus one shard.
func jsonlFixture() []*SpanNode {
	return []*SpanNode{
		{
			Name: "route-query", TraceID: "0af7651916cd43dd8448eb211c80319c",
			SpanID: "b7ad6b7169203331", StartUS: 10, DurUS: 900,
			Attrs: map[string]string{"shards": "2"},
			Children: []*SpanNode{
				{Name: "scatter", TraceID: "0af7651916cd43dd8448eb211c80319c",
					SpanID: "00f067aa0ba902b7", ParentSpanID: "b7ad6b7169203331",
					StartUS: 20, DurUS: 700},
			},
		},
		{
			Name: "service-query", TraceID: "0af7651916cd43dd8448eb211c80319c",
			SpanID: "1c80319c8448eb21", ParentSpanID: "00f067aa0ba902b7",
			StartUS: 40, DurUS: 500,
		},
	}
}

// TestSpanJSONLRoundTrip: Write then Read must reproduce the tree —
// and because the second root names a parent inside the first tree,
// reading re-stitches it under the scatter span.
func TestSpanJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpanJSONL(&buf, jsonlFixture()); err != nil {
		t.Fatal(err)
	}
	roots, err := ReadSpanJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 {
		t.Fatalf("got %d roots after stitch, want 1", len(roots))
	}
	route := roots[0]
	if route.Name != "route-query" || route.Attrs["shards"] != "2" {
		t.Fatalf("root = %q attrs %v", route.Name, route.Attrs)
	}
	if len(route.Children) != 1 || route.Children[0].Name != "scatter" {
		t.Fatalf("route children = %+v", route.Children)
	}
	scatter := route.Children[0]
	if len(scatter.Children) != 1 || scatter.Children[0].Name != "service-query" {
		t.Fatalf("scatter should adopt service-query, got %+v", scatter.Children)
	}
	if got := scatter.Children[0].DurUS; got != 500 {
		t.Errorf("stitched span DurUS = %d, want 500", got)
	}
}

// TestReadSpanJSONLSkipsBlankAndRejectsGarbage: blank lines are
// tolerated (trailing newline emitters), malformed JSON is a
// line-numbered error.
func TestReadSpanJSONLSkipsBlankAndRejectsGarbage(t *testing.T) {
	good := `{"name":"a","start_us":1,"dur_us":2}` + "\n\n" + `{"name":"b","start_us":3,"dur_us":4}` + "\n"
	roots, err := ReadSpanJSONL(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2", len(roots))
	}

	if _, err := ReadSpanJSONL(strings.NewReader(`{"name":"a"}` + "\n" + `not json` + "\n")); err == nil {
		t.Fatal("malformed line should error")
	} else if !strings.Contains(err.Error(), "2") {
		t.Errorf("error should name line 2: %v", err)
	}
}
