package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// 0.5 and 1 land in le=1 (inclusive upper bound), 5 in le=10,
	// 50 in le=100, 500 and 5000 overflow to +Inf.
	want := []int64{2, 1, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Sum != 0.5+1+5+50+500+5000 {
		t.Fatalf("sum = %g", s.Sum)
	}
	if got := s.Mean(); got != s.Sum/6 {
		t.Fatalf("mean = %g", got)
	}
}

func TestHistogramBoundsSortedDeduped(t *testing.T) {
	h := NewHistogram([]float64{100, 1, 10, 10, 1})
	s := h.Snapshot()
	if len(s.Bounds) != 3 || s.Bounds[0] != 1 || s.Bounds[1] != 10 || s.Bounds[2] != 100 {
		t.Fatalf("bounds = %v", s.Bounds)
	}
	if len(s.Counts) != 4 {
		t.Fatalf("counts len = %d, want 4", len(s.Counts))
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.ObserveInt(3)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(SizeBuckets())
	const workers, each = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.ObserveInt(int64(i % 1000))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*each {
		t.Fatalf("count = %d, want %d (lost updates)", s.Count, workers*each)
	}
	var bucketTotal int64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
	// Sum of 0..999 per pass, workers*each/1000 passes.
	wantSum := float64(999*1000/2) * float64(workers*each) / 1000
	if s.Sum != wantSum {
		t.Fatalf("sum = %g, want %g (lost float updates)", s.Sum, wantSum)
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(1, 4, 4)
	want := []float64{1, 4, 16, 64}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v", b)
		}
	}
}

// TestRegistryHistogramExposition validates the Prometheus text
// exposition: cumulative _bucket series ending at +Inf, then _sum and
// _count, with the +Inf bucket equal to the total count.
func TestRegistryHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.05, 0.5} {
		h.Observe(v)
	}
	reg.SetHistogram("unit_seconds", h)

	text := reg.PrometheusText()
	wantLines := []string{
		"# TYPE ceci_unit_seconds histogram",
		`ceci_unit_seconds_bucket{le="0.001"} 1`,
		`ceci_unit_seconds_bucket{le="0.01"} 2`,
		`ceci_unit_seconds_bucket{le="0.1"} 3`,
		`ceci_unit_seconds_bucket{le="+Inf"} 4`,
		"ceci_unit_seconds_sum 0.5555",
		"ceci_unit_seconds_count 4",
	}
	for _, w := range wantLines {
		if !strings.Contains(text, w) {
			t.Fatalf("exposition missing %q in:\n%s", w, text)
		}
	}

	// Cumulative monotonicity across every _bucket line.
	var prev int64 = -1
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "ceci_unit_seconds_bucket") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket series not cumulative: %q after %d", line, prev)
		}
		prev = v
	}
}

func TestRegistryHistogramJSON(t *testing.T) {
	reg := NewRegistry()
	h := NewHistogram([]float64{1, 2})
	h.Observe(1.5)
	reg.SetHistogram("card", h)

	b, err := reg.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Histograms map[string]HistogramSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	s, ok := doc.Histograms["card"]
	if !ok {
		t.Fatalf("histograms missing card: %s", b)
	}
	if s.Count != 1 || s.Sum != 1.5 || len(s.Counts) != 3 || s.Counts[1] != 1 {
		t.Fatalf("snapshot = %+v", s)
	}

	// Unregister by setting nil. The runtime_histograms block stays; the
	// user-registered "histograms" key must be gone.
	reg.SetHistogram("card", nil)
	b, _ = reg.MetricsJSON()
	if strings.Contains(string(b), `"histograms":`) {
		t.Fatalf("unregistered histogram still rendered: %s", b)
	}
}
