package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	for i := 0; i < 64; i++ {
		tc := NewTraceContext()
		tc.SpanID = deriveSpanID(tc.TraceID, int64(i))
		tc.Sampled = i%2 == 0
		got, err := ParseTraceparent(tc.Traceparent())
		if err != nil {
			t.Fatalf("round-trip parse of %q: %v", tc.Traceparent(), err)
		}
		if got != tc {
			t.Fatalf("round-trip mismatch: sent %+v got %+v", tc, got)
		}
	}
}

func TestTraceparentHeaderForm(t *testing.T) {
	tc := NewTraceContext()
	tc.SpanID = deriveSpanID(tc.TraceID, 1)
	tc.Sampled = true
	tp := tc.Traceparent()
	if len(tp) != 55 {
		t.Fatalf("traceparent length = %d, want 55: %q", len(tp), tp)
	}
	parts := strings.Split(tp, "-")
	if len(parts) != 4 || parts[0] != "00" || len(parts[1]) != 32 || len(parts[2]) != 16 || parts[3] != "01" {
		t.Fatalf("bad header shape: %q", tp)
	}
	if tp != strings.ToLower(tp) {
		t.Fatalf("traceparent must be lowercase hex: %q", tp)
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, err := ParseTraceparent(valid); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	// A future version with trailing fields must still parse.
	if _, err := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); err != nil {
		t.Fatalf("forward-compatible version rejected: %v", err)
	}
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"truncated", valid[:54]},
		{"zero trace ID", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"},
		{"zero span ID", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01"},
		{"reserved version ff", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"non-hex version", "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"non-hex trace ID", "00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01"},
		{"non-hex span ID", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902zz-01"},
		{"non-hex flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz"},
		{"uppercase trace ID", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01"},
		{"uppercase span ID", "00-4bf92f3577b34da6a3ce929d0e0e4736-00F067AA0BA902B7-01"},
		{"wrong separators", "00_4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7_01"},
		{"version 00 with trailing", valid + "-extra"},
		{"trailing junk without separator", valid + "junk"},
	}
	for _, tc := range cases {
		if got, err := ParseTraceparent(tc.in); err == nil {
			t.Errorf("%s: %q accepted as %+v, want error", tc.name, tc.in, got)
		} else if got.Valid() {
			t.Errorf("%s: error path leaked a valid context %+v", tc.name, got)
		}
	}
}

func TestNewTraceContextUnique(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 256; i++ {
		tc := NewTraceContext()
		if tc.TraceID.IsZero() {
			t.Fatal("minted a zero trace ID")
		}
		if !tc.Sampled {
			t.Fatal("fresh root context must default to sampled")
		}
		if seen[tc.TraceID] {
			t.Fatalf("duplicate trace ID %v", tc.TraceID)
		}
		seen[tc.TraceID] = true
	}
}

func TestSampleHead(t *testing.T) {
	tc := NewTraceContext()
	if !tc.SampleHead(1) || !tc.SampleHead(2) {
		t.Fatal("rate >= 1 must sample everything")
	}
	if tc.SampleHead(0) || tc.SampleHead(-1) {
		t.Fatal("rate <= 0 must sample nothing")
	}
	// The decision comes from the ID, so it is reproducible.
	for i := 0; i < 16; i++ {
		if tc.SampleHead(0.5) != tc.SampleHead(0.5) {
			t.Fatal("SampleHead is not deterministic for a fixed ID")
		}
	}
	// At rate 0.5 a few hundred fresh IDs must land on both sides.
	hit := 0
	for i := 0; i < 400; i++ {
		if NewTraceContext().SampleHead(0.5) {
			hit++
		}
	}
	if hit < 100 || hit > 300 {
		t.Fatalf("rate 0.5 sampled %d/400, far from half", hit)
	}
}

func TestDeriveSpanIDDeterministic(t *testing.T) {
	tc := NewTraceContext()
	if deriveSpanID(tc.TraceID, 7) != deriveSpanID(tc.TraceID, 7) {
		t.Fatal("same (trace, seq) must derive the same span ID")
	}
	if deriveSpanID(tc.TraceID, 1) == deriveSpanID(tc.TraceID, 2) {
		t.Fatal("distinct sequence numbers collided")
	}
	if deriveSpanID(tc.TraceID, 3).IsZero() {
		t.Fatal("derived span ID is the invalid zero value")
	}
}

func TestStartUnderPrecedence(t *testing.T) {
	tr := NewTracer(TracerOptions{})

	// Bare context: a plain root in the tracer's own trace.
	s := StartUnder(context.Background(), tr, "a")
	if s == nil || s.Context().TraceID != tr.TraceID() {
		t.Fatalf("bare context should open a root in the tracer's own trace, got %+v", s.Context())
	}
	s.End()

	// Ambient trace identity: a remote-parented root carrying the ID.
	tc := NewTraceContext()
	tc.SpanID = deriveSpanID(tc.TraceID, 1)
	ctx := ContextWithTrace(context.Background(), tc)
	s = StartUnder(ctx, tr, "b")
	if got := s.Context().TraceID; got != tc.TraceID {
		t.Fatalf("remote root trace ID = %v, want %v", got, tc.TraceID)
	}
	s.End()

	// Ambient parent span wins over the trace identity.
	parent := tr.StartRemote(tc, "parent")
	ctx = ContextWithSpan(ctx, parent)
	child := StartUnder(ctx, tr, "c")
	if child.Context().TraceID != tc.TraceID {
		t.Fatal("child did not inherit the parent's trace")
	}
	child.End()
	parent.End()

	// DetachTrace clears both, so spans below fall back to the tracer's
	// own trace instead of joining the request's.
	s = StartUnder(DetachTrace(ctx), tr, "d")
	if got := s.Context().TraceID; got == tc.TraceID || got != tr.TraceID() {
		t.Fatalf("span under DetachTrace joined trace %v, want local %v", got, tr.TraceID())
	}
	s.End()
}

func TestStartUnderNilTracer(t *testing.T) {
	// A nil tracer must stay inert through every precedence branch.
	var tr *Tracer
	if s := StartUnder(context.Background(), tr, "x"); s != nil {
		t.Fatal("nil tracer produced a span")
	}
	tc := NewTraceContext()
	tc.SpanID = deriveSpanID(tc.TraceID, 1)
	ctx := ContextWithTrace(context.Background(), tc)
	s := StartUnder(ctx, tr, "y")
	s.Annotate(Int("k", 1))
	s.End()
}
