package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"ceci/internal/stats"
)

func newTestRegistry() *Registry {
	reg := NewRegistry()
	c := &stats.Counters{}
	c.AddEmbeddings(42)
	c.AddRecursive(7)
	reg.SetCounters(c)
	tr := NewTracer(TracerOptions{})
	s := tr.Start("build")
	s.End()
	reg.SetTracer(tr)
	reg.ObserveProgress(Progress{
		Elapsed: time.Second, ClustersDone: 1, ClustersTotal: 2,
		Embeddings: 42, EmbeddingsPerSec: 42,
		WorkerBusy: []time.Duration{time.Second, 2 * time.Second},
	})
	reg.SetSource("cluster", func() map[string]int64 {
		return map[string]int64{"machine_0_pending": 3}
	})
	return reg
}

func TestPrometheusText(t *testing.T) {
	out := newTestRegistry().PrometheusText()
	for _, want := range []string{
		"# TYPE ceci_embeddings_total counter",
		"ceci_embeddings_total 42",
		"ceci_recursive_calls_total 7",
		"ceci_clusters_done 1",
		"ceci_eta_seconds",
		`ceci_worker_busy_seconds{worker="1"} 2`,
		"ceci_cluster_machine_0_pending 3",
		"ceci_runtime_goroutines",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMetricsJSON(t *testing.T) {
	b, err := newTestRegistry().MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]int64            `json:"counters"`
		Progress *Progress                   `json:"progress"`
		Sources  map[string]map[string]int64 `json:"sources"`
		Runtime  map[string]int64            `json:"runtime"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b)
	}
	if doc.Counters["embeddings"] != 42 {
		t.Fatalf("counters = %v", doc.Counters)
	}
	if doc.Progress == nil || doc.Progress.ClustersTotal != 2 {
		t.Fatalf("progress = %+v", doc.Progress)
	}
	if doc.Sources["cluster"]["machine_0_pending"] != 3 {
		t.Fatalf("sources = %v", doc.Sources)
	}
	if doc.Runtime["gomaxprocs"] <= 0 {
		t.Fatalf("runtime = %v", doc.Runtime)
	}
}

func TestServeEndpoints(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", newTestRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	if body, _ := get("/"); !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %q", body)
	}
	body, ctype := get("/metrics")
	if !strings.Contains(body, "ceci_embeddings_total 42") || !strings.Contains(ctype, "text/plain") {
		t.Fatalf("/metrics (%s): %q", ctype, body)
	}
	body, ctype = get("/metrics.json")
	if !json.Valid([]byte(body)) || !strings.Contains(ctype, "application/json") {
		t.Fatalf("/metrics.json (%s): %q", ctype, body)
	}
	body, _ = get("/trace")
	var tree []*SpanNode
	if err := json.Unmarshal([]byte(body), &tree); err != nil || len(tree) != 1 || tree[0].Name != "build" {
		t.Fatalf("/trace: %v %q", err, body)
	}
	if body, _ := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("pprof cmdline empty")
	}

	resp, err := http.Get(base + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/nope: status %d, want 404", resp.StatusCode)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.SetCounters(nil)
	r.SetTracer(nil)
	r.ObserveProgress(Progress{})
	r.SetSource("x", nil)
	if r.Counters() != nil {
		t.Fatal("nil registry counters")
	}
	if b, err := r.MetricsJSON(); err != nil || string(b) != "{}" {
		t.Fatalf("nil MetricsJSON = %q, %v", b, err)
	}
	if r.PrometheusText() != "" {
		t.Fatal("nil PrometheusText")
	}
	if r.Handler() == nil {
		t.Fatal("nil Handler should still serve")
	}
}

// TestRuntimeHistogramExpositions: the Go runtime/metrics histograms
// (GC pause, scheduler latency) appear in both expositions once the
// runtime has data — runtime.GC() guarantees at least one pause sample.
func TestRuntimeHistogramExpositions(t *testing.T) {
	runtime.GC()
	reg := NewRegistry()

	out := reg.PrometheusText()
	for _, want := range []string{
		"# TYPE ceci_runtime_gc_pause_seconds histogram",
		"ceci_runtime_gc_pause_seconds_count",
		`ceci_runtime_gc_pause_seconds_bucket{le="+Inf"}`,
		"ceci_runtime_sched_latency_seconds_count",
		"ceci_runtime_heap_goal_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}

	b, err := reg.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		RuntimeHists map[string]HistogramSnapshot `json:"runtime_histograms"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	gc, ok := doc.RuntimeHists["gc_pause_seconds"]
	if !ok {
		t.Fatalf("runtime_histograms missing gc_pause_seconds: %v", doc.RuntimeHists)
	}
	if gc.Count <= 0 {
		t.Fatalf("gc_pause_seconds has no samples after runtime.GC(): %+v", gc)
	}
	if len(gc.Counts) != len(gc.Bounds)+1 {
		t.Fatalf("gc_pause_seconds bucket shape: %d counts for %d bounds",
			len(gc.Counts), len(gc.Bounds))
	}
}
