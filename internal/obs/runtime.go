package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
)

// Names read from runtime/metrics for the runtime snapshot. Scalars
// become ceci_runtime_* gauges; the two histogram-valued metrics (GC
// pause and scheduler latency distributions) are converted to
// HistogramSnapshot and rendered as real histograms in both expositions.
const (
	metricHeapBytes    = "/memory/classes/heap/objects:bytes"
	metricHeapGoal     = "/gc/heap/goal:bytes"
	metricAllocBytes   = "/gc/heap/allocs:bytes"
	metricAllocObjects = "/gc/heap/allocs:objects"
	metricGCCycles     = "/gc/cycles/total:gc-cycles"
	metricGoroutines   = "/sched/goroutines:goroutines"
	metricGCPauses     = "/gc/pauses:seconds"
	metricSchedLat     = "/sched/latencies:seconds"
)

// RuntimeSnapshot reads the Go runtime's own metrics (runtime/metrics,
// not the stop-the-world runtime.ReadMemStats) and returns scalar gauges
// plus the GC-pause and scheduler-latency distributions. Gauge keys are
// stable: goroutines, gomaxprocs, heap_bytes, heap_goal_bytes,
// alloc_total, alloc_objects_total, gc_cycles. Histogram keys:
// gc_pause_seconds, sched_latency_seconds.
func RuntimeSnapshot() (map[string]int64, map[string]HistogramSnapshot) {
	samples := []metrics.Sample{
		{Name: metricHeapBytes},
		{Name: metricHeapGoal},
		{Name: metricAllocBytes},
		{Name: metricAllocObjects},
		{Name: metricGCCycles},
		{Name: metricGoroutines},
		{Name: metricGCPauses},
		{Name: metricSchedLat},
	}
	metrics.Read(samples)

	gauges := map[string]int64{
		"gomaxprocs": int64(runtime.GOMAXPROCS(0)),
	}
	hists := make(map[string]HistogramSnapshot, 2)
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			v := int64(s.Value.Uint64())
			switch s.Name {
			case metricHeapBytes:
				gauges["heap_bytes"] = v
			case metricHeapGoal:
				gauges["heap_goal_bytes"] = v
			case metricAllocBytes:
				gauges["alloc_total"] = v
			case metricAllocObjects:
				gauges["alloc_objects_total"] = v
			case metricGCCycles:
				gauges["gc_cycles"] = v
			case metricGoroutines:
				gauges["goroutines"] = v
			}
		case metrics.KindFloat64Histogram:
			h := FromRuntimeHistogram(s.Value.Float64Histogram())
			switch s.Name {
			case metricGCPauses:
				hists["gc_pause_seconds"] = h
			case metricSchedLat:
				hists["sched_latency_seconds"] = h
			}
		}
	}
	return gauges, hists
}

// RuntimeAllocs reads the cumulative heap-allocation counters — the
// watermark pair the per-query resource ledger diffs across a query.
// Cheap: two scalar metrics, no histograms, no stop-the-world.
func RuntimeAllocs() (bytes, objects int64) {
	samples := []metrics.Sample{
		{Name: metricAllocBytes},
		{Name: metricAllocObjects},
	}
	metrics.Read(samples)
	return int64(samples[0].Value.Uint64()), int64(samples[1].Value.Uint64())
}

// FromRuntimeHistogram converts a runtime/metrics Float64Histogram —
// bucket i counts values in [Buckets[i], Buckets[i+1]) — into the
// package's le-bounded HistogramSnapshot form, compacting away
// zero-count buckets (lossless: an empty bucket's range merges into its
// successor) so the ~100-bucket runtime distributions don't bloat the
// exposition. The runtime does not track a sum, so Sum is approximated
// from bucket midpoints.
func FromRuntimeHistogram(h *metrics.Float64Histogram) HistogramSnapshot {
	s := HistogramSnapshot{}
	var infCount int64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		n := int64(c)
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		s.Count += n
		if math.IsInf(hi, 1) {
			infCount += n
			if !math.IsInf(lo, -1) {
				s.Sum += float64(n) * lo
			}
			continue
		}
		if math.IsInf(lo, -1) {
			lo = 0
		}
		s.Sum += float64(n) * (lo + hi) / 2
		s.Bounds = append(s.Bounds, hi)
		s.Counts = append(s.Counts, n)
	}
	s.Counts = append(s.Counts, infCount) // the +Inf slot
	return s
}
