package obs

import (
	"fmt"
	"sort"
	"strings"
)

// QueryResources is one query's resource ledger: what the query actually
// cost, beyond how long it took. The enumeration layer charges it at
// work-unit boundaries (never inside the zero-allocation depth step),
// the service layer adds admission/build context, and the snapshot rides
// the query's flight record so /queryz and the per-class aggregation can
// answer "which query shapes are expensive", not just "which instances
// were slow".
type QueryResources struct {
	// CPUUS is the summed worker busy time across the enumeration — the
	// query's CPU cost in microseconds, which under multi-worker
	// enumeration exceeds the enumeration wall time.
	CPUUS int64 `json:"cpu_us"`
	// Units is how many work units (clusters or decomposed sub-units)
	// the enumeration scheduled for this query.
	Units int64 `json:"units"`
	// RecursiveCalls counts backtracking-search extensions.
	RecursiveCalls int64 `json:"recursive_calls"`
	// Embeddings delivered by the enumeration.
	Embeddings int64 `json:"embeddings"`
	// PeakScratchBytes is the high-water physical footprint of the
	// per-worker candidate/intersection scratch (per-depth buffers, span
	// and chunk bitmaps) — the query's live enumeration memory beyond the
	// index itself.
	PeakScratchBytes int64 `json:"peak_scratch_bytes"`
	// AllocBytes/AllocObjects are the process heap-allocation delta
	// across the query (from runtime/metrics). Under concurrent queries
	// the attribution is approximate — deltas include neighbors' work —
	// but the steady-state enumeration step allocates nothing, so the
	// numbers predominantly reflect this query's build phase.
	AllocBytes   int64 `json:"alloc_bytes,omitempty"`
	AllocObjects int64 `json:"alloc_objects,omitempty"`
	// Kernels is the adaptive intersection-kernel mix (PR 7's
	// KernelStats): which kernels fired and how much they scanned and
	// emitted. Kernels that never fired are omitted.
	Kernels []KernelMix `json:"kernels,omitempty"`
}

// KernelMix is one intersection kernel's share of a query's set work.
type KernelMix struct {
	Kernel  string `json:"kernel"`
	Calls   int64  `json:"calls"`
	Scanned int64  `json:"scanned"`
	Emitted int64  `json:"emitted"`
}

// Add accumulates o into r (aggregation across queries of one class).
// Peak fields take the max; everything else sums.
func (r *QueryResources) Add(o *QueryResources) {
	if o == nil {
		return
	}
	r.CPUUS += o.CPUUS
	r.Units += o.Units
	r.RecursiveCalls += o.RecursiveCalls
	r.Embeddings += o.Embeddings
	if o.PeakScratchBytes > r.PeakScratchBytes {
		r.PeakScratchBytes = o.PeakScratchBytes
	}
	r.AllocBytes += o.AllocBytes
	r.AllocObjects += o.AllocObjects
	for _, k := range o.Kernels {
		found := false
		for i := range r.Kernels {
			if r.Kernels[i].Kernel == k.Kernel {
				r.Kernels[i].Calls += k.Calls
				r.Kernels[i].Scanned += k.Scanned
				r.Kernels[i].Emitted += k.Emitted
				found = true
				break
			}
		}
		if !found {
			r.Kernels = append(r.Kernels, k)
		}
	}
	sort.Slice(r.Kernels, func(i, j int) bool { return r.Kernels[i].Kernel < r.Kernels[j].Kernel })
}

// Text renders the ledger as an aligned block for cecirun -ledger and
// the /queryz text view.
func (r *QueryResources) Text() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "resource ledger:\n")
	fmt.Fprintf(&b, "  enum cpu:        %s (worker busy time)\n", usString(r.CPUUS))
	fmt.Fprintf(&b, "  work units:      %d\n", r.Units)
	fmt.Fprintf(&b, "  recursive calls: %d\n", r.RecursiveCalls)
	fmt.Fprintf(&b, "  embeddings:      %d\n", r.Embeddings)
	fmt.Fprintf(&b, "  peak scratch:    %s\n", byteString(r.PeakScratchBytes))
	if r.AllocBytes != 0 || r.AllocObjects != 0 {
		fmt.Fprintf(&b, "  allocations:     %s / %d objects (process-wide delta)\n",
			byteString(r.AllocBytes), r.AllocObjects)
	}
	if len(r.Kernels) > 0 {
		fmt.Fprintf(&b, "  kernel mix:\n")
		for _, k := range r.Kernels {
			fmt.Fprintf(&b, "    %-8s %10d calls %14d scanned %14d emitted\n",
				k.Kernel, k.Calls, k.Scanned, k.Emitted)
		}
	}
	return b.String()
}

// usString formats a microsecond total as a human duration.
func usString(us int64) string {
	switch {
	case us >= 1e6:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}

// byteString formats a byte count with a binary unit.
func byteString(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
