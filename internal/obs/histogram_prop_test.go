package obs

import (
	"encoding/json"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// TestHistogramExpositionsAgree is a property test over randomized
// observation streams: the JSON snapshot and the Prometheus text
// exposition of the same histogram must describe the same distribution —
// identical cumulative bucket counts, total count, and sum — for any
// bucket layout and any value stream (including negatives, zeros, and
// values past the last bound).
func TestHistogramExpositionsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 50; trial++ {
		// Random strictly-increasing bucket layout.
		nb := 1 + rng.Intn(8)
		bounds := make([]float64, nb)
		x := rng.Float64() * 10
		for i := range bounds {
			x += 0.1 + rng.Float64()*100
			bounds[i] = x
		}
		h := NewHistogram(bounds)

		// Random stream spanning every bucket, both tails included.
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			v := (rng.Float64() - 0.2) * x * 2
			h.Observe(v)
		}
		snap := h.Snapshot()

		// The JSON form round-trips losslessly.
		b, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		var fromJSON HistogramSnapshot
		if err := json.Unmarshal(b, &fromJSON); err != nil {
			t.Fatal(err)
		}
		if fromJSON.Count != snap.Count || fromJSON.Sum != snap.Sum ||
			len(fromJSON.Counts) != len(snap.Counts) {
			t.Fatalf("trial %d: JSON round-trip changed the snapshot:\n%+v\n%+v",
				trial, snap, fromJSON)
		}

		// Parse the Prometheus text back into cumulative buckets.
		var sb strings.Builder
		writePromHistogram(&sb, "h", snap)
		promCum, promSum, promCount := parsePromHistogram(t, sb.String(), "h")

		// Compare against cumulative sums of the JSON per-bucket counts.
		if len(promCum) != len(snap.Counts) {
			t.Fatalf("trial %d: prom has %d buckets, JSON %d (bounds %v)",
				trial, len(promCum), len(snap.Counts), snap.Bounds)
		}
		var cum int64
		for i, c := range snap.Counts {
			cum += c
			if promCum[i] != cum {
				t.Fatalf("trial %d bucket %d: prom cumulative %d, JSON cumulative %d\nprom:\n%s",
					trial, i, promCum[i], cum, sb.String())
			}
		}
		if promCount != snap.Count || promCum[len(promCum)-1] != snap.Count {
			t.Fatalf("trial %d: prom count %d (+Inf %d), JSON count %d",
				trial, promCount, promCum[len(promCum)-1], snap.Count)
		}
		// _sum is rendered with %g: compare the parsed value with the same
		// formatting round-trip tolerance.
		if math.Abs(promSum-snap.Sum) > 1e-9*math.Max(1, math.Abs(snap.Sum)) {
			t.Fatalf("trial %d: prom sum %g, JSON sum %g", trial, promSum, snap.Sum)
		}
	}
}

// parsePromHistogram extracts the cumulative bucket counts (in exposition
// order, +Inf last), the _sum, and the _count from Prometheus text.
func parsePromHistogram(t *testing.T, text, name string) (cum []int64, sum float64, count int64) {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad exposition line %q", line)
		}
		key, val := fields[0], fields[1]
		switch {
		case strings.HasPrefix(key, name+"_bucket{"):
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Fatalf("bad bucket count %q: %v", line, err)
			}
			cum = append(cum, n)
		case key == name+"_sum":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				t.Fatalf("bad sum %q: %v", line, err)
			}
			sum = f
		case key == name+"_count":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Fatalf("bad count %q: %v", line, err)
			}
			count = n
		}
	}
	return cum, sum, count
}
