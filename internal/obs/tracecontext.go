package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// TraceID is a W3C trace-context 128-bit trace identifier. The zero
// value is invalid (the spec reserves all-zeros to mean "no trace").
type TraceID [16]byte

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the ID is the invalid all-zeros value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// SpanID is a W3C trace-context 64-bit span identifier. The zero value
// is invalid and doubles as "no parent" on root spans.
type SpanID [8]byte

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is the invalid all-zeros value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// TraceContext identifies one position in a distributed trace: the
// trace every span of the request belongs to, the span the next child
// should be parented under, and the head-based sampling decision. It is
// the in-memory form of a W3C `traceparent` header and is what crosses
// process and machine boundaries (HTTP headers, the cluster TCP
// protocol) so remote spans stitch into one tree.
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether both IDs are non-zero — the precondition for
// propagating the context downstream.
func (tc TraceContext) Valid() bool { return !tc.TraceID.IsZero() && !tc.SpanID.IsZero() }

// Traceparent formats the context as a W3C traceparent header value:
// version 00, 32-hex trace ID, 16-hex parent span ID, 2-hex flags.
func (tc TraceContext) Traceparent() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID.String() + "-" + tc.SpanID.String() + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header value. Malformed
// headers — wrong field lengths, non-hex digits, an all-zero trace or
// span ID, or the reserved version ff — are rejected with an error;
// per the spec, callers then restart the trace with a fresh context.
// Unknown (non-00) versions are accepted if the 00-version prefix
// parses, as the spec requires for forward compatibility.
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	// 00-<32 hex>-<16 hex>-<2 hex> = 55 bytes; future versions may
	// append fields after the flags, separated by another dash.
	if len(s) < 55 {
		return tc, fmt.Errorf("traceparent: too short (%d bytes)", len(s))
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, fmt.Errorf("traceparent: bad field separators")
	}
	version := s[:2]
	if !isHex(version) {
		return tc, fmt.Errorf("traceparent: non-hex version %q", version)
	}
	if version == "ff" {
		return tc, fmt.Errorf("traceparent: reserved version ff")
	}
	if version == "00" {
		if len(s) != 55 {
			return tc, fmt.Errorf("traceparent: version 00 must be exactly 55 bytes, got %d", len(s))
		}
	} else if len(s) > 55 && s[55] != '-' {
		return tc, fmt.Errorf("traceparent: trailing bytes without separator")
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(s[3:35])); err != nil {
		return TraceContext{}, fmt.Errorf("traceparent: bad trace ID: %w", err)
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(s[36:52])); err != nil {
		return TraceContext{}, fmt.Errorf("traceparent: bad span ID: %w", err)
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return TraceContext{}, fmt.Errorf("traceparent: bad flags: %w", err)
	}
	if tc.TraceID.IsZero() {
		return TraceContext{}, fmt.Errorf("traceparent: all-zero trace ID")
	}
	if tc.SpanID.IsZero() {
		return TraceContext{}, fmt.Errorf("traceparent: all-zero span ID")
	}
	if isUpperHex(s[3:35]) || isUpperHex(s[36:52]) || isUpperHex(s[53:55]) {
		return TraceContext{}, fmt.Errorf("traceparent: uppercase hex is invalid")
	}
	tc.Sampled = flags[0]&0x01 != 0
	return tc, nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

func isUpperHex(s string) bool {
	for i := 0; i < len(s); i++ {
		if c := s[i]; 'A' <= c && c <= 'F' {
			return true
		}
	}
	return false
}

// traceSeed salts NewTraceContext so trace IDs stay unique even if the
// crypto reader ever fails; it never repeats within a process.
var traceSeed atomic.Uint64

// NewTraceContext mints a fresh root context: a random 128-bit trace
// ID, no parent span, sampled. This is the head of a new trace — pass
// it to Tracer.StartRemote (or carry it in a context.Context via
// ContextWithTrace) to open the root span.
func NewTraceContext() TraceContext {
	var tc TraceContext
	if _, err := crand.Read(tc.TraceID[:]); err != nil || tc.TraceID.IsZero() {
		// Entropy exhaustion is effectively impossible on the platforms
		// we run on, but an all-zero ID must never escape.
		n := traceSeed.Add(1)
		binary.BigEndian.PutUint64(tc.TraceID[8:], splitmix64(n))
		binary.BigEndian.PutUint64(tc.TraceID[:8], splitmix64(n^0x9e3779b97f4a7c15))
	}
	tc.Sampled = true
	return tc
}

// SampleHead makes the head-based sampling decision for a fresh trace
// from the trace ID's own randomness: the trace is sampled when its low
// 64 bits fall below rate·2⁶⁴. Deciding from the ID (not a separate
// coin flip) keeps the decision consistent anywhere the ID travels.
// rate ≥ 1 samples everything, rate ≤ 0 nothing.
func (tc TraceContext) SampleHead(rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	v := binary.BigEndian.Uint64(tc.TraceID[8:])
	return float64(v) < rate*float64(^uint64(0))
}

// deriveSpanID allocates the seq-th span ID of a trace
// deterministically: a splitmix64 mix of the trace ID's low word and
// the tracer's span sequence number. Determinism (rather than fresh
// randomness per span) means a replayed run against the same trace ID
// produces the same span IDs, which keeps exported timelines diffable.
func deriveSpanID(tid TraceID, seq int64) SpanID {
	var s SpanID
	low := binary.BigEndian.Uint64(tid[8:])
	v := splitmix64(low ^ splitmix64(uint64(seq)))
	if v == 0 {
		v = 1 // all-zeros is the invalid span ID
	}
	binary.BigEndian.PutUint64(s[:], v)
	return s
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-distributed 64-bit mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Context plumbing: a trace context (the identity of the request) and a
// parent span (an open span to nest under) can both ride a
// context.Context through API layers that should not grow explicit
// tracing parameters.

type ctxKeySpan struct{}
type ctxKeyTrace struct{}

// ContextWithSpan returns a context carrying s as the ambient parent
// span. StartUnder (and through it the build, enumeration, and cluster
// layers) parents new phase spans beneath it.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKeySpan{}, s)
}

// SpanFromContext returns the ambient parent span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKeySpan{}).(*Span)
	return s
}

// ContextWithTrace returns a context carrying tc as the ambient trace
// identity. An engine that accepts work with such a context opens its
// root span with StartRemote(tc, ...) so the local tree stitches under
// the caller's span.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, ctxKeyTrace{}, tc)
}

// TraceFromContext returns the ambient trace identity, if any.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	if ctx == nil {
		return TraceContext{}, false
	}
	tc, ok := ctx.Value(ctxKeyTrace{}).(TraceContext)
	return tc, ok
}

// DetachTrace returns a context whose ambient span and trace identity
// are cleared, so StartUnder below it opens nothing but plain local
// roots. Used where a traced request fans into per-item work that would
// flood the trace (e.g. incremental mode's per-cluster index builds).
func DetachTrace(ctx context.Context) context.Context {
	ctx = context.WithValue(ctx, ctxKeySpan{}, (*Span)(nil))
	return context.WithValue(ctx, ctxKeyTrace{}, TraceContext{})
}

// StartUnder opens a span in the most tightly scoped trace position the
// context carries: a child of the ambient parent span when one is set,
// else a remote-parented root when the context carries a TraceContext,
// else a plain root span on t. This is how the build, enumeration, and
// cluster layers join a request's trace without threading tracing
// arguments through every signature — the context they already take is
// enough.
func StartUnder(ctx context.Context, t *Tracer, name string, attrs ...Attr) *Span {
	if parent := SpanFromContext(ctx); parent != nil {
		return parent.Child(name, attrs...)
	}
	if tc, ok := TraceFromContext(ctx); ok && tc.Valid() {
		return t.StartRemote(tc, name, attrs...)
	}
	return t.Start(name, attrs...)
}
