package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// chromeEvent is one Chrome trace_event entry. We emit only "X"
// (complete) events — begin/end pairs folded into one record — plus "M"
// metadata events naming the process, which is the subset every
// trace_event consumer (chrome://tracing, Perfetto, speedscope)
// understands.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"` // microseconds
	Dur  int64             `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeDoc is the JSON-object form of the trace_event format.
type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders a span forest as Chrome trace_event JSON, loadable
// in chrome://tracing and Perfetto. Spans become complete ("X") events;
// the span's trace identity and attributes land in args. Thread IDs are
// chosen so concurrent subtrees get their own rows: a "machine" span
// (distributed runs) opens a lane per machine, a "cluster" span with a
// "worker" attribute opens a lane per enumeration worker, and everything
// else inherits its parent's lane — within one lane spans are
// sequential, so the viewer's time-based nesting reconstructs the tree.
func ChromeTrace(nodes []*SpanNode) ([]byte, error) {
	doc := chromeDoc{
		TraceEvents: chromeEvents(nodes),
		DisplayUnit: "ms",
	}
	return json.MarshalIndent(doc, "", " ")
}

func chromeEvents(nodes []*SpanNode) []chromeEvent {
	events := []chromeEvent{{
		Name: "process_name",
		Ph:   "M",
		PID:  1,
		Args: map[string]string{"name": "ceci"},
	}}
	var walk func(n *SpanNode, tid int64)
	walk = func(n *SpanNode, tid int64) {
		tid = laneFor(n, tid)
		args := make(map[string]string, len(n.Attrs)+3)
		for k, v := range n.Attrs {
			args[k] = v
		}
		if n.SpanID != "" {
			args["trace_id"] = n.TraceID
			args["span_id"] = n.SpanID
			if n.ParentSpanID != "" {
				args["parent_span_id"] = n.ParentSpanID
			}
		}
		dur := n.DurUS
		if dur <= 0 {
			dur = 1 // zero-duration X events vanish in the viewer
		}
		events = append(events, chromeEvent{
			Name: n.Name, Ph: "X", TS: n.StartUS, Dur: dur, PID: 1, TID: tid, Args: args,
		})
		for _, c := range n.Children {
			walk(c, tid)
		}
	}
	for i, n := range nodes {
		walk(n, int64(i))
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	return events
}

// laneFor assigns the Chrome thread lane: machines and per-worker
// cluster spans get their own lanes so concurrent siblings do not
// overlap on one row; everything else stays on the parent's lane.
func laneFor(n *SpanNode, inherited int64) int64 {
	if n.Name == "machine" {
		if id, err := strconv.ParseInt(n.Attrs["id"], 10, 64); err == nil {
			return 1000 * (id + 1)
		}
	}
	if w, ok := n.Attrs["worker"]; ok {
		if id, err := strconv.ParseInt(w, 10, 64); err == nil {
			return inherited + id + 1
		}
	}
	return inherited
}

// WriteSpanJSONL writes the span forest in the compact JSONL export
// format: one self-contained JSON object per span (depth-first), each
// carrying its full trace identity, so the log can be grepped,
// line-sorted, or re-stitched without holding the whole tree.
func WriteSpanJSONL(w io.Writer, nodes []*SpanNode) error {
	enc := json.NewEncoder(w)
	var walk func(n *SpanNode) error
	walk = func(n *SpanNode) error {
		flat := *n
		flat.Children = nil
		if err := enc.Encode(&flat); err != nil {
			return err
		}
		for _, c := range n.Children {
			if c.ParentSpanID == "" && n.SpanID != "" {
				// In-process children carry the parent pointer implicitly;
				// make it explicit so the flat form loses nothing.
				cp := *c
				cp.ParentSpanID = n.SpanID
				c = &cp
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, n := range nodes {
		if err := walk(n); err != nil {
			return fmt.Errorf("span jsonl: %w", err)
		}
	}
	return nil
}

// ReadSpanJSONL parses a span log written by WriteSpanJSONL and
// reassembles the tree structure via Stitch: every flat record carries
// an explicit ParentSpanID, so spans re-nest under their parents and
// the roots of the reconstructed forest are returned. Blank lines are
// skipped; a malformed line aborts with its line number.
func ReadSpanJSONL(r io.Reader) ([]*SpanNode, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var nodes []*SpanNode
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		n := &SpanNode{}
		if err := json.Unmarshal(b, n); err != nil {
			return nil, fmt.Errorf("span jsonl line %d: %w", line, err)
		}
		n.Children = nil // flat records must not smuggle in nesting
		nodes = append(nodes, n)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("span jsonl: %w", err)
	}
	return Stitch(nodes), nil
}
