package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// QueryRecord is one completed query as the flight recorder remembers
// it: identity (trace ID, canonical query hash), admission and phase
// timings, the outcome as an HTTP-style status, and — when the query
// was sampled — the full stitched span tree for /tracez export.
type QueryRecord struct {
	// Seq is the record's process-wide admission number, assigned by the
	// recorder; newer records have larger Seq.
	Seq uint64 `json:"seq"`
	// TraceID is the query's 128-bit trace ID as 32 hex digits.
	TraceID string `json:"trace_id"`
	// Time is when the query was admitted.
	Time time.Time `json:"time"`
	// QueryHash is a short hash of the canonical (isomorphism-aware)
	// query form — equal for isomorphic patterns. Empty when the query
	// was shed before its class was resolved.
	QueryHash string `json:"query_hash,omitempty"`
	// QueryVertices is the pattern size.
	QueryVertices int `json:"query_vertices"`
	// Outcome is the HTTP-style status: 200 OK, 400 bad query, 429 shed
	// by admission control, 499 client gone, 500 internal, 504 deadline.
	Outcome int `json:"outcome"`
	// CacheHit reports whether the index cache served the query's class.
	CacheHit bool `json:"cache_hit"`
	// Partial marks results cut short by deadline or cancellation.
	Partial bool `json:"partial,omitempty"`
	// Embeddings delivered (or counted).
	Embeddings int64 `json:"embeddings"`
	// AdmissionWaitUS is time spent queued for a worker slot.
	AdmissionWaitUS int64 `json:"admission_wait_us"`
	// BuildUS and EnumUS are the index-build and enumeration phases.
	BuildUS int64 `json:"build_us"`
	EnumUS  int64 `json:"enum_us"`
	// TotalUS is end-to-end latency including admission wait.
	TotalUS int64 `json:"total_us"`
	// Sampled reports whether spans were recorded for this query.
	Sampled bool `json:"sampled"`
	// Resources is the query's resource ledger (CPU, allocations, peak
	// scratch, kernel mix), present when the engine runs with telemetry
	// enabled. Unlike Spans it is small and survives in /queryz listings.
	Resources *QueryResources `json:"resources,omitempty"`
	// Spans is the stitched span tree (sampled queries only). Omitted
	// from the /queryz listing; served by /tracez/{traceID}.
	Spans []*SpanNode `json:"spans,omitempty"`
}

// FlightRecorder keeps the last N completed queries in a ring buffer
// plus a slowest-K side index, so "what just happened" and "what was
// slow today" both survive after the queries themselves are gone.
// Recording is one short critical section — a ring-slot write and an
// O(K) slowest-index update, no allocation beyond the record itself —
// so it sits on the request path of every query, sampled or not.
type FlightRecorder struct {
	mu      sync.Mutex
	ring    []QueryRecord
	next    int
	filled  int
	seq     uint64
	slowest []QueryRecord // sorted by TotalUS descending, ≤ k entries
	k       int
}

// DefaultFlightSize is the ring capacity when NewFlightRecorder is
// given a non-positive size.
const DefaultFlightSize = 256

// DefaultSlowestK is the slowest-query side-index depth when
// NewFlightRecorder is given a non-positive k.
const DefaultSlowestK = 16

// NewFlightRecorder returns a recorder holding the last size queries
// and the k slowest ever seen (both defaulted when non-positive).
func NewFlightRecorder(size, k int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightSize
	}
	if k <= 0 {
		k = DefaultSlowestK
	}
	return &FlightRecorder{ring: make([]QueryRecord, size), k: k}
}

// Record stores one completed query, evicting the oldest ring entry
// when full and updating the slowest-K index. Safe for concurrent use.
// Nil-safe: a nil recorder drops the record.
func (f *FlightRecorder) Record(rec QueryRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.seq++
	rec.Seq = f.seq
	f.ring[f.next] = rec
	f.next = (f.next + 1) % len(f.ring)
	if f.filled < len(f.ring) {
		f.filled++
	}
	// Slowest-K: insertion-sort into a tiny descending slice. Records
	// evicted from the ring stay here, so a pathological query from an
	// hour ago is still inspectable.
	if len(f.slowest) < f.k || rec.TotalUS > f.slowest[len(f.slowest)-1].TotalUS {
		i := len(f.slowest)
		if i < f.k {
			f.slowest = append(f.slowest, rec)
		} else {
			i = f.k - 1
			f.slowest[i] = rec
		}
		for i > 0 && f.slowest[i-1].TotalUS < f.slowest[i].TotalUS {
			f.slowest[i-1], f.slowest[i] = f.slowest[i], f.slowest[i-1]
			i--
		}
	}
	f.mu.Unlock()
}

// Total returns how many queries have ever been recorded (including
// those evicted from the ring).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// Recent returns the retained queries, newest first, without span
// trees (use Find to get a record with its spans).
func (f *FlightRecorder) Recent() []QueryRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]QueryRecord, 0, f.filled)
	for i := 0; i < f.filled; i++ {
		rec := f.ring[(f.next-1-i+len(f.ring)*2)%len(f.ring)]
		rec.Spans = nil
		out = append(out, rec)
	}
	return out
}

// Slowest returns the K slowest queries ever recorded, slowest first,
// without span trees.
func (f *FlightRecorder) Slowest() []QueryRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]QueryRecord, len(f.slowest))
	copy(out, f.slowest)
	for i := range out {
		out[i].Spans = nil
	}
	return out
}

// Find returns the record for a trace ID — spans included — searching
// the ring first, then the slowest-K index.
func (f *FlightRecorder) Find(traceID string) (QueryRecord, bool) {
	if f == nil {
		return QueryRecord{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := 0; i < f.filled; i++ {
		if rec := f.ring[(f.next-1-i+len(f.ring)*2)%len(f.ring)]; rec.TraceID == traceID {
			return rec, true
		}
	}
	for _, rec := range f.slowest {
		if rec.TraceID == traceID {
			return rec, true
		}
	}
	return QueryRecord{}, false
}

// Text renders the recorder as an aligned table (newest first, then the
// slowest-K block) for the /queryz?format=text view.
func (f *FlightRecorder) Text() string {
	return RecordsText(f.Recent(), f.Slowest())
}

// RecordsText renders pre-selected (possibly filtered) recent and
// slowest record lists as the same aligned table Text produces.
func RecordsText(recent, slowest []QueryRecord) string {
	var b strings.Builder
	writeRecords := func(title string, recs []QueryRecord) {
		fmt.Fprintf(&b, "%s (%d)\n", title, len(recs))
		if len(recs) == 0 {
			return
		}
		fmt.Fprintf(&b, "  %-10s %-32s %-16s %4s %5s %4s %7s %12s %12s %12s %12s\n",
			"seq", "trace", "query", "verts", "code", "hit", "embs", "wait", "build", "enum", "total")
		for _, r := range recs {
			hit := "-"
			if r.CacheHit {
				hit = "hit"
			}
			embs := fmt.Sprint(r.Embeddings)
			if r.Partial {
				embs += "+"
			}
			fmt.Fprintf(&b, "  %-10d %-32s %-16s %4d %5d %4s %7s %12v %12v %12v %12v\n",
				r.Seq, r.TraceID, r.QueryHash, r.QueryVertices, r.Outcome, hit, embs,
				time.Duration(r.AdmissionWaitUS)*time.Microsecond,
				time.Duration(r.BuildUS)*time.Microsecond,
				time.Duration(r.EnumUS)*time.Microsecond,
				time.Duration(r.TotalUS)*time.Microsecond)
		}
	}
	writeRecords("recent queries", recent)
	b.WriteByte('\n')
	writeRecords("slowest queries", slowest)
	return b.String()
}
